package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// RequestIDHeader is the header the middleware echoes (or generates)
// on every response so clients can correlate their calls with the
// server's log trail.
const RequestIDHeader = "X-Request-ID"

// statusWriter records the status code and body size of a response.
// It deliberately implements http.Flusher by delegation: the deploy
// event stream type-asserts the ResponseWriter to a Flusher, and the
// middleware must not hide that capability.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware wraps next so every request gets an X-Request-ID response
// header (honoring an inbound one), a request-scoped context ID for log
// correlation, one structured log line (route, status, duration, bytes),
// and a latency histogram sample labeled by route pattern and status.
// logger and hist may be nil.
func Middleware(next http.Handler, logger *slog.Logger, hist *HistogramVec) http.Handler {
	if logger == nil {
		logger = NopLogger()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		ctx := WithRequestID(r.Context(), id)
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)

		if sw.status == 0 {
			// Handler never wrote anything; net/http will send 200.
			sw.status = http.StatusOK
		}
		// r.Pattern is populated by ServeMux during routing, so it is
		// only available after the handler ran. Unrouted requests (404
		// from the mux) have no pattern.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		status := strconv.Itoa(sw.status)
		hist.With(route, status).Observe(elapsed.Seconds())

		level := slog.LevelInfo
		if sw.status >= 500 {
			level = slog.LevelError
		} else if sw.status >= 400 {
			level = slog.LevelWarn
		}
		logger.Log(ctx, level, "http request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", sw.status),
			slog.Duration("duration", elapsed),
			slog.Int64("bytes", sw.bytes),
		)
	})
}
