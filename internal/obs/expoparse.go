package obs

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// ParseExpositionText is a minimal parser for the Prometheus text
// exposition format this package emits. It returns the # TYPE map
// (family name → type), the # HELP map (family name → help text), and
// the set of families that have at least one sample line (histogram
// child series — _bucket/_sum/_count — count toward their family).
//
// It exists so tests in other packages (e.g. cmd/serve's metric-catalog
// test) can assert on scrapes without a client library; it validates
// line shape and sample values and reports the first malformed line.
func ParseExpositionText(text string) (types, helps map[string]string, samples map[string]bool, err error) {
	types = make(map[string]string)
	helps = make(map[string]string)
	samples = make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return nil, nil, nil, fmt.Errorf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 {
				return nil, nil, nil, fmt.Errorf("malformed HELP line: %q", line)
			}
			helps[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample line: name{labels} value  or  name value.
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		var value string
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			value = line[i+1:]
		}
		if value == "" {
			return nil, nil, nil, fmt.Errorf("sample line without value: %q", line)
		}
		if value != "+Inf" && value != "-Inf" && value != "NaN" {
			if _, ferr := strconv.ParseFloat(value, 64); ferr != nil {
				return nil, nil, nil, fmt.Errorf("sample line %q: bad value: %w", line, ferr)
			}
		}
		// Histogram child series map back to their family name.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == TypeHistogram {
				name = base
				break
			}
		}
		samples[name] = true
	}
	if err := sc.Err(); err != nil {
		return nil, nil, nil, err
	}
	return types, helps, samples, nil
}
