// Package obs is the service's unified observability layer: structured
// logging on log/slog with context-propagated correlation IDs, a small
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms) exporting the Prometheus text format, and HTTP middleware
// that ties both together with per-request IDs.
//
// Everything here is stdlib-only by design: the service's north star is
// a self-contained binary, so the registry implements exactly the slice
// of the Prometheus data model the server needs — no client library.
//
// Instrument updates are lock-free (atomics) so they are safe to call
// from hot paths; registration and scraping take the registry lock.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric type names as they appear in # TYPE lines.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// DefBuckets is the default latency histogram layout, in seconds: a
// coarse exponential ladder from 100µs to 10s covering everything from a
// descent iteration to a multi-restart optimization job.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// MetricInfo describes one registered metric family; tests use it to
// assert that the registry and the exporter cannot drift apart.
type MetricInfo struct {
	Name string
	Type string
	Help string
}

// family is one named metric with all of its labeled children.
type family struct {
	name    string
	help    string
	typ     string
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, no +Inf

	mu       sync.Mutex
	children map[string]any // label-value key -> *Counter/*Gauge/*Histogram
	keys     []string       // insertion-ordered child keys
	fn       func() float64 // gauge func, when the family is callback-backed
	mapFn    func() map[string]float64
	mapLabel string
}

// Registry holds metric families in registration order.
type Registry struct {
	mu   sync.Mutex
	fams []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds or fetches a family, enforcing that a name is never
// reused with a different type or label set.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s with %d labels (was %s, %d)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]any),
	}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// child fetches or creates the instrument for one label-value tuple.
func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := make()
	f.children[key] = c
	f.keys = append(f.keys, key)
	return c
}

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas are ignored (counters only go up).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the value by v (which may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// addFloat atomically adds v to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		newV := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, newV) {
			return
		}
	}
}

// Histogram is a fixed-bucket distribution: cumulative bucket counts, a
// running sum, and a total count, all updated with atomics.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, TypeCounter, nil, nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, TypeGauge, nil, nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the natural fit for values the service already tracks elsewhere
// (queue occupancy, live deployment counts).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, TypeGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// CounterFunc registers a counter whose total is computed at scrape
// time. The callback must be monotonic (it reports an accumulated total
// the service already tracks, e.g. deployment steps executed).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, TypeCounter, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeMapFunc registers a one-label gauge family whose samples are
// recomputed at scrape time from the returned map (label value → gauge
// value), e.g. jobs by lifecycle state. Keys are emitted sorted.
func (r *Registry) GaugeMapFunc(name, help, label string, fn func() map[string]float64) {
	f := r.register(name, help, TypeGauge, []string{label}, nil)
	f.mu.Lock()
	f.mapFn = fn
	f.mapLabel = label
	f.mu.Unlock()
}

// Histogram registers (or fetches) an unlabeled histogram with the given
// ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, TypeHistogram, nil, buckets)
	return f.child(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, TypeCounter, labels, nil)}
}

// With returns the counter for one label-value tuple, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers a histogram family with shared buckets and the
// given label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, TypeHistogram, labels, buckets)}
}

// With returns the histogram for one label-value tuple, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// Registered lists every metric family in registration order.
func (r *Registry) Registered() []MetricInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricInfo, len(r.fams))
	for i, f := range r.fams {
		out[i] = MetricInfo{Name: f.name, Type: f.typ, Help: f.help}
	}
	return out
}

// WriteText renders the registry in the Prometheus text exposition format.
// Families appear in registration order, children sorted by label
// values, so output diffs cleanly between scrapes.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the text exposition over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// write renders one family's samples.
func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, fmtFloat(f.fn()))
		return
	}
	if f.mapFn != nil {
		m := f.mapFn()
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(b, "%s{%s=%q} %s\n", f.name, f.mapLabel, k, fmtFloat(m[k]))
		}
		return
	}
	keys := append([]string(nil), f.keys...)
	sort.Strings(keys)
	for _, key := range keys {
		var values []string
		if key != "" || len(f.labels) > 0 {
			values = strings.Split(key, "\x00")
		}
		switch c := f.children[key].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, values), fmtFloat(c.Value()))
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, values), fmtFloat(c.Value()))
		case *Histogram:
			c.writeTo(b, f.name, f.labels, values)
		}
	}
}

// writeTo renders the histogram's cumulative buckets, sum, and count.
func (h *Histogram) writeTo(b *strings.Builder, name string, labels, values []string) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name,
			labelString(append(labels, "le"), append(values, fmtFloat(bound))), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name,
		labelString(append(labels, "le"), append(values, "+Inf")), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labelString(labels, values), fmtFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelString(labels, values), h.Count())
}

// labelString renders {k="v",...}, or nothing for unlabeled samples.
func labelString(labels, values []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(l)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(v))
	}
	b.WriteByte('}')
	return b.String()
}

// fmtFloat renders a float the way Prometheus expects (shortest exact).
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
