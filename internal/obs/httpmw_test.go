package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("id") == "missing" {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		_, _ = w.Write([]byte("ok"))
	})
	return mux
}

func TestMiddlewareRequestID(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	hist := r.HistogramVec("http_request_duration_seconds", "Latency.", DefBuckets, "route", "status")
	h := Middleware(newTestMux(), log, hist)

	// Generated ID appears in the header and the log line.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/abc", nil))
	id := rec.Header().Get(RequestIDHeader)
	if len(id) != 16 {
		t.Fatalf("generated request ID %q, want 16 hex chars", id)
	}
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.String())
	}
	if got, _ := line[AttrRequestID].(string); got != id {
		t.Errorf("log requestId = %q, header = %q", got, id)
	}
	if got, _ := line["route"].(string); got != "GET /jobs/{id}" {
		t.Errorf("route = %q, want pattern", got)
	}
	if got, _ := line["status"].(float64); got != 200 {
		t.Errorf("status = %v, want 200", got)
	}
	if got, _ := line["bytes"].(float64); got != 2 {
		t.Errorf("bytes = %v, want 2", got)
	}

	// Inbound ID is honored verbatim.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/jobs/abc", nil)
	req.Header.Set(RequestIDHeader, "client-chosen")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "client-chosen" {
		t.Errorf("inbound request ID not echoed: %q", got)
	}
}

func TestMiddlewareLogsErrors(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	hist := r.HistogramVec("http_request_duration_seconds", "Latency.", DefBuckets, "route", "status")
	h := Middleware(newTestMux(), log, hist)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/missing", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatal(err)
	}
	if got, _ := line["level"].(string); got != "WARN" {
		t.Errorf("4xx logged at %q, want WARN", got)
	}
	if got, _ := line["status"].(float64); got != 404 {
		t.Errorf("status = %v, want 404", got)
	}

	// The latency histogram got a sample labeled with route and status.
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `http_request_duration_seconds_count{route="GET /jobs/{id}",status="404"} 1`) {
		t.Errorf("histogram sample missing:\n%s", b.String())
	}
}

func TestMiddlewareUnmatchedRoute(t *testing.T) {
	r := NewRegistry()
	hist := r.HistogramVec("http_request_duration_seconds", "Latency.", DefBuckets, "route", "status")
	h := Middleware(newTestMux(), nil, hist)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `route="unmatched"`) {
		t.Errorf("unmatched route label missing:\n%s", b.String())
	}
}

// TestMiddlewarePreservesFlusher pins that wrapping does not hide the
// Flusher capability the SSE event stream depends on.
func TestMiddlewarePreservesFlusher(t *testing.T) {
	flushed := false
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("middleware hid http.Flusher")
		}
		_, _ = w.Write([]byte("data: x\n\n"))
		f.Flush()
		flushed = true
	})
	h := Middleware(inner, nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/events", nil))
	if !flushed {
		t.Fatal("handler did not run to completion")
	}
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
}
