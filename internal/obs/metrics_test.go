package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.")
	c.Inc()
	c.Add(2.5)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("queue_depth", "Queue depth.")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	// Re-registering the same name/type returns the same instrument.
	if r.Counter("requests_total", "Total requests.") != c {
		t.Fatal("re-registration created a second counter")
	}
}

func TestNilInstrumentsSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	cv.With("a").Inc()
	hv.With("a").Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments should read as zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 55.65; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Cumulative buckets: le=0.1 holds 0.05 and 0.1 (bounds are
	// inclusive), le=1 adds 0.5, le=10 adds 5, +Inf adds 50.
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_sum 55.65`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestVecsAndFuncs(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("http_errors_total", "Errors by route.", "route", "status")
	cv.With("/jobs", "500").Inc()
	cv.With("/jobs", "500").Inc()
	cv.With("/healthz", "404").Inc()
	r.GaugeFunc("workers", "Worker count.", func() float64 { return 3 })
	r.GaugeMapFunc("jobs", "Jobs by state.", "state", func() map[string]float64 {
		return map[string]float64{"running": 2, "done": 7}
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`http_errors_total{route="/healthz",status="404"} 1`,
		`http_errors_total{route="/jobs",status="500"} 2`,
		"workers 3",
		`jobs{state="done"} 7`,
		`jobs{state="running"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestExporterMatchesRegistry parses the full text exposition and checks
// every registered family appears with a # TYPE line matching its
// registered type and at least the HELP preamble — the registry and the
// exporter cannot drift apart.
func TestExporterMatchesRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Inc()
	r.Gauge("b", "B.").Set(1)
	r.Histogram("c_seconds", "C.", DefBuckets).Observe(0.2)
	r.CounterVec("d_total", "D.", "k").With("v").Inc()
	r.HistogramVec("e_seconds", "E.", []float64{1}, "k").With("v").Observe(2)
	r.GaugeFunc("f", "F.", func() float64 { return 0 })
	r.GaugeMapFunc("g", "G.", "state", func() map[string]float64 { return map[string]float64{"x": 1} })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	types, helps, samples := ParseExposition(t, b.String())

	infos := r.Registered()
	if len(infos) != 7 {
		t.Fatalf("Registered() returned %d families, want 7", len(infos))
	}
	for _, info := range infos {
		if got := types[info.Name]; got != info.Type {
			t.Errorf("family %s: # TYPE says %q, registry says %q", info.Name, got, info.Type)
		}
		if _, ok := helps[info.Name]; !ok {
			t.Errorf("family %s: no # HELP line", info.Name)
		}
		if !samples[info.Name] {
			t.Errorf("family %s: no samples in output", info.Name)
		}
	}
}

// ParseExposition wraps ParseExpositionText for in-package tests.
func ParseExposition(t *testing.T, text string) (types, helps map[string]string, samples map[string]bool) {
	t.Helper()
	types, helps, samples, err := ParseExpositionText(text)
	if err != nil {
		t.Fatal(err)
	}
	return types, helps, samples
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "N.")
	h := r.Histogram("h_seconds", "H.", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
