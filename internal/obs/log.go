package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Context keys for correlation IDs. Each runtime surface stamps its ID
// into the request context once; every log line emitted below that point
// carries it automatically, so one job's lifecycle greps as a single
// trail across serve, jobs, and deploy components.
type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyJobID
	ctxKeyDeploymentID
)

// Attribute names used for the propagated IDs.
const (
	AttrRequestID    = "requestId"
	AttrJobID        = "job"
	AttrDeploymentID = "deployment"
	AttrComponent    = "component"
)

// WithRequestID returns ctx carrying an HTTP request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// WithJobID returns ctx carrying an optimization job ID.
func WithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyJobID, id)
}

// JobID returns the job ID carried by ctx, or "".
func JobID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyJobID).(string)
	return id
}

// WithDeploymentID returns ctx carrying a deployment ID.
func WithDeploymentID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyDeploymentID, id)
}

// DeploymentID returns the deployment ID carried by ctx, or "".
func DeploymentID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyDeploymentID).(string)
	return id
}

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a fixed
		// fallback keeps logging usable rather than panicking.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ctxHandler is a slog.Handler wrapper that copies correlation IDs from
// the record's context into its attributes.
type ctxHandler struct {
	inner slog.Handler
}

func (h ctxHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h ctxHandler) Handle(ctx context.Context, rec slog.Record) error {
	if ctx != nil {
		if id := RequestID(ctx); id != "" {
			rec.AddAttrs(slog.String(AttrRequestID, id))
		}
		if id := JobID(ctx); id != "" {
			rec.AddAttrs(slog.String(AttrJobID, id))
		}
		if id := DeploymentID(ctx); id != "" {
			rec.AddAttrs(slog.String(AttrDeploymentID, id))
		}
	}
	return h.inner.Handle(ctx, rec)
}

func (h ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{inner: h.inner.WithGroup(name)}
}

// NewLogger builds the shared logger. level is one of debug, info, warn,
// error; format is text or json. The returned logger injects any
// context-carried request/job/deployment IDs into every record.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var inner slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		inner = slog.NewTextHandler(w, opts)
	case "json":
		inner = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
	return slog.New(ctxHandler{inner: inner}), nil
}

// Component returns a child logger tagged with a component attribute
// ("serve", "jobs", "deploy", ...). Nil-safe: a nil base yields the
// no-op logger.
func Component(base *slog.Logger, name string) *slog.Logger {
	if base == nil {
		return NopLogger()
	}
	return base.With(slog.String(AttrComponent, name))
}

// nopHandler discards everything without formatting anything.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

var nopLogger = slog.New(nopHandler{})

// NopLogger returns a logger that drops every record. Components fall
// back to it when no logger is configured, so call sites never need nil
// checks.
func NopLogger() *slog.Logger { return nopLogger }
