package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("visible")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("info line leaked through warn level")
	}
	if !strings.Contains(out, "visible") {
		t.Error("warn line missing")
	}
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
}

func TestContextIDsInjected(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithRequestID(context.Background(), "req-1")
	ctx = WithJobID(ctx, "job-7")
	ctx = WithDeploymentID(ctx, "dep-3")
	Component(log, "jobs").InfoContext(ctx, "worker picked up job")

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	for attr, want := range map[string]string{
		AttrRequestID:    "req-1",
		AttrJobID:        "job-7",
		AttrDeploymentID: "dep-3",
		AttrComponent:    "jobs",
	} {
		if got, _ := rec[attr].(string); got != want {
			t.Errorf("%s = %q, want %q", attr, got, want)
		}
	}
}

func TestContextAccessors(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" || JobID(ctx) != "" || DeploymentID(ctx) != "" {
		t.Fatal("empty context should carry no IDs")
	}
	ctx = WithRequestID(ctx, "r")
	if RequestID(ctx) != "r" {
		t.Fatal("request ID round trip failed")
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("want 16 hex chars, got %q %q", a, b)
	}
	if a == b {
		t.Fatal("two request IDs collided")
	}
}

func TestNopLoggerAndNilComponent(t *testing.T) {
	// Must not panic, must not write anywhere.
	NopLogger().Error("dropped")
	Component(nil, "x").Info("dropped")
	if NopLogger().Enabled(context.Background(), 12) {
		t.Fatal("nop logger claims to be enabled")
	}
}
