package exp

import (
	"errors"
	"fmt"
)

// ErrScale indicates an invalid Scale.
var ErrScale = errors.New("exp: invalid scale")

// Scale controls how much compute each experiment spends. The paper's
// settings are expensive (200 independent optimizations for Table III);
// Quick keeps the same structure at a fraction of the cost for tests and
// benchmarks, while PaperScale approaches the published configuration.
type Scale struct {
	// Runs is the number of independent optimizations for CDF/statistics
	// experiments (paper: 200).
	Runs int
	// OptIters is the per-run optimizer iteration budget.
	OptIters int
	// SimSteps is the number of Markov transitions per simulation.
	SimSteps int
	// SimReps is the number of repeated simulations per matrix (paper: 10).
	SimReps int
	// TracePoints is how many iteration samples figures keep per line.
	TracePoints int
	// Seed drives all randomness.
	Seed uint64
}

// Quick is the default scale for tests and benchmarks.
var Quick = Scale{
	Runs:        12,
	OptIters:    400,
	SimSteps:    20000,
	SimReps:     3,
	TracePoints: 25,
	Seed:        1,
}

// Mid trades some statistical resolution for a much faster full
// regeneration; the shapes reported in EXPERIMENTS.md are recorded at
// this scale.
var Mid = Scale{
	Runs:        60,
	OptIters:    3000,
	SimSteps:    100000,
	SimReps:     10,
	TracePoints: 30,
	Seed:        1,
}

// PaperScale approximates the published experimental configuration.
var PaperScale = Scale{
	Runs:        200,
	OptIters:    6000,
	SimSteps:    200000,
	SimReps:     10,
	TracePoints: 40,
	Seed:        1,
}

func (s Scale) validate() error {
	if s.Runs <= 0 || s.OptIters <= 0 || s.SimSteps <= 0 || s.SimReps <= 0 || s.TracePoints <= 0 {
		return fmt.Errorf("%w: %+v", ErrScale, s)
	}
	return nil
}
