package exp

import "fmt"

// fmtSscan parses a FormatFloat-rendered cell back into a float64 for
// assertions.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
