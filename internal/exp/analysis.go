package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/descent"
	"repro/internal/mat"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TableMixing characterizes the converged schedules of the Tables I/II
// sweep beyond the paper's metrics: spectral gap, exact 1%-TV mixing
// time, entropy rate and worst-PoI exposure variability per α:β ratio.
// The trend mirrors the physical story — coverage-focused schedules dwell
// (small gap, slow mixing), exposure-focused ones commute (large gap).
func TableMixing(sc Scale) (*Table, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	top := topology.Topology3()
	t := &Table{
		Title:   "Analysis: spectral/mixing/variability per α:β (Topology 3)",
		Columns: []string{"α:β", "spectral gap", "mixing (steps)", "entropy (nats)", "worst σ(E)"},
	}
	for i, r := range tradeoffRatios {
		res, err := optimize(top, r.alpha, r.beta, descent.Perturbed, sc, sc.Seed+uint64(500+i))
		if err != nil {
			return nil, fmt.Errorf("exp: mixing %s: %w", r.label, err)
		}
		model, err := newModel(top, r.alpha, r.beta)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewPlanner(top, model.Weights())
		if err != nil {
			return nil, err
		}
		a, err := eng.Analyze(res.P, core.AnalyzeOptions{})
		if err != nil {
			return nil, fmt.Errorf("exp: mixing %s: %w", r.label, err)
		}
		var worst float64
		for _, s := range a.ExposureStdDev {
			if s > worst {
				worst = s
			}
		}
		t.Rows = append(t.Rows, []string{
			r.label,
			FormatFloat(a.SpectralGap),
			fmt.Sprintf("%d", a.MixingTime),
			FormatFloat(a.EntropyRate),
			FormatFloat(worst),
		})
	}
	return t, nil
}

// TableFleet measures how deploying extra sensors with the same optimized
// schedule shrinks the union exposure gaps (the multi-sensor extension;
// evaluated by exact simulation on Topology 1 with α=1, β=1).
func TableFleet(sc Scale) (*Table, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	top := topology.Topology1()
	res, err := optimize(top, 1, 1, descent.Perturbed, sc, sc.Seed+700)
	if err != nil {
		return nil, fmt.Errorf("exp: fleet optimize: %w", err)
	}
	t := &Table{
		Title:   "Fleet: union coverage vs fleet size (Topology 1, α=1, β=1 schedule)",
		Columns: []string{"sensors", "ΔC (union)", "worst mean gap", "worst max gap"},
	}
	for _, k := range []int{1, 2, 3, 4} {
		met, err := sim.SimulateFleet(sim.FleetConfig{
			Topology: top,
			P:        res.P,
			Sensors:  k,
			Steps:    sc.SimSteps,
			Seed:     sc.Seed + 701,
			Stagger:  true,
		})
		if err != nil {
			return nil, fmt.Errorf("exp: fleet k=%d: %w", k, err)
		}
		var worstMean, worstMax float64
		for i := range met.MeanGap {
			if met.MeanGap[i] > worstMean {
				worstMean = met.MeanGap[i]
			}
			if met.MaxGap[i] > worstMax {
				worstMax = met.MaxGap[i]
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			FormatFloat(met.DeltaC),
			FormatFloat(worstMean),
			FormatFloat(worstMax),
		})
	}
	return t, nil
}

// TableDetection quantifies the paper's motivating story — response
// delay to incidents — by overlaying Poisson incidents on three
// schedules for Topology 1: the optimized multi-objective chain, the
// Metropolis–Hastings coverage-only baseline, and the uniform random
// walk.
func TableDetection(sc Scale) (*Table, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	top := topology.Topology1()
	n := top.M()
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = 0.5
	}

	res, err := optimize(top, 1, 1, descent.Perturbed, sc, sc.Seed+600)
	if err != nil {
		return nil, fmt.Errorf("exp: detection optimize: %w", err)
	}
	mh, err := baselineMatrix(top)
	if err != nil {
		return nil, err
	}
	uniform := descent.UniformInit(n)

	t := &Table{
		Title:   "Detection: mean/worst incident response delay (Topology 1, rate 0.5/PoI)",
		Columns: []string{"schedule", "mean delay", "worst delay", "detected"},
	}
	schedules := []struct {
		name string
		p    *mat.Matrix
	}{
		{"steepest-descent (α=1, β=1)", res.P},
		{"metropolis-hastings", mh},
		{"uniform walk", uniform},
	}
	for _, s := range schedules {
		met, err := sim.RunIncidents(sim.Config{
			Topology: top,
			P:        s.p,
			Steps:    sc.SimSteps,
			Seed:     sc.Seed + 601,
		}, rates)
		if err != nil {
			return nil, fmt.Errorf("exp: detection %s: %w", s.name, err)
		}
		var worst float64
		var detected int64
		for i := 0; i < n; i++ {
			if met.MaxDelay[i] > worst {
				worst = met.MaxDelay[i]
			}
			detected += met.Detected[i]
		}
		t.Rows = append(t.Rows, []string{
			s.name,
			FormatFloat(met.OverallMeanDelay),
			FormatFloat(worst),
			fmt.Sprintf("%d", detected),
		})
	}
	return t, nil
}
