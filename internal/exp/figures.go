package exp

import (
	"fmt"

	"repro/internal/descent"
	"repro/internal/mat"
	"repro/internal/mcmc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// baselineMatrix builds the MCMC baseline chain targeting the topology's
// coverage allocation Φ. Mild laziness keeps every diagonal entry away
// from zero so the barrier-penalized cost stays finite and the comparison
// with the interior-point descent solutions is fair.
func baselineMatrix(top *topology.Topology) (*mat.Matrix, error) {
	return mcmc.LazyMetropolisHastings(top.Target(), 0.2)
}

// costCDF runs sc.Runs optimizations with the given variant and returns
// the empirical CDF of the achieved costs as a figure line.
func costCDF(top *topology.Topology, alpha, beta float64, variant descent.Variant, sc Scale) (Line, error) {
	model, err := newModel(top, alpha, beta)
	if err != nil {
		return Line{}, err
	}
	results, err := descent.RunMany(model, optimizerOptions(variant, sc, sc.Seed), sc.Runs)
	if err != nil {
		return Line{}, err
	}
	us := make([]float64, len(results))
	for i, r := range results {
		us[i] = r.Eval.U
	}
	pts, err := stats.CDF(us)
	if err != nil {
		return Line{}, err
	}
	ln := Line{Name: variant.String(), X: make([]float64, len(pts)), Y: make([]float64, len(pts))}
	for i, p := range pts {
		ln.X[i] = p.Value
		ln.Y[i] = p.Fraction
	}
	return ln, nil
}

// Figure2 reproduces the CDFs of achieved cost U_ε for the adaptive vs
// perturbed algorithms on Topology 1: (a) α=0, β=1 and (b) α=1, β=1.
func Figure2(sc Scale) (*Figure, *Figure, error) {
	if err := sc.validate(); err != nil {
		return nil, nil, err
	}
	top := topology.Topology1()
	build := func(title string, alpha, beta float64) (*Figure, error) {
		fig := &Figure{Title: title, XLabel: "achieved cost U_ε", YLabel: "CDF"}
		for _, variant := range []descent.Variant{descent.Adaptive, descent.Perturbed} {
			ln, err := costCDF(top, alpha, beta, variant, sc)
			if err != nil {
				return nil, err
			}
			fig.Lines = append(fig.Lines, ln)
		}
		return fig, nil
	}
	a, err := build("Figure 2(a): CDF of achieved cost (α=0, β=1, Topology 1)", 0, 1)
	if err != nil {
		return nil, nil, fmt.Errorf("exp: figure 2a: %w", err)
	}
	b, err := build("Figure 2(b): CDF of achieved cost (α=1, β=1, Topology 1)", 1, 1)
	if err != nil {
		return nil, nil, fmt.Errorf("exp: figure 2b: %w", err)
	}
	return a, b, nil
}

// traceLine converts an optimizer trace into a sampled U-vs-iteration
// line.
func traceLine(name string, trace []descent.IterRecord, points int, pick func(descent.IterRecord) float64) Line {
	n := len(trace)
	ln := Line{Name: name}
	if n == 0 {
		return ln
	}
	stride := 1
	if n > points {
		stride = (n + points - 1) / points
	}
	for i := 0; i < n; i += stride {
		ln.X = append(ln.X, float64(trace[i].Iter))
		ln.Y = append(ln.Y, pick(trace[i]))
	}
	if (n-1)%stride != 0 {
		ln.X = append(ln.X, float64(trace[n-1].Iter))
		ln.Y = append(ln.Y, pick(trace[n-1]))
	}
	return ln
}

// runTraced runs one optimization with trace recording enabled. For the
// basic variant the fixed step is raised from the paper's Δt = 1e-6 to
// 1e-5: the paper's basic-algorithm figures span far more iterations than
// a Scale budget affords, and the larger step reproduces the same
// decrease-to-stability shape within it (the Δt sensitivity itself is
// quantified by AblationStepSize).
func runTraced(top *topology.Topology, alpha, beta float64, variant descent.Variant, sc Scale, seed uint64) (*descent.Result, error) {
	model, err := newModel(top, alpha, beta)
	if err != nil {
		return nil, err
	}
	opts := optimizerOptions(variant, sc, seed)
	opts.RecordTrace = true
	if variant == descent.Basic {
		opts.FixedStep = 1e-5
	}
	opt, err := descent.New(model, opts)
	if err != nil {
		return nil, err
	}
	return opt.Run()
}

// Figure3 reproduces U vs iteration for the basic algorithm under several
// α, β weightings (Topology 3).
func Figure3(sc Scale) (*Figure, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	top := topology.Topology3()
	fig := &Figure{
		Title:  "Figure 3: basic algorithm, U vs iteration for α:β sweeps (Topology 3)",
		XLabel: "iteration", YLabel: "U",
	}
	for i, r := range []weightRatio{{"1:1", 1, 1}, {"1:0.01", 1, 0.01}, {"1:0.0001", 1, 1e-4}} {
		res, err := runTraced(top, r.alpha, r.beta, descent.Basic, sc, sc.Seed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("exp: figure 3 %s: %w", r.label, err)
		}
		fig.Lines = append(fig.Lines, traceLine("α:β="+r.label, res.Trace, sc.TracePoints,
			func(rec descent.IterRecord) float64 { return rec.U }))
	}
	return fig, nil
}

// Figure4 reproduces U vs iteration for the basic algorithm with the
// exposure-only objective (α=0, β=1, Topology 1).
func Figure4(sc Scale) (*Figure, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	res, err := runTraced(topology.Topology1(), 0, 1, descent.Basic, sc, sc.Seed)
	if err != nil {
		return nil, fmt.Errorf("exp: figure 4: %w", err)
	}
	fig := &Figure{
		Title:  "Figure 4: basic algorithm, U vs iteration (α=0, β=1, Topology 1)",
		XLabel: "iteration", YLabel: "U",
	}
	fig.Lines = append(fig.Lines, traceLine("basic", res.Trace, sc.TracePoints,
		func(rec descent.IterRecord) float64 { return rec.U }))
	return fig, nil
}

// Figure5 reproduces (a) the basic algorithm's U vs iteration and (b) the
// perturbed algorithm from different random initializations
// (α=1, β=0, Topology 2).
func Figure5(sc Scale) (*Figure, *Figure, error) {
	if err := sc.validate(); err != nil {
		return nil, nil, err
	}
	top := topology.Topology2()
	resA, err := runTraced(top, 1, 0, descent.Basic, sc, sc.Seed)
	if err != nil {
		return nil, nil, fmt.Errorf("exp: figure 5a: %w", err)
	}
	figA := &Figure{
		Title:  "Figure 5(a): basic algorithm, U vs iteration (α=1, β=0, Topology 2)",
		XLabel: "iteration", YLabel: "U",
	}
	figA.Lines = append(figA.Lines, traceLine("basic", resA.Trace, sc.TracePoints,
		func(rec descent.IterRecord) float64 { return rec.U }))

	figB := &Figure{
		Title:  "Figure 5(b): perturbed algorithm from different initial p_ij (α=1, β=0, Topology 2)",
		XLabel: "iteration", YLabel: "U",
	}
	for s := 0; s < 3; s++ {
		res, err := runTraced(top, 1, 0, descent.Perturbed, sc, sc.Seed+uint64(10+s))
		if err != nil {
			return nil, nil, fmt.Errorf("exp: figure 5b seed %d: %w", s, err)
		}
		figB.Lines = append(figB.Lines, traceLine(fmt.Sprintf("seed %d", s+1), res.Trace, sc.TracePoints,
			func(rec descent.IterRecord) float64 { return rec.U }))
	}
	return figA, figB, nil
}

// iterationSimFigures runs one traced optimization and, at sampled
// iterations, drives sc.SimReps Markov simulations with the
// current matrix; it returns ΔC and Ē (mean with p25/p75 companion lines)
// versus iteration — the harness behind Figs. 6, 7 and 8.
func iterationSimFigures(top *topology.Topology, alpha, beta float64, sc Scale, seed uint64, titlePrefix string) (*Figure, *Figure, *Figure, error) {
	model, err := newModel(top, alpha, beta)
	if err != nil {
		return nil, nil, nil, err
	}
	opts := optimizerOptions(descent.Perturbed, sc, seed)
	opts.RecordTrace = true

	// Sample matrices at ~TracePoints evenly spaced iterations.
	stride := maxInt(1, sc.OptIters/sc.TracePoints)
	type sample struct {
		iter int
		p    *mat.Matrix
		u    float64
	}
	var samples []sample
	opts.OnIteration = func(rec descent.IterRecord, p *mat.Matrix) {
		if (rec.Iter-1)%stride == 0 {
			samples = append(samples, sample{iter: rec.Iter, p: p.Clone(), u: rec.U})
		}
	}
	opt, err := descent.New(model, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := opt.Run(); err != nil {
		return nil, nil, nil, err
	}

	dcFig := &Figure{Title: titlePrefix + ": simulated ΔC vs iteration", XLabel: "iteration", YLabel: "ΔC"}
	ebFig := &Figure{Title: titlePrefix + ": simulated Ē vs iteration", XLabel: "iteration", YLabel: "Ē"}
	uFig := &Figure{Title: titlePrefix + ": computed U vs iteration", XLabel: "iteration", YLabel: "U"}
	var dcMean, dcP25, dcP75, ebMean, ebP25, ebP75, uLine Line
	dcMean.Name, dcP25.Name, dcP75.Name = "mean", "p25", "p75"
	ebMean.Name, ebP25.Name, ebP75.Name = "mean", "p25", "p75"
	uLine.Name = "steepest descent"
	for i, s := range samples {
		dc, eb, err := simulateMatrix(top, s.p, sc, seed+uint64(1000+i), sim.UnitStep)
		if err != nil {
			return nil, nil, nil, err
		}
		x := float64(s.iter)
		dcMean.X = append(dcMean.X, x)
		dcMean.Y = append(dcMean.Y, dc.Mean)
		dcP25.X = append(dcP25.X, x)
		dcP25.Y = append(dcP25.Y, dc.P25)
		dcP75.X = append(dcP75.X, x)
		dcP75.Y = append(dcP75.Y, dc.P75)
		ebMean.X = append(ebMean.X, x)
		ebMean.Y = append(ebMean.Y, eb.Mean)
		ebP25.X = append(ebP25.X, x)
		ebP25.Y = append(ebP25.Y, eb.P25)
		ebP75.X = append(ebP75.X, x)
		ebP75.Y = append(ebP75.Y, eb.P75)
		uLine.X = append(uLine.X, x)
		uLine.Y = append(uLine.Y, s.u)
	}
	dcFig.Lines = []Line{dcMean, dcP25, dcP75}
	ebFig.Lines = []Line{ebMean, ebP25, ebP75}
	uFig.Lines = []Line{uLine}
	return dcFig, ebFig, uFig, nil
}

// Figure6 reproduces the simulated ΔC and Ē per optimizer iteration on
// Topology 2 (α=1, β=0).
func Figure6(sc Scale) (*Figure, *Figure, error) {
	if err := sc.validate(); err != nil {
		return nil, nil, err
	}
	dc, eb, _, err := iterationSimFigures(topology.Topology2(), 1, 0, sc, sc.Seed+60, "Figure 6 (α=1, β=0, Topology 2)")
	if err != nil {
		return nil, nil, fmt.Errorf("exp: figure 6: %w", err)
	}
	return dc, eb, nil
}

// Figure7 repeats Figure 6 on the larger Topology 4.
func Figure7(sc Scale) (*Figure, *Figure, error) {
	if err := sc.validate(); err != nil {
		return nil, nil, err
	}
	dc, eb, _, err := iterationSimFigures(topology.Topology4(), 1, 0, sc, sc.Seed+70, "Figure 7 (α=1, β=0, Topology 4)")
	if err != nil {
		return nil, nil, fmt.Errorf("exp: figure 7: %w", err)
	}
	return dc, eb, nil
}

// Figure8 reproduces the simulated ΔC, Ē and computed U per iteration on
// Topology 1 with a small exposure weight (α=1, β=0.0001).
func Figure8(sc Scale) (*Figure, *Figure, *Figure, error) {
	if err := sc.validate(); err != nil {
		return nil, nil, nil, err
	}
	dc, eb, u, err := iterationSimFigures(topology.Topology1(), 1, 1e-4, sc, sc.Seed+80, "Figure 8 (α=1, β=0.0001, Topology 1)")
	if err != nil {
		return nil, nil, nil, fmt.Errorf("exp: figure 8: %w", err)
	}
	return dc, eb, u, nil
}
