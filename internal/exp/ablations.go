package exp

import (
	"fmt"

	"repro/internal/descent"
	"repro/internal/stats"
	"repro/internal/topology"
)

// AblationStepSize compares fixed time steps against the adaptive line
// search under the same iteration budget (Topology 3, α=1, β=1),
// quantifying the paper's claim (iv) that estimated optimal steps speed
// up convergence.
func AblationStepSize(sc Scale) (*Table, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	top := topology.Topology3()
	model, err := newModel(top, 1, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation A1: final cost after equal iteration budgets (Topology 3, α=1, β=1)",
		Columns: []string{"step policy", "final U", "iterations"},
	}
	init := descent.UniformInit(top.M())
	for _, step := range []float64{1e-6, 1e-5, 1e-4, 1e-3} {
		opt, err := descent.New(model, descent.Options{
			Variant:    descent.Basic,
			MaxIters:   sc.OptIters,
			FixedStep:  step,
			InitialP:   init,
			StallIters: sc.OptIters + 1,
		})
		if err != nil {
			return nil, err
		}
		res, err := opt.Run()
		if err != nil {
			return nil, fmt.Errorf("exp: ablation step %v: %w", step, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("fixed Δt=%g", step),
			FormatFloat(res.Eval.U),
			fmt.Sprintf("%d", res.Iters),
		})
	}
	adOpts := optimizerOptions(descent.Adaptive, sc, sc.Seed)
	adOpts.InitialP = init
	opt, err := descent.New(model, adOpts)
	if err != nil {
		return nil, err
	}
	res, err := opt.Run()
	if err != nil {
		return nil, fmt.Errorf("exp: ablation adaptive: %w", err)
	}
	t.Rows = append(t.Rows, []string{
		"adaptive (V3)",
		FormatFloat(res.Eval.U),
		fmt.Sprintf("%d", res.Iters),
	})
	return t, nil
}

// AblationNoise sweeps the V4 noise σ and reports the spread of final
// costs across random starts (Topology 1, α=0, β=1): too little noise
// leaves runs trapped in different local optima (wide spread), enough
// noise collapses the spread onto the global optimum.
func AblationNoise(sc Scale) (*Table, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	top := topology.Topology1()
	model, err := newModel(top, 0, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation A2: perturbation noise σ vs final-cost spread (Topology 1, α=0, β=1)",
		Columns: []string{"σ", "min U", "avg U", "max U", "spread"},
	}
	for _, sigma := range []float64{0.001, 0.02, 0.1, 0.5} {
		opts := optimizerOptions(descent.Perturbed, sc, sc.Seed)
		opts.NoiseStdDev = sigma
		results, err := descent.RunMany(model, opts, sc.Runs)
		if err != nil {
			return nil, fmt.Errorf("exp: ablation noise %v: %w", sigma, err)
		}
		us := make([]float64, len(results))
		for i, r := range results {
			us[i] = r.Eval.U
		}
		sum, err := stats.Summarize(us)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			FormatFloat(sigma),
			FormatFloat(sum.Min), FormatFloat(sum.Mean), FormatFloat(sum.Max),
			FormatFloat(sum.Max - sum.Min),
		})
	}
	return t, nil
}

// AblationWarmStart quantifies the README recommendation: on the 9-PoI
// Topology 4, seeding the perturbed search with the Metropolis–Hastings
// baseline reaches far better optima than cold random starts under the
// same iteration budget.
func AblationWarmStart(sc Scale) (*Table, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	top := topology.Topology4()
	model, err := newModel(top, 1, 1e-5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation A3: cold vs warm start on the 9-PoI grid (Topology 4, α=1, β=1e-5)",
		Columns: []string{"initialization", "final U", "ΔC"},
	}
	cold := optimizerOptions(descent.Perturbed, sc, sc.Seed+800)
	coldOpt, err := descent.New(model, cold)
	if err != nil {
		return nil, err
	}
	coldRes, err := coldOpt.Run()
	if err != nil {
		return nil, fmt.Errorf("exp: warm-start ablation cold: %w", err)
	}
	warmP, err := baselineMatrix(top)
	if err != nil {
		return nil, err
	}
	warm := optimizerOptions(descent.Perturbed, sc, sc.Seed+800)
	warm.InitialP = warmP
	warmOpt, err := descent.New(model, warm)
	if err != nil {
		return nil, err
	}
	warmRes, err := warmOpt.Run()
	if err != nil {
		return nil, fmt.Errorf("exp: warm-start ablation warm: %w", err)
	}
	t.Rows = append(t.Rows,
		[]string{"cold (random, V2)", FormatFloat(coldRes.Eval.U), FormatFloat(coldRes.Eval.DeltaC)},
		[]string{"warm (Metropolis–Hastings)", FormatFloat(warmRes.Eval.U), FormatFloat(warmRes.Eval.DeltaC)},
	)
	return t, nil
}

// ExtensionEnergy demonstrates the §VII energy objective: sweeping the
// energy weight trades target-coverage fidelity against mean travel
// distance per transition.
func ExtensionEnergy(sc Scale) (*Table, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	top := topology.Topology1()
	t := &Table{
		Title:   "Extension E1: energy-aware optimization (Topology 1, α=1, β=0, energy target γ=0)",
		Columns: []string{"energy weight", "ΔC", "mean travel D"},
	}
	for i, w := range []float64{0, 0.1, 1, 10} {
		weights := costUniform(top.M(), 1, 0)
		weights.EnergyWeight = w
		weights.EnergyTarget = 0
		model, err := newCustomModel(top, weights)
		if err != nil {
			return nil, err
		}
		opts := optimizerOptions(descent.Perturbed, sc, sc.Seed+uint64(300+i))
		opt, err := descent.New(model, opts)
		if err != nil {
			return nil, err
		}
		res, err := opt.Run()
		if err != nil {
			return nil, fmt.Errorf("exp: extension energy %v: %w", w, err)
		}
		t.Rows = append(t.Rows, []string{
			FormatFloat(w), FormatFloat(res.Eval.DeltaC), FormatFloat(res.Eval.Energy),
		})
	}
	return t, nil
}

// ExtensionEntropy demonstrates the §VII entropy objective: increasing
// the entropy weight raises the chain's entropy rate at bounded cost in
// the primary objectives.
func ExtensionEntropy(sc Scale) (*Table, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	top := topology.Topology1()
	t := &Table{
		Title:   "Extension E2: entropy-augmented optimization (Topology 1, α=1, β=0.0001)",
		Columns: []string{"entropy weight λ", "entropy H", "ΔC", "Ē"},
	}
	for i, lam := range []float64{0, 0.01, 0.1, 1} {
		weights := costUniform(top.M(), 1, 1e-4)
		weights.EntropyWeight = lam
		model, err := newCustomModel(top, weights)
		if err != nil {
			return nil, err
		}
		opts := optimizerOptions(descent.Perturbed, sc, sc.Seed+uint64(400+i))
		opt, err := descent.New(model, opts)
		if err != nil {
			return nil, err
		}
		res, err := opt.Run()
		if err != nil {
			return nil, fmt.Errorf("exp: extension entropy %v: %w", lam, err)
		}
		t.Rows = append(t.Rows, []string{
			FormatFloat(lam), FormatFloat(res.Eval.Entropy),
			FormatFloat(res.Eval.DeltaC), FormatFloat(res.Eval.EBar),
		})
	}
	return t, nil
}
