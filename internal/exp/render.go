// Package exp regenerates every table and figure of the paper's
// evaluation (§VI) plus the ablations and baselines listed in DESIGN.md.
// Each experiment is a pure function from a Scale (how much compute to
// spend) to a Table or Figure holding the same rows/series the paper
// reports; cmd/experiments renders them to text, and bench_test.go wraps
// each one in a testing.B benchmark.
package exp

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a rendered experiment result with one row per configuration,
// mirroring the paper's tables.
type Table struct {
	// Title identifies the experiment (e.g. "Table I").
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
}

// Render returns an aligned plain-text rendering.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	var total int
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns a comma-separated rendering (cells are numeric or simple
// labels, so no quoting is needed).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Line is one named series of a Figure.
type Line struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is the data behind one paper figure: one or more series over a
// common pair of axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Lines  []Line
}

// Render returns a text rendering: per line, up to maxPts sampled points,
// preceded by the series name. It is intentionally plain so the harness
// output can be diffed run to run.
func (f *Figure) Render() string {
	const maxPts = 12
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%s vs %s]\n", f.Title, f.YLabel, f.XLabel)
	for _, ln := range f.Lines {
		fmt.Fprintf(&b, "  %s:\n", ln.Name)
		n := len(ln.X)
		if n == 0 {
			b.WriteString("    (no data)\n")
			continue
		}
		stride := 1
		if n > maxPts {
			stride = (n + maxPts - 1) / maxPts
		}
		for i := 0; i < n; i += stride {
			fmt.Fprintf(&b, "    %-12s %s\n", FormatFloat(ln.X[i]), FormatFloat(ln.Y[i]))
		}
		if (n-1)%stride != 0 {
			fmt.Fprintf(&b, "    %-12s %s\n", FormatFloat(ln.X[n-1]), FormatFloat(ln.Y[n-1]))
		}
	}
	return b.String()
}

// CSV renders the figure as long-format CSV (line, x, y) suitable for
// any plotting tool.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("line,x,y\n")
	for _, ln := range f.Lines {
		for i := range ln.X {
			fmt.Fprintf(&b, "%s,%s,%s\n", ln.Name, FormatFloat(ln.X[i]), FormatFloat(ln.Y[i]))
		}
	}
	return b.String()
}

// FormatFloat renders a value compactly: fixed precision for moderate
// magnitudes, scientific for very small or large ones.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av < 1e-3 || av >= 1e6:
		return strconv.FormatFloat(v, 'e', 3, 64)
	default:
		return strconv.FormatFloat(v, 'f', 4, 64)
	}
}
