package exp

import (
	"errors"
	"strings"
	"testing"
)

// testScale keeps the experiments structurally identical to the paper's
// but cheap enough for CI.
var testScale = Scale{
	Runs:        6,
	OptIters:    300,
	SimSteps:    8000,
	SimReps:     2,
	TracePoints: 10,
	Seed:        7,
}

// sweepScale gives the tradeoff sweep a larger budget since its
// assertions compare converged metrics.
var sweepScale = Scale{
	Runs:        6,
	OptIters:    900,
	SimSteps:    8000,
	SimReps:     2,
	TracePoints: 10,
	Seed:        7,
}

func TestScaleValidate(t *testing.T) {
	bad := Scale{}
	if _, err := TableI(bad); !errors.Is(err, ErrScale) {
		t.Errorf("err = %v, want ErrScale", err)
	}
	if _, err := TableIII(bad); !errors.Is(err, ErrScale) {
		t.Errorf("err = %v, want ErrScale", err)
	}
	if _, err := TableIV(bad); !errors.Is(err, ErrScale) {
		t.Errorf("err = %v, want ErrScale", err)
	}
	if _, _, err := Figure2(bad); !errors.Is(err, ErrScale) {
		t.Errorf("err = %v, want ErrScale", err)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tab.Render()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "333") {
		t.Errorf("render = %q", out)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") || !strings.Contains(csv, "333,4") {
		t.Errorf("csv = %q", csv)
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{
		Title: "F", XLabel: "x", YLabel: "y",
		Lines: []Line{
			{Name: "l1", X: []float64{1, 2, 3}, Y: []float64{0.1, 0.2, 0.3}},
			{Name: "empty"},
		},
	}
	out := fig.Render()
	if !strings.Contains(out, "l1") || !strings.Contains(out, "(no data)") {
		t.Errorf("render = %q", out)
	}
}

func TestFigureCSV(t *testing.T) {
	fig := &Figure{
		Title: "F",
		Lines: []Line{{Name: "a", X: []float64{1, 2}, Y: []float64{0.5, 0.25}}},
	}
	csv := fig.CSV()
	if !strings.HasPrefix(csv, "line,x,y\n") {
		t.Errorf("csv header: %q", csv)
	}
	if !strings.Contains(csv, "a,1.0000,0.5000") {
		t.Errorf("csv rows: %q", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		0.25:   "0.2500",
		1e-7:   "1.000e-07",
		2.5e+7: "2.500e+07",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestTradeoffSweepTrend verifies the paper's central tradeoff (Tables
// I/II): reducing the exposure weight β lets the coverage deviation ΔC
// shrink while the exposure Ē grows.
func TestTradeoffSweepTrend(t *testing.T) {
	sweep, err := TradeoffSweep(sweepScale)
	if err != nil {
		t.Fatalf("TradeoffSweep: %v", err)
	}
	if len(sweep) != 6 {
		t.Fatalf("%d rows, want 6", len(sweep))
	}
	// Endpoints of the sweep: exposure-only (0:1) vs coverage-only (1:0).
	exposureOnly := sweep[0].Eval
	coverageOnly := sweep[len(sweep)-1].Eval
	if coverageOnly.DeltaC >= exposureOnly.DeltaC {
		t.Errorf("ΔC(1:0) = %v not below ΔC(0:1) = %v",
			coverageOnly.DeltaC, exposureOnly.DeltaC)
	}
	if coverageOnly.EBar <= exposureOnly.EBar {
		t.Errorf("Ē(1:0) = %v not above Ē(0:1) = %v",
			coverageOnly.EBar, exposureOnly.EBar)
	}
	// Coverage-only run should approach the target allocation
	// Φ = (0.4, 0.1, 0.1, 0.4).
	want := []float64{0.4, 0.1, 0.1, 0.4}
	for i, c := range coverageOnly.CBar {
		if diff := c - want[i]; diff > 0.08 || diff < -0.08 {
			t.Errorf("coverage-only C̄_%d = %v, target %v", i, c, want[i])
		}
	}
	// Exposure-only favors the interior PoIs (pass-through coverage), the
	// Table I signature: C̄_2, C̄_3 above their targets.
	if exposureOnly.CBar[1] <= want[1] || exposureOnly.CBar[2] <= want[2] {
		t.Errorf("exposure-only interior coverage %v should exceed targets %v",
			exposureOnly.CBar, want)
	}
}

func TestTableIAndIIStructure(t *testing.T) {
	tab1, err := TableI(testScale)
	if err != nil {
		t.Fatalf("TableI: %v", err)
	}
	if len(tab1.Rows) != 6 || len(tab1.Columns) != 5 {
		t.Errorf("Table I shape: %d rows, %d cols", len(tab1.Rows), len(tab1.Columns))
	}
	tab2, err := TableII(testScale)
	if err != nil {
		t.Fatalf("TableII: %v", err)
	}
	if len(tab2.Rows) != 6 || len(tab2.Columns) != 5 {
		t.Errorf("Table II shape: %d rows, %d cols", len(tab2.Rows), len(tab2.Columns))
	}
	if tab1.Rows[0][0] != "0:1" || tab1.Rows[5][0] != "1:0" {
		t.Errorf("ratio labels: %v", tab1.Rows)
	}
}

// TestTableIIIPerturbedBeatsAdaptive checks the paper's Table III shape:
// the perturbed algorithm's worst and average costs beat (or match) the
// adaptive algorithm's.
func TestTableIIIPerturbedBeatsAdaptive(t *testing.T) {
	tab, err := TableIII(testScale)
	if err != nil {
		t.Fatalf("TableIII: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	adAvg := parse(tab.Rows[0][2])
	adMax := parse(tab.Rows[0][3])
	peAvg := parse(tab.Rows[1][2])
	peMax := parse(tab.Rows[1][3])
	if peAvg > adAvg*1.02 {
		t.Errorf("perturbed avg %v worse than adaptive avg %v", peAvg, adAvg)
	}
	if peMax > adMax*1.02 {
		t.Errorf("perturbed max %v worse than adaptive max %v", peMax, adMax)
	}
}

// TestTableIVTrend: the measured tradeoff moves the right way as β
// shrinks (ΔC down, Ē up between the sweep endpoints).
func TestTableIVTrend(t *testing.T) {
	tab, err := TableIV(sweepScale)
	if err != nil {
		t.Fatalf("TableIV: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	dcFirst, ebFirst := parse(tab.Rows[0][1]), parse(tab.Rows[0][2])
	dcLast, ebLast := parse(tab.Rows[3][1]), parse(tab.Rows[3][2])
	if dcLast >= dcFirst {
		t.Errorf("measured ΔC: 1:0 row %v not below 0:1 row %v", dcLast, dcFirst)
	}
	if ebLast <= ebFirst {
		t.Errorf("measured Ē: 1:0 row %v not above 0:1 row %v", ebLast, ebFirst)
	}
}

func TestFigure2Structure(t *testing.T) {
	a, b, err := Figure2(testScale)
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	for _, fig := range []*Figure{a, b} {
		if len(fig.Lines) != 2 {
			t.Fatalf("%s: %d lines", fig.Title, len(fig.Lines))
		}
		for _, ln := range fig.Lines {
			if len(ln.X) != testScale.Runs {
				t.Errorf("%s/%s: %d points, want %d", fig.Title, ln.Name, len(ln.X), testScale.Runs)
			}
			// CDF must be monotone with final fraction 1.
			for i := 1; i < len(ln.Y); i++ {
				if ln.Y[i] < ln.Y[i-1] || ln.X[i] < ln.X[i-1] {
					t.Errorf("%s/%s: CDF not monotone", fig.Title, ln.Name)
					break
				}
			}
			if ln.Y[len(ln.Y)-1] != 1 {
				t.Errorf("%s/%s: CDF does not reach 1", fig.Title, ln.Name)
			}
		}
	}
}

// TestFigure2PerturbedTighter is the paper's headline Fig. 2 shape: the
// perturbed algorithm's cost spread across random starts is much tighter
// than the adaptive algorithm's, and its worst run is no worse.
func TestFigure2PerturbedTighter(t *testing.T) {
	a, _, err := Figure2(sweepScale)
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	spread := func(ln Line) (lo, hi float64) {
		return ln.X[0], ln.X[len(ln.X)-1]
	}
	var adaptive, perturbed Line
	for _, ln := range a.Lines {
		switch ln.Name {
		case "adaptive":
			adaptive = ln
		case "perturbed":
			perturbed = ln
		}
	}
	aLo, aHi := spread(adaptive)
	pLo, pHi := spread(perturbed)
	if pHi-pLo >= aHi-aLo {
		t.Errorf("perturbed spread %v not tighter than adaptive %v", pHi-pLo, aHi-aLo)
	}
	if pHi > aHi {
		t.Errorf("perturbed worst %v above adaptive worst %v", pHi, aHi)
	}
	if pLo > aLo*1.01 {
		t.Errorf("perturbed best %v worse than adaptive best %v", pLo, aLo)
	}
}

func TestFigure3To5Structure(t *testing.T) {
	f3, err := Figure3(testScale)
	if err != nil {
		t.Fatalf("Figure3: %v", err)
	}
	if len(f3.Lines) != 3 {
		t.Errorf("Figure 3 lines = %d", len(f3.Lines))
	}
	f4, err := Figure4(testScale)
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	if len(f4.Lines) != 1 || len(f4.Lines[0].Y) == 0 {
		t.Error("Figure 4 empty")
	}
	// Basic algorithm's U decreases across the run.
	y := f4.Lines[0].Y
	if y[len(y)-1] > y[0] {
		t.Errorf("Figure 4: U increased from %v to %v", y[0], y[len(y)-1])
	}
	f5a, f5b, err := Figure5(testScale)
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	if len(f5a.Lines) != 1 || len(f5b.Lines) != 3 {
		t.Errorf("Figure 5 lines = %d/%d", len(f5a.Lines), len(f5b.Lines))
	}
}

func TestFigure6Structure(t *testing.T) {
	dc, eb, err := Figure6(testScale)
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	for _, fig := range []*Figure{dc, eb} {
		if len(fig.Lines) != 3 {
			t.Fatalf("%s: %d lines, want mean/p25/p75", fig.Title, len(fig.Lines))
		}
		if len(fig.Lines[0].Y) == 0 {
			t.Fatalf("%s: empty mean line", fig.Title)
		}
	}
	// ΔC should improve over the run (α=1, β=0 optimizes coverage).
	y := dc.Lines[0].Y
	if y[len(y)-1] > y[0] {
		t.Errorf("simulated ΔC rose from %v to %v", y[0], y[len(y)-1])
	}
}

func TestFigure8Structure(t *testing.T) {
	dc, eb, u, err := Figure8(testScale)
	if err != nil {
		t.Fatalf("Figure8: %v", err)
	}
	if dc == nil || eb == nil || u == nil {
		t.Fatal("nil figure")
	}
	if len(u.Lines[0].Y) == 0 {
		t.Fatal("empty U line")
	}
	y := u.Lines[0].Y
	if y[len(y)-1] > y[0] {
		t.Errorf("U rose from %v to %v", y[0], y[len(y)-1])
	}
}

// TestBaselineMCMC verifies the motivating comparison: the optimized
// chain achieves a cost no worse than the Metropolis–Hastings baseline
// under the full multi-objective model.
func TestBaselineMCMC(t *testing.T) {
	tab, err := BaselineMCMC(sweepScale)
	if err != nil {
		t.Fatalf("BaselineMCMC: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	mhU := parse(tab.Rows[0][3])
	sdU := parse(tab.Rows[1][3])
	if sdU > mhU {
		t.Errorf("steepest descent U %v worse than MH baseline %v", sdU, mhU)
	}
}

func TestAblationStepSize(t *testing.T) {
	tab, err := AblationStepSize(testScale)
	if err != nil {
		t.Fatalf("AblationStepSize: %v", err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	// The adaptive policy (last row) must beat the smallest fixed step
	// (first row) under the same budget.
	if ad, fx := parse(tab.Rows[4][1]), parse(tab.Rows[0][1]); ad > fx {
		t.Errorf("adaptive U %v worse than tiny fixed step %v", ad, fx)
	}
}

func TestAblationWarmStart(t *testing.T) {
	tab, err := AblationWarmStart(testScale)
	if err != nil {
		t.Fatalf("AblationWarmStart: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	if cold, warm := parse(tab.Rows[0][1]), parse(tab.Rows[1][1]); warm > cold {
		t.Errorf("warm start U %v worse than cold %v", warm, cold)
	}
}

func TestAblationNoise(t *testing.T) {
	tab, err := AblationNoise(testScale)
	if err != nil {
		t.Fatalf("AblationNoise: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTableMixing(t *testing.T) {
	tab, err := TableMixing(testScale)
	if err != nil {
		t.Fatalf("TableMixing: %v", err)
	}
	if len(tab.Rows) != 6 || len(tab.Columns) != 5 {
		t.Fatalf("shape: %d rows, %d cols", len(tab.Rows), len(tab.Columns))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	for _, row := range tab.Rows {
		gap := parse(row[1])
		if gap < 0 || gap > 1 {
			t.Errorf("row %s: gap %v outside [0,1]", row[0], gap)
		}
		if mixing := parse(row[2]); mixing < 1 {
			t.Errorf("row %s: mixing %v", row[0], mixing)
		}
	}
}

func TestTableDetection(t *testing.T) {
	tab, err := TableDetection(testScale)
	if err != nil {
		t.Fatalf("TableDetection: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	for _, row := range tab.Rows {
		mean := parse(row[1])
		worst := parse(row[2])
		if mean <= 0 || worst < mean {
			t.Errorf("row %s: mean %v worst %v", row[0], mean, worst)
		}
	}
}

func TestTableFleet(t *testing.T) {
	tab, err := TableFleet(testScale)
	if err != nil {
		t.Fatalf("TableFleet: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	// The worst mean gap must shrink from 1 sensor to 4.
	if g1, g4 := parse(tab.Rows[0][2]), parse(tab.Rows[3][2]); g4 >= g1 {
		t.Errorf("fleet gaps not shrinking: K=1 %v, K=4 %v", g1, g4)
	}
}

func TestExtensions(t *testing.T) {
	energy, err := ExtensionEnergy(testScale)
	if err != nil {
		t.Fatalf("ExtensionEnergy: %v", err)
	}
	if len(energy.Rows) != 4 {
		t.Fatalf("energy rows = %d", len(energy.Rows))
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	// Stronger energy weight (toward γ=0) must reduce mean travel.
	if d0, d3 := parse(energy.Rows[0][2]), parse(energy.Rows[3][2]); d3 >= d0 {
		t.Errorf("travel with weight 10 (%v) not below weight 0 (%v)", d3, d0)
	}
	entropy, err := ExtensionEntropy(testScale)
	if err != nil {
		t.Fatalf("ExtensionEntropy: %v", err)
	}
	if len(entropy.Rows) != 4 {
		t.Fatalf("entropy rows = %d", len(entropy.Rows))
	}
	// Stronger entropy weight must raise the chain's entropy rate.
	if h0, h3 := parse(entropy.Rows[0][1]), parse(entropy.Rows[3][1]); h3 <= h0 {
		t.Errorf("entropy with λ=1 (%v) not above λ=0 (%v)", h3, h0)
	}
}
