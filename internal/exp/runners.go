package exp

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/descent"
	"repro/internal/mat"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// weightRatio is one α:β configuration of a sweep.
type weightRatio struct {
	label string
	alpha float64
	beta  float64
}

// tradeoffRatios is the α:β sweep of Tables I and II.
var tradeoffRatios = []weightRatio{
	{"0:1", 0, 1},
	{"1:1", 1, 1},
	{"1:0.01", 1, 0.01},
	{"1:0.0001", 1, 1e-4},
	{"1:0.000001", 1, 1e-6},
	{"1:0", 1, 0},
}

// tableIVRatios is the α:β sweep of Table IV.
var tableIVRatios = []weightRatio{
	{"0:1", 0, 1},
	{"1:1", 1, 1},
	{"1:0.0001", 1, 1e-4},
	{"1:0", 1, 0},
}

// newModel builds the uniform-weight cost model the paper evaluates
// (α_i = α, β_i = β, ε = 1e-4).
func newModel(top *topology.Topology, alpha, beta float64) (*cost.Model, error) {
	return cost.NewModel(top, cost.Uniform(top.M(), alpha, beta))
}

// costUniform and newCustomModel are thin aliases so extension
// experiments can adjust the §VII weights before building the model.
func costUniform(m int, alpha, beta float64) cost.Weights {
	return cost.Uniform(m, alpha, beta)
}

func newCustomModel(top *topology.Topology, w cost.Weights) (*cost.Model, error) {
	return cost.NewModel(top, w)
}

// optimizerOptions returns the descent configuration used throughout the
// harness for the given variant and scale.
func optimizerOptions(variant descent.Variant, sc Scale, seed uint64) descent.Options {
	opts := descent.Options{
		Variant:  variant,
		MaxIters: sc.OptIters,
		Seed:     seed,
	}
	switch variant {
	case descent.Adaptive:
		// Let the local-optimum detector actually fire: the paper's
		// adaptive algorithm terminates at Δt* = 0.
		opts.Tolerance = 1e-5
		opts.StallIters = maxInt(30, sc.OptIters/20)
	case descent.Perturbed:
		opts.Tolerance = 1e-7
		opts.StallIters = maxInt(100, sc.OptIters/3)
	case descent.Basic:
		opts.StallIters = sc.OptIters + 1 // run the full budget
	}
	return opts
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// optimize runs one optimization and returns the result.
func optimize(top *topology.Topology, alpha, beta float64, variant descent.Variant, sc Scale, seed uint64) (*descent.Result, error) {
	model, err := newModel(top, alpha, beta)
	if err != nil {
		return nil, err
	}
	opt, err := descent.New(model, optimizerOptions(variant, sc, seed))
	if err != nil {
		return nil, err
	}
	return opt.Run()
}

// simulateMatrix runs sc.SimReps simulations of the matrix and returns
// summaries of the measured ΔC and Ē.
func simulateMatrix(top *topology.Topology, p *mat.Matrix, sc Scale, seed uint64, model sim.TimeModel) (deltaC, eBar stats.Summary, err error) {
	runs, err := sim.RunMany(sim.Config{
		Topology:  top,
		P:         p,
		Steps:     sc.SimSteps,
		Seed:      seed,
		TimeModel: model,
	}, sc.SimReps)
	if err != nil {
		return stats.Summary{}, stats.Summary{}, err
	}
	dcs := make([]float64, len(runs))
	ebs := make([]float64, len(runs))
	for i, r := range runs {
		dcs[i] = r.DeltaC
		ebs[i] = r.EBar
	}
	deltaC, err = stats.Summarize(dcs)
	if err != nil {
		return stats.Summary{}, stats.Summary{}, err
	}
	eBar, err = stats.Summarize(ebs)
	if err != nil {
		return stats.Summary{}, stats.Summary{}, err
	}
	return deltaC, eBar, nil
}

// TradeoffResult is one row of the Tables I/II sweep.
type TradeoffResult struct {
	Ratio string
	Eval  *cost.Evaluation
}

// TradeoffSweep optimizes Topology 3 with the perturbed algorithm for
// every α:β ratio of Tables I and II and returns the converged
// evaluations.
func TradeoffSweep(sc Scale) ([]TradeoffResult, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	top := topology.Topology3()
	out := make([]TradeoffResult, 0, len(tradeoffRatios))
	for i, r := range tradeoffRatios {
		res, err := optimize(top, r.alpha, r.beta, descent.Perturbed, sc, sc.Seed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("exp: sweep %s: %w", r.label, err)
		}
		out = append(out, TradeoffResult{Ratio: r.label, Eval: res.Eval})
	}
	return out, nil
}

// TableI reports the achieved coverage-time distribution C̄_i per α:β
// ratio (paper Table I, Topology 3).
func TableI(sc Scale) (*Table, error) {
	sweep, err := TradeoffSweep(sc)
	if err != nil {
		return nil, err
	}
	return tableFromSweep("Table I: C̄_i per α:β (Topology 3)", sweep, func(ev *cost.Evaluation) []float64 {
		return ev.CBar
	}), nil
}

// TableII reports the per-PoI mean exposure times Ē_i per α:β ratio
// (paper Table II, Topology 3).
func TableII(sc Scale) (*Table, error) {
	sweep, err := TradeoffSweep(sc)
	if err != nil {
		return nil, err
	}
	return tableFromSweep("Table II: Ē_i per α:β (Topology 3)", sweep, func(ev *cost.Evaluation) []float64 {
		return ev.EBarI
	}), nil
}

// tableFromSweep renders one per-PoI vector per sweep row.
func tableFromSweep(title string, sweep []TradeoffResult, pick func(*cost.Evaluation) []float64) *Table {
	if len(sweep) == 0 {
		return &Table{Title: title}
	}
	m := len(pick(sweep[0].Eval))
	cols := make([]string, 0, m+1)
	cols = append(cols, "α:β")
	for i := 1; i <= m; i++ {
		cols = append(cols, fmt.Sprintf("PoI %d", i))
	}
	t := &Table{Title: title, Columns: cols}
	for _, row := range sweep {
		cells := make([]string, 0, m+1)
		cells = append(cells, row.Ratio)
		for _, v := range pick(row.Eval) {
			cells = append(cells, FormatFloat(v))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}

// TableIII compares the distribution of best costs reached by the
// adaptive and perturbed algorithms over sc.Runs random starts (paper
// Table III: Topology 1, α=0, β=1).
func TableIII(sc Scale) (*Table, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	top := topology.Topology1()
	model, err := newModel(top, 0, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table III: best cost over runs (Topology 1, α=0, β=1)",
		Columns: []string{"algorithm", "min", "avg", "max"},
	}
	for _, variant := range []descent.Variant{descent.Adaptive, descent.Perturbed} {
		results, err := descent.RunMany(model, optimizerOptions(variant, sc, sc.Seed), sc.Runs)
		if err != nil {
			return nil, fmt.Errorf("exp: table III %s: %w", variant, err)
		}
		us := make([]float64, len(results))
		for i, r := range results {
			us[i] = r.Eval.U
		}
		sum, err := stats.Summarize(us)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			variant.String(),
			FormatFloat(sum.Min), FormatFloat(sum.Mean), FormatFloat(sum.Max),
		})
	}
	return t, nil
}

// TableIV drives Markov simulations with the converged matrices and
// reports the measured ΔC and Ē per α:β ratio (paper Table IV,
// Topology 1).
func TableIV(sc Scale) (*Table, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	top := topology.Topology1()
	t := &Table{
		Title:   "Table IV: measured ΔC and Ē per α:β (Topology 1, simulated)",
		Columns: []string{"α:β", "ΔC", "Ē"},
	}
	for i, r := range tableIVRatios {
		res, err := optimize(top, r.alpha, r.beta, descent.Perturbed, sc, sc.Seed+uint64(100+i))
		if err != nil {
			return nil, fmt.Errorf("exp: table IV %s: %w", r.label, err)
		}
		dc, eb, err := simulateMatrix(top, res.P, sc, sc.Seed+uint64(200+i), sim.UnitStep)
		if err != nil {
			return nil, fmt.Errorf("exp: table IV %s: %w", r.label, err)
		}
		t.Rows = append(t.Rows, []string{r.label, FormatFloat(dc.Mean), FormatFloat(eb.Mean)})
	}
	return t, nil
}

// BaselineMCMC compares a Metropolis–Hastings chain targeting Φ against
// the perturbed steepest-descent solution under the full cost model
// (Topology 3, α=1, β=1) — the comparison motivating §II.
func BaselineMCMC(sc Scale) (*Table, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	top := topology.Topology3()
	model, err := newModel(top, 1, 1)
	if err != nil {
		return nil, err
	}
	res, err := optimize(top, 1, 1, descent.Perturbed, sc, sc.Seed+999)
	if err != nil {
		return nil, err
	}
	mhP, err := baselineMatrix(top)
	if err != nil {
		return nil, err
	}
	mhEval, err := model.Evaluate(mhP)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Baseline: Metropolis–Hastings vs steepest descent (Topology 3, α=1, β=1)",
		Columns: []string{"chain", "ΔC", "Ē", "U"},
	}
	t.Rows = append(t.Rows,
		[]string{"metropolis-hastings", FormatFloat(mhEval.DeltaC), FormatFloat(mhEval.EBar), FormatFloat(mhEval.U)},
		[]string{"steepest-descent", FormatFloat(res.Eval.DeltaC), FormatFloat(res.Eval.EBar), FormatFloat(res.Eval.U)},
	)
	return t, nil
}
