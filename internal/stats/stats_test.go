package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s, err := Summarize([]float64{4, 1, 3, 2, 5})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Errorf("quartiles = %v/%v, want 2/4", s.P25, s.P75)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Errorf("stddev = %v, want sqrt(2)", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Median != 7 || s.StdDev != 0 {
		t.Errorf("summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	data := []float64{3, 1, 2}
	if _, err := Summarize(data); err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if data[0] != 3 || data[1] != 1 || data[2] != 2 {
		t.Errorf("input mutated: %v", data)
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{10, 20, 30, 40}
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20},
	}
	for _, tc := range cases {
		got, err := Quantile(data, tc.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tc.q, err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := Quantile(data, 1.5); err == nil {
		t.Error("out-of-range quantile should error")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestCDF(t *testing.T) {
	pts, err := CDF([]float64{3, 1, 2})
	if err != nil {
		t.Fatalf("CDF: %v", err)
	}
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].Value != 1 || math.Abs(pts[0].Fraction-1.0/3) > 1e-12 {
		t.Errorf("pts[0] = %+v", pts[0])
	}
	if pts[2].Value != 3 || pts[2].Fraction != 1 {
		t.Errorf("pts[2] = %+v", pts[2])
	}
	if _, err := CDF(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(data []float64) bool {
		if len(data) == 0 {
			return true
		}
		for i, v := range data {
			if math.IsNaN(v) {
				data[i] = 0
			}
		}
		pts, err := CDF(data)
		if err != nil {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Value < pts[i-1].Value || pts[i].Fraction < pts[i-1].Fraction {
				return false
			}
		}
		return pts[len(pts)-1].Fraction == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	m, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	if m != 2.5 {
		t.Errorf("Mean = %v", m)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestHistogram(t *testing.T) {
	counts, edges, err := Histogram([]float64{0, 0.1, 0.2, 0.9, 1.0}, 2)
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	if len(counts) != 2 || len(edges) != 3 {
		t.Fatalf("shapes: %d counts, %d edges", len(counts), len(edges))
	}
	if counts[0] != 3 || counts[1] != 2 {
		t.Errorf("counts = %v, want [3 2]", counts)
	}
	if edges[0] != 0 || edges[2] != 1 {
		t.Errorf("edges = %v", edges)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	counts, _, err := Histogram([]float64{5, 5, 5}, 3)
	if err != nil {
		t.Fatalf("Histogram: %v", err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Errorf("total binned = %d, want 3", total)
	}
	if _, _, err := Histogram(nil, 3); !errors.Is(err, ErrEmpty) {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
	if _, _, err := Histogram([]float64{1}, 0); err == nil {
		t.Error("zero bins should error")
	}
}

func TestSummaryOrderingProperty(t *testing.T) {
	f := func(data []float64) bool {
		if len(data) == 0 {
			return true
		}
		for i, v := range data {
			// Keep magnitudes where sum-of-squares cannot overflow; the
			// package targets experiment metrics, not astronomic values.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				data[i] = 0
			} else {
				data[i] = math.Mod(v, 1e9)
			}
		}
		s, err := Summarize(data)
		if err != nil {
			return false
		}
		return s.Min <= s.P25 && s.P25 <= s.Median &&
			s.Median <= s.P75 && s.P75 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
