// Package stats provides the small set of descriptive statistics the
// experiment harness reports: summaries with percentiles (Table III,
// Figs. 6–8 error bars) and empirical CDFs (Fig. 2).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty indicates a statistic was requested over no data.
var ErrEmpty = errors.New("stats: empty data")

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	P25    float64
	P75    float64
	StdDev float64
}

// Summarize computes a Summary of the sample.
func Summarize(data []float64) (Summary, error) {
	if len(data) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)

	var sum, sumSq float64
	for _, v := range sorted {
		sum += v
		sumSq += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // numeric guard for near-constant samples
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Median: quantileSorted(sorted, 0.5),
		P25:    quantileSorted(sorted, 0.25),
		P75:    quantileSorted(sorted, 0.75),
		StdDev: math.Sqrt(variance),
	}, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the sample using linear
// interpolation between order statistics.
func Quantile(data []float64, q float64) (float64, error) {
	if len(data) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// quantileSorted interpolates the q-quantile of pre-sorted data.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	// Value is a sample value.
	Value float64
	// Fraction is the fraction of samples ≤ Value.
	Fraction float64
}

// CDF returns the empirical distribution function of the sample as a
// sorted sequence of (value, fraction ≤ value) points.
func CDF(data []float64) ([]CDFPoint, error) {
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(sorted))}
	}
	return out, nil
}

// Mean returns the arithmetic mean of the sample.
func Mean(data []float64) (float64, error) {
	if len(data) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, v := range data {
		sum += v
	}
	return sum / float64(len(data)), nil
}

// Histogram bins the sample into `bins` equal-width buckets over
// [min, max] and returns the per-bucket counts and the bucket edges
// (len(edges) == bins+1).
func Histogram(data []float64, bins int) (counts []int, edges []float64, err error) {
	if len(data) == 0 {
		return nil, nil, ErrEmpty
	}
	if bins <= 0 {
		return nil, nil, fmt.Errorf("stats: %d bins", bins)
	}
	lo, hi := data[0], data[0]
	for _, v := range data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo == hi {
		hi = lo + 1 // all identical; one wide bucket
	}
	counts = make([]int, bins)
	edges = make([]float64, bins+1)
	width := (hi - lo) / float64(bins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, v := range data {
		idx := int((v - lo) / width)
		if idx >= bins {
			idx = bins - 1
		}
		counts[idx]++
	}
	return counts, edges, nil
}
