package topology

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/route"
)

// wallConfig builds a 1×3 line with a wall between PoIs 1 and 2 (0-based
// 0 and 1), forcing a detour.
func wallConfig(t *testing.T) (Config, *route.Planner) {
	t.Helper()
	planner, err := route.New([]route.Rect{{MinX: 0.9, MinY: -0.5, MaxX: 1.1, MaxY: 1.5}}, 1e-6)
	if err != nil {
		t.Fatalf("route.New: %v", err)
	}
	return Config{
		Name: "walled",
		PoIs: []PoI{
			{Pos: geom.Point{X: 0.5, Y: 0.5}, Pause: 1},
			{Pos: geom.Point{X: 1.5, Y: 0.5}, Pause: 1},
			{Pos: geom.Point{X: 2.5, Y: 0.5}, Pause: 1},
		},
		Target: []float64{0.4, 0.3, 0.3},
		Range:  0.25,
		Speed:  1,
		Router: planner,
	}, planner
}

func TestRoutedTopologyDetourLengthens(t *testing.T) {
	cfg, _ := wallConfig(t)
	walled, err := New(cfg)
	if err != nil {
		t.Fatalf("New walled: %v", err)
	}
	cfg.Router = nil
	open, err := New(cfg)
	if err != nil {
		t.Fatalf("New open: %v", err)
	}
	// Crossing the wall (0 -> 1) must be longer than the direct hop.
	if walled.Distance(0, 1) <= open.Distance(0, 1) {
		t.Errorf("walled distance %v not above open %v", walled.Distance(0, 1), open.Distance(0, 1))
	}
	if walled.MoveTime(0, 1) <= open.MoveTime(0, 1) {
		t.Errorf("walled move time %v not above open %v", walled.MoveTime(0, 1), open.MoveTime(0, 1))
	}
	// The unblocked hop 1 -> 2 stays direct.
	if math.Abs(walled.Distance(1, 2)-open.Distance(1, 2)) > 1e-9 {
		t.Errorf("unblocked hop changed: %v vs %v", walled.Distance(1, 2), open.Distance(1, 2))
	}
	// The routed path has waypoints.
	if len(walled.Path(0, 1)) < 3 {
		t.Errorf("path 0->1 = %v, want a detour", walled.Path(0, 1))
	}
	if len(walled.Path(1, 2)) != 2 {
		t.Errorf("path 1->2 = %v, want direct", walled.Path(1, 2))
	}
}

func TestRoutedTopologyConventionsPreserved(t *testing.T) {
	cfg, _ := wallConfig(t)
	top, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m := top.M()
	for j := 0; j < m; j++ {
		for k := 0; k < m; k++ {
			if j == k {
				continue
			}
			if got := top.CoverTime(j, k, j); got != 0 {
				t.Errorf("T_{%d%d,%d} = %v, want 0 (origin convention)", j, k, j, got)
			}
			if got := top.CoverTime(j, k, k); got != top.PoIAt(k).Pause {
				t.Errorf("T_{%d%d,%d} = %v, want pause", j, k, k, got)
			}
			// Coverage windows never exceed the transition duration.
			var sum float64
			for i := 0; i < m; i++ {
				sum += top.CoverTime(j, k, i)
			}
			if sum > top.TravelTime(j, k)+1e-9 {
				t.Errorf("coverage sum %v exceeds T_%d%d = %v", sum, j, k, top.TravelTime(j, k))
			}
		}
	}
}

func TestRoutedDetourAvoidsPassThrough(t *testing.T) {
	// Without the wall, 0 -> 2 passes straight through PoI 1. The detour
	// hugs the wall corner at y ≈ 1.5, far above PoI 1's 0.25 range, so
	// the pass-through disappears.
	cfg, _ := wallConfig(t)
	walled, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cfg.Router = nil
	open, err := New(cfg)
	if err != nil {
		t.Fatalf("New open: %v", err)
	}
	if got := open.CoverTime(0, 2, 1); got <= 0 {
		t.Fatalf("open topology should pass through PoI 1, got %v", got)
	}
	if got := walled.CoverTime(0, 2, 1); got != 0 {
		t.Errorf("walled topology still passes PoI 1 for %v", got)
	}
}

func TestRoutedUnreachablePoIFailsConstruction(t *testing.T) {
	// Box in the middle PoI completely.
	planner, err := route.New([]route.Rect{
		{MinX: 1.0, MinY: -0.5, MaxX: 1.2, MaxY: 1.5},
		{MinX: 1.8, MinY: -0.5, MaxX: 2.0, MaxY: 1.5},
		{MinX: 1.0, MinY: -0.7, MaxX: 2.0, MaxY: -0.5},
		{MinX: 1.0, MinY: 1.5, MaxX: 2.0, MaxY: 1.7},
	}, 1e-6)
	if err != nil {
		t.Fatalf("route.New: %v", err)
	}
	cfg, _ := wallConfig(t)
	cfg.Router = planner
	if _, err := New(cfg); !errors.Is(err, ErrInvalid) {
		t.Errorf("err = %v, want ErrInvalid for unreachable PoI", err)
	}
}

func TestWithTargetPreservesRouting(t *testing.T) {
	cfg, _ := wallConfig(t)
	top, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	re, err := top.WithTarget([]float64{0.2, 0.4, 0.4})
	if err != nil {
		t.Fatalf("WithTarget: %v", err)
	}
	if math.Abs(re.Distance(0, 1)-top.Distance(0, 1)) > 1e-12 {
		t.Errorf("WithTarget lost the routed distance: %v vs %v",
			re.Distance(0, 1), top.Distance(0, 1))
	}
}

func TestPathAccessorStraightLine(t *testing.T) {
	top := Topology2()
	p := top.Path(0, 2)
	if len(p) != 2 {
		t.Fatalf("straight-line path has %d points", len(p))
	}
	if top.Path(1, 1)[0] != top.PoIAt(1).Pos {
		t.Error("self path should be the PoI position")
	}
}
