package topology

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/rng"
)

// RandomConfig parameterizes Random.
type RandomConfig struct {
	// M is the number of PoIs (≥ 2).
	M int
	// Width and Height bound the placement area.
	Width, Height float64
	// Range is the sensing range (DefaultRange if zero).
	Range float64
	// Speed is the travel speed (DefaultSpeed if zero).
	Speed float64
	// MinPause and MaxPause bound the per-PoI dwell times
	// (DefaultPause for both if zero).
	MinPause, MaxPause float64
	// SkewTarget, when true, draws the target allocation from a Dirichlet
	// with small concentration (spiky targets); otherwise targets are
	// near-uniform.
	SkewTarget bool
}

// Random generates a valid random topology: PoIs are placed uniformly in
// the area with pairwise separation strictly above 2r (rejection
// sampling), pauses are uniform in [MinPause, MaxPause], and the target
// allocation is a Dirichlet draw. It is the workload generator behind the
// end-to-end property tests and robustness benchmarks.
func Random(src *rng.Source, cfg RandomConfig) (*Topology, error) {
	if cfg.M < 2 {
		return nil, fmt.Errorf("%w: M = %d", ErrInvalid, cfg.M)
	}
	if cfg.Range == 0 {
		cfg.Range = DefaultRange
	}
	if cfg.Speed == 0 {
		cfg.Speed = DefaultSpeed
	}
	if cfg.MinPause == 0 {
		cfg.MinPause = DefaultPause
	}
	if cfg.MaxPause == 0 {
		cfg.MaxPause = cfg.MinPause
	}
	if cfg.MaxPause < cfg.MinPause {
		return nil, fmt.Errorf("%w: pause bounds [%v, %v]", ErrInvalid, cfg.MinPause, cfg.MaxPause)
	}
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("%w: area %vx%v", ErrInvalid, cfg.Width, cfg.Height)
	}
	// Feasibility heuristic: each PoI needs a disk of radius 2r to
	// itself; refuse configurations that rejection sampling cannot
	// plausibly satisfy.
	sep := 2 * cfg.Range
	if float64(cfg.M)*(sep*sep*4) > cfg.Width*cfg.Height {
		return nil, fmt.Errorf("%w: %d PoIs with separation %v cannot fit %vx%v",
			ErrInvalid, cfg.M, sep, cfg.Width, cfg.Height)
	}

	pois := make([]PoI, 0, cfg.M)
	const maxAttempts = 100000
	attempts := 0
	for len(pois) < cfg.M {
		if attempts++; attempts > maxAttempts {
			return nil, fmt.Errorf("%w: placement did not converge", ErrInvalid)
		}
		cand := geom.Point{
			X: src.Uniform(0, cfg.Width),
			Y: src.Uniform(0, cfg.Height),
		}
		ok := true
		for _, p := range pois {
			if geom.Dist(p.Pos, cand) <= sep {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		pause := cfg.MinPause
		if cfg.MaxPause > cfg.MinPause {
			pause = src.Uniform(cfg.MinPause, cfg.MaxPause)
		}
		pois = append(pois, PoI{Pos: cand, Pause: pause})
	}

	target := make([]float64, cfg.M)
	alpha := 5.0
	if cfg.SkewTarget {
		alpha = 0.5
	}
	src.DirichletRow(target, alpha)
	// Keep every target strictly positive so coverage goals are
	// meaningful, then renormalize.
	var sum float64
	floor := 0.01 / float64(cfg.M)
	for i := range target {
		if target[i] < floor {
			target[i] = floor
		}
		sum += target[i]
	}
	for i := range target {
		target[i] /= sum
	}

	return New(Config{
		Name:   fmt.Sprintf("random-%d", cfg.M),
		PoIs:   pois,
		Target: target,
		Range:  cfg.Range,
		Speed:  cfg.Speed,
	})
}
