package topology

import (
	"fmt"

	"repro/internal/geom"
)

// Defaults shared by the four reconstructed paper topologies (Fig. 1).
// Cells have unit side; each PoI sits at its cell center; the sensing
// range is a quarter cell so straight-line paths through a cell cover its
// PoI but diagonal paths through cell corners do not.
const (
	// DefaultRange is the sensing range r used by the paper topologies.
	DefaultRange = 0.25
	// DefaultSpeed is the travel speed.
	DefaultSpeed = 1.0
	// DefaultPause is the dwell time at each PoI per visit.
	DefaultPause = 1.0
)

// Line builds a 1×n line of PoIs with unit spacing and the given target.
func Line(name string, n int, target []float64) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: line needs n >= 2, got %d", ErrInvalid, n)
	}
	pois := make([]PoI, n)
	for i := range pois {
		pois[i] = PoI{Pos: geom.Point{X: float64(i) + 0.5, Y: 0.5}, Pause: DefaultPause}
	}
	return New(Config{
		Name:   name,
		PoIs:   pois,
		Target: target,
		Range:  DefaultRange,
		Speed:  DefaultSpeed,
	})
}

// Grid builds a rows×cols grid of PoIs at unit-cell centers, numbered in
// row-major order, with the given target.
func Grid(name string, rows, cols int, target []float64) (*Topology, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("%w: grid %dx%d too small", ErrInvalid, rows, cols)
	}
	pois := make([]PoI, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pois = append(pois, PoI{
				Pos:   geom.Point{X: float64(c) + 0.5, Y: float64(r) + 0.5},
				Pause: DefaultPause,
			})
		}
	}
	return New(Config{
		Name:   name,
		PoIs:   pois,
		Target: target,
		Range:  DefaultRange,
		Speed:  DefaultSpeed,
	})
}

// Topology1 reconstructs the paper's Topology 1: a 2×2 grid of four PoIs
// with a skewed target allocation. Diagonal paths clear the off-path PoIs,
// so this topology has no pass-through coupling — the cleanest setting for
// studying the optimizer itself (Fig. 2, Tables III/IV, Fig. 8).
func Topology1() *Topology {
	t, err := Grid("topology-1", 2, 2, []float64{0.10, 0.20, 0.30, 0.40})
	if err != nil {
		// The builders above are exercised with these exact constants in
		// tests; failure here is a programming error.
		panic(err)
	}
	return t
}

// Topology2 reconstructs Topology 2: a 1×3 line. Traveling 1→3 passes
// through PoI 2, the smallest topology with pass-through coupling
// (Figs. 5, 6).
func Topology2() *Topology {
	t, err := Line("topology-2", 3, []float64{0.45, 0.10, 0.45})
	if err != nil {
		panic(err)
	}
	return t
}

// Topology3 reconstructs Topology 3: a 1×4 line with the target pinned by
// Table I, Φ = (0.4, 0.1, 0.1, 0.4). The interior PoIs receive
// pass-through coverage whenever the sensor crosses the line, which is why
// the exposure-only optimum of Table I concentrates coverage there
// (Tables I/II, Fig. 3).
func Topology3() *Topology {
	t, err := Line("topology-3", 4, []float64{0.40, 0.10, 0.10, 0.40})
	if err != nil {
		panic(err)
	}
	return t
}

// Topology4 reconstructs Topology 4: a 3×3 grid of nine PoIs with mass
// concentrated on the corners, the larger map of Fig. 7. Straight lines
// between opposite corners and edges pass through the center cell.
func Topology4() *Topology {
	t, err := Grid("topology-4", 3, 3, []float64{
		0.20, 0.04, 0.20,
		0.04, 0.04, 0.04,
		0.20, 0.04, 0.20,
	})
	if err != nil {
		panic(err)
	}
	return t
}

// Paper returns the four reconstructed topologies indexed 1..4.
func Paper(n int) (*Topology, error) {
	switch n {
	case 1:
		return Topology1(), nil
	case 2:
		return Topology2(), nil
	case 3:
		return Topology3(), nil
	case 4:
		return Topology4(), nil
	default:
		return nil, fmt.Errorf("%w: paper topology %d (want 1..4)", ErrInvalid, n)
	}
}
