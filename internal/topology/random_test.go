package topology

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func TestRandomValidation(t *testing.T) {
	src := rng.New(1)
	cases := []RandomConfig{
		{M: 1, Width: 5, Height: 5},
		{M: 4, Width: 0, Height: 5},
		{M: 4, Width: 5, Height: -1},
		{M: 4, Width: 5, Height: 5, MinPause: 2, MaxPause: 1},
		{M: 100, Width: 1, Height: 1, Range: 0.25}, // cannot fit
	}
	for i, cfg := range cases {
		if _, err := Random(src, cfg); !errors.Is(err, ErrInvalid) {
			t.Errorf("case %d: err = %v, want ErrInvalid", i, err)
		}
	}
}

func TestRandomProducesValidTopologies(t *testing.T) {
	src := rng.New(2)
	for trial := 0; trial < 100; trial++ {
		m := 2 + src.IntN(8)
		top, err := Random(src, RandomConfig{
			M: m, Width: 8, Height: 8,
			MinPause: 0.5, MaxPause: 2,
			SkewTarget: trial%2 == 0,
		})
		if err != nil {
			t.Fatalf("trial %d: Random: %v", trial, err)
		}
		if top.M() != m {
			t.Fatalf("trial %d: M = %d, want %d", trial, top.M(), m)
		}
		// Separation constraint (also enforced by New, but assert the
		// generator's own guarantee).
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				if d := geom.Dist(top.PoIAt(i).Pos, top.PoIAt(j).Pos); d <= 2*top.Range() {
					t.Fatalf("trial %d: PoIs %d,%d at distance %v", trial, i, j, d)
				}
			}
		}
		var sum float64
		for i := 0; i < m; i++ {
			v := top.TargetAt(i)
			if v <= 0 {
				t.Fatalf("trial %d: target %d = %v", trial, i, v)
			}
			sum += v
			p := top.PoIAt(i)
			if p.Pause < 0.5 || p.Pause > 2 {
				t.Fatalf("trial %d: pause %v outside bounds", trial, p.Pause)
			}
			if p.Pos.X < 0 || p.Pos.X > 8 || p.Pos.Y < 0 || p.Pos.Y > 8 {
				t.Fatalf("trial %d: PoI outside area: %v", trial, p.Pos)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: targets sum to %v", trial, sum)
		}
	}
}

// TestRandomTopologyConventions applies the paper's timing-convention
// invariants to random layouts: origin coverage zero, destination
// coverage equals the pause, total coverage bounded by the transition
// duration, and symmetric travel distances.
func TestRandomTopologyConventions(t *testing.T) {
	src := rng.New(808)
	for trial := 0; trial < 30; trial++ {
		top, err := Random(src, RandomConfig{
			M: 3 + src.IntN(5), Width: 9, Height: 9,
			MinPause: 0.2, MaxPause: 4,
		})
		if err != nil {
			t.Fatalf("trial %d: Random: %v", trial, err)
		}
		m := top.M()
		for j := 0; j < m; j++ {
			for k := 0; k < m; k++ {
				if j != k {
					if top.CoverTime(j, k, j) != 0 {
						t.Fatalf("trial %d: origin covered", trial)
					}
					if math.Abs(top.CoverTime(j, k, k)-top.PoIAt(k).Pause) > 1e-12 {
						t.Fatalf("trial %d: destination coverage != pause", trial)
					}
					if math.Abs(top.Distance(j, k)-top.Distance(k, j)) > 1e-12 {
						t.Fatalf("trial %d: asymmetric distance", trial)
					}
				}
				var sum float64
				for i := 0; i < m; i++ {
					sum += top.CoverTime(j, k, i)
				}
				if sum > top.TravelTime(j, k)+1e-9 {
					t.Fatalf("trial %d: coverage %v exceeds duration %v", trial, sum, top.TravelTime(j, k))
				}
			}
		}
	}
}

func TestRandomDeterministicForSeed(t *testing.T) {
	cfg := RandomConfig{M: 5, Width: 6, Height: 6}
	t1, err := Random(rng.New(9), cfg)
	if err != nil {
		t.Fatalf("Random: %v", err)
	}
	t2, err := Random(rng.New(9), cfg)
	if err != nil {
		t.Fatalf("Random: %v", err)
	}
	for i := 0; i < 5; i++ {
		if t1.PoIAt(i).Pos != t2.PoIAt(i).Pos {
			t.Fatal("same seed produced different layouts")
		}
		if t1.TargetAt(i) != t2.TargetAt(i) {
			t.Fatal("same seed produced different targets")
		}
	}
}
