// Package topology models the physical layout of points of interest (PoIs)
// and precomputes the timing quantities the paper's Markov coverage model
// needs:
//
//   - T_jk   — travel time from PoI j to PoI k plus the pause at k
//     (Section III-A; T_jj is the pause at j),
//   - T_jk,i — time the sensor covers PoI i while executing the j→k
//     transition, with the paper's conventions T_{jk,j} = 0 and
//     T_{jk,k} = P_k (pass-through of intermediate PoIs is what couples
//     the PoIs geographically),
//   - d_ij   — travel distances, used by the energy objective (§VII).
//
// Travel is along the straight line between PoI centers at constant speed;
// a PoI is covered whenever the sensor is within the sensing range r.
package topology

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// ErrInvalid indicates an inconsistent topology specification.
var ErrInvalid = errors.New("topology: invalid specification")

// PoI is a point of interest: a location the sensor must cover, with a
// per-visit pause time.
type PoI struct {
	// Pos is the PoI center.
	Pos geom.Point
	// Pause is the time the sensor dwells after arriving at this PoI.
	Pause float64
}

// PassEvent records that PoI covers during a j→k transit: the sensor is
// within sensing range of PoI from time Enter to time Exit, measured from
// the start of the transit (before the pause at the destination).
type PassEvent struct {
	PoI         int
	Enter, Exit float64
}

// Duration returns Exit - Enter.
func (e PassEvent) Duration() float64 { return e.Exit - e.Enter }

// Router plans a physically feasible polyline between two points. The
// returned path must start at a and end at b. Implementations live in
// package route; a nil Router means straight-line travel (the paper's
// setting).
type Router interface {
	Route(a, b geom.Point) ([]geom.Point, error)
}

// Topology is an immutable set of PoIs with a target coverage allocation
// and all derived timing tables.
type Topology struct {
	name   string
	pois   []PoI
	target []float64
	r      float64
	speed  float64

	travel [][]float64   // travel[j][k] = T_jk (includes pause at k)
	moveT  [][]float64   // moveT[j][k] = pure travel time j->k (no pause)
	cover  [][][]float64 // cover[j][k][i] = T_{jk,i}
	dist   [][]float64   // dist[j][k] = d_jk (along the routed path)
	passes [][][]PassEvent
	paths  [][][]geom.Point // paths[j][k] = routed polyline j -> k
	router Router           // kept so WithTarget preserves routing
}

// Config carries the inputs for New.
type Config struct {
	// Name identifies the topology in reports.
	Name string
	// PoIs are the points of interest; at least two are required.
	PoIs []PoI
	// Target is the prescribed coverage-time allocation Φ; it must be a
	// probability vector over the PoIs.
	Target []float64
	// Range is the sensing range r (must be positive, and small enough
	// that no two PoIs can be covered simultaneously).
	Range float64
	// Speed is the constant travel speed (must be positive).
	Speed float64
	// Router, when non-nil, plans the physical paths between PoIs
	// (e.g. around obstacles); nil selects straight-line travel.
	Router Router
}

// New validates the configuration and precomputes all timing tables.
func New(cfg Config) (*Topology, error) {
	m := len(cfg.PoIs)
	if m < 2 {
		return nil, fmt.Errorf("%w: need at least 2 PoIs, got %d", ErrInvalid, m)
	}
	if len(cfg.Target) != m {
		return nil, fmt.Errorf("%w: %d targets for %d PoIs", ErrInvalid, len(cfg.Target), m)
	}
	var sum float64
	for i, v := range cfg.Target {
		// NaN compares false against every threshold, so check it
		// explicitly rather than letting it slip through to the sum test.
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("%w: invalid target Φ_%d = %v", ErrInvalid, i, v)
		}
		sum += v
	}
	if !(math.Abs(sum-1) <= 1e-9) {
		return nil, fmt.Errorf("%w: targets sum to %v, want 1", ErrInvalid, sum)
	}
	if !(cfg.Range > 0) || math.IsInf(cfg.Range, 0) {
		return nil, fmt.Errorf("%w: sensing range %v must be positive and finite", ErrInvalid, cfg.Range)
	}
	if !(cfg.Speed > 0) || math.IsInf(cfg.Speed, 0) {
		return nil, fmt.Errorf("%w: speed %v must be positive and finite", ErrInvalid, cfg.Speed)
	}
	for i, p := range cfg.PoIs {
		if !(p.Pause > 0) || math.IsInf(p.Pause, 0) {
			return nil, fmt.Errorf("%w: PoI %d pause %v must be positive and finite", ErrInvalid, i, p.Pause)
		}
		if math.IsNaN(p.Pos.X) || math.IsInf(p.Pos.X, 0) ||
			math.IsNaN(p.Pos.Y) || math.IsInf(p.Pos.Y, 0) {
			return nil, fmt.Errorf("%w: PoI %d has non-finite position", ErrInvalid, i)
		}
	}
	// Disjointness: the paper requires that no two PoIs can be covered at
	// the same time, i.e. centers are more than 2r apart.
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if d := geom.Dist(cfg.PoIs[i].Pos, cfg.PoIs[j].Pos); d <= 2*cfg.Range {
				return nil, fmt.Errorf("%w: PoIs %d and %d are %v apart, need > 2r = %v",
					ErrInvalid, i, j, d, 2*cfg.Range)
			}
		}
	}

	t := &Topology{
		name:   cfg.Name,
		pois:   append([]PoI(nil), cfg.PoIs...),
		target: append([]float64(nil), cfg.Target...),
		r:      cfg.Range,
		speed:  cfg.Speed,
		router: cfg.Router,
	}
	if err := t.build(cfg.Router); err != nil {
		return nil, err
	}
	return t, nil
}

// build fills the derived tables. With a Router, travel follows the
// planned polyline: distances, move times, and pass-through coverage are
// accumulated leg by leg.
func (t *Topology) build(router Router) error {
	m := len(t.pois)
	t.travel = make([][]float64, m)
	t.moveT = make([][]float64, m)
	t.cover = make([][][]float64, m)
	t.dist = make([][]float64, m)
	t.passes = make([][][]PassEvent, m)
	t.paths = make([][][]geom.Point, m)
	for j := 0; j < m; j++ {
		t.travel[j] = make([]float64, m)
		t.moveT[j] = make([]float64, m)
		t.cover[j] = make([][]float64, m)
		t.dist[j] = make([]float64, m)
		t.passes[j] = make([][]PassEvent, m)
		t.paths[j] = make([][]geom.Point, m)
		for k := 0; k < m; k++ {
			t.cover[j][k] = make([]float64, m)
			if j == k {
				// T_jj = P_j: the sensor stays and covers only itself.
				t.travel[j][j] = t.pois[j].Pause
				t.cover[j][j][j] = t.pois[j].Pause
				t.paths[j][j] = []geom.Point{t.pois[j].Pos}
				continue
			}
			path := []geom.Point{t.pois[j].Pos, t.pois[k].Pos}
			if router != nil {
				routed, err := router.Route(t.pois[j].Pos, t.pois[k].Pos)
				if err != nil {
					return fmt.Errorf("%w: route %d -> %d: %v", ErrInvalid, j, k, err)
				}
				if len(routed) < 2 || routed[0] != t.pois[j].Pos || routed[len(routed)-1] != t.pois[k].Pos {
					return fmt.Errorf("%w: route %d -> %d returned invalid path", ErrInvalid, j, k)
				}
				path = routed
			}
			t.paths[j][k] = path

			var dist float64
			for leg := 1; leg < len(path); leg++ {
				dist += geom.Dist(path[leg-1], path[leg])
			}
			moveTime := dist / t.speed
			t.dist[j][k] = dist
			t.moveT[j][k] = moveTime
			t.travel[j][k] = moveTime + t.pois[k].Pause

			// Pass-through windows for intermediate PoIs, accumulated per
			// leg. Conventions: the origin is never covered in transit
			// (T_{jk,j} = 0) and the destination is covered for the pause
			// only (T_{jk,k} = P_k).
			for i := 0; i < m; i++ {
				if i == j || i == k {
					continue
				}
				var offset float64 // time at the start of the current leg
				for leg := 1; leg < len(path); leg++ {
					seg := geom.Segment{A: path[leg-1], B: path[leg]}
					legTime := seg.Length() / t.speed
					if iv, ok := geom.CoverageInterval(seg, t.pois[i].Pos, t.r); ok {
						enter := offset + iv.Lo*legTime
						exit := offset + iv.Hi*legTime
						t.cover[j][k][i] += exit - enter
						// Merge with a window that ends exactly where this
						// one begins (the path grazed a leg boundary inside
						// the disk).
						if n := len(t.passes[j][k]); n > 0 &&
							t.passes[j][k][n-1].PoI == i &&
							math.Abs(t.passes[j][k][n-1].Exit-enter) < 1e-12 {
							t.passes[j][k][n-1].Exit = exit
						} else {
							t.passes[j][k] = append(t.passes[j][k], PassEvent{
								PoI: i, Enter: enter, Exit: exit,
							})
						}
					}
					offset += legTime
				}
			}
			t.passes[j][k] = append(t.passes[j][k], PassEvent{
				PoI:   k,
				Enter: moveTime,
				Exit:  moveTime + t.pois[k].Pause,
			})
			t.cover[j][k][k] = t.pois[k].Pause
		}
	}
	return nil
}

// Path returns the routed polyline the sensor follows from j to k
// (including both endpoints; a single point for j == k). The returned
// slice must not be modified.
func (t *Topology) Path(j, k int) []geom.Point { return t.paths[j][k] }

// M returns the number of PoIs.
func (t *Topology) M() int { return len(t.pois) }

// Name returns the topology's identifier.
func (t *Topology) Name() string { return t.name }

// Range returns the sensing range r.
func (t *Topology) Range() float64 { return t.r }

// Speed returns the travel speed.
func (t *Topology) Speed() float64 { return t.speed }

// PoIAt returns PoI i.
func (t *Topology) PoIAt(i int) PoI { return t.pois[i] }

// Target returns a copy of the prescribed allocation Φ.
func (t *Topology) Target() []float64 {
	return append([]float64(nil), t.target...)
}

// TargetAt returns Φ_i without allocating.
func (t *Topology) TargetAt(i int) float64 { return t.target[i] }

// TravelTime returns T_jk: travel from j to k plus the pause at k
// (T_jj is the pause at j).
func (t *Topology) TravelTime(j, k int) float64 { return t.travel[j][k] }

// MoveTime returns the pure in-transit time from j to k (no pause).
func (t *Topology) MoveTime(j, k int) float64 { return t.moveT[j][k] }

// CoverTime returns T_{jk,i}: the time PoI i is covered during a j→k
// transition, under the paper's conventions.
func (t *Topology) CoverTime(j, k, i int) float64 { return t.cover[j][k][i] }

// CoverRow returns the coverage-time row for the j→k transition: a slice
// s with s[i] = CoverTime(j, k, i). It aliases the topology's internal
// table so hot loops can stream over PoIs without per-element accessor
// calls; callers must treat it as read-only.
func (t *Topology) CoverRow(j, k int) []float64 { return t.cover[j][k] }

// Distance returns the straight-line distance d_jk.
func (t *Topology) Distance(j, k int) float64 { return t.dist[j][k] }

// DistanceRow returns row j of the distance table: a slice s with
// s[k] = Distance(j, k). It aliases the topology's internal table;
// callers must treat it as read-only.
func (t *Topology) DistanceRow(j int) []float64 { return t.dist[j] }

// Passes returns the pass events (including the destination's pause
// window) of the j→k transition, ordered by construction: intermediate
// PoIs in index order, destination last. The returned slice must not be
// modified.
func (t *Topology) Passes(j, k int) []PassEvent { return t.passes[j][k] }

// Intermediates returns the PoIs (excluding j and k) covered in transit
// from j to k.
func (t *Topology) Intermediates(j, k int) []int {
	var out []int
	for _, e := range t.passes[j][k] {
		if e.PoI != k && e.PoI != j {
			out = append(out, e.PoI)
		}
	}
	return out
}

// WithTarget returns a copy of the topology with a different target
// allocation (same layout, ranges and timing tables).
func (t *Topology) WithTarget(target []float64) (*Topology, error) {
	cfg := Config{
		Name:   t.name,
		PoIs:   t.pois,
		Target: target,
		Range:  t.r,
		Speed:  t.speed,
		Router: t.router,
	}
	return New(cfg)
}

// String summarizes the topology.
func (t *Topology) String() string {
	return fmt.Sprintf("%s: %d PoIs, r=%v, v=%v", t.name, len(t.pois), t.r, t.speed)
}
