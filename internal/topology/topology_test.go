package topology

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geom"
)

func validConfig() Config {
	return Config{
		Name: "test",
		PoIs: []PoI{
			{Pos: geom.Point{X: 0.5, Y: 0.5}, Pause: 1},
			{Pos: geom.Point{X: 1.5, Y: 0.5}, Pause: 1},
			{Pos: geom.Point{X: 2.5, Y: 0.5}, Pause: 1},
		},
		Target: []float64{0.5, 0.25, 0.25},
		Range:  0.25,
		Speed:  1,
	}
}

func TestNewValid(t *testing.T) {
	top, err := New(validConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if top.M() != 3 {
		t.Errorf("M = %d, want 3", top.M())
	}
	if top.Name() != "test" {
		t.Errorf("Name = %q", top.Name())
	}
	if top.Range() != 0.25 || top.Speed() != 1 {
		t.Errorf("Range/Speed = %v/%v", top.Range(), top.Speed())
	}
}

func TestNewValidationErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"too few PoIs", func(c *Config) { c.PoIs = c.PoIs[:1]; c.Target = c.Target[:1] }},
		{"target length", func(c *Config) { c.Target = []float64{1} }},
		{"negative target", func(c *Config) { c.Target = []float64{1.5, -0.25, -0.25} }},
		{"target sum", func(c *Config) { c.Target = []float64{0.5, 0.25, 0.1} }},
		{"zero range", func(c *Config) { c.Range = 0 }},
		{"zero speed", func(c *Config) { c.Speed = 0 }},
		{"zero pause", func(c *Config) { c.PoIs[1].Pause = 0 }},
		{"overlapping PoIs", func(c *Config) { c.Range = 0.6 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validConfig()
			tc.mutate(&cfg)
			if _, err := New(cfg); !errors.Is(err, ErrInvalid) {
				t.Errorf("err = %v, want ErrInvalid", err)
			}
		})
	}
}

func TestTravelTimes(t *testing.T) {
	top, err := New(validConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Distance 1 at speed 1 plus pause 1.
	if got := top.TravelTime(0, 1); math.Abs(got-2) > 1e-12 {
		t.Errorf("T_01 = %v, want 2", got)
	}
	// Distance 2 plus pause.
	if got := top.TravelTime(0, 2); math.Abs(got-3) > 1e-12 {
		t.Errorf("T_02 = %v, want 3", got)
	}
	// Self transition is the pause only.
	if got := top.TravelTime(1, 1); got != 1 {
		t.Errorf("T_11 = %v, want 1", got)
	}
	if got := top.MoveTime(0, 2); math.Abs(got-2) > 1e-12 {
		t.Errorf("MoveTime(0,2) = %v, want 2", got)
	}
	if got := top.MoveTime(1, 1); got != 0 {
		t.Errorf("MoveTime(1,1) = %v, want 0", got)
	}
}

func TestCoverTimeConventions(t *testing.T) {
	top, err := New(validConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// T_{jk,j} = 0: origin not covered.
	if got := top.CoverTime(0, 1, 0); got != 0 {
		t.Errorf("T_{01,0} = %v, want 0", got)
	}
	// T_{jk,k} = pause at destination.
	if got := top.CoverTime(0, 1, 1); got != 1 {
		t.Errorf("T_{01,1} = %v, want 1", got)
	}
	// Self transition covers only self, for the pause.
	if got := top.CoverTime(1, 1, 1); got != 1 {
		t.Errorf("T_{11,1} = %v, want 1", got)
	}
	if got := top.CoverTime(1, 1, 0); got != 0 {
		t.Errorf("T_{11,0} = %v, want 0", got)
	}
}

func TestPassThroughCoverage(t *testing.T) {
	top, err := New(validConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// 0 -> 2 passes straight through PoI 1: chord = 2r = 0.5 at speed 1.
	got := top.CoverTime(0, 2, 1)
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("T_{02,1} = %v, want 0.5", got)
	}
	// Symmetric direction.
	if got := top.CoverTime(2, 0, 1); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("T_{20,1} = %v, want 0.5", got)
	}
	// Adjacent hop covers no third PoI.
	if got := top.CoverTime(0, 1, 2); got != 0 {
		t.Errorf("T_{01,2} = %v, want 0", got)
	}
}

func TestPassesEvents(t *testing.T) {
	top, err := New(validConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	events := top.Passes(0, 2)
	if len(events) != 2 {
		t.Fatalf("Passes(0,2) = %d events, want 2 (intermediate + destination)", len(events))
	}
	// Intermediate PoI 1: in range from t=0.75 to t=1.25 (chord 0.5 around
	// the midpoint of a 2-unit trip).
	var mid PassEvent
	var dst PassEvent
	for _, e := range events {
		switch e.PoI {
		case 1:
			mid = e
		case 2:
			dst = e
		}
	}
	if math.Abs(mid.Enter-0.75) > 1e-9 || math.Abs(mid.Exit-1.25) > 1e-9 {
		t.Errorf("intermediate window = [%v, %v], want [0.75, 1.25]", mid.Enter, mid.Exit)
	}
	if math.Abs(dst.Enter-2) > 1e-9 || math.Abs(dst.Exit-3) > 1e-9 {
		t.Errorf("destination window = [%v, %v], want [2, 3]", dst.Enter, dst.Exit)
	}
	if d := mid.Duration(); math.Abs(d-0.5) > 1e-9 {
		t.Errorf("Duration = %v, want 0.5", d)
	}
}

func TestIntermediates(t *testing.T) {
	top, err := New(validConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := top.Intermediates(0, 2); len(got) != 1 || got[0] != 1 {
		t.Errorf("Intermediates(0,2) = %v, want [1]", got)
	}
	if got := top.Intermediates(0, 1); len(got) != 0 {
		t.Errorf("Intermediates(0,1) = %v, want empty", got)
	}
}

func TestCoverNeverExceedsTravel(t *testing.T) {
	for n := 1; n <= 4; n++ {
		top, err := Paper(n)
		if err != nil {
			t.Fatalf("Paper(%d): %v", n, err)
		}
		m := top.M()
		for j := 0; j < m; j++ {
			for k := 0; k < m; k++ {
				var total float64
				for i := 0; i < m; i++ {
					ct := top.CoverTime(j, k, i)
					if ct < 0 {
						t.Fatalf("topology %d: negative cover time T_{%d%d,%d}", n, j, k, i)
					}
					if ct > top.TravelTime(j, k)+1e-9 {
						t.Fatalf("topology %d: T_{%d%d,%d} = %v exceeds T_%d%d = %v",
							n, j, k, i, ct, j, k, top.TravelTime(j, k))
					}
					total += ct
				}
				// Disjoint PoIs: coverage windows cannot overlap, so their
				// sum cannot exceed the transition duration.
				if total > top.TravelTime(j, k)+1e-9 {
					t.Fatalf("topology %d: sum of cover times %v exceeds T_%d%d = %v",
						n, total, j, k, top.TravelTime(j, k))
				}
			}
		}
	}
}

func TestTargetIsCopied(t *testing.T) {
	top, err := New(validConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tg := top.Target()
	tg[0] = 99
	if top.TargetAt(0) == 99 {
		t.Error("Target returned internal storage")
	}
}

func TestWithTarget(t *testing.T) {
	top, err := New(validConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	top2, err := top.WithTarget([]float64{0.2, 0.3, 0.5})
	if err != nil {
		t.Fatalf("WithTarget: %v", err)
	}
	if top2.TargetAt(2) != 0.5 {
		t.Errorf("new target = %v", top2.Target())
	}
	if top.TargetAt(2) != 0.25 {
		t.Error("WithTarget mutated the original")
	}
	if _, err := top.WithTarget([]float64{1, 1, 1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("invalid target err = %v", err)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	top := Topology4()
	m := top.M()
	for i := 0; i < m; i++ {
		if top.Distance(i, i) != 0 {
			t.Errorf("Distance(%d,%d) = %v, want 0", i, i, top.Distance(i, i))
		}
		for j := 0; j < m; j++ {
			if math.Abs(top.Distance(i, j)-top.Distance(j, i)) > 1e-12 {
				t.Errorf("asymmetric distance (%d,%d)", i, j)
			}
		}
	}
}

func TestPaperTopologyShapes(t *testing.T) {
	cases := []struct {
		n     int
		wantM int
	}{
		{1, 4}, {2, 3}, {3, 4}, {4, 9},
	}
	for _, tc := range cases {
		top, err := Paper(tc.n)
		if err != nil {
			t.Fatalf("Paper(%d): %v", tc.n, err)
		}
		if top.M() != tc.wantM {
			t.Errorf("topology %d: M = %d, want %d", tc.n, top.M(), tc.wantM)
		}
		var sum float64
		for i := 0; i < top.M(); i++ {
			sum += top.TargetAt(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("topology %d: targets sum to %v", tc.n, sum)
		}
	}
	if _, err := Paper(5); !errors.Is(err, ErrInvalid) {
		t.Errorf("Paper(5) err = %v, want ErrInvalid", err)
	}
}

func TestTopology1HasNoPassThroughs(t *testing.T) {
	top := Topology1()
	m := top.M()
	for j := 0; j < m; j++ {
		for k := 0; k < m; k++ {
			if j == k {
				continue
			}
			if ints := top.Intermediates(j, k); len(ints) != 0 {
				t.Errorf("topology 1: %d->%d passes %v, want none", j, k, ints)
			}
		}
	}
}

func TestTopology3PassThroughs(t *testing.T) {
	top := Topology3()
	cases := []struct {
		j, k int
		want []int
	}{
		{0, 2, []int{1}},
		{0, 3, []int{1, 2}},
		{1, 3, []int{2}},
		{3, 0, []int{1, 2}},
		{0, 1, nil},
	}
	for _, tc := range cases {
		got := top.Intermediates(tc.j, tc.k)
		if len(got) != len(tc.want) {
			t.Errorf("Intermediates(%d,%d) = %v, want %v", tc.j, tc.k, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Intermediates(%d,%d) = %v, want %v", tc.j, tc.k, got, tc.want)
			}
		}
	}
}

func TestTopology4CenterPassThrough(t *testing.T) {
	top := Topology4()
	// Corner 0 (0.5,0.5) to corner 8 (2.5,2.5) passes the center PoI 4.
	found := false
	for _, i := range top.Intermediates(0, 8) {
		if i == 4 {
			found = true
		}
	}
	if !found {
		t.Error("topology 4: corner-to-corner diagonal should pass the center")
	}
}

func TestStringOutputs(t *testing.T) {
	top := Topology2()
	if s := top.String(); s == "" {
		t.Error("empty String")
	}
	p := top.PoIAt(1)
	if p.Pos.X != 1.5 || p.Pause != DefaultPause {
		t.Errorf("PoIAt(1) = %+v", p)
	}
}

func TestLineGridValidation(t *testing.T) {
	if _, err := Line("x", 1, []float64{1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("Line(1) err = %v", err)
	}
	if _, err := Grid("x", 1, 1, []float64{1}); !errors.Is(err, ErrInvalid) {
		t.Errorf("Grid(1,1) err = %v", err)
	}
}
