// Package plans is the precomputed plan library: the read path that
// lets millions of consumers fetch already-solved coverage scenarios
// instead of each paying a full optimization.
//
// The library is a two-tier, content-addressed cache. The key is the
// canonical scenario fingerprint (coverage.ScenarioFingerprint): hash
// of the solver-relevant normal form of (Scenario, Objectives), so two
// requests for the same problem — however they spell it — address the
// same entry. The hot tier is an in-memory LRU of full entries; the
// durable tier is a pluggable jobs.Store (the same blob interface the
// job checkpoints use), holding one JSON envelope per fingerprint. A
// lightweight feature index over every durable entry stays resident, so
// nearest-neighbor lookups never touch the store until a candidate is
// chosen.
//
// When an exact fingerprint misses, the library ranks cached plans by
// scenario distance — topology keys must match exactly (same PoI
// layout, range, speed, obstacles, hence the same matrix dimensions and
// support), then ‖ΔΦ‖₁ plus a weighted objective-weight distance — and
// the nearest entry either warm-starts a fast re-optimization
// (coverage.Options.InitialMatrix, validated bit-exactly since the
// deploy runtime landed) or, within a caller-chosen staleness bound, is
// served directly.
package plans

import (
	"bytes"
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/coverage"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// Library errors.
var (
	// ErrNotFound reports a fingerprint with no entry in either tier.
	ErrNotFound = errors.New("plans: entry not found")
	// ErrEntry reports a malformed entry (bad publish input or a corrupt
	// stored blob).
	ErrEntry = errors.New("plans: invalid entry")
)

// entryVersion is the on-disk entry format version.
const entryVersion = 1

// entrySuffix is the blob-name suffix of persisted entries. Entries are
// stored as <fingerprint>.entry.json, mirroring the job checkpoint
// triple's <id>.<kind>.json layout so both can share one Store.
const entrySuffix = ".entry.json"

// Provenance records where a cached plan came from — enough to
// reproduce it (seed, restarts, solver backend) and to audit what
// produced it (job ID, source subsystem, publication time).
type Provenance struct {
	// JobID is the optimization job that produced the plan, if any.
	JobID string `json:"jobId,omitempty"`
	// Source names the publishing subsystem: "job", "deploy", or
	// "manual".
	Source string `json:"source"`
	// Seed is the master seed of the producing search.
	Seed uint64 `json:"seed"`
	// Restarts is the multi-start budget the search used.
	Restarts int `json:"restarts,omitempty"`
	// Iterations is the winning restart's optimizer iteration count.
	Iterations int `json:"iterations,omitempty"`
	// Solver is the linear-algebra backend ("dense" or "sparse").
	Solver string `json:"solver,omitempty"`
	// Created is the publication time (UTC).
	Created time.Time `json:"created"`
}

// Entry is one cached plan: the canonical problem, its solution, and
// where the solution came from.
type Entry struct {
	// Fingerprint content-addresses the canonical (Scenario, Objectives).
	Fingerprint string `json:"fingerprint"`
	// TopologyKey content-addresses the Φ-independent scenario part;
	// nearest-neighbor candidates must share it.
	TopologyKey string `json:"topologyKey"`
	// Scenario is the canonical scenario (name dropped, defaults
	// explicit).
	Scenario coverage.Scenario `json:"scenario"`
	// Objectives is the canonical objective form (per-PoI vectors).
	Objectives coverage.Objectives `json:"objectives"`
	// Plan is the cached solution, including its achieved cost vector
	// (DeltaC, EBar, Cost, Energy, Entropy).
	Plan *coverage.Plan `json:"plan"`
	// Sensors is the fleet size for jointly-optimized entries (Plan.Fleet
	// set); 0 for single-sensor plans. Fleet entries are keyed by
	// coverage.FleetFingerprint and never mix with single-sensor lookups.
	Sensors int `json:"sensors,omitempty"`
	// Provenance records the producing search.
	Provenance Provenance `json:"provenance"`
}

// entryEnvelope is the on-disk representation.
type entryEnvelope struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	Entry   *Entry `json:"entry"`
}

// indexEntry is the always-resident slice of an entry: everything the
// distance metric and admission decisions need, without the plan
// matrix.
type indexEntry struct {
	fp       string
	topoKey  string
	phi      []float64
	alpha    []float64
	beta     []float64
	objScals [4]float64 // energyWeight, energyTarget, entropyWeight, epsilon
	cost     float64
	sensors  int // fleet size; 0 for single-sensor entries
}

// Config tunes a Library.
type Config struct {
	// Store is the durable tier; nil keeps the library memory-only (an
	// eviction then drops the entry for good).
	Store jobs.Store
	// Capacity bounds the in-memory LRU entry count (default 128).
	Capacity int
	// Logger receives structured library logs. Nil disables logging.
	Logger *slog.Logger
	// Metrics is the registry the plans_* instruments register into.
	// Nil disables metrics.
	Metrics *obs.Registry
}

// DefaultCapacity is the in-memory LRU size when Config.Capacity is 0.
const DefaultCapacity = 128

// libMetrics bundles the library instruments; all obs instruments are
// nil-safe, so the zero value records nothing.
type libMetrics struct {
	hits       *obs.CounterVec // by tier: memory | store
	misses     *obs.Counter
	staleHits  *obs.Counter
	warmStarts *obs.Counter
	evictions  *obs.Counter
	lookup     *obs.Histogram
}

// LookupBuckets is the bucket ladder of the lookup-latency histogram:
// exact-hit lookups are hash-plus-map work with a p99 SLO of 10ms, so
// the ladder concentrates resolution between 10µs and 25ms.
var LookupBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
}

func newLibMetrics(r *obs.Registry) libMetrics {
	return libMetrics{
		hits: r.CounterVec("plans_lookup_hits_total",
			"Exact-fingerprint library hits by serving tier.", "tier"),
		misses: r.Counter("plans_lookup_misses_total",
			"Lookups that found no exact-fingerprint entry."),
		staleHits: r.Counter("plans_stale_serves_total",
			"Neighbor plans served directly under a caller staleness bound."),
		warmStarts: r.Counter("plans_warm_starts_total",
			"Optimization jobs warm-started from a neighbor's cached plan."),
		evictions: r.Counter("plans_evictions_total",
			"Entries evicted from the in-memory LRU tier."),
		lookup: r.Histogram("plans_lookup_seconds",
			"Library lookup latency (fingerprint + tier probes).", LookupBuckets),
	}
}

// Library is the two-tier plan cache. All methods are safe for
// concurrent use.
type Library struct {
	cfg Config
	log *slog.Logger
	met libMetrics

	mu    sync.Mutex
	lru   *list.List               // *Entry, front = most recently used
	inMem map[string]*list.Element // fingerprint -> LRU node
	index map[string]*indexEntry   // fingerprint -> resident features
}

// New builds a Library and, when a Store is configured, loads the
// feature index of every persisted entry (skipping and logging torn
// blobs, exactly like the job checkpoint loader).
func New(cfg Config) (*Library, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	l := &Library{
		cfg:   cfg,
		log:   obs.Component(cfg.Logger, "plans"),
		lru:   list.New(),
		inMem: make(map[string]*list.Element),
		index: make(map[string]*indexEntry),
	}
	if cfg.Metrics != nil {
		l.met = newLibMetrics(cfg.Metrics)
		cfg.Metrics.GaugeFunc("plans_memory_entries",
			"Entries resident in the in-memory LRU tier.",
			func() float64 { l.mu.Lock(); defer l.mu.Unlock(); return float64(l.lru.Len()) })
		cfg.Metrics.GaugeFunc("plans_index_entries",
			"Entries known to the library across both tiers.",
			func() float64 { l.mu.Lock(); defer l.mu.Unlock(); return float64(len(l.index)) })
	}
	if cfg.Store != nil {
		if err := l.loadIndex(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// loadIndex scans the durable tier and rebuilds the feature index.
func (l *Library) loadIndex() error {
	names, err := l.cfg.Store.List()
	if err != nil {
		return fmt.Errorf("plans: store list: %w", err)
	}
	loaded := 0
	for _, name := range names {
		if !strings.HasSuffix(name, entrySuffix) {
			continue
		}
		e, err := l.readEntry(strings.TrimSuffix(name, entrySuffix))
		if err != nil {
			// Same posture as job checkpoints: a torn blob must not take
			// the library down; skip it, keep it for inspection.
			l.log.Error("skipping unreadable plan entry",
				slog.String("file", name),
				slog.String("error", err.Error()))
			continue
		}
		l.index[e.Fingerprint] = indexOf(e)
		loaded++
	}
	l.log.Info("plan library loaded", slog.Int("entries", loaded))
	return nil
}

// readEntry fetches and validates one durable entry.
func (l *Library) readEntry(fp string) (*Entry, error) {
	blob, err := l.cfg.Store.Get(fp + entrySuffix)
	if err != nil {
		return nil, err
	}
	var env entryEnvelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrEntry, err)
	}
	if env.Version != entryVersion || env.Kind != "plan-entry" || env.Entry == nil {
		return nil, fmt.Errorf("%w: not a version-%d plan entry", ErrEntry, entryVersion)
	}
	e := env.Entry
	if e.Fingerprint != fp || e.Plan == nil || len(e.Plan.TransitionMatrix) == 0 {
		return nil, fmt.Errorf("%w: fingerprint/plan mismatch in %s", ErrEntry, fp)
	}
	return e, nil
}

// indexOf projects an entry onto its resident features.
func indexOf(e *Entry) *indexEntry {
	ie := &indexEntry{
		fp:      e.Fingerprint,
		topoKey: e.TopologyKey,
		phi:     append([]float64(nil), e.Scenario.Target...),
		alpha:   append([]float64(nil), e.Objectives.PerPoIAlpha...),
		beta:    append([]float64(nil), e.Objectives.PerPoIBeta...),
		cost:    e.Plan.Cost,
		sensors: e.Sensors,
	}
	ie.objScals = [4]float64{
		e.Objectives.EnergyWeight, e.Objectives.EnergyTarget,
		e.Objectives.EntropyWeight, e.Objectives.Epsilon,
	}
	return ie
}

// Publish inserts a solved scenario into the library under its
// canonical fingerprint and returns that fingerprint. When an entry for
// the fingerprint already exists, the better (lower-cost) plan wins —
// re-publishing a worse re-optimization never degrades the cache. The
// entry lands in the durable tier (when configured) and at the front of
// the LRU.
func (l *Library) Publish(scn coverage.Scenario, obj coverage.Objectives, plan *coverage.Plan, prov Provenance) (coverage.Fingerprint, error) {
	if plan == nil || len(plan.TransitionMatrix) == 0 {
		return "", fmt.Errorf("%w: nil or empty plan", ErrEntry)
	}
	// Fleet plans carry their own key space: the fingerprint covers the
	// fleet size and responsibility assignment on top of the scenario, so
	// a joint plan can never be confused with (or shadow) the
	// single-sensor plan for the same scenario.
	sensors := 0
	var fp coverage.Fingerprint
	var err error
	if plan.Fleet != nil {
		sensors = plan.Fleet.Sensors
		fp, err = coverage.FleetFingerprint(scn, obj, plan.Fleet.Sensors, plan.Fleet.Responsibility)
	} else {
		fp, err = coverage.ScenarioFingerprint(scn, obj)
	}
	if err != nil {
		return "", err
	}
	topo, err := coverage.TopologyKey(scn)
	if err != nil {
		return "", err
	}
	if len(plan.TransitionMatrix) != len(scn.PoIs) {
		return "", fmt.Errorf("%w: %d-row plan for %d PoIs", ErrEntry, len(plan.TransitionMatrix), len(scn.PoIs))
	}
	if prov.Created.IsZero() {
		prov.Created = time.Now().UTC()
	}
	e := &Entry{
		Fingerprint: string(fp),
		TopologyKey: string(topo),
		Scenario:    coverage.CanonicalScenario(scn),
		Objectives:  coverage.CanonicalObjectives(obj, len(scn.PoIs)),
		Plan:        plan,
		Sensors:     sensors,
		Provenance:  prov,
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.index[e.Fingerprint]; ok && prev.cost <= plan.Cost {
		// The cache already holds an at-least-as-good plan for this exact
		// problem; keep it (and refresh nothing — the entry is untouched).
		l.log.Debug("publish kept existing entry",
			slog.String("fingerprint", e.Fingerprint),
			slog.Float64("existingCost", prev.cost),
			slog.Float64("newCost", plan.Cost))
		return fp, nil
	}
	if l.cfg.Store != nil {
		blob, err := json.MarshalIndent(entryEnvelope{
			Version: entryVersion, Kind: "plan-entry", Entry: e,
		}, "", "  ")
		if err != nil {
			return "", fmt.Errorf("%w: %v", ErrEntry, err)
		}
		if err := l.cfg.Store.Put(e.Fingerprint+entrySuffix, append(blob, '\n')); err != nil {
			return "", fmt.Errorf("plans: store put: %w", err)
		}
	}
	l.index[e.Fingerprint] = indexOf(e)
	l.touch(e)
	l.log.Info("plan published",
		slog.String("fingerprint", e.Fingerprint),
		slog.String("source", prov.Source),
		slog.String("job", prov.JobID),
		slog.Float64("cost", plan.Cost))
	return fp, nil
}

// touch installs (or refreshes) an entry at the LRU front and evicts
// past capacity. Callers hold l.mu.
func (l *Library) touch(e *Entry) {
	if el, ok := l.inMem[e.Fingerprint]; ok {
		el.Value = e
		l.lru.MoveToFront(el)
		return
	}
	l.inMem[e.Fingerprint] = l.lru.PushFront(e)
	for l.lru.Len() > l.cfg.Capacity {
		back := l.lru.Back()
		old := back.Value.(*Entry)
		l.lru.Remove(back)
		delete(l.inMem, old.Fingerprint)
		if l.cfg.Store == nil {
			// Memory-only: the evicted plan is gone; forget its features
			// so Nearest never points at an unloadable entry.
			delete(l.index, old.Fingerprint)
		}
		l.met.evictions.Inc()
	}
}

// Lookup returns the entry for an exact fingerprint, promoting a
// durable-tier hit into the LRU. The boolean reports whether the lookup
// hit; metrics record the tier.
func (l *Library) Lookup(fp coverage.Fingerprint) (*Entry, bool) {
	start := time.Now()
	defer func() { l.met.lookup.Observe(time.Since(start).Seconds()) }()
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.lookupLocked(string(fp))
	return e, ok
}

// lookupLocked is Lookup under a held l.mu.
func (l *Library) lookupLocked(fp string) (*Entry, bool) {
	if el, ok := l.inMem[fp]; ok {
		l.lru.MoveToFront(el)
		l.met.hits.With("memory").Inc()
		return el.Value.(*Entry), true
	}
	if _, ok := l.index[fp]; ok && l.cfg.Store != nil {
		e, err := l.readEntry(fp)
		if err != nil {
			// The blob vanished or rotted since indexing; drop it and
			// treat as a miss.
			l.log.Error("indexed plan entry unreadable",
				slog.String("fingerprint", fp),
				slog.String("error", err.Error()))
			delete(l.index, fp)
			l.met.misses.Inc()
			return nil, false
		}
		l.touch(e)
		l.met.hits.With("store").Inc()
		return e, true
	}
	l.met.misses.Inc()
	return nil, false
}

// Neighbor is a ranked nearest-neighbor candidate.
type Neighbor struct {
	// Fingerprint identifies the cached entry.
	Fingerprint string `json:"fingerprint"`
	// Distance is the scenario distance to the query (see Distance).
	Distance float64 `json:"distance"`
}

// Nearest finds the closest cached single-sensor plan for a query that
// missed exactly: candidates must share the query's topology key (fleet
// entries are skipped — a K-matrix stack is not a drop-in answer for a
// one-sensor problem), and are ranked by Distance. It returns the
// winning entry (promoted into the LRU) and its distance. The exact
// fingerprint, if somehow present, is excluded — callers resolve exact
// hits with Lookup first.
func (l *Library) Nearest(scn coverage.Scenario, obj coverage.Objectives) (*Entry, float64, bool) {
	fp, err := coverage.ScenarioFingerprint(scn, obj)
	if err != nil {
		return nil, 0, false
	}
	return l.nearest(scn, obj, string(fp), 0)
}

// NearestFleet is Nearest over the fleet key space: candidates must be
// jointly-optimized entries with the same fleet size (their matrix
// stacks have the right shape to warm-start the query's joint descent),
// sharing the query's topology key. Entries with a different
// responsibility assignment remain candidates — responsibility shifts
// coverage credit, not matrix shape.
func (l *Library) NearestFleet(scn coverage.Scenario, obj coverage.Objectives, sensors int, responsibility [][]float64) (*Entry, float64, bool) {
	fp, err := coverage.FleetFingerprint(scn, obj, sensors, responsibility)
	if err != nil {
		return nil, 0, false
	}
	return l.nearest(scn, obj, string(fp), sensors)
}

// nearest is the shared candidate scan: exclude is the query's own
// fingerprint, sensors selects the key space (0 = single-sensor).
func (l *Library) nearest(scn coverage.Scenario, obj coverage.Objectives, exclude string, sensors int) (*Entry, float64, bool) {
	topo, err := coverage.TopologyKey(scn)
	if err != nil {
		return nil, 0, false
	}
	c := coverage.CanonicalScenario(scn)
	co := coverage.CanonicalObjectives(obj, len(c.PoIs))
	q := &indexEntry{
		topoKey: string(topo),
		phi:     c.Target,
		alpha:   co.PerPoIAlpha,
		beta:    co.PerPoIBeta,
		objScals: [4]float64{
			co.EnergyWeight, co.EnergyTarget, co.EntropyWeight, co.Epsilon,
		},
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	type cand struct {
		fp   string
		dist float64
	}
	var cands []cand
	for _, ie := range l.index {
		if ie.topoKey != q.topoKey || ie.fp == exclude || ie.sensors != sensors {
			continue
		}
		cands = append(cands, cand{fp: ie.fp, dist: distance(q, ie)})
	}
	if len(cands) == 0 {
		return nil, 0, false
	}
	// Deterministic ranking: distance, then fingerprint.
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].dist != cands[b].dist {
			return cands[a].dist < cands[b].dist
		}
		return cands[a].fp < cands[b].fp
	})
	for _, cd := range cands {
		if e, ok := l.lookupLocked(cd.fp); ok {
			return e, cd.dist, true
		}
	}
	return nil, 0, false
}

// WarmStart resolves the best available starting point for a scenario:
// an exact-fingerprint hit (distance 0) or the nearest same-topology
// neighbor. It is the library's face toward the deploy runtime's
// re-optimization path.
func (l *Library) WarmStart(scn coverage.Scenario, obj coverage.Objectives) (*coverage.Plan, float64, bool) {
	fp, err := coverage.ScenarioFingerprint(scn, obj)
	if err != nil {
		return nil, 0, false
	}
	if e, ok := l.Lookup(fp); ok {
		return e.Plan, 0, true
	}
	if e, dist, ok := l.Nearest(scn, obj); ok {
		return e.Plan, dist, true
	}
	return nil, 0, false
}

// WarmStartFleet is WarmStart over the fleet key space: the exact joint
// plan (distance 0) or the nearest same-size fleet neighbor. It backs
// the fleet deploy runtime's joint re-optimization path.
func (l *Library) WarmStartFleet(scn coverage.Scenario, obj coverage.Objectives, sensors int, responsibility [][]float64) (*coverage.Plan, float64, bool) {
	fp, err := coverage.FleetFingerprint(scn, obj, sensors, responsibility)
	if err != nil {
		return nil, 0, false
	}
	if e, ok := l.Lookup(fp); ok {
		return e.Plan, 0, true
	}
	if e, dist, ok := l.NearestFleet(scn, obj, sensors, responsibility); ok {
		return e.Plan, dist, true
	}
	return nil, 0, false
}

// PublishPlan is the deploy-runtime publish hook: it stores a freshly
// swapped-in plan under the deployment's scenario with "deploy"
// provenance. Errors are logged, not returned — publishing is advisory
// from the runtime's perspective.
func (l *Library) PublishPlan(scn coverage.Scenario, obj coverage.Objectives, plan *coverage.Plan, jobID string) {
	_, err := l.Publish(scn, obj, plan, Provenance{
		JobID:      jobID,
		Source:     "deploy",
		Iterations: plan.Iterations,
	})
	if err != nil {
		l.log.Error("deploy publish failed", slog.String("error", err.Error()))
	}
}

// Stats summarizes the library tiers.
type Stats struct {
	// MemoryEntries counts LRU-resident entries.
	MemoryEntries int `json:"memoryEntries"`
	// IndexedEntries counts entries across both tiers.
	IndexedEntries int `json:"indexedEntries"`
	// Capacity is the LRU bound.
	Capacity int `json:"capacity"`
	// Persistent reports whether a durable tier is configured.
	Persistent bool `json:"persistent"`
}

// Stat returns current tier occupancy.
func (l *Library) Stat() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		MemoryEntries:  l.lru.Len(),
		IndexedEntries: len(l.index),
		Capacity:       l.cfg.Capacity,
		Persistent:     l.cfg.Store != nil,
	}
}

// Get returns the entry for a fingerprint or ErrNotFound.
func (l *Library) Get(fp string) (*Entry, error) {
	if e, ok := l.Lookup(coverage.Fingerprint(fp)); ok {
		return e, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, fp)
}

// decodeEntry is a test hook: it round-trips an envelope blob the way
// the durable tier does.
func decodeEntry(blob []byte) (*Entry, error) {
	var env entryEnvelope
	dec := json.NewDecoder(bytes.NewReader(blob))
	if err := dec.Decode(&env); err != nil {
		return nil, err
	}
	return env.Entry, nil
}
