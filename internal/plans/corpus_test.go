package plans

import (
	"path/filepath"
	"testing"

	"repro/coverage"
	"repro/internal/conformance"
)

// The conformance corpus doubles as the library's warm-start seed
// population: optimizing a few corpus problems, publishing the plans,
// and re-asking for the same (or a perturbed) problem must hit.
func TestLibrarySeededFromCorpusProblems(t *testing.T) {
	corpora, err := conformance.LoadDir(filepath.Join("..", "..", "coverage", "testdata", "corpus"))
	if err != nil {
		t.Fatalf("load corpus: %v", err)
	}
	probs := conformance.Problems(corpora)
	if len(probs) < 20 {
		t.Fatalf("corpus yields %d distinct problems, want >= 20", len(probs))
	}

	lib, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Seed from the first few small single-sensor problems — cheap
	// optimizations; the corpus's full budgets belong to `make
	// conformance`, not here.
	var seeded []conformance.Problem
	for _, p := range probs {
		if p.Fleet != nil || len(p.Scenario.PoIs) > 6 {
			continue
		}
		plan, err := coverage.Optimize(p.Scenario, p.Objectives, coverage.Options{MaxIters: 30, Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", p.Scenario.Name, err)
		}
		if _, err := lib.Publish(p.Scenario, p.Objectives, plan, Provenance{Source: "manual", Seed: 11}); err != nil {
			t.Fatalf("publish %s: %v", p.Scenario.Name, err)
		}
		seeded = append(seeded, p)
		if len(seeded) == 3 {
			break
		}
	}
	if len(seeded) < 3 {
		t.Fatalf("only %d seedable problems found", len(seeded))
	}

	// Exact-problem warm starts hit at distance 0.
	for _, p := range seeded {
		plan, dist, ok := lib.WarmStart(p.Scenario, p.Objectives)
		if !ok || plan == nil {
			t.Fatalf("%s: no warm start after seeding", p.Scenario.Name)
		}
		if dist != 0 {
			t.Errorf("%s: exact problem at distance %g, want 0", p.Scenario.Name, dist)
		}
	}

	// A perturbed target on the same topology warm-starts from the
	// published neighbor (nonzero distance, same matrix dimension).
	perturbed := seeded[0]
	target := append([]float64(nil), perturbed.Scenario.Target...)
	shift := 0.05
	target[0] += shift
	target[len(target)-1] -= shift
	perturbed.Scenario.Target = target
	plan, dist, ok := lib.WarmStart(perturbed.Scenario, perturbed.Objectives)
	if !ok || plan == nil {
		t.Fatal("perturbed problem found no warm start")
	}
	if dist <= 0 {
		t.Errorf("perturbed problem at distance %g, want > 0", dist)
	}
	if len(plan.TransitionMatrix) != len(perturbed.Scenario.PoIs) {
		t.Errorf("warm-start plan dimension %d for %d PoIs",
			len(plan.TransitionMatrix), len(perturbed.Scenario.PoIs))
	}
}
