package plans

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/coverage"
	"repro/internal/jobs"
)

// fakeJobs is a controllable Jobs backend: it records every submitted
// spec and lets tests drive job completion by hand.
type fakeJobs struct {
	mu     sync.Mutex
	nextID int
	specs  map[string]jobs.Spec
	states map[string]jobs.State
	subs   int
}

func newFakeJobs() *fakeJobs {
	return &fakeJobs{specs: make(map[string]jobs.Spec), states: make(map[string]jobs.State)}
}

func (f *fakeJobs) SubmitCtx(_ context.Context, spec jobs.Spec) (jobs.View, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.nextID++
	f.subs++
	id := fmt.Sprintf("job-%04d", f.nextID)
	f.specs[id] = spec
	f.states[id] = jobs.StateRunning
	return jobs.View{ID: id, State: jobs.StateQueued}, nil
}

func (f *fakeJobs) Get(id string) (jobs.View, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.states[id]
	if !ok {
		return jobs.View{}, jobs.ErrNotFound
	}
	return jobs.View{ID: id, State: st}, nil
}

func (f *fakeJobs) submissions() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.subs
}

func (f *fakeJobs) spec(id string) jobs.Spec {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.specs[id]
}

func (f *fakeJobs) setState(id string, st jobs.State) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.states[id] = st
}

// finish marks the job done and fires the publish hook the way
// Manager.SetDoneListener would.
func (f *fakeJobs) finish(s *Service, id string, plan *coverage.Plan) {
	f.setState(id, jobs.StateDone)
	s.OnJobDone(id, f.spec(id), plan)
}

func newSvc(t *testing.T, lib *Library, j Jobs) *Service {
	t.Helper()
	s, err := NewService(ServiceConfig{Library: lib, Jobs: j})
	if err != nil {
		t.Fatalf("NewService: %v", err)
	}
	return s
}

// TestQueryLifecycle walks one scenario miss → scheduled → pending →
// (job done) → hit.
func TestQueryLifecycle(t *testing.T) {
	fj := newFakeJobs()
	s := newSvc(t, newLib(t, Config{}), fj)
	ctx := context.Background()
	scn := lineScn(t, "lifecycle", []float64{0.4, 0.1, 0.1, 0.4})
	q := Query{Scenario: scn, Objectives: testObj}

	r1 := s.Query(ctx, q)
	if r1.Status != StatusScheduled || r1.JobID == "" {
		t.Fatalf("first query = %+v, want scheduled", r1)
	}
	r2 := s.Query(ctx, q)
	if r2.Status != StatusPending || r2.JobID != r1.JobID {
		t.Fatalf("second query = %+v, want pending on %s", r2, r1.JobID)
	}
	if fj.submissions() != 1 {
		t.Fatalf("%d submissions for one fingerprint", fj.submissions())
	}

	fj.finish(s, r1.JobID, fakePlan(4, 1.5))
	r3 := s.Query(ctx, q)
	if r3.Status != StatusHit || r3.Plan == nil || r3.Plan.Cost != 1.5 {
		t.Fatalf("post-publish query = %+v, want hit", r3)
	}
	if r3.Provenance == nil || r3.Provenance.JobID != r1.JobID || r3.Provenance.Source != "job" {
		t.Errorf("hit provenance = %+v", r3.Provenance)
	}
	if fj.submissions() != 1 {
		t.Errorf("hit spawned a job")
	}
}

// TestQueryFailedJobRetries: a failed in-flight job does not wedge the
// fingerprint; the next query spawns a fresh attempt.
func TestQueryFailedJobRetries(t *testing.T) {
	fj := newFakeJobs()
	s := newSvc(t, newLib(t, Config{}), fj)
	ctx := context.Background()
	q := Query{Scenario: lineScn(t, "retry", []float64{0.5, 0.5}), Objectives: testObj}

	r1 := s.Query(ctx, q)
	if r1.Status != StatusScheduled {
		t.Fatalf("first query = %+v", r1)
	}
	fj.setState(r1.JobID, jobs.StateFailed)
	r2 := s.Query(ctx, q)
	if r2.Status != StatusScheduled || r2.JobID == r1.JobID {
		t.Fatalf("query after failure = %+v, want a fresh job", r2)
	}
	if fj.submissions() != 2 {
		t.Errorf("%d submissions, want 2", fj.submissions())
	}
}

// TestQueryWarmStart: a miss near a cached neighbor submits a job
// seeded with the neighbor's matrix; a far or NoSpawn miss does not.
func TestQueryWarmStart(t *testing.T) {
	fj := newFakeJobs()
	lib := newLib(t, Config{})
	s := newSvc(t, lib, fj)
	ctx := context.Background()

	seedPhi := []float64{0.4, 0.1, 0.1, 0.4}
	if _, err := lib.Publish(lineScn(t, "seed", seedPhi), testObj, fakePlan(4, 1), Provenance{Source: "manual"}); err != nil {
		t.Fatal(err)
	}

	shifted := lineScn(t, "shifted", []float64{0.38, 0.12, 0.1, 0.4})
	r := s.Query(ctx, Query{Scenario: shifted, Objectives: testObj})
	if r.Status != StatusScheduled {
		t.Fatalf("query = %+v", r)
	}
	if r.WarmStart == nil || r.WarmStart.Distance <= 0 {
		t.Fatalf("no warm-start neighbor reported: %+v", r)
	}
	spec := fj.spec(r.JobID)
	if spec.Options.InitialMatrix == nil {
		t.Error("spawned job not warm-started")
	}
	if spec.Scenario.Name != "shifted" {
		t.Errorf("spawned spec lost the caller's scenario: %q", spec.Scenario.Name)
	}

	// NoSpawn probes never submit.
	before := fj.submissions()
	r2 := s.Query(ctx, Query{Scenario: lineScn(t, "probe", []float64{0.25, 0.25, 0.25, 0.25}), Objectives: testObj, NoSpawn: true})
	if r2.Status != StatusMiss || fj.submissions() != before {
		t.Errorf("NoSpawn query = %+v (submissions %d→%d)", r2, before, fj.submissions())
	}
}

// TestQueryServeStale: within MaxDistance a neighbor's plan is served
// directly and no job spawns; outside the bound it is not.
func TestQueryServeStale(t *testing.T) {
	fj := newFakeJobs()
	lib := newLib(t, Config{})
	s := newSvc(t, lib, fj)
	ctx := context.Background()

	if _, err := lib.Publish(lineScn(t, "seed", []float64{0.4, 0.1, 0.1, 0.4}), testObj, fakePlan(4, 1), Provenance{Source: "manual"}); err != nil {
		t.Fatal(err)
	}
	shifted := lineScn(t, "near", []float64{0.38, 0.12, 0.1, 0.4}) // distance 0.04

	r := s.Query(ctx, Query{Scenario: shifted, Objectives: testObj, ServeStale: true, MaxDistance: 0.1})
	if r.Status != StatusStale || r.Plan == nil || r.WarmStart == nil {
		t.Fatalf("stale query = %+v", r)
	}
	if fj.submissions() != 0 {
		t.Error("stale serve spawned a job")
	}

	r2 := s.Query(ctx, Query{Scenario: shifted, Objectives: testObj, ServeStale: true, MaxDistance: 0.01})
	if r2.Status != StatusScheduled {
		t.Errorf("out-of-bound stale query = %+v, want scheduled", r2)
	}
}

// TestQueryBatch: a batch resolves in order, deduplicates identical
// misses onto one job, and reports malformed items without failing the
// batch.
func TestQueryBatch(t *testing.T) {
	fj := newFakeJobs()
	lib := newLib(t, Config{})
	s := newSvc(t, lib, fj)
	ctx := context.Background()

	cached := lineScn(t, "cached", []float64{0.4, 0.1, 0.1, 0.4})
	if _, err := lib.Publish(cached, testObj, fakePlan(4, 1), Provenance{Source: "manual"}); err != nil {
		t.Fatal(err)
	}
	missed := lineScn(t, "missed", []float64{0.1, 0.4, 0.4, 0.1})

	res := s.QueryBatch(ctx, []Query{
		{Scenario: cached, Objectives: testObj},
		{Scenario: missed, Objectives: testObj},
		{Scenario: missed, Objectives: testObj}, // duplicate miss
		{Scenario: coverage.Scenario{}, Objectives: testObj},
	})
	want := []string{StatusHit, StatusScheduled, StatusPending, StatusError}
	for i, w := range want {
		if res[i].Status != w {
			t.Errorf("result[%d] = %+v, want status %s", i, res[i], w)
		}
	}
	if res[1].JobID != res[2].JobID {
		t.Errorf("duplicate misses got different jobs: %s vs %s", res[1].JobID, res[2].JobID)
	}
	if fj.submissions() != 1 {
		t.Errorf("%d submissions for one unique miss", fj.submissions())
	}
}

// TestHTTPQuery drives the batched endpoint over HTTP, including the
// request-validation failure modes.
func TestHTTPQuery(t *testing.T) {
	fj := newFakeJobs()
	lib := newLib(t, Config{})
	s := newSvc(t, lib, fj)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	cached := lineScn(t, "http-cached", []float64{0.4, 0.1, 0.1, 0.4})
	fp, err := lib.Publish(cached, testObj, fakePlan(4, 1), Provenance{Source: "manual"})
	if err != nil {
		t.Fatal(err)
	}

	post := func(t *testing.T, body any) (*http.Response, []byte) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/plans:query", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	resp, body := post(t, QueryRequest{Queries: []Query{
		{Scenario: cached, Objectives: testObj},
		{Scenario: lineScn(t, "http-miss", []float64{0.1, 0.4, 0.4, 0.1}), Objectives: testObj},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /plans:query = %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) != 2 || qr.Results[0].Status != StatusHit || qr.Results[1].Status != StatusScheduled {
		t.Fatalf("results = %+v", qr.Results)
	}
	if qr.Results[0].Fingerprint != string(fp) {
		t.Errorf("hit fingerprint = %s, want %s", qr.Results[0].Fingerprint, fp)
	}

	// Empty and oversized batches are 400s.
	if resp, _ := post(t, QueryRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch = %d, want 400", resp.StatusCode)
	}
	big := QueryRequest{Queries: make([]Query, MaxBatch+1)}
	if resp, _ := post(t, big); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch = %d, want 400", resp.StatusCode)
	}

	// Library endpoints.
	st, err := http.Get(srv.URL + "/plans")
	if err != nil || st.StatusCode != http.StatusOK {
		t.Fatalf("GET /plans = %v, %v", st, err)
	}
	var stats Stats
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if stats.IndexedEntries != 1 {
		t.Errorf("stats = %+v", stats)
	}

	ge, err := http.Get(srv.URL + "/plans/" + string(fp))
	if err != nil || ge.StatusCode != http.StatusOK {
		t.Fatalf("GET /plans/{fp} = %v, %v", ge, err)
	}
	var entry Entry
	if err := json.NewDecoder(ge.Body).Decode(&entry); err != nil {
		t.Fatal(err)
	}
	ge.Body.Close()
	if entry.Fingerprint != string(fp) || entry.Plan == nil {
		t.Errorf("entry = %+v", entry)
	}

	if missing, _ := http.Get(srv.URL + "/plans/ffff"); missing.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown fingerprint = %d, want 404", missing.StatusCode)
	}
}

// TestServiceRequiresLibrary: config validation.
func TestServiceRequiresLibrary(t *testing.T) {
	if _, err := NewService(ServiceConfig{}); err == nil {
		t.Error("NewService accepted nil library")
	}
}
