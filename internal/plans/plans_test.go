package plans

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/coverage"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// lineScn builds the shared 4-PoI line test scenario with the given Φ.
func lineScn(t *testing.T, name string, target []float64) coverage.Scenario {
	t.Helper()
	scn, err := coverage.LineScenario(name, len(target), target)
	if err != nil {
		t.Fatalf("LineScenario: %v", err)
	}
	return scn
}

// fakePlan is a structurally valid uniform plan with a chosen cost —
// library bookkeeping does not care how a plan was computed.
func fakePlan(n int, cost float64) *coverage.Plan {
	m := make([][]float64, n)
	for i := range m {
		row := make([]float64, n)
		for j := range row {
			row[j] = 1 / float64(n)
		}
		m[i] = row
	}
	return &coverage.Plan{TransitionMatrix: m, Cost: cost, Iterations: 7}
}

var testObj = coverage.Objectives{Alpha: 1, Beta: 1e-3}

func newLib(t *testing.T, cfg Config) *Library {
	t.Helper()
	l, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l
}

// TestPublishLookup: the round trip, canonical storage, and provenance
// stamping.
func TestPublishLookup(t *testing.T) {
	l := newLib(t, Config{})
	scn := lineScn(t, "round-trip", []float64{0.4, 0.1, 0.1, 0.4})
	fp, err := l.Publish(scn, testObj, fakePlan(4, 2.5), Provenance{Source: "manual", JobID: "j1"})
	if err != nil {
		t.Fatalf("Publish: %v", err)
	}

	e, ok := l.Lookup(fp)
	if !ok {
		t.Fatal("published entry missed")
	}
	if e.Fingerprint != string(fp) {
		t.Errorf("entry fingerprint %s != %s", e.Fingerprint, fp)
	}
	if e.Scenario.Name != "" {
		t.Errorf("stored scenario kept name %q; want canonical (empty)", e.Scenario.Name)
	}
	if len(e.Objectives.PerPoIAlpha) != 4 {
		t.Errorf("objectives not canonicalized: %+v", e.Objectives)
	}
	if e.Provenance.Created.IsZero() {
		t.Error("publish did not stamp Created")
	}
	if e.Provenance.JobID != "j1" || e.Provenance.Source != "manual" {
		t.Errorf("provenance = %+v", e.Provenance)
	}

	// The same problem spelled differently hits the same entry.
	renamed := scn
	renamed.Name = "other-spelling"
	fp2, err := coverage.ScenarioFingerprint(renamed, testObj)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Lookup(fp2); !ok {
		t.Error("renamed scenario missed the cache")
	}

	if _, ok := l.Lookup("deadbeef"); ok {
		t.Error("unknown fingerprint hit")
	}
}

// TestPublishKeepsBest: re-publishing a worse plan never degrades the
// cache; a better plan replaces.
func TestPublishKeepsBest(t *testing.T) {
	l := newLib(t, Config{})
	scn := lineScn(t, "best", []float64{0.25, 0.25, 0.25, 0.25})

	fp, err := l.Publish(scn, testObj, fakePlan(4, 2.0), Provenance{Source: "manual"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Publish(scn, testObj, fakePlan(4, 3.0), Provenance{Source: "manual"}); err != nil {
		t.Fatal(err)
	}
	if e, _ := l.Lookup(fp); e.Plan.Cost != 2.0 {
		t.Errorf("worse re-publish replaced the entry: cost %v", e.Plan.Cost)
	}
	if _, err := l.Publish(scn, testObj, fakePlan(4, 1.5), Provenance{Source: "manual"}); err != nil {
		t.Fatal(err)
	}
	if e, _ := l.Lookup(fp); e.Plan.Cost != 1.5 {
		t.Errorf("better re-publish did not replace: cost %v", e.Plan.Cost)
	}
}

// TestPublishRejectsMalformed: nil plans and row-count mismatches error.
func TestPublishRejectsMalformed(t *testing.T) {
	l := newLib(t, Config{})
	scn := lineScn(t, "bad", []float64{0.5, 0.5})
	if _, err := l.Publish(scn, testObj, nil, Provenance{}); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := l.Publish(scn, testObj, fakePlan(3, 1), Provenance{}); err == nil {
		t.Error("3-row plan for 2 PoIs accepted")
	}
	if _, err := l.Publish(coverage.Scenario{}, testObj, fakePlan(1, 1), Provenance{}); err == nil {
		t.Error("empty scenario accepted")
	}
}

// TestEvictionWithStore: past LRU capacity, entries fall out of memory
// but survive in the durable tier and promote back on lookup.
func TestEvictionWithStore(t *testing.T) {
	store, err := jobs.NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	l := newLib(t, Config{Store: store, Capacity: 2, Metrics: reg})

	phis := [][]float64{
		{0.4, 0.1, 0.1, 0.4},
		{0.1, 0.4, 0.4, 0.1},
		{0.25, 0.25, 0.25, 0.25},
	}
	fps := make([]coverage.Fingerprint, len(phis))
	for i, phi := range phis {
		fp, err := l.Publish(lineScn(t, "evict", phi), testObj, fakePlan(4, float64(i)), Provenance{Source: "manual"})
		if err != nil {
			t.Fatal(err)
		}
		fps[i] = fp
	}

	st := l.Stat()
	if st.MemoryEntries != 2 || st.IndexedEntries != 3 {
		t.Errorf("Stat = %+v, want 2 in memory, 3 indexed", st)
	}
	// The first publish is the LRU victim; it must still be servable.
	if e, ok := l.Lookup(fps[0]); !ok || e.Plan.Cost != 0 {
		t.Errorf("evicted entry not promoted from store: %v, %v", e, ok)
	}
}

// TestEvictionMemoryOnly: without a durable tier an eviction forgets
// the entry completely (index included), so Nearest never dangles.
func TestEvictionMemoryOnly(t *testing.T) {
	l := newLib(t, Config{Capacity: 1})
	fp1, err := l.Publish(lineScn(t, "m1", []float64{0.4, 0.1, 0.1, 0.4}), testObj, fakePlan(4, 1), Provenance{Source: "manual"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Publish(lineScn(t, "m2", []float64{0.1, 0.4, 0.4, 0.1}), testObj, fakePlan(4, 2), Provenance{Source: "manual"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Lookup(fp1); ok {
		t.Error("evicted memory-only entry still served")
	}
	if st := l.Stat(); st.IndexedEntries != 1 {
		t.Errorf("index kept evicted entry: %+v", st)
	}
}

// TestReloadFromStore: a fresh Library over the same store serves every
// persisted entry, and a torn blob is skipped, not fatal.
func TestReloadFromStore(t *testing.T) {
	dir := t.TempDir()
	store, err := jobs.NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	l := newLib(t, Config{Store: store})
	scn := lineScn(t, "reload", []float64{0.4, 0.1, 0.1, 0.4})
	fp, err := l.Publish(scn, testObj, fakePlan(4, 1.25), Provenance{Source: "manual", JobID: "j9"})
	if err != nil {
		t.Fatal(err)
	}

	// A torn write: half a JSON object under an entry name.
	if err := os.WriteFile(filepath.Join(dir, strings.Repeat("ab", 32)+entrySuffix), []byte(`{"version":1,`), 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := newLib(t, Config{Store: store})
	e, ok := l2.Lookup(fp)
	if !ok {
		t.Fatal("reloaded library missed persisted entry")
	}
	if e.Plan.Cost != 1.25 || e.Provenance.JobID != "j9" {
		t.Errorf("reloaded entry = cost %v, prov %+v", e.Plan.Cost, e.Provenance)
	}
	if st := l2.Stat(); st.IndexedEntries != 1 {
		t.Errorf("torn blob counted: %+v", st.IndexedEntries)
	}
}

// TestNearest: candidates are restricted to the query's topology and
// ranked by Φ distance; the exact fingerprint is excluded.
func TestNearest(t *testing.T) {
	l := newLib(t, Config{})
	near := []float64{0.38, 0.12, 0.1, 0.4} // ‖Δ‖₁ = 0.04 from query
	far := []float64{0.1, 0.4, 0.4, 0.1}    // ‖Δ‖₁ = 1.2 from query
	query := []float64{0.4, 0.1, 0.1, 0.4}

	fpNear, err := l.Publish(lineScn(t, "near", near), testObj, fakePlan(4, 1), Provenance{Source: "manual"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Publish(lineScn(t, "far", far), testObj, fakePlan(4, 1), Provenance{Source: "manual"}); err != nil {
		t.Fatal(err)
	}
	// Same Φ as the query but a different topology: never a candidate.
	if _, err := l.Publish(lineScn(t, "other-topo", []float64{0.4, 0.2, 0.4}), testObj, fakePlan(3, 1), Provenance{Source: "manual"}); err != nil {
		t.Fatal(err)
	}

	e, dist, ok := l.Nearest(lineScn(t, "q", query), testObj)
	if !ok {
		t.Fatal("no neighbor found")
	}
	if e.Fingerprint != string(fpNear) {
		t.Errorf("nearest = %s, want %s", e.Fingerprint, fpNear)
	}
	if want := 0.04; dist < want-1e-9 || dist > want+1e-9 {
		t.Errorf("distance = %v, want ~%v", dist, want)
	}

	// An exact hit is not its own neighbor.
	e2, _, ok := l.Nearest(lineScn(t, "self", near), testObj)
	if ok && e2.Fingerprint == string(fpNear) {
		t.Error("Nearest returned the exact fingerprint")
	}

	// A 3-PoI query only sees the 3-PoI entry.
	e3, _, ok := l.Nearest(lineScn(t, "q3", []float64{0.3, 0.3, 0.4}), testObj)
	if !ok || len(e3.Plan.TransitionMatrix) != 3 {
		t.Errorf("cross-topology neighbor: %v, %v", e3, ok)
	}
}

// TestNearestObjectiveDistance: with Φ equal, closer objective weights
// win.
func TestNearestObjectiveDistance(t *testing.T) {
	l := newLib(t, Config{})
	phi := []float64{0.4, 0.1, 0.1, 0.4}
	scn := lineScn(t, "objd", phi)

	fpClose, err := l.Publish(scn, coverage.Objectives{Alpha: 1.1, Beta: 1e-3}, fakePlan(4, 1), Provenance{Source: "manual"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Publish(scn, coverage.Objectives{Alpha: 50, Beta: 1e-3}, fakePlan(4, 1), Provenance{Source: "manual"}); err != nil {
		t.Fatal(err)
	}
	e, _, ok := l.Nearest(scn, testObj)
	if !ok || e.Fingerprint != string(fpClose) {
		t.Errorf("nearest by objectives = %v, want %s", e, fpClose)
	}
}

// TestWarmStart: exact hits come back at distance zero, neighbors at
// their Φ distance, empty libraries at nothing.
func TestWarmStart(t *testing.T) {
	l := newLib(t, Config{})
	if _, _, ok := l.WarmStart(lineScn(t, "w", []float64{0.5, 0.5}), testObj); ok {
		t.Error("empty library produced a warm start")
	}
	scn := lineScn(t, "w", []float64{0.4, 0.1, 0.1, 0.4})
	if _, err := l.Publish(scn, testObj, fakePlan(4, 1), Provenance{Source: "manual"}); err != nil {
		t.Fatal(err)
	}
	if _, dist, ok := l.WarmStart(scn, testObj); !ok || dist != 0 {
		t.Errorf("exact warm start = dist %v, ok %v; want 0, true", dist, ok)
	}
	shifted := lineScn(t, "w", []float64{0.38, 0.12, 0.1, 0.4})
	if plan, dist, ok := l.WarmStart(shifted, testObj); !ok || dist == 0 || plan == nil {
		t.Errorf("neighbor warm start = dist %v, ok %v", dist, ok)
	}
}

// TestEntryEnvelope: persisted blobs carry the versioned envelope and
// decode back to the entry.
func TestEntryEnvelope(t *testing.T) {
	store, err := jobs.NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l := newLib(t, Config{Store: store})
	scn := lineScn(t, "env", []float64{0.4, 0.1, 0.1, 0.4})
	fp, err := l.Publish(scn, testObj, fakePlan(4, 1), Provenance{Source: "manual"})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := store.Get(string(fp) + entrySuffix)
	if err != nil {
		t.Fatalf("entry blob missing: %v", err)
	}
	e, err := decodeEntry(blob)
	if err != nil || e == nil || e.Fingerprint != string(fp) {
		t.Errorf("decodeEntry = %v, %v", e, err)
	}
	if !strings.Contains(string(blob), `"kind": "plan-entry"`) {
		t.Error("envelope kind missing from blob")
	}
}
