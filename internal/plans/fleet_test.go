package plans

import (
	"context"
	"strings"
	"testing"

	"repro/coverage"
)

// fakeFleetPlan extends fakePlan with a K-sensor fleet block; sensor 0
// carries the compatibility matrix.
func fakeFleetPlan(n, k int, cost float64) *coverage.Plan {
	p := fakePlan(n, cost)
	stack := make([][][]float64, k)
	for s := range stack {
		stack[s] = fakePlan(n, cost).TransitionMatrix
	}
	p.Fleet = &coverage.FleetPlan{Sensors: k, TransitionMatrices: stack}
	return p
}

// TestFleetPublishLookup: a fleet plan lands under the fleet
// fingerprint — disjoint from the single-sensor key for the same
// scenario — and records its fleet size on the entry.
func TestFleetPublishLookup(t *testing.T) {
	l := newLib(t, Config{})
	scn := lineScn(t, "fleet-pub", []float64{0.4, 0.1, 0.1, 0.4})

	fp, err := l.Publish(scn, testObj, fakeFleetPlan(4, 2, 3.5), Provenance{Source: "manual"})
	if err != nil {
		t.Fatalf("Publish fleet: %v", err)
	}
	wantFP, err := coverage.FleetFingerprint(scn, testObj, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fp != wantFP {
		t.Errorf("fleet plan keyed as %s, want FleetFingerprint %s", fp, wantFP)
	}

	e, ok := l.Lookup(fp)
	if !ok {
		t.Fatal("fleet entry missed its own fingerprint")
	}
	if e.Sensors != 2 || e.Plan.Fleet == nil || e.Plan.Fleet.Sensors != 2 {
		t.Errorf("fleet entry = sensors %d, fleet %+v", e.Sensors, e.Plan.Fleet)
	}

	// The single-sensor key for the identical scenario stays empty.
	singleFP, err := coverage.ScenarioFingerprint(scn, testObj)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Lookup(singleFP); ok {
		t.Error("fleet publish shadowed the single-sensor key")
	}

	// Both keys coexist.
	if _, err := l.Publish(scn, testObj, fakePlan(4, 2.0), Provenance{Source: "manual"}); err != nil {
		t.Fatalf("Publish single: %v", err)
	}
	if _, ok := l.Lookup(singleFP); !ok {
		t.Error("single-sensor publish missed after fleet publish")
	}
	if _, ok := l.Lookup(fp); !ok {
		t.Error("fleet entry evicted by single-sensor publish")
	}
}

// TestNearestSkipsFleet: fleet entries never answer single-sensor
// neighbor searches and vice versa; fleet candidates must match the
// query's fleet size exactly.
func TestNearestSkipsFleet(t *testing.T) {
	l := newLib(t, Config{})
	near := lineScn(t, "near", []float64{0.4, 0.1, 0.1, 0.4})
	query := lineScn(t, "query", []float64{0.38, 0.12, 0.1, 0.4})

	if _, err := l.Publish(near, testObj, fakeFleetPlan(4, 2, 1.0), Provenance{Source: "manual"}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := l.Nearest(query, testObj); ok {
		t.Error("single-sensor Nearest returned a fleet entry")
	}
	if _, _, ok := l.NearestFleet(query, testObj, 3, nil); ok {
		t.Error("NearestFleet(K=3) returned a K=2 entry")
	}
	e, _, ok := l.NearestFleet(query, testObj, 2, nil)
	if !ok || e.Sensors != 2 {
		t.Fatalf("NearestFleet(K=2) = %+v, %v; want the fleet entry", e, ok)
	}

	// With a single-sensor entry alongside, each key space sees only its
	// own kind.
	if _, err := l.Publish(near, testObj, fakePlan(4, 1.0), Provenance{Source: "manual"}); err != nil {
		t.Fatal(err)
	}
	se, _, ok := l.Nearest(query, testObj)
	if !ok || se.Sensors != 0 {
		t.Fatalf("Nearest = %+v, %v; want the single entry", se, ok)
	}

	// WarmStartFleet: exact fleet hit is distance 0; near fleet query
	// resolves to the neighbor.
	if p, dist, ok := l.WarmStartFleet(near, testObj, 2, nil); !ok || dist != 0 || p.Fleet == nil {
		t.Errorf("WarmStartFleet exact = dist %v ok %v", dist, ok)
	}
	if p, dist, ok := l.WarmStartFleet(query, testObj, 2, nil); !ok || dist <= 0 || p.Fleet == nil {
		t.Errorf("WarmStartFleet neighbor = dist %v ok %v", dist, ok)
	}
}

// TestFleetQueryLifecycle: miss → scheduled (spec carries the fleet
// shape) → pending → published fleet plan → hit, while the
// single-sensor query for the same scenario stays independent.
func TestFleetQueryLifecycle(t *testing.T) {
	fj := newFakeJobs()
	s := newSvc(t, newLib(t, Config{}), fj)
	ctx := context.Background()
	scn := lineScn(t, "fleet-cycle", []float64{0.4, 0.1, 0.1, 0.4})
	resp := [][]float64{{1, 1, 0.5, 0.5}, {0.5, 0.5, 1, 1}}
	q := Query{Scenario: scn, Objectives: testObj, Sensors: 2, Responsibility: resp}

	r1 := s.Query(ctx, q)
	if r1.Status != StatusScheduled || r1.JobID == "" {
		t.Fatalf("first fleet query = %+v, want scheduled", r1)
	}
	spec := fj.spec(r1.JobID)
	if spec.Sensors != 2 || len(spec.Responsibility) != 2 {
		t.Fatalf("spawned spec sensors=%d resp=%v, want fleet shape", spec.Sensors, spec.Responsibility)
	}
	if r2 := s.Query(ctx, q); r2.Status != StatusPending || r2.JobID != r1.JobID {
		t.Fatalf("second fleet query = %+v, want pending on %s", r2, r1.JobID)
	}

	// The single-sensor query is a distinct miss with its own job.
	sq := Query{Scenario: scn, Objectives: testObj}
	rs := s.Query(ctx, sq)
	if rs.Status != StatusScheduled || rs.JobID == r1.JobID {
		t.Fatalf("single query = %+v, want its own job", rs)
	}
	if rs.Fingerprint == r1.Fingerprint {
		t.Fatal("fleet and single queries share a fingerprint")
	}

	plan := fakeFleetPlan(4, 2, 1.25)
	plan.Fleet.Responsibility = resp
	fj.finish(s, r1.JobID, plan)
	r3 := s.Query(ctx, q)
	if r3.Status != StatusHit || r3.Plan == nil || r3.Plan.Fleet == nil {
		t.Fatalf("post-publish fleet query = %+v, want fleet hit", r3)
	}
}

// TestFleetQueryWarmStart: a fleet miss near a cached same-size fleet
// neighbor spawns a job seeded with the whole matrix stack.
func TestFleetQueryWarmStart(t *testing.T) {
	fj := newFakeJobs()
	lib := newLib(t, Config{})
	s := newSvc(t, lib, fj)
	ctx := context.Background()

	near := lineScn(t, "fleet-near", []float64{0.4, 0.1, 0.1, 0.4})
	if _, err := lib.Publish(near, testObj, fakeFleetPlan(4, 2, 1.0), Provenance{Source: "manual"}); err != nil {
		t.Fatal(err)
	}

	q := Query{
		Scenario:   lineScn(t, "fleet-query", []float64{0.38, 0.12, 0.1, 0.4}),
		Objectives: testObj,
		Sensors:    2,
	}
	r := s.Query(ctx, q)
	if r.Status != StatusScheduled || r.WarmStart == nil {
		t.Fatalf("fleet miss = %+v, want warm-started schedule", r)
	}
	spec := fj.spec(r.JobID)
	if len(spec.Options.InitialMatrices) != 2 {
		t.Fatalf("spawned job has %d initial matrices, want the neighbor's stack of 2",
			len(spec.Options.InitialMatrices))
	}
	if spec.Options.InitialMatrix != nil {
		t.Error("fleet warm start also set the single-sensor InitialMatrix")
	}
}

// TestFleetQueryValidation: malformed fleet queries resolve to errors
// without spawning anything.
func TestFleetQueryValidation(t *testing.T) {
	fj := newFakeJobs()
	s := newSvc(t, newLib(t, Config{}), fj)
	ctx := context.Background()
	scn := lineScn(t, "fleet-bad", []float64{0.5, 0.5})

	cases := []struct {
		name string
		q    Query
		want string
	}{
		{"negative sensors", Query{Scenario: scn, Objectives: testObj, Sensors: -1}, "negative sensors"},
		{"responsibility on single", Query{Scenario: scn, Objectives: testObj,
			Responsibility: [][]float64{{1, 1}}}, "single-sensor"},
		{"short responsibility", Query{Scenario: scn, Objectives: testObj, Sensors: 2,
			Responsibility: [][]float64{{1, 1}}}, "responsibility"},
	}
	for _, tc := range cases {
		r := s.Query(ctx, tc.q)
		if r.Status != StatusError || !strings.Contains(r.Error, tc.want) {
			t.Errorf("%s: %+v, want error containing %q", tc.name, r, tc.want)
		}
	}
	if fj.submissions() != 0 {
		t.Errorf("invalid queries spawned %d jobs", fj.submissions())
	}
}
