package plans

import (
	"context"
	"fmt"
	"log/slog"
	"sync"

	"repro/coverage"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// Query statuses. Every query resolves to exactly one.
const (
	// StatusHit: the exact fingerprint was cached; Plan is the answer.
	StatusHit = "hit"
	// StatusStale: no exact entry, but a neighbor within the caller's
	// MaxDistance was served directly (Plan is the neighbor's plan,
	// WarmStart identifies it).
	StatusStale = "stale"
	// StatusScheduled: a miss spawned an optimization job (JobID); a
	// later identical query will be served from the cache once the job
	// publishes. WarmStart, when set, names the neighbor seeding it.
	StatusScheduled = "scheduled"
	// StatusPending: a previous query already spawned the job (JobID);
	// nothing new was started.
	StatusPending = "pending"
	// StatusMiss: no entry, and the query asked not to spawn (NoSpawn).
	StatusMiss = "miss"
	// StatusError: the query itself was invalid; see Error.
	StatusError = "error"
)

// Query is one item of a batched plan lookup.
type Query struct {
	// Scenario is the coverage problem being asked about.
	Scenario coverage.Scenario `json:"scenario"`
	// Objectives weights the optimization criteria.
	Objectives coverage.Objectives `json:"objectives"`
	// Options tunes the optimization spawned on a miss (ignored on
	// hits). InitialMatrix is owned by the service's warm-start logic.
	Options coverage.Options `json:"options"`
	// Restarts is the multi-start budget of a spawned job (default 1).
	Restarts int `json:"restarts,omitempty"`
	// Sensors asks for a jointly-optimized K-sensor fleet plan when >= 2;
	// 0 or 1 is the ordinary single-sensor query. Fleet queries address
	// the fleet key space (coverage.FleetFingerprint) and never collide
	// with single-sensor entries for the same scenario.
	Sensors int `json:"sensors,omitempty"`
	// Responsibility is the optional K×M fleet coverage-credit split
	// (uniform 1/K when nil). Only valid with Sensors >= 2.
	Responsibility [][]float64 `json:"responsibility,omitempty"`
	// MaxDistance bounds how far a neighbor may be to serve it directly
	// when ServeStale is set (see distance.go for the metric; ‖ΔΦ‖₁
	// dominates, so values compose with drift-detector thresholds).
	MaxDistance float64 `json:"maxDistance,omitempty"`
	// ServeStale allows answering a miss with the nearest neighbor's
	// plan (status "stale") instead of waiting for an optimization.
	ServeStale bool `json:"serveStale,omitempty"`
	// NoSpawn turns a miss into status "miss" instead of spawning a job
	// — a pure cache probe.
	NoSpawn bool `json:"noSpawn,omitempty"`
}

// Result is the resolution of one Query.
type Result struct {
	// Status is one of the Status* constants.
	Status string `json:"status"`
	// Fingerprint is the query's content address (set unless the query
	// was too malformed to hash).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Plan is the served plan ("hit" and "stale" only).
	Plan *coverage.Plan `json:"plan,omitempty"`
	// Provenance records where a served plan came from.
	Provenance *Provenance `json:"provenance,omitempty"`
	// JobID is the optimization filling the miss ("scheduled"/"pending").
	JobID string `json:"jobId,omitempty"`
	// WarmStart names the neighbor used as a stale serve or a job seed.
	WarmStart *Neighbor `json:"warmStart,omitempty"`
	// Error explains a status of "error".
	Error string `json:"error,omitempty"`
}

// Jobs is the slice of the job manager the service needs. It is
// satisfied by *jobs.Manager.
type Jobs interface {
	SubmitCtx(ctx context.Context, spec jobs.Spec) (jobs.View, error)
	Get(id string) (jobs.View, error)
}

// ServiceConfig wires a Service.
type ServiceConfig struct {
	// Library is the plan cache (required).
	Library *Library
	// Jobs runs optimizations for misses; nil makes every miss behave
	// as NoSpawn.
	Jobs Jobs
	// Logger receives structured service logs. Nil disables logging.
	Logger *slog.Logger
	// Metrics is the registry the service instruments register into.
	Metrics *obs.Registry
}

// svcMetrics bundles the service instruments (nil-safe like all obs
// instruments).
type svcMetrics struct {
	queries   *obs.CounterVec // by status
	spawned   *obs.Counter
	batchSize *obs.Histogram
}

func newSvcMetrics(r *obs.Registry) svcMetrics {
	return svcMetrics{
		queries: r.CounterVec("plans_queries_total",
			"Plan-library queries by resolution status.", "status"),
		spawned: r.Counter("plans_jobs_spawned_total",
			"Optimization jobs spawned to fill plan-library misses."),
		batchSize: r.Histogram("plans_query_batch_size",
			"Queries per /plans:query batch.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
	}
}

// Service resolves plan queries against the library, spawning (and
// deduplicating) optimization jobs for misses. Concurrent queries for
// the same missed fingerprint spawn exactly one job: the fingerprint →
// job-ID table is checked and updated under the same lock that covers
// the submission, so there is no window for a second spawn.
type Service struct {
	lib *Library
	cfg ServiceConfig
	log *slog.Logger
	met svcMetrics

	mu       sync.Mutex
	inflight map[string]string // fingerprint -> job ID
}

// NewService builds a Service over a Library.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Library == nil {
		return nil, fmt.Errorf("plans: ServiceConfig.Library is required")
	}
	s := &Service{
		lib:      cfg.Library,
		cfg:      cfg,
		log:      obs.Component(cfg.Logger, "plans"),
		inflight: make(map[string]string),
	}
	if cfg.Metrics != nil {
		s.met = newSvcMetrics(cfg.Metrics)
	}
	return s, nil
}

// Query resolves one query. See QueryBatch for the batched form.
func (s *Service) Query(ctx context.Context, q Query) Result {
	res := s.resolve(ctx, q)
	s.met.queries.With(res.Status).Inc()
	return res
}

// QueryBatch resolves a batch in order: result i answers query i.
// Identical misses within one batch share a single spawned job (the
// first schedules, the rest are pending on the same job ID).
func (s *Service) QueryBatch(ctx context.Context, qs []Query) []Result {
	s.met.batchSize.Observe(float64(len(qs)))
	out := make([]Result, len(qs))
	for i, q := range qs {
		out[i] = s.Query(ctx, q)
	}
	return out
}

// resolve runs the hit → stale → singleflight-spawn ladder.
func (s *Service) resolve(ctx context.Context, q Query) Result {
	fleet := q.Sensors >= 2
	var fp coverage.Fingerprint
	var err error
	switch {
	case q.Sensors < 0:
		return Result{Status: StatusError,
			Error: fmt.Sprintf("plans: negative sensors %d", q.Sensors)}
	case !fleet && q.Responsibility != nil:
		return Result{Status: StatusError,
			Error: "plans: responsibility set on a single-sensor query"}
	case fleet:
		fp, err = coverage.FleetFingerprint(q.Scenario, q.Objectives, q.Sensors, q.Responsibility)
	default:
		fp, err = coverage.ScenarioFingerprint(q.Scenario, q.Objectives)
	}
	if err != nil {
		return Result{Status: StatusError, Error: err.Error()}
	}
	res := Result{Fingerprint: string(fp)}

	if e, ok := s.lib.Lookup(fp); ok {
		res.Status = StatusHit
		res.Plan = e.Plan
		prov := e.Provenance
		res.Provenance = &prov
		return res
	}

	// An optimization may already be in flight for this fingerprint.
	if id, ok := s.pendingJob(string(fp)); ok {
		res.Status = StatusPending
		res.JobID = id
		return res
	}

	var neighbor *Entry
	var dist float64
	var haveNeighbor bool
	if fleet {
		neighbor, dist, haveNeighbor = s.lib.NearestFleet(q.Scenario, q.Objectives, q.Sensors, q.Responsibility)
	} else {
		neighbor, dist, haveNeighbor = s.lib.Nearest(q.Scenario, q.Objectives)
	}
	if haveNeighbor {
		res.WarmStart = &Neighbor{Fingerprint: neighbor.Fingerprint, Distance: dist}
	}
	if q.ServeStale && haveNeighbor && dist <= q.MaxDistance {
		res.Status = StatusStale
		res.Plan = neighbor.Plan
		prov := neighbor.Provenance
		res.Provenance = &prov
		s.lib.met.staleHits.Inc()
		return res
	}
	if q.NoSpawn || s.cfg.Jobs == nil {
		res.Status = StatusMiss
		return res
	}
	return s.spawn(ctx, q, res, neighbor, haveNeighbor)
}

// pendingJob reports a live in-flight job for the fingerprint, clearing
// entries whose job failed or was cancelled so the next query retries.
// (Done jobs clear themselves through OnJobDone; until then the library
// simply serves the pending status, never a wrong plan.)
func (s *Service) pendingJob(fp string) (string, bool) {
	s.mu.Lock()
	id, ok := s.inflight[fp]
	s.mu.Unlock()
	if !ok {
		return "", false
	}
	v, err := s.cfg.Jobs.Get(id)
	if err != nil || (v.State.Terminal() && v.State != jobs.StateDone) {
		s.mu.Lock()
		if s.inflight[fp] == id {
			delete(s.inflight, fp)
		}
		s.mu.Unlock()
		return "", false
	}
	return id, true
}

// spawn submits the optimization for a missed fingerprint, warm-started
// from the nearest neighbor when one exists. The inflight check and the
// submission happen under one lock: that is the singleflight guarantee.
func (s *Service) spawn(ctx context.Context, q Query, res Result, neighbor *Entry, haveNeighbor bool) Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.inflight[res.Fingerprint]; ok {
		res.Status = StatusPending
		res.JobID = id
		return res
	}
	spec := jobs.Spec{
		Scenario:       q.Scenario,
		Objectives:     q.Objectives,
		Options:        q.Options,
		Restarts:       q.Restarts,
		Sensors:        q.Sensors,
		Responsibility: q.Responsibility,
	}
	if haveNeighbor {
		// Fleet misses warm-start the joint descent from the neighbor's
		// whole matrix stack; single-sensor misses seed one matrix.
		if q.Sensors >= 2 && neighbor.Plan.Fleet != nil {
			spec.Options.InitialMatrices = neighbor.Plan.Fleet.TransitionMatrices
		} else {
			spec.Options.InitialMatrix = neighbor.Plan.TransitionMatrix
		}
		s.lib.met.warmStarts.Inc()
	}
	v, err := s.cfg.Jobs.SubmitCtx(ctx, spec)
	if err != nil {
		res.Status = StatusError
		res.Error = err.Error()
		return res
	}
	s.inflight[res.Fingerprint] = v.ID
	s.met.spawned.Inc()
	res.Status = StatusScheduled
	res.JobID = v.ID
	if haveNeighbor {
		s.log.Info("plan miss warm-started",
			slog.String("fingerprint", res.Fingerprint),
			slog.String("job", v.ID),
			slog.String("neighbor", neighbor.Fingerprint),
			slog.Float64("distance", res.WarmStart.Distance))
	} else {
		s.log.Info("plan miss scheduled",
			slog.String("fingerprint", res.Fingerprint),
			slog.String("job", v.ID))
	}
	return res
}

// OnJobDone publishes a finished job's plan into the library and clears
// the fingerprint's in-flight slot. Wire it into the job manager with
// Manager.SetDoneListener so every completed optimization — queries,
// direct submissions, deploy re-optimizations — lands in the cache.
func (s *Service) OnJobDone(jobID string, spec jobs.Spec, plan *coverage.Plan) {
	solver := spec.Options.Solver
	if solver == "" {
		solver = "dense"
	}
	fp, err := s.lib.Publish(spec.Scenario, spec.Objectives, plan, Provenance{
		JobID:      jobID,
		Source:     "job",
		Seed:       spec.Options.Seed,
		Restarts:   spec.Restarts,
		Iterations: plan.Iterations,
		Solver:     solver,
	})
	if err != nil {
		s.log.Error("publish of finished job failed",
			slog.String("job", jobID),
			slog.String("error", err.Error()))
		return
	}
	s.mu.Lock()
	if s.inflight[string(fp)] == jobID {
		delete(s.inflight, string(fp))
	}
	s.mu.Unlock()
}

// Library returns the underlying plan cache.
func (s *Service) Library() *Library { return s.lib }
