package plans

import "math"

// Scenario distance for nearest-neighbor warm-start lookup. The metric
// only compares entries whose topology keys already match (same PoI
// layout, range, speed, obstacles — hence identical transition-matrix
// dimensions and support), so the remaining degrees of freedom are the
// target allocation Φ and the objective weights:
//
//	d = ‖ΔΦ‖₁ + objWeight · (relative objective-weight distance)
//
// ‖ΔΦ‖₁ dominates by design: Φ lives on the probability simplex, so the
// term is a dimensionless value in [0, 2], and it is the quantity the
// deploy runtime's drift detector already thresholds on — a caller's
// MaxDistance bound composes naturally with drift tolerances. Objective
// weights are unbounded, so each weight contributes a relative
// difference |a−b|/(1+|a|+|b|) in [0, 1) instead of a raw delta.

// objWeight scales the objective-weight term relative to ‖ΔΦ‖₁.
const objWeight = 0.5

// distance computes the scenario distance between a query projection
// and an index entry with the same topology key.
func distance(q, e *indexEntry) float64 {
	d := l1(q.phi, e.phi)
	d += objWeight * (relL1(q.alpha, e.alpha) +
		relL1(q.beta, e.beta) +
		relDiff(q.objScals[0], e.objScals[0]) +
		relDiff(q.objScals[1], e.objScals[1]) +
		relDiff(q.objScals[2], e.objScals[2]) +
		relDiff(q.objScals[3], e.objScals[3]))
	return d
}

// l1 is the ℓ₁ distance; mismatched lengths (impossible for entries
// sharing a topology key, but cheap to guard) are infinitely far apart.
func l1(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// relL1 sums per-element relative differences.
func relL1(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var s float64
	for i := range a {
		s += relDiff(a[i], b[i])
	}
	return s
}

// relDiff is a bounded, scale-aware difference: 0 for equal values,
// approaching 1 as the values diverge by orders of magnitude.
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / (1 + math.Abs(a) + math.Abs(b))
}
