package plans

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// MaxBatch bounds the query count of one /plans:query request: enough
// for a fleet controller refreshing hundreds of deployments in one
// round trip, small enough that a single request cannot monopolize the
// job queue.
const MaxBatch = 256

// ErrRequest reports a malformed /plans request.
var ErrRequest = errors.New("plans: bad request")

// QueryRequest is the /plans:query body.
type QueryRequest struct {
	Queries []Query `json:"queries"`
}

// QueryResponse answers a /plans:query batch; Results[i] resolves
// Queries[i].
type QueryResponse struct {
	Results []Result `json:"results"`
}

// Handler returns the plan-library HTTP/JSON API:
//
//	POST /plans:query      batched lookup: N queries in, N results out
//	                       (hit / stale / scheduled / pending / miss /
//	                       error per item; one job per unique missed
//	                       fingerprint)
//	GET  /plans            library tier occupancy
//	GET  /plans/{fp}       one cached entry (canonical scenario, plan,
//	                       provenance)
//
// Error responses are JSON objects {"error": "..."}: 400 for malformed
// or oversized batches, 404 for unknown fingerprints.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /plans:query", s.handleQuery)
	mux.HandleFunc("GET /plans", s.handleStats)
	mux.HandleFunc("GET /plans/{fp}", s.handleGet)
	return mux
}

// writeJSON writes a JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps a service error onto an HTTP status and JSON body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrRequest, err))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, fmt.Errorf("%w: empty batch", ErrRequest))
		return
	}
	if len(req.Queries) > MaxBatch {
		writeError(w, fmt.Errorf("%w: %d queries exceeds the batch cap of %d",
			ErrRequest, len(req.Queries), MaxBatch))
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Results: s.QueryBatch(r.Context(), req.Queries),
	})
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.lib.Stat())
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	e, err := s.lib.Get(r.PathValue("fp"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, e)
}
