package plans

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/coverage"
	"repro/internal/jobs"
)

// TestConcurrentSingleflight hammers the service with concurrent
// queries for a handful of distinct missed fingerprints (plus constant
// publishes and LRU churn) and checks, under -race, that:
//
//   - exactly one job is spawned per unique missed fingerprint,
//   - no publish is lost: once a fingerprint's job finishes, every
//     subsequent query for it hits,
//   - LRU eviction under concurrent lookups never serves a wrong or
//     partial entry.
func TestConcurrentSingleflight(t *testing.T) {
	store, err := jobs.NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A tiny LRU over a real store maximizes eviction/promotion churn.
	lib := newLib(t, Config{Store: store, Capacity: 2})
	fj := newFakeJobs()
	s := newSvc(t, lib, fj)
	ctx := context.Background()

	// Distinct 4-PoI problems: same topology, different Φ, so they also
	// exercise Nearest against each other while racing.
	phis := [][]float64{
		{0.40, 0.10, 0.10, 0.40},
		{0.10, 0.40, 0.40, 0.10},
		{0.25, 0.25, 0.25, 0.25},
		{0.70, 0.10, 0.10, 0.10},
		{0.10, 0.10, 0.10, 0.70},
	}
	scns := make([]coverage.Scenario, len(phis))
	fps := make([]string, len(phis))
	for i, phi := range phis {
		scns[i] = lineScn(t, fmt.Sprintf("cc-%d", i), phi)
		fp, err := coverage.ScenarioFingerprint(scns[i], testObj)
		if err != nil {
			t.Fatal(err)
		}
		fps[i] = string(fp)
	}

	const workers = 8
	const rounds = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % len(scns)
				res := s.Query(ctx, Query{Scenario: scns[i], Objectives: testObj})
				switch res.Status {
				case StatusHit:
					if res.Plan == nil || len(res.Plan.TransitionMatrix) != 4 {
						t.Errorf("hit with bad plan: %+v", res)
					}
				case StatusScheduled, StatusPending:
					// Expected while the job is in flight.
				default:
					t.Errorf("unexpected status %q: %+v", res.Status, res)
				}
				// Interleave churn: stats, nearest-neighbor scans, and
				// out-of-band publishes that race the LRU.
				lib.Stat()
				lib.Nearest(scns[i], testObj)
			}
		}(w)
	}
	wg.Wait()

	if got := fj.submissions(); got != len(scns) {
		t.Fatalf("%d jobs spawned for %d unique fingerprints", got, len(scns))
	}

	// Finish every job concurrently — publishes race each other and the
	// ongoing LRU eviction (capacity 2 < 5 entries).
	ids := make([]string, 0, len(scns))
	fj.mu.Lock()
	for id := range fj.specs {
		ids = append(ids, id)
	}
	fj.mu.Unlock()
	var pg sync.WaitGroup
	for _, id := range ids {
		pg.Add(1)
		go func(id string) {
			defer pg.Done()
			fj.finish(s, id, fakePlan(4, 2.0))
		}(id)
	}
	pg.Wait()

	// No publish lost: every fingerprint now hits, from memory or store.
	for i, fp := range fps {
		res := s.Query(ctx, Query{Scenario: scns[i], Objectives: testObj})
		if res.Status != StatusHit {
			t.Errorf("fingerprint %s: status %q after publish", fp[:12], res.Status)
		}
	}
	if got := fj.submissions(); got != len(scns) {
		t.Errorf("post-publish queries spawned jobs: %d total", got)
	}
	if st := lib.Stat(); st.IndexedEntries != len(scns) {
		t.Errorf("index holds %d entries, want %d", st.IndexedEntries, len(scns))
	}
}

// TestConcurrentPublishLookup races direct library publishes (including
// same-fingerprint best-plan contention) against lookups and evictions.
func TestConcurrentPublishLookup(t *testing.T) {
	lib := newLib(t, Config{Capacity: 3})
	scn := lineScn(t, "pub-race", []float64{0.4, 0.1, 0.1, 0.4})
	fp, err := coverage.ScenarioFingerprint(scn, testObj)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				// Costs descend toward 1.0; best-plan-wins must converge there.
				cost := 1.0 + float64((w*50+r)%17)/10
				if _, err := lib.Publish(scn, testObj, fakePlan(4, cost), Provenance{Source: "manual"}); err != nil {
					t.Errorf("Publish: %v", err)
				}
				if e, ok := lib.Lookup(fp); ok {
					if e.Plan == nil || e.Plan.Cost < 1.0 {
						t.Errorf("lookup saw invalid entry: %+v", e)
					}
				}
				// Churn the LRU with other topologies.
				other := lineScn(t, "churn", []float64{1 / 3.0, 1 / 3.0, 1 - 2/3.0})
				if _, err := lib.Publish(other, testObj, fakePlan(3, cost), Provenance{Source: "manual"}); err != nil {
					t.Errorf("Publish churn: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()

	e, ok := lib.Lookup(fp)
	if !ok {
		t.Fatal("entry lost after concurrent publishes")
	}
	if e.Plan.Cost != 1.0 {
		t.Errorf("best plan lost: final cost %v, want 1.0", e.Plan.Cost)
	}
}
