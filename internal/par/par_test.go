package par

import (
	"sync/atomic"
	"testing"
)

// coverTask records which logical worker processed each item, and bumps a
// counter so tests can detect double-processing.
type coverTask struct {
	owner []int32
	hits  []int32
}

func (t *coverTask) Run(w, lo, hi int) {
	for i := lo; i < hi; i++ {
		atomic.StoreInt32(&t.owner[i], int32(w))
		atomic.AddInt32(&t.hits[i], 1)
	}
}

// TestRunCoversEveryItemOnce checks the partition for a sweep of sizes and
// widths: every index is processed exactly once, spans are contiguous and
// ascending in worker index, and the assignment depends only on (n, w).
func TestRunCoversEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7} {
		p := New(workers)
		for _, n := range []int{1, 2, 3, 5, 8, 17, 64} {
			task := &coverTask{owner: make([]int32, n), hits: make([]int32, n)}
			p.Run(n, task)
			prev := int32(0)
			for i := 0; i < n; i++ {
				if task.hits[i] != 1 {
					t.Fatalf("workers=%d n=%d: item %d processed %d times", workers, n, i, task.hits[i])
				}
				if task.owner[i] < prev {
					t.Fatalf("workers=%d n=%d: non-ascending worker %d after %d at item %d",
						workers, n, task.owner[i], prev, i)
				}
				prev = task.owner[i]
			}
			if int(prev) >= workers {
				t.Fatalf("workers=%d n=%d: worker index %d out of range", workers, n, prev)
			}
			// Re-running must reproduce the identical assignment.
			again := &coverTask{owner: make([]int32, n), hits: make([]int32, n)}
			p.Run(n, again)
			for i := 0; i < n; i++ {
				if task.owner[i] != again.owner[i] {
					t.Fatalf("workers=%d n=%d: assignment of item %d changed across runs", workers, n, i)
				}
			}
		}
		p.Stop()
	}
}

// TestRunZeroAndNegative checks the degenerate sizes never dispatch.
func TestRunZeroAndNegative(t *testing.T) {
	p := New(4)
	defer p.Stop()
	task := &coverTask{owner: make([]int32, 1), hits: make([]int32, 1)}
	p.Run(0, task)
	p.Run(-3, task)
	if task.hits[0] != 0 {
		t.Fatalf("degenerate sizes dispatched work")
	}
}

// TestStopRestart checks a stopped pool serves later Runs again.
func TestStopRestart(t *testing.T) {
	p := New(3)
	task := &coverTask{owner: make([]int32, 9), hits: make([]int32, 9)}
	p.Run(9, task)
	p.Stop()
	p.Stop() // idempotent
	again := &coverTask{owner: make([]int32, 9), hits: make([]int32, 9)}
	p.Run(9, again)
	p.Stop()
	for i := range again.hits {
		if again.hits[i] != 1 {
			t.Fatalf("item %d processed %d times after restart", i, again.hits[i])
		}
	}
}

// panicTask panics on one specific item.
type panicTask struct {
	at   int
	hits []int32
}

func (t *panicTask) Run(w, lo, hi int) {
	for i := lo; i < hi; i++ {
		if i == t.at {
			panic("boom")
		}
		atomic.AddInt32(&t.hits[i], 1)
	}
}

// TestPanicPropagates checks a panic in any span is re-raised by Run and
// that the pool stays usable afterwards — whether the panic lands on the
// caller's own span (item 0) or on a dispatched one.
func TestPanicPropagates(t *testing.T) {
	p := New(4)
	defer p.Stop()
	for _, at := range []int{0, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("panic at item %d was swallowed", at)
				}
			}()
			p.Run(8, &panicTask{at: at, hits: make([]int32, 8)})
		}()
	}
	task := &coverTask{owner: make([]int32, 8), hits: make([]int32, 8)}
	p.Run(8, task)
	for i := range task.hits {
		if task.hits[i] != 1 {
			t.Fatalf("pool unusable after panic: item %d processed %d times", i, task.hits[i])
		}
	}
}

// TestNilPoolIsSerial checks the nil pool contract the hot paths rely on.
func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool width = %d, want 1", p.Workers())
	}
	p.Stop() // must not crash
}

// TestRunSteadyStateAllocs checks dispatch itself is allocation-free once
// the workers exist — the property that keeps the descent hot loop at
// zero steady-state allocations.
func TestRunSteadyStateAllocs(t *testing.T) {
	p := New(4)
	defer p.Stop()
	task := &coverTask{owner: make([]int32, 64), hits: make([]int32, 64)}
	p.Run(64, task) // warm start: spawn goroutines outside the measurement
	allocs := testing.AllocsPerRun(50, func() {
		p.Run(64, task)
	})
	if allocs != 0 {
		t.Fatalf("Run allocates %v per call in steady state, want 0", allocs)
	}
}
