// Package par provides a small deterministic fork-join pool for
// row-partitioned numeric kernels.
//
// The pool exists to make a single descent iteration use all cores while
// staying bit-for-bit identical to the serial code path. It therefore
// offers exactly one primitive: Run splits n items into at most Workers
// contiguous spans — a pure function of (n, workers), never of timing —
// and blocks until every span has been processed. Each span is owned by
// one logical worker, so a kernel that writes only to slots inside its
// span and folds them in ascending index order performs the same
// floating-point operations in the same order as a serial sweep,
// regardless of how the spans are scheduled onto OS threads.
//
// A Pool with one worker (or a nil *Pool) never starts a goroutine: Run
// degenerates to a direct call, which is the "Workers: 1 forces the exact
// serial path" contract the descent options document.
package par

// Task is a unit of partitionable work. Run processes the half-open span
// [lo, hi) as logical worker w; w indexes per-worker scratch, and spans
// handed to distinct w never overlap. Implementations must not call back
// into the pool that is running them (the pool is not reentrant).
type Task interface {
	Run(w, lo, hi int)
}

// span is one dispatched unit: a task plus the slice of work it owns.
type span struct {
	task   Task
	w      int
	lo, hi int
}

// Pool is a fixed-size set of persistent worker goroutines. Goroutines
// start lazily on the first parallel Run and are torn down by Stop; a
// stopped pool restarts transparently on its next Run, so Stop is safe to
// call between uses (an Optimizer stops its pool when a run finishes so
// idle optimizers hold no goroutines).
//
// A Pool is driven by one goroutine at a time: Run and Stop must not be
// called concurrently with each other.
type Pool struct {
	workers int
	cmds    chan span
	done    chan any
	started bool
}

// New returns a pool of the given logical width. Widths below one are
// clamped to one (a purely serial pool).
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's logical width. A nil pool has width one.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Run partitions n items into contiguous ascending spans and executes t
// over all of them, blocking until the last span completes. The calling
// goroutine executes span 0 itself, so a width-w pool occupies w OS-level
// workers including the caller. Panics from any span are re-raised here
// after every span has finished, keeping the pool reusable.
//
// The partition assigns ⌈n/w⌉ items to the first n mod w spans and ⌊n/w⌋
// to the rest, with w capped at n — deterministic for fixed (n, width).
func (p *Pool) Run(n int, t Task) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		t.Run(0, 0, n)
		return
	}
	if !p.started {
		p.start()
	}
	base, rem := n/w, n%w
	end0 := base
	if rem > 0 {
		end0++
	}
	lo := end0
	for i := 1; i < w; i++ {
		size := base
		if i < rem {
			size++
		}
		p.cmds <- span{task: t, w: i, lo: lo, hi: lo + size}
		lo += size
	}
	callerPanic := runSpan(span{task: t, w: 0, lo: 0, hi: end0})
	var workerPanic any
	for i := 1; i < w; i++ {
		if v := <-p.done; v != nil && workerPanic == nil {
			workerPanic = v
		}
	}
	if callerPanic != nil {
		panic(callerPanic)
	}
	if workerPanic != nil {
		panic(workerPanic)
	}
}

// Stop tears down the worker goroutines. The pool restarts lazily on its
// next Run. Calling Stop on an idle, never-started, or nil pool is a
// no-op.
func (p *Pool) Stop() {
	if p == nil || !p.started {
		return
	}
	close(p.cmds)
	p.started = false
}

// start spins up the persistent workers. Channels are buffered to the
// pool width so dispatch and completion never block the producer behind a
// slow consumer.
func (p *Pool) start() {
	p.cmds = make(chan span, p.workers)
	p.done = make(chan any, p.workers)
	for i := 1; i < p.workers; i++ {
		go worker(p.cmds, p.done)
	}
	p.started = true
}

// worker drains spans until the command channel closes. The channels are
// passed by value so a worker from a previous start never touches the
// pool's current fields (Stop + restart swaps them).
func worker(cmds <-chan span, done chan<- any) {
	for s := range cmds {
		done <- runSpan(s)
	}
}

// runSpan executes one span, converting a panic into a value so the
// fork-join in Run can re-raise it instead of deadlocking.
func runSpan(s span) (v any) {
	defer func() { v = recover() }()
	s.task.Run(s.w, s.lo, s.hi)
	return nil
}
