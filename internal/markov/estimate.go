package markov

import (
	"fmt"

	"repro/internal/mat"
)

// Estimate fits a transition matrix to an observed state trajectory by
// maximum likelihood with additive (Laplace) smoothing:
//
//	p̂_ij = (count(i→j) + smoothing) / (count(i→·) + M·smoothing)
//
// Positive smoothing keeps every entry strictly positive, so the estimate
// is ergodic and directly usable as an optimizer warm start or for
// drift detection against a deployed plan (compare with the plan's matrix
// under the ConditionNumber bound). states must contain values in [0, m).
func Estimate(states []int, m int, smoothing float64) (*mat.Matrix, error) {
	if m < 2 {
		return nil, fmt.Errorf("%w: %d states", ErrNotStochastic, m)
	}
	if len(states) < 2 {
		return nil, fmt.Errorf("markov: estimate needs at least 2 observations, got %d", len(states))
	}
	if smoothing < 0 {
		return nil, fmt.Errorf("markov: negative smoothing %v", smoothing)
	}
	counts := make([][]float64, m)
	for i := range counts {
		counts[i] = make([]float64, m)
	}
	for idx, s := range states {
		if s < 0 || s >= m {
			return nil, fmt.Errorf("markov: observation %d = %d outside [0, %d)", idx, s, m)
		}
		if idx > 0 {
			counts[states[idx-1]][s]++
		}
	}
	p := mat.New(m, m)
	for i := 0; i < m; i++ {
		var rowTotal float64
		for j := 0; j < m; j++ {
			rowTotal += counts[i][j]
		}
		denom := rowTotal + float64(m)*smoothing
		if denom == 0 {
			// State never visited (or only as the final observation):
			// fall back to uniform, the max-entropy choice.
			for j := 0; j < m; j++ {
				p.Set(i, j, 1/float64(m))
			}
			continue
		}
		for j := 0; j < m; j++ {
			p.Set(i, j, (counts[i][j]+smoothing)/denom)
		}
	}
	return p, nil
}
