package markov

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// sparseRingP builds an n-state chain whose support is a ring plus k
// random shortcuts per row, with exact zeros off-support — the structural
// shape of city-scale topologies the sparse path targets.
func sparseRingP(src *rng.Source, n, k int) *mat.Matrix {
	p := mat.New(n, n)
	pd := p.Data()
	for i := 0; i < n; i++ {
		row := pd[i*n : (i+1)*n]
		row[i] = 1
		row[(i+1)%n] = 1
		for s := 0; s < k; s++ {
			row[src.IntN(n)] = 1
		}
		cnt := 0.0
		for _, v := range row {
			cnt += v
		}
		for j := range row {
			row[j] /= cnt
		}
	}
	return p
}

func maxRelDiff(a, b *mat.Matrix) float64 {
	ad, bd := a.Data(), b.Data()
	scale := 0.0
	for _, v := range bd {
		if m := math.Abs(v); m > scale {
			scale = m
		}
	}
	if scale == 0 {
		scale = 1
	}
	worst := 0.0
	for i := range ad {
		if d := math.Abs(ad[i]-bd[i]) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

func solveBoth(t *testing.T, p *mat.Matrix) (dense, sparse *Solution) {
	t.Helper()
	n := p.Rows()
	ds := NewSolver(n)
	dsol, err := ds.Solve(p)
	if err != nil {
		t.Fatalf("dense solve: %v", err)
	}
	ss := NewSolver(n)
	ss.SetMethod(MethodSparse)
	ssol, err := ss.Solve(p)
	if err != nil {
		t.Fatalf("sparse solve: %v", err)
	}
	return dsol, ssol
}

func TestSparseSolveMatchesDense(t *testing.T) {
	cases := []struct {
		name string
		p    *mat.Matrix
	}{
		{"dense-random-12", randomErgodic(rng.New(7), 12).P()},
		{"dense-random-40", randomErgodic(rng.New(11), 40).P()},
		{"sparse-ring-64", sparseRingP(rng.New(3), 64, 3)},
		{"sparse-ring-128", sparseRingP(rng.New(5), 128, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dsol, ssol := solveBoth(t, tc.p)
			piScale := 0.0
			for _, v := range dsol.Pi {
				if m := math.Abs(v); m > piScale {
					piScale = m
				}
			}
			for i := range dsol.Pi {
				if d := math.Abs(dsol.Pi[i]-ssol.Pi[i]) / piScale; d > SparseTol {
					t.Fatalf("π_%d differs by %g (> %g)", i, d, SparseTol)
				}
			}
			if d := maxRelDiff(ssol.Z, dsol.Z); d > SparseTol {
				t.Fatalf("Z differs by %g (> %g)", d, SparseTol)
			}
			if d := maxRelDiff(ssol.R, dsol.R); d > SparseTol {
				t.Fatalf("R differs by %g (> %g)", d, SparseTol)
			}
			if ssol.Z2 != nil {
				t.Fatalf("sparse solve materialized Z2")
			}
			if ssol.Sparse() == nil {
				t.Fatalf("sparse solve did not attach factors")
			}
			if dsol.Sparse() != nil {
				t.Fatalf("dense solve attached sparse factors")
			}
		})
	}
}

func TestSparseFactorsSolveTranspose(t *testing.T) {
	p := sparseRingP(rng.New(9), 48, 3)
	dsol, ssol := solveBoth(t, p)
	n := p.Rows()
	src := rng.New(17)
	b := make([]float64, n)
	for i := range b {
		b[i] = src.Float64() - 0.5
	}
	x := make([]float64, n)
	if err := ssol.Sparse().SolveTranspose(x, b); err != nil {
		t.Fatalf("SolveTranspose: %v", err)
	}
	// x should equal Zᵀ b.
	want := make([]float64, n)
	zd := dsol.Z.Data()
	for j := 0; j < n; j++ {
		var acc float64
		for i := 0; i < n; i++ {
			acc += zd[i*n+j] * b[i]
		}
		want[j] = acc
	}
	for i := range x {
		if d := math.Abs(x[i] - want[i]); d > 1e-8 {
			t.Fatalf("x[%d] = %g, want %g (diff %g)", i, x[i], want[i], d)
		}
	}
	// And the non-transposed solve should reproduce Z b.
	if err := ssol.Sparse().Solve(x, b); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := mat.MulVecTo(want, dsol.Z, b); err != nil {
		t.Fatalf("dense Z b: %v", err)
	}
	for i := range x {
		if d := math.Abs(x[i] - want[i]); d > 1e-8 {
			t.Fatalf("Zb[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestSparseSolutionCloneAndDZ(t *testing.T) {
	p := sparseRingP(rng.New(21), 24, 2)
	dsol, ssol := solveBoth(t, p)

	c := ssol.Clone()
	if c.Z2 != nil {
		t.Fatalf("clone of sparse solution grew a Z2")
	}
	if c.Sparse() != nil {
		t.Fatalf("clone carried the solver-owned sparse factors")
	}

	// DZ must work without Z2 and agree with the dense solution's DZ.
	n := p.Rows()
	v := mat.New(n, n)
	vd := v.Data()
	src := rng.New(33)
	for i := 0; i < n; i++ {
		row := vd[i*n : (i+1)*n]
		var sum float64
		for j := 0; j < n-1; j++ {
			row[j] = src.Float64() - 0.5
			sum += row[j]
		}
		row[n-1] = -sum
	}
	got, err := ssol.DZ(v)
	if err != nil {
		t.Fatalf("sparse DZ: %v", err)
	}
	want, err := dsol.DZ(v)
	if err != nil {
		t.Fatalf("dense DZ: %v", err)
	}
	if d := maxRelDiff(got, want); d > 1e-7 {
		t.Fatalf("DZ differs by %g", d)
	}
}

func TestSolverMethodSwitchRestoresDense(t *testing.T) {
	p := sparseRingP(rng.New(41), 16, 2)
	s := NewSolver(16)
	s.SetMethod(MethodSparse)
	sol, err := s.Solve(p)
	if err != nil {
		t.Fatalf("sparse solve: %v", err)
	}
	if sol.Z2 != nil {
		t.Fatalf("sparse solve materialized Z2")
	}
	s.SetMethod(MethodDense)
	sol, err = s.Solve(p)
	if err != nil {
		t.Fatalf("dense solve after sparse: %v", err)
	}
	if sol.Z2 == nil {
		t.Fatalf("dense solve did not restore Z2")
	}
	if sol.Sparse() != nil {
		t.Fatalf("dense solve kept stale sparse factors")
	}
	// Z·Z² consistency: Z2 must equal Z*Z on the restored dense path.
	zz, err := mat.Mul(sol.Z, sol.Z)
	if err != nil {
		t.Fatalf("Z*Z: %v", err)
	}
	if d := maxRelDiff(sol.Z2, zz); d != 0 {
		t.Fatalf("restored Z2 differs from Z*Z by %g", d)
	}
}
