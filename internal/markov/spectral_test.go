package markov

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

func TestSLEMTwoState(t *testing.T) {
	// P = [[1-a, a], [b, 1-b]] has eigenvalues 1 and 1-a-b.
	cases := []struct{ a, b float64 }{
		{0.3, 0.1}, {0.5, 0.5}, {0.9, 0.8}, {0.05, 0.02},
	}
	for _, tc := range cases {
		c := twoState(t, tc.a, tc.b)
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		got, err := s.SLEM(5000, 1e-12)
		if err != nil {
			t.Fatalf("SLEM: %v", err)
		}
		want := math.Abs(1 - tc.a - tc.b)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("a=%v b=%v: SLEM = %v, want %v", tc.a, tc.b, got, want)
		}
	}
}

func TestSLEMUniformChainIsZero(t *testing.T) {
	n := 4
	p := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p.Set(i, j, 1/float64(n))
		}
	}
	c, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s, err := c.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	got, err := s.SLEM(2000, 1e-12)
	if err != nil {
		t.Fatalf("SLEM: %v", err)
	}
	if got > 1e-8 {
		t.Errorf("uniform chain SLEM = %v, want 0", got)
	}
}

func TestSLEMComplexSpectrum(t *testing.T) {
	// A lazy rotation has a complex conjugate eigenvalue pair; the
	// norm-growth estimator must still converge to its modulus.
	// P = 0.4·I + 0.6·C where C is the 3-cycle: eigenvalues
	// 0.4 + 0.6·ω for cube roots ω; for ω = e^{±2πi/3},
	// |0.4 + 0.6ω| = sqrt(0.4² + 0.6² - 0.4·0.6) = sqrt(0.28).
	p, _ := mat.NewFromRows([][]float64{
		{0.4, 0.6, 0},
		{0, 0.4, 0.6},
		{0.6, 0, 0.4},
	})
	c, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s, err := c.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	got, err := s.SLEM(20000, 1e-12)
	if err != nil {
		t.Fatalf("SLEM: %v", err)
	}
	want := math.Sqrt(0.28)
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("SLEM = %v, want %v", got, want)
	}
}

func TestSpectralGapBounds(t *testing.T) {
	src := rng.New(222)
	for trial := 0; trial < 20; trial++ {
		c := randomErgodic(src, 2+src.IntN(5))
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		gap, err := s.SpectralGap(5000, 1e-10)
		if err != nil {
			t.Fatalf("SpectralGap: %v", err)
		}
		if gap < -1e-6 || gap > 1+1e-6 {
			t.Errorf("trial %d: gap = %v outside [0,1]", trial, gap)
		}
	}
}

func TestSLEMValidation(t *testing.T) {
	c := twoState(t, 0.5, 0.5)
	s, err := c.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if _, err := s.SLEM(0, 1e-6); err == nil {
		t.Error("expected error for zero maxIter")
	}
}

func TestTVDistance(t *testing.T) {
	d, err := TVDistance([]float64{1, 0}, []float64{0, 1})
	if err != nil {
		t.Fatalf("TVDistance: %v", err)
	}
	if d != 1 {
		t.Errorf("TV = %v, want 1", d)
	}
	d, err = TVDistance([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatalf("TVDistance: %v", err)
	}
	if d != 0 {
		t.Errorf("TV = %v, want 0", d)
	}
	if _, err := TVDistance([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("expected dimension error")
	}
}

func TestMixingTimeTwoState(t *testing.T) {
	// Fast mixer: a = b = 0.5 mixes in one step (SLEM 0).
	c := twoState(t, 0.5, 0.5)
	s, err := c.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	tm, err := c.MixingTime(s, 0.01, 100)
	if err != nil {
		t.Fatalf("MixingTime: %v", err)
	}
	if tm != 1 {
		t.Errorf("mixing time = %d, want 1", tm)
	}

	// Slow mixer: tiny transition rates.
	slow := twoState(t, 0.01, 0.01)
	ss, err := slow.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	tmSlow, err := slow.MixingTime(ss, 0.01, 10000)
	if err != nil {
		t.Fatalf("MixingTime: %v", err)
	}
	if tmSlow < 50 {
		t.Errorf("slow chain mixing time = %d, expected ≫ 1", tmSlow)
	}
	// Theory: TV decays as (1-a-b)^t = 0.98^t from TV_0 ≤ 1; the 1%
	// mixing time is near ln(0.01·...)/ln(0.98). Accept a broad band.
	if tmSlow > 400 {
		t.Errorf("slow chain mixing time = %d, unexpectedly large", tmSlow)
	}
}

func TestMixingTimeBudgetExceeded(t *testing.T) {
	slow := twoState(t, 1e-4, 1e-4)
	s, err := slow.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	tm, err := slow.MixingTime(s, 0.001, 10)
	if err != nil {
		t.Fatalf("MixingTime: %v", err)
	}
	if tm != 11 {
		t.Errorf("exceeded budget should report maxSteps+1, got %d", tm)
	}
}

func TestMixingTimeValidation(t *testing.T) {
	c := twoState(t, 0.5, 0.5)
	s, err := c.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if _, err := c.MixingTime(s, 0, 10); err == nil {
		t.Error("eps 0 should error")
	}
	if _, err := c.MixingTime(s, 1.5, 10); err == nil {
		t.Error("eps > 1 should error")
	}
	if _, err := c.MixingTime(s, 0.1, 0); err == nil {
		t.Error("maxSteps 0 should error")
	}
}

// TestMixingConsistentWithSLEM: chains with a larger spectral gap mix no
// slower (comparing a fast and a slow two-state chain).
func TestMixingConsistentWithSLEM(t *testing.T) {
	fast := twoState(t, 0.4, 0.4) // SLEM 0.2
	slow := twoState(t, 0.05, 0.05)
	sf, err := fast.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	ssl, err := slow.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	tf, err := fast.MixingTime(sf, 0.01, 10000)
	if err != nil {
		t.Fatalf("MixingTime: %v", err)
	}
	ts, err := slow.MixingTime(ssl, 0.01, 10000)
	if err != nil {
		t.Fatalf("MixingTime: %v", err)
	}
	if tf >= ts {
		t.Errorf("fast chain (t=%d) should mix before slow chain (t=%d)", tf, ts)
	}
}
