package markov

import (
	"errors"
	"fmt"

	"repro/internal/mat"
)

// Solver computes chain Solutions into preallocated buffers so that the
// optimizer's inner loop — which solves the same-sized chain thousands of
// times — performs no allocations in steady state.
//
// A Solver owns the Solution it returns: every call to Solve overwrites
// the previous result, so callers that need a Solution to outlive the next
// call must Clone it. A Solver is not safe for concurrent use; give each
// goroutine its own (the descent package allocates one per optimizer).
type Solver struct {
	n      int
	sol    Solution
	method Method

	lu  *mat.LU
	zin *mat.Matrix // holds I - P + W, then the stationary system (I-P)^T
	b   []float64   // right-hand side of the stationary system

	// Sparse-path assembly scratch, allocated on first sparse solve.
	sp *sparseScratch

	// Graph-check scratch for the ergodicity test.
	seen  []bool
	level []int
	queue []int
}

// NewSolver returns a Solver for n-state chains with all buffers
// preallocated.
func NewSolver(n int) *Solver {
	return &Solver{
		n: n,
		sol: Solution{
			P:  mat.New(n, n),
			Pi: make([]float64, n),
			W:  mat.New(n, n),
			Z:  mat.New(n, n),
			Z2: mat.New(n, n),
			R:  mat.New(n, n),
		},
		lu:    mat.NewLU(n),
		zin:   mat.New(n, n),
		b:     make([]float64, n),
		seen:  make([]bool, n),
		level: make([]int, n),
		queue: make([]int, 0, n),
	}
}

// Solve validates p, checks ergodicity, and computes the stationary
// distribution and derived matrices into the Solver's buffers. The
// returned Solution aliases those buffers and is valid until the next
// Solve call. No allocations occur on the success path.
func (s *Solver) Solve(p *mat.Matrix) (*Solution, error) {
	n := s.n
	if p.Rows() != n || p.Cols() != n {
		return nil, fmt.Errorf("%w: solver for %d states got %dx%d",
			ErrNotStochastic, n, p.Rows(), p.Cols())
	}
	if err := CheckStochastic(p); err != nil {
		return nil, err
	}
	if !s.ergodic(p) {
		// Error path only: rebuild the diagnostic detail with the Chain
		// helpers (these allocate, which is fine off the hot path).
		c := &Chain{p: p}
		return nil, fmt.Errorf("%w: irreducible=%v period=%d",
			ErrNotErgodic, c.IsIrreducible(), c.Period())
	}
	if s.method == MethodSparse {
		sol, err := s.solveSparse(p)
		if err == nil {
			return sol, nil
		}
		if !errors.Is(err, mat.ErrSingular) {
			return nil, err
		}
		// Near-singular pivot in the no-pivoting sparse factorization:
		// fall back to the pivoted dense reference for this solve.
	}
	return s.solveDense(p)
}

// solveDense is the bit-exact dense reference path.
func (s *Solver) solveDense(p *mat.Matrix) (*Solution, error) {
	n := s.n
	s.sol.sparse = nil
	if s.sol.Z2 == nil {
		// A prior sparse solve elided Z²; the dense contract includes it.
		s.sol.Z2 = mat.New(n, n)
	}
	if err := s.stationary(p); err != nil {
		return nil, err
	}
	pi := s.sol.Pi

	// W has every row equal to π.
	wd := s.sol.W.Data()
	for i := 0; i < n; i++ {
		copy(wd[i*n:(i+1)*n], pi)
	}

	// Z = (I - P + W)^{-1}: build the operand, factor, invert into Z.
	// The entry order (I - P) + W matches the original two-step SubM/AddM
	// construction bit for bit.
	zd := s.zin.Data()
	pd := p.Data()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := 0.0
			if i == j {
				d = 1
			}
			zd[i*n+j] = (d - pd[i*n+j]) + wd[i*n+j]
		}
	}
	if err := s.lu.Refactor(s.zin); err != nil {
		return nil, fmt.Errorf("markov: invert I-P+W: %w", err)
	}
	if err := s.lu.InverseTo(s.sol.Z); err != nil {
		return nil, fmt.Errorf("markov: invert I-P+W: %w", err)
	}
	if err := mat.MulTo(s.sol.Z2, s.sol.Z, s.sol.Z); err != nil {
		return nil, err
	}

	// R_ij = (δ_ij - z_ij + z_jj) / π_j. The diagonal of Z is staged into
	// the RHS scratch (idle here) so the inner loop streams three
	// contiguous rows instead of re-reading a strided column.
	zdd := s.sol.Z.Data()
	rd := s.sol.R.Data()
	zdiag := s.b
	for j := 0; j < n; j++ {
		zdiag[j] = zdd[j*n+j]
	}
	for i := 0; i < n; i++ {
		zrow := zdd[i*n : (i+1)*n]
		rrow := rd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			d := 0.0
			if i == j {
				d = 1
			}
			rrow[j] = (d - zrow[j] + zdiag[j]) / pi[j]
		}
	}

	if err := s.sol.P.CopyFrom(p); err != nil {
		return nil, err
	}
	return &s.sol, nil
}

// stationary solves π(I - P) = 0 with Σπ = 1 into s.sol.Pi, replacing one
// equation of the transposed homogeneous system with the normalization
// constraint (the same system the package-level stationary builds).
func (s *Solver) stationary(p *mat.Matrix) error {
	n := s.n
	a := s.zin.Data()
	pd := p.Data()
	for i := 0; i < n; i++ {
		arow := a[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			v := -pd[j*n+i]
			if i == j {
				v += 1
			}
			arow[j] = v
		}
	}
	for j := 0; j < n; j++ {
		a[(n-1)*n+j] = 1
	}
	for i := range s.b {
		s.b[i] = 0
	}
	s.b[n-1] = 1
	if err := s.lu.Refactor(s.zin); err != nil {
		if errors.Is(err, mat.ErrSingular) {
			return fmt.Errorf("%w: stationary system singular", ErrNotErgodic)
		}
		return err
	}
	if err := s.lu.SolveVecTo(s.sol.Pi, s.b); err != nil {
		return err
	}
	return checkPositive(s.sol.Pi)
}

// ergodic reports whether p's positive-probability graph is irreducible
// and aperiodic, using the Solver's scratch buffers. It mirrors
// Chain.IsErgodic exactly but allocates nothing.
func (s *Solver) ergodic(p *mat.Matrix) bool {
	if !s.reachesAll(p, false) || !s.reachesAll(p, true) {
		return false
	}
	return s.period(p) == 1
}

// reachesAll runs a BFS from state 0 over the positive-probability edge
// graph (or its reverse) and reports whether every state was visited.
func (s *Solver) reachesAll(p *mat.Matrix, reverse bool) bool {
	n := s.n
	for i := range s.seen {
		s.seen[i] = false
	}
	s.queue = s.queue[:0]
	s.seen[0] = true
	s.queue = append(s.queue, 0)
	pd := p.Data()
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		for v := 0; v < n; v++ {
			var w float64
			if reverse {
				w = pd[v*n+u]
			} else {
				w = pd[u*n+v]
			}
			if w > edgeTol && !s.seen[v] {
				s.seen[v] = true
				s.queue = append(s.queue, v)
			}
		}
	}
	return len(s.queue) == n
}

// period returns the gcd of cycle lengths through state 0, as in
// Chain.Period, using the Solver's scratch.
func (s *Solver) period(p *mat.Matrix) int {
	n := s.n
	for i := range s.level {
		s.level[i] = -1
	}
	s.level[0] = 0
	s.queue = s.queue[:0]
	s.queue = append(s.queue, 0)
	g := 0
	pd := p.Data()
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		prow := pd[u*n : (u+1)*n]
		for v := 0; v < n; v++ {
			if prow[v] <= edgeTol {
				continue
			}
			if s.level[v] == -1 {
				s.level[v] = s.level[u] + 1
				s.queue = append(s.queue, v)
			} else {
				g = gcd(g, abs(s.level[u]+1-s.level[v]))
			}
		}
	}
	if g == 0 {
		return 1
	}
	return g
}

// checkPositive rejects stationary vectors with non-positive or NaN
// entries, the shared failure mode of reducible chains.
func checkPositive(pi []float64) error {
	for i, v := range pi {
		if !(v > 0) {
			return fmt.Errorf("%w: π_%d = %v", ErrNotErgodic, i, v)
		}
	}
	return nil
}

// Clone returns a deep copy of the Solution, detaching it from whatever
// Solver buffers back it. Use it to retain a Solution past the next Solve
// call on the owning Solver. The sparse factorization handle, when
// present, is not carried over: it aliases solver-owned factor storage.
func (s *Solution) Clone() *Solution {
	c := &Solution{
		P:  s.P.Clone(),
		Pi: append([]float64(nil), s.Pi...),
		W:  s.W.Clone(),
		Z:  s.Z.Clone(),
		R:  s.R.Clone(),
	}
	if s.Z2 != nil {
		c.Z2 = s.Z2.Clone()
	}
	return c
}
