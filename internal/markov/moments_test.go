package markov

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

func TestMomentsMeanMatchesR(t *testing.T) {
	src := rng.New(333)
	for trial := 0; trial < 30; trial++ {
		c := randomErgodic(src, 2+src.IntN(6))
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		m, err := s.Moments()
		if err != nil {
			t.Fatalf("Moments: %v", err)
		}
		// The first-step-analysis means must agree with the closed-form
		// R of Eq. 8 — two entirely different derivations.
		if d := mat.MaxAbsDiff(m.Mean, s.R); d > 1e-7 {
			t.Fatalf("trial %d: mean vs R diff %v", trial, d)
		}
	}
}

func TestMomentsTwoStateAnalytic(t *testing.T) {
	// From state 0, T_1 is geometric(a): E = 1/a, E[T²] = (2-a)/a².
	a, b := 0.3, 0.1
	c := twoState(t, a, b)
	s, err := c.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	m, err := s.Moments()
	if err != nil {
		t.Fatalf("Moments: %v", err)
	}
	if got, want := m.Second.At(0, 1), (2-a)/(a*a); math.Abs(got-want) > 1e-9 {
		t.Errorf("E[T²]_01 = %v, want %v", got, want)
	}
	if got, want := m.Second.At(1, 0), (2-b)/(b*b); math.Abs(got-want) > 1e-9 {
		t.Errorf("E[T²]_10 = %v, want %v", got, want)
	}
	// Geometric variance (1-a)/a².
	v := m.Variance()
	if got, want := v.At(0, 1), (1-a)/(a*a); math.Abs(got-want) > 1e-9 {
		t.Errorf("Var_01 = %v, want %v", got, want)
	}
}

func TestMomentsVarianceNonNegative(t *testing.T) {
	src := rng.New(334)
	for trial := 0; trial < 30; trial++ {
		c := randomErgodic(src, 2+src.IntN(6))
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		m, err := s.Moments()
		if err != nil {
			t.Fatalf("Moments: %v", err)
		}
		v := m.Variance()
		n := v.Rows()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if v.At(i, j) < 0 {
					t.Fatalf("trial %d: Var[%d][%d] = %v", trial, i, j, v.At(i, j))
				}
				// Second moment dominates squared mean (Jensen).
				if m.Second.At(i, j) < m.Mean.At(i, j)*m.Mean.At(i, j)-1e-9 {
					t.Fatalf("trial %d: E[T²] < E[T]² at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

// TestMomentsAgainstSimulation validates the second moments by Monte
// Carlo: simulate first-passage times on a small chain and compare the
// empirical second moment.
func TestMomentsAgainstSimulation(t *testing.T) {
	p, _ := mat.NewFromRows([][]float64{
		{0.2, 0.5, 0.3},
		{0.3, 0.4, 0.3},
		{0.25, 0.25, 0.5},
	})
	c, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s, err := c.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	m, err := s.Moments()
	if err != nil {
		t.Fatalf("Moments: %v", err)
	}
	src := rng.New(999)
	row := make([]float64, 3)
	samplePassage := func(from, to int) float64 {
		cur := from
		steps := 0.0
		for {
			for j := 0; j < 3; j++ {
				row[j] = p.At(cur, j)
			}
			cur = src.Categorical(row)
			steps++
			if cur == to {
				return steps
			}
		}
	}
	const trials = 300000
	for _, pair := range [][2]int{{0, 2}, {1, 0}, {2, 2}} {
		var sum, sumSq float64
		for k := 0; k < trials; k++ {
			v := samplePassage(pair[0], pair[1])
			sum += v
			sumSq += v * v
		}
		meanEmp := sum / trials
		secondEmp := sumSq / trials
		if rel := math.Abs(meanEmp-m.Mean.At(pair[0], pair[1])) / m.Mean.At(pair[0], pair[1]); rel > 0.02 {
			t.Errorf("pair %v: empirical mean %v vs analytic %v", pair, meanEmp, m.Mean.At(pair[0], pair[1]))
		}
		if rel := math.Abs(secondEmp-m.Second.At(pair[0], pair[1])) / m.Second.At(pair[0], pair[1]); rel > 0.03 {
			t.Errorf("pair %v: empirical E[T²] %v vs analytic %v", pair, secondEmp, m.Second.At(pair[0], pair[1]))
		}
	}
}
