package markov

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

func TestEstimateValidation(t *testing.T) {
	if _, err := Estimate([]int{0, 1}, 1, 0.1); err == nil {
		t.Error("m=1 should error")
	}
	if _, err := Estimate([]int{0}, 3, 0.1); err == nil {
		t.Error("single observation should error")
	}
	if _, err := Estimate([]int{0, 5}, 3, 0.1); err == nil {
		t.Error("out-of-range state should error")
	}
	if _, err := Estimate([]int{0, 1}, 3, -1); err == nil {
		t.Error("negative smoothing should error")
	}
}

func TestEstimateExactCounts(t *testing.T) {
	// 0→1, 1→0, 0→1: p̂_01 = 1, p̂_10 = 1 with zero smoothing.
	p, err := Estimate([]int{0, 1, 0, 1}, 2, 0)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if p.At(0, 1) != 1 || p.At(1, 0) != 1 {
		t.Errorf("estimate = %v", p)
	}
}

func TestEstimateSmoothingKeepsPositive(t *testing.T) {
	p, err := Estimate([]int{0, 1, 0, 1}, 3, 0.5)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if err := CheckStochastic(p); err != nil {
		t.Fatalf("not stochastic: %v", err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if p.At(i, j) <= 0 {
				t.Errorf("p[%d][%d] = %v", i, j, p.At(i, j))
			}
		}
	}
	// Unvisited state 2 gets the uniform row... with smoothing its row is
	// smoothed-uniform; either way it must be usable.
	c, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !c.IsErgodic() {
		t.Error("smoothed estimate not ergodic")
	}
}

// TestEstimateRecoversTrueChain: estimating from a long trajectory of a
// known chain recovers its transition probabilities.
func TestEstimateRecoversTrueChain(t *testing.T) {
	truth, _ := mat.NewFromRows([][]float64{
		{0.2, 0.5, 0.3},
		{0.6, 0.1, 0.3},
		{0.25, 0.25, 0.5},
	})
	src := rng.New(1212)
	const steps = 400000
	states := make([]int, steps)
	cur := 0
	row := make([]float64, 3)
	for k := 0; k < steps; k++ {
		states[k] = cur
		for j := 0; j < 3; j++ {
			row[j] = truth.At(cur, j)
		}
		cur = src.Categorical(row)
	}
	est, err := Estimate(states, 3, 0.5)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if d := mat.MaxAbsDiff(est, truth); d > 0.01 {
		t.Errorf("estimate off by %v", d)
	}
	// And the estimated chain's stationary distribution matches.
	cTrue, _ := New(truth)
	sTrue, err := cTrue.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	cEst, _ := New(est)
	sEst, err := cEst.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i := range sTrue.Pi {
		if math.Abs(sTrue.Pi[i]-sEst.Pi[i]) > 0.01 {
			t.Errorf("π_%d: true %v vs estimated %v", i, sTrue.Pi[i], sEst.Pi[i])
		}
	}
}
