package markov

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

func TestEstimateValidation(t *testing.T) {
	if _, err := Estimate([]int{0, 1}, 1, 0.1); err == nil {
		t.Error("m=1 should error")
	}
	if _, err := Estimate([]int{0}, 3, 0.1); err == nil {
		t.Error("single observation should error")
	}
	if _, err := Estimate([]int{0, 5}, 3, 0.1); err == nil {
		t.Error("out-of-range state should error")
	}
	if _, err := Estimate([]int{0, 1}, 3, -1); err == nil {
		t.Error("negative smoothing should error")
	}
}

func TestEstimateExactCounts(t *testing.T) {
	// 0→1, 1→0, 0→1: p̂_01 = 1, p̂_10 = 1 with zero smoothing.
	p, err := Estimate([]int{0, 1, 0, 1}, 2, 0)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if p.At(0, 1) != 1 || p.At(1, 0) != 1 {
		t.Errorf("estimate = %v", p)
	}
}

func TestEstimateSmoothingKeepsPositive(t *testing.T) {
	p, err := Estimate([]int{0, 1, 0, 1}, 3, 0.5)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if err := CheckStochastic(p); err != nil {
		t.Fatalf("not stochastic: %v", err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if p.At(i, j) <= 0 {
				t.Errorf("p[%d][%d] = %v", i, j, p.At(i, j))
			}
		}
	}
	// Unvisited state 2 gets the uniform row... with smoothing its row is
	// smoothed-uniform; either way it must be usable.
	c, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !c.IsErgodic() {
		t.Error("smoothed estimate not ergodic")
	}
}

// TestEstimateRecoversTrueChain: estimating from a long trajectory of a
// known chain recovers its transition probabilities.
func TestEstimateRecoversTrueChain(t *testing.T) {
	truth, _ := mat.NewFromRows([][]float64{
		{0.2, 0.5, 0.3},
		{0.6, 0.1, 0.3},
		{0.25, 0.25, 0.5},
	})
	src := rng.New(1212)
	const steps = 400000
	states := make([]int, steps)
	cur := 0
	row := make([]float64, 3)
	for k := 0; k < steps; k++ {
		states[k] = cur
		for j := 0; j < 3; j++ {
			row[j] = truth.At(cur, j)
		}
		cur = src.Categorical(row)
	}
	est, err := Estimate(states, 3, 0.5)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if d := mat.MaxAbsDiff(est, truth); d > 0.01 {
		t.Errorf("estimate off by %v", d)
	}
	// And the estimated chain's stationary distribution matches.
	cTrue, _ := New(truth)
	sTrue, err := cTrue.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	cEst, _ := New(est)
	sEst, err := cEst.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i := range sTrue.Pi {
		if math.Abs(sTrue.Pi[i]-sEst.Pi[i]) > 0.01 {
			t.Errorf("π_%d: true %v vs estimated %v", i, sTrue.Pi[i], sEst.Pi[i])
		}
	}
}

// TestEstimateSingleVisitWindow covers windows shorter than two visits to
// some states: each state appears at most once, so no state has more than
// one observed departure. The estimate must still be a strictly positive
// stochastic matrix under positive smoothing.
func TestEstimateSingleVisitWindow(t *testing.T) {
	p, err := Estimate([]int{0, 1, 2}, 4, 0.5)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	for i := 0; i < 4; i++ {
		var sum float64
		for j := 0; j < 4; j++ {
			v := p.At(i, j)
			if math.IsNaN(v) || v <= 0 {
				t.Fatalf("p[%d][%d] = %v, want strictly positive and finite", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	// State 3 was never seen; its row must be the uniform fallback.
	for j := 0; j < 4; j++ {
		if got := p.At(3, j); math.Abs(got-0.25) > 1e-12 {
			t.Errorf("unvisited row: p[3][%d] = %v, want 0.25", j, got)
		}
	}
}

// TestEstimateZeroSmoothingConfined pins the degenerate corner the drift
// detector must survive: zero smoothing on a trajectory confined to a
// subset of states. Rows with observed departures take their exact MLE,
// rows without any (unvisited states, or a state seen only as the final
// observation) fall back to uniform — and nothing is ever NaN.
func TestEstimateZeroSmoothingConfined(t *testing.T) {
	// State 1 appears only as the last observation (no departure counted);
	// state 2 never appears.
	p, err := Estimate([]int{0, 0, 0, 1}, 3, 0)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	for i := 0; i < 3; i++ {
		var sum float64
		for j := 0; j < 3; j++ {
			v := p.At(i, j)
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("p[%d][%d] = %v", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	// Row 0: two self-loops then one exit to 1 out of three departures.
	if got := p.At(0, 0); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("p[0][0] = %v, want 2/3", got)
	}
	if got := p.At(0, 1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("p[0][1] = %v, want 1/3", got)
	}
	third := 1.0 / 3
	for _, i := range []int{1, 2} {
		for j := 0; j < 3; j++ {
			if got := p.At(i, j); math.Abs(got-third) > 1e-12 {
				t.Errorf("departure-free row: p[%d][%d] = %v, want 1/3", i, j, got)
			}
		}
	}
}

// TestEstimateFeedsChainConstructor closes the loop with the consumer:
// a smoothed estimate from a confined window must be accepted by New and
// yield a finite stationary distribution (the ergodicity the drift
// detector and warm-start path rely on).
func TestEstimateFeedsChainConstructor(t *testing.T) {
	est, err := Estimate([]int{0, 0, 1, 0, 0, 1}, 3, 0.5)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	c, err := New(est)
	if err != nil {
		t.Fatalf("New rejected smoothed estimate: %v", err)
	}
	if !c.IsErgodic() {
		t.Fatal("smoothed estimate is not ergodic")
	}
	sol, err := c.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	var sum float64
	for i, v := range sol.Pi {
		if math.IsNaN(v) || v <= 0 {
			t.Fatalf("pi[%d] = %v, want strictly positive", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("stationary sums to %v", sum)
	}
}
