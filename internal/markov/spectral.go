package markov

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rng"
)

// SLEM estimates the second-largest eigenvalue modulus of the transition
// matrix — the quantity governing the chain's geometric convergence rate
// to stationarity. It runs power iteration on the deflated matrix
// B = P − W (whose spectrum is P's with the unit eigenvalue removed),
// estimating |λ₂| from the norm growth rate so that complex conjugate
// pairs, which make the iterate direction oscillate, still yield a
// convergent estimate.
func (s *Solution) SLEM(maxIter int, tol float64) (float64, error) {
	if maxIter <= 0 {
		return 0, fmt.Errorf("markov: SLEM maxIter %d", maxIter)
	}
	n := len(s.Pi)
	b, err := mat.SubM(s.P, s.W)
	if err != nil {
		return 0, err
	}
	// Deterministic pseudo-random start avoids pathological alignment
	// with an eigenvector's null component.
	src := rng.New(0x5eed)
	x := make([]float64, n)
	for i := range x {
		x[i] = src.Norm(0, 1)
	}
	normalize := func(v []float64) float64 {
		nv := mat.NormVec2(v)
		if nv == 0 {
			return 0
		}
		for i := range v {
			v[i] /= nv
		}
		return nv
	}
	normalize(x)

	// Average the per-step growth over a window to smooth complex-pair
	// oscillation.
	const window = 8
	var growths []float64
	est := 0.0
	for iter := 0; iter < maxIter; iter++ {
		next, err := mat.MulVec(b, x)
		if err != nil {
			return 0, err
		}
		g := normalize(next)
		if g == 0 {
			// x landed in the kernel: the remaining spectrum is zero.
			return 0, nil
		}
		x = next
		growths = append(growths, g)
		if len(growths) >= window {
			var mean float64
			for _, v := range growths[len(growths)-window:] {
				mean += v
			}
			mean /= window
			if math.Abs(mean-est) < tol {
				return mean, nil
			}
			est = mean
		}
	}
	return est, nil
}

// SpectralGap returns 1 − SLEM, the chain's spectral gap.
func (s *Solution) SpectralGap(maxIter int, tol float64) (float64, error) {
	slem, err := s.SLEM(maxIter, tol)
	if err != nil {
		return 0, err
	}
	return 1 - slem, nil
}

// TVDistance returns the total variation distance ½·Σ|p_i − q_i| between
// two distributions of equal length.
func TVDistance(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("%w: TV of %d and %d entries", mat.ErrDimension, len(p), len(q))
	}
	var s float64
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2, nil
}

// MixingTime returns the exact ε-mixing time of the chain: the smallest t
// such that max_i TV(δ_i P^t, π) ≤ eps, computed by iterating the t-step
// distributions from every start. It returns maxSteps+1 when the chain
// has not mixed within the budget.
func (c *Chain) MixingTime(sol *Solution, eps float64, maxSteps int) (int, error) {
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("markov: mixing eps %v outside (0,1)", eps)
	}
	if maxSteps <= 0 {
		return 0, fmt.Errorf("markov: mixing maxSteps %d", maxSteps)
	}
	n := c.M()
	// rows[i] is the distribution after t steps starting at i.
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		rows[i][i] = 1
	}
	for t := 1; t <= maxSteps; t++ {
		worst := 0.0
		for i := range rows {
			next, err := c.Step(rows[i])
			if err != nil {
				return 0, err
			}
			rows[i] = next
			tv, err := TVDistance(next, sol.Pi)
			if err != nil {
				return 0, err
			}
			if tv > worst {
				worst = tv
			}
		}
		if worst <= eps {
			return t, nil
		}
	}
	return maxSteps + 1, nil
}
