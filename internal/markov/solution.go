package markov

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// Solution bundles the limiting quantities of an ergodic chain that the
// cost function and its gradient consume: the stationary distribution π,
// the matrix W whose rows all equal π, the fundamental matrix
// Z = (I - P + W)^{-1} (Eq. 7), its square, and the mean first-passage
// matrix R (Eq. 8). Everything is computed once in Solve and treated as
// immutable afterwards.
type Solution struct {
	// P is the transition matrix the solution was computed from.
	P *mat.Matrix
	// Pi is the stationary distribution π.
	Pi []float64
	// W has every row equal to Pi (Eq. 5 context).
	W *mat.Matrix
	// Z is the fundamental matrix (I - P + W)^{-1} (Eq. 7).
	Z *mat.Matrix
	// Z2 is Z*Z, needed by the perturbation formula for dZ/dt.
	Z2 *mat.Matrix
	// R is the mean first-passage time matrix: R_ij is the expected number
	// of transitions to first reach j starting from i, with
	// R_ii = 1/π_i the mean return time (Eq. 8 with the column-scaling
	// reading of R = (I - Z + J Z_dg) D; see DESIGN.md errata).
	R *mat.Matrix
}

// Solve computes the stationary distribution and the derived matrices.
// It returns ErrNotErgodic for chains without a unique positive stationary
// distribution (checked structurally before any linear algebra).
func (c *Chain) Solve() (*Solution, error) {
	if !c.IsErgodic() {
		return nil, fmt.Errorf("%w: irreducible=%v period=%d",
			ErrNotErgodic, c.IsIrreducible(), c.Period())
	}
	n := c.M()
	pi, err := stationary(c.p)
	if err != nil {
		return nil, err
	}
	w := mat.OuterOnesRow(pi, n)

	// Z = (I - P + W)^{-1}.
	imp, err := mat.SubM(mat.Identity(n), c.p)
	if err != nil {
		return nil, err
	}
	zin, err := mat.AddM(imp, w)
	if err != nil {
		return nil, err
	}
	z, err := mat.Inverse(zin)
	if err != nil {
		return nil, fmt.Errorf("markov: invert I-P+W: %w", err)
	}
	z2, err := mat.Mul(z, z)
	if err != nil {
		return nil, err
	}

	// R_ij = (δ_ij - z_ij + z_jj) / π_j.
	r := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := 0.0
			if i == j {
				d = 1
			}
			r.Set(i, j, (d-z.At(i, j)+z.At(j, j))/pi[j])
		}
	}

	return &Solution{
		P:  c.p.Clone(),
		Pi: pi,
		W:  w,
		Z:  z,
		Z2: z2,
		R:  r,
	}, nil
}

// stationary solves π(I - P) = 0 with Σπ = 1 by replacing one equation of
// the transposed homogeneous system with the normalization constraint.
func stationary(p *mat.Matrix) ([]float64, error) {
	n := p.Rows()
	// A = (I - P)^T with the last row replaced by ones; b = e_n.
	a := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := -p.At(j, i)
			if i == j {
				v += 1
			}
			a.Set(i, j, v)
		}
	}
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b := make([]float64, n)
	b[n-1] = 1
	pi, err := mat.SolveLinear(a, b)
	if err != nil {
		if errors.Is(err, mat.ErrSingular) {
			return nil, fmt.Errorf("%w: stationary system singular", ErrNotErgodic)
		}
		return nil, err
	}
	for i, v := range pi {
		if v <= 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("%w: π_%d = %v", ErrNotErgodic, i, v)
		}
	}
	return pi, nil
}

// StationaryPower estimates the stationary distribution by power
// iteration, used in tests to cross-validate the direct solve. It returns
// the distribution after either maxIter iterations or successive iterates
// differ by less than tol in max norm.
func (c *Chain) StationaryPower(maxIter int, tol float64) ([]float64, error) {
	n := c.M()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		next, err := c.Step(dist)
		if err != nil {
			return nil, err
		}
		var diff float64
		for i := range next {
			if d := math.Abs(next[i] - dist[i]); d > diff {
				diff = d
			}
		}
		dist = next
		if diff < tol {
			break
		}
	}
	return dist, nil
}

// GroupInverse returns Meyer's group generalized inverse A# of A = I - P,
// via A# = Z - W (equivalent to the paper's Z = I + P·A#, Eq. 7 context).
func (s *Solution) GroupInverse() (*mat.Matrix, error) {
	return mat.SubM(s.Z, s.W)
}

// EntropyRate returns the chain's entropy rate
// H = -Σ_i π_i Σ_j p_ij ln p_ij (§VII), in nats. Zero-probability
// transitions contribute zero.
func (s *Solution) EntropyRate() float64 {
	n := len(s.Pi)
	var h float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := s.P.At(i, j)
			if p > 0 {
				h -= s.Pi[i] * p * math.Log(p)
			}
		}
	}
	return h
}

// KemenyConstant returns K = Σ_{j≠i} π_j R_ij, which is independent of the
// starting state i and equals trace(Z) - 1.
func (s *Solution) KemenyConstant() float64 {
	var tr float64
	for i := 0; i < len(s.Pi); i++ {
		tr += s.Z.At(i, i)
	}
	return tr - 1
}

// ConditionNumber returns the Funderlic–Meyer condition number of the
// stationary distribution: κ = max_{i,j} |a#_ij| where A# is the group
// inverse of I − P. It bounds the stationary distribution's sensitivity
// to perturbations of the transition matrix:
//
//	max_i |π̃_i − π_i| ≤ κ · ‖P̃ − P‖_∞
//
// for any ergodic P̃ (Funderlic & Meyer 1986). Schedules with small κ are
// robust to estimation error in the transition probabilities they are
// deployed with.
func (s *Solution) ConditionNumber() (float64, error) {
	aSharp, err := s.GroupInverse()
	if err != nil {
		return 0, err
	}
	return mat.MaxAbs(aSharp), nil
}

// DPi returns the directional derivative of the stationary distribution
// along a perturbation direction V with zero row sums:
// dπ = π V Z (Schweitzer; the paper's component form dπ_i/dt =
// Σ_{k,l} π_k z_li V_kl).
func (s *Solution) DPi(v *mat.Matrix) ([]float64, error) {
	pv, err := mat.VecMul(s.Pi, v)
	if err != nil {
		return nil, err
	}
	return mat.VecMul(pv, s.Z)
}

// DZ returns the directional derivative of the fundamental matrix along a
// zero-row-sum direction V: dZ = Z V Z - W V Z² (Schweitzer; the paper's
// component form dz_ij/dt = Σ_{kl} [z_ik z_lj - π_k (Z²)_lj] V_kl).
func (s *Solution) DZ(v *mat.Matrix) (*mat.Matrix, error) {
	zv, err := mat.Mul(s.Z, v)
	if err != nil {
		return nil, err
	}
	zvz, err := mat.Mul(zv, s.Z)
	if err != nil {
		return nil, err
	}
	wv, err := mat.Mul(s.W, v)
	if err != nil {
		return nil, err
	}
	wvz2, err := mat.Mul(wv, s.Z2)
	if err != nil {
		return nil, err
	}
	return mat.SubM(zvz, wvz2)
}
