package markov

import (
	"math"

	"repro/internal/mat"
)

// Solution bundles the limiting quantities of an ergodic chain that the
// cost function and its gradient consume: the stationary distribution π,
// the matrix W whose rows all equal π, the fundamental matrix
// Z = (I - P + W)^{-1} (Eq. 7), its square, and the mean first-passage
// matrix R (Eq. 8). Everything is computed once in Solve and treated as
// immutable afterwards.
type Solution struct {
	// P is the transition matrix the solution was computed from.
	P *mat.Matrix
	// Pi is the stationary distribution π.
	Pi []float64
	// W has every row equal to Pi (Eq. 5 context).
	W *mat.Matrix
	// Z is the fundamental matrix (I - P + W)^{-1} (Eq. 7).
	Z *mat.Matrix
	// Z2 is Z*Z, needed by the perturbation formula for dZ/dt. Sparse
	// solves (MethodSparse) leave it nil — consumers that only fold Z²
	// against a vector compute Z·(Z·v) instead, and DZ rebuilds it on
	// demand.
	Z2 *mat.Matrix
	// R is the mean first-passage time matrix: R_ij is the expected number
	// of transitions to first reach j starting from i, with
	// R_ii = 1/π_i the mean return time (Eq. 8 with the column-scaling
	// reading of R = (I - Z + J Z_dg) D; see DESIGN.md errata).
	R *mat.Matrix

	// sparse holds the factorization handle of a MethodSparse solve, nil
	// on the dense path and after Clone. Access via Sparse().
	sparse *SparseFactors
}

// Solve computes the stationary distribution and the derived matrices.
// It returns ErrNotErgodic for chains without a unique positive stationary
// distribution (checked structurally before any linear algebra).
//
// Each call allocates a fresh result. Hot loops that solve many same-sized
// chains should hold a Solver and call its Solve instead, which reuses one
// set of buffers across calls.
func (c *Chain) Solve() (*Solution, error) {
	return NewSolver(c.M()).Solve(c.p)
}

// StationaryPower estimates the stationary distribution by power
// iteration, used in tests to cross-validate the direct solve. It returns
// the distribution after either maxIter iterations or successive iterates
// differ by less than tol in max norm.
func (c *Chain) StationaryPower(maxIter int, tol float64) ([]float64, error) {
	n := c.M()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		next, err := c.Step(dist)
		if err != nil {
			return nil, err
		}
		var diff float64
		for i := range next {
			if d := math.Abs(next[i] - dist[i]); d > diff {
				diff = d
			}
		}
		dist = next
		if diff < tol {
			break
		}
	}
	return dist, nil
}

// GroupInverse returns Meyer's group generalized inverse A# of A = I - P,
// via A# = Z - W (equivalent to the paper's Z = I + P·A#, Eq. 7 context).
func (s *Solution) GroupInverse() (*mat.Matrix, error) {
	return mat.SubM(s.Z, s.W)
}

// EntropyRate returns the chain's entropy rate
// H = -Σ_i π_i Σ_j p_ij ln p_ij (§VII), in nats. Zero-probability
// transitions contribute zero.
func (s *Solution) EntropyRate() float64 {
	n := len(s.Pi)
	pd := s.P.Data()
	var h float64
	for i := 0; i < n; i++ {
		pii := s.Pi[i]
		row := pd[i*n : (i+1)*n]
		for _, p := range row {
			if p > 0 {
				h -= pii * p * math.Log(p)
			}
		}
	}
	return h
}

// KemenyConstant returns K = Σ_{j≠i} π_j R_ij, which is independent of the
// starting state i and equals trace(Z) - 1.
func (s *Solution) KemenyConstant() float64 {
	var tr float64
	for i := 0; i < len(s.Pi); i++ {
		tr += s.Z.At(i, i)
	}
	return tr - 1
}

// ConditionNumber returns the Funderlic–Meyer condition number of the
// stationary distribution: κ = max_{i,j} |a#_ij| where A# is the group
// inverse of I − P. It bounds the stationary distribution's sensitivity
// to perturbations of the transition matrix:
//
//	max_i |π̃_i − π_i| ≤ κ · ‖P̃ − P‖_∞
//
// for any ergodic P̃ (Funderlic & Meyer 1986). Schedules with small κ are
// robust to estimation error in the transition probabilities they are
// deployed with.
func (s *Solution) ConditionNumber() (float64, error) {
	aSharp, err := s.GroupInverse()
	if err != nil {
		return 0, err
	}
	return mat.MaxAbs(aSharp), nil
}

// DPi returns the directional derivative of the stationary distribution
// along a perturbation direction V with zero row sums:
// dπ = π V Z (Schweitzer; the paper's component form dπ_i/dt =
// Σ_{k,l} π_k z_li V_kl).
func (s *Solution) DPi(v *mat.Matrix) ([]float64, error) {
	pv, err := mat.VecMul(s.Pi, v)
	if err != nil {
		return nil, err
	}
	return mat.VecMul(pv, s.Z)
}

// DZ returns the directional derivative of the fundamental matrix along a
// zero-row-sum direction V: dZ = Z V Z - W V Z² (Schweitzer; the paper's
// component form dz_ij/dt = Σ_{kl} [z_ik z_lj - π_k (Z²)_lj] V_kl).
func (s *Solution) DZ(v *mat.Matrix) (*mat.Matrix, error) {
	zv, err := mat.Mul(s.Z, v)
	if err != nil {
		return nil, err
	}
	zvz, err := mat.Mul(zv, s.Z)
	if err != nil {
		return nil, err
	}
	wv, err := mat.Mul(s.W, v)
	if err != nil {
		return nil, err
	}
	z2 := s.Z2
	if z2 == nil {
		// Sparse solves elide Z²; rebuild it here (DZ is an off-hot-path
		// diagnostic, so the extra product is acceptable).
		z2, err = mat.Mul(s.Z, s.Z)
		if err != nil {
			return nil, err
		}
	}
	wvz2, err := mat.Mul(wv, z2)
	if err != nil {
		return nil, err
	}
	return mat.SubM(zvz, wvz2)
}
