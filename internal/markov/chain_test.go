package markov

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/rng"
)

// twoState builds the classic two-state chain [[1-a, a], [b, 1-b]].
func twoState(t *testing.T, a, b float64) *Chain {
	t.Helper()
	p, err := mat.NewFromRows([][]float64{{1 - a, a}, {b, 1 - b}})
	if err != nil {
		t.Fatalf("build matrix: %v", err)
	}
	c, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// randomErgodic builds a random chain with strictly positive entries
// (hence ergodic).
func randomErgodic(src *rng.Source, n int) *Chain {
	p := mat.New(n, n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		src.DirichletRow(row, 1)
		for j := range row {
			// Mix with uniform mass to bound entries away from zero.
			row[j] = 0.9*row[j] + 0.1/float64(n)
		}
		p.SetRow(i, row)
	}
	c, err := New(p)
	if err != nil {
		panic(err)
	}
	return c
}

func TestNewRejectsNonStochastic(t *testing.T) {
	cases := []struct {
		name string
		rows [][]float64
	}{
		{"bad row sum", [][]float64{{0.5, 0.4}, {0.5, 0.5}}},
		{"negative entry", [][]float64{{1.2, -0.2}, {0.5, 0.5}}},
		{"entry above one", [][]float64{{1.5, -0.5}, {0.5, 0.5}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := mat.NewFromRows(tc.rows)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if _, err := New(p); !errors.Is(err, ErrNotStochastic) {
				t.Errorf("err = %v, want ErrNotStochastic", err)
			}
		})
	}
	if err := CheckStochastic(mat.New(2, 3)); !errors.Is(err, ErrNotStochastic) {
		t.Errorf("non-square err = %v, want ErrNotStochastic", err)
	}
}

func TestNewClonesInput(t *testing.T) {
	p, _ := mat.NewFromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	c, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p.Set(0, 0, 0.9)
	if c.At(0, 0) != 0.5 {
		t.Error("Chain shares storage with caller's matrix")
	}
}

func TestIrreducible(t *testing.T) {
	// Block-diagonal chain is reducible.
	p, _ := mat.NewFromRows([][]float64{
		{0.5, 0.5, 0, 0},
		{0.5, 0.5, 0, 0},
		{0, 0, 0.5, 0.5},
		{0, 0, 0.5, 0.5},
	})
	c, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.IsIrreducible() {
		t.Error("block-diagonal chain reported irreducible")
	}
	if c.IsErgodic() {
		t.Error("block-diagonal chain reported ergodic")
	}
	if _, err := c.Solve(); !errors.Is(err, ErrNotErgodic) {
		t.Errorf("Solve err = %v, want ErrNotErgodic", err)
	}
}

func TestIrreducibleOneWay(t *testing.T) {
	// State 1 is absorbing: reachable from 0 but not back.
	p, _ := mat.NewFromRows([][]float64{{0.5, 0.5}, {0, 1}})
	c, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.IsIrreducible() {
		t.Error("absorbing chain reported irreducible")
	}
}

func TestPeriod(t *testing.T) {
	// Deterministic 2-cycle has period 2.
	p2, _ := mat.NewFromRows([][]float64{{0, 1}, {1, 0}})
	c2, err := New(p2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := c2.Period(); got != 2 {
		t.Errorf("2-cycle period = %d, want 2", got)
	}
	if c2.IsErgodic() {
		t.Error("2-cycle reported ergodic")
	}
	if _, err := c2.Solve(); !errors.Is(err, ErrNotErgodic) {
		t.Errorf("Solve err = %v, want ErrNotErgodic", err)
	}

	// A self-loop makes it aperiodic.
	p1, _ := mat.NewFromRows([][]float64{{0.1, 0.9}, {1, 0}})
	c1, err := New(p1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := c1.Period(); got != 1 {
		t.Errorf("self-loop period = %d, want 1", got)
	}
	if !c1.IsErgodic() {
		t.Error("aperiodic irreducible chain reported non-ergodic")
	}

	// Deterministic 3-cycle has period 3.
	p3, _ := mat.NewFromRows([][]float64{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}})
	c3, err := New(p3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := c3.Period(); got != 3 {
		t.Errorf("3-cycle period = %d, want 3", got)
	}
}

func TestStationaryTwoState(t *testing.T) {
	a, b := 0.3, 0.1
	c := twoState(t, a, b)
	s, err := c.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	wantPi0 := b / (a + b)
	wantPi1 := a / (a + b)
	if math.Abs(s.Pi[0]-wantPi0) > 1e-12 || math.Abs(s.Pi[1]-wantPi1) > 1e-12 {
		t.Errorf("π = %v, want [%v %v]", s.Pi, wantPi0, wantPi1)
	}
}

func TestStationaryFixedPointProperty(t *testing.T) {
	src := rng.New(101)
	for trial := 0; trial < 100; trial++ {
		n := 2 + src.IntN(8)
		c := randomErgodic(src, n)
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		if math.Abs(mat.SumVec(s.Pi)-1) > 1e-9 {
			t.Fatalf("trial %d: Σπ = %v", trial, mat.SumVec(s.Pi))
		}
		piP, err := c.Step(s.Pi)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		for i := range piP {
			if math.Abs(piP[i]-s.Pi[i]) > 1e-9 {
				t.Fatalf("trial %d: (πP)_%d = %v, π_%d = %v", trial, i, piP[i], i, s.Pi[i])
			}
		}
	}
}

func TestStationaryMatchesPowerIteration(t *testing.T) {
	src := rng.New(102)
	for trial := 0; trial < 20; trial++ {
		n := 2 + src.IntN(6)
		c := randomErgodic(src, n)
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		power, err := c.StationaryPower(100000, 1e-13)
		if err != nil {
			t.Fatalf("StationaryPower: %v", err)
		}
		for i := range power {
			if math.Abs(power[i]-s.Pi[i]) > 1e-8 {
				t.Fatalf("trial %d: power[%d] = %v, direct = %v", trial, i, power[i], s.Pi[i])
			}
		}
	}
}

func TestFundamentalMatrixIdentities(t *testing.T) {
	src := rng.New(103)
	for trial := 0; trial < 50; trial++ {
		n := 2 + src.IntN(6)
		c := randomErgodic(src, n)
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		id := mat.Identity(n)
		imp, _ := mat.SubM(id, s.P)
		zin, _ := mat.AddM(imp, s.W)
		prod, _ := mat.Mul(s.Z, zin)
		if mat.MaxAbsDiff(prod, id) > 1e-8 {
			t.Fatalf("trial %d: Z(I-P+W) != I", trial)
		}
		// WZ = W and ZW = W.
		wz, _ := mat.Mul(s.W, s.Z)
		if mat.MaxAbsDiff(wz, s.W) > 1e-8 {
			t.Fatalf("trial %d: WZ != W", trial)
		}
		zw, _ := mat.Mul(s.Z, s.W)
		if mat.MaxAbsDiff(zw, s.W) > 1e-8 {
			t.Fatalf("trial %d: ZW != W", trial)
		}
	}
}

func TestGroupInverseAxioms(t *testing.T) {
	src := rng.New(104)
	for trial := 0; trial < 50; trial++ {
		n := 2 + src.IntN(6)
		c := randomErgodic(src, n)
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		aSharp, err := s.GroupInverse()
		if err != nil {
			t.Fatalf("GroupInverse: %v", err)
		}
		a, _ := mat.SubM(mat.Identity(n), s.P)

		// A A# A = A.
		t1, _ := mat.Mul(a, aSharp)
		t2, _ := mat.Mul(t1, a)
		if mat.MaxAbsDiff(t2, a) > 1e-8 {
			t.Fatalf("trial %d: A A# A != A", trial)
		}
		// A# A A# = A#.
		t3, _ := mat.Mul(aSharp, a)
		t4, _ := mat.Mul(t3, aSharp)
		if mat.MaxAbsDiff(t4, aSharp) > 1e-8 {
			t.Fatalf("trial %d: A# A A# != A#", trial)
		}
		// Commutation: A A# = A# A = I - W (Eq. 5).
		aas, _ := mat.Mul(a, aSharp)
		asa, _ := mat.Mul(aSharp, a)
		if mat.MaxAbsDiff(aas, asa) > 1e-8 {
			t.Fatalf("trial %d: A A# != A# A", trial)
		}
		imw, _ := mat.SubM(mat.Identity(n), s.W)
		if mat.MaxAbsDiff(aas, imw) > 1e-8 {
			t.Fatalf("trial %d: A A# != I - W", trial)
		}
		// Z = I + P A# (Eq. 7).
		pas, _ := mat.Mul(s.P, aSharp)
		zAlt, _ := mat.AddM(mat.Identity(n), pas)
		if mat.MaxAbsDiff(zAlt, s.Z) > 1e-8 {
			t.Fatalf("trial %d: Z != I + P A#", trial)
		}
	}
}

func TestFirstPassageTwoState(t *testing.T) {
	a, b := 0.3, 0.1
	c := twoState(t, a, b)
	s, err := c.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// From 0, reaching 1 is geometric with success a: R_01 = 1/a.
	if got := s.R.At(0, 1); math.Abs(got-1/a) > 1e-9 {
		t.Errorf("R_01 = %v, want %v", got, 1/a)
	}
	if got := s.R.At(1, 0); math.Abs(got-1/b) > 1e-9 {
		t.Errorf("R_10 = %v, want %v", got, 1/b)
	}
	// Mean return times are 1/π_i.
	for i := 0; i < 2; i++ {
		if got := s.R.At(i, i); math.Abs(got-1/s.Pi[i]) > 1e-9 {
			t.Errorf("R_%d%d = %v, want 1/π = %v", i, i, got, 1/s.Pi[i])
		}
	}
}

// TestFirstPassageFirstStepEquation validates R against the first-step
// recurrence R_ij = 1 + Σ_{k≠j} p_ik R_kj on random ergodic chains.
func TestFirstPassageFirstStepEquation(t *testing.T) {
	src := rng.New(105)
	for trial := 0; trial < 50; trial++ {
		n := 2 + src.IntN(7)
		c := randomErgodic(src, n)
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 1.0
				for k := 0; k < n; k++ {
					if k == j {
						continue
					}
					want += s.P.At(i, k) * s.R.At(k, j)
				}
				if got := s.R.At(i, j); math.Abs(got-want) > 1e-7 {
					t.Fatalf("trial %d: R_%d%d = %v, first-step gives %v", trial, i, j, got, want)
				}
			}
		}
	}
}

func TestFirstPassagePositivity(t *testing.T) {
	src := rng.New(106)
	for trial := 0; trial < 30; trial++ {
		c := randomErgodic(src, 2+src.IntN(6))
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		n := len(s.Pi)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if s.R.At(i, j) < 1-1e-12 {
					t.Fatalf("trial %d: R_%d%d = %v < 1", trial, i, j, s.R.At(i, j))
				}
			}
		}
	}
}

func TestEntropyRateUniform(t *testing.T) {
	n := 4
	p := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p.Set(i, j, 1/float64(n))
		}
	}
	c, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s, err := c.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if got := s.EntropyRate(); math.Abs(got-math.Log(float64(n))) > 1e-9 {
		t.Errorf("H = %v, want ln %d = %v", got, n, math.Log(float64(n)))
	}
}

func TestEntropyRateTwoState(t *testing.T) {
	a, b := 0.3, 0.1
	c := twoState(t, a, b)
	s, err := c.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	hBin := func(x float64) float64 {
		return -(x*math.Log(x) + (1-x)*math.Log(1-x))
	}
	want := s.Pi[0]*hBin(a) + s.Pi[1]*hBin(b)
	if got := s.EntropyRate(); math.Abs(got-want) > 1e-12 {
		t.Errorf("H = %v, want %v", got, want)
	}
}

func TestEntropyRateBounds(t *testing.T) {
	src := rng.New(107)
	for trial := 0; trial < 50; trial++ {
		n := 2 + src.IntN(7)
		c := randomErgodic(src, n)
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		h := s.EntropyRate()
		if h < -1e-12 || h > math.Log(float64(n))+1e-12 {
			t.Fatalf("trial %d: H = %v outside [0, ln %d]", trial, h, n)
		}
	}
}

func TestKemenyConstantIndependence(t *testing.T) {
	src := rng.New(108)
	for trial := 0; trial < 30; trial++ {
		n := 2 + src.IntN(6)
		c := randomErgodic(src, n)
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		k := s.KemenyConstant()
		for i := 0; i < n; i++ {
			var sum float64
			for j := 0; j < n; j++ {
				if j != i {
					sum += s.Pi[j] * s.R.At(i, j)
				}
			}
			if math.Abs(sum-k) > 1e-7 {
				t.Fatalf("trial %d: Σ_j π_j R_%dj = %v, Kemeny = %v", trial, i, sum, k)
			}
		}
	}
}

// TestConditionNumberBoundsPerturbation verifies the Funderlic–Meyer
// sensitivity bound empirically: for random ergodic chains and random
// stochastic perturbations, the stationary shift stays within
// κ·‖ΔP‖_∞.
func TestConditionNumberBoundsPerturbation(t *testing.T) {
	src := rng.New(606)
	for trial := 0; trial < 40; trial++ {
		n := 2 + src.IntN(5)
		c := randomErgodic(src, n)
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		kappa, err := s.ConditionNumber()
		if err != nil {
			t.Fatalf("ConditionNumber: %v", err)
		}
		if kappa <= 0 {
			t.Fatalf("trial %d: κ = %v", trial, kappa)
		}
		// Random ergodic perturbation target.
		c2 := randomErgodic(src, n)
		s2, err := c2.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		// ‖ΔP‖_∞ = max row sum of |Δ|.
		var normInf float64
		for i := 0; i < n; i++ {
			var rowAbs float64
			for j := 0; j < n; j++ {
				d := s2.P.At(i, j) - s.P.At(i, j)
				if d < 0 {
					d = -d
				}
				rowAbs += d
			}
			if rowAbs > normInf {
				normInf = rowAbs
			}
		}
		for i := 0; i < n; i++ {
			if shift := math.Abs(s2.Pi[i] - s.Pi[i]); shift > kappa*normInf+1e-9 {
				t.Fatalf("trial %d: |Δπ_%d| = %v exceeds κ‖ΔP‖ = %v",
					trial, i, shift, kappa*normInf)
			}
		}
	}
}

// zeroRowSumDirection builds a random perturbation direction whose rows
// sum to zero — a tangent vector of the stochastic-matrix manifold.
func zeroRowSumDirection(src *rng.Source, n int) *mat.Matrix {
	v := mat.New(n, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			x := src.Norm(0, 1)
			v.Set(i, j, x)
			sum += x
		}
		for j := 0; j < n; j++ {
			v.Add(i, j, -sum/float64(n))
		}
	}
	return v
}

// perturbChain returns the solution of P + h*V, which must remain
// stochastic and ergodic for small h.
func perturbChain(t *testing.T, p *mat.Matrix, v *mat.Matrix, h float64) *Solution {
	t.Helper()
	ph := p.Clone()
	if err := mat.AddInPlace(ph, h, v); err != nil {
		t.Fatalf("AddInPlace: %v", err)
	}
	c, err := New(ph)
	if err != nil {
		t.Fatalf("perturbed chain invalid: %v", err)
	}
	s, err := c.Solve()
	if err != nil {
		t.Fatalf("perturbed Solve: %v", err)
	}
	return s
}

// TestPerturbationLinearity: the Schweitzer derivatives are linear in the
// direction, DPi(aV + bW) = a·DPi(V) + b·DPi(W) (and likewise DZ).
func TestPerturbationLinearity(t *testing.T) {
	src := rng.New(707)
	for trial := 0; trial < 20; trial++ {
		n := 2 + src.IntN(5)
		c := randomErgodic(src, n)
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		v := zeroRowSumDirection(src, n)
		w := zeroRowSumDirection(src, n)
		a, b := src.Norm(0, 2), src.Norm(0, 2)

		comb := mat.Scale(a, v)
		if err := mat.AddInPlace(comb, b, w); err != nil {
			t.Fatal(err)
		}
		dComb, err := s.DPi(comb)
		if err != nil {
			t.Fatalf("DPi: %v", err)
		}
		dv, err := s.DPi(v)
		if err != nil {
			t.Fatalf("DPi: %v", err)
		}
		dw, err := s.DPi(w)
		if err != nil {
			t.Fatalf("DPi: %v", err)
		}
		for i := 0; i < n; i++ {
			want := a*dv[i] + b*dw[i]
			if math.Abs(dComb[i]-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("trial %d: DPi not linear at %d: %v vs %v", trial, i, dComb[i], want)
			}
		}
		dzComb, err := s.DZ(comb)
		if err != nil {
			t.Fatalf("DZ: %v", err)
		}
		dzv, err := s.DZ(v)
		if err != nil {
			t.Fatalf("DZ: %v", err)
		}
		dzw, err := s.DZ(w)
		if err != nil {
			t.Fatalf("DZ: %v", err)
		}
		lin := mat.Scale(a, dzv)
		if err := mat.AddInPlace(lin, b, dzw); err != nil {
			t.Fatal(err)
		}
		if d := mat.MaxAbsDiff(dzComb, lin); d > 1e-8*(1+mat.MaxAbs(lin)) {
			t.Fatalf("trial %d: DZ not linear (diff %v)", trial, d)
		}
	}
}

// TestDPiMatchesFiniteDifference validates the Schweitzer derivative of π
// against central finite differences along random tangent directions.
func TestDPiMatchesFiniteDifference(t *testing.T) {
	src := rng.New(109)
	const h = 1e-6
	for trial := 0; trial < 30; trial++ {
		n := 2 + src.IntN(5)
		c := randomErgodic(src, n)
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		v := zeroRowSumDirection(src, n)
		// Scale v so P ± hV stays well inside the simplex.
		mat.ScaleInPlace(0.01/(mat.MaxAbs(v)+1e-12), v)

		dpi, err := s.DPi(v)
		if err != nil {
			t.Fatalf("DPi: %v", err)
		}
		plus := perturbChain(t, s.P, v, h)
		minus := perturbChain(t, s.P, v, -h)
		for i := 0; i < n; i++ {
			fd := (plus.Pi[i] - minus.Pi[i]) / (2 * h)
			if math.Abs(fd-dpi[i]) > 1e-5*(1+math.Abs(fd)) {
				t.Fatalf("trial %d: dπ_%d analytic %v, FD %v", trial, i, dpi[i], fd)
			}
		}
	}
}

// TestDZMatchesFiniteDifference validates the Schweitzer derivative of Z.
func TestDZMatchesFiniteDifference(t *testing.T) {
	src := rng.New(110)
	const h = 1e-6
	for trial := 0; trial < 20; trial++ {
		n := 2 + src.IntN(4)
		c := randomErgodic(src, n)
		s, err := c.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		v := zeroRowSumDirection(src, n)
		mat.ScaleInPlace(0.01/(mat.MaxAbs(v)+1e-12), v)

		dz, err := s.DZ(v)
		if err != nil {
			t.Fatalf("DZ: %v", err)
		}
		plus := perturbChain(t, s.P, v, h)
		minus := perturbChain(t, s.P, v, -h)
		fd, _ := mat.SubM(plus.Z, minus.Z)
		mat.ScaleInPlace(1/(2*h), fd)
		if d := mat.MaxAbsDiff(dz, fd); d > 1e-4*(1+mat.MaxAbs(fd)) {
			t.Fatalf("trial %d: dZ mismatch %v", trial, d)
		}
	}
}

func TestStepDistribution(t *testing.T) {
	c := twoState(t, 0.5, 0.5)
	out, err := c.Step([]float64{1, 0})
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if math.Abs(out[0]-0.5) > 1e-12 || math.Abs(out[1]-0.5) > 1e-12 {
		t.Errorf("Step = %v, want [0.5 0.5]", out)
	}
}

func TestPReturnsCopy(t *testing.T) {
	c := twoState(t, 0.5, 0.5)
	p := c.P()
	p.Set(0, 0, 0.9)
	if c.At(0, 0) != 0.5 {
		t.Error("P returned internal storage")
	}
}
