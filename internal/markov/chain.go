// Package markov implements the finite Markov chain machinery the paper's
// optimizer is built on: stochastic-matrix validation, ergodicity checks,
// stationary distributions, the fundamental matrix Z = (I - P + W)^{-1}
// (Eq. 7), Meyer's group generalized inverse of I - P, mean first-passage
// times (Eq. 8), the chain's entropy rate (§VII), and Schweitzer's
// perturbation derivatives of π and Z with respect to the transition
// matrix (the ingredients of the paper's Eq. 10).
package markov

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// Validation errors.
var (
	// ErrNotStochastic indicates the matrix is not row-stochastic.
	ErrNotStochastic = errors.New("markov: matrix is not row-stochastic")
	// ErrNotErgodic indicates the chain is reducible or periodic, so the
	// limiting quantities the paper relies on do not exist.
	ErrNotErgodic = errors.New("markov: chain is not ergodic")
)

// StochasticTol is the tolerance used when validating row sums.
const StochasticTol = 1e-9

// edgeTol is the threshold above which a transition probability counts as
// a graph edge for irreducibility/periodicity purposes.
const edgeTol = 0.0

// Chain is a finite, time-homogeneous Markov chain defined by a
// row-stochastic transition matrix.
type Chain struct {
	p *mat.Matrix
}

// New validates that p is square and row-stochastic and wraps it in a
// Chain. The matrix is cloned, so later mutation of p does not affect the
// chain.
func New(p *mat.Matrix) (*Chain, error) {
	if err := CheckStochastic(p); err != nil {
		return nil, err
	}
	return &Chain{p: p.Clone()}, nil
}

// CheckStochastic verifies that p is square, entries lie in [0, 1], and
// every row sums to 1 within StochasticTol.
func CheckStochastic(p *mat.Matrix) error {
	if !p.IsSquare() {
		return fmt.Errorf("%w: shape %dx%d", ErrNotStochastic, p.Rows(), p.Cols())
	}
	n := p.Rows()
	pd := p.Data()
	for i := 0; i < n; i++ {
		row := pd[i*n : (i+1)*n]
		var sum float64
		for j, v := range row {
			if v < -StochasticTol || v > 1+StochasticTol || math.IsNaN(v) {
				return fmt.Errorf("%w: p[%d][%d] = %v", ErrNotStochastic, i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("%w: row %d sums to %v", ErrNotStochastic, i, sum)
		}
	}
	return nil
}

// M returns the number of states.
func (c *Chain) M() int { return c.p.Rows() }

// P returns a copy of the transition matrix.
func (c *Chain) P() *mat.Matrix { return c.p.Clone() }

// At returns p_ij.
func (c *Chain) At(i, j int) float64 { return c.p.At(i, j) }

// IsIrreducible reports whether every state reaches every other state
// through transitions with positive probability.
func (c *Chain) IsIrreducible() bool {
	n := c.M()
	fwd := c.reachable(false)
	bwd := c.reachable(true)
	for i := 0; i < n; i++ {
		if !fwd[i] || !bwd[i] {
			return false
		}
	}
	return true
}

// reachable runs a BFS from state 0 over the positive-probability edge
// graph (or its reverse) and returns the visited set.
func (c *Chain) reachable(reverse bool) []bool {
	n := c.M()
	seen := make([]bool, n)
	queue := make([]int, 0, n)
	seen[0] = true
	queue = append(queue, 0)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			var w float64
			if reverse {
				w = c.p.At(v, u)
			} else {
				w = c.p.At(u, v)
			}
			if w > edgeTol && !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return seen
}

// Period returns the period of the chain (the gcd of all cycle lengths
// through state 0). It requires the chain to be irreducible; for a
// reducible chain the result is meaningful only for state 0's communicating
// class.
func (c *Chain) Period() int {
	n := c.M()
	// BFS levels from state 0; every edge (u, v) contributes
	// gcd(level[u] + 1 - level[v]).
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	queue := []int{0}
	g := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if c.p.At(u, v) <= edgeTol {
				continue
			}
			if level[v] == -1 {
				level[v] = level[u] + 1
				queue = append(queue, v)
			} else {
				g = gcd(g, abs(level[u]+1-level[v]))
			}
		}
	}
	if g == 0 {
		// No cycle through state 0 was found (possible only for
		// degenerate/absorbing structures); report period 1 by convention.
		return 1
	}
	return g
}

// IsErgodic reports whether the chain is irreducible and aperiodic.
func (c *Chain) IsErgodic() bool {
	return c.IsIrreducible() && c.Period() == 1
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Step returns the distribution after one step from the given distribution:
// out = dist * P.
func (c *Chain) Step(dist []float64) ([]float64, error) {
	return mat.VecMul(dist, c.p)
}
