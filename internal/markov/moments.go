package markov

import (
	"fmt"

	"repro/internal/mat"
)

// FirstPassageMoments holds the first two moments of the first-passage
// times of an ergodic chain: Mean[i][j] is E[T_j | X_0 = i] (equal to the
// solution's R) and Second[i][j] is E[T_j² | X_0 = i], from which
// Variance derives. The diagonal entries are the return-time moments.
//
// The paper's exposure objective uses only the mean (Eq. 3); the second
// moment enables variance-aware scheduling — bounding not just the
// average but the variability of how long a PoI stays unwatched — which
// this implementation exposes as an analysis tool.
type FirstPassageMoments struct {
	Mean   *mat.Matrix
	Second *mat.Matrix
}

// Variance returns Var[T_j | X_0 = i] = Second − Mean².
func (m *FirstPassageMoments) Variance() *mat.Matrix {
	n := m.Mean.Rows()
	out := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			mu := m.Mean.At(i, j)
			v := m.Second.At(i, j) - mu*mu
			if v < 0 {
				v = 0 // numeric guard
			}
			out.Set(i, j, v)
		}
	}
	return out
}

// Moments computes the first and second moments of all first-passage
// times by first-step analysis: for a fixed target j, with Q the
// transition matrix restricted to the non-target states,
//
//	m = (I − Q)^{-1}·1,          (means)
//	s = (I − Q)^{-1}·(1 + 2·Q·m) (second moments)
//
// and the diagonal (return-time) moments follow by one more step from j.
// The mean matrix reproduces the closed-form R of Eq. 8, which the tests
// assert.
func (s *Solution) Moments() (*FirstPassageMoments, error) {
	n := len(s.Pi)
	mean := mat.New(n, n)
	second := mat.New(n, n)

	for j := 0; j < n; j++ {
		// Build I − Q over the states ≠ j.
		idx := make([]int, 0, n-1)
		for i := 0; i < n; i++ {
			if i != j {
				idx = append(idx, i)
			}
		}
		a := mat.New(n-1, n-1)
		for r, i := range idx {
			for c, k := range idx {
				v := -s.P.At(i, k)
				if i == k {
					v++
				}
				a.Set(r, c, v)
			}
		}
		f, err := mat.Factor(a)
		if err != nil {
			return nil, fmt.Errorf("markov: moments target %d: %w", j, err)
		}
		ones := make([]float64, n-1)
		for i := range ones {
			ones[i] = 1
		}
		m, err := f.SolveVec(ones)
		if err != nil {
			return nil, err
		}
		// rhs2 = 1 + 2·Q·m.
		rhs2 := make([]float64, n-1)
		for r, i := range idx {
			acc := 1.0
			for c, k := range idx {
				acc += 2 * s.P.At(i, k) * m[c]
			}
			rhs2[r] = acc
		}
		s2, err := f.SolveVec(rhs2)
		if err != nil {
			return nil, err
		}
		for r, i := range idx {
			mean.Set(i, j, m[r])
			second.Set(i, j, s2[r])
		}
		// Return-time moments from j: T_jj = 1 + T'_j where T' starts
		// from the first-step distribution.
		var mRet, sRet float64
		mRet = 1
		sRet = 1
		for c, k := range idx {
			mRet += s.P.At(j, k) * m[c]
			sRet += s.P.At(j, k) * (2*m[c] + s2[c])
		}
		mean.Set(j, j, mRet)
		second.Set(j, j, sRet)
	}
	return &FirstPassageMoments{Mean: mean, Second: second}, nil
}
