package markov

import (
	"fmt"
	"slices"

	"repro/internal/mat"
)

// Method selects the linear-algebra backend a Solver uses for the
// fundamental-matrix systems.
type Method int

const (
	// MethodDense is the bit-exact reference path: dense LU with partial
	// pivoting, full Z and Z² (the default; golden traces pin it).
	MethodDense Method = iota
	// MethodSparse factors the sparse replaced-row stationary system with
	// a fill-reducing sparse LU and absorbs the W = 1πᵀ densification of
	// the fundamental-matrix system as a rank-2 Sherman–Morrison–Woodbury
	// update of that one factorization, so per-solve cost scales with
	// the factor fill instead of M³. Results agree with MethodDense to
	// SparseTol (see below); Z² is not materialized (Solution.Z2 is nil)
	// and consumers fall back to two Z-products. When the no-pivoting
	// sparse factorization rejects a near-singular pivot the solver
	// transparently falls back to the dense path, so MethodSparse never
	// trades correctness for speed.
	MethodSparse
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodDense:
		return "dense"
	case MethodSparse:
		return "sparse"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// SparseTol is the documented agreement tolerance of the sparse path: for
// the well-conditioned Markov systems this package solves (κ bounded by
// the chain's mixing structure), sparse-vs-dense results for π, Z and R
// agree to SparseTol in max norm relative to the quantity's magnitude.
// The cross-check tests in cost assert exactly this contract on the four
// paper topologies plus random geometric instances.
const SparseTol = 1e-8

// SetMethod selects the solver backend for subsequent Solve calls.
func (s *Solver) SetMethod(m Method) { s.method = m }

// Method returns the solver's current backend.
func (s *Solver) Method() Method { return s.method }

// SparseFactors exposes the factorization behind a sparse Solve so
// downstream consumers (the cost gradient's Eq. 10 contractions) can
// solve against A = I − P + W and its transpose at factor-fill cost
// instead of re-deriving dense O(M³) products from Z.
type SparseFactors struct {
	lr  *mat.LowRankSolver
	nnz int // factor fill, for diagnostics
}

// SolveTranspose solves Aᵀ x = b, where A = I − P + W is the system whose
// inverse is the fundamental matrix Z; equivalently x = Zᵀ b up to the
// factorization's accuracy. x must not alias b.
func (f *SparseFactors) SolveTranspose(x, b []float64) error {
	return f.lr.SolveVecTransTo(x, b)
}

// SolveTransposeMulti solves Aᵀ X = B for k right-hand sides in the n×k
// row-major block layout of mat.SparseLU.SolveMultiTo (column r is one
// right-hand side). x and b may alias. This is the gradient's bulk
// Zᵀ·(·) contraction: one traversal of the factor covers every column.
func (f *SparseFactors) SolveTransposeMulti(x, b []float64, k int) error {
	return f.lr.SolveMultiTransTo(x, b, k)
}

// Solve solves A x = b (x = Z b up to factorization accuracy). x must
// not alias b.
func (f *SparseFactors) Solve(x, b []float64) error {
	return f.lr.SolveVecTo(x, b)
}

// FactorNNZ returns the stored entries of the underlying sparse LU.
func (f *SparseFactors) FactorNNZ() int { return f.nnz }

// Sparse returns the sparse factorization handle when the Solution came
// from a MethodSparse solve, nil otherwise (including after Clone, which
// detaches from solver-owned state).
func (s *Solution) Sparse() *SparseFactors { return s.sparse }

// sparseScratch holds the sparse path's per-solve assembly buffers plus
// the cached factorization machinery. Both the fill-reducing ordering
// (which depends only on the support pattern) and the SparseLU's flat
// factor storage (whose fill pattern is fixed for a fixed support and
// ordering) are reused across solves: line-search probes and successive
// descent iterates keep P's support, so after the first solve each
// Refactor allocates nothing and only pays the elimination flops.
// Consequence: a Solution's SparseFactors handle is backed by
// solver-owned storage and is invalidated by the solver's next Solve,
// exactly like the Solution itself (Clone detaches, dropping the handle).
type sparseScratch struct {
	rcols [][]int32
	rvals [][]float64
	u     []float64
	u2    []float64
	e     []float64
	x     []float64

	sig     []int32      // current stationary-system pattern signature
	pat     []int32      // pattern the cached ordering was computed for
	patPerm []int        // cached mat.FillOrder of pat
	lu      mat.SparseLU // factor storage, reused across Refactor calls
}

// solveSparse is the MethodSparse implementation. One sparse LU — of the
// transposed replaced-row stationary system S (rows of (I − P)ᵀ with the
// last row replaced by the Σπ = 1 normalization) — serves both solves:
// π comes from S x = e_n, and the fundamental-matrix system is a rank-2
// Woodbury update of Sᵀ,
//
//	A = I − P + 1πᵀ = Sᵀ + 1·πᵀ + (g − 1)·e_nᵀ,
//
// where g is the last column of I − P (Sᵀ differs from I − P only in
// that column, which the normalization row replaced). Z then arrives in
// one blocked multi-RHS solve against the identity. Any mat.ErrSingular
// from the no-pivoting factorization is returned for the caller to fall
// back to the dense path.
func (s *Solver) solveSparse(p *mat.Matrix) (*Solution, error) {
	n := s.n
	if s.sp == nil {
		s.sp = &sparseScratch{
			rcols: make([][]int32, n),
			rvals: make([][]float64, n),
			u:     make([]float64, n),
			u2:    make([]float64, n),
			e:     make([]float64, n),
			x:     make([]float64, n),
		}
	}
	sp := s.sp
	pd := p.Data()

	// Column-oriented access to P for the transposed stationary system.
	pt := mat.FromDense(p, 0).Transpose()

	// Stationary system S: rows i < n−1 hold (I − P)ᵀ, the last row is
	// all ones (the normalization Σπ = 1), right-hand side e_{n−1}.
	for i := 0; i < n-1; i++ {
		cols := sp.rcols[i][:0]
		vals := sp.rvals[i][:0]
		tc, tv := pt.Row(i)
		diagDone := false
		for k, c := range tc {
			j := int(c)
			if !diagDone && j >= i {
				if j == i {
					if v := 1 - tv[k]; v != 0 {
						cols = append(cols, c)
						vals = append(vals, v)
					}
					diagDone = true
					continue
				}
				cols = append(cols, int32(i))
				vals = append(vals, 1)
				diagDone = true
			}
			if v := -tv[k]; v != 0 {
				cols = append(cols, c)
				vals = append(vals, v)
			}
		}
		if !diagDone {
			cols = append(cols, int32(i))
			vals = append(vals, 1)
		}
		sp.rcols[i], sp.rvals[i] = cols, vals
	}
	{
		cols := sp.rcols[n-1][:0]
		vals := sp.rvals[n-1][:0]
		for j := 0; j < n; j++ {
			cols = append(cols, int32(j))
			vals = append(vals, 1)
		}
		sp.rcols[n-1], sp.rvals[n-1] = cols, vals
	}
	statSys, err := mat.NewSparseFromRows(n, n, sp.rcols, sp.rvals)
	if err != nil {
		return nil, err
	}
	// The fill-reducing ordering depends only on the support pattern;
	// recompute it only when the pattern changed since the last solve.
	sig := sp.sig[:0]
	for i := 0; i < n; i++ {
		sig = append(sig, int32(len(sp.rcols[i])))
		sig = append(sig, sp.rcols[i]...)
	}
	sp.sig = sig
	if !slices.Equal(sig, sp.pat) {
		sp.pat = append(sp.pat[:0], sig...)
		sp.patPerm = mat.FillOrder(statSys)
	}
	statLU := &sp.lu
	if err := statLU.Refactor(statSys, sp.patPerm, 0); err != nil {
		return nil, err
	}
	for i := range sp.e {
		sp.e[i] = 0
	}
	sp.e[n-1] = 1
	if err := statLU.SolveVecTo(s.sol.Pi, sp.e); err != nil {
		return nil, err
	}
	pi := s.sol.Pi
	if err := checkPositive(pi); err != nil {
		return nil, err
	}

	// W has every row equal to π (kept dense; O(n²) like the dense path).
	wd := s.sol.W.Data()
	for i := 0; i < n; i++ {
		copy(wd[i*n:(i+1)*n], pi)
	}

	// A = Sᵀ + 1·πᵀ + (g − 1)·e_{n−1}ᵀ: the same factorization that
	// produced π absorbs the fundamental-matrix system as a rank-2
	// Woodbury update, where g_j = δ_{j,n−1} − p_{j,n−1} is the last
	// column of I − P that the normalization row displaced.
	for i := range sp.u {
		sp.u[i] = 1
	}
	last := n - 1
	for j := 0; j < n; j++ {
		g := -pd[j*n+last]
		if j == last {
			g++
		}
		sp.u2[j] = g - 1
	}
	// sp.e still holds e_{n−1} from the π solve.
	lr, err := mat.NewLowRankSolverTrans(statLU,
		[][]float64{sp.u, sp.u2}, [][]float64{pi, sp.e})
	if err != nil {
		return nil, err
	}

	// Z = A⁻¹ in one blocked multi-RHS solve against the identity: the
	// n×n row-major block layout of SolveMultiTo (rhs r in column r)
	// coincides with Z's own layout, so the solve lands directly in Z.
	zd := s.sol.Z.Data()
	for i := range zd {
		zd[i] = 0
	}
	for i := 0; i < n; i++ {
		zd[i*n+i] = 1
	}
	if err := lr.SolveMultiTo(zd, zd, n); err != nil {
		return nil, err
	}

	// Z² is deliberately not materialized: its only consumer outside this
	// package folds it against a vector, which two Z·(Z·v) products cover
	// at O(n²) instead of the O(n³) product here.
	s.sol.Z2 = nil

	// R_ij = (δ_ij − z_ij + z_jj) / π_j, as on the dense path.
	rd := s.sol.R.Data()
	zdiag := s.b
	for j := 0; j < n; j++ {
		zdiag[j] = zd[j*n+j]
	}
	for i := 0; i < n; i++ {
		zrow := zd[i*n : (i+1)*n]
		rrow := rd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			d := 0.0
			if i == j {
				d = 1
			}
			rrow[j] = (d - zrow[j] + zdiag[j]) / pi[j]
		}
	}

	if err := s.sol.P.CopyFrom(p); err != nil {
		return nil, err
	}
	s.sol.sparse = &SparseFactors{lr: lr, nnz: statLU.NNZ()}
	return &s.sol, nil
}
