package cost

import (
	"errors"
	"math"
	"testing"

	"repro/internal/markov"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/topology"
)

// TestGradientAbsorbingRowGuard is the regression test for the exposure
// term's 1/(1 - p_ii) factor: a (numerically) absorbing row must surface
// ErrNotErgodic from the gradient assembly, exactly as Evaluate does,
// instead of dividing by zero and feeding NaN/Inf into the line search.
// The public entry points reject such chains before the gradient runs, so
// the test drives gradientInto directly with a doctored Solution — the
// "foreign Evaluation" case the guard exists for.
func TestGradientAbsorbingRowGuard(t *testing.T) {
	top := topology.Topology3()
	m, err := NewModel(top, Uniform(top.M(), 1, 1))
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	ws := m.NewWorkspace()
	p := randomErgodicP(rng.New(31), top.M())
	ev, err := m.EvaluateIn(ws, p)
	if err != nil {
		t.Fatalf("EvaluateIn: %v", err)
	}
	if ev.EBarI[0] == 0 {
		t.Fatal("test setup: exposure term inactive for state 0")
	}
	// Corrupt the solved matrix so state 0 is absorbing (p_00 = 1).
	n := top.M()
	for j := 0; j < n; j++ {
		ev.Sol.P.Set(0, j, 0)
	}
	ev.Sol.P.Set(0, 0, 1)
	grad, err := m.gradientInto(ws, ev)
	if !errors.Is(err, markov.ErrNotErgodic) {
		t.Fatalf("gradientInto on absorbing row: err = %v, want ErrNotErgodic", err)
	}
	if grad != nil {
		t.Error("gradientInto returned a gradient alongside the error")
	}
}

// TestGradientNearAbsorbingRowFinite covers the other side of the guard:
// p_ii just below 1 is a legitimate (if extreme) ergodic iterate, and the
// gradient must come back finite — large, but never NaN or ±Inf.
func TestGradientNearAbsorbingRowFinite(t *testing.T) {
	top := topology.Topology3()
	m, err := NewModel(top, Uniform(top.M(), 1, 1))
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	n := top.M()
	for _, slack := range []float64{1e-6, 1e-9, 1e-12} {
		p := mat.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p.Set(i, j, 1/float64(n))
			}
		}
		// Push row 0 to the brink of absorption: p_00 = 1 - slack.
		p.Set(0, 0, 1-slack)
		for j := 1; j < n; j++ {
			p.Set(0, j, slack/float64(n-1))
		}
		_, grad, err := m.Gradient(p)
		if err != nil {
			t.Fatalf("slack %g: Gradient: %v", slack, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if g := grad.At(i, j); math.IsNaN(g) || math.IsInf(g, 0) {
					t.Fatalf("slack %g: grad[%d][%d] = %v", slack, i, j, g)
				}
			}
		}
	}
}
