package cost

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

// TestEvaluateInMatchesEvaluate verifies the workspace path is bit-for-bit
// identical to the allocating path, including the solved chain quantities.
func TestEvaluateInMatchesEvaluate(t *testing.T) {
	top := topology.Topology3()
	w := Uniform(top.M(), 1, 1)
	w.EnergyWeight = 0.5
	w.EnergyTarget = 0.3
	w.EntropyWeight = 0.05
	m, err := NewModel(top, w)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	src := rng.New(404)
	ws := m.NewWorkspace()
	for trial := 0; trial < 20; trial++ {
		p := randomErgodicP(src, top.M())
		want, err := m.Evaluate(p)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		got, err := m.EvaluateIn(ws, p)
		if err != nil {
			t.Fatalf("EvaluateIn: %v", err)
		}
		scalars := [][2]float64{
			{got.U, want.U}, {got.Objective, want.Objective},
			{got.DeltaC, want.DeltaC}, {got.EBar, want.EBar},
			{got.Energy, want.Energy}, {got.Entropy, want.Entropy},
		}
		for k, s := range scalars {
			if math.Float64bits(s[0]) != math.Float64bits(s[1]) {
				t.Fatalf("trial %d: scalar %d = %v, want %v (bit mismatch)", trial, k, s[0], s[1])
			}
		}
		for i := range want.G {
			if got.G[i] != want.G[i] || got.CBar[i] != want.CBar[i] || got.EBarI[i] != want.EBarI[i] {
				t.Fatalf("trial %d: per-PoI slice mismatch at %d", trial, i)
			}
		}
		for i := 0; i < top.M(); i++ {
			if got.Sol.Pi[i] != want.Sol.Pi[i] {
				t.Fatalf("trial %d: Pi[%d] mismatch", trial, i)
			}
			for j := 0; j < top.M(); j++ {
				if got.Sol.Z.At(i, j) != want.Sol.Z.At(i, j) || got.Sol.R.At(i, j) != want.Sol.R.At(i, j) {
					t.Fatalf("trial %d: Z/R mismatch at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

// TestGradientInMatchesGradient does the same for the gradient path.
func TestGradientInMatchesGradient(t *testing.T) {
	top := topology.Topology3()
	w := Uniform(top.M(), 0.5, 2)
	w.EnergyWeight = 1
	w.EnergyTarget = 0.2
	w.EntropyWeight = 0.3
	m, err := NewModel(top, w)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	src := rng.New(505)
	ws := m.NewWorkspace()
	for trial := 0; trial < 20; trial++ {
		p := randomErgodicP(src, top.M())
		_, want, err := m.Gradient(p)
		if err != nil {
			t.Fatalf("Gradient: %v", err)
		}
		_, got, err := m.GradientIn(ws, p)
		if err != nil {
			t.Fatalf("GradientIn: %v", err)
		}
		for i := 0; i < top.M(); i++ {
			for j := 0; j < top.M(); j++ {
				if math.Float64bits(got.At(i, j)) != math.Float64bits(want.At(i, j)) {
					t.Fatalf("trial %d: grad (%d,%d) = %v, want %v (bit mismatch)",
						trial, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

// TestEvaluationCloneDetaches verifies Clone survives the workspace being
// reused for a different matrix.
func TestEvaluationCloneDetaches(t *testing.T) {
	top := topology.Topology3()
	m, err := NewModel(top, Uniform(top.M(), 1, 1))
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	src := rng.New(606)
	ws := m.NewWorkspace()
	p1 := randomErgodicP(src, top.M())
	ev1, err := m.EvaluateIn(ws, p1)
	if err != nil {
		t.Fatalf("EvaluateIn: %v", err)
	}
	clone := ev1.Clone()
	u1, g1, pi1 := ev1.U, ev1.G[0], ev1.Sol.Pi[0]

	// Overwrite the workspace with a different evaluation.
	p2 := randomErgodicP(src, top.M())
	ev2, err := m.EvaluateIn(ws, p2)
	if err != nil {
		t.Fatalf("EvaluateIn: %v", err)
	}
	if ev2.U == u1 {
		t.Fatal("test setup: both matrices evaluate identically")
	}
	if clone.U != u1 || clone.G[0] != g1 || clone.Sol.Pi[0] != pi1 {
		t.Error("Clone was clobbered by workspace reuse")
	}
}

// TestWorkspaceZeroAllocSteadyState is the tentpole regression test: once
// warm, an evaluation and a gradient through a Workspace allocate nothing.
func TestWorkspaceZeroAllocSteadyState(t *testing.T) {
	top := topology.Topology3()
	w := Uniform(top.M(), 1, 1)
	w.EnergyWeight = 0.5
	w.EnergyTarget = 0.3
	w.EntropyWeight = 0.05
	m, err := NewModel(top, w)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	ws := m.NewWorkspace()
	p := randomErgodicP(rng.New(707), top.M())
	// Warm up: the first GradientIn lazily allocates the gradient scratch.
	if _, _, err := m.GradientIn(ws, p); err != nil {
		t.Fatalf("GradientIn warmup: %v", err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := m.EvaluateIn(ws, p); err != nil {
			t.Error(err)
		}
	}); allocs != 0 {
		t.Errorf("EvaluateIn allocates %v times per call in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := m.GradientIn(ws, p); err != nil {
			t.Error(err)
		}
	}); allocs != 0 {
		t.Errorf("GradientIn allocates %v times per call in steady state, want 0", allocs)
	}
}
