package cost

import (
	"errors"
	"math"
	"testing"

	"repro/internal/markov"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/topology"
)

// sparseAgreeTol is the documented cost/gradient agreement bound for the
// sparse solver path (DESIGN.md §11): the markov quantities agree to
// markov.SparseTol, and the cost layer's folds amplify that by at most a
// couple of orders of magnitude on well-conditioned instances.
const sparseAgreeTol = 1e-6

// knnSupportP builds a support-restricted stochastic matrix over the
// topology: each row keeps its self-loop, its ring successor, and its K
// nearest neighbors, uniformly weighted, with exact zeros off support —
// the city-scale shape the sparse path exists for.
func knnSupportP(top *topology.Topology, k int) *mat.Matrix {
	n := top.M()
	p := mat.New(n, n)
	pd := p.Data()
	for i := 0; i < n; i++ {
		row := pd[i*n : (i+1)*n]
		row[i] = 1
		row[(i+1)%n] = 1
		drow := top.DistanceRow(i)
		for s := 0; s < k; s++ {
			best, bestD := -1, math.Inf(1)
			for j := 0; j < n; j++ {
				if j == i || row[j] != 0 {
					continue
				}
				if drow[j] < bestD {
					best, bestD = j, drow[j]
				}
			}
			if best < 0 {
				break
			}
			row[best] = 1
		}
		var cnt float64
		for _, v := range row {
			cnt += v
		}
		for j := range row {
			row[j] /= cnt
		}
	}
	return p
}

// equivCase pairs a topology with a transition matrix for the
// sparse-vs-dense table.
type equivCase struct {
	name string
	top  *topology.Topology
	p    func(*topology.Topology) *mat.Matrix
}

func equivCases(t *testing.T) []equivCase {
	t.Helper()
	geo, err := topology.Random(rng.New(19), topology.RandomConfig{
		M: 24, Width: 40 * 24, Height: 40 * 24,
	})
	if err != nil {
		t.Fatalf("random topology: %v", err)
	}
	dense := func(top *topology.Topology) *mat.Matrix {
		return randomErgodicP(rng.New(uint64(top.M())), top.M())
	}
	return []equivCase{
		{"topology1", topology.Topology1(), dense},
		{"topology2", topology.Topology2(), dense},
		{"topology3", topology.Topology3(), dense},
		{"topology4", topology.Topology4(), dense},
		{"random-geometric", geo, dense},
		{"random-geometric-knn", geo, func(top *topology.Topology) *mat.Matrix {
			return knnSupportP(top, 6)
		}},
	}
}

func relDiff(a, b, scale float64) float64 {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		if a == b {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / scale
}

// TestSparseMatchesDenseCostAndGradient is the tentpole cross-check:
// table-driven over the four paper topologies, a random-geometric
// topology, and a kNN support-restricted matrix with exact zeros, the
// sparse solver path must reproduce the dense path's cost breakdown and
// Eq. 10 gradient within the documented tolerance.
func TestSparseMatchesDenseCostAndGradient(t *testing.T) {
	for _, tc := range equivCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			m, err := NewModel(tc.top, Uniform(tc.top.M(), 1, 1))
			if err != nil {
				t.Fatalf("NewModel: %v", err)
			}
			p := tc.p(tc.top)
			dws := m.NewWorkspace()
			dev, dgrad, err := m.GradientIn(dws, p)
			if err != nil {
				t.Fatalf("dense GradientIn: %v", err)
			}
			sws := m.NewWorkspace()
			sws.SetSolver(markov.MethodSparse)
			if sws.Solver() != markov.MethodSparse {
				t.Fatalf("Solver() did not report the sparse method")
			}
			sev, sgrad, err := m.GradientIn(sws, p)
			if err != nil {
				t.Fatalf("sparse GradientIn: %v", err)
			}

			uScale := math.Max(1, math.Abs(dev.Objective))
			for _, q := range []struct {
				name string
				d, s float64
			}{
				{"Objective", dev.Objective, sev.Objective},
				{"CoverageTerm", dev.CoverageTerm, sev.CoverageTerm},
				{"ExposureTerm", dev.ExposureTerm, sev.ExposureTerm},
				{"Penalty", dev.Penalty, sev.Penalty},
				{"U", dev.U, sev.U},
				{"DeltaC", dev.DeltaC, sev.DeltaC},
				{"EBar", dev.EBar, sev.EBar},
			} {
				if d := relDiff(q.d, q.s, uScale); d > sparseAgreeTol {
					t.Errorf("%s: dense %g vs sparse %g (rel %g)", q.name, q.d, q.s, d)
				}
			}

			gd, sd := dgrad.Data(), sgrad.Data()
			gScale := 1.0
			for _, v := range gd {
				if a := math.Abs(v); a > gScale {
					gScale = a
				}
			}
			worst := 0.0
			for i := range gd {
				if d := math.Abs(gd[i]-sd[i]) / gScale; d > worst {
					worst = d
				}
			}
			if worst > sparseAgreeTol {
				t.Fatalf("gradient max rel diff %g > %g", worst, sparseAgreeTol)
			}
		})
	}
}

// TestSparseGradientAbsorbingRowGuard exercises the PR 1 exposure guard
// on the sparse path: a doctored absorbing row must surface
// ErrNotErgodic from the sparse gradient assembly exactly as on the
// dense path.
func TestSparseGradientAbsorbingRowGuard(t *testing.T) {
	top := topology.Topology3()
	m, err := NewModel(top, Uniform(top.M(), 1, 1))
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	ws := m.NewWorkspace()
	ws.SetSolver(markov.MethodSparse)
	p := randomErgodicP(rng.New(31), top.M())
	ev, err := m.EvaluateIn(ws, p)
	if err != nil {
		t.Fatalf("EvaluateIn: %v", err)
	}
	if ev.Sol.Z2 != nil {
		t.Fatal("test setup: workspace did not take the sparse path")
	}
	if ev.EBarI[0] == 0 {
		t.Fatal("test setup: exposure term inactive for state 0")
	}
	n := top.M()
	for j := 0; j < n; j++ {
		ev.Sol.P.Set(0, j, 0)
	}
	ev.Sol.P.Set(0, 0, 1)
	grad, err := m.gradientInto(ws, ev)
	if !errors.Is(err, markov.ErrNotErgodic) {
		t.Fatalf("sparse gradientInto on absorbing row: err = %v, want ErrNotErgodic", err)
	}
	if grad != nil {
		t.Error("gradientInto returned a gradient alongside the error")
	}
}

// TestSparseEvaluateExtensions covers the §VII energy/entropy extensions
// on the sparse path (they read π and P, not Z², but must still agree).
func TestSparseEvaluateExtensions(t *testing.T) {
	top := topology.Topology2()
	w := Uniform(top.M(), 1, 1)
	w.EnergyWeight = 0.5
	w.EnergyTarget = 1
	w.EntropyWeight = 0.25
	m, err := NewModel(top, w)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	p := randomErgodicP(rng.New(77), top.M())
	dev, err := m.Evaluate(p)
	if err != nil {
		t.Fatalf("dense Evaluate: %v", err)
	}
	sws := m.NewWorkspace()
	sws.SetSolver(markov.MethodSparse)
	sev, err := m.EvaluateIn(sws, p)
	if err != nil {
		t.Fatalf("sparse EvaluateIn: %v", err)
	}
	scale := math.Max(1, math.Abs(dev.U))
	for _, q := range []struct {
		name string
		d, s float64
	}{
		{"EnergyTerm", dev.EnergyTerm, sev.EnergyTerm},
		{"EntropyTerm", dev.EntropyTerm, sev.EntropyTerm},
		{"U", dev.U, sev.U},
	} {
		if d := relDiff(q.d, q.s, scale); d > sparseAgreeTol {
			t.Errorf("%s: dense %g vs sparse %g (rel %g)", q.name, q.d, q.s, d)
		}
	}
}
