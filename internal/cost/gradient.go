package cost

import (
	"fmt"
	"math"

	"repro/internal/markov"
	"repro/internal/mat"
)

// Gradient evaluates the cost at p and returns the evaluation together
// with the unprojected gradient [D_P U] of Eq. 10:
//
//	[D_P U]_kl = Σ_i π_k z_li ∂U/∂π_i
//	           + Σ_ij ∂U/∂z_ij (z_ik z_lj − π_k (Z²)_lj)
//	           + ∂U/∂p_kl.
//
// The partials ∂U/∂π, ∂U/∂Z, ∂U/∂P treat π, Z and P as independent
// variables; the chain rule through π(P) and Z(P) is supplied by
// Schweitzer's perturbation formulas, which the tensor contractions above
// encode. Callers typically project the result with Project before
// stepping so the iterate stays row-stochastic.
//
// Each call builds fresh results; hot loops should hold a Workspace and
// call GradientIn, which reuses one set of buffers and is bit-for-bit
// identical.
func (m *Model) Gradient(p *mat.Matrix) (*Evaluation, *mat.Matrix, error) {
	return m.GradientIn(m.NewWorkspace(), p)
}

// gradientInto assembles [D_P U] from a completed evaluation into the
// workspace's gradient buffer. It performs no allocations on the success
// path.
func (m *Model) gradientInto(ws *Workspace, ev *Evaluation) (*mat.Matrix, error) {
	n := m.top.M()
	sol := ev.Sol
	p := sol.P

	ws.ensureGradient()
	dUdPi := ws.dUdPi
	for i := range dUdPi {
		dUdPi[i] = 0
	}
	dUdZ := ws.dUdZ
	dUdP := ws.dUdP
	dUdZ.Zero()
	dUdP.Zero()

	// --- Coverage term: ½ Σ_i α_i G_i². ---
	for i := 0; i < n; i++ {
		c := m.w.Alpha[i] * ev.G[i]
		if c == 0 {
			continue
		}
		ai := m.a[i]
		for j := 0; j < n; j++ {
			var rowDot float64 // Σ_k p_jk a^{(i)}_{jk}
			for k := 0; k < n; k++ {
				a := ai[j*n+k]
				rowDot += p.At(j, k) * a
				dUdP.Add(j, k, c*sol.Pi[j]*a)
			}
			dUdPi[j] += c * rowDot
		}
	}

	// --- Exposure term: ½ Σ_i β_i Ē_i². ---
	for i := 0; i < n; i++ {
		e := m.w.Beta[i] * ev.EBarI[i]
		if e == 0 {
			continue
		}
		denom := 1 - p.At(i, i)
		if denom <= 0 {
			// Same guard as Evaluate: a (numerically) absorbing row has no
			// finite exposure derivative, and dividing through would send
			// NaN/Inf into the line search. Normally unreachable because
			// Evaluate rejects such chains first, but gradientInto must not
			// trust that when handed a foreign Evaluation.
			return nil, fmt.Errorf("%w: p_%d%d = 1", markov.ErrNotErgodic, i, i)
		}
		pi := sol.Pi[i]
		dUdPi[i] -= e * ev.EBarI[i] / pi
		dUdZ.Add(i, i, e/pi)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dUdZ.Add(j, i, -e*p.At(i, j)/(pi*denom))
			dUdP.Add(i, j, e*(sol.Z.At(i, i)-sol.Z.At(j, i))/(pi*denom))
		}
		dUdP.Add(i, i, e*ev.EBarI[i]/denom)
	}

	// --- Barrier penalty. ---
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			if g := barrierDeriv(p.At(j, k), m.w.Epsilon); g != 0 {
				dUdP.Add(j, k, g)
			}
		}
	}

	// --- Energy extension: ½ w (D − γ)². ---
	if m.w.EnergyWeight > 0 {
		c := m.w.EnergyWeight * (ev.Energy - m.w.EnergyTarget)
		for i := 0; i < n; i++ {
			var rowDist float64
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				d := m.top.Distance(i, j)
				rowDist += p.At(i, j) * d
				dUdP.Add(i, j, c*sol.Pi[i]*d)
			}
			dUdPi[i] += c * rowDist
		}
	}

	// --- Entropy extension: −λ H. ---
	if m.w.EntropyWeight > 0 {
		lam := m.w.EntropyWeight
		for i := 0; i < n; i++ {
			var rowEnt float64 // Σ_j p_ij ln p_ij
			for j := 0; j < n; j++ {
				pij := p.At(i, j)
				if pij <= 0 {
					continue
				}
				lp := math.Log(pij)
				rowEnt += pij * lp
				dUdP.Add(i, j, lam*sol.Pi[i]*(lp+1))
			}
			dUdPi[i] += lam * rowEnt
		}
	}

	// --- Assemble Eq. 10 with O(M³) contractions. ---
	// term1_kl = π_k (Z·dUdPi)_l.
	if err := mat.MulVecTo(ws.q, sol.Z, dUdPi); err != nil {
		return nil, err
	}
	// term2a = Zᵀ · dUdZ · Zᵀ.
	if err := mat.TransposeTo(ws.zt, sol.Z); err != nil {
		return nil, err
	}
	if err := mat.MulTo(ws.tmp, dUdZ, ws.zt); err != nil {
		return nil, err
	}
	if err := mat.MulTo(ws.term2a, ws.zt, ws.tmp); err != nil {
		return nil, err
	}
	// term2b_kl = π_k (Z²·colsums(dUdZ))_l.
	colsum := ws.colsum
	for j := range colsum {
		colsum[j] = 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			colsum[j] += dUdZ.At(i, j)
		}
	}
	if err := mat.MulVecTo(ws.r, sol.Z2, colsum); err != nil {
		return nil, err
	}

	grad := ws.grad
	for k := 0; k < n; k++ {
		for l := 0; l < n; l++ {
			grad.Set(k, l, sol.Pi[k]*(ws.q[l]-ws.r[l])+ws.term2a.At(k, l)+dUdP.At(k, l))
		}
	}
	return grad, nil
}

// Project applies Eq. 11: it subtracts each row's mean so every row of the
// result sums to zero, making the negated result a feasible descent
// direction within the stochastic-matrix polytope's affine hull.
func Project(g *mat.Matrix) *mat.Matrix {
	out := mat.New(g.Rows(), g.Cols())
	ProjectTo(out, g)
	return out
}

// ProjectTo applies Eq. 11 into the caller-owned dst, which must share
// g's shape (dst == g is allowed: rows are rewritten after their mean is
// taken).
func ProjectTo(dst, g *mat.Matrix) {
	n := g.Rows()
	cols := g.Cols()
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < cols; j++ {
			sum += g.At(i, j)
		}
		mean := sum / float64(cols)
		for j := 0; j < cols; j++ {
			dst.Set(i, j, g.At(i, j)-mean)
		}
	}
}

// DirectionalDerivative returns ⟨[D_P U], V⟩, the rate of change of U
// along the perturbation direction V. For zero-row-sum V this equals
// d/dt U(P + tV) at t = 0, the property the finite-difference tests
// verify.
func DirectionalDerivative(grad, v *mat.Matrix) (float64, error) {
	return mat.FrobeniusInner(grad, v)
}
