package cost

import (
	"fmt"
	"math"

	"repro/internal/markov"
	"repro/internal/mat"
)

// Gradient evaluates the cost at p and returns the evaluation together
// with the unprojected gradient [D_P U] of Eq. 10:
//
//	[D_P U]_kl = Σ_i π_k z_li ∂U/∂π_i
//	           + Σ_ij ∂U/∂z_ij (z_ik z_lj − π_k (Z²)_lj)
//	           + ∂U/∂p_kl.
//
// The partials ∂U/∂π, ∂U/∂Z, ∂U/∂P treat π, Z and P as independent
// variables; the chain rule through π(P) and Z(P) is supplied by
// Schweitzer's perturbation formulas, which the tensor contractions above
// encode. Callers typically project the result with Project before
// stepping so the iterate stays row-stochastic.
//
// Each call builds fresh results; hot loops should hold a Workspace and
// call GradientIn, which reuses one set of buffers and is bit-for-bit
// identical.
func (m *Model) Gradient(p *mat.Matrix) (*Evaluation, *mat.Matrix, error) {
	return m.GradientIn(m.NewWorkspace(), p)
}

// minParallelRows is the matrix order below which the gradient assembly
// and its contractions stay on the direct single-span path even when the
// workspace has a multi-worker pool: the fork/join handshake costs more
// than the whole pass for tiny systems. The cutover does not affect
// results — both paths produce identical bits.
const minParallelRows = 8

// gradTask adapts the fused per-row gradient pass to the par.Task
// interface. It lives inside the Workspace so dispatching it converts a
// long-lived pointer to an interface without allocating.
type gradTask struct {
	m  *Model
	ws *Workspace
	ev *Evaluation
}

func (t *gradTask) Run(w, lo, hi int) {
	t.m.gradientRows(t.ws, t.ev, w, lo, hi)
}

// mulTask row-partitions a matrix product across the pool. Dimensions are
// validated once before dispatch, so Run can ignore the error return.
type mulTask struct {
	dst, a, b *mat.Matrix
}

func (t *mulTask) Run(w, lo, hi int) {
	_ = mat.MulToRows(t.dst, t.a, t.b, lo, hi)
}

// gradientInto assembles [D_P U] from a completed evaluation into the
// workspace's gradient buffer. It performs no allocations on the success
// path.
//
// The partial-derivative phases are row-partitioned: each worker owns rows
// [lo, hi) of dUdP and dUdPi and (through the exposure term's structure)
// columns [lo, hi) of dUdZ, so no two workers touch the same float64 slot
// and every slot receives its additions in exactly the serial order. That
// owner-computes split — rather than per-worker shards merged at the end —
// is what keeps the parallel gradient bit-for-bit identical to the serial
// one: merging shards would reassociate floating-point sums.
func (m *Model) gradientInto(ws *Workspace, ev *Evaluation) (*mat.Matrix, error) {
	return m.gradientIntoWith(ws, ev, nil, 0, nil)
}

// gradientIntoWith is gradientInto with optional objective-coupling
// overrides. A nil coverCoef selects the standard coverage coefficients
// c_i = α_i G_i (and coverPhi is ignored); a non-nil coverCoef supplies
// c_i directly together with the travel-time coefficient coverPhi =
// Σ_i c_i Φ̃_i for caller-chosen per-PoI targets Φ̃, and forces the
// target-independent cover-list coverage form regardless of solver
// backend. A nil beta selects the model's exposure weights; a non-nil
// beta overrides them per PoI. The standard call (nil, 0, nil) is
// bit-for-bit the historic gradient.
func (m *Model) gradientIntoWith(ws *Workspace, ev *Evaluation, coverCoef []float64, coverPhi float64, beta []float64) (*mat.Matrix, error) {
	n := m.top.M()
	sol := ev.Sol

	ws.ensureGradient()
	width := ws.pool.Workers()
	if n < minParallelRows {
		width = 1
	}
	ws.ensureWorkerScratch(width)

	dUdPi := ws.dUdPi
	for i := range dUdPi {
		dUdPi[i] = 0
	}
	ws.dUdZ.Zero()
	ws.dUdP.Zero()

	// Shared precompute: the coverage coefficients c_i = α_i G_i are read
	// by every worker (each row j folds over all i), so they are built once
	// up front rather than per worker.
	carr := ws.carr
	ws.anyCover = false
	if coverCoef == nil {
		for i := 0; i < n; i++ {
			c := m.w.Alpha[i] * ev.G[i]
			carr[i] = c
			if c != 0 {
				ws.anyCover = true
			}
		}
	} else {
		for i := 0; i < n; i++ {
			c := coverCoef[i]
			carr[i] = c
			if c != 0 {
				ws.anyCover = true
			}
		}
	}
	if beta == nil {
		beta = m.w.Beta
	}
	ws.beta = beta
	// Sparse solutions (Z² elided) flip the coverage partials to the
	// cover-list form and the Eq. 10 contractions to factor solves. A
	// caller-supplied coverCoef always uses the cover-list form: the lists
	// are target-independent, which is what lets the override carry its own
	// Φ̃ through coverPhi.
	sparseMode := sol.Z2 == nil
	ws.sparseCover = sparseMode || coverCoef != nil
	if ws.sparseCover && ws.anyCover {
		if coverCoef == nil {
			var cphi float64 // Σ_i c_i Φ_i, the travel-time coefficient
			for i := 0; i < n; i++ {
				cphi += carr[i] * m.top.TargetAt(i)
			}
			ws.cphi = cphi
		} else {
			ws.cphi = coverPhi
		}
		m.coverLists() // build outside the worker fan-out
	}
	for w := 0; w < width; w++ {
		ws.errIdx[w] = -1
	}

	ws.gtask.m = m
	ws.gtask.ws = ws
	ws.gtask.ev = ev
	if width == 1 {
		ws.gtask.Run(0, 0, n)
	} else {
		ws.pool.Run(n, &ws.gtask)
	}

	// An absorbing row aborts a worker mid-span. The smallest recorded
	// index is the first row the serial loop would have rejected, so the
	// error is identical either way.
	errAt := -1
	for w := 0; w < width; w++ {
		if i := ws.errIdx[w]; i >= 0 && (errAt < 0 || i < errAt) {
			errAt = i
		}
	}
	if errAt >= 0 {
		// Same guard as Evaluate: a (numerically) absorbing row has no
		// finite exposure derivative, and dividing through would send
		// NaN/Inf into the line search. Normally unreachable because
		// Evaluate rejects such chains first, but gradientInto must not
		// trust that when handed a foreign Evaluation.
		return nil, fmt.Errorf("%w: p_%d%d = 1", markov.ErrNotErgodic, errAt, errAt)
	}

	// --- Assemble Eq. 10 contractions. ---
	// term1_kl = π_k (Z·dUdPi)_l.
	if err := mat.MulVecTo(ws.q, sol.Z, dUdPi); err != nil {
		return nil, err
	}
	// term2a = Zᵀ · dUdZ · Zᵀ. On the dense path the two O(M³) products
	// dominate the assembly cost and row-partition cleanly (row i of a
	// product depends only on row i of its left factor), so they run on
	// the pool. On the sparse path the left product is cheap anyway —
	// dUdZ only has entries on the exposure support, and MulTo skips zero
	// left-factor entries — and the right product is replaced by one
	// blocked M-rhs transpose solve against the sparse factorization
	// (Zᵀ = A⁻ᵀ), which costs factor fill per column instead of M² and
	// streams the factor once. The multi-RHS block layout (rhs r in
	// column r) coincides with the matrices' own row-major layout, so
	// tmp solves straight into term2a with no gather/scatter.
	if err := mat.TransposeTo(ws.zt, sol.Z); err != nil {
		return nil, err
	}
	if err := ws.mulRows(ws.tmp, ws.dUdZ, ws.zt, width); err != nil {
		return nil, err
	}
	if sf := sol.Sparse(); sparseMode && sf != nil {
		if err := sf.SolveTransposeMulti(ws.term2a.Data(), ws.tmp.Data(), n); err != nil {
			return nil, err
		}
	} else if err := ws.mulRows(ws.term2a, ws.zt, ws.tmp, width); err != nil {
		return nil, err
	}
	// term2b_kl = π_k (Z²·colsums(dUdZ))_l.
	colsum := ws.colsum
	for j := range colsum {
		colsum[j] = 0
	}
	dzd := ws.dUdZ.Data()
	for i := 0; i < n; i++ {
		row := dzd[i*n : (i+1)*n]
		for j, v := range row {
			colsum[j] += v
		}
	}
	if sol.Z2 == nil {
		// Z² was elided: fold the vector through Z twice instead.
		if err := mat.MulVecTo(ws.r2, sol.Z, colsum); err != nil {
			return nil, err
		}
		if err := mat.MulVecTo(ws.r, sol.Z, ws.r2); err != nil {
			return nil, err
		}
	} else if err := mat.MulVecTo(ws.r, sol.Z2, colsum); err != nil {
		return nil, err
	}

	gd := ws.grad.Data()
	t2d := ws.term2a.Data()
	dpd := ws.dUdP.Data()
	q, r := ws.q, ws.r
	for k := 0; k < n; k++ {
		pik := sol.Pi[k]
		grow := gd[k*n : (k+1)*n]
		t2row := t2d[k*n : (k+1)*n]
		dprow := dpd[k*n : (k+1)*n]
		for l := range grow {
			grow[l] = pik*(q[l]-r[l]) + t2row[l] + dprow[l]
		}
	}
	return ws.grad, nil
}

// mulRows runs dst = a·b, on the pool when it is wide enough to pay off.
func (ws *Workspace) mulRows(dst, a, b *mat.Matrix, width int) error {
	if width <= 1 {
		return mat.MulTo(dst, a, b)
	}
	// Validate dimensions once with an empty span so the per-span calls
	// inside the workers cannot fail.
	if err := mat.MulToRows(dst, a, b, 0, 0); err != nil {
		return err
	}
	ws.mtask.dst, ws.mtask.a, ws.mtask.b = dst, a, b
	ws.pool.Run(a.Rows(), &ws.mtask)
	return nil
}

// gradientRows accumulates every partial-derivative term owned by rows
// [lo, hi): rows of dUdP and dUdPi, plus columns [lo, hi) of dUdZ (the
// exposure term writes column i while processing row i). w names the
// worker's scratch slot.
//
// Bit-for-bit discipline: each dUdP/dUdPi/dUdZ slot must see exactly the
// additions of the serial i-outer loops, in the same order, with the same
// expression shapes. The coverage term is the delicate one — the serial
// loop is i-outer (over objectives) with rows inside, while this pass is
// row-outer — but per slot the accumulation still folds over ascending i,
// so the reordering changes which slots are interleaved, never the order
// within a slot. The zero-coefficient skip (c_i = 0) is preserved exactly:
// adding 0.0 is not a bitwise no-op (−0.0 + 0.0 = +0.0).
func (m *Model) gradientRows(ws *Workspace, ev *Evaluation, w, lo, hi int) {
	n := m.top.M()
	sol := ev.Sol
	pd := sol.P.Data()
	dpd := ws.dUdP.Data()
	dUdPi := ws.dUdPi
	carr := ws.carr

	// --- Coverage term: ½ Σ_i α_i G_i². ---
	switch {
	case ws.anyCover && ws.sparseCover:
		// Sparse form: S_jk = Σ_i c_i T_{jk,i} − (Σ_i c_i Φ_i)·T_jk, so
		// dUdP_jk = π_j S_jk and the dUdPi fold is Σ_k p_jk S_jk. The
		// per-(j,k) dot runs over the nonzero cover list instead of all M
		// PoIs, and the M³ at table is never touched.
		covPtr, covIdx, covVal := m.covPtr, m.covIdx, m.covVal
		cphi := ws.cphi
		for j := lo; j < hi; j++ {
			pij := sol.Pi[j]
			prow := pd[j*n : (j+1)*n]
			dprow := dpd[j*n : (j+1)*n]
			var acc float64
			for k := 0; k < n; k++ {
				slot := j*n + k
				var s float64
				for t := covPtr[slot]; t < covPtr[slot+1]; t++ {
					s += carr[covIdx[t]] * covVal[t]
				}
				s -= cphi * m.travel[slot]
				dprow[k] = pij * s
				if pjk := prow[k]; pjk != 0 {
					acc += pjk * s
				}
			}
			dUdPi[j] = acc
		}
	case ws.anyCover:
		at := m.atTable()
		rowAcc := ws.rowAcc[w]
		cpj := ws.cpj[w]
		for j := lo; j < hi; j++ {
			pij := sol.Pi[j]
			prow := pd[j*n : (j+1)*n]
			dprow := dpd[j*n : (j+1)*n]
			for i := 0; i < n; i++ {
				rowAcc[i] = 0
				cpj[i] = carr[i] * pij // (c·π_j), the serial c*sol.Pi[j]
			}
			for k := 0; k < n; k++ {
				pjk := prow[k]
				arow := at[(j*n+k)*n : (j*n+k+1)*n]
				var s float64 // the dUdP_jk fold over ascending i
				for i := 0; i < n; i++ {
					if carr[i] == 0 {
						continue
					}
					a := arow[i]
					s += cpj[i] * a
					rowAcc[i] += pjk * a // rowDot_i folds over ascending k
				}
				dprow[k] = s
			}
			var acc float64
			for i := 0; i < n; i++ {
				if carr[i] == 0 {
					continue
				}
				acc += carr[i] * rowAcc[i]
			}
			dUdPi[j] = acc
		}
	}

	// --- Exposure term: ½ Σ_i β_i Ē_i². ---
	// Row i contributes to row i of dUdP, entry i of dUdPi, and column i of
	// dUdZ — all owned by this span, so no other worker races these writes.
	dzd := ws.dUdZ.Data()
	zd := sol.Z.Data()
	beta := ws.beta
	for i := lo; i < hi; i++ {
		e := beta[i] * ev.EBarI[i]
		if e == 0 {
			continue
		}
		prow := pd[i*n : (i+1)*n]
		denom := 1 - prow[i]
		if denom <= 0 {
			ws.errIdx[w] = i
			return
		}
		pii := sol.Pi[i]
		dUdPi[i] -= e * ev.EBarI[i] / pii
		dzd[i*n+i] += e / pii
		zii := zd[i*n+i]
		pidenom := pii * denom
		dprow := dpd[i*n : (i+1)*n]
		ne := -e
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dzd[j*n+i] += ne * prow[j] / pidenom
			dprow[j] += e * (zii - zd[j*n+i]) / pidenom
		}
		dprow[i] += e * ev.EBarI[i] / denom
	}

	// --- Barrier penalty. ---
	eps := m.w.Epsilon
	for j := lo; j < hi; j++ {
		prow := pd[j*n : (j+1)*n]
		dprow := dpd[j*n : (j+1)*n]
		for k := 0; k < n; k++ {
			if g := barrierDeriv(prow[k], eps); g != 0 {
				dprow[k] += g
			}
		}
	}

	// --- Energy extension: ½ w (D − γ)². ---
	if m.w.EnergyWeight > 0 {
		c := m.w.EnergyWeight * (ev.Energy - m.w.EnergyTarget)
		for i := lo; i < hi; i++ {
			prow := pd[i*n : (i+1)*n]
			dprow := dpd[i*n : (i+1)*n]
			drow := m.top.DistanceRow(i)
			cpi := c * sol.Pi[i]
			var rowDist float64
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				d := drow[j]
				rowDist += prow[j] * d
				dprow[j] += cpi * d
			}
			dUdPi[i] += c * rowDist
		}
	}

	// --- Entropy extension: −λ H. ---
	if m.w.EntropyWeight > 0 {
		lam := m.w.EntropyWeight
		for i := lo; i < hi; i++ {
			prow := pd[i*n : (i+1)*n]
			dprow := dpd[i*n : (i+1)*n]
			lpi := lam * sol.Pi[i]
			var rowEnt float64 // Σ_j p_ij ln p_ij
			for j := 0; j < n; j++ {
				pij := prow[j]
				if pij <= 0 {
					continue
				}
				lp := math.Log(pij)
				rowEnt += pij * lp
				dprow[j] += lpi * (lp + 1)
			}
			dUdPi[i] += lam * rowEnt
		}
	}
}

// Project applies Eq. 11: it subtracts each row's mean so every row of the
// result sums to zero, making the negated result a feasible descent
// direction within the stochastic-matrix polytope's affine hull.
func Project(g *mat.Matrix) *mat.Matrix {
	out := mat.New(g.Rows(), g.Cols())
	ProjectTo(out, g)
	return out
}

// ProjectTo applies Eq. 11 into the caller-owned dst, which must share
// g's shape (dst == g is allowed: rows are rewritten after their mean is
// taken).
func ProjectTo(dst, g *mat.Matrix) {
	n := g.Rows()
	cols := g.Cols()
	gd := g.Data()
	dd := dst.Data()
	for i := 0; i < n; i++ {
		grow := gd[i*cols : (i+1)*cols]
		var sum float64
		for _, v := range grow {
			sum += v
		}
		mean := sum / float64(cols)
		drow := dd[i*cols : (i+1)*cols]
		for j, v := range grow {
			drow[j] = v - mean
		}
	}
}

// DirectionalDerivative returns ⟨[D_P U], V⟩, the rate of change of U
// along the perturbation direction V. For zero-row-sum V this equals
// d/dt U(P + tV) at t = 0, the property the finite-difference tests
// verify.
func DirectionalDerivative(grad, v *mat.Matrix) (float64, error) {
	return mat.FrobeniusInner(grad, v)
}
