package cost

import (
	"repro/internal/markov"
	"repro/internal/mat"
)

// Workspace owns every buffer one evaluation/gradient pass needs: the
// Markov solver's π/Z/Z²/R storage, the Evaluation result slices, and the
// scratch matrices of the Eq. 10 contractions. With a Workspace, a model's
// EvaluateIn and GradientIn perform zero allocations in steady state —
// the property the descent hot loop (dozens of evaluations per line
// search) depends on.
//
// A Workspace is not safe for concurrent use: the Evaluation and gradient
// returned by EvaluateIn/GradientIn alias its buffers and are overwritten
// by the next call. Give each goroutine its own Workspace (descent gives
// one to every Optimizer, so RunManyParallel workers never share);
// Evaluation.Clone detaches a result that must survive longer.
type Workspace struct {
	n        int
	solver   *markov.Solver
	ev       Evaluation
	coverNum []float64

	// Gradient scratch, allocated on first GradientIn so evaluate-only
	// workspaces stay small.
	dUdPi  []float64
	colsum []float64
	q      []float64
	r      []float64
	dUdZ   *mat.Matrix
	dUdP   *mat.Matrix
	zt     *mat.Matrix
	tmp    *mat.Matrix
	term2a *mat.Matrix
	grad   *mat.Matrix
}

// NewWorkspace returns a Workspace sized for the model's topology.
func (m *Model) NewWorkspace() *Workspace {
	n := m.top.M()
	return &Workspace{
		n:      n,
		solver: markov.NewSolver(n),
		ev: Evaluation{
			G:     make([]float64, n),
			CBar:  make([]float64, n),
			EBarI: make([]float64, n),
		},
		coverNum: make([]float64, n),
	}
}

// ensureGradient lazily allocates the gradient-side scratch.
func (ws *Workspace) ensureGradient() {
	if ws.grad != nil {
		return
	}
	n := ws.n
	ws.dUdPi = make([]float64, n)
	ws.colsum = make([]float64, n)
	ws.q = make([]float64, n)
	ws.r = make([]float64, n)
	ws.dUdZ = mat.New(n, n)
	ws.dUdP = mat.New(n, n)
	ws.zt = mat.New(n, n)
	ws.tmp = mat.New(n, n)
	ws.term2a = mat.New(n, n)
	ws.grad = mat.New(n, n)
}

// EvaluateIn computes the full cost breakdown at p using the workspace's
// buffers. The returned Evaluation (including its Sol) aliases the
// workspace and is valid until the workspace's next use; Clone it to keep
// it longer. Results are bit-for-bit identical to Evaluate.
func (m *Model) EvaluateIn(ws *Workspace, p *mat.Matrix) (*Evaluation, error) {
	sol, err := ws.solver.Solve(p)
	if err != nil {
		return nil, err
	}
	if err := m.evaluateInto(&ws.ev, ws.coverNum, sol); err != nil {
		return nil, err
	}
	return &ws.ev, nil
}

// GradientIn evaluates the cost and assembles the unprojected Eq. 10
// gradient using the workspace's buffers. Both returned values alias the
// workspace and are valid until its next use. Results are bit-for-bit
// identical to Gradient.
func (m *Model) GradientIn(ws *Workspace, p *mat.Matrix) (*Evaluation, *mat.Matrix, error) {
	ev, err := m.EvaluateIn(ws, p)
	if err != nil {
		return nil, nil, err
	}
	g, err := m.gradientInto(ws, ev)
	if err != nil {
		return nil, nil, err
	}
	return ev, g, nil
}

// Clone returns a deep copy of the Evaluation, detached from any
// workspace buffers backing it.
func (ev *Evaluation) Clone() *Evaluation {
	out := *ev
	out.G = append([]float64(nil), ev.G...)
	out.CBar = append([]float64(nil), ev.CBar...)
	out.EBarI = append([]float64(nil), ev.EBarI...)
	if ev.Sol != nil {
		out.Sol = ev.Sol.Clone()
	}
	return &out
}
