package cost

import (
	"repro/internal/markov"
	"repro/internal/mat"
	"repro/internal/par"
)

// Workspace owns every buffer one evaluation/gradient pass needs: the
// Markov solver's π/Z/Z²/R storage, the Evaluation result slices, and the
// scratch matrices of the Eq. 10 contractions. With a Workspace, a model's
// EvaluateIn and GradientIn perform zero allocations in steady state —
// the property the descent hot loop (dozens of evaluations per line
// search) depends on.
//
// A Workspace is not safe for concurrent use: the Evaluation and gradient
// returned by EvaluateIn/GradientIn alias its buffers and are overwritten
// by the next call. Give each goroutine its own Workspace (descent gives
// one to every Optimizer, so RunManyParallel workers never share);
// Evaluation.Clone detaches a result that must survive longer.
type Workspace struct {
	n        int
	solver   *markov.Solver
	ev       Evaluation
	coverNum []float64

	// pool, when set, row-partitions the gradient phases and the Eq. 10
	// matrix products across its workers. Results are bit-for-bit
	// identical with any pool width, including none.
	pool *par.Pool

	// Gradient scratch, allocated on first GradientIn so evaluate-only
	// workspaces stay small.
	dUdPi  []float64
	colsum []float64
	q      []float64
	r      []float64
	r2     []float64 // Z·colsum staging when Z² is elided (sparse path)
	carr   []float64 // coverage coefficients c_i = α_i G_i
	// Sparse-path coverage state for the current gradient pass.
	sparseCover bool
	cphi        float64 // Σ_i c_i Φ_i
	// beta is the exposure-weight vector the current gradient pass reads:
	// the model's own β on the standard path, a caller override on the
	// weighted path (the fleet layer masks β to the argmin sensor).
	beta   []float64
	dUdZ   *mat.Matrix
	dUdP   *mat.Matrix
	zt     *mat.Matrix
	tmp    *mat.Matrix
	term2a *mat.Matrix
	grad   *mat.Matrix

	// Per-worker gradient scratch, sized to the pool width on first use.
	anyCover bool
	errIdx   []int
	rowAcc   [][]float64
	cpj      [][]float64
	gtask    gradTask
	mtask    mulTask
}

// NewWorkspace returns a Workspace sized for the model's topology.
func (m *Model) NewWorkspace() *Workspace {
	n := m.top.M()
	return &Workspace{
		n:      n,
		solver: markov.NewSolver(n),
		ev: Evaluation{
			G:         make([]float64, n),
			CBar:      make([]float64, n),
			EBarI:     make([]float64, n),
			CoverTime: make([]float64, n),
		},
		coverNum: make([]float64, n),
	}
}

// SetPool attaches a worker pool for the gradient assembly. A nil pool
// (the default) keeps the whole pass on the calling goroutine. The
// workspace does not own the pool; the caller stops it.
func (ws *Workspace) SetPool(p *par.Pool) {
	ws.pool = p
}

// SetSolver selects the markov backend for the workspace's chain solves.
// markov.MethodDense (the default) is the bit-exact reference;
// markov.MethodSparse trades bit-identity for factor-fill scaling at
// city-size M, agreeing with the dense results to markov.SparseTol (and
// transparently falling back to dense on near-singular systems).
func (ws *Workspace) SetSolver(method markov.Method) {
	ws.solver.SetMethod(method)
}

// Solver returns the workspace's current markov backend.
func (ws *Workspace) Solver() markov.Method { return ws.solver.Method() }

// ensureGradient lazily allocates the gradient-side scratch.
func (ws *Workspace) ensureGradient() {
	if ws.grad != nil {
		return
	}
	n := ws.n
	ws.dUdPi = make([]float64, n)
	ws.colsum = make([]float64, n)
	ws.q = make([]float64, n)
	ws.r = make([]float64, n)
	ws.r2 = make([]float64, n)
	ws.carr = make([]float64, n)
	ws.dUdZ = mat.New(n, n)
	ws.dUdP = mat.New(n, n)
	ws.zt = mat.New(n, n)
	ws.tmp = mat.New(n, n)
	ws.term2a = mat.New(n, n)
	ws.grad = mat.New(n, n)
}

// ensureWorkerScratch sizes the per-worker slots for the given pool
// width. Widths only ever grow, so steady-state calls allocate nothing.
func (ws *Workspace) ensureWorkerScratch(width int) {
	if len(ws.errIdx) >= width {
		return
	}
	ws.errIdx = make([]int, width)
	ws.rowAcc = make([][]float64, width)
	ws.cpj = make([][]float64, width)
	for w := 0; w < width; w++ {
		ws.rowAcc[w] = make([]float64, ws.n)
		ws.cpj[w] = make([]float64, ws.n)
	}
}

// EvaluateIn computes the full cost breakdown at p using the workspace's
// buffers. The returned Evaluation (including its Sol) aliases the
// workspace and is valid until the workspace's next use; Clone it to keep
// it longer. Results are bit-for-bit identical to Evaluate.
func (m *Model) EvaluateIn(ws *Workspace, p *mat.Matrix) (*Evaluation, error) {
	sol, err := ws.solver.Solve(p)
	if err != nil {
		return nil, err
	}
	if err := m.evaluateInto(&ws.ev, ws.coverNum, sol); err != nil {
		return nil, err
	}
	return &ws.ev, nil
}

// GradientIn evaluates the cost and assembles the unprojected Eq. 10
// gradient using the workspace's buffers. Both returned values alias the
// workspace and are valid until its next use. Results are bit-for-bit
// identical to Gradient.
func (m *Model) GradientIn(ws *Workspace, p *mat.Matrix) (*Evaluation, *mat.Matrix, error) {
	ev, err := m.EvaluateIn(ws, p)
	if err != nil {
		return nil, nil, err
	}
	g, err := m.gradientInto(ws, ev)
	if err != nil {
		return nil, nil, err
	}
	return ev, g, nil
}

// GradientSolvedIn assembles the Eq. 10 gradient from an evaluation the
// workspace already holds: ev must be the value returned by this
// workspace's most recent EvaluateIn (or GradientIn), with no workspace
// use in between. It skips the O(M³) Markov re-solve that GradientIn
// would repeat — the descent loops use it to reuse the accepted
// line-search probe's solution for the next iteration's gradient. The
// result is bit-for-bit identical to calling GradientIn at the same
// matrix, because EvaluateIn is deterministic: re-solving would rebuild
// exactly the doubles ev already holds.
func (m *Model) GradientSolvedIn(ws *Workspace, ev *Evaluation) (*mat.Matrix, error) {
	return m.gradientInto(ws, ev)
}

// GradientWeightedSolvedIn is GradientSolvedIn with caller-supplied
// objective couplings: coverCoef replaces the coverage coefficients
// c_i = α_i G_i (with coverPhi = Σ_i c_i Φ̃_i for the caller's per-PoI
// targets Φ̃), and beta replaces the model's exposure weights. Either may
// be nil to keep the model's own term. The barrier, energy, and entropy
// partials are unchanged. The fleet layer uses this to assemble each
// sensor's slice of the stacked joint gradient: the coverage coupling
// c_i = α_i G_i^fleet with responsibility-scaled targets, and β masked to
// the PoIs whose min-over-sensors exposure this sensor owns. Like
// GradientSolvedIn, ev must be this workspace's most recent evaluation.
func (m *Model) GradientWeightedSolvedIn(ws *Workspace, ev *Evaluation, coverCoef []float64, coverPhi float64, beta []float64) (*mat.Matrix, error) {
	return m.gradientIntoWith(ws, ev, coverCoef, coverPhi, beta)
}

// Clone returns a deep copy of the Evaluation, detached from any
// workspace buffers backing it.
func (ev *Evaluation) Clone() *Evaluation {
	out := *ev
	out.G = append([]float64(nil), ev.G...)
	out.CBar = append([]float64(nil), ev.CBar...)
	out.EBarI = append([]float64(nil), ev.EBarI...)
	out.CoverTime = append([]float64(nil), ev.CoverTime...)
	if ev.Sol != nil {
		out.Sol = ev.Sol.Clone()
	}
	return &out
}
