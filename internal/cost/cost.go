// Package cost implements the paper's multi-objective cost function U_ε
// (Eq. 9) over Markov transition matrices, together with its exact
// analytic gradient in transition-probability space (Eq. 10) and the
// projection onto the stochastic-matrix tangent space (Eq. 11).
//
// The cost combines:
//
//   - the coverage-time deviation term ½ Σ_i α_i G_i² with
//     G_i = Σ_{j,k} π_j p_jk (T_{jk,i} − Φ_i T_jk),
//   - the exposure-time term ½ Σ_i β_i Ē_i² with
//     Ē_i = Σ_{j≠i} p_ij R_ji / (1 − p_ii) (Eq. 3),
//   - a log-barrier penalty keeping every p_ij inside (0, 1) (Eq. 9),
//   - optional §VII extensions: an energy term ½ w_D (D − γ)² on the mean
//     travel distance per transition, and an entropy reward −λH on the
//     chain's entropy rate.
//
// All π-, Z- and R-dependent quantities come from package markov.
package cost

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/markov"
	"repro/internal/mat"
	"repro/internal/topology"
)

// ErrWeights indicates an invalid Weights configuration.
var ErrWeights = errors.New("cost: invalid weights")

// DefaultEpsilon is the paper's barrier width (ε = 0.0001 throughout §VI).
const DefaultEpsilon = 1e-4

// Weights configures the relative importance of the objectives.
type Weights struct {
	// Alpha are the per-PoI coverage-deviation weights α_i.
	Alpha []float64
	// Beta are the per-PoI exposure weights β_i.
	Beta []float64
	// Epsilon is the barrier width ε of Eq. 9; DefaultEpsilon if zero.
	Epsilon float64

	// EnergyWeight enables the §VII energy objective ½·w·(D − EnergyTarget)²
	// when positive, where D = Σ_i π_i Σ_{j≠i} p_ij d_ij is the mean travel
	// distance per transition.
	EnergyWeight float64
	// EnergyTarget is the prescribed mean movement γ.
	EnergyTarget float64

	// EntropyWeight λ adds −λ·H to the cost when positive, rewarding
	// unpredictable schedules (§VII).
	EntropyWeight float64
}

// Uniform returns Weights with α_i = alpha and β_i = beta for all m PoIs,
// the configuration used throughout the paper's evaluation (§VI).
func Uniform(m int, alpha, beta float64) Weights {
	w := Weights{
		Alpha:   make([]float64, m),
		Beta:    make([]float64, m),
		Epsilon: DefaultEpsilon,
	}
	for i := 0; i < m; i++ {
		w.Alpha[i] = alpha
		w.Beta[i] = beta
	}
	return w
}

// validate checks the weights against the number of PoIs.
func (w *Weights) validate(m int) error {
	if len(w.Alpha) != m || len(w.Beta) != m {
		return fmt.Errorf("%w: %d alphas and %d betas for %d PoIs",
			ErrWeights, len(w.Alpha), len(w.Beta), m)
	}
	for i := 0; i < m; i++ {
		if w.Alpha[i] < 0 || w.Beta[i] < 0 {
			return fmt.Errorf("%w: negative weight at PoI %d", ErrWeights, i)
		}
	}
	if w.Epsilon < 0 || w.Epsilon >= 0.5 {
		return fmt.Errorf("%w: epsilon %v outside [0, 0.5)", ErrWeights, w.Epsilon)
	}
	if w.EnergyWeight < 0 || w.EntropyWeight < 0 {
		return fmt.Errorf("%w: negative extension weight", ErrWeights)
	}
	return nil
}

// Model evaluates U_ε and its gradient for a fixed topology and weights.
type Model struct {
	top *topology.Topology
	w   Weights
	// at[(j*m+k)*m+i] = T_{jk,i} − Φ_i·T_jk, the per-PoI coverage
	// discrepancy coefficients. The layout is transition-major with the
	// PoI index i contiguous, so the O(M³) coverage loops in evaluateInto
	// and gradientRows stream the innermost dimension instead of striding
	// by M². Built lazily on first dense-path use (see atTable): the
	// sparse path never touches it, which at city scale (M = 512 the
	// table is M³ doubles ≈ 1 GiB) is most of that path's memory win.
	at     []float64
	atOnce sync.Once
	// travelRow[j*m+k] = T_jk for the denominator of C̄.
	travel []float64

	// Sparse coverage lists: for transition slot j*m+k, the PoIs with
	// nonzero cover time live in covIdx/covVal[covPtr[j*m+k]:covPtr[j*m+k+1]].
	// Geometric topologies cover only the PoIs near the j→k path, so these
	// lists hold a small multiple of M² entries where the at table holds
	// M³. Built lazily on first sparse-path gradient (see coverLists).
	covPtr  []int
	covIdx  []int32
	covVal  []float64
	covOnce sync.Once
}

// NewModel validates the weights and precomputes the coverage coefficient
// tables for the topology.
func NewModel(top *topology.Topology, w Weights) (*Model, error) {
	m := top.M()
	if err := w.validate(m); err != nil {
		return nil, err
	}
	if w.Epsilon == 0 {
		w.Epsilon = DefaultEpsilon
	}
	// Copy the weight slices so later caller mutation cannot corrupt the
	// model.
	w.Alpha = append([]float64(nil), w.Alpha...)
	w.Beta = append([]float64(nil), w.Beta...)

	mod := &Model{
		top:    top,
		w:      w,
		travel: make([]float64, m*m),
	}
	for j := 0; j < m; j++ {
		for k := 0; k < m; k++ {
			mod.travel[j*m+k] = top.TravelTime(j, k)
		}
	}
	return mod, nil
}

// atTable returns the dense coverage-coefficient table, building it on
// first use (safe under concurrent gradient workers). Each entry is
// computed with the same expression the eager constructor used, so the
// table holds the same doubles as always — the laziness cannot move any
// bits on the dense path; it only lets the sparse path skip the build.
func (m *Model) atTable() []float64 {
	m.atOnce.Do(func() {
		n := m.top.M()
		at := make([]float64, n*n*n)
		for i := 0; i < n; i++ {
			phi := m.top.TargetAt(i)
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					at[(j*n+k)*n+i] = m.top.CoverTime(j, k, i) - phi*m.top.TravelTime(j, k)
				}
			}
		}
		m.at = at
	})
	return m.at
}

// coverLists returns the sparse per-transition cover lists, scanning the
// topology's cover table once on first use.
func (m *Model) coverLists() ([]int, []int32, []float64) {
	m.covOnce.Do(func() {
		n := m.top.M()
		ptr := make([]int, n*n+1)
		var idx []int32
		var val []float64
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				for i, v := range m.top.CoverRow(j, k) {
					if v != 0 {
						idx = append(idx, int32(i))
						val = append(val, v)
					}
				}
				ptr[j*n+k+1] = len(val)
			}
		}
		m.covPtr, m.covIdx, m.covVal = ptr, idx, val
	})
	return m.covPtr, m.covIdx, m.covVal
}

// Topology returns the model's topology.
func (m *Model) Topology() *topology.Topology { return m.top }

// Weights returns a copy of the model's weights.
func (m *Model) Weights() Weights {
	w := m.w
	w.Alpha = append([]float64(nil), w.Alpha...)
	w.Beta = append([]float64(nil), w.Beta...)
	return w
}

// Evaluation is the full breakdown of the cost at one transition matrix.
type Evaluation struct {
	// U is the total penalized cost U_ε (Eq. 9), the optimizer objective.
	U float64
	// Objective is U without the barrier penalty — the "real" cost of
	// Eq. 4 plus any enabled extensions.
	Objective float64

	// CoverageTerm is ½ Σ_i α_i G_i².
	CoverageTerm float64
	// ExposureTerm is ½ Σ_i β_i Ē_i².
	ExposureTerm float64
	// Penalty is the barrier contribution.
	Penalty float64
	// EnergyTerm is ½ w_D (D − γ)² (zero when disabled).
	EnergyTerm float64
	// EntropyTerm is −λH (zero when disabled).
	EntropyTerm float64

	// DeltaC is the paper's coverage-time deviation metric Σ_i G_i²
	// (Eq. 12, weight-free).
	DeltaC float64
	// EBar is the paper's aggregate exposure metric sqrt(Σ_i Ē_i²)
	// (Eq. 13).
	EBar float64
	// G are the raw per-PoI coverage discrepancies G_i.
	G []float64
	// CBar is the achieved coverage-time distribution C̄_i (Eq. 2).
	CBar []float64
	// EBarI are the per-PoI mean exposure times Ē_i (Eq. 3).
	EBarI []float64
	// CoverTime is the raw coverage numerator Σ_{j,k} π_j p_jk T_{jk,i}
	// per PoI (CBar's numerator before normalization). Together with
	// TotalTime it lets a caller rebuild G against any target vector:
	// G_i(Φ') = CoverTime_i − Φ'_i·TotalTime — the identity the fleet
	// layer uses to give each sensor its own responsibility-scaled target
	// without a per-sensor cost model.
	CoverTime []float64
	// TotalTime is Σ_{j,k} π_j p_jk T_jk, the mean time per transition.
	TotalTime float64
	// Energy is the mean travel distance per transition D (§VII).
	Energy float64
	// Entropy is the chain's entropy rate H (§VII).
	Entropy float64

	// Sol carries the chain solution (π, Z, R) the evaluation used.
	Sol *markov.Solution
}

// Evaluate computes the full cost breakdown at transition matrix p.
// It returns markov.ErrNotErgodic if the chain has no limiting behavior.
//
// Each call builds a fresh result; hot loops should hold a Workspace and
// call EvaluateIn, which reuses one set of buffers across calls and is
// bit-for-bit identical.
func (m *Model) Evaluate(p *mat.Matrix) (*Evaluation, error) {
	return m.EvaluateIn(m.NewWorkspace(), p)
}

// EvaluateSolved computes the cost breakdown from an existing chain
// solution, avoiding a re-solve when the caller already has one.
func (m *Model) EvaluateSolved(sol *markov.Solution) (*Evaluation, error) {
	n := m.top.M()
	ev := &Evaluation{
		G:         make([]float64, n),
		CBar:      make([]float64, n),
		EBarI:     make([]float64, n),
		CoverTime: make([]float64, n),
	}
	if err := m.evaluateInto(ev, make([]float64, n), sol); err != nil {
		return nil, err
	}
	return ev, nil
}

// evaluateInto fills ev (whose G/CBar/EBarI slices must be sized to the
// topology) with the cost breakdown at sol, using coverNum as scratch. It
// performs no allocations on the success path.
func (m *Model) evaluateInto(ev *Evaluation, coverNum []float64, sol *markov.Solution) error {
	n := m.top.M()
	if len(sol.Pi) != n {
		return fmt.Errorf("%w: solution for %d states, topology has %d",
			ErrWeights, len(sol.Pi), n)
	}
	g, cb, eb, ct := ev.G, ev.CBar, ev.EBarI, ev.CoverTime
	if ct == nil {
		ct = make([]float64, n)
	}
	*ev = Evaluation{Sol: sol, G: g, CBar: cb, EBarI: eb, CoverTime: ct}
	for i := 0; i < n; i++ {
		g[i], cb[i], eb[i], coverNum[i] = 0, 0, 0, 0
	}
	p := sol.P

	// Coverage: G_i = Σ_{j,k} π_j p_jk a^{(i)}_{jk}; C̄_i from Eq. 2.
	// The dense path streams the i-contiguous rows of the coverage tables
	// (same per-(j,k) visit order and per-slot fold as the historic
	// accessor-based loop, so the sums carry identical bits). The sparse
	// path (solutions whose Z² was elided) never touches the M³ at table:
	// it uses the identity G_i = coverNum_i − Φ_i·Σ π_j p_jk T_jk, which
	// is the same sum reassociated — exact in exact arithmetic, within
	// markov.SparseTol in floating point.
	// The mode test is hoisted out of the O(M²) transition sweep into two
	// separate loop nests: a per-(j,k) branch on an invariant defeats the
	// inner-loop unrolling the dense path relies on. Both nests keep the
	// historic per-(j,k) visit order and per-slot fold, so the sums carry
	// identical bits to the fused loop they replace.
	var totalTime float64 // Σ π_j p_jk T_jk
	pd := p.Data()
	if sol.Z2 == nil {
		// Sparse mode: never touch the M³ at table.
		for j := 0; j < n; j++ {
			pij := sol.Pi[j]
			prow := pd[j*n : (j+1)*n]
			for k := 0; k < n; k++ {
				w := pij * prow[k]
				if w == 0 {
					continue
				}
				totalTime += w * m.travel[j*n+k]
				crow := m.top.CoverRow(j, k)
				for i := 0; i < n; i++ {
					coverNum[i] += w * crow[i]
				}
			}
		}
		for i := 0; i < n; i++ {
			g[i] = coverNum[i] - m.top.TargetAt(i)*totalTime
		}
	} else {
		at := m.atTable()
		for j := 0; j < n; j++ {
			pij := sol.Pi[j]
			prow := pd[j*n : (j+1)*n]
			for k := 0; k < n; k++ {
				w := pij * prow[k]
				if w == 0 {
					continue
				}
				totalTime += w * m.travel[j*n+k]
				crow := m.top.CoverRow(j, k)
				arow := at[(j*n+k)*n : (j*n+k+1)*n]
				for i := 0; i < n; i++ {
					coverNum[i] += w * crow[i]
					g[i] += w * arow[i]
				}
			}
		}
	}
	ev.TotalTime = totalTime
	for i := 0; i < n; i++ {
		ct[i] = coverNum[i]
		ev.CBar[i] = coverNum[i] / totalTime
		ev.CoverageTerm += 0.5 * m.w.Alpha[i] * ev.G[i] * ev.G[i]
		ev.DeltaC += ev.G[i] * ev.G[i]
	}

	// Exposure: Ē_i = Σ_{j≠i} p_ij R_ji / (1 − p_ii) (Eq. 3).
	var sumE2 float64
	rd := sol.R.Data()
	for i := 0; i < n; i++ {
		prow := pd[i*n : (i+1)*n]
		denom := 1 - prow[i]
		if denom <= 0 {
			// p_ii = 1 would make the chain reducible; Solve rejects that
			// earlier, so this is purely defensive.
			return fmt.Errorf("%w: p_%d%d = 1", markov.ErrNotErgodic, i, i)
		}
		var s float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			s += prow[j] * rd[j*n+i]
		}
		ev.EBarI[i] = s / denom
		ev.ExposureTerm += 0.5 * m.w.Beta[i] * ev.EBarI[i] * ev.EBarI[i]
		sumE2 += ev.EBarI[i] * ev.EBarI[i]
	}
	ev.EBar = math.Sqrt(sumE2)

	// Barrier penalty (Eq. 9).
	for _, v := range pd {
		ev.Penalty += barrier(v, m.w.Epsilon)
	}

	// §VII extensions.
	if m.w.EnergyWeight > 0 {
		ev.Energy = m.energy(sol)
		d := ev.Energy - m.w.EnergyTarget
		ev.EnergyTerm = 0.5 * m.w.EnergyWeight * d * d
	} else {
		ev.Energy = m.energy(sol)
	}
	ev.Entropy = sol.EntropyRate()
	if m.w.EntropyWeight > 0 {
		ev.EntropyTerm = -m.w.EntropyWeight * ev.Entropy
	}

	ev.Objective = ev.CoverageTerm + ev.ExposureTerm + ev.EnergyTerm + ev.EntropyTerm
	ev.U = ev.Objective + ev.Penalty
	return nil
}

// energy returns D = Σ_i π_i Σ_{j≠i} p_ij d_ij.
func (m *Model) energy(sol *markov.Solution) float64 {
	n := m.top.M()
	var d float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			d += sol.Pi[i] * sol.P.At(i, j) * m.top.Distance(i, j)
		}
	}
	return d
}

// barrier is the Eq. 9 penalty for a single entry: zero in [ε, 1−ε],
// blowing up to +∞ as p approaches 0 or 1.
func barrier(p, eps float64) float64 {
	var b float64
	if p <= eps {
		if p <= 0 {
			return math.Inf(1)
		}
		d := eps - p
		b += -(1 / eps) * math.Log(p) * d * d
	}
	if p >= 1-eps {
		if p >= 1 {
			return math.Inf(1)
		}
		d := 1 - eps - p
		b += -(1 / eps) * math.Log(1-p) * d * d
	}
	return b
}

// barrierDeriv is d(barrier)/dp.
func barrierDeriv(p, eps float64) float64 {
	var g float64
	if p <= eps && p > 0 {
		d := eps - p
		g += -(1 / eps) * (d*d/p - 2*math.Log(p)*d)
	}
	if p >= 1-eps && p < 1 {
		d := 1 - eps - p
		g += -(1 / eps) * (-d*d/(1-p) - 2*math.Log(1-p)*d)
	}
	return g
}
