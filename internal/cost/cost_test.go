package cost

import (
	"errors"
	"math"
	"testing"

	"repro/internal/markov"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/topology"
)

// uniformP returns the M-state matrix with every entry 1/M (the paper's V1
// initialization).
func uniformP(m int) *mat.Matrix {
	p := mat.New(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			p.Set(i, j, 1/float64(m))
		}
	}
	return p
}

// randomErgodicP returns a random strictly positive stochastic matrix.
func randomErgodicP(src *rng.Source, m int) *mat.Matrix {
	p := mat.New(m, m)
	row := make([]float64, m)
	for i := 0; i < m; i++ {
		src.DirichletRow(row, 1)
		for j := range row {
			row[j] = 0.8*row[j] + 0.2/float64(m)
		}
		p.SetRow(i, row)
	}
	return p
}

// zeroRowSumDirection returns a random tangent direction.
func zeroRowSumDirection(src *rng.Source, n int) *mat.Matrix {
	v := mat.New(n, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			x := src.Norm(0, 1)
			v.Set(i, j, x)
			sum += x
		}
		for j := 0; j < n; j++ {
			v.Add(i, j, -sum/float64(n))
		}
	}
	return v
}

func TestUniformWeights(t *testing.T) {
	w := Uniform(3, 1, 0.5)
	if len(w.Alpha) != 3 || len(w.Beta) != 3 {
		t.Fatalf("lengths = %d/%d", len(w.Alpha), len(w.Beta))
	}
	if w.Alpha[2] != 1 || w.Beta[0] != 0.5 {
		t.Errorf("weights = %+v", w)
	}
	if w.Epsilon != DefaultEpsilon {
		t.Errorf("epsilon = %v", w.Epsilon)
	}
}

func TestNewModelValidation(t *testing.T) {
	top := topology.Topology2()
	cases := []struct {
		name string
		w    Weights
	}{
		{"wrong alpha length", Weights{Alpha: []float64{1}, Beta: []float64{1, 1, 1}}},
		{"wrong beta length", Weights{Alpha: []float64{1, 1, 1}, Beta: []float64{1}}},
		{"negative alpha", Weights{Alpha: []float64{-1, 1, 1}, Beta: []float64{1, 1, 1}}},
		{"negative beta", Weights{Alpha: []float64{1, 1, 1}, Beta: []float64{1, -1, 1}}},
		{"epsilon too large", func() Weights { w := Uniform(3, 1, 1); w.Epsilon = 0.5; return w }()},
		{"negative energy weight", func() Weights { w := Uniform(3, 1, 1); w.EnergyWeight = -1; return w }()},
		{"negative entropy weight", func() Weights { w := Uniform(3, 1, 1); w.EntropyWeight = -1; return w }()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewModel(top, tc.w); !errors.Is(err, ErrWeights) {
				t.Errorf("err = %v, want ErrWeights", err)
			}
		})
	}
}

func TestModelCopiesWeights(t *testing.T) {
	top := topology.Topology2()
	w := Uniform(3, 1, 1)
	m, err := NewModel(top, w)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	w.Alpha[0] = 99
	if got := m.Weights().Alpha[0]; got != 1 {
		t.Errorf("model alpha mutated to %v", got)
	}
	got := m.Weights()
	got.Beta[0] = 77
	if m.Weights().Beta[0] != 1 {
		t.Error("Weights() exposed internal storage")
	}
}

func TestEvaluateBasicInvariants(t *testing.T) {
	top := topology.Topology3()
	m, err := NewModel(top, Uniform(4, 1, 1))
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	ev, err := m.Evaluate(uniformP(4))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if ev.CoverageTerm < 0 || ev.ExposureTerm < 0 || ev.Penalty < 0 {
		t.Errorf("negative component: %+v", ev)
	}
	if math.Abs(ev.U-(ev.Objective+ev.Penalty)) > 1e-12 {
		t.Errorf("U = %v != Objective %v + Penalty %v", ev.U, ev.Objective, ev.Penalty)
	}
	if math.Abs(ev.Objective-(ev.CoverageTerm+ev.ExposureTerm)) > 1e-12 {
		t.Errorf("Objective decomposition off: %+v", ev)
	}
	// Ē aggregates the per-PoI values (Eq. 13).
	var s float64
	for _, e := range ev.EBarI {
		if e <= 0 {
			t.Errorf("Ē_i = %v, want positive", e)
		}
		s += e * e
	}
	if math.Abs(ev.EBar-math.Sqrt(s)) > 1e-12 {
		t.Errorf("EBar = %v, want %v", ev.EBar, math.Sqrt(s))
	}
	// ΔC aggregates G (Eq. 12).
	var dc float64
	for _, g := range ev.G {
		dc += g * g
	}
	if math.Abs(ev.DeltaC-dc) > 1e-15 {
		t.Errorf("DeltaC = %v, want %v", ev.DeltaC, dc)
	}
	// Coverage shares lie in (0, 1] and cannot sum above 1 (PoIs are
	// disjoint, travel time may be uncovered).
	var csum float64
	for i, c := range ev.CBar {
		if c <= 0 || c > 1 {
			t.Errorf("C̄_%d = %v", i, c)
		}
		csum += c
	}
	if csum > 1+1e-9 {
		t.Errorf("Σ C̄ = %v > 1", csum)
	}
}

func TestEvaluateUniformWeightsMatchEq14(t *testing.T) {
	// With uniform α, β: U_obj = ½αΔC + ½βĒ² (Eq. 14).
	top := topology.Topology2()
	alpha, beta := 2.0, 0.3
	m, err := NewModel(top, Uniform(3, alpha, beta))
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	src := rng.New(200)
	for trial := 0; trial < 20; trial++ {
		ev, err := m.Evaluate(randomErgodicP(src, 3))
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		want := 0.5*alpha*ev.DeltaC + 0.5*beta*ev.EBar*ev.EBar
		if math.Abs(ev.Objective-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("trial %d: Objective = %v, Eq.14 gives %v", trial, ev.Objective, want)
		}
	}
}

func TestEvaluateRejectsNonErgodic(t *testing.T) {
	top := topology.Topology2()
	m, err := NewModel(top, Uniform(3, 1, 1))
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	p, _ := mat.NewFromRows([][]float64{
		{1, 0, 0},
		{0, 0.5, 0.5},
		{0, 0.5, 0.5},
	})
	if _, err := m.Evaluate(p); !errors.Is(err, markov.ErrNotErgodic) {
		t.Errorf("err = %v, want ErrNotErgodic", err)
	}
}

func TestEvaluateSolvedDimensionMismatch(t *testing.T) {
	top := topology.Topology2() // 3 PoIs
	m, err := NewModel(top, Uniform(3, 1, 1))
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	chain, err := markov.New(uniformP(4))
	if err != nil {
		t.Fatalf("markov.New: %v", err)
	}
	sol, err := chain.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if _, err := m.EvaluateSolved(sol); err == nil {
		t.Error("expected dimension error")
	}
}

func TestBarrierShape(t *testing.T) {
	eps := 1e-4
	if b := barrier(0.5, eps); b != 0 {
		t.Errorf("barrier(0.5) = %v, want 0", b)
	}
	if b := barrier(eps, eps); math.Abs(b) > 1e-15 {
		t.Errorf("barrier(ε) = %v, want 0", b)
	}
	if b := barrier(eps/10, eps); b <= 0 {
		t.Errorf("barrier inside lower band = %v, want > 0", b)
	}
	if b := barrier(1-eps/10, eps); b <= 0 {
		t.Errorf("barrier inside upper band = %v, want > 0", b)
	}
	if b := barrier(0, eps); !math.IsInf(b, 1) {
		t.Errorf("barrier(0) = %v, want +Inf", b)
	}
	if b := barrier(1, eps); !math.IsInf(b, 1) {
		t.Errorf("barrier(1) = %v, want +Inf", b)
	}
	// Monotone decreasing as p pulls away from 0.
	if barrier(eps/4, eps) <= barrier(eps/2, eps) {
		t.Error("barrier should decrease moving away from 0")
	}
}

func TestBarrierDerivFiniteDifference(t *testing.T) {
	eps := 1e-2 // wide band so FD is stable
	for _, p := range []float64{0.001, 0.005, 0.009, 0.5, 0.991, 0.995, 0.999} {
		h := 1e-8
		fd := (barrier(p+h, eps) - barrier(p-h, eps)) / (2 * h)
		got := barrierDeriv(p, eps)
		if math.Abs(fd-got) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("p=%v: analytic %v, FD %v", p, got, fd)
		}
	}
}

func TestProjectRowsSumToZero(t *testing.T) {
	src := rng.New(201)
	for trial := 0; trial < 50; trial++ {
		n := 2 + src.IntN(6)
		g := mat.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				g.Set(i, j, src.Norm(0, 3))
			}
		}
		p := Project(g)
		for i, s := range mat.RowSums(p) {
			if math.Abs(s) > 1e-9 {
				t.Fatalf("trial %d: projected row %d sums to %v", trial, i, s)
			}
		}
		// Idempotence.
		if mat.MaxAbsDiff(Project(p), p) > 1e-12 {
			t.Fatalf("trial %d: projection not idempotent", trial)
		}
	}
}

func TestProjectConstantRowsVanish(t *testing.T) {
	g := mat.Ones(3, 3)
	p := Project(g)
	if mat.MaxAbs(p) > 1e-15 {
		t.Errorf("projection of constant rows = %v", p)
	}
}

// gradientWeightCases enumerates the objective configurations whose
// analytic gradients the finite-difference test validates.
func gradientWeightCases() map[string]func(m int) Weights {
	return map[string]func(m int) Weights{
		"coverage only":  func(m int) Weights { return Uniform(m, 1, 0) },
		"exposure only":  func(m int) Weights { return Uniform(m, 0, 1) },
		"both":           func(m int) Weights { return Uniform(m, 1, 1) },
		"skewed weights": func(m int) Weights { return Uniform(m, 1, 1e-3) },
		"with energy": func(m int) Weights {
			w := Uniform(m, 1, 1)
			w.EnergyWeight = 2
			w.EnergyTarget = 0.5
			return w
		},
		"with entropy": func(m int) Weights {
			w := Uniform(m, 1, 1)
			w.EntropyWeight = 0.7
			return w
		},
		"everything": func(m int) Weights {
			w := Uniform(m, 0.5, 2)
			w.EnergyWeight = 1
			w.EnergyTarget = 0.2
			w.EntropyWeight = 0.3
			return w
		},
	}
}

// TestGradientMatchesFiniteDifference is the core correctness test of the
// whole package: ⟨[D_P U], V⟩ must equal the central finite difference of
// U along every zero-row-sum direction V.
func TestGradientMatchesFiniteDifference(t *testing.T) {
	tops := map[string]*topology.Topology{
		"topology2": topology.Topology2(),
		"topology3": topology.Topology3(),
	}
	for topName, top := range tops {
		for wName, mk := range gradientWeightCases() {
			t.Run(topName+"/"+wName, func(t *testing.T) {
				m, err := NewModel(top, mk(top.M()))
				if err != nil {
					t.Fatalf("NewModel: %v", err)
				}
				src := rng.New(uint64(len(topName)*1000 + len(wName)))
				const h = 1e-6
				for trial := 0; trial < 10; trial++ {
					p := randomErgodicP(src, top.M())
					_, grad, err := m.Gradient(p)
					if err != nil {
						t.Fatalf("Gradient: %v", err)
					}
					v := zeroRowSumDirection(src, top.M())
					mat.ScaleInPlace(0.01/(mat.MaxAbs(v)+1e-12), v)

					analytic, err := DirectionalDerivative(grad, v)
					if err != nil {
						t.Fatalf("DirectionalDerivative: %v", err)
					}
					up := p.Clone()
					if err := mat.AddInPlace(up, h, v); err != nil {
						t.Fatal(err)
					}
					dn := p.Clone()
					if err := mat.AddInPlace(dn, -h, v); err != nil {
						t.Fatal(err)
					}
					evUp, err := m.Evaluate(up)
					if err != nil {
						t.Fatalf("Evaluate(+h): %v", err)
					}
					evDn, err := m.Evaluate(dn)
					if err != nil {
						t.Fatalf("Evaluate(-h): %v", err)
					}
					fd := (evUp.U - evDn.U) / (2 * h)
					scale := 1 + math.Abs(fd)
					if math.Abs(analytic-fd) > 2e-4*scale {
						t.Fatalf("trial %d: analytic %v, FD %v (rel err %v)",
							trial, analytic, fd, math.Abs(analytic-fd)/scale)
					}
				}
			})
		}
	}
}

// flooredErgodicP returns a random ergodic matrix with `floored` entries
// per row pinned at exactly `floor`, the remainder renormalized onto the
// row's largest entry. This reproduces the iterates descent maintains at
// its MinProb floor (1e-7 by default), where the barrier is active and the
// entropy term's log is steep.
func flooredErgodicP(src *rng.Source, m, floored int, floor float64) *mat.Matrix {
	p := randomErgodicP(src, m)
	for i := 0; i < m; i++ {
		// Pin the `floored` smallest entries of the row (excluding the
		// largest, which absorbs the mass difference).
		for f := 0; f < floored; f++ {
			minJ, maxJ := 0, 0
			for j := 1; j < m; j++ {
				if p.At(i, j) < p.At(i, minJ) {
					minJ = j
				}
				if p.At(i, j) > p.At(i, maxJ) {
					maxJ = j
				}
			}
			if minJ == maxJ || p.At(i, minJ) <= floor {
				break
			}
			excess := p.At(i, minJ) - floor
			p.Set(i, minJ, floor)
			p.Add(i, maxJ, excess)
		}
	}
	return p
}

// TestGradientAtMinProbFloorWithExtensions extends the finite-difference
// check to the §VII energy and entropy terms at iterates sitting on the
// descent MinProb floor (descent.DefaultMinProb = 1e-7; literal here to
// avoid an import cycle). Both extensions are nonlinear in exactly the
// entries the floor pins — entropy through p·ln p, the barrier through
// ln p — so this is where an index slip in the §VII gradient terms would
// hide from the interior-point test above. The step h must keep p ± h·v
// strictly positive against entries of 1e-7, hence h = 1e-10 and a looser
// tolerance matching the barrier's curvature at the floor.
func TestGradientAtMinProbFloorWithExtensions(t *testing.T) {
	const minProb = 1e-7 // descent.DefaultMinProb
	cases := map[string]func(m int) Weights{
		"energy": func(m int) Weights {
			w := Uniform(m, 1, 1)
			w.EnergyWeight = 2
			w.EnergyTarget = 0.4
			return w
		},
		"entropy": func(m int) Weights {
			w := Uniform(m, 1, 1)
			w.EntropyWeight = 0.7
			return w
		},
		"energy+entropy": func(m int) Weights {
			w := Uniform(m, 1, 1)
			w.EnergyWeight = 1
			w.EnergyTarget = 0.2
			w.EntropyWeight = 0.3
			return w
		},
	}
	top := topology.Topology3()
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			m, err := NewModel(top, mk(top.M()))
			if err != nil {
				t.Fatalf("NewModel: %v", err)
			}
			src := rng.New(uint64(7000 + len(name)))
			const h = 1e-10
			for trial := 0; trial < 10; trial++ {
				p := flooredErgodicP(src, top.M(), 2, minProb)
				_, grad, err := m.Gradient(p)
				if err != nil {
					t.Fatalf("Gradient: %v", err)
				}
				for i := 0; i < top.M(); i++ {
					for j := 0; j < top.M(); j++ {
						if g := grad.At(i, j); math.IsNaN(g) || math.IsInf(g, 0) {
							t.Fatalf("trial %d: grad[%d][%d] = %v at floor", trial, i, j, g)
						}
					}
				}
				v := zeroRowSumDirection(src, top.M())
				mat.ScaleInPlace(0.01/(mat.MaxAbs(v)+1e-12), v)
				analytic, err := DirectionalDerivative(grad, v)
				if err != nil {
					t.Fatalf("DirectionalDerivative: %v", err)
				}
				up := p.Clone()
				if err := mat.AddInPlace(up, h, v); err != nil {
					t.Fatal(err)
				}
				dn := p.Clone()
				if err := mat.AddInPlace(dn, -h, v); err != nil {
					t.Fatal(err)
				}
				evUp, err := m.Evaluate(up)
				if err != nil {
					t.Fatalf("Evaluate(+h): %v", err)
				}
				evDn, err := m.Evaluate(dn)
				if err != nil {
					t.Fatalf("Evaluate(-h): %v", err)
				}
				fd := (evUp.U - evDn.U) / (2 * h)
				scale := 1 + math.Abs(fd)
				if math.Abs(analytic-fd) > 1e-2*scale {
					t.Fatalf("trial %d: analytic %v, FD %v (rel err %v)",
						trial, analytic, fd, math.Abs(analytic-fd)/scale)
				}
			}
		})
	}
}

// TestGradientNonUniformWeights verifies the analytic gradient with
// per-PoI weights that differ from one another (the paper evaluates only
// uniform α_i, β_i, but the formulation and this implementation support
// heterogeneous weights).
func TestGradientNonUniformWeights(t *testing.T) {
	top := topology.Topology3()
	w := Weights{
		Alpha:   []float64{2, 0, 0.5, 1},
		Beta:    []float64{0, 3, 0.1, 1e-3},
		Epsilon: DefaultEpsilon,
	}
	m, err := NewModel(top, w)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	src := rng.New(606)
	const h = 1e-6
	for trial := 0; trial < 10; trial++ {
		p := randomErgodicP(src, 4)
		_, grad, err := m.Gradient(p)
		if err != nil {
			t.Fatalf("Gradient: %v", err)
		}
		v := zeroRowSumDirection(src, 4)
		mat.ScaleInPlace(0.01/(mat.MaxAbs(v)+1e-12), v)
		analytic, err := DirectionalDerivative(grad, v)
		if err != nil {
			t.Fatalf("DirectionalDerivative: %v", err)
		}
		up := p.Clone()
		_ = mat.AddInPlace(up, h, v)
		dn := p.Clone()
		_ = mat.AddInPlace(dn, -h, v)
		evUp, err := m.Evaluate(up)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		evDn, err := m.Evaluate(dn)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		fd := (evUp.U - evDn.U) / (2 * h)
		if math.Abs(analytic-fd) > 2e-4*(1+math.Abs(fd)) {
			t.Fatalf("trial %d: analytic %v, FD %v", trial, analytic, fd)
		}
	}
}

// TestGradientInBarrierRegion checks the gradient where the lower barrier
// is active (an entry below ε).
func TestGradientInBarrierRegion(t *testing.T) {
	top := topology.Topology2()
	w := Uniform(3, 1, 1)
	w.Epsilon = 1e-2 // widen the band so we can probe inside it
	m, err := NewModel(top, w)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	// Entry (0,1) sits inside the barrier band.
	p, _ := mat.NewFromRows([][]float64{
		{0.495, 0.005, 0.5},
		{0.3, 0.4, 0.3},
		{0.3, 0.3, 0.4},
	})
	_, grad, err := m.Gradient(p)
	if err != nil {
		t.Fatalf("Gradient: %v", err)
	}
	src := rng.New(303)
	const h = 1e-7
	for trial := 0; trial < 5; trial++ {
		v := zeroRowSumDirection(src, 3)
		mat.ScaleInPlace(0.001/(mat.MaxAbs(v)+1e-12), v)
		analytic, _ := DirectionalDerivative(grad, v)
		up := p.Clone()
		_ = mat.AddInPlace(up, h, v)
		dn := p.Clone()
		_ = mat.AddInPlace(dn, -h, v)
		evUp, err := m.Evaluate(up)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		evDn, err := m.Evaluate(dn)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		fd := (evUp.U - evDn.U) / (2 * h)
		if math.Abs(analytic-fd) > 1e-3*(1+math.Abs(fd)) {
			t.Fatalf("trial %d: analytic %v, FD %v", trial, analytic, fd)
		}
	}
}

// TestDiscrepancyIdentity verifies the relationship between the paper's
// computational discrepancy G_i (used in ΔC, Eq. 12) and the normalized
// coverage shares C̄_i (Eq. 2): G_i = (C̄_i − Φ_i)·T̄ where
// T̄ = Σ_{j,k} π_j p_jk T_jk is the mean transition duration.
func TestDiscrepancyIdentity(t *testing.T) {
	src := rng.New(505)
	for _, top := range []*topology.Topology{topology.Topology2(), topology.Topology3()} {
		m, err := NewModel(top, Uniform(top.M(), 1, 1))
		if err != nil {
			t.Fatalf("NewModel: %v", err)
		}
		for trial := 0; trial < 10; trial++ {
			p := randomErgodicP(src, top.M())
			ev, err := m.Evaluate(p)
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			// Recover T̄ from Eq. 2: C̄_i·T̄ = Σ π_j p_jk T_{jk,i}.
			var tbar float64
			for j := 0; j < top.M(); j++ {
				for k := 0; k < top.M(); k++ {
					tbar += ev.Sol.Pi[j] * p.At(j, k) * top.TravelTime(j, k)
				}
			}
			for i := 0; i < top.M(); i++ {
				want := (ev.CBar[i] - top.TargetAt(i)) * tbar
				if math.Abs(ev.G[i]-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("%s trial %d: G_%d = %v, identity gives %v",
						top.Name(), trial, i, ev.G[i], want)
				}
			}
		}
	}
}

func TestEnergyMetric(t *testing.T) {
	top := topology.Topology2()
	m, err := NewModel(top, Uniform(3, 1, 1))
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	// Fully lazy chain moves almost nothing; compare with a busy chain.
	lazy, _ := mat.NewFromRows([][]float64{
		{0.98, 0.01, 0.01},
		{0.01, 0.98, 0.01},
		{0.01, 0.01, 0.98},
	})
	busy := uniformP(3)
	evLazy, err := m.Evaluate(lazy)
	if err != nil {
		t.Fatalf("Evaluate(lazy): %v", err)
	}
	evBusy, err := m.Evaluate(busy)
	if err != nil {
		t.Fatalf("Evaluate(busy): %v", err)
	}
	if evLazy.Energy >= evBusy.Energy {
		t.Errorf("lazy energy %v >= busy energy %v", evLazy.Energy, evBusy.Energy)
	}
	if evLazy.Energy < 0 {
		t.Errorf("negative energy %v", evLazy.Energy)
	}
}

func TestEntropyMetricMatchesSolution(t *testing.T) {
	top := topology.Topology2()
	m, err := NewModel(top, Uniform(3, 1, 1))
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	src := rng.New(404)
	p := randomErgodicP(src, 3)
	ev, err := m.Evaluate(p)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if math.Abs(ev.Entropy-ev.Sol.EntropyRate()) > 1e-12 {
		t.Errorf("Entropy = %v, solution says %v", ev.Entropy, ev.Sol.EntropyRate())
	}
	if ev.Entropy <= 0 || ev.Entropy > math.Log(3)+1e-12 {
		t.Errorf("entropy %v outside (0, ln 3]", ev.Entropy)
	}
}
