package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"repro/internal/cost"
	"repro/internal/descent"
	"repro/internal/markov"
	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/rng"
)

// ErrOptions indicates an invalid fleet Options configuration.
var ErrOptions = errors.New("fleet: invalid options")

// Options configures a joint fleet optimization run. The numeric knobs
// mirror descent.Options (the stacked search is the perturbed variant
// V2+V3+V4 over K·M² parameters); zero values select the same defaults.
type Options struct {
	// Sensors is the fleet size K. Required (≥ 1).
	Sensors int
	// Responsibility is the optional K×M responsibility assignment; nil
	// selects the uniform 1/K split. See NewModel.
	Responsibility [][]float64
	// MaxIters bounds the number of iterations.
	MaxIters int
	// Seed drives the random initialization, gradient noise, and annealed
	// acceptance. One stream serves the whole fleet, consumed in fixed
	// sensor order, so a seed pins the entire stacked trajectory.
	Seed uint64
	// NoiseStdDev is the σ of the V4 Gaussian noise, relative to the
	// stacked gradient's max-norm.
	NoiseStdDev float64
	// AnnealK is the annealing constant in T(n) = k / log(n+1).
	AnnealK float64
	// MinProb keeps every transition probability of every sensor strictly
	// inside (0, 1).
	MinProb float64
	// LineSearchTol is the relative bracket width stopping the trisection.
	LineSearchTol float64
	// StallIters stops the run after this many non-improving iterations.
	StallIters int
	// Tolerance is the relative improvement threshold for stall counting.
	Tolerance float64
	// Workers bounds the OS-level workers one iteration may occupy. The
	// fleet fan-out owns one sensor per span — each sensor's chain solve,
	// evaluation, and gradient assembly runs entirely inside one worker's
	// span — so results are bit-for-bit identical for every value. Zero
	// selects GOMAXPROCS; one forces the serial path.
	Workers int
	// Solver selects the markov backend for every per-sensor chain solve.
	Solver markov.Method
	// InitialPs overrides the random initialization with K starting
	// matrices (each is clamped to MinProb and renormalized, matching the
	// single-sensor warm-start contract).
	InitialPs []*mat.Matrix
	// RecordTrace captures one descent.IterRecord per iteration.
	RecordTrace bool
	// OnIteration, when non-nil, observes every iteration with the
	// current record and the accepted stack.
	OnIteration func(rec descent.IterRecord, ps []*mat.Matrix)
}

// withDefaults returns a copy of o with zero fields replaced by the
// descent package defaults.
func (o Options) withDefaults() Options {
	if o.MaxIters == 0 {
		o.MaxIters = descent.DefaultMaxIters
	}
	if o.NoiseStdDev == 0 {
		o.NoiseStdDev = descent.DefaultNoiseStdDev
	}
	if o.AnnealK == 0 {
		o.AnnealK = descent.DefaultAnnealK
	}
	if o.MinProb == 0 {
		o.MinProb = descent.DefaultMinProb
	}
	if o.LineSearchTol == 0 {
		o.LineSearchTol = descent.DefaultLineSearchTol
	}
	if o.StallIters == 0 {
		o.StallIters = descent.DefaultStallIters
	}
	if o.Tolerance == 0 {
		o.Tolerance = descent.DefaultTolerance
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

func (o Options) validate() error {
	if o.Sensors < 1 {
		return fmt.Errorf("%w: %d sensors", ErrOptions, o.Sensors)
	}
	if o.MaxIters < 0 || o.NoiseStdDev < 0 || o.AnnealK < 0 || o.MinProb < 0 ||
		o.LineSearchTol < 0 || o.StallIters < 0 || o.Tolerance < 0 {
		return fmt.Errorf("%w: negative numeric option", ErrOptions)
	}
	if o.MinProb >= 0.5 {
		return fmt.Errorf("%w: MinProb %v too large", ErrOptions, o.MinProb)
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: negative Workers %d", ErrOptions, o.Workers)
	}
	switch o.Solver {
	case markov.MethodDense, markov.MethodSparse:
	default:
		return fmt.Errorf("%w: unknown solver method %d", ErrOptions, int(o.Solver))
	}
	if o.InitialPs != nil && len(o.InitialPs) != o.Sensors {
		return fmt.Errorf("%w: %d initial matrices for %d sensors",
			ErrOptions, len(o.InitialPs), o.Sensors)
	}
	return nil
}

// Result is the outcome of a fleet optimization run.
type Result struct {
	// Ps is the best K-matrix stack found.
	Ps []*mat.Matrix
	// Eval is the joint cost breakdown at Ps.
	Eval *Evaluation
	// Iters is the number of iterations executed.
	Iters int
	// Converged reports whether the run stalled out before MaxIters.
	Converged bool
	// Accepted and Rejected count candidate moves kept and discarded.
	Accepted int
	Rejected int
	// Trace holds per-iteration records when Options.RecordTrace is set.
	Trace []descent.IterRecord
}

// sensorTask fans a per-sensor closure across the pool, one sensor per
// index; the pool's contiguous spans give each worker a private set of
// sensors, and every sensor touches only its own workspace and buffers.
type sensorTask struct {
	fn func(s int)
}

func (t *sensorTask) Run(_, lo, hi int) {
	for s := lo; s < hi; s++ {
		t.fn(s)
	}
}

// Optimizer runs the stacked perturbed descent. Like descent.Optimizer
// it owns all its buffers: one evaluation workspace, gradient, and
// direction/candidate matrix per sensor, so the hot loop allocates
// nothing and the per-sensor fan-out shares no mutable state.
type Optimizer struct {
	fm   *Model
	opts Options
	src  *rng.Source

	ws    []*cost.Workspace
	evs   []*cost.Evaluation // ws[s]'s current evaluation
	ps    []*mat.Matrix      // current iterate stack
	dir   []*mat.Matrix      // projected descent direction per sensor
	noisy []*mat.Matrix
	cand  []*mat.Matrix

	coverCoef []float64   // shared c_i = α_i G_i^fleet
	cphis     []float64   // per-sensor Σ_i c_i ρ_{s,i} Φ_i
	betaMask  [][]float64 // per-sensor argmin-masked β

	cur, candEv, probeEv *Evaluation

	pool  *par.Pool
	stask sensorTask
	serrs []error

	probes int
}

// NewOptimizer validates the options and builds a fleet Optimizer over
// the given single-sensor cost model.
func NewOptimizer(cm *cost.Model, opts Options) (*Optimizer, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	fm, err := NewModel(cm, opts.Sensors, opts.Responsibility)
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	k, n := fm.k, fm.m
	o := &Optimizer{
		fm:        fm,
		opts:      opts,
		src:       rng.New(opts.Seed),
		ws:        make([]*cost.Workspace, k),
		evs:       make([]*cost.Evaluation, k),
		ps:        make([]*mat.Matrix, k),
		dir:       make([]*mat.Matrix, k),
		noisy:     make([]*mat.Matrix, k),
		cand:      make([]*mat.Matrix, k),
		coverCoef: make([]float64, n),
		cphis:     make([]float64, k),
		betaMask:  make([][]float64, k),
		cur:       fm.newEvaluation(),
		candEv:    fm.newEvaluation(),
		probeEv:   fm.newEvaluation(),
		serrs:     make([]error, k),
	}
	for s := 0; s < k; s++ {
		o.ws[s] = cm.NewWorkspace()
		o.ws[s].SetSolver(opts.Solver)
		o.dir[s] = mat.New(n, n)
		o.noisy[s] = mat.New(n, n)
		o.cand[s] = mat.New(n, n)
		o.betaMask[s] = make([]float64, n)
	}
	if opts.Workers > 1 && k > 1 {
		o.pool = par.New(opts.Workers)
	}
	return o, nil
}

// forEachSensor runs fn(s) for every sensor, across the pool when one is
// attached. Each sensor is owned by exactly one span, so fn may freely
// mutate sensor-indexed state; bit-identity across worker counts follows
// from the sensors' mutual independence.
func (o *Optimizer) forEachSensor(fn func(s int)) {
	if o.pool == nil {
		for s := 0; s < o.fm.k; s++ {
			fn(s)
		}
		return
	}
	o.stask.fn = fn
	o.pool.Run(o.fm.k, &o.stask)
	o.stask.fn = nil
}

// sensorErr folds the per-sensor error slots into the first (lowest
// sensor index) failure, clearing the slots for the next fan-out.
func (o *Optimizer) sensorErr() error {
	var first error
	firstAt := -1
	for s, err := range o.serrs {
		if err != nil && firstAt < 0 {
			first, firstAt = err, s
		}
		o.serrs[s] = nil
	}
	if first == nil {
		return nil
	}
	return fmt.Errorf("fleet: sensor %d: %w", firstAt, first)
}

// evalInto evaluates the stack into out using the optimizer's
// workspaces (clobbering their current evaluations).
func (o *Optimizer) evalInto(out *Evaluation, ps []*mat.Matrix) error {
	o.forEachSensor(func(s int) {
		o.evs[s], o.serrs[s] = o.fm.cm.EvaluateIn(o.ws[s], ps[s])
	})
	if err := o.sensorErr(); err != nil {
		return err
	}
	o.fm.combine(o.evs, out)
	return nil
}

// gradient assembles the stacked gradient blocks into o.dir's backing
// (via each workspace's gradient buffer), projects them, and negates —
// leaving o.dir[s] the feasible descent direction for sensor s. cur must
// be the joint evaluation matching the workspaces' current state.
func (o *Optimizer) gradient(cur *Evaluation) error {
	for i := 0; i < o.fm.m; i++ {
		o.coverCoef[i] = o.fm.alpha[i] * cur.G[i]
	}
	for s := 0; s < o.fm.k; s++ {
		o.cphis[s] = o.fm.coverPhi(o.coverCoef, s)
		o.fm.maskBeta(o.betaMask[s], cur.Owner, s)
	}
	o.forEachSensor(func(s int) {
		g, err := o.fm.cm.GradientWeightedSolvedIn(o.ws[s], o.evs[s], o.coverCoef, o.cphis[s], o.betaMask[s])
		if err != nil {
			o.serrs[s] = err
			return
		}
		o.serrs[s] = o.noisy[s].CopyFrom(g)
	})
	return o.sensorErr()
}

// clampRow raises entries below floor to floor and renormalizes,
// matching descent's warm-start clamping.
func clampRow(row []float64, floor float64) {
	if floor <= 0 {
		return
	}
	var sum float64
	for i := range row {
		if row[i] < floor {
			row[i] = floor
		}
		sum += row[i]
	}
	for i := range row {
		row[i] /= sum
	}
}

// initialStack builds the starting matrices: warm starts when provided,
// otherwise the V2 random initialization drawn per sensor in ascending
// order from the run's single stream.
func (o *Optimizer) initialStack() []*mat.Matrix {
	out := make([]*mat.Matrix, o.fm.k)
	for s := 0; s < o.fm.k; s++ {
		if o.opts.InitialPs != nil {
			p := o.opts.InitialPs[s].Clone()
			for i := 0; i < p.Rows(); i++ {
				row := p.Row(i)
				clampRow(row, o.opts.MinProb)
				p.SetRow(i, row)
			}
			out[s] = p
			continue
		}
		out[s] = descent.RandomInit(o.src, o.fm.m, o.opts.MinProb)
	}
	return out
}

// stackMaxFeasibleStep returns the largest δ ≥ 0 keeping every entry of
// every sensor's p + δ·dir inside [floor, 1−floor] — the single-sensor
// bound folded over the stack.
func stackMaxFeasibleStep(ps, dirs []*mat.Matrix, floor float64) float64 {
	bound := math.Inf(1)
	for s := range ps {
		pd := ps[s].Data()
		dd := dirs[s].Data()
		for i, v := range dd {
			if v == 0 {
				continue
			}
			cur := pd[i]
			var room float64
			if v > 0 {
				room = (1 - floor - cur) / v
			} else {
				room = (floor - cur) / v
			}
			if room < bound {
				bound = room
			}
		}
	}
	if math.IsInf(bound, 1) || bound < 0 {
		return 0
	}
	return bound
}

// Run executes the stacked perturbed descent.
func (o *Optimizer) Run() (*Result, error) {
	return o.RunContext(context.Background())
}

// cloneStack deep-copies a matrix stack.
func cloneStack(ps []*mat.Matrix) []*mat.Matrix {
	out := make([]*mat.Matrix, len(ps))
	for s, p := range ps {
		out[s] = p.Clone()
	}
	return out
}

// cancelErr mirrors descent's context-error wrapping.
func cancelErr(err error, iters int) error {
	return fmt.Errorf("fleet: cancelled after %d iterations: %w", iters, err)
}

// record appends a trace record and fires the iteration callback.
func (o *Optimizer) record(res *Result, rec descent.IterRecord, ps []*mat.Matrix) {
	if o.opts.RecordTrace {
		res.Trace = append(res.Trace, rec)
	}
	if o.opts.OnIteration != nil {
		o.opts.OnIteration(rec, ps)
	}
}

// RunContext is Run with cooperative cancellation, checked between
// iterations only — an uncancelled run is bit-identical to Run.
//
// The loop is the perturbed single-sensor algorithm (V2+V3+V4)
// transliterated to the stacked space: one gradient-noise-project pass
// per sensor, one shared scalar line search along the joint direction,
// and one annealed accept/reject over the joint cost. All randomness
// comes from the run's single stream in fixed sensor order, so the
// trajectory is a pure function of (options, seed).
func (o *Optimizer) RunContext(ctx context.Context) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, cancelErr(err, 0)
	}
	if o.pool != nil {
		defer o.pool.Stop()
	}
	o.ps = o.initialStack()
	if err := o.evalInto(o.cur, o.ps); err != nil {
		return nil, fmt.Errorf("fleet: evaluate initial stack: %w", err)
	}
	res := &Result{Ps: cloneStack(o.ps), Eval: o.cur.Clone()}
	bestU := o.cur.U
	curU, curObj, curDC, curEB := o.cur.U, o.cur.Objective, o.cur.DeltaC, o.cur.EBar
	stall := 0
	// evAtP mirrors descent.runPerturbed: true whenever every workspace's
	// evaluation (and o.cur) is current for o.ps, letting the gradient
	// skip K chain re-solves.
	evAtP := true
	for iter := 1; iter <= o.opts.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return res, cancelErr(err, res.Iters)
		}
		if !evAtP {
			if err := o.evalInto(o.cur, o.ps); err != nil {
				return nil, fmt.Errorf("fleet: iteration %d: %w", iter, err)
			}
		}
		if err := o.gradient(o.cur); err != nil {
			return nil, fmt.Errorf("fleet: iteration %d: %w", iter, err)
		}
		// V4 noise, scaled to the stacked gradient's max-norm (the max
		// over all K blocks) and drawn in sensor order so one stream pins
		// the whole stack.
		var scale float64
		for s := 0; s < o.fm.k; s++ {
			if v := mat.MaxAbs(o.noisy[s]); v > scale {
				scale = v
			}
		}
		if scale == 0 {
			scale = 1
		}
		for s := 0; s < o.fm.k; s++ {
			ns := o.noisy[s]
			for i := 0; i < ns.Rows(); i++ {
				for j := 0; j < ns.Cols(); j++ {
					ns.Add(i, j, o.src.Norm(0, o.opts.NoiseStdDev*scale))
				}
			}
			cost.ProjectTo(o.dir[s], ns)
			mat.ScaleInPlace(-1, o.dir[s])
		}

		step, ok := o.lineSearch(curU)
		evAtP = false
		if !ok || step == 0 {
			bound := stackMaxFeasibleStep(o.ps, o.dir, o.opts.MinProb)
			if bound <= 0 {
				stall++
				if stall >= o.opts.StallIters {
					res.Converged = true
					res.Iters = iter
					break
				}
				continue
			}
			step = o.src.Uniform(0, bound)
		}

		for s := 0; s < o.fm.k; s++ {
			if err := o.cand[s].CopyFrom(o.ps[s]); err != nil {
				return nil, err
			}
			if err := mat.AddInPlace(o.cand[s], step, o.dir[s]); err != nil {
				return nil, err
			}
		}
		if err := o.evalInto(o.candEv, o.cand); err != nil {
			return nil, fmt.Errorf("fleet: iteration %d: %w", iter, err)
		}
		candU := o.candEv.U

		accepted := false
		if candU < curU {
			accepted = true
		} else {
			norm := math.Abs(bestU)
			if norm == 0 {
				norm = 1
			}
			delta := (candU - curU) / norm
			temp := o.opts.AnnealK / math.Log(float64(iter)+1)
			if temp > 0 && o.src.Float64() < math.Exp(-delta/temp) {
				accepted = true
			}
		}

		res.Iters = iter
		if accepted {
			res.Accepted++
			// Swap the iterate and candidate stacks and the evaluation
			// holders; the workspaces hold the candidate's solutions,
			// which are now the iterate's.
			o.ps, o.cand = o.cand, o.ps
			o.cur, o.candEv = o.candEv, o.cur
			evAtP = true
			curU, curObj = o.cur.U, o.cur.Objective
			curDC, curEB = o.cur.DeltaC, o.cur.EBar
		} else {
			res.Rejected++
		}
		o.record(res, descent.IterRecord{
			Iter: iter, U: curU, Objective: curObj,
			DeltaC: curDC, EBar: curEB, Step: step, Accepted: accepted,
			Probes: o.probes,
		}, o.ps)

		if candU < bestU-o.opts.Tolerance*math.Max(1, math.Abs(bestU)) {
			stall = 0
		} else {
			stall++
		}
		if candU < bestU {
			bestU = candU
			// On accept the candidate stack was swapped into o.ps; either
			// way the winning matrices live where the evaluation says.
			if accepted {
				res.Ps = cloneStack(o.ps)
				res.Eval = o.cur.Clone()
			} else {
				res.Ps = cloneStack(o.cand)
				res.Eval = o.candEv.Clone()
			}
		}
		if stall >= o.opts.StallIters {
			res.Converged = true
			break
		}
	}
	return res, nil
}

// Line-search shape constants, mirroring descent's grid so the stacked
// search walks the same schedule.
const (
	lsShrink    = 4.0
	lsMaxProbes = 48
)

// phi evaluates the joint cost at ps + δ·dir into the probe scratch.
// Infeasible or non-ergodic probes evaluate to +Inf, exactly as in the
// single-sensor search.
func (o *Optimizer) phi(delta float64) float64 {
	o.probes++
	for s := 0; s < o.fm.k; s++ {
		if err := o.cand[s].CopyFrom(o.ps[s]); err != nil {
			return math.Inf(1)
		}
		if err := mat.AddInPlace(o.cand[s], delta, o.dir[s]); err != nil {
			return math.Inf(1)
		}
	}
	if err := o.evalInto(o.probeEv, o.cand); err != nil {
		return math.Inf(1)
	}
	return o.probeEv.U
}

// lineSearch is descent's V3 search (geometric bracket + conservative
// trisection) over the shared stacked step. Probes run one at a time —
// the per-probe K-sensor evaluation is what fans out across the pool —
// so the probe sequence is identical for every worker count.
func (o *Optimizer) lineSearch(curU float64) (float64, bool) {
	o.probes = 0
	bound := stackMaxFeasibleStep(o.ps, o.dir, o.opts.MinProb)
	if bound <= 0 {
		return 0, false
	}
	target := curU - 1e-15*math.Max(1, math.Abs(curU))

	bestStep, bestU := 0.0, curU
	worseStreak := 0
	for k, delta := 0, bound; k < lsMaxProbes && delta > 1e-18*bound; k, delta = k+1, delta/lsShrink {
		u := o.phi(delta)
		if u < bestU {
			bestStep, bestU = delta, u
			worseStreak = 0
		} else if bestStep > 0 {
			worseStreak++
			if worseStreak >= 2 {
				break
			}
		}
	}
	if bestStep == 0 || bestU >= target {
		return 0, false
	}

	lo := bestStep / lsShrink
	hi := math.Min(bound, bestStep*lsShrink)
	tol := o.opts.LineSearchTol * (hi - lo)
	for hi-lo > tol {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		u1 := o.phi(m1)
		u2 := o.phi(m2)
		if u1 < bestU {
			bestStep, bestU = m1, u1
		}
		if u2 < bestU {
			bestStep, bestU = m2, u2
		}
		if u1 <= u2 {
			hi = m2
		} else {
			lo = m1
		}
	}
	return bestStep, true
}

// Optimize runs one seeded fleet optimization over the given cost model.
func Optimize(cm *cost.Model, opts Options) (*Result, error) {
	return OptimizeContext(context.Background(), cm, opts)
}

// OptimizeContext is Optimize with cooperative cancellation.
func OptimizeContext(ctx context.Context, cm *cost.Model, opts Options) (*Result, error) {
	o, err := NewOptimizer(cm, opts)
	if err != nil {
		return nil, err
	}
	return o.RunContext(ctx)
}
