package fleet

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/descent"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/topology"
)

// randomErgodicP mirrors the cost package's test helper: a random
// strictly positive stochastic matrix.
func randomErgodicP(src *rng.Source, m int) *mat.Matrix {
	p := mat.New(m, m)
	row := make([]float64, m)
	for i := 0; i < m; i++ {
		src.DirichletRow(row, 1)
		for j := range row {
			row[j] = 0.8*row[j] + 0.2/float64(m)
		}
		p.SetRow(i, row)
	}
	return p
}

// zeroRowSumDirection returns a random tangent direction.
func zeroRowSumDirection(src *rng.Source, n int) *mat.Matrix {
	v := mat.New(n, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			x := src.Norm(0, 1)
			v.Set(i, j, x)
			sum += x
		}
		for j := 0; j < n; j++ {
			v.Add(i, j, -sum/float64(n))
		}
	}
	return v
}

func newCostModel(t *testing.T, top *topology.Topology) *cost.Model {
	t.Helper()
	cm, err := cost.NewModel(top, cost.Uniform(top.M(), 1, 1))
	if err != nil {
		t.Fatalf("cost.NewModel: %v", err)
	}
	return cm
}

func randomStack(src *rng.Source, k, m int) []*mat.Matrix {
	ps := make([]*mat.Matrix, k)
	for s := range ps {
		ps[s] = randomErgodicP(src, m)
	}
	return ps
}

func TestNewModelValidation(t *testing.T) {
	cm := newCostModel(t, topology.Topology2())
	m := cm.Topology().M()
	cases := []struct {
		name    string
		sensors int
		resp    [][]float64
	}{
		{"zero sensors", 0, nil},
		{"negative sensors", -1, nil},
		{"row count mismatch", 2, UniformResponsibility(3, m)},
		{"row length mismatch", 2, [][]float64{make([]float64, m), make([]float64, m+1)}},
		{"nan share", 2, func() [][]float64 {
			r := UniformResponsibility(2, m)
			r[0][0] = math.NaN()
			return r
		}()},
		{"negative share", 2, func() [][]float64 {
			r := UniformResponsibility(2, m)
			r[1][1] = -0.1
			return r
		}()},
		{"unclaimed poi", 2, func() [][]float64 {
			r := UniformResponsibility(2, m)
			r[0][0], r[1][0] = 0, 0
			return r
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewModel(cm, tc.sensors, tc.resp); !errors.Is(err, ErrModel) {
				t.Errorf("err = %v, want ErrModel", err)
			}
		})
	}
}

// TestSingleSensorReduction pins the fleet cost's contract at K=1 with
// full responsibility: every term must agree with the single-sensor
// model. The coverage discrepancy is rebuilt from CoverTime − Φ·TotalTime
// rather than the at-table fold, so the comparison is to reassociation
// accuracy, not bit-exact.
func TestSingleSensorReduction(t *testing.T) {
	for _, top := range []*topology.Topology{topology.Topology2(), topology.Topology3()} {
		cm := newCostModel(t, top)
		fm, err := NewModel(cm, 1, nil)
		if err != nil {
			t.Fatalf("NewModel: %v", err)
		}
		src := rng.New(7)
		for trial := 0; trial < 5; trial++ {
			p := randomErgodicP(src, top.M())
			sev, err := cm.Evaluate(p)
			if err != nil {
				t.Fatalf("cost Evaluate: %v", err)
			}
			fev, err := fm.Evaluate([]*mat.Matrix{p})
			if err != nil {
				t.Fatalf("fleet Evaluate: %v", err)
			}
			rel := func(a, b float64) float64 {
				return math.Abs(a-b) / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
			}
			if rel(fev.U, sev.U) > 1e-9 {
				t.Fatalf("trial %d: fleet U %v, single U %v", trial, fev.U, sev.U)
			}
			if rel(fev.DeltaC, sev.DeltaC) > 1e-9 {
				t.Fatalf("trial %d: fleet ΔC %v, single ΔC %v", trial, fev.DeltaC, sev.DeltaC)
			}
			// The exposure path shares the exact arithmetic, so it is
			// bit-identical.
			if fev.EBar != sev.EBar {
				t.Fatalf("trial %d: fleet Ē %v, single Ē %v", trial, fev.EBar, sev.EBar)
			}
			for i := 0; i < top.M(); i++ {
				if fev.MinExposure[i] != sev.EBarI[i] {
					t.Fatalf("trial %d: MinExposure[%d] = %v, want %v",
						trial, i, fev.MinExposure[i], sev.EBarI[i])
				}
				if fev.Owner[i] != 0 {
					t.Fatalf("trial %d: Owner[%d] = %d", trial, i, fev.Owner[i])
				}
			}
		}
	}
}

// TestGradientMatchesFiniteDifference validates the stacked joint
// gradient against central differences of the joint cost along random
// tangent directions — per sensor block and for the whole stack.
func TestGradientMatchesFiniteDifference(t *testing.T) {
	tops := map[string]*topology.Topology{
		"topology2": topology.Topology2(),
		"topology3": topology.Topology3(),
	}
	resps := map[string]func(k, m int) [][]float64{
		"uniform": func(k, m int) [][]float64 { return nil },
		"skewed": func(k, m int) [][]float64 {
			r := UniformResponsibility(k, m)
			for i := 0; i < m; i++ {
				r[0][i] = 0.25
				r[k-1][i] = 1.75 - 0.5*float64(k)*0.25 // keep column sums positive
			}
			return r
		},
	}
	for topName, top := range tops {
		for respName, mkResp := range resps {
			for _, k := range []int{2, 3} {
				name := topName + "/" + respName + "/k" + string(rune('0'+k))
				t.Run(name, func(t *testing.T) {
					cm := newCostModel(t, top)
					fm, err := NewModel(cm, k, mkResp(k, top.M()))
					if err != nil {
						t.Fatalf("NewModel: %v", err)
					}
					src := rng.New(uint64(len(topName)*1000 + len(respName)*10 + k))
					const h = 1e-6
					m := top.M()
					for trial := 0; trial < 6; trial++ {
						ps := randomStack(src, k, m)
						ev, grads, err := fm.Gradient(ps)
						if err != nil {
							t.Fatalf("Gradient: %v", err)
						}
						// The min-over-sensors exposure is non-smooth where two
						// sensors tie; random stacks never land exactly on a
						// tie, but a near-tie makes the finite difference cross
						// the kink. Skip those trials.
						if nearTie(fm, ps, 1e-3) {
							continue
						}
						vs := make([]*mat.Matrix, k)
						var analytic float64
						for s := 0; s < k; s++ {
							v := zeroRowSumDirection(src, m)
							mat.ScaleInPlace(0.01/(mat.MaxAbs(v)+1e-12), v)
							vs[s] = v
							d, err := cost.DirectionalDerivative(grads[s], v)
							if err != nil {
								t.Fatalf("DirectionalDerivative: %v", err)
							}
							analytic += d
						}
						up := make([]*mat.Matrix, k)
						dn := make([]*mat.Matrix, k)
						for s := 0; s < k; s++ {
							up[s] = ps[s].Clone()
							dn[s] = ps[s].Clone()
							if err := mat.AddInPlace(up[s], h, vs[s]); err != nil {
								t.Fatal(err)
							}
							if err := mat.AddInPlace(dn[s], -h, vs[s]); err != nil {
								t.Fatal(err)
							}
						}
						evUp, err := fm.Evaluate(up)
						if err != nil {
							t.Fatalf("Evaluate(+h): %v", err)
						}
						evDn, err := fm.Evaluate(dn)
						if err != nil {
							t.Fatalf("Evaluate(-h): %v", err)
						}
						fd := (evUp.U - evDn.U) / (2 * h)
						scale := 1 + math.Abs(fd)
						if math.Abs(analytic-fd) > 2e-4*scale {
							t.Fatalf("trial %d: analytic %v, FD %v (rel err %v, U %v)",
								trial, analytic, fd, math.Abs(analytic-fd)/scale, ev.U)
						}
					}
				})
			}
		}
	}
}

// nearTie reports whether any PoI's two smallest per-sensor exposures
// are within relTol of each other — points where the min's kink breaks
// finite differencing.
func nearTie(fm *Model, ps []*mat.Matrix, relTol float64) bool {
	k := len(ps)
	if k < 2 {
		return false
	}
	ebars := make([][]float64, k)
	for s := 0; s < k; s++ {
		ev, err := fm.Cost().Evaluate(ps[s])
		if err != nil {
			return true
		}
		ebars[s] = append([]float64(nil), ev.EBarI...)
	}
	m := ps[0].Rows()
	for i := 0; i < m; i++ {
		best, second := math.Inf(1), math.Inf(1)
		for s := 0; s < k; s++ {
			e := ebars[s][i]
			if e < best {
				best, second = e, best
			} else if e < second {
				second = e
			}
		}
		if second-best < relTol*math.Max(1, best) {
			return true
		}
	}
	return false
}

// optimizeTwice runs the same configuration twice and returns both
// results.
func optimizeTwice(t *testing.T, cm *cost.Model, opts Options) (*Result, *Result) {
	t.Helper()
	a, err := Optimize(cm, opts)
	if err != nil {
		t.Fatalf("Optimize #1: %v", err)
	}
	b, err := Optimize(cm, opts)
	if err != nil {
		t.Fatalf("Optimize #2: %v", err)
	}
	return a, b
}

func sameTrace(t *testing.T, a, b []descent.IterRecord, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: trace lengths %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		ra, rb := a[i], b[i]
		// Probes is scheduling-independent here (the fleet search probes
		// serially), so the full record must match.
		if ra != rb {
			t.Fatalf("%s: trace[%d] differs:\n  %+v\n  %+v", label, i, ra, rb)
		}
	}
}

func sameStack(t *testing.T, a, b []*mat.Matrix, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: stack sizes %d vs %d", label, len(a), len(b))
	}
	for s := range a {
		da, db := a[s].Data(), b[s].Data()
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("%s: sensor %d entry %d: %v vs %v", label, s, i, da[i], db[i])
			}
		}
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	cm := newCostModel(t, topology.Topology3())
	opts := Options{
		Sensors:     2,
		Seed:        42,
		MaxIters:    30,
		StallIters:  1000,
		RecordTrace: true,
		Workers:     1,
	}
	a, b := optimizeTwice(t, cm, opts)
	sameTrace(t, a.Trace, b.Trace, "repeat run")
	sameStack(t, a.Ps, b.Ps, "repeat run")
	if a.Eval.U != b.Eval.U {
		t.Fatalf("best U %v vs %v", a.Eval.U, b.Eval.U)
	}
}

// TestOptimizeWorkersBitIdentical is the fleet golden-trace discipline:
// the stacked descent must produce bit-identical traces and matrices for
// every Workers count, because parallelism only redistributes whole
// sensors across spans.
func TestOptimizeWorkersBitIdentical(t *testing.T) {
	cm := newCostModel(t, topology.Topology3())
	base := Options{
		Sensors:     3,
		Seed:        99,
		MaxIters:    25,
		StallIters:  1000,
		RecordTrace: true,
		Workers:     1,
	}
	ref, err := Optimize(cm, base)
	if err != nil {
		t.Fatalf("Optimize(workers=1): %v", err)
	}
	for _, w := range []int{2, 3, 8} {
		opts := base
		opts.Workers = w
		got, err := Optimize(cm, opts)
		if err != nil {
			t.Fatalf("Optimize(workers=%d): %v", w, err)
		}
		label := "workers=" + string(rune('0'+w))
		sameTrace(t, ref.Trace, got.Trace, label)
		sameStack(t, ref.Ps, got.Ps, label)
		if ref.Eval.U != got.Eval.U {
			t.Fatalf("workers=%d: best U %v vs %v", w, got.Eval.U, ref.Eval.U)
		}
	}
}

func TestOptimizeImproves(t *testing.T) {
	cm := newCostModel(t, topology.Topology1())
	opts := Options{
		Sensors:    2,
		Seed:       5,
		MaxIters:   120,
		StallIters: 1000,
		Workers:    2,
	}
	o, err := NewOptimizer(cm, opts)
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	// Joint cost at the optimizer's own starting stack.
	src := rng.New(opts.Seed)
	init := make([]*mat.Matrix, opts.Sensors)
	for s := range init {
		init[s] = descent.RandomInit(src, cm.Topology().M(), descent.DefaultMinProb)
	}
	fm, err := NewModel(cm, opts.Sensors, nil)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	startEv, err := fm.Evaluate(init)
	if err != nil {
		t.Fatalf("Evaluate(init): %v", err)
	}
	res, err := o.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Eval.U > startEv.U {
		t.Fatalf("best U %v worse than initial %v", res.Eval.U, startEv.U)
	}
	if res.Iters == 0 {
		t.Fatal("no iterations executed")
	}
	// The winning evaluation must reproduce from the winning stack.
	re, err := fm.Evaluate(res.Ps)
	if err != nil {
		t.Fatalf("re-evaluate best stack: %v", err)
	}
	if re.U != res.Eval.U {
		t.Fatalf("re-evaluated U %v != recorded %v", re.U, res.Eval.U)
	}
}

func TestOptimizeWarmStart(t *testing.T) {
	cm := newCostModel(t, topology.Topology2())
	first, err := Optimize(cm, Options{Sensors: 2, Seed: 11, MaxIters: 60, StallIters: 1000, Workers: 1})
	if err != nil {
		t.Fatalf("cold Optimize: %v", err)
	}
	warm, err := Optimize(cm, Options{
		Sensors: 2, Seed: 12, MaxIters: 30, StallIters: 1000, Workers: 1,
		InitialPs: first.Ps,
	})
	if err != nil {
		t.Fatalf("warm Optimize: %v", err)
	}
	// A warm start from the cold optimum must never end up meaningfully
	// worse: the run keeps the best-so-far, whose first candidate is the
	// (clamp-renormalized) cold optimum itself.
	tol := 1e-6 * math.Max(1, math.Abs(first.Eval.U))
	if warm.Eval.U > first.Eval.U+tol {
		t.Fatalf("warm best %v worse than cold best %v", warm.Eval.U, first.Eval.U)
	}
}

func TestOptionsValidation(t *testing.T) {
	cm := newCostModel(t, topology.Topology2())
	cases := []struct {
		name string
		opts Options
	}{
		{"zero sensors", Options{}},
		{"negative iters", Options{Sensors: 2, MaxIters: -1}},
		{"minprob too large", Options{Sensors: 2, MinProb: 0.6}},
		{"initial count mismatch", Options{Sensors: 2, InitialPs: make([]*mat.Matrix, 3)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewOptimizer(cm, tc.opts); !errors.Is(err, ErrOptions) && !errors.Is(err, ErrModel) {
				t.Errorf("err = %v, want ErrOptions/ErrModel", err)
			}
		})
	}
}
