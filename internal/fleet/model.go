// Package fleet optimizes K mobile sensors jointly over the stacked
// K·M² parameter space of their transition matrices.
//
// The joint cost extends the paper's single-sensor U_ε (Eq. 9) in the
// spirit of Eqs. 7–10:
//
//   - Coverage adds across sensors. Each sensor s is assigned a
//     responsibility weight ρ_{s,i} per PoI (rows of a K×M matrix whose
//     columns sum to one; uniform 1/K by default) and contributes
//     G_i^(s) = Σ_{j,k} π_j^(s) p_jk^(s) (T_{jk,i} − ρ_{s,i} Φ_i T_jk),
//     its single-sensor coverage discrepancy against the scaled target
//     ρ_{s,i}Φ_i. The fleet discrepancy is G_i = Σ_s G_i^(s): the fleet
//     meets PoI i's share exactly when the sensors' combined cover time
//     matches Φ_i — responsibility only divides the work, the sum
//     restores the whole. The coverage term is ½ Σ_i α_i G_i².
//   - Exposure takes the best sensor. A PoI's expected exposure before
//     detection is governed by whichever sensor reaches it first, so the
//     fleet exposure at PoI i is Ē_i = min_s Ē_i^(s) (each Ē_i^(s) the
//     paper's Eq. 3 for that sensor's chain) and the term is
//     ½ Σ_i β_i Ē_i². At the min, only the owning sensor's parameters
//     move Ē_i, so the joint gradient masks β to the argmin owner
//     (lowest sensor index on ties) — the exact subgradient.
//   - Barrier, energy and entropy penalties are per-sensor and add.
//
// Because every term is a composition of single-sensor quantities with
// per-PoI coefficients, the joint gradient factors into K independent
// Eq. 10 assemblies with overridden couplings — cost.Model's
// GradientWeightedSolvedIn — and the stacked descent reuses the
// single-sensor machinery wholesale, one cost.Workspace per sensor.
package fleet

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/mat"
)

// ErrModel indicates an invalid fleet model configuration.
var ErrModel = errors.New("fleet: invalid model")

// Model evaluates the joint fleet cost and its stacked gradient for a
// fixed single-sensor cost model, sensor count, and responsibility
// assignment. A Model is immutable after construction and safe for
// concurrent use.
type Model struct {
	cm *cost.Model
	k  int
	m  int
	// resp is the K×M responsibility matrix, row-major: resp[s*m+i] is
	// sensor s's share of PoI i's coverage target.
	resp []float64
	// phi, alpha, beta cache the topology targets and objective weights
	// so the combine loops never chase the topology interface.
	phi   []float64
	alpha []float64
	beta  []float64
}

// UniformResponsibility returns the default assignment ρ_{s,i} = 1/K:
// every sensor owns an equal share of every PoI's coverage target.
func UniformResponsibility(sensors, m int) [][]float64 {
	rows := make([][]float64, sensors)
	v := 1 / float64(sensors)
	for s := range rows {
		row := make([]float64, m)
		for i := range row {
			row[i] = v
		}
		rows[s] = row
	}
	return rows
}

// NewModel builds a fleet model over the given single-sensor cost model.
// A nil responsibility selects the uniform 1/K assignment; otherwise it
// must be K rows of M finite non-negative shares with every PoI claimed
// by at least one sensor. Column sums need not be exactly one — the
// shares scale each sensor's target, and a fleet whose shares sum above
// (below) one at a PoI is simply asked to over- (under-) cover it.
func NewModel(cm *cost.Model, sensors int, responsibility [][]float64) (*Model, error) {
	if sensors < 1 {
		return nil, fmt.Errorf("%w: %d sensors", ErrModel, sensors)
	}
	m := cm.Topology().M()
	resp := make([]float64, sensors*m)
	if responsibility == nil {
		v := 1 / float64(sensors)
		for i := range resp {
			resp[i] = v
		}
	} else {
		if len(responsibility) != sensors {
			return nil, fmt.Errorf("%w: %d responsibility rows for %d sensors",
				ErrModel, len(responsibility), sensors)
		}
		for s, row := range responsibility {
			if len(row) != m {
				return nil, fmt.Errorf("%w: responsibility row %d has %d entries for %d PoIs",
					ErrModel, s, len(row), m)
			}
			for i, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					return nil, fmt.Errorf("%w: responsibility[%d][%d] = %v",
						ErrModel, s, i, v)
				}
				resp[s*m+i] = v
			}
		}
		for i := 0; i < m; i++ {
			var col float64
			for s := 0; s < sensors; s++ {
				col += resp[s*m+i]
			}
			if col <= 0 {
				return nil, fmt.Errorf("%w: PoI %d has zero total responsibility", ErrModel, i)
			}
		}
	}
	w := cm.Weights()
	fm := &Model{
		cm:    cm,
		k:     sensors,
		m:     m,
		resp:  resp,
		phi:   make([]float64, m),
		alpha: w.Alpha,
		beta:  w.Beta,
	}
	top := cm.Topology()
	for i := 0; i < m; i++ {
		fm.phi[i] = top.TargetAt(i)
	}
	return fm, nil
}

// Cost returns the underlying single-sensor cost model.
func (fm *Model) Cost() *cost.Model { return fm.cm }

// Sensors returns the fleet size K.
func (fm *Model) Sensors() int { return fm.k }

// Responsibility returns a copy of the K×M responsibility matrix.
func (fm *Model) Responsibility() [][]float64 {
	out := make([][]float64, fm.k)
	for s := 0; s < fm.k; s++ {
		out[s] = append([]float64(nil), fm.resp[s*fm.m:(s+1)*fm.m]...)
	}
	return out
}

// Evaluation is the joint cost breakdown at one stack of K transition
// matrices.
type Evaluation struct {
	// U is the total penalized joint cost, the optimizer objective.
	U float64
	// Objective is U without the barrier penalties.
	Objective float64

	// CoverageTerm is ½ Σ_i α_i G_i² over the fleet discrepancies.
	CoverageTerm float64
	// ExposureTerm is ½ Σ_i β_i (min_s Ē_i^(s))².
	ExposureTerm float64
	// Penalty is the summed per-sensor barrier contribution.
	Penalty float64
	// EnergyTerm and EntropyTerm are the summed per-sensor §VII
	// extensions (zero when disabled).
	EnergyTerm  float64
	EntropyTerm float64

	// DeltaC is the weight-free fleet coverage deviation Σ_i G_i²
	// (Eq. 12 with the fleet G).
	DeltaC float64
	// EBar is sqrt(Σ_i Ē_i²) over the min-over-sensors exposures
	// (Eq. 13 with the fleet Ē).
	EBar float64
	// G are the fleet per-PoI coverage discrepancies Σ_s G_i^(s).
	G []float64
	// MinExposure are the per-PoI fleet exposures min_s Ē_i^(s).
	MinExposure []float64
	// Owner[i] is the sensor achieving MinExposure[i] (lowest index on
	// ties) — the sensor whose parameters the exposure gradient flows to.
	Owner []int
	// UnionShare is the analytic prediction of the simulated union
	// coverage share per PoI: 1 − Π_s (1 − C̄_i^(s)), the
	// independent-overlap approximation of the fraction of time at least
	// one sensor covers PoI i.
	UnionShare []float64
}

// Clone returns a deep copy detached from any optimizer buffers.
func (ev *Evaluation) Clone() *Evaluation {
	out := *ev
	out.G = append([]float64(nil), ev.G...)
	out.MinExposure = append([]float64(nil), ev.MinExposure...)
	out.Owner = append([]int(nil), ev.Owner...)
	out.UnionShare = append([]float64(nil), ev.UnionShare...)
	return &out
}

// newEvaluation allocates an Evaluation sized for the model.
func (fm *Model) newEvaluation() *Evaluation {
	return &Evaluation{
		G:           make([]float64, fm.m),
		MinExposure: make([]float64, fm.m),
		Owner:       make([]int, fm.m),
		UnionShare:  make([]float64, fm.m),
	}
}

// combine folds K single-sensor evaluations into the joint breakdown.
// Every accumulation is a fixed-order fold (PoIs outer, sensors inner,
// both ascending), so the result is deterministic regardless of how the
// per-sensor evaluations were scheduled.
func (fm *Model) combine(evs []*cost.Evaluation, out *Evaluation) {
	m, k := fm.m, fm.k
	out.U, out.Objective = 0, 0
	out.CoverageTerm, out.ExposureTerm, out.Penalty = 0, 0, 0
	out.EnergyTerm, out.EntropyTerm = 0, 0
	out.DeltaC, out.EBar = 0, 0

	for i := 0; i < m; i++ {
		var g float64
		for s := 0; s < k; s++ {
			ev := evs[s]
			// G_i^(s) against the responsibility-scaled target, rebuilt
			// from the raw numerator: CoverTime − ρΦ·TotalTime.
			g += ev.CoverTime[i] - fm.resp[s*m+i]*fm.phi[i]*ev.TotalTime
		}
		out.G[i] = g
		out.CoverageTerm += 0.5 * fm.alpha[i] * g * g
		out.DeltaC += g * g
	}

	var sumE2 float64
	for i := 0; i < m; i++ {
		best, owner := evs[0].EBarI[i], 0
		for s := 1; s < k; s++ {
			if e := evs[s].EBarI[i]; e < best {
				best, owner = e, s
			}
		}
		out.MinExposure[i] = best
		out.Owner[i] = owner
		out.ExposureTerm += 0.5 * fm.beta[i] * best * best
		sumE2 += best * best
	}
	out.EBar = math.Sqrt(sumE2)

	for i := 0; i < m; i++ {
		prod := 1.0
		for s := 0; s < k; s++ {
			c := evs[s].CBar[i]
			if c < 0 {
				c = 0
			} else if c > 1 {
				c = 1
			}
			prod *= 1 - c
		}
		out.UnionShare[i] = 1 - prod
	}

	for s := 0; s < k; s++ {
		out.Penalty += evs[s].Penalty
		out.EnergyTerm += evs[s].EnergyTerm
		out.EntropyTerm += evs[s].EntropyTerm
	}
	out.Objective = out.CoverageTerm + out.ExposureTerm + out.EnergyTerm + out.EntropyTerm
	out.U = out.Objective + out.Penalty
}

// Evaluate computes the joint cost breakdown at the K-matrix stack ps.
// Each call allocates fresh workspaces; the optimizer's internal loop
// reuses one set instead.
func (fm *Model) Evaluate(ps []*mat.Matrix) (*Evaluation, error) {
	if len(ps) != fm.k {
		return nil, fmt.Errorf("%w: %d matrices for %d sensors", ErrModel, len(ps), fm.k)
	}
	evs := make([]*cost.Evaluation, fm.k)
	for s := 0; s < fm.k; s++ {
		ev, err := fm.cm.EvaluateIn(fm.cm.NewWorkspace(), ps[s])
		if err != nil {
			return nil, fmt.Errorf("fleet: sensor %d: %w", s, err)
		}
		evs[s] = ev
	}
	out := fm.newEvaluation()
	fm.combine(evs, out)
	return out, nil
}

// Gradient evaluates the joint cost at ps and returns the evaluation
// together with the K unprojected gradient blocks of the stacked
// objective (block s is ∂U/∂P^(s), assembled by the single-sensor Eq. 10
// machinery with the fleet couplings). Like Evaluate, each call
// allocates; the optimizer reuses buffers.
func (fm *Model) Gradient(ps []*mat.Matrix) (*Evaluation, []*mat.Matrix, error) {
	if len(ps) != fm.k {
		return nil, nil, fmt.Errorf("%w: %d matrices for %d sensors", ErrModel, len(ps), fm.k)
	}
	wss := make([]*cost.Workspace, fm.k)
	evs := make([]*cost.Evaluation, fm.k)
	for s := 0; s < fm.k; s++ {
		wss[s] = fm.cm.NewWorkspace()
		ev, err := fm.cm.EvaluateIn(wss[s], ps[s])
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: sensor %d: %w", s, err)
		}
		evs[s] = ev
	}
	out := fm.newEvaluation()
	fm.combine(evs, out)

	coverCoef := make([]float64, fm.m)
	betaMask := make([]float64, fm.m)
	for i := 0; i < fm.m; i++ {
		coverCoef[i] = fm.alpha[i] * out.G[i]
	}
	grads := make([]*mat.Matrix, fm.k)
	for s := 0; s < fm.k; s++ {
		cphi := fm.coverPhi(coverCoef, s)
		fm.maskBeta(betaMask, out.Owner, s)
		g, err := fm.cm.GradientWeightedSolvedIn(wss[s], evs[s], coverCoef, cphi, betaMask)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: sensor %d gradient: %w", s, err)
		}
		grads[s] = g.Clone()
	}
	return out, grads, nil
}

// coverPhi returns sensor s's travel-time coupling Σ_i c_i ρ_{s,i} Φ_i
// for the given coverage coefficients.
func (fm *Model) coverPhi(coverCoef []float64, s int) float64 {
	var cphi float64
	base := s * fm.m
	for i := 0; i < fm.m; i++ {
		cphi += coverCoef[i] * fm.resp[base+i] * fm.phi[i]
	}
	return cphi
}

// maskBeta fills dst with β_i where sensor s owns PoI i's min exposure
// and zero elsewhere.
func (fm *Model) maskBeta(dst []float64, owner []int, s int) {
	for i := 0; i < fm.m; i++ {
		if owner[i] == s {
			dst[i] = fm.beta[i]
		} else {
			dst[i] = 0
		}
	}
}
