package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/markov"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/topology"
)

func uniformP(m int) *mat.Matrix {
	p := mat.New(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			p.Set(i, j, 1/float64(m))
		}
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	top := topology.Topology2()
	valid := Config{Topology: top, P: uniformP(3), Steps: 10}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil topology", func(c *Config) { c.Topology = nil }},
		{"nil matrix", func(c *Config) { c.P = nil }},
		{"wrong size", func(c *Config) { c.P = uniformP(4) }},
		{"zero steps", func(c *Config) { c.Steps = 0 }},
		{"bad start", func(c *Config) { c.Start = 5 }},
		{"not stochastic", func(c *Config) {
			p := uniformP(3)
			p.Set(0, 0, 0.9)
			c.P = p
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			if _, err := Run(cfg); !errors.Is(err, ErrConfig) {
				t.Errorf("err = %v, want ErrConfig", err)
			}
		})
	}
}

func TestTimeModelString(t *testing.T) {
	if UnitStep.String() != "unit-step" || Physical.String() != "physical" ||
		PhysicalInterrupted.String() != "physical-interrupted" {
		t.Error("time model names")
	}
	if TimeModel(9).String() == "" {
		t.Error("unknown model name empty")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	top := topology.Topology2()
	cfg := Config{Topology: top, P: uniformP(3), Steps: 1000, Seed: 42}
	m1, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m2, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m1.TotalTime != m2.TotalTime || m1.EBar != m2.EBar || m1.DeltaC != m2.DeltaC {
		t.Error("same seed produced different metrics")
	}
}

func TestBookkeepingConsistency(t *testing.T) {
	top := topology.Topology3()
	met, err := Run(Config{Topology: top, P: uniformP(4), Steps: 5000, Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.Steps != 5000 {
		t.Errorf("Steps = %d", met.Steps)
	}
	// Visits sum to the number of transitions.
	var visits int64
	for _, v := range met.Visits {
		visits += v
	}
	if visits != 5000 {
		t.Errorf("total visits = %d, want 5000", visits)
	}
	// Coverage shares in (0,1), summing below 1 (disjoint PoIs).
	var shareSum float64
	for i, s := range met.CoverageShare {
		if s <= 0 || s >= 1 {
			t.Errorf("share[%d] = %v", i, s)
		}
		shareSum += s
	}
	if shareSum > 1+1e-9 {
		t.Errorf("Σ share = %v > 1", shareSum)
	}
	// Coverage time cannot exceed elapsed time.
	for i, c := range met.CoverageTime {
		if c < 0 || c > met.TotalTime {
			t.Errorf("coverage[%d] = %v of total %v", i, c, met.TotalTime)
		}
	}
	// DeltaC matches its G decomposition.
	var dc float64
	for _, g := range met.G {
		dc += g * g
	}
	if math.Abs(dc-met.DeltaC) > 1e-15 {
		t.Errorf("DeltaC = %v, Σg² = %v", met.DeltaC, dc)
	}
}

// TestVisitFrequenciesMatchStationary verifies the walk realizes the
// chain's stationary distribution.
func TestVisitFrequenciesMatchStationary(t *testing.T) {
	top := topology.Topology1()
	src := rng.New(7)
	p := mat.New(4, 4)
	row := make([]float64, 4)
	for i := 0; i < 4; i++ {
		src.DirichletRow(row, 2)
		for j := range row {
			row[j] = 0.8*row[j] + 0.05
		}
		p.SetRow(i, row)
	}
	chain, err := markov.New(p)
	if err != nil {
		t.Fatalf("markov.New: %v", err)
	}
	sol, err := chain.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	const steps = 400000
	met, err := Run(Config{Topology: top, P: p, Steps: steps, Seed: 11})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 4; i++ {
		freq := float64(met.Visits[i]) / steps
		if math.Abs(freq-sol.Pi[i]) > 0.01 {
			t.Errorf("visit freq[%d] = %v, π = %v", i, freq, sol.Pi[i])
		}
	}
}

// TestCoverageShareConvergesToAnalytic verifies C_i(N)/T(N) → C̄_i (Eq. 2)
// on a topology with pass-through coverage.
func TestCoverageShareConvergesToAnalytic(t *testing.T) {
	top := topology.Topology3()
	p := uniformP(4)
	chain, err := markov.New(p)
	if err != nil {
		t.Fatalf("markov.New: %v", err)
	}
	sol, err := chain.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Analytic C̄ per Eq. 2.
	n := top.M()
	var total float64
	want := make([]float64, n)
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			w := sol.Pi[j] * p.At(j, k)
			total += w * top.TravelTime(j, k)
			for i := 0; i < n; i++ {
				want[i] += w * top.CoverTime(j, k, i)
			}
		}
	}
	for i := range want {
		want[i] /= total
	}
	met, err := Run(Config{Topology: top, P: p, Steps: 400000, Seed: 13})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(met.CoverageShare[i]-want[i]) > 0.01 {
			t.Errorf("share[%d] = %v, analytic %v", i, met.CoverageShare[i], want[i])
		}
	}
}

// TestUnitStepExposureMatchesAnalytic is the paper's §VI-D validation: the
// unit-step mean exposure converges to Ē_i of Eq. 3.
func TestUnitStepExposureMatchesAnalytic(t *testing.T) {
	top := topology.Topology1()
	src := rng.New(17)
	p := mat.New(4, 4)
	row := make([]float64, 4)
	for i := 0; i < 4; i++ {
		src.DirichletRow(row, 2)
		for j := range row {
			row[j] = 0.7*row[j] + 0.075
		}
		p.SetRow(i, row)
	}
	chain, err := markov.New(p)
	if err != nil {
		t.Fatalf("markov.New: %v", err)
	}
	sol, err := chain.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Analytic Ē_i = Σ_{j≠i} p_ij R_ji / (1 − p_ii) (Eq. 3).
	n := 4
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			if j != i {
				s += p.At(i, j) * sol.R.At(j, i)
			}
		}
		want[i] = s / (1 - p.At(i, i))
	}
	met, err := Run(Config{Topology: top, P: p, Steps: 500000, Seed: 19, TimeModel: UnitStep})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		if met.ExposureSegments[i] == 0 {
			t.Fatalf("no exposure segments for PoI %d", i)
		}
		rel := math.Abs(met.MeanExposure[i]-want[i]) / want[i]
		if rel > 0.03 {
			t.Errorf("⟨E_%d⟩ = %v, analytic Ē = %v (rel %v)", i, met.MeanExposure[i], want[i], rel)
		}
	}
}

// TestPhysicalExposureCloseToAnalytic mirrors the paper's Fig. 8
// observation: physical-time exposure is close to, but not exactly, the
// unit-step analytic value.
func TestPhysicalExposureCloseToAnalytic(t *testing.T) {
	top := topology.Topology1()
	p := uniformP(4)
	unit, err := Run(Config{Topology: top, P: p, Steps: 300000, Seed: 23, TimeModel: UnitStep})
	if err != nil {
		t.Fatalf("Run unit: %v", err)
	}
	phys, err := Run(Config{Topology: top, P: p, Steps: 300000, Seed: 23, TimeModel: Physical})
	if err != nil {
		t.Fatalf("Run physical: %v", err)
	}
	for i := 0; i < 4; i++ {
		ratio := phys.MeanExposure[i] / unit.MeanExposure[i]
		// Transitions on topology 1 last between 1 (self) and 1+√2·... ≈
		// 2.6 time units, so the physical exposure is a modest multiple of
		// the step count.
		if ratio < 1 || ratio > 3.5 {
			t.Errorf("PoI %d: physical/unit exposure ratio %v outside [1, 3.5]", i, ratio)
		}
	}
}

// TestPhysicalInterruptedShortensExposure: pass-through sweeps close
// segments early, so interrupted exposure ≤ uninterrupted physical
// exposure on a topology with pass-throughs.
func TestPhysicalInterruptedShortensExposure(t *testing.T) {
	top := topology.Topology3() // line: many pass-throughs
	p := uniformP(4)
	phys, err := Run(Config{Topology: top, P: p, Steps: 200000, Seed: 29, TimeModel: Physical})
	if err != nil {
		t.Fatalf("Run physical: %v", err)
	}
	intr, err := Run(Config{Topology: top, P: p, Steps: 200000, Seed: 29, TimeModel: PhysicalInterrupted})
	if err != nil {
		t.Fatalf("Run interrupted: %v", err)
	}
	// Interior PoIs (1, 2) get swept often; their interrupted mean
	// exposure must be strictly smaller.
	for _, i := range []int{1, 2} {
		if intr.MeanExposure[i] >= phys.MeanExposure[i] {
			t.Errorf("PoI %d: interrupted %v >= physical %v",
				i, intr.MeanExposure[i], phys.MeanExposure[i])
		}
	}
	// Sweeps also create more (shorter) segments.
	for _, i := range []int{1, 2} {
		if intr.ExposureSegments[i] <= phys.ExposureSegments[i] {
			t.Errorf("PoI %d: interrupted segments %d <= physical %d",
				i, intr.ExposureSegments[i], phys.ExposureSegments[i])
		}
	}
}

func TestCollectSegments(t *testing.T) {
	top := topology.Topology2()
	met, err := Run(Config{
		Topology: top, P: uniformP(3), Steps: 20000, Seed: 3,
		CollectSegments: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.Segments == nil {
		t.Fatal("segments not collected")
	}
	for i := 0; i < 3; i++ {
		if len(met.Segments[i]) != met.ExposureSegments[i] {
			t.Fatalf("PoI %d: %d collected vs %d counted",
				i, len(met.Segments[i]), met.ExposureSegments[i])
		}
		var sum float64
		for _, s := range met.Segments[i] {
			if s <= 0 {
				t.Fatalf("PoI %d: non-positive segment %v", i, s)
			}
			sum += s
		}
		mean := sum / float64(len(met.Segments[i]))
		if math.Abs(mean-met.MeanExposure[i]) > 1e-9 {
			t.Errorf("PoI %d: segment mean %v vs reported %v", i, mean, met.MeanExposure[i])
		}
	}
	// Default: no collection.
	met2, err := Run(Config{Topology: top, P: uniformP(3), Steps: 100, Seed: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met2.Segments != nil {
		t.Error("segments collected without the flag")
	}
}

// TestSegmentVarianceMatchesMoments validates the closed-form exposure
// variance (first-passage second moments) against the empirical segment
// distribution — the simulation counterpart of core.ChainAnalysis.
func TestSegmentVarianceMatchesMoments(t *testing.T) {
	top := topology.Topology1()
	src := rng.New(55)
	p := mat.New(4, 4)
	row := make([]float64, 4)
	for i := 0; i < 4; i++ {
		src.DirichletRow(row, 2)
		for j := range row {
			row[j] = 0.7*row[j] + 0.075
		}
		p.SetRow(i, row)
	}
	chain, err := markov.New(p)
	if err != nil {
		t.Fatalf("markov.New: %v", err)
	}
	sol, err := chain.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	moments, err := sol.Moments()
	if err != nil {
		t.Fatalf("Moments: %v", err)
	}
	met, err := Run(Config{
		Topology: top, P: p, Steps: 400000, Seed: 77,
		TimeModel: UnitStep, CollectSegments: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 4; i++ {
		// Analytic mixture variance of the exposure segment for PoI i.
		denom := 1 - p.At(i, i)
		var mean, second float64
		for j := 0; j < 4; j++ {
			if j == i {
				continue
			}
			w := p.At(i, j) / denom
			mean += w * moments.Mean.At(j, i)
			second += w * moments.Second.At(j, i)
		}
		wantVar := second - mean*mean

		var s, s2 float64
		for _, v := range met.Segments[i] {
			s += v
			s2 += v * v
		}
		n := float64(len(met.Segments[i]))
		gotMean := s / n
		gotVar := s2/n - gotMean*gotMean
		if rel := math.Abs(gotVar-wantVar) / wantVar; rel > 0.06 {
			t.Errorf("PoI %d: empirical segment variance %v vs analytic %v (rel %v)",
				i, gotVar, wantVar, rel)
		}
	}
}

func TestRandomStart(t *testing.T) {
	top := topology.Topology2()
	met, err := Run(Config{Topology: top, P: uniformP(3), Steps: 100, Seed: 5, Start: -1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.TotalTime <= 0 {
		t.Error("no time elapsed")
	}
}

func TestRunMany(t *testing.T) {
	top := topology.Topology2()
	cfg := Config{Topology: top, P: uniformP(3), Steps: 1000, Seed: 9}
	runs, err := RunMany(cfg, 5)
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	if len(runs) != 5 {
		t.Fatalf("got %d runs", len(runs))
	}
	distinct := false
	for i := 1; i < len(runs); i++ {
		if runs[i].TotalTime != runs[0].TotalTime {
			distinct = true
		}
	}
	if !distinct {
		t.Error("replicated runs all identical; seeds not split")
	}
	if _, err := RunMany(cfg, 0); !errors.Is(err, ErrConfig) {
		t.Errorf("err = %v, want ErrConfig", err)
	}
}
