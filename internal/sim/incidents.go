package sim

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Incident modeling: the paper motivates the exposure objective by the
// "delay in responding to an incident, say an accident that requires
// rescue operations". This file makes that concrete: incidents occur at
// each PoI as a Poisson process and are detected the next time the sensor
// covers the PoI. Detection delay is the time from occurrence to the next
// coverage.
//
// The simulation is statistically exact without storing an event
// timeline: conditioned on the sensor's realized trajectory, the
// uncovered intervals of PoI i are known; a Poisson(λ·L) count of
// incidents falls in each uncovered interval of length L, each with an
// independent Uniform(0, L) residual delay, and incidents during covered
// time are detected immediately.

// IncidentMetrics reports detection-delay statistics for one run.
type IncidentMetrics struct {
	// Rates echoes the per-PoI incident rates used.
	Rates []float64
	// Detected counts detected incidents per PoI (including immediate
	// detections during covered time).
	Detected []int64
	// Undetected counts incidents still pending when the run ended.
	Undetected []int64
	// MeanDelay is the mean detection delay per PoI (zero-delay immediate
	// detections included).
	MeanDelay []float64
	// MaxDelay is the largest observed delay per PoI.
	MaxDelay []float64
	// OverallMeanDelay averages across all detected incidents.
	OverallMeanDelay float64

	// Trajectory statistics enabling closed-form cross-checks: per PoI,
	// the total uncovered time, the sum of squared uncovered-gap lengths,
	// and the total covered time.
	GapTime      []float64
	GapSquared   []float64
	CoveredTime  []float64
	ElapsedTime  float64
	GapsObserved []int
}

// RunIncidents simulates the walk of cfg and overlays Poisson incidents
// with the given per-PoI rates (events per unit time). Exposure/coverage
// timing uses the physical model with pass-through interruption — the
// sensor detects whenever the PoI is actually within range.
func RunIncidents(cfg Config, rates []float64) (*IncidentMetrics, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	top := cfg.Topology
	n := top.M()
	if len(rates) != n {
		return nil, fmt.Errorf("%w: %d rates for %d PoIs", ErrConfig, len(rates), n)
	}
	for i, r := range rates {
		if r < 0 || math.IsNaN(r) {
			return nil, fmt.Errorf("%w: rate[%d] = %v", ErrConfig, i, r)
		}
	}
	src := rng.New(cfg.Seed)
	cur := cfg.Start
	if cur == -1 {
		cur = src.IntN(n)
	}

	met := &IncidentMetrics{
		Rates:        append([]float64(nil), rates...),
		Detected:     make([]int64, n),
		Undetected:   make([]int64, n),
		MeanDelay:    make([]float64, n),
		MaxDelay:     make([]float64, n),
		GapTime:      make([]float64, n),
		GapSquared:   make([]float64, n),
		CoveredTime:  make([]float64, n),
		GapsObserved: make([]int, n),
	}
	delaySum := make([]float64, n)
	lastExit := make([]float64, n) // absolute time coverage of i last ended
	var now float64
	row := make([]float64, n)

	// window records one coverage interval of a PoI within the current
	// transition, in transition-relative time.
	type window struct {
		poi         int
		enter, exit float64
	}
	var windows []window

	for step := 0; step < cfg.Steps; step++ {
		for j := 0; j < n; j++ {
			row[j] = cfg.P.At(cur, j)
		}
		next := src.Categorical(row)
		if next < 0 {
			return nil, fmt.Errorf("%w: zero row %d", ErrConfig, cur)
		}
		var duration float64
		windows = windows[:0]
		if next == cur {
			duration = top.PoIAt(cur).Pause
			windows = append(windows, window{poi: cur, enter: 0, exit: duration})
		} else {
			duration = top.MoveTime(cur, next) + top.PoIAt(next).Pause
			for _, e := range top.Passes(cur, next) {
				windows = append(windows, window{poi: e.PoI, enter: e.Enter, exit: e.Exit})
			}
		}

		for _, w := range windows {
			i := w.poi
			gap := now + w.enter - lastExit[i]
			if gap < 0 {
				gap = 0
			}
			if gap > 0 && rates[i] > 0 {
				k := src.Poisson(rates[i] * gap)
				for e := int64(0); e < k; e++ {
					d := src.Uniform(0, gap)
					delaySum[i] += d
					if d > met.MaxDelay[i] {
						met.MaxDelay[i] = d
					}
				}
				met.Detected[i] += k
			}
			met.GapTime[i] += gap
			met.GapSquared[i] += gap * gap
			if gap > 0 {
				met.GapsObserved[i]++
			}
			// Immediate detections during the covered window.
			covered := w.exit - w.enter
			met.CoveredTime[i] += covered
			if covered > 0 && rates[i] > 0 {
				met.Detected[i] += src.Poisson(rates[i] * covered)
			}
			lastExit[i] = now + w.exit
		}
		now += duration
		cur = next
	}
	met.ElapsedTime = now

	// Trailing gaps: incidents after the last coverage remain undetected.
	var totalDelay float64
	var totalDetected int64
	for i := 0; i < n; i++ {
		if trailing := now - lastExit[i]; trailing > 0 && rates[i] > 0 {
			met.Undetected[i] = src.Poisson(rates[i] * trailing)
		}
		if met.Detected[i] > 0 {
			met.MeanDelay[i] = delaySum[i] / float64(met.Detected[i])
		}
		totalDelay += delaySum[i]
		totalDetected += met.Detected[i]
	}
	if totalDetected > 0 {
		met.OverallMeanDelay = totalDelay / float64(totalDetected)
	}
	return met, nil
}

// ExpectedMeanDelay returns, per PoI, the trajectory-conditional expected
// mean detection delay implied by the realized gap structure:
//
//	E[delay] = (Σ L² / 2) / (Σ L + covered)
//
// where the L are the uncovered gap lengths. The Monte Carlo MeanDelay of
// the same run converges to this value as the incident rate grows, which
// the tests exploit.
func (m *IncidentMetrics) ExpectedMeanDelay(i int) float64 {
	denom := m.GapTime[i] + m.CoveredTime[i]
	if denom == 0 {
		return 0
	}
	return m.GapSquared[i] / 2 / denom
}
