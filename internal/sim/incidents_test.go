package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/topology"
)

func TestRunIncidentsValidation(t *testing.T) {
	top := topology.Topology2()
	cfg := Config{Topology: top, P: uniformP(3), Steps: 100, Seed: 1}
	if _, err := RunIncidents(cfg, []float64{1, 1}); !errors.Is(err, ErrConfig) {
		t.Errorf("wrong rate count err = %v", err)
	}
	if _, err := RunIncidents(cfg, []float64{1, -1, 1}); !errors.Is(err, ErrConfig) {
		t.Errorf("negative rate err = %v", err)
	}
	bad := cfg
	bad.Steps = 0
	if _, err := RunIncidents(bad, []float64{1, 1, 1}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad config err = %v", err)
	}
}

func TestRunIncidentsDeterministicAlternation(t *testing.T) {
	// A 2-PoI forced alternation: the sensor bounces 0 ↔ 1. Each PoI's
	// uncovered gap is the travel away, the pause at the other PoI, and
	// the travel back: 1 + 1 + 1 = 3 time units (unit spacing, unit
	// speed, unit pause); delays are Uniform(0, 3) → mean 1.5 among
	// gap incidents.
	top, err := topology.Line("pair", 2, []float64{0.5, 0.5})
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	p, _ := mat.NewFromRows([][]float64{{0, 1}, {1, 0}})
	met, err := RunIncidents(Config{Topology: top, P: p, Steps: 60000, Seed: 3}, []float64{5, 5})
	if err != nil {
		t.Fatalf("RunIncidents: %v", err)
	}
	for i := 0; i < 2; i++ {
		if met.Detected[i] == 0 {
			t.Fatalf("PoI %d: no detections", i)
		}
		// Mix of gap incidents (mean delay 1.5 over gap 3) and immediate
		// ones during the pause (1 of every 4 time units covered):
		// expected mean = (3²/2)/(3+1) = 1.125.
		want := met.ExpectedMeanDelay(i)
		// The first gap (from t = 0 rather than from a departure) is
		// shorter than the steady-state 3 units, so the expectation is a
		// hair below 1.125 on a finite run.
		if math.Abs(want-1.125) > 1e-3 {
			t.Errorf("PoI %d: gap structure expectation %v, want 1.125", i, want)
		}
		if rel := math.Abs(met.MeanDelay[i]-want) / want; rel > 0.03 {
			t.Errorf("PoI %d: measured mean delay %v, expectation %v", i, met.MeanDelay[i], want)
		}
		if met.MaxDelay[i] > 3.0001 {
			t.Errorf("PoI %d: max delay %v exceeds the gap length", i, met.MaxDelay[i])
		}
	}
}

func TestRunIncidentsMatchesGapExpectation(t *testing.T) {
	// On a random-walk schedule the measured mean delay must converge to
	// the trajectory-conditional expectation.
	top := topology.Topology3()
	met, err := RunIncidents(Config{Topology: top, P: uniformP(4), Steps: 80000, Seed: 7},
		[]float64{2, 2, 2, 2})
	if err != nil {
		t.Fatalf("RunIncidents: %v", err)
	}
	for i := 0; i < 4; i++ {
		want := met.ExpectedMeanDelay(i)
		if want == 0 {
			t.Fatalf("PoI %d: no gap structure", i)
		}
		if rel := math.Abs(met.MeanDelay[i]-want) / want; rel > 0.05 {
			t.Errorf("PoI %d: measured %v vs expectation %v", i, met.MeanDelay[i], want)
		}
	}
}

func TestRunIncidentsZeroRate(t *testing.T) {
	top := topology.Topology2()
	met, err := RunIncidents(Config{Topology: top, P: uniformP(3), Steps: 1000, Seed: 1},
		[]float64{0, 0, 0})
	if err != nil {
		t.Fatalf("RunIncidents: %v", err)
	}
	for i := 0; i < 3; i++ {
		if met.Detected[i] != 0 || met.Undetected[i] != 0 {
			t.Errorf("PoI %d: incidents with zero rate", i)
		}
	}
	if met.ElapsedTime <= 0 {
		t.Error("no time elapsed")
	}
}

func TestRunIncidentsRateScaling(t *testing.T) {
	// Doubling the rate roughly doubles the detections without changing
	// the mean delay (delay depends on the trajectory, not the rate).
	top := topology.Topology1()
	cfg := Config{Topology: top, P: uniformP(4), Steps: 50000, Seed: 5}
	lo, err := RunIncidents(cfg, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatalf("RunIncidents: %v", err)
	}
	hi, err := RunIncidents(cfg, []float64{2, 2, 2, 2})
	if err != nil {
		t.Fatalf("RunIncidents: %v", err)
	}
	var nLo, nHi int64
	for i := 0; i < 4; i++ {
		nLo += lo.Detected[i]
		nHi += hi.Detected[i]
	}
	ratio := float64(nHi) / float64(nLo)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("detection ratio %v, want ~2", ratio)
	}
	if rel := math.Abs(lo.OverallMeanDelay-hi.OverallMeanDelay) / lo.OverallMeanDelay; rel > 0.05 {
		t.Errorf("mean delay changed with rate: %v vs %v", lo.OverallMeanDelay, hi.OverallMeanDelay)
	}
}

// TestIncidentDelayTracksExposure ties the incident model to the paper's
// thesis: a schedule with lower mean exposure detects incidents sooner.
func TestIncidentDelayTracksExposure(t *testing.T) {
	top := topology.Topology1()
	// Mobile schedule: uniform walk. Sluggish schedule: heavy self-loops.
	mobile := uniformP(4)
	sluggish := mat.New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				sluggish.Set(i, j, 0.91)
			} else {
				sluggish.Set(i, j, 0.03)
			}
		}
	}
	rates := []float64{1, 1, 1, 1}
	fast, err := RunIncidents(Config{Topology: top, P: mobile, Steps: 60000, Seed: 9}, rates)
	if err != nil {
		t.Fatalf("RunIncidents mobile: %v", err)
	}
	slow, err := RunIncidents(Config{Topology: top, P: sluggish, Steps: 60000, Seed: 9}, rates)
	if err != nil {
		t.Fatalf("RunIncidents sluggish: %v", err)
	}
	if fast.OverallMeanDelay >= slow.OverallMeanDelay {
		t.Errorf("mobile delay %v not below sluggish %v",
			fast.OverallMeanDelay, slow.OverallMeanDelay)
	}
}
