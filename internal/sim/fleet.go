package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/topology"
)

// sensorSpanTask fans whole-sensor unrolls across a pool: each worker
// owns the contiguous sensor span [lo, hi).
type sensorSpanTask struct {
	fn func(s int)
}

func (t sensorSpanTask) Run(_, lo, hi int) {
	for s := lo; s < hi; s++ {
		t.fn(s)
	}
}

// Fleet simulation: several sensors execute (copies of) a Markov schedule
// over the same PoIs, and coverage is the union — a PoI is covered
// whenever any sensor has it in range. The paper optimizes a single
// sensor; fleets are the natural deployment extension, and because the
// analytic machinery does not compose across independent walkers, the
// fleet is evaluated by exact simulation: each sensor's trajectory is
// unrolled into per-PoI absolute coverage windows, the windows are merged
// on a common timeline, and the union coverage and gap (exposure)
// statistics are measured on the merged intervals.

// FleetConfig describes a fleet run.
type FleetConfig struct {
	// Topology supplies the physical layout.
	Topology *topology.Topology
	// P is the shared transition matrix each sensor executes when Ps is
	// nil — the replicated-fleet configuration.
	P *mat.Matrix
	// Ps, when non-nil, gives each sensor its own transition matrix
	// (jointly optimized fleets); its length must equal Sensors and P is
	// ignored.
	Ps []*mat.Matrix
	// Sensors is the fleet size (≥ 1).
	Sensors int
	// Steps is the number of Markov transitions per sensor.
	Steps int
	// Seed drives all walks (each sensor gets a split stream).
	Seed uint64
	// Stagger, when true, starts sensor k at PoI k mod M instead of all
	// sensors at PoI 0 — the deployment-sensible default.
	Stagger bool
	// Workers bounds the OS-level workers the trajectory unrolls may
	// occupy (one sensor per span). Every sensor draws from its own
	// pre-split rng stream and writes only its own window set, so results
	// are bit-for-bit identical for every value. Zero selects GOMAXPROCS;
	// one forces the serial path.
	Workers int
}

func (c *FleetConfig) validate() error {
	if c.Topology == nil {
		return fmt.Errorf("%w: nil topology", ErrConfig)
	}
	if c.Sensors < 1 {
		return fmt.Errorf("%w: %d sensors", ErrConfig, c.Sensors)
	}
	n := c.Topology.M()
	if c.Ps != nil {
		if len(c.Ps) != c.Sensors {
			return fmt.Errorf("%w: %d matrices for %d sensors", ErrConfig, len(c.Ps), c.Sensors)
		}
		for s, p := range c.Ps {
			if p == nil || p.Rows() != n || p.Cols() != n {
				return fmt.Errorf("%w: bad matrix for sensor %d", ErrConfig, s)
			}
		}
	} else if c.P == nil || c.P.Rows() != n || c.P.Cols() != n {
		return fmt.Errorf("%w: bad matrix", ErrConfig)
	}
	if c.Steps <= 0 {
		return fmt.Errorf("%w: steps %d", ErrConfig, c.Steps)
	}
	return nil
}

// matrixFor returns the transition matrix sensor s executes.
func (c *FleetConfig) matrixFor(s int) *mat.Matrix {
	if c.Ps != nil {
		return c.Ps[s]
	}
	return c.P
}

// FleetMetrics reports the union-coverage outcomes.
type FleetMetrics struct {
	// Sensors echoes the fleet size.
	Sensors int
	// Horizon is the common physical time span the metrics cover (the
	// shortest sensor trajectory).
	Horizon float64
	// CoverageShare is the union coverage time fraction per PoI.
	CoverageShare []float64
	// DeltaC is Σ_i (share_i − Φ_i)² on the union shares — the fleet
	// counterpart of Eq. 12 (normalized form).
	DeltaC float64
	// MeanGap and MaxGap are the mean and maximum uncovered interval per
	// PoI on the merged timeline (physical time).
	MeanGap []float64
	MaxGap  []float64
	// Gaps counts uncovered intervals per PoI.
	Gaps []int
}

// interval is one absolute-time coverage window.
type interval struct {
	start, end float64
}

// SimulateFleet runs the fleet and measures union coverage. Results are
// bit-for-bit identical for every Workers setting: the per-sensor rng
// streams are split from the master sequentially before any trajectory
// runs, each sensor unrolls into its own private window set, and the
// sets are concatenated in ascending sensor order — exactly the order a
// serial shared-append run produces.
func SimulateFleet(cfg FleetConfig) (*FleetMetrics, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Ps != nil {
		for s := range cfg.Ps {
			if err := checkStochasticRows(cfg.Ps[s]); err != nil {
				return nil, fmt.Errorf("sensor %d: %w", s, err)
			}
		}
	} else if err := checkStochasticRows(cfg.P); err != nil {
		return nil, err
	}
	top := cfg.Topology
	n := top.M()
	master := rng.New(cfg.Seed)

	// Split every sensor's stream up front, in sensor order, so the
	// stream assignment is independent of unroll scheduling.
	srcs := make([]*rng.Source, cfg.Sensors)
	for s := range srcs {
		srcs[s] = master.Split()
	}

	// Unroll each sensor into its own per-PoI coverage windows.
	perSensor := make([][][]interval, cfg.Sensors)
	elapsed := make([]float64, cfg.Sensors)
	unroll := func(s int) {
		start := 0
		if cfg.Stagger {
			start = s % n
		}
		perSensor[s] = make([][]interval, n)
		elapsed[s] = unrollWindows(top, cfg.matrixFor(s), srcs[s], cfg.Steps, start, perSensor[s])
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 && cfg.Sensors > 1 {
		pool := par.New(workers)
		pool.Run(cfg.Sensors, sensorSpanTask{unroll})
		pool.Stop()
	} else {
		for s := 0; s < cfg.Sensors; s++ {
			unroll(s)
		}
	}

	// Concatenate in ascending sensor order and take the common horizon.
	windows := make([][]interval, n)
	horizon := math.Inf(1)
	for s := 0; s < cfg.Sensors; s++ {
		for i := 0; i < n; i++ {
			windows[i] = append(windows[i], perSensor[s][i]...)
		}
		if elapsed[s] < horizon {
			horizon = elapsed[s]
		}
	}

	met := &FleetMetrics{
		Sensors:       cfg.Sensors,
		Horizon:       horizon,
		CoverageShare: make([]float64, n),
		MeanGap:       make([]float64, n),
		MaxGap:        make([]float64, n),
		Gaps:          make([]int, n),
	}
	for i := 0; i < n; i++ {
		covered, gaps := mergeAndMeasure(windows[i], horizon)
		met.CoverageShare[i] = covered / horizon
		var gapSum, gapMax float64
		for _, g := range gaps {
			gapSum += g
			if g > gapMax {
				gapMax = g
			}
		}
		met.Gaps[i] = len(gaps)
		if len(gaps) > 0 {
			met.MeanGap[i] = gapSum / float64(len(gaps))
		}
		met.MaxGap[i] = gapMax
		d := met.CoverageShare[i] - top.TargetAt(i)
		met.DeltaC += d * d
	}
	return met, nil
}

// checkStochasticRows defers to the markov validation used by Run.
func checkStochasticRows(p *mat.Matrix) error {
	for i, s := range mat.RowSums(p) {
		if math.Abs(s-1) > 1e-6 {
			return fmt.Errorf("%w: row %d sums to %v", ErrConfig, i, s)
		}
	}
	return nil
}

// unrollWindows walks one sensor and appends its absolute-time coverage
// windows (per the topology's pass-event conventions) into windows.
// It returns the sensor's total elapsed time.
func unrollWindows(top *topology.Topology, p *mat.Matrix, src *rng.Source, steps, start int, windows [][]interval) float64 {
	n := top.M()
	cur := start
	row := make([]float64, n)
	var now float64
	for step := 0; step < steps; step++ {
		for j := 0; j < n; j++ {
			row[j] = p.At(cur, j)
		}
		next := src.Categorical(row)
		if next < 0 {
			next = cur
		}
		if next == cur {
			d := top.PoIAt(cur).Pause
			windows[cur] = append(windows[cur], interval{now, now + d})
			now += d
		} else {
			for _, e := range top.Passes(cur, next) {
				windows[e.PoI] = append(windows[e.PoI], interval{now + e.Enter, now + e.Exit})
			}
			now += top.TravelTime(cur, next)
		}
		cur = next
	}
	return now
}

// mergeAndMeasure merges the (unsorted, possibly overlapping) windows,
// clips them to [0, horizon], and returns total covered time plus the
// uncovered gap lengths between merged windows (excluding the leading gap
// before first coverage, which has no preceding departure, but including
// interior gaps; the trailing partial gap is excluded as incomplete).
func mergeAndMeasure(ws []interval, horizon float64) (covered float64, gaps []float64) {
	if len(ws) == 0 {
		return 0, nil
	}
	sorted := append([]interval(nil), ws...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].start < sorted[b].start })

	var curStart, curEnd float64
	started := false
	var prevEnd float64
	hasPrev := false
	flush := func() {
		if !started {
			return
		}
		s, e := curStart, curEnd
		if s < 0 {
			s = 0
		}
		if e > horizon {
			e = horizon
		}
		if e > s {
			covered += e - s
			if hasPrev && s > prevEnd {
				gaps = append(gaps, s-prevEnd)
			}
			prevEnd = e
			hasPrev = true
		}
	}
	for _, w := range sorted {
		if w.start >= horizon {
			break
		}
		if !started {
			curStart, curEnd = w.start, w.end
			started = true
			continue
		}
		if w.start <= curEnd {
			if w.end > curEnd {
				curEnd = w.end
			}
			continue
		}
		flush()
		curStart, curEnd = w.start, w.end
	}
	flush()
	return covered, gaps
}
