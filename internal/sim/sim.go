// Package sim simulates the mobile sensor's coverage schedule: a random
// walk over the PoIs driven by a Markov transition matrix, with the
// physical timing (travel, pauses, pass-through coverage) supplied by the
// topology. It measures the realized counterparts of the paper's analytic
// quantities — coverage times C_i(N), elapsed time T(N), per-PoI exposure
// segments — so the optimizer's closed-form predictions can be validated
// against actual schedules (§VI-D).
//
// Exposure is measured under three conventions:
//
//   - UnitStep: every transition lasts one time unit and passing by a PoI
//     does not end its exposure segment — exactly the simplifying
//     assumptions behind Eq. 3, so the measured mean exposure converges to
//     the analytic Ē_i.
//   - Physical: real transition durations, but passing by still does not
//     count as a return (the paper's simulation convention; the residual
//     gap to Eq. 3 is the unit-duration assumption the paper reports).
//   - PhysicalInterrupted: real durations and pass-through coverage
//     interrupts exposure — the fully physical measure.
package sim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/markov"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/topology"
)

// ErrConfig indicates an invalid simulation configuration.
var ErrConfig = errors.New("sim: invalid configuration")

// TimeModel selects the exposure measurement convention.
type TimeModel int

// Exposure measurement conventions (see the package comment).
const (
	// UnitStep counts one time unit per transition (matches Eq. 3).
	UnitStep TimeModel = iota + 1
	// Physical uses real durations; pass-bys do not end segments.
	Physical
	// PhysicalInterrupted uses real durations and ends a segment whenever
	// the sensor's disk sweeps over the PoI.
	PhysicalInterrupted
)

// String implements fmt.Stringer.
func (m TimeModel) String() string {
	switch m {
	case UnitStep:
		return "unit-step"
	case Physical:
		return "physical"
	case PhysicalInterrupted:
		return "physical-interrupted"
	default:
		return fmt.Sprintf("timemodel(%d)", int(m))
	}
}

// Config describes one simulation run.
type Config struct {
	// Topology supplies the physical layout and timing tables.
	Topology *topology.Topology
	// P is the transition matrix driving the walk.
	P *mat.Matrix
	// Steps is the number of Markov transitions N to simulate.
	Steps int
	// Seed drives the walk.
	Seed uint64
	// TimeModel selects the exposure convention; UnitStep if zero.
	TimeModel TimeModel
	// Start is the initial PoI; use -1 for a uniformly random start.
	Start int
	// CollectSegments records every completed exposure segment per PoI in
	// Metrics.Segments (memory grows with the run; off by default).
	CollectSegments bool
}

func (c *Config) validate() error {
	if c.Topology == nil {
		return fmt.Errorf("%w: nil topology", ErrConfig)
	}
	if c.P == nil {
		return fmt.Errorf("%w: nil transition matrix", ErrConfig)
	}
	if c.P.Rows() != c.Topology.M() || c.P.Cols() != c.Topology.M() {
		return fmt.Errorf("%w: %dx%d matrix for %d PoIs",
			ErrConfig, c.P.Rows(), c.P.Cols(), c.Topology.M())
	}
	if err := markov.CheckStochastic(c.P); err != nil {
		return fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if c.Steps <= 0 {
		return fmt.Errorf("%w: steps %d", ErrConfig, c.Steps)
	}
	if c.Start < -1 || c.Start >= c.Topology.M() {
		return fmt.Errorf("%w: start %d", ErrConfig, c.Start)
	}
	return nil
}

// Metrics are the measured outcomes of one run.
type Metrics struct {
	// Steps is the number of transitions simulated.
	Steps int
	// TotalTime is the physical elapsed time T(N).
	TotalTime float64
	// CoverageTime is C_i(N), physical coverage time per PoI.
	CoverageTime []float64
	// CoverageShare is C_i(N)/T(N), the realized counterpart of C̄_i.
	CoverageShare []float64
	// G is the measured per-PoI discrepancy (C_i(N) − Φ_i·T(N))/N, the
	// realized counterpart of G_i.
	G []float64
	// DeltaC is Σ_i G_i², the measured Eq. 12 metric.
	DeltaC float64
	// MeanExposure is ⟨E_i(N)⟩ per PoI, under the configured TimeModel.
	MeanExposure []float64
	// ExposureSegments counts completed exposure segments per PoI.
	ExposureSegments []int
	// EBar is sqrt(Σ_i ⟨E_i⟩²), the measured Eq. 13 metric.
	EBar float64
	// Visits counts arrivals (as transition destination) per PoI.
	Visits []int64
	// Segments holds every completed exposure segment per PoI when
	// Config.CollectSegments is set (nil otherwise); used to study the
	// full segment distribution, not just its mean.
	Segments [][]float64
}

// exposureTracker accumulates per-PoI exposure segments.
type exposureTracker struct {
	pending  bool    // a segment is open (the sensor has left this PoI)
	elapsed  float64 // away time accumulated in the open segment
	total    float64 // sum of completed segment lengths
	count    int     // completed segments
	collect  bool    // record individual segments
	segments []float64
}

// Run simulates the schedule and returns the measured metrics.
func Run(cfg Config) (*Metrics, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	top := cfg.Topology
	n := top.M()
	model := cfg.TimeModel
	if model == 0 {
		model = UnitStep
	}
	src := rng.New(cfg.Seed)

	cur := cfg.Start
	if cur == -1 {
		cur = src.IntN(n)
	}

	met := &Metrics{
		Steps:            cfg.Steps,
		CoverageTime:     make([]float64, n),
		CoverageShare:    make([]float64, n),
		G:                make([]float64, n),
		MeanExposure:     make([]float64, n),
		ExposureSegments: make([]int, n),
		Visits:           make([]int64, n),
	}
	trackers := make([]exposureTracker, n)
	if cfg.CollectSegments {
		met.Segments = make([][]float64, n)
		for i := range trackers {
			trackers[i].collect = true
		}
	}
	row := make([]float64, n)

	for step := 0; step < cfg.Steps; step++ {
		for j := 0; j < n; j++ {
			row[j] = cfg.P.At(cur, j)
		}
		next := src.Categorical(row)
		if next < 0 {
			return nil, fmt.Errorf("%w: zero row %d", ErrConfig, cur)
		}

		// Physical coverage bookkeeping uses the exact T tables in every
		// time model.
		met.TotalTime += top.TravelTime(cur, next)
		for i := 0; i < n; i++ {
			met.CoverageTime[i] += top.CoverTime(cur, next, i)
		}

		advanceExposure(top, trackers, cur, next, model)

		// A departure from cur opens a segment for cur; the segment timer
		// starts at the destination per the paper ("measured from the PoI
		// location immediately after the sensor has left i"), so the
		// departing travel contributes no away time. In the physical
		// models the clock runs from arrival at the destination, so that
		// destination's pause does count.
		if next != cur {
			trackers[cur].pending = true
			trackers[cur].elapsed = 0
			if model == Physical || model == PhysicalInterrupted {
				trackers[cur].elapsed = top.PoIAt(next).Pause
			}
		}

		met.Visits[next]++
		cur = next
	}

	for i := 0; i < n; i++ {
		met.CoverageShare[i] = met.CoverageTime[i] / met.TotalTime
		met.G[i] = (met.CoverageTime[i] - top.TargetAt(i)*met.TotalTime) / float64(cfg.Steps)
		met.DeltaC += met.G[i] * met.G[i]
		met.ExposureSegments[i] = trackers[i].count
		if trackers[i].count > 0 {
			met.MeanExposure[i] = trackers[i].total / float64(trackers[i].count)
		}
		if cfg.CollectSegments {
			met.Segments[i] = trackers[i].segments
		}
		met.EBar += met.MeanExposure[i] * met.MeanExposure[i]
	}
	met.EBar = math.Sqrt(met.EBar)
	return met, nil
}

// advanceExposure adds one transition's away time to every pending
// tracker, closing segments on arrival (and, for PhysicalInterrupted, on
// pass-through).
func advanceExposure(top *topology.Topology, trackers []exposureTracker, cur, next int, model TimeModel) {
	switch model {
	case UnitStep:
		for i := range trackers {
			if !trackers[i].pending || i == cur {
				continue
			}
			// One unit per transition; arriving at i closes the segment.
			trackers[i].elapsed++
			if i == next {
				closeSegment(&trackers[i])
			}
		}
	case Physical:
		move := top.MoveTime(cur, next)
		pause := top.PoIAt(next).Pause
		for i := range trackers {
			if !trackers[i].pending || i == cur {
				continue
			}
			if i == next {
				// Exposure ends when coverage resumes on arrival; the
				// pause at i is covered time.
				trackers[i].elapsed += move
				closeSegment(&trackers[i])
			} else {
				trackers[i].elapsed += move + pause
			}
		}
	case PhysicalInterrupted:
		move := top.MoveTime(cur, next)
		pause := top.PoIAt(next).Pause
		duration := move + pause
		// Pass events are sorted by construction (intermediates in index
		// order, destination last); index them per PoI for this transit.
		for i := range trackers {
			if !trackers[i].pending || i == cur {
				continue
			}
			var ev *topology.PassEvent
			for _, e := range top.Passes(cur, next) {
				if e.PoI == i {
					e := e
					ev = &e
					break
				}
			}
			switch {
			case ev == nil:
				trackers[i].elapsed += duration
			case i == next:
				// Destination: covered from arrival (Enter == move).
				trackers[i].elapsed += ev.Enter
				closeSegment(&trackers[i])
			default:
				// Intermediate pass: the sweep closes the segment at
				// Enter; a fresh segment opens at Exit and accumulates the
				// remainder of the transit plus the destination pause.
				trackers[i].elapsed += ev.Enter
				closeSegment(&trackers[i])
				trackers[i].pending = true
				trackers[i].elapsed = duration - ev.Exit
			}
		}
	}
}

func closeSegment(tr *exposureTracker) {
	tr.total += tr.elapsed
	tr.count++
	if tr.collect {
		tr.segments = append(tr.segments, tr.elapsed)
	}
	tr.pending = false
	tr.elapsed = 0
}

// RunMany executes reps independent simulations with seeds split from
// cfg.Seed and returns all metrics.
func RunMany(cfg Config, reps int) ([]*Metrics, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("%w: reps %d", ErrConfig, reps)
	}
	master := rng.New(cfg.Seed)
	out := make([]*Metrics, 0, reps)
	for r := 0; r < reps; r++ {
		runCfg := cfg
		runCfg.Seed = master.Uint64()
		m, err := Run(runCfg)
		if err != nil {
			return nil, fmt.Errorf("sim: rep %d: %w", r, err)
		}
		out = append(out, m)
	}
	return out, nil
}
