package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/topology"
)

func TestFleetValidation(t *testing.T) {
	top := topology.Topology2()
	valid := FleetConfig{Topology: top, P: uniformP(3), Sensors: 2, Steps: 100}
	cases := []struct {
		name   string
		mutate func(*FleetConfig)
	}{
		{"nil topology", func(c *FleetConfig) { c.Topology = nil }},
		{"nil matrix", func(c *FleetConfig) { c.P = nil }},
		{"wrong size", func(c *FleetConfig) { c.P = uniformP(4) }},
		{"zero sensors", func(c *FleetConfig) { c.Sensors = 0 }},
		{"zero steps", func(c *FleetConfig) { c.Steps = 0 }},
		{"bad rows", func(c *FleetConfig) {
			p := uniformP(3)
			p.Set(0, 0, 0.9)
			c.P = p
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			if _, err := SimulateFleet(cfg); !errors.Is(err, ErrConfig) {
				t.Errorf("err = %v, want ErrConfig", err)
			}
		})
	}
}

func TestMergeAndMeasure(t *testing.T) {
	// Overlapping and touching windows merge; gaps measured between runs.
	ws := []interval{
		{1, 3}, {2, 4}, // merge to [1,4]
		{6, 7},  // gap of 2 before it
		{9, 12}, // gap of 2, clipped at horizon 10
	}
	covered, gaps := mergeAndMeasure(ws, 10)
	if math.Abs(covered-(3+1+1)) > 1e-12 {
		t.Errorf("covered = %v, want 5", covered)
	}
	if len(gaps) != 2 || math.Abs(gaps[0]-2) > 1e-12 || math.Abs(gaps[1]-2) > 1e-12 {
		t.Errorf("gaps = %v, want [2 2]", gaps)
	}
	// Empty input.
	if c, g := mergeAndMeasure(nil, 10); c != 0 || g != nil {
		t.Errorf("empty: %v %v", c, g)
	}
	// Window entirely past the horizon.
	if c, _ := mergeAndMeasure([]interval{{11, 12}}, 10); c != 0 {
		t.Errorf("past-horizon covered = %v", c)
	}
}

func TestFleetDeterministic(t *testing.T) {
	top := topology.Topology1()
	cfg := FleetConfig{Topology: top, P: uniformP(4), Sensors: 3, Steps: 5000, Seed: 7, Stagger: true}
	a, err := SimulateFleet(cfg)
	if err != nil {
		t.Fatalf("SimulateFleet: %v", err)
	}
	b, err := SimulateFleet(cfg)
	if err != nil {
		t.Fatalf("SimulateFleet: %v", err)
	}
	if a.Horizon != b.Horizon || a.DeltaC != b.DeltaC {
		t.Error("fleet simulation not deterministic")
	}
}

// TestFleetSizeReducesGaps is the deployment claim: more sensors shrink
// the union exposure gaps monotonically (to sampling noise) and raise
// union coverage.
func TestFleetSizeReducesGaps(t *testing.T) {
	top := topology.Topology1()
	worstGap := func(sensors int) (float64, float64) {
		met, err := SimulateFleet(FleetConfig{
			Topology: top, P: uniformP(4), Sensors: sensors,
			Steps: 40000, Seed: 11, Stagger: true,
		})
		if err != nil {
			t.Fatalf("SimulateFleet(%d): %v", sensors, err)
		}
		var worst, share float64
		for i := range met.MeanGap {
			if met.MeanGap[i] > worst {
				worst = met.MeanGap[i]
			}
			share += met.CoverageShare[i]
		}
		return worst, share
	}
	gap1, share1 := worstGap(1)
	gap2, share2 := worstGap(2)
	gap4, share4 := worstGap(4)
	if !(gap4 < gap2 && gap2 < gap1) {
		t.Errorf("gaps not decreasing: K=1 %v, K=2 %v, K=4 %v", gap1, gap2, gap4)
	}
	if !(share4 > share2 && share2 > share1) {
		t.Errorf("union coverage not increasing: %v, %v, %v", share1, share2, share4)
	}
	// Two independent sensors roughly halve the mean gap.
	ratio := gap2 / gap1
	if ratio < 0.3 || ratio > 0.8 {
		t.Errorf("K=2 gap ratio %v, expected ≈ 0.5", ratio)
	}
}

// TestFleetSingleMatchesUnionOfOne: a fleet of one sensor reports the
// same union coverage share as the plain simulator's coverage share (both
// count every in-range interval; conventions differ only in the origin
// convention, which vanishes in the long run).
func TestFleetSingleMatchesUnionOfOne(t *testing.T) {
	top := topology.Topology3()
	fleet, err := SimulateFleet(FleetConfig{
		Topology: top, P: uniformP(4), Sensors: 1, Steps: 200000, Seed: 3,
	})
	if err != nil {
		t.Fatalf("SimulateFleet: %v", err)
	}
	single, err := Run(Config{Topology: top, P: uniformP(4), Steps: 200000, Seed: 99})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range fleet.CoverageShare {
		if math.Abs(fleet.CoverageShare[i]-single.CoverageShare[i]) > 0.01 {
			t.Errorf("PoI %d: fleet %v vs single %v", i, fleet.CoverageShare[i], single.CoverageShare[i])
		}
	}
}

// TestFleetStaggerWraparound: more sensors than PoIs is legal — starts
// wrap modulo M, so sensors k and k+M start at the same PoI but follow
// independent streams.
func TestFleetStaggerWraparound(t *testing.T) {
	top := topology.Topology2() // M = 3
	met, err := SimulateFleet(FleetConfig{
		Topology: top, P: uniformP(3), Sensors: 7, Steps: 2000, Seed: 5, Stagger: true,
	})
	if err != nil {
		t.Fatalf("SimulateFleet with K > M: %v", err)
	}
	if met.Sensors != 7 {
		t.Errorf("Sensors = %d, want 7", met.Sensors)
	}
	if !(met.Horizon > 0) {
		t.Errorf("Horizon = %v, want > 0", met.Horizon)
	}
	for i, s := range met.CoverageShare {
		if s <= 0 || s > 1 {
			t.Errorf("PoI %d union share %v outside (0, 1]", i, s)
		}
	}
}

func TestFleetPerSensorMatrices(t *testing.T) {
	top := topology.Topology2()
	n := top.M()
	// Heterogeneous stack: sensor 0 uniform, sensor 1 biased to stay put.
	biased := uniformP(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				biased.Set(i, j, 0.8)
			} else {
				biased.Set(i, j, 0.2/float64(n-1))
			}
		}
	}
	cfg := FleetConfig{
		Topology: top, Ps: []*mat.Matrix{uniformP(n), biased},
		Sensors: 2, Steps: 5000, Seed: 13, Stagger: true,
	}
	het, err := SimulateFleet(cfg)
	if err != nil {
		t.Fatalf("SimulateFleet with Ps: %v", err)
	}
	// A replicated run with the uniform matrix must differ: the biased
	// sensor changes the union timeline.
	rep, err := SimulateFleet(FleetConfig{
		Topology: top, P: uniformP(n), Sensors: 2, Steps: 5000, Seed: 13, Stagger: true,
	})
	if err != nil {
		t.Fatalf("SimulateFleet replicated: %v", err)
	}
	if het.DeltaC == rep.DeltaC && het.Horizon == rep.Horizon {
		t.Error("per-sensor matrices had no effect on the union metrics")
	}

	// Validation: wrong stack length, nil entry, wrong dimension, bad rows.
	bad := cfg
	bad.Ps = cfg.Ps[:1]
	if _, err := SimulateFleet(bad); !errors.Is(err, ErrConfig) {
		t.Errorf("short Ps: err = %v, want ErrConfig", err)
	}
	bad = cfg
	bad.Ps = []*mat.Matrix{uniformP(n), nil}
	if _, err := SimulateFleet(bad); !errors.Is(err, ErrConfig) {
		t.Errorf("nil entry: err = %v, want ErrConfig", err)
	}
	bad = cfg
	bad.Ps = []*mat.Matrix{uniformP(n), uniformP(n + 1)}
	if _, err := SimulateFleet(bad); !errors.Is(err, ErrConfig) {
		t.Errorf("wrong dims: err = %v, want ErrConfig", err)
	}
	bad = cfg
	badRows := uniformP(n)
	badRows.Set(0, 0, 0.9)
	bad.Ps = []*mat.Matrix{uniformP(n), badRows}
	if _, err := SimulateFleet(bad); !errors.Is(err, ErrConfig) {
		t.Errorf("non-stochastic row: err = %v, want ErrConfig", err)
	}
}

// TestFleetWorkersBitIdentical pins the parallel-unroll contract: the
// union metrics are bit-for-bit identical for every Workers setting.
func TestFleetWorkersBitIdentical(t *testing.T) {
	top := topology.Topology1()
	base := FleetConfig{
		Topology: top, P: uniformP(4), Sensors: 5, Steps: 8000, Seed: 21,
		Stagger: true, Workers: 1,
	}
	ref, err := SimulateFleet(base)
	if err != nil {
		t.Fatalf("SimulateFleet serial: %v", err)
	}
	for _, w := range []int{2, 3, 8} {
		cfg := base
		cfg.Workers = w
		got, err := SimulateFleet(cfg)
		if err != nil {
			t.Fatalf("SimulateFleet workers=%d: %v", w, err)
		}
		if got.Horizon != ref.Horizon || got.DeltaC != ref.DeltaC {
			t.Fatalf("workers=%d diverged: horizon %v vs %v, deltaC %v vs %v",
				w, got.Horizon, ref.Horizon, got.DeltaC, ref.DeltaC)
		}
		for i := range ref.CoverageShare {
			if got.CoverageShare[i] != ref.CoverageShare[i] ||
				got.MeanGap[i] != ref.MeanGap[i] ||
				got.MaxGap[i] != ref.MaxGap[i] ||
				got.Gaps[i] != ref.Gaps[i] {
				t.Fatalf("workers=%d PoI %d metrics diverged", w, i)
			}
		}
	}
}
