package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/topology"
)

func TestFleetValidation(t *testing.T) {
	top := topology.Topology2()
	valid := FleetConfig{Topology: top, P: uniformP(3), Sensors: 2, Steps: 100}
	cases := []struct {
		name   string
		mutate func(*FleetConfig)
	}{
		{"nil topology", func(c *FleetConfig) { c.Topology = nil }},
		{"nil matrix", func(c *FleetConfig) { c.P = nil }},
		{"wrong size", func(c *FleetConfig) { c.P = uniformP(4) }},
		{"zero sensors", func(c *FleetConfig) { c.Sensors = 0 }},
		{"zero steps", func(c *FleetConfig) { c.Steps = 0 }},
		{"bad rows", func(c *FleetConfig) {
			p := uniformP(3)
			p.Set(0, 0, 0.9)
			c.P = p
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			if _, err := SimulateFleet(cfg); !errors.Is(err, ErrConfig) {
				t.Errorf("err = %v, want ErrConfig", err)
			}
		})
	}
}

func TestMergeAndMeasure(t *testing.T) {
	// Overlapping and touching windows merge; gaps measured between runs.
	ws := []interval{
		{1, 3}, {2, 4}, // merge to [1,4]
		{6, 7},  // gap of 2 before it
		{9, 12}, // gap of 2, clipped at horizon 10
	}
	covered, gaps := mergeAndMeasure(ws, 10)
	if math.Abs(covered-(3+1+1)) > 1e-12 {
		t.Errorf("covered = %v, want 5", covered)
	}
	if len(gaps) != 2 || math.Abs(gaps[0]-2) > 1e-12 || math.Abs(gaps[1]-2) > 1e-12 {
		t.Errorf("gaps = %v, want [2 2]", gaps)
	}
	// Empty input.
	if c, g := mergeAndMeasure(nil, 10); c != 0 || g != nil {
		t.Errorf("empty: %v %v", c, g)
	}
	// Window entirely past the horizon.
	if c, _ := mergeAndMeasure([]interval{{11, 12}}, 10); c != 0 {
		t.Errorf("past-horizon covered = %v", c)
	}
}

func TestFleetDeterministic(t *testing.T) {
	top := topology.Topology1()
	cfg := FleetConfig{Topology: top, P: uniformP(4), Sensors: 3, Steps: 5000, Seed: 7, Stagger: true}
	a, err := SimulateFleet(cfg)
	if err != nil {
		t.Fatalf("SimulateFleet: %v", err)
	}
	b, err := SimulateFleet(cfg)
	if err != nil {
		t.Fatalf("SimulateFleet: %v", err)
	}
	if a.Horizon != b.Horizon || a.DeltaC != b.DeltaC {
		t.Error("fleet simulation not deterministic")
	}
}

// TestFleetSizeReducesGaps is the deployment claim: more sensors shrink
// the union exposure gaps monotonically (to sampling noise) and raise
// union coverage.
func TestFleetSizeReducesGaps(t *testing.T) {
	top := topology.Topology1()
	worstGap := func(sensors int) (float64, float64) {
		met, err := SimulateFleet(FleetConfig{
			Topology: top, P: uniformP(4), Sensors: sensors,
			Steps: 40000, Seed: 11, Stagger: true,
		})
		if err != nil {
			t.Fatalf("SimulateFleet(%d): %v", sensors, err)
		}
		var worst, share float64
		for i := range met.MeanGap {
			if met.MeanGap[i] > worst {
				worst = met.MeanGap[i]
			}
			share += met.CoverageShare[i]
		}
		return worst, share
	}
	gap1, share1 := worstGap(1)
	gap2, share2 := worstGap(2)
	gap4, share4 := worstGap(4)
	if !(gap4 < gap2 && gap2 < gap1) {
		t.Errorf("gaps not decreasing: K=1 %v, K=2 %v, K=4 %v", gap1, gap2, gap4)
	}
	if !(share4 > share2 && share2 > share1) {
		t.Errorf("union coverage not increasing: %v, %v, %v", share1, share2, share4)
	}
	// Two independent sensors roughly halve the mean gap.
	ratio := gap2 / gap1
	if ratio < 0.3 || ratio > 0.8 {
		t.Errorf("K=2 gap ratio %v, expected ≈ 0.5", ratio)
	}
}

// TestFleetSingleMatchesUnionOfOne: a fleet of one sensor reports the
// same union coverage share as the plain simulator's coverage share (both
// count every in-range interval; conventions differ only in the origin
// convention, which vanishes in the long run).
func TestFleetSingleMatchesUnionOfOne(t *testing.T) {
	top := topology.Topology3()
	fleet, err := SimulateFleet(FleetConfig{
		Topology: top, P: uniformP(4), Sensors: 1, Steps: 200000, Seed: 3,
	})
	if err != nil {
		t.Fatalf("SimulateFleet: %v", err)
	}
	single, err := Run(Config{Topology: top, P: uniformP(4), Steps: 200000, Seed: 99})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range fleet.CoverageShare {
		if math.Abs(fleet.CoverageShare[i]-single.CoverageShare[i]) > 0.01 {
			t.Errorf("PoI %d: fleet %v vs single %v", i, fleet.CoverageShare[i], single.CoverageShare[i])
		}
	}
}
