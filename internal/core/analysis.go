package core

import (
	"fmt"
	"math"

	"repro/internal/markov"
	"repro/internal/mat"
)

// ChainAnalysis characterizes a schedule beyond the paper's two headline
// metrics: how fast the chain forgets its start (spectral gap, mixing
// time) and how variable — not just how long on average — each PoI's
// exposure intervals are. The exposure variance uses the first-passage
// second moments: conditional on leaving PoI i toward j, the segment
// length is the first-passage time T_ji, so the segment law is the
// p_ij/(1−p_ii)-mixture over j of those passage laws (the same mixture as
// the paper's Eq. 3 for the mean).
type ChainAnalysis struct {
	// SLEM is the second-largest eigenvalue modulus of P.
	SLEM float64
	// SpectralGap is 1 − SLEM.
	SpectralGap float64
	// MixingTime is the exact ε-mixing time in steps (ε from the call),
	// or maxSteps+1 when the budget was exceeded.
	MixingTime int
	// EntropyRate is the schedule's entropy rate in nats.
	EntropyRate float64
	// KemenyConstant is the mean steps to stationarity-weighted targets,
	// a start-independent global connectivity measure.
	KemenyConstant float64
	// ConditionNumber is the Funderlic–Meyer sensitivity of π to
	// transition-probability perturbations: robust schedules keep it
	// small.
	ConditionNumber float64
	// MeanExposure is the per-PoI expected exposure Ē_i (Eq. 3), in
	// steps.
	MeanExposure []float64
	// ExposureStdDev is the per-PoI standard deviation of the exposure
	// segment length, in steps.
	ExposureStdDev []float64
}

// AnalyzeOptions tunes Analyze.
type AnalyzeOptions struct {
	// MixingEps is the total-variation threshold (default 0.01).
	MixingEps float64
	// MixingMaxSteps bounds the mixing computation (default 100000).
	MixingMaxSteps int
}

// Analyze computes the ChainAnalysis of a transition matrix.
func (p *Planner) Analyze(m *mat.Matrix, opts AnalyzeOptions) (*ChainAnalysis, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil matrix", ErrPlanner)
	}
	if opts.MixingEps == 0 {
		opts.MixingEps = 0.01
	}
	if opts.MixingMaxSteps == 0 {
		opts.MixingMaxSteps = 100000
	}
	chain, err := markov.New(m)
	if err != nil {
		return nil, fmt.Errorf("core: analyze: %w", err)
	}
	sol, err := chain.Solve()
	if err != nil {
		return nil, fmt.Errorf("core: analyze: %w", err)
	}
	slem, err := sol.SLEM(20000, 1e-10)
	if err != nil {
		return nil, fmt.Errorf("core: analyze: %w", err)
	}
	mixing, err := chain.MixingTime(sol, opts.MixingEps, opts.MixingMaxSteps)
	if err != nil {
		return nil, fmt.Errorf("core: analyze: %w", err)
	}
	moments, err := sol.Moments()
	if err != nil {
		return nil, fmt.Errorf("core: analyze: %w", err)
	}
	kappa, err := sol.ConditionNumber()
	if err != nil {
		return nil, fmt.Errorf("core: analyze: %w", err)
	}

	n := chain.M()
	analysis := &ChainAnalysis{
		SLEM:            slem,
		SpectralGap:     1 - slem,
		MixingTime:      mixing,
		EntropyRate:     sol.EntropyRate(),
		KemenyConstant:  sol.KemenyConstant(),
		ConditionNumber: kappa,
		MeanExposure:    make([]float64, n),
		ExposureStdDev:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		denom := 1 - m.At(i, i)
		if denom <= 0 {
			continue
		}
		var mean, second float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			w := m.At(i, j) / denom
			mean += w * moments.Mean.At(j, i)
			second += w * moments.Second.At(j, i)
		}
		analysis.MeanExposure[i] = mean
		if v := second - mean*mean; v > 0 {
			analysis.ExposureStdDev[i] = math.Sqrt(v)
		}
	}
	return analysis, nil
}
