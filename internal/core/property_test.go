package core

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/descent"
	"repro/internal/geom"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestPipelineOnRandomTopologies is the end-to-end robustness property:
// for arbitrary valid workloads (random layouts, pauses, skewed targets,
// random objective weights), the full pipeline — optimize, evaluate,
// baseline, simulate — runs without error and produces internally
// consistent results.
func TestPipelineOnRandomTopologies(t *testing.T) {
	src := rng.New(4242)
	for trial := 0; trial < 12; trial++ {
		top, err := topology.Random(src, topology.RandomConfig{
			M:          2 + src.IntN(5),
			Width:      7,
			Height:     7,
			MinPause:   0.5,
			MaxPause:   3,
			SkewTarget: trial%2 == 0,
		})
		if err != nil {
			t.Fatalf("trial %d: Random: %v", trial, err)
		}
		alpha := src.Uniform(0, 2)
		beta := math.Pow(10, src.Uniform(-6, 0))
		p, err := NewPlanner(top, cost.Uniform(top.M(), alpha, beta))
		if err != nil {
			t.Fatalf("trial %d: NewPlanner: %v", trial, err)
		}
		res, err := p.Optimize(descent.Options{
			Variant:  descent.Perturbed,
			MaxIters: 120,
			Seed:     src.Uint64(),
		})
		if err != nil {
			t.Fatalf("trial %d: Optimize: %v", trial, err)
		}
		// Result is a proper interior stochastic matrix.
		for i, s := range mat.RowSums(res.P) {
			if math.Abs(s-1) > 1e-6 {
				t.Fatalf("trial %d: row %d sums to %v", trial, i, s)
			}
		}
		// Best cost beats (or matches) the starting uniform/random point
		// and the evaluation breakdown is consistent.
		ev := res.Eval
		if math.Abs(ev.U-(ev.Objective+ev.Penalty)) > 1e-9*(1+math.Abs(ev.U)) {
			t.Fatalf("trial %d: U decomposition off", trial)
		}
		// Short simulation agrees with the analytic coverage to loose
		// tolerance.
		runs, err := p.Simulate(res.P, SimulateOptions{
			Steps: 60000, Seed: src.Uint64(), TimeModel: sim.UnitStep,
		})
		if err != nil {
			t.Fatalf("trial %d: Simulate: %v", trial, err)
		}
		for i := range ev.CBar {
			if math.Abs(runs[0].CoverageShare[i]-ev.CBar[i]) > 0.03 {
				t.Fatalf("trial %d PoI %d: simulated %v vs analytic %v",
					trial, i, runs[0].CoverageShare[i], ev.CBar[i])
			}
		}
		// Baseline chain solves and evaluates.
		base, err := p.Baseline()
		if err != nil {
			t.Fatalf("trial %d: Baseline: %v", trial, err)
		}
		if _, err := p.Evaluate(base); err != nil {
			// Exact-zero diagonals in the MH chain can push the barrier
			// to +Inf but must not produce an error.
			t.Fatalf("trial %d: Evaluate baseline: %v", trial, err)
		}
	}
}

// TestOptimizeExtremeWeights drives the optimizer at the numerical edges
// of the objective space.
func TestOptimizeExtremeWeights(t *testing.T) {
	top := topology.Topology2()
	cases := []struct {
		name        string
		alpha, beta float64
	}{
		{"huge alpha", 1e6, 0},
		{"tiny beta", 0, 1e-9},
		{"huge beta", 0, 1e6},
		{"mixed extreme", 1e6, 1e-9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewPlanner(top, cost.Uniform(top.M(), tc.alpha, tc.beta))
			if err != nil {
				t.Fatalf("NewPlanner: %v", err)
			}
			res, err := p.Optimize(descent.Options{
				Variant:  descent.Perturbed,
				MaxIters: 60,
				Seed:     3,
			})
			if err != nil {
				t.Fatalf("Optimize: %v", err)
			}
			if math.IsNaN(res.Eval.U) || math.IsInf(res.Eval.U, 0) {
				t.Errorf("U = %v", res.Eval.U)
			}
		})
	}
}

// TestOptimizeExtremePauseAsymmetry: topologies where one PoI's pause
// dwarfs the others stress the timing tables.
func TestOptimizeExtremePauseAsymmetry(t *testing.T) {
	top, err := topology.New(topology.Config{
		Name: "asym",
		PoIs: []topology.PoI{
			{Pos: pt(0.5, 0.5), Pause: 100},
			{Pos: pt(1.5, 0.5), Pause: 0.01},
			{Pos: pt(2.5, 0.5), Pause: 1},
		},
		Target: []float64{0.8, 0.1, 0.1},
		Range:  0.25,
		Speed:  1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	p, err := NewPlanner(top, cost.Uniform(3, 1, 1e-4))
	if err != nil {
		t.Fatalf("NewPlanner: %v", err)
	}
	res, err := p.Optimize(descent.Options{Variant: descent.Perturbed, MaxIters: 150, Seed: 5})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	// The long-pause PoI should end up with the dominant coverage share.
	best := 0
	for i, c := range res.Eval.CBar {
		if c > res.Eval.CBar[best] {
			best = i
		}
	}
	if best != 0 {
		t.Errorf("dominant coverage at PoI %d, want 0 (pause 100): %v", best, res.Eval.CBar)
	}
}

// pt is a test shorthand.
func pt(x, y float64) geom.Point {
	return geom.Point{X: x, Y: y}
}
