// Package core is the paper's primary contribution assembled into one
// planning engine: given a physical topology (package topology) and
// multi-objective weights (package cost), a Planner searches the space of
// all Markov transition matrices by projected stochastic steepest descent
// (package descent), evaluates candidate schedules in closed form through
// the chain machinery (package markov), compares them against the
// Metropolis–Hastings baseline (package mcmc), and validates them by
// driving the walk simulator (package sim).
//
// The public repro/coverage package is a thin, conversion-only facade
// over this engine; experiment harnesses and commands that live inside
// the module use the engine directly.
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cost"
	"repro/internal/descent"
	"repro/internal/mat"
	"repro/internal/mcmc"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ErrPlanner indicates an invalid Planner configuration or argument.
var ErrPlanner = errors.New("core: invalid planner input")

// Planner binds a topology and an objective into a reusable planning
// engine. A Planner is safe for sequential reuse across many optimization
// and simulation calls; it is not safe for concurrent use.
type Planner struct {
	top   *topology.Topology
	model *cost.Model
}

// NewPlanner validates the weights against the topology and builds the
// engine.
func NewPlanner(top *topology.Topology, w cost.Weights) (*Planner, error) {
	if top == nil {
		return nil, fmt.Errorf("%w: nil topology", ErrPlanner)
	}
	model, err := cost.NewModel(top, w)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Planner{top: top, model: model}, nil
}

// Topology returns the planner's topology.
func (p *Planner) Topology() *topology.Topology { return p.top }

// Model returns the planner's cost model.
func (p *Planner) Model() *cost.Model { return p.model }

// Optimize runs the configured steepest-descent search and returns the
// best schedule found.
func (p *Planner) Optimize(opts descent.Options) (*descent.Result, error) {
	return p.OptimizeContext(context.Background(), opts)
}

// OptimizeContext is Optimize with cooperative cancellation. On
// cancellation it returns the best-so-far result (nil when no iteration
// completed) together with an error wrapping ctx.Err().
func (p *Planner) OptimizeContext(ctx context.Context, opts descent.Options) (*descent.Result, error) {
	opt, err := descent.New(p.model, opts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	res, err := opt.RunContext(ctx)
	if err != nil {
		if res != nil {
			// Cancelled mid-run: pass the partial result through so the
			// caller can keep the best-so-far schedule.
			return res, fmt.Errorf("core: optimize: %w", err)
		}
		return nil, fmt.Errorf("core: optimize: %w", err)
	}
	return res, nil
}

// OptimizeMany runs n independent searches with split seeds.
func (p *Planner) OptimizeMany(opts descent.Options, n int) ([]*descent.Result, error) {
	return p.OptimizeManyContext(context.Background(), opts, n)
}

// OptimizeManyContext is OptimizeMany with cooperative cancellation; the
// cancellation contract follows descent.RunManyParallelContext (partial
// result slice plus an error wrapping ctx.Err()).
func (p *Planner) OptimizeManyContext(ctx context.Context, opts descent.Options, n int) ([]*descent.Result, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d runs", ErrPlanner, n)
	}
	return descent.RunManyContext(ctx, p.model, opts, n)
}

// Evaluate computes the closed-form cost breakdown of a transition
// matrix under the planner's objective.
func (p *Planner) Evaluate(m *mat.Matrix) (*cost.Evaluation, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil matrix", ErrPlanner)
	}
	ev, err := p.model.Evaluate(m)
	if err != nil {
		return nil, fmt.Errorf("core: evaluate: %w", err)
	}
	return ev, nil
}

// Baseline returns the Metropolis–Hastings chain whose stationary
// distribution equals the topology's target allocation — the
// coverage-only comparison point.
func (p *Planner) Baseline() (*mat.Matrix, error) {
	m, err := mcmc.MetropolisHastings(p.top.Target())
	if err != nil {
		return nil, fmt.Errorf("core: baseline: %w", err)
	}
	return m, nil
}

// SimulateOptions configures a validation simulation.
type SimulateOptions struct {
	// Steps is the number of Markov transitions per replication
	// (default 100000).
	Steps int
	// Seed drives the walk.
	Seed uint64
	// TimeModel selects the exposure convention (default sim.UnitStep).
	TimeModel sim.TimeModel
	// Replications repeats the walk with split seeds (default 1).
	Replications int
}

// Simulate drives the walk simulator with the given schedule and returns
// one Metrics per replication.
func (p *Planner) Simulate(m *mat.Matrix, opts SimulateOptions) ([]*sim.Metrics, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil matrix", ErrPlanner)
	}
	if opts.Steps == 0 {
		opts.Steps = 100000
	}
	if opts.Replications == 0 {
		opts.Replications = 1
	}
	if opts.TimeModel == 0 {
		opts.TimeModel = sim.UnitStep
	}
	runs, err := sim.RunMany(sim.Config{
		Topology:  p.top,
		P:         m,
		Steps:     opts.Steps,
		Seed:      opts.Seed,
		TimeModel: opts.TimeModel,
	}, opts.Replications)
	if err != nil {
		return nil, fmt.Errorf("core: simulate: %w", err)
	}
	return runs, nil
}
