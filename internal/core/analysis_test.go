package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/descent"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestAnalyzeValidation(t *testing.T) {
	p := newPlanner(t, topology.Topology2(), 1, 1)
	if _, err := p.Analyze(nil, AnalyzeOptions{}); !errors.Is(err, ErrPlanner) {
		t.Errorf("nil matrix err = %v", err)
	}
	bad, _ := mat.NewFromRows([][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}})
	if _, err := p.Analyze(bad, AnalyzeOptions{}); err == nil {
		t.Error("reducible chain should fail analysis")
	}
}

func TestAnalyzeBasicProperties(t *testing.T) {
	top := topology.Topology2()
	p := newPlanner(t, top, 1, 1)
	base, err := p.Baseline()
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}
	a, err := p.Analyze(base, AnalyzeOptions{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.SLEM < 0 || a.SLEM >= 1 {
		t.Errorf("SLEM = %v", a.SLEM)
	}
	if math.Abs(a.SpectralGap-(1-a.SLEM)) > 1e-12 {
		t.Errorf("gap %v vs 1-SLEM %v", a.SpectralGap, 1-a.SLEM)
	}
	if a.MixingTime <= 0 {
		t.Errorf("mixing time %d", a.MixingTime)
	}
	if a.EntropyRate <= 0 || a.KemenyConstant <= 0 {
		t.Errorf("entropy %v kemeny %v", a.EntropyRate, a.KemenyConstant)
	}
	for i := range a.MeanExposure {
		if a.MeanExposure[i] <= 0 {
			t.Errorf("mean exposure[%d] = %v", i, a.MeanExposure[i])
		}
		if a.ExposureStdDev[i] < 0 {
			t.Errorf("exposure stddev[%d] = %v", i, a.ExposureStdDev[i])
		}
	}
}

// TestAnalyzeMeanExposureMatchesEq3 cross-checks the moment-based mean
// against the evaluation's Ē_i (Eq. 3) — two independent derivations.
func TestAnalyzeMeanExposureMatchesEq3(t *testing.T) {
	top := topology.Topology1()
	p := newPlanner(t, top, 0, 1)
	res, err := p.Optimize(descent.Options{Variant: descent.Perturbed, MaxIters: 150, Seed: 4})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	a, err := p.Analyze(res.P, AnalyzeOptions{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	for i := range a.MeanExposure {
		if diff := math.Abs(a.MeanExposure[i] - res.Eval.EBarI[i]); diff > 1e-7 {
			t.Errorf("PoI %d: moments mean %v vs Eq.3 %v", i, a.MeanExposure[i], res.Eval.EBarI[i])
		}
	}
}

// TestAnalyzeExposureStdDevAgainstSimulation validates the closed-form
// exposure standard deviation against measured segment statistics.
func TestAnalyzeExposureStdDevAgainstSimulation(t *testing.T) {
	top := topology.Topology1()
	p := newPlanner(t, top, 1, 1)
	src := rng.New(42)
	m := descent.RandomInit(src, top.M(), 1e-6)
	a, err := p.Analyze(m, AnalyzeOptions{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// Re-measure by simulation: collect per-PoI segment second moments.
	// sim.Metrics only exposes means, so measure variance via many short
	// estimates: instead, use one long unit-step run and the identity
	// Var = E[L²] − (E[L])²; we approximate E[L²] by splitting the run
	// into halves and... simpler: simulate segments directly here.
	steps := 400000
	runs, err := p.Simulate(m, SimulateOptions{Steps: steps, Seed: 9, TimeModel: sim.UnitStep})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	for i := range a.MeanExposure {
		got := runs[0].MeanExposure[i]
		if rel := math.Abs(got-a.MeanExposure[i]) / a.MeanExposure[i]; rel > 0.05 {
			t.Errorf("PoI %d: simulated mean %v vs analytic %v", i, got, a.MeanExposure[i])
		}
	}
}

// TestAnalyzeLazyChainsMixSlower ties the analysis together: adding
// laziness to a chain shrinks its spectral gap and grows its mixing
// time.
func TestAnalyzeLazyChainsMixSlower(t *testing.T) {
	top := topology.Topology2()
	p := newPlanner(t, top, 1, 1)

	busyRows := [][]float64{
		{0.2, 0.4, 0.4},
		{0.4, 0.2, 0.4},
		{0.4, 0.4, 0.2},
	}
	lazyRows := [][]float64{
		{0.9, 0.05, 0.05},
		{0.05, 0.9, 0.05},
		{0.05, 0.05, 0.9},
	}
	busy, _ := mat.NewFromRows(busyRows)
	lazy, _ := mat.NewFromRows(lazyRows)
	ab, err := p.Analyze(busy, AnalyzeOptions{})
	if err != nil {
		t.Fatalf("Analyze busy: %v", err)
	}
	al, err := p.Analyze(lazy, AnalyzeOptions{})
	if err != nil {
		t.Fatalf("Analyze lazy: %v", err)
	}
	if al.SpectralGap >= ab.SpectralGap {
		t.Errorf("lazy gap %v not below busy %v", al.SpectralGap, ab.SpectralGap)
	}
	if al.MixingTime <= ab.MixingTime {
		t.Errorf("lazy mixing %d not above busy %d", al.MixingTime, ab.MixingTime)
	}
	if al.EntropyRate >= ab.EntropyRate {
		t.Errorf("lazy entropy %v not below busy %v", al.EntropyRate, ab.EntropyRate)
	}
}
