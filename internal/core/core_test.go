package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/descent"
	"repro/internal/sim"
	"repro/internal/topology"
)

func newPlanner(t *testing.T, topo *topology.Topology, alpha, beta float64) *Planner {
	t.Helper()
	p, err := NewPlanner(topo, cost.Uniform(topo.M(), alpha, beta))
	if err != nil {
		t.Fatalf("NewPlanner: %v", err)
	}
	return p
}

func TestNewPlannerValidation(t *testing.T) {
	if _, err := NewPlanner(nil, cost.Weights{}); !errors.Is(err, ErrPlanner) {
		t.Errorf("nil topology err = %v, want ErrPlanner", err)
	}
	top := topology.Topology2()
	if _, err := NewPlanner(top, cost.Uniform(5, 1, 1)); err == nil {
		t.Error("expected weight mismatch error")
	}
}

func TestPlannerAccessors(t *testing.T) {
	top := topology.Topology2()
	p := newPlanner(t, top, 1, 1)
	if p.Topology() != top {
		t.Error("Topology accessor")
	}
	if p.Model() == nil {
		t.Error("Model accessor")
	}
}

func TestPlannerEndToEnd(t *testing.T) {
	top := topology.Topology2()
	p := newPlanner(t, top, 1, 1e-4)

	res, err := p.Optimize(descent.Options{Variant: descent.Perturbed, MaxIters: 300, Seed: 3})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}

	// The optimized schedule must beat the MH baseline under the same
	// objective.
	base, err := p.Baseline()
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}
	baseEval, err := p.Evaluate(base)
	if err != nil {
		t.Fatalf("Evaluate baseline: %v", err)
	}
	if res.Eval.U > baseEval.U {
		t.Errorf("optimized U %v worse than baseline %v", res.Eval.U, baseEval.U)
	}

	// Simulation of the optimized schedule tracks its analytic coverage.
	runs, err := p.Simulate(res.P, SimulateOptions{Steps: 100000, Seed: 5, Replications: 2})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(runs) != 2 {
		t.Fatalf("replications = %d", len(runs))
	}
	for i := range res.Eval.CBar {
		if math.Abs(runs[0].CoverageShare[i]-res.Eval.CBar[i]) > 0.02 {
			t.Errorf("share[%d]: simulated %v, analytic %v",
				i, runs[0].CoverageShare[i], res.Eval.CBar[i])
		}
	}
}

func TestPlannerOptimizeMany(t *testing.T) {
	p := newPlanner(t, topology.Topology1(), 0, 1)
	results, err := p.OptimizeMany(descent.Options{Variant: descent.Adaptive, MaxIters: 100, Seed: 7}, 3)
	if err != nil {
		t.Fatalf("OptimizeMany: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if _, err := p.OptimizeMany(descent.Options{Variant: descent.Adaptive}, 0); !errors.Is(err, ErrPlanner) {
		t.Errorf("zero runs err = %v, want ErrPlanner", err)
	}
}

func TestPlannerNilArguments(t *testing.T) {
	p := newPlanner(t, topology.Topology2(), 1, 1)
	if _, err := p.Evaluate(nil); !errors.Is(err, ErrPlanner) {
		t.Errorf("Evaluate(nil) err = %v, want ErrPlanner", err)
	}
	if _, err := p.Simulate(nil, SimulateOptions{}); !errors.Is(err, ErrPlanner) {
		t.Errorf("Simulate(nil) err = %v, want ErrPlanner", err)
	}
}

func TestPlannerSimulateDefaults(t *testing.T) {
	p := newPlanner(t, topology.Topology2(), 1, 1)
	base, err := p.Baseline()
	if err != nil {
		t.Fatalf("Baseline: %v", err)
	}
	runs, err := p.Simulate(base, SimulateOptions{Seed: 1})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(runs) != 1 || runs[0].Steps != 100000 {
		t.Errorf("defaults not applied: %d runs, %d steps", len(runs), runs[0].Steps)
	}
	if _, err := p.Simulate(base, SimulateOptions{Seed: 1, TimeModel: sim.PhysicalInterrupted, Steps: 100}); err != nil {
		t.Errorf("explicit time model: %v", err)
	}
}
