// Package rng provides deterministic, seedable random streams for the
// optimizer and simulator. Everything in this repository that consumes
// randomness goes through a *Source so that experiments are reproducible
// run-to-run and independent components can be given independent streams
// split from one master seed.
package rng

import (
	"math"
	"math/rand/v2"
)

// Source is a deterministic random stream. It wraps math/rand/v2's PCG
// generator and adds the distributions the optimizer needs (Gaussian noise
// for the perturbed descent variant, categorical sampling for the Markov
// simulator, and random stochastic rows for random restarts).
type Source struct {
	r   *rand.Rand
	pcg *rand.PCG
}

// New returns a Source seeded from the given 64-bit seed.
func New(seed uint64) *Source {
	// Mix the single seed into two PCG streams; the golden-ratio constant
	// decorrelates the halves.
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &Source{r: rand.New(pcg), pcg: pcg}
}

// Split returns a new independent Source derived from this one. Splitting
// lets one experiment seed fan out to per-run streams without the runs
// sharing state.
func (s *Source) Split() *Source {
	pcg := rand.NewPCG(s.r.Uint64(), s.r.Uint64())
	return &Source{r: rand.New(pcg), pcg: pcg}
}

// State returns an opaque snapshot of the stream's position. A Source
// restored from it with SetState produces exactly the draws the original
// would have produced next — rand.Rand keeps no buffered values of its
// own, so the PCG state is the whole state. The deployment runtime uses
// this to checkpoint live executors bit-for-bit.
func (s *Source) State() ([]byte, error) {
	return s.pcg.MarshalBinary()
}

// SetState rewinds or fast-forwards the stream to a snapshot taken with
// State.
func (s *Source) SetState(state []byte) error {
	return s.pcg.UnmarshalBinary(state)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.r.Uint64() }

// IntN returns a uniform value in [0, n).
func (s *Source) IntN(n int) int { return s.r.IntN(n) }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Norm returns a normally distributed value with the given mean and
// standard deviation.
func (s *Source) Norm(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// Exp returns an exponentially distributed value with the given rate.
// It is used by failure-injection tests to schedule random events.
func (s *Source) Exp(rate float64) float64 {
	return s.r.ExpFloat64() / rate
}

// Poisson returns a Poisson-distributed count with the given mean.
// Non-positive means yield zero. Small means use Knuth's product method;
// large means use a normal approximation, which is accurate to well under
// a percent at the crossover and keeps the draw O(1).
func (s *Source) Poisson(mean float64) int64 {
	if mean <= 0 || math.IsNaN(mean) {
		return 0
	}
	if mean < 30 {
		limit := math.Exp(-mean)
		var k int64
		p := 1.0
		for {
			p *= s.r.Float64()
			if p <= limit {
				return k
			}
			k++
		}
	}
	v := math.Round(s.Norm(mean, math.Sqrt(mean)))
	if v < 0 {
		return 0
	}
	return int64(v)
}

// Categorical samples an index from the given non-negative weights.
// Weights need not be normalized. It returns the last index with positive
// weight if accumulated rounding leaves the draw past the total, and -1 if
// every weight is zero or the slice is empty.
func (s *Source) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return -1
	}
	u := s.r.Float64() * total
	last := -1
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		last = i
		u -= w
		if u < 0 {
			return i
		}
	}
	return last
}

// StochasticRow fills out with a random probability row using the paper's
// V2 initialization: entry j (for j < n-1) receives rand*rem/n of the
// remaining mass rem, and the final entry absorbs whatever is left, so the
// row sums to one and every entry is strictly positive with probability 1.
func (s *Source) StochasticRow(out []float64) {
	n := len(out)
	if n == 0 {
		return
	}
	rem := 1.0
	for j := 0; j < n-1; j++ {
		v := s.r.Float64() * rem / float64(n)
		out[j] = v
		rem -= v
	}
	out[n-1] = rem
}

// DirichletRow fills out with a symmetric-Dirichlet(alpha) sample, an
// alternative random initializer that explores the simplex more uniformly
// than the paper's scheme. Gamma variates are generated with the
// Marsaglia–Tsang method.
func (s *Source) DirichletRow(out []float64, alpha float64) {
	var total float64
	for i := range out {
		g := s.gamma(alpha)
		out[i] = g
		total += g
	}
	if total == 0 {
		// Degenerate draw (all zeros can occur for tiny alpha); fall back
		// to uniform.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return
	}
	for i := range out {
		out[i] /= total
	}
}

// gamma draws a Gamma(shape, 1) variate for shape > 0.
func (s *Source) gamma(shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
		u := s.r.Float64()
		return s.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := s.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := s.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	return s.r.Perm(n)
}
