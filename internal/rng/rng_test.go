package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 identical draws across different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 identical draws across split streams", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(7).Split()
	b := New(7).Split()
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic for a fixed parent seed")
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestIntNRange(t *testing.T) {
	s := New(4)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.IntN(5)
		if v < 0 || v >= 5 {
			t.Fatalf("IntN(5) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("IntN(5) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestNormMoments(t *testing.T) {
	s := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm(3, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("variance = %v, want ~4", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(6)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(2) // mean 0.5
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestPoissonMoments(t *testing.T) {
	s := New(15)
	// Both the Knuth regime (< 30) and the normal-approximation regime.
	for _, mean := range []float64{0.3, 2, 12, 80} {
		const n = 200000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(s.Poisson(mean))
			if v < 0 {
				t.Fatalf("negative Poisson draw")
			}
			sum += v
			sumSq += v * v
		}
		m := sum / n
		variance := sumSq/n - m*m
		if math.Abs(m-mean) > 0.03*mean+0.02 {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(variance-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) variance = %v", mean, variance)
		}
	}
}

func TestPoissonDegenerate(t *testing.T) {
	s := New(16)
	if v := s.Poisson(0); v != 0 {
		t.Errorf("Poisson(0) = %d", v)
	}
	if v := s.Poisson(-3); v != 0 {
		t.Errorf("Poisson(-3) = %d", v)
	}
	if v := s.Poisson(math.NaN()); v != 0 {
		t.Errorf("Poisson(NaN) = %d", v)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	s := New(8)
	weights := []float64{1, 3, 0, 6}
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		idx := s.Categorical(weights)
		if idx < 0 || idx >= 4 {
			t.Fatalf("Categorical returned %d", idx)
		}
		counts[idx]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[2])
	}
	for i, want := range []float64{0.1, 0.3, 0, 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestCategoricalDegenerate(t *testing.T) {
	s := New(9)
	if idx := s.Categorical(nil); idx != -1 {
		t.Errorf("Categorical(nil) = %d, want -1", idx)
	}
	if idx := s.Categorical([]float64{0, 0}); idx != -1 {
		t.Errorf("Categorical(zeros) = %d, want -1", idx)
	}
	if idx := s.Categorical([]float64{0, 5, 0}); idx != 1 {
		t.Errorf("Categorical single support = %d, want 1", idx)
	}
}

// TestCategoricalMinusOneOnlyWithoutSupport pins the contract that -1 is
// reserved for weight vectors with no positive entry; any vector with at
// least one positive weight always yields a valid in-support index.
func TestCategoricalMinusOneOnlyWithoutSupport(t *testing.T) {
	s := New(21)
	for _, weights := range [][]float64{{}, {0, 0, 0}, {-1, 0, -2}} {
		if idx := s.Categorical(weights); idx != -1 {
			t.Errorf("Categorical(%v) = %d, want -1", weights, idx)
		}
	}
	// A single positive weight among negatives/zeros must be drawn, never -1.
	for i := 0; i < 1000; i++ {
		if idx := s.Categorical([]float64{-1, 1e-300, 0, -2}); idx != 1 {
			t.Fatalf("Categorical with lone support = %d, want 1", idx)
		}
	}
}

// TestCategoricalFallbackLastPositive pins the defensive fallback: when u
// is never exhausted by the subtraction loop, Categorical returns the
// index of the last positive weight — not the last index, and not -1.
// Overflowing the weight total to +Inf reaches that path deterministically
// (u = Float64()·Inf never goes negative), standing in for the roundoff
// case where u survives the full sweep by a few ulps.
func TestCategoricalFallbackLastPositive(t *testing.T) {
	s := New(22)
	for i := 0; i < 100; i++ {
		if idx := s.Categorical([]float64{1e308, 1e308, 0, 0}); idx != 1 {
			t.Fatalf("fallback draw %d = %d, want last positive index 1", i, idx)
		}
	}
}

// TestCategoricalNeverReturnsZeroWeightIndex pins that trailing
// zero-weight entries are unreachable on every path, including the
// fallback (which tracks the last *positive* index).
func TestCategoricalNeverReturnsZeroWeightIndex(t *testing.T) {
	s := New(23)
	weights := []float64{0.3, 0.7, 0, 0}
	for i := 0; i < 200000; i++ {
		if idx := s.Categorical(weights); idx != 0 && idx != 1 {
			t.Fatalf("draw %d: Categorical = %d, want 0 or 1", i, idx)
		}
	}
}

func TestStochasticRowSumsToOne(t *testing.T) {
	s := New(10)
	for trial := 0; trial < 200; trial++ {
		n := 1 + s.IntN(9)
		row := make([]float64, n)
		s.StochasticRow(row)
		var sum float64
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative entry %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row sum = %v, want 1", sum)
		}
	}
}

func TestStochasticRowEmpty(t *testing.T) {
	s := New(11)
	s.StochasticRow(nil) // must not panic
}

func TestDirichletRowSumsToOne(t *testing.T) {
	s := New(12)
	for _, alpha := range []float64{0.3, 1, 5} {
		for trial := 0; trial < 100; trial++ {
			row := make([]float64, 4)
			s.DirichletRow(row, alpha)
			var sum float64
			for _, v := range row {
				if v < 0 {
					t.Fatalf("alpha=%v: negative entry %v", alpha, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("alpha=%v: row sum = %v", alpha, sum)
			}
		}
	}
}

func TestGammaMean(t *testing.T) {
	s := New(13)
	const n = 100000
	for _, shape := range []float64{0.5, 1, 2.5} {
		var sum float64
		for i := 0; i < n; i++ {
			sum += s.gamma(shape)
		}
		if mean := sum / n; math.Abs(mean-shape) > 0.05*math.Max(1, shape) {
			t.Errorf("Gamma(%v) mean = %v, want ~%v", shape, mean, shape)
		}
	}
}

func TestPerm(t *testing.T) {
	s := New(14)
	p := s.Perm(6)
	seen := make([]bool, 6)
	for _, v := range p {
		if v < 0 || v >= 6 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

// TestStateRoundTrip: a Source restored from a State snapshot continues
// with exactly the draws the original produces, across every distribution
// the deployment runtime consumes.
func TestStateRoundTrip(t *testing.T) {
	src := New(99)
	// Burn an arbitrary prefix so the snapshot is mid-stream.
	for i := 0; i < 37; i++ {
		src.Uint64()
	}
	state, err := src.State()
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	restored := New(12345) // deliberately different seed
	if err := restored.SetState(state); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	weights := []float64{0.2, 0.3, 0.5}
	for i := 0; i < 200; i++ {
		if a, b := src.Categorical(weights), restored.Categorical(weights); a != b {
			t.Fatalf("Categorical diverged at draw %d: %d vs %d", i, a, b)
		}
		if a, b := src.Norm(0, 1), restored.Norm(0, 1); a != b {
			t.Fatalf("Norm diverged at draw %d: %v vs %v", i, a, b)
		}
		if a, b := src.Poisson(0.7), restored.Poisson(0.7); a != b {
			t.Fatalf("Poisson diverged at draw %d: %d vs %d", i, a, b)
		}
	}
}

func TestSetStateRejectsGarbage(t *testing.T) {
	src := New(1)
	if err := src.SetState([]byte("not a pcg state")); err == nil {
		t.Error("SetState accepted garbage")
	}
}
