package mcmc

import (
	"errors"
	"math"
	"testing"

	"repro/internal/markov"
	"repro/internal/rng"
)

func TestMetropolisHastingsValidation(t *testing.T) {
	cases := []struct {
		name string
		tau  []float64
	}{
		{"too few states", []float64{1}},
		{"zero entry", []float64{0.5, 0.5, 0}},
		{"negative entry", []float64{1.2, -0.1, -0.1}},
		{"bad sum", []float64{0.5, 0.2, 0.2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := MetropolisHastings(tc.tau); !errors.Is(err, ErrTarget) {
				t.Errorf("err = %v, want ErrTarget", err)
			}
		})
	}
}

func TestMetropolisHastingsStationary(t *testing.T) {
	targets := [][]float64{
		{0.4, 0.1, 0.1, 0.4},
		{0.1, 0.2, 0.3, 0.4},
		{0.45, 0.10, 0.45},
		{0.25, 0.25, 0.25, 0.25},
	}
	for _, tau := range targets {
		p, err := MetropolisHastings(tau)
		if err != nil {
			t.Fatalf("MetropolisHastings(%v): %v", tau, err)
		}
		chain, err := markov.New(p)
		if err != nil {
			t.Fatalf("markov.New: %v", err)
		}
		sol, err := chain.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		for i := range tau {
			if math.Abs(sol.Pi[i]-tau[i]) > 1e-9 {
				t.Errorf("τ=%v: π_%d = %v, want %v", tau, i, sol.Pi[i], tau[i])
			}
		}
	}
}

func TestMetropolisHastingsReversible(t *testing.T) {
	src := rng.New(31)
	for trial := 0; trial < 30; trial++ {
		n := 2 + src.IntN(7)
		tau := make([]float64, n)
		src.DirichletRow(tau, 2)
		// Keep entries strictly positive.
		for i := range tau {
			tau[i] = 0.9*tau[i] + 0.1/float64(n)
		}
		p, err := MetropolisHastings(tau)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				lhs := tau[i] * p.At(i, j)
				rhs := tau[j] * p.At(j, i)
				if math.Abs(lhs-rhs) > 1e-12 {
					t.Fatalf("trial %d: detailed balance broken at (%d,%d): %v vs %v",
						trial, i, j, lhs, rhs)
				}
			}
		}
	}
}

func TestMetropolisHastingsRowsStochastic(t *testing.T) {
	p, err := MetropolisHastings([]float64{0.7, 0.1, 0.1, 0.1})
	if err != nil {
		t.Fatalf("MetropolisHastings: %v", err)
	}
	if err := markov.CheckStochastic(p); err != nil {
		t.Errorf("not stochastic: %v", err)
	}
	// The dominant state must hold significant self-probability (moves to
	// lighter states are usually rejected).
	if p.At(0, 0) < 0.5 {
		t.Errorf("p_00 = %v, want > 0.5", p.At(0, 0))
	}
}

func TestLazyMetropolisHastings(t *testing.T) {
	tau := []float64{0.3, 0.3, 0.4}
	p, err := LazyMetropolisHastings(tau, 0.5)
	if err != nil {
		t.Fatalf("LazyMetropolisHastings: %v", err)
	}
	chain, err := markov.New(p)
	if err != nil {
		t.Fatalf("markov.New: %v", err)
	}
	sol, err := chain.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Laziness preserves the stationary distribution.
	for i := range tau {
		if math.Abs(sol.Pi[i]-tau[i]) > 1e-9 {
			t.Errorf("π_%d = %v, want %v", i, sol.Pi[i], tau[i])
		}
	}
	// Self-loops inflated.
	base, _ := MetropolisHastings(tau)
	for i := range tau {
		if p.At(i, i) <= base.At(i, i) {
			t.Errorf("lazy self-loop %v not larger than base %v", p.At(i, i), base.At(i, i))
		}
	}
	if _, err := LazyMetropolisHastings(tau, 1); !errors.Is(err, ErrTarget) {
		t.Errorf("laziness 1: err = %v, want ErrTarget", err)
	}
	if _, err := LazyMetropolisHastings(tau, -0.1); !errors.Is(err, ErrTarget) {
		t.Errorf("negative laziness: err = %v, want ErrTarget", err)
	}
}
