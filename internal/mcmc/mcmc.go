// Package mcmc implements the Metropolis–Hastings baseline the paper's
// Related Work discusses: when the only objective is the distribution of
// the sensor's time among the PoIs, a reversible chain with a prescribed
// stationary distribution can be constructed directly, with no
// optimization. The baseline ignores exposure times and the pass-through
// coupling between PoIs — exactly the limitations that motivate the
// paper's steepest-descent formulation — which the experiment harness
// quantifies by evaluating both chains under the full cost model.
package mcmc

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// ErrTarget indicates an invalid target distribution.
var ErrTarget = errors.New("mcmc: invalid target distribution")

// MetropolisHastings builds the Metropolis chain over M states with a
// uniform proposal and the classic acceptance min(1, τ_j/τ_i). The
// returned matrix is row-stochastic, reversible with respect to τ, and
// (for any non-degenerate τ) ergodic with stationary distribution exactly
// τ.
func MetropolisHastings(tau []float64) (*mat.Matrix, error) {
	n := len(tau)
	if n < 2 {
		return nil, fmt.Errorf("%w: %d states", ErrTarget, n)
	}
	var sum float64
	for i, v := range tau {
		if v <= 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("%w: τ_%d = %v (must be positive)", ErrTarget, i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("%w: sums to %v", ErrTarget, sum)
	}
	p := mat.New(n, n)
	prop := 1 / float64(n-1) // uniform proposal over the other states
	for i := 0; i < n; i++ {
		var stay float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			accept := math.Min(1, tau[j]/tau[i])
			pij := prop * accept
			p.Set(i, j, pij)
			stay += pij
		}
		p.Set(i, i, 1-stay)
	}
	return p, nil
}

// LazyMetropolisHastings mixes the Metropolis chain with the identity:
// p' = (1-lazy)·p + lazy·I. Laziness in (0, 1) guarantees aperiodicity
// even for targets that would otherwise produce a periodic chain, and
// models a sensor that dwells longer per visit.
func LazyMetropolisHastings(tau []float64, lazy float64) (*mat.Matrix, error) {
	if lazy < 0 || lazy >= 1 {
		return nil, fmt.Errorf("%w: laziness %v outside [0, 1)", ErrTarget, lazy)
	}
	p, err := MetropolisHastings(tau)
	if err != nil {
		return nil, err
	}
	n := p.Rows()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := (1 - lazy) * p.At(i, j)
			if i == j {
				v += lazy
			}
			p.Set(i, j, v)
		}
	}
	return p, nil
}
