// Package route plans physically feasible travel paths between PoIs.
// The paper's Markov model requires that "travel from one PoI to another
// must occur along a physically feasible route"; in open terrain that is
// the straight line, but real deployments (buildings, water-distribution
// plant rooms, restricted zones) contain regions the sensor cannot cross.
//
// The planner models obstacles as axis-aligned rectangles and computes
// shortest polyline paths with a visibility graph: path vertices are the
// endpoints plus the (slightly outset) obstacle corners, edges connect
// mutually visible vertices, and Dijkstra extracts the shortest path.
// For an empty obstacle set every route degenerates to the direct
// segment, reproducing the paper's setting exactly.
package route

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
)

// Routing errors.
var (
	// ErrObstacle indicates an invalid obstacle specification.
	ErrObstacle = errors.New("route: invalid obstacle")
	// ErrNoPath indicates that no feasible path exists between the
	// endpoints (e.g. an endpoint is enclosed by obstacles).
	ErrNoPath = errors.New("route: no feasible path")
)

// Rect is an axis-aligned rectangular obstacle.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// valid reports whether the rectangle has positive area.
func (r Rect) valid() bool {
	return r.MaxX > r.MinX && r.MaxY > r.MinY
}

// contains reports whether the point lies strictly inside the rectangle.
func (r Rect) contains(p geom.Point) bool {
	return p.X > r.MinX && p.X < r.MaxX && p.Y > r.MinY && p.Y < r.MaxY
}

// outset returns the rectangle grown by m on every side.
func (r Rect) outset(m float64) Rect {
	return Rect{r.MinX - m, r.MinY - m, r.MaxX + m, r.MaxY + m}
}

// corners returns the rectangle's four corner points.
func (r Rect) corners() [4]geom.Point {
	return [4]geom.Point{
		{X: r.MinX, Y: r.MinY},
		{X: r.MaxX, Y: r.MinY},
		{X: r.MaxX, Y: r.MaxY},
		{X: r.MinX, Y: r.MaxY},
	}
}

// blocksSegment reports whether the segment properly intersects the
// rectangle's interior. Touching the boundary does not block (paths may
// graze obstacle corners).
func (r Rect) blocksSegment(s geom.Segment) bool {
	// Liang–Barsky clipping of the parametric segment against the
	// rectangle; the segment blocks if a sub-interval of positive length
	// lies inside the open rectangle.
	x0, y0 := s.A.X, s.A.Y
	dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
	t0, t1 := 0.0, 1.0
	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0 // parallel: inside iff q >= 0
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}
	if !clip(-dx, x0-r.MinX) || !clip(dx, r.MaxX-x0) ||
		!clip(-dy, y0-r.MinY) || !clip(dy, r.MaxY-y0) {
		return false
	}
	// The clipped interval [t0, t1] lies within the closed rectangle;
	// require positive length and a strictly interior midpoint so that
	// boundary grazing does not count.
	if t1-t0 <= 1e-12 {
		return false
	}
	mid := s.PointAt((t0 + t1) / 2)
	return r.contains(mid)
}

// Planner computes shortest feasible polylines between points.
type Planner struct {
	obstacles []Rect
	// margin is how far path vertices are outset from obstacle corners so
	// paths do not scrape the boundary.
	margin float64
	// waypoints caches the outset corners of all obstacles.
	waypoints []geom.Point
}

// DefaultMargin is the corner outset used when Config.Margin is zero.
const DefaultMargin = 1e-6

// New validates the obstacles and builds a Planner. Margin ≤ 0 selects
// DefaultMargin.
func New(obstacles []Rect, margin float64) (*Planner, error) {
	if margin <= 0 {
		margin = DefaultMargin
	}
	p := &Planner{
		obstacles: append([]Rect(nil), obstacles...),
		margin:    margin,
	}
	for i, r := range obstacles {
		if !r.valid() {
			return nil, fmt.Errorf("%w: rectangle %d has non-positive extent", ErrObstacle, i)
		}
	}
	for _, r := range p.obstacles {
		for _, c := range r.outset(margin).corners() {
			if !p.insideAnyObstacle(c) {
				p.waypoints = append(p.waypoints, c)
			}
		}
	}
	return p, nil
}

// Obstacles returns a copy of the planner's obstacle set.
func (p *Planner) Obstacles() []Rect {
	return append([]Rect(nil), p.obstacles...)
}

// insideAnyObstacle reports whether the point lies strictly inside any
// obstacle.
func (p *Planner) insideAnyObstacle(pt geom.Point) bool {
	for _, r := range p.obstacles {
		if r.contains(pt) {
			return true
		}
	}
	return false
}

// Clear reports whether the straight segment between a and b crosses no
// obstacle interior.
func (p *Planner) Clear(a, b geom.Point) bool {
	s := geom.Segment{A: a, B: b}
	for _, r := range p.obstacles {
		if r.blocksSegment(s) {
			return false
		}
	}
	return true
}

// Route returns the shortest feasible polyline from a to b, including
// both endpoints. With no obstacles in the way it is [a, b]. It returns
// ErrNoPath if an endpoint is inside an obstacle or the visibility graph
// is disconnected.
func (p *Planner) Route(a, b geom.Point) ([]geom.Point, error) {
	if p.insideAnyObstacle(a) || p.insideAnyObstacle(b) {
		return nil, fmt.Errorf("%w: endpoint inside an obstacle", ErrNoPath)
	}
	if p.Clear(a, b) {
		return []geom.Point{a, b}, nil
	}
	// Visibility graph over {a, b, obstacle corners}.
	nodes := make([]geom.Point, 0, len(p.waypoints)+2)
	nodes = append(nodes, a, b)
	nodes = append(nodes, p.waypoints...)
	n := len(nodes)

	const inf = math.MaxFloat64
	dist := make([]float64, n)
	prev := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[0] = 0
	// Dijkstra with linear extraction: node counts stay small (4 corners
	// per obstacle), so the O(n²) scan beats heap overhead.
	for {
		u := -1
		best := inf
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				best = dist[i]
				u = i
			}
		}
		if u == -1 {
			break
		}
		if u == 1 {
			break // reached b
		}
		done[u] = true
		for v := 0; v < n; v++ {
			if done[v] || v == u {
				continue
			}
			if !p.Clear(nodes[u], nodes[v]) {
				continue
			}
			if d := dist[u] + geom.Dist(nodes[u], nodes[v]); d < dist[v] {
				dist[v] = d
				prev[v] = u
			}
		}
	}
	if dist[1] == inf {
		return nil, fmt.Errorf("%w: endpoints are disconnected", ErrNoPath)
	}
	// Reconstruct a → b.
	var rev []int
	for u := 1; u != -1; u = prev[u] {
		rev = append(rev, u)
	}
	path := make([]geom.Point, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, nodes[rev[i]])
	}
	return path, nil
}

// PathLength returns the total length of a polyline.
func PathLength(path []geom.Point) float64 {
	var total float64
	for i := 1; i < len(path); i++ {
		total += geom.Dist(path[i-1], path[i])
	}
	return total
}
