package route

import (
	"errors"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New([]Rect{{0, 0, 0, 1}}, 0); !errors.Is(err, ErrObstacle) {
		t.Errorf("degenerate rect err = %v, want ErrObstacle", err)
	}
	if _, err := New([]Rect{{1, 1, 0, 0}}, 0); !errors.Is(err, ErrObstacle) {
		t.Errorf("inverted rect err = %v, want ErrObstacle", err)
	}
	p, err := New(nil, 0)
	if err != nil {
		t.Fatalf("empty obstacle set: %v", err)
	}
	if len(p.Obstacles()) != 0 {
		t.Error("obstacles not empty")
	}
}

func TestRouteNoObstaclesIsDirect(t *testing.T) {
	p, err := New(nil, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, b := geom.Point{X: 0, Y: 0}, geom.Point{X: 3, Y: 4}
	path, err := p.Route(a, b)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(path) != 2 || path[0] != a || path[1] != b {
		t.Errorf("path = %v, want direct", path)
	}
	if l := PathLength(path); math.Abs(l-5) > 1e-12 {
		t.Errorf("length = %v, want 5", l)
	}
}

func TestRouteAroundBlock(t *testing.T) {
	// A wall straddles the direct path from (0, 0.5) to (4, 0.5).
	p, err := New([]Rect{{1.5, -1, 2.5, 2}}, 1e-6)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, b := geom.Point{X: 0, Y: 0.5}, geom.Point{X: 4, Y: 0.5}
	if p.Clear(a, b) {
		t.Fatal("direct segment should be blocked")
	}
	path, err := p.Route(a, b)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if len(path) < 3 {
		t.Fatalf("path = %v, want a detour", path)
	}
	// The detour must be longer than the direct distance but bounded by
	// going around the whole wall.
	l := PathLength(path)
	if l <= 4 {
		t.Errorf("detour length %v not above direct 4", l)
	}
	if l > 10 {
		t.Errorf("detour length %v unreasonably long", l)
	}
	// No leg of the path may cross an obstacle.
	for i := 1; i < len(path); i++ {
		if !p.Clear(path[i-1], path[i]) {
			t.Errorf("leg %d crosses an obstacle", i)
		}
	}
	// Endpoints preserved.
	if path[0] != a || path[len(path)-1] != b {
		t.Errorf("endpoints = %v, %v", path[0], path[len(path)-1])
	}
}

func TestRoutePicksShorterSide(t *testing.T) {
	// Wall reaching far down but only slightly up: the route should go
	// over the top.
	p, err := New([]Rect{{1, -10, 2, 1}}, 1e-6)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, b := geom.Point{X: 0, Y: 0}, geom.Point{X: 3, Y: 0}
	path, err := p.Route(a, b)
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	for _, pt := range path[1 : len(path)-1] {
		if pt.Y < 0.5 {
			t.Errorf("waypoint %v went the long way around", pt)
		}
	}
}

func TestRouteEndpointInsideObstacle(t *testing.T) {
	p, err := New([]Rect{{0, 0, 2, 2}}, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := p.Route(geom.Point{X: 1, Y: 1}, geom.Point{X: 5, Y: 5}); !errors.Is(err, ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
}

func TestRouteEnclosedEndpoint(t *testing.T) {
	// Box the destination in with four walls (leaving it outside the
	// walls' interiors but unreachable).
	walls := []Rect{
		{-1, -1, 3, 0}, // bottom
		{-1, 2, 3, 3},  // top
		{-1, 0, 0, 2},  // left
		{2, 0, 3, 2},   // right
	}
	p, err := New(walls, 1e-6)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := p.Route(geom.Point{X: 1, Y: 1}, geom.Point{X: 10, Y: 10}); !errors.Is(err, ErrNoPath) {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
}

func TestClearGrazingBoundaryAllowed(t *testing.T) {
	p, err := New([]Rect{{0, 0, 1, 1}}, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// A segment sliding along the obstacle's top edge touches but does
	// not enter the interior.
	if !p.Clear(geom.Point{X: -1, Y: 1}, geom.Point{X: 2, Y: 1}) {
		t.Error("boundary-grazing segment reported blocked")
	}
	// A segment through the middle is blocked.
	if p.Clear(geom.Point{X: -1, Y: 0.5}, geom.Point{X: 2, Y: 0.5}) {
		t.Error("interior-crossing segment reported clear")
	}
	// A segment fully inside is blocked.
	if p.Clear(geom.Point{X: 0.2, Y: 0.5}, geom.Point{X: 0.8, Y: 0.5}) {
		t.Error("interior segment reported clear")
	}
	// A segment wholly outside is clear.
	if !p.Clear(geom.Point{X: -1, Y: 2}, geom.Point{X: 2, Y: 3}) {
		t.Error("outside segment reported blocked")
	}
}

func TestBlocksSegmentParallelOutside(t *testing.T) {
	r := Rect{0, 0, 1, 1}
	// Vertical segment left of the box, parallel to its sides.
	if r.blocksSegment(geom.Segment{A: geom.Point{X: -0.5, Y: -1}, B: geom.Point{X: -0.5, Y: 2}}) {
		t.Error("parallel outside segment blocked")
	}
	if !r.blocksSegment(geom.Segment{A: geom.Point{X: 0.5, Y: -1}, B: geom.Point{X: 0.5, Y: 2}}) {
		t.Error("vertical interior segment not blocked")
	}
}

// TestRouteTriangleInequality: routed length is never shorter than the
// straight-line distance, and never longer than routing via any single
// intermediate waypoint.
func TestRouteTriangleInequality(t *testing.T) {
	obstacles := []Rect{
		{2, 2, 4, 4},
		{5, 0, 6, 3},
		{1, 5, 3, 6},
	}
	p, err := New(obstacles, 1e-6)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	src := rng.New(77)
	randomFree := func() geom.Point {
		for {
			pt := geom.Point{X: src.Uniform(0, 8), Y: src.Uniform(0, 8)}
			if !p.insideAnyObstacle(pt) {
				return pt
			}
		}
	}
	for trial := 0; trial < 200; trial++ {
		a, b := randomFree(), randomFree()
		path, err := p.Route(a, b)
		if err != nil {
			t.Fatalf("trial %d: Route: %v", trial, err)
		}
		l := PathLength(path)
		if direct := geom.Dist(a, b); l < direct-1e-9 {
			t.Fatalf("trial %d: routed %v shorter than direct %v", trial, l, direct)
		}
		// Every leg clear.
		for i := 1; i < len(path); i++ {
			if !p.Clear(path[i-1], path[i]) {
				t.Fatalf("trial %d: leg %d blocked", trial, i)
			}
		}
		// Shortest-path optimality within the graph: routing a → m → b
		// (for a random free midpoint m) cannot beat the planner.
		m := randomFree()
		p1, err1 := p.Route(a, m)
		p2, err2 := p.Route(m, b)
		if err1 == nil && err2 == nil {
			if via := PathLength(p1) + PathLength(p2); via < l-1e-9 {
				t.Fatalf("trial %d: via-point path %v beats planner %v", trial, via, l)
			}
		}
	}
}

func TestPathLengthEdgeCases(t *testing.T) {
	if PathLength(nil) != 0 {
		t.Error("nil path length")
	}
	if PathLength([]geom.Point{{X: 1, Y: 1}}) != 0 {
		t.Error("single-point path length")
	}
}
