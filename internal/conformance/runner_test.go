package conformance

import (
	"context"
	"strings"
	"testing"

	"repro/coverage"
)

// testCorpus builds a small in-memory family over a 3-PoI line: an
// optimized case, its Metropolis twin, and a second optimized case with
// more restarts, exercised over a dense 1/2-worker matrix with a
// 2-shard split.
func testCorpus(t *testing.T) *Corpus {
	t.Helper()
	scn, err := coverage.LineScenario("runner-line-3", 3, []float64{0.5, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	obj := coverage.Objectives{Alpha: 1, Beta: 1e-4}
	c := &Corpus{
		Version: Version,
		Family:  "runner-unit",
		Matrix:  Matrix{Solvers: []string{"dense"}, Workers: []int{1, 2}, Shards: []int{2}},
		Cases: []Case{
			{Name: "opt", Scenario: scn, Objectives: obj, Run: Budget{Seed: 7, MaxIters: 80}},
			{Name: "baseline", Mode: ModeMetropolis, Scenario: scn, Objectives: obj},
			{Name: "multi", Scenario: scn, Objectives: obj, Run: Budget{Seed: 7, MaxIters: 80, Restarts: 3}},
		},
		Invariants: []Invariant{
			{Type: InvCostOrder, Cases: []string{"opt", "baseline"}},
			{Type: InvBitExact, Over: OverWorkers, Cases: []string{"opt", "multi"}},
			{Type: InvBitExact, Over: OverShards, Cases: []string{"multi"}},
			{Type: InvShareOrder, Cases: []string{"opt"}, MinGap: 0.25, Tolerance: 0.1},
			{Type: InvBound, Cases: []string{"opt"}, Metric: "cost", Min: fptr(0), Max: fptr(1e6)},
		},
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("test corpus invalid: %v", err)
	}
	return c
}

func TestRunnerPassesSoundCorpus(t *testing.T) {
	c := testCorpus(t)
	rep, err := Run(context.Background(), []*Corpus{c}, Config{Parallel: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Pass() {
		t.Fatalf("sound corpus failed: %s\n%+v", rep.Summary(), rep.Files[0].Checks)
	}
	if rep.Cases != 3 {
		t.Errorf("Cases = %d, want 3", rep.Cases)
	}
	// Per-cell invariants run per worker count; bitexact groups once per
	// solver: 3 non-bitexact × 2 workers + 2 bitexact = 8.
	if rep.Checks != 8 {
		t.Errorf("Checks = %d, want 8", rep.Checks)
	}
	// The report must include the executed results for diagnostics,
	// including the sharded variant.
	fr := rep.Files[0]
	for _, key := range []string{"dense/w1/opt", "dense/w2/opt", "dense/w1/shards2/multi"} {
		if _, ok := fr.Results[key]; !ok {
			t.Errorf("result %q missing from report", key)
		}
	}
}

// The runner's report must be independent of parallelism: execution is
// memoized per cell and checks are sorted, so Parallel only changes the
// wall clock.
func TestRunnerDeterministicAcrossParallelism(t *testing.T) {
	c := testCorpus(t)
	serial, err := Run(context.Background(), []*Corpus{c}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), []*Corpus{c}, Config{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Files[0].Checks) != len(par.Files[0].Checks) {
		t.Fatal("check counts differ across parallelism")
	}
	for i, ch := range serial.Files[0].Checks {
		if par.Files[0].Checks[i] != ch {
			t.Errorf("check %d differs: serial %+v, parallel %+v", i, ch, par.Files[0].Checks[i])
		}
	}
	for key, m := range serial.Files[0].Results {
		if par.Files[0].Results[key].Digest != m.Digest {
			t.Errorf("digest for %s differs across parallelism", key)
		}
	}
}

// A violated invariant must fail with a diagnostic that names the
// offending cases and values — the per-invariant diagnostics are the
// point of the structured report.
func TestRunnerReportsViolations(t *testing.T) {
	c := testCorpus(t)
	c.Invariants = []Invariant{
		// Backwards: the Metropolis baseline cannot beat the optimizer.
		{Type: InvCostOrder, Cases: []string{"baseline", "opt"}},
		// Impossible envelope.
		{Type: InvBound, Cases: []string{"opt"}, Metric: "cost", Max: fptr(-1)},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), []*Corpus{c}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass() {
		t.Fatal("violated invariants reported as pass")
	}
	// Both invariants fail under both worker counts.
	if rep.Failures != 4 {
		t.Errorf("Failures = %d, want 4", rep.Failures)
	}
	var sawOrder, sawBound bool
	for _, ch := range rep.Files[0].Checks {
		if ch.Pass {
			t.Errorf("check %s unexpectedly passed", ch.Invariant)
			continue
		}
		switch {
		case strings.HasPrefix(ch.Invariant, InvCostOrder):
			sawOrder = true
			if !strings.Contains(ch.Detail, "cost(baseline)") || !strings.Contains(ch.Detail, "cost(opt)") {
				t.Errorf("cost_order detail %q does not name both cases' costs", ch.Detail)
			}
		case strings.HasPrefix(ch.Invariant, InvBound):
			sawBound = true
			if !strings.Contains(ch.Detail, "max -1") {
				t.Errorf("bound detail %q does not show the bound", ch.Detail)
			}
		}
	}
	if !sawOrder || !sawBound {
		t.Errorf("missing failure checks (order=%v bound=%v)", sawOrder, sawBound)
	}
}

// Config filters restrict the matrix but can never extend it past what
// the corpus declares, and filtering everything out is an error.
func TestRunnerConfigFilters(t *testing.T) {
	c := testCorpus(t)
	rep, err := Run(context.Background(), []*Corpus{c}, Config{Solvers: []string{"dense", "sparse"}, Workers: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	for key := range rep.Files[0].Results {
		if strings.HasPrefix(key, "sparse/") {
			t.Errorf("filter added solver not in the corpus matrix: %s", key)
		}
		if strings.HasPrefix(key, "dense/w2/") {
			t.Errorf("filtered worker count executed: %s", key)
		}
	}
	if _, err := Run(context.Background(), []*Corpus{c}, Config{Solvers: []string{"sparse"}}); err == nil {
		t.Fatal("empty filtered matrix did not error")
	}
}

// The sharded-restart path must reproduce the monolithic multi-start
// run bit for bit — checked here directly against executeCase rather
// than through a corpus invariant.
func TestShardedMergeMatchesMonolithic(t *testing.T) {
	c := testCorpus(t)
	var multi Case
	for _, cs := range c.Cases {
		if cs.Name == "multi" {
			multi = cs
		}
	}
	ctx := context.Background()
	mono, err := executeCase(ctx, multi, "dense", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 5 /* > restarts: clamps */} {
		sharded, err := executeCase(ctx, multi, "dense", 1, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if sharded.Digest != mono.Digest {
			t.Errorf("shards=%d: digest %s != monolithic %s", shards, sharded.Digest, mono.Digest)
		}
	}
}

// Cancelling the context must abort the run with the context's error.
func TestRunnerHonorsCancellation(t *testing.T) {
	c := testCorpus(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, []*Corpus{c}, Config{}); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}
