package conformance

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/coverage"
)

// Config filters and tunes a conformance run.
type Config struct {
	// Solvers restricts the run to these backends (nil = each corpus's
	// full matrix). Solvers not in a corpus's matrix are skipped for that
	// corpus, never added.
	Solvers []string
	// Workers restricts the worker counts likewise.
	Workers []int
	// Parallel bounds concurrently executing cases (default: serial).
	// Case execution is deterministic, so parallelism never changes the
	// report, only the wall clock.
	Parallel int
}

// Metrics is one executed case's result summary.
type Metrics struct {
	Cost       float64   `json:"cost"`
	DeltaC     float64   `json:"deltaC"`
	EBar       float64   `json:"eBar"`
	Energy     float64   `json:"energy"`
	EnergyGap  float64   `json:"energyGap"`
	Entropy    float64   `json:"entropy"`
	Iterations int       `json:"iterations"`
	Converged  bool      `json:"converged"`
	Shares     []float64 `json:"shares"`
	// Digest is the bit-level content hash of the produced plan
	// (transition matrices and metrics as IEEE-754 bit patterns).
	Digest string `json:"digest"`
}

// metric addresses a Metrics field by invariant metric name.
func (m Metrics) metric(name string) float64 {
	switch name {
	case "cost":
		return m.Cost
	case "deltaC":
		return m.DeltaC
	case "eBar":
		return m.EBar
	case "energy":
		return m.Energy
	case "energyGap":
		return m.EnergyGap
	case "entropy":
		return m.Entropy
	case "iterations":
		return float64(m.Iterations)
	}
	return math.NaN()
}

// Check is one invariant verdict under one matrix cell.
type Check struct {
	// Invariant identifies the invariant (Invariant.ID()).
	Invariant string `json:"invariant"`
	// Solver and Workers locate the matrix cell; bit-exactness checks
	// spanning worker counts report Workers = 0.
	Solver  string `json:"solver"`
	Workers int    `json:"workers,omitempty"`
	Pass    bool   `json:"pass"`
	// Detail explains a failure (empty on pass).
	Detail string `json:"detail,omitempty"`
}

// FileReport is one corpus family's outcome.
type FileReport struct {
	Family string `json:"family"`
	Cases  int    `json:"cases"`
	Checks []Check `json:"checks"`
	// Divergent lists invariant IDs whose verdicts differ between
	// solvers — a conformance failure in itself: the sparse path must
	// reach the same qualitative conclusions as the dense reference.
	Divergent []string `json:"divergent,omitempty"`
	// Results holds every executed case's metrics keyed
	// "solver/w<N>/case" (verbose diagnostics).
	Results map[string]Metrics `json:"results,omitempty"`
}

// Pass reports whether every check passed and no solver diverged.
func (f *FileReport) Pass() bool {
	if len(f.Divergent) > 0 {
		return false
	}
	for _, c := range f.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Report is a whole conformance run's outcome.
type Report struct {
	Files    []FileReport `json:"files"`
	Cases    int          `json:"cases"`
	Checks   int          `json:"checks"`
	Failures int          `json:"failures"`
}

// Pass reports whether the whole run passed.
func (r *Report) Pass() bool { return r.Failures == 0 }

// Summary renders a one-line human summary.
func (r *Report) Summary() string {
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s: %d families, %d cases, %d checks, %d failures",
		verdict, len(r.Files), r.Cases, r.Checks, r.Failures)
}

// cellKey memoizes case executions within one corpus.
type cellKey struct {
	cs      string
	solver  string
	workers int
	shards  int // 0 = monolithic
}

// runner executes one corpus.
type runner struct {
	mu      sync.Mutex
	results map[cellKey]Metrics
	errs    map[cellKey]error
	sem     chan struct{}
}

// Run executes every corpus under the (filtered) execution matrix and
// evaluates every invariant in every matrix cell. The returned report is
// deterministic: same corpora, same config, same verdicts and digests.
func Run(ctx context.Context, corpora []*Corpus, cfg Config) (*Report, error) {
	rep := &Report{}
	for _, c := range corpora {
		fr, err := runCorpus(ctx, c, cfg)
		if err != nil {
			return nil, fmt.Errorf("family %s: %w", c.Family, err)
		}
		rep.Files = append(rep.Files, *fr)
		rep.Cases += fr.Cases
		rep.Checks += len(fr.Checks)
		for _, ch := range fr.Checks {
			if !ch.Pass {
				rep.Failures++
			}
		}
		rep.Failures += len(fr.Divergent)
	}
	return rep, nil
}

// filterStr intersects matrix values with a config filter (nil keeps all).
func filterStr(matrix, filter []string) []string {
	if filter == nil {
		return matrix
	}
	var out []string
	for _, v := range matrix {
		for _, f := range filter {
			if v == f {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

func filterInt(matrix, filter []int) []int {
	if filter == nil {
		return matrix
	}
	var out []int
	for _, v := range matrix {
		for _, f := range filter {
			if v == f {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

func runCorpus(ctx context.Context, c *Corpus, cfg Config) (*FileReport, error) {
	solvers := filterStr(c.Matrix.Solvers, cfg.Solvers)
	workers := filterInt(c.Matrix.Workers, cfg.Workers)
	if len(solvers) == 0 || len(workers) == 0 {
		return nil, fmt.Errorf("execution matrix empty after filtering (solvers %v, workers %v)", cfg.Solvers, cfg.Workers)
	}
	par := cfg.Parallel
	if par < 1 {
		par = 1
	}
	r := &runner{
		results: make(map[cellKey]Metrics),
		errs:    make(map[cellKey]error),
		sem:     make(chan struct{}, par),
	}

	// Execute the full case × cell grid up front (concurrently when
	// Parallel > 1), then evaluate invariants off the memoized results.
	var wg sync.WaitGroup
	for _, cs := range c.Cases {
		for _, sv := range solvers {
			for _, w := range workers {
				wg.Add(1)
				go func(cs Case, sv string, w int) {
					defer wg.Done()
					r.sem <- struct{}{}
					defer func() { <-r.sem }()
					r.get(ctx, cs, sv, w, 0)
				}(cs, sv, w)
			}
		}
		if needsShards(c, cs.Name) {
			for _, sv := range solvers {
				for _, sh := range c.Matrix.Shards {
					wg.Add(1)
					go func(cs Case, sv string, sh int) {
						defer wg.Done()
						r.sem <- struct{}{}
						defer func() { <-r.sem }()
						r.get(ctx, cs, sv, workers[0], sh)
					}(cs, sv, sh)
				}
			}
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for k, err := range r.errs {
		if err != nil {
			return nil, fmt.Errorf("case %s (%s, %d workers): %w", k.cs, k.solver, k.workers, err)
		}
	}

	fr := &FileReport{Family: c.Family, Cases: len(c.Cases), Results: make(map[string]Metrics)}
	for k, m := range r.results {
		key := fmt.Sprintf("%s/w%d/%s", k.solver, k.workers, k.cs)
		if k.shards > 0 {
			key = fmt.Sprintf("%s/w%d/shards%d/%s", k.solver, k.workers, k.shards, k.cs)
		}
		fr.Results[key] = m
	}

	// Per-cell invariants, then cross-cell bit-exactness groups.
	verdicts := make(map[string]map[string]bool) // solver → invariant ID → pass
	for _, sv := range solvers {
		verdicts[sv] = make(map[string]bool)
		for _, iv := range c.Invariants {
			if iv.Type == InvBitExact {
				continue
			}
			for _, w := range workers {
				ch := r.check(c, iv, sv, w)
				fr.Checks = append(fr.Checks, ch)
				pass, seen := verdicts[sv][iv.ID()]
				if !seen {
					pass = true
				}
				verdicts[sv][iv.ID()] = pass && ch.Pass
			}
		}
		for _, iv := range c.Invariants {
			if iv.Type != InvBitExact {
				continue
			}
			ch := r.checkBitExact(c, iv, sv, workers)
			fr.Checks = append(fr.Checks, ch)
			verdicts[sv][iv.ID()] = ch.Pass
		}
	}

	// Every solver must reach the same verdict on every invariant.
	if len(solvers) > 1 {
		ref := solvers[0]
		for _, iv := range c.Invariants {
			id := iv.ID()
			for _, sv := range solvers[1:] {
				if verdicts[sv][id] != verdicts[ref][id] {
					fr.Divergent = append(fr.Divergent, fmt.Sprintf(
						"%s: %s=%v, %s=%v", id, ref, verdicts[ref][id], sv, verdicts[sv][id]))
				}
			}
		}
		sort.Strings(fr.Divergent)
	}
	sortChecks(fr.Checks)
	return fr, nil
}

// needsShards reports whether any bitexact-over-shards invariant lists
// the case.
func needsShards(c *Corpus, name string) bool {
	for _, iv := range c.Invariants {
		if iv.Type != InvBitExact || iv.Over != OverShards {
			continue
		}
		for _, n := range iv.Cases {
			if n == name {
				return true
			}
		}
	}
	return false
}

// sortChecks orders the report deterministically (goroutine scheduling
// must not leak into the output).
func sortChecks(cs []Check) {
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].Solver != cs[b].Solver {
			return cs[a].Solver < cs[b].Solver
		}
		if cs[a].Workers != cs[b].Workers {
			return cs[a].Workers < cs[b].Workers
		}
		return cs[a].Invariant < cs[b].Invariant
	})
}

// get memoizes one case execution.
func (r *runner) get(ctx context.Context, cs Case, solver string, workers, shards int) (Metrics, error) {
	k := cellKey{cs: cs.Name, solver: solver, workers: workers, shards: shards}
	r.mu.Lock()
	if m, ok := r.results[k]; ok {
		r.mu.Unlock()
		return m, nil
	}
	if err, ok := r.errs[k]; ok {
		r.mu.Unlock()
		return Metrics{}, err
	}
	r.mu.Unlock()

	m, err := executeCase(ctx, cs, solver, workers, shards)

	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.errs[k] = err
		return Metrics{}, err
	}
	r.results[k] = m
	return m, nil
}

// lookup returns a previously executed result (the grid pre-run
// guarantees presence for declared invariants).
func (r *runner) lookup(name, solver string, workers, shards int) (Metrics, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.results[cellKey{cs: name, solver: solver, workers: workers, shards: shards}]
	return m, ok
}

// executeCase runs one case under one matrix cell. shards > 0 runs the
// sharded-restart execution path: each restart optimized independently
// with its split seed and the winners merged by lexicographic
// (cost, restart) minimum — the in-process equivalent of the distributed
// shard/lease protocol's deterministic merge.
func executeCase(ctx context.Context, cs Case, solver string, workers, shards int) (Metrics, error) {
	opts := coverage.Options{
		MaxIters: cs.Run.MaxIters,
		Seed:     cs.Run.Seed,
		Workers:  workers,
		Solver:   solver,
	}
	restarts := cs.Run.restarts()
	switch cs.mode() {
	case ModeMetropolis:
		p, err := coverage.MetropolisBaseline(cs.Scenario)
		if err != nil {
			return Metrics{}, err
		}
		plan, err := coverage.EvaluateMatrix(cs.Scenario, cs.Objectives, p)
		if err != nil {
			return Metrics{}, err
		}
		return metricsOf(plan, cs.Objectives), nil

	case ModeReplicate:
		single, err := coverage.OptimizeBestContext(ctx, cs.Scenario, cs.Objectives, opts, restarts)
		if err != nil {
			return Metrics{}, err
		}
		stack := make([][][]float64, cs.Fleet.Sensors)
		for s := range stack {
			stack[s] = single.TransitionMatrix
		}
		plan, err := coverage.EvaluateFleetMatrices(cs.Scenario, cs.Objectives, stack, cs.Fleet.Responsibility)
		if err != nil {
			return Metrics{}, err
		}
		return metricsOf(plan, cs.Objectives), nil
	}

	if shards > 0 {
		plan, err := runSharded(ctx, cs, opts, restarts, shards)
		if err != nil {
			return Metrics{}, err
		}
		return metricsOf(plan, cs.Objectives), nil
	}
	var plan *coverage.Plan
	var err error
	if cs.Fleet != nil {
		plan, err = coverage.OptimizeFleetBestContext(ctx, cs.Scenario, cs.Objectives, opts, cs.Fleet.Sensors, cs.Fleet.Responsibility, restarts)
	} else {
		plan, err = coverage.OptimizeBestContext(ctx, cs.Scenario, cs.Objectives, opts, restarts)
	}
	if err != nil {
		return Metrics{}, err
	}
	return metricsOf(plan, cs.Objectives), nil
}

// runSharded reproduces OptimizeBest restart-by-restart: the restarts
// are split into `shards` contiguous ranges, every restart runs as an
// independent single optimization seeded with coverage.SplitSeeds, and
// the per-shard winners merge by lexicographic (cost, restart) minimum.
// The result must be bit-identical to the monolithic multi-start run —
// the contract the distributed sharding layer (DESIGN.md §13) rests on.
func runSharded(ctx context.Context, cs Case, opts coverage.Options, restarts, shards int) (*coverage.Plan, error) {
	seeds := coverage.SplitSeeds(opts.Seed, restarts)
	type winner struct {
		plan    *coverage.Plan
		restart int
	}
	var best *winner
	merge := func(w winner) {
		if best == nil ||
			w.plan.Cost < best.plan.Cost ||
			(w.plan.Cost == best.plan.Cost && w.restart < best.restart) {
			best = &w
		}
	}
	if shards > restarts {
		shards = restarts
	}
	for sh := 0; sh < shards; sh++ {
		// Contiguous ranges, remainder spread over the leading shards —
		// the same split rule the job shard table uses.
		lo := sh * restarts / shards
		hi := (sh + 1) * restarts / shards
		var shardBest *winner
		for r := lo; r < hi; r++ {
			runOpts := opts
			runOpts.Seed = seeds[r]
			var plan *coverage.Plan
			var err error
			if cs.Fleet != nil {
				plan, err = coverage.OptimizeFleetContext(ctx, cs.Scenario, cs.Objectives, runOpts, cs.Fleet.Sensors, cs.Fleet.Responsibility)
			} else {
				plan, err = coverage.OptimizeContext(ctx, cs.Scenario, cs.Objectives, runOpts)
			}
			if err != nil {
				return nil, err
			}
			w := winner{plan: plan, restart: r}
			if shardBest == nil ||
				w.plan.Cost < shardBest.plan.Cost ||
				(w.plan.Cost == shardBest.plan.Cost && w.restart < shardBest.restart) {
				shardBest = &w
			}
		}
		if shardBest != nil {
			merge(*shardBest)
		}
	}
	if best == nil {
		return nil, fmt.Errorf("no restarts executed")
	}
	return best.plan, nil
}

// metricsOf summarizes a plan, including the bit-level digest.
func metricsOf(plan *coverage.Plan, obj coverage.Objectives) Metrics {
	m := Metrics{
		Cost:       plan.Cost,
		DeltaC:     plan.DeltaC,
		EBar:       plan.EBar,
		Energy:     plan.Energy,
		Entropy:    plan.Entropy,
		Iterations: plan.Iterations,
		Converged:  plan.Converged,
		Shares:     append([]float64(nil), plan.CoverageShare...),
	}
	if obj.EnergyWeight > 0 {
		m.EnergyGap = math.Abs(plan.Energy - obj.EnergyTarget)
	}
	m.Digest = planDigest(plan)
	return m
}

// planDigest hashes the plan's solver-produced content at full bit
// precision: every transition matrix (the fleet stack when present) and
// the metric scalars, as IEEE-754 bit patterns. Two runs are
// "bit-exact" exactly when their digests match.
func planDigest(plan *coverage.Plan) string {
	h := sha256.New()
	writeMatrix := func(rows [][]float64) {
		for _, row := range rows {
			hashBits(h, row...)
		}
	}
	if plan.Fleet != nil {
		hashBits(h, float64(plan.Fleet.Sensors))
		for _, p := range plan.Fleet.TransitionMatrices {
			writeMatrix(p)
		}
	} else {
		writeMatrix(plan.TransitionMatrix)
	}
	hashBits(h, plan.Cost, plan.DeltaC, plan.EBar, plan.Energy, plan.Entropy, float64(plan.Iterations))
	return hex.EncodeToString(h.Sum(nil))
}

func hashBits(h hash.Hash, vs ...float64) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
}

// slack converts a relative tolerance into the additive slack allowed at
// a reference value.
func slack(tol, ref float64) float64 {
	return tol * math.Max(1, math.Abs(ref))
}

// check evaluates one non-bitexact invariant in one matrix cell.
func (r *runner) check(c *Corpus, iv Invariant, solver string, workers int) Check {
	ch := Check{Invariant: iv.ID(), Solver: solver, Workers: workers, Pass: true}
	get := func(name string) Metrics {
		m, ok := r.lookup(name, solver, workers, 0)
		if !ok {
			ch.Pass = false
			ch.Detail = fmt.Sprintf("case %s not executed", name)
		}
		return m
	}
	fail := func(format string, args ...any) {
		ch.Pass = false
		if ch.Detail != "" {
			ch.Detail += "; "
		}
		ch.Detail += fmt.Sprintf(format, args...)
	}

	switch iv.Type {
	case InvCostOrder:
		for i := 0; i+1 < len(iv.Cases) && ch.Pass; i++ {
			a, b := get(iv.Cases[i]), get(iv.Cases[i+1])
			if !ch.Pass {
				break
			}
			if a.Cost > b.Cost+slack(iv.Tolerance, b.Cost) {
				fail("cost(%s)=%.6g > cost(%s)=%.6g (+tol %.3g)",
					iv.Cases[i], a.Cost, iv.Cases[i+1], b.Cost, iv.Tolerance)
			}
		}

	case InvMonotone:
		r.checkTrend(&ch, iv.Cases, solver, workers, iv.Metric, iv.Direction, iv.Tolerance, fail)

	case InvCrossover:
		// Cases are listed by increasing β: exposure must not worsen,
		// coverage fidelity must not improve — the tradeoff's shape.
		r.checkTrend(&ch, iv.Cases, solver, workers, "eBar", DirNonincreasing, iv.Tolerance, fail)
		r.checkTrend(&ch, iv.Cases, solver, workers, "deltaC", DirNondecreasing, iv.Tolerance, fail)

	case InvBound:
		for _, name := range iv.Cases {
			m := get(name)
			if !ch.Pass {
				break
			}
			v := m.metric(iv.Metric)
			if iv.Max != nil && v > *iv.Max {
				fail("%s(%s)=%.6g > max %.6g", iv.Metric, name, v, *iv.Max)
			}
			if iv.Min != nil && v < *iv.Min {
				fail("%s(%s)=%.6g < min %.6g", iv.Metric, name, v, *iv.Min)
			}
		}

	case InvShareOrder:
		for _, name := range iv.Cases {
			m := get(name)
			if !ch.Pass {
				break
			}
			target := caseTarget(c, name)
			for i := range target {
				for j := range target {
					if target[i] < target[j]+iv.MinGap {
						continue
					}
					if m.Shares[i] < m.Shares[j]-slack(iv.Tolerance, m.Shares[j]) {
						fail("%s: share[%d]=%.4g < share[%d]=%.4g despite target %.4g > %.4g",
							name, i, m.Shares[i], j, m.Shares[j], target[i], target[j])
					}
				}
			}
		}
	}
	return ch
}

// checkTrend verifies one monotone trend over the listed cases.
func (r *runner) checkTrend(ch *Check, cases []string, solver string, workers int, metric, dir string, tol float64, fail func(string, ...any)) {
	for i := 0; i+1 < len(cases) && ch.Pass; i++ {
		a, ok1 := r.lookup(cases[i], solver, workers, 0)
		b, ok2 := r.lookup(cases[i+1], solver, workers, 0)
		if !ok1 || !ok2 {
			fail("case %s or %s not executed", cases[i], cases[i+1])
			return
		}
		va, vb := a.metric(metric), b.metric(metric)
		s := slack(tol, va)
		switch dir {
		case DirNonincreasing:
			if vb > va+s {
				fail("%s rose %s→%s: %.6g → %.6g (tol %.3g)", metric, cases[i], cases[i+1], va, vb, tol)
			}
		case DirNondecreasing:
			if vb < va-s {
				fail("%s fell %s→%s: %.6g → %.6g (tol %.3g)", metric, cases[i], cases[i+1], va, vb, tol)
			}
		}
	}
}

// checkBitExact evaluates one bit-exactness group for one solver.
func (r *runner) checkBitExact(c *Corpus, iv Invariant, solver string, workers []int) Check {
	ch := Check{Invariant: iv.ID(), Solver: solver, Pass: true}
	var details []string
	switch iv.Over {
	case OverWorkers:
		for _, name := range iv.Cases {
			ref, ok := r.lookup(name, solver, workers[0], 0)
			if !ok {
				ch.Pass = false
				details = append(details, fmt.Sprintf("%s: not executed", name))
				continue
			}
			for _, w := range workers[1:] {
				m, ok := r.lookup(name, solver, w, 0)
				if !ok || m.Digest != ref.Digest {
					ch.Pass = false
					details = append(details, fmt.Sprintf(
						"%s: %d workers diverged from %d workers", name, w, workers[0]))
				}
			}
		}
	case OverShards:
		for _, name := range iv.Cases {
			ref, ok := r.lookup(name, solver, workers[0], 0)
			if !ok {
				ch.Pass = false
				details = append(details, fmt.Sprintf("%s: not executed", name))
				continue
			}
			for _, sh := range c.Matrix.Shards {
				m, ok := r.lookup(name, solver, workers[0], sh)
				if !ok || m.Digest != ref.Digest {
					ch.Pass = false
					details = append(details, fmt.Sprintf(
						"%s: %d-shard merge diverged from monolithic run", name, sh))
				}
			}
		}
	}
	ch.Detail = strings.Join(details, "; ")
	return ch
}

// caseTarget returns a case's target allocation.
func caseTarget(c *Corpus, name string) []float64 {
	for _, cs := range c.Cases {
		if cs.Name == name {
			return cs.Scenario.Target
		}
	}
	return nil
}
