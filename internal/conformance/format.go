// Package conformance defines the machine-readable scenario conformance
// corpus ("conformance/v1") and the table-driven runner that every
// optimizer execution path must pass.
//
// A corpus file is a versioned JSON document holding a family of related
// scenario cases (single-sensor or fleet), the objective weights and run
// budget for each, the execution matrix to exercise (solver backends,
// worker counts, restart shard splits), and the family's expected
// invariants: cost orderings between named cases, monotone trends along a
// swept parameter, coverage/exposure crossover shapes, metric bounds, and
// bit-exactness groups that must agree across execution paths. The corpus
// is the reproduction's behavioral contract in data form — separate from
// the unit tests, diffable, and extensible without recompiling — so any
// future optimizer variant (minimax, energy-budget, …) can be gated on
// the same suite before it lands.
//
// The checked-in corpus lives in coverage/testdata/corpus and is emitted
// by cmd/confgen (deterministic, seeded PCG; regeneration is
// reproducible bit-for-bit). cmd/conformance runs it standalone; the CI
// `conformance` job gates on it across the solver × workers matrix.
package conformance

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/coverage"
)

// Version is the corpus file format version this package reads and
// writes. Any change to the format's semantics must bump it; the loader
// rejects files with a different or missing version string.
const Version = "conformance/v1"

// ErrCorpus indicates a malformed, unversioned, or internally
// inconsistent corpus file.
var ErrCorpus = errors.New("conformance: invalid corpus")

// Case execution modes.
const (
	// ModeOptimize runs the optimizer (OptimizeBest, or OptimizeFleetBest
	// when the case carries a Fleet block). The default for an empty mode.
	ModeOptimize = "optimize"
	// ModeMetropolis evaluates the Metropolis–Hastings coverage-only
	// baseline instead of optimizing — the comparison anchor for
	// "optimization beats the baseline" orderings.
	ModeMetropolis = "metropolis"
	// ModeReplicate optimizes a single sensor and evaluates K copies of
	// that schedule under the fleet objective — the comparison anchor for
	// "joint fleet optimization beats replication" orderings. Requires a
	// Fleet block.
	ModeReplicate = "replicate"
)

// Invariant types (the taxonomy; see DESIGN.md §15).
const (
	// InvCostOrder: the listed cases' costs are nondecreasing in list
	// order (best first), up to Tolerance.
	InvCostOrder = "cost_order"
	// InvMonotone: Metric over the listed cases follows Direction, up to
	// Tolerance.
	InvMonotone = "monotone"
	// InvCrossover: the listed cases are ordered by increasing exposure
	// weight β; ĒBar must be nonincreasing and ΔC nondecreasing along the
	// list — the paper's coverage/exposure tradeoff shape.
	InvCrossover = "crossover"
	// InvBound: every listed case's Metric lies within [Min, Max].
	InvBound = "bound"
	// InvShareOrder: within each listed case, the achieved coverage
	// shares respect the target ordering for every PoI pair whose targets
	// differ by at least MinGap.
	InvShareOrder = "share_order"
	// InvBitExact: each listed case's plan is byte-identical across the
	// Over dimension of the execution matrix ("workers": every worker
	// count; "shards": sharded per-restart execution with deterministic
	// merge versus the monolithic multi-start run).
	InvBitExact = "bitexact"
)

// Monotone directions.
const (
	DirNonincreasing = "nonincreasing"
	DirNondecreasing = "nondecreasing"
)

// Bit-exactness dimensions.
const (
	OverWorkers = "workers"
	OverShards  = "shards"
)

// Metric names addressable by invariants.
var metricNames = map[string]bool{
	"cost":       true,
	"deltaC":     true,
	"eBar":       true,
	"energy":     true,
	"energyGap":  true, // |Energy − EnergyTarget|, meaningful when EnergyWeight > 0
	"entropy":    true,
	"iterations": true,
}

// Corpus is one conformance corpus file: a named family of cases with a
// shared execution matrix and the invariants that bind them.
type Corpus struct {
	// Version must equal Version ("conformance/v1").
	Version string `json:"version"`
	// Family names the corpus family (unique across a corpus directory).
	Family string `json:"family"`
	// Description says what the family exercises and why.
	Description string `json:"description,omitempty"`
	// Generator records provenance when the file was emitted by confgen.
	Generator *Generator `json:"generator,omitempty"`
	// Matrix is the execution matrix every case runs under.
	Matrix Matrix `json:"matrix"`
	// Cases are the scenarios to execute.
	Cases []Case `json:"cases"`
	// Invariants are the family's expected relationships.
	Invariants []Invariant `json:"invariants"`
}

// Generator records how a corpus file was produced, so regeneration can
// be checked bit-for-bit.
type Generator struct {
	// Tool is the emitting command ("confgen").
	Tool string `json:"tool"`
	// Seed is the PCG seed the family was generated from.
	Seed uint64 `json:"seed"`
}

// Matrix is the execution matrix: every case runs under every listed
// solver and worker count; Shards lists the restart shard splits the
// bitexact-over-shards invariants compare against the monolithic run.
type Matrix struct {
	// Solvers lists linear-algebra backends ("dense", "sparse").
	Solvers []string `json:"solvers"`
	// Workers lists per-iteration worker counts (≥ 1 each).
	Workers []int `json:"workers"`
	// Shards lists restart shard splits (≥ 2 each) for InvBitExact over
	// OverShards; empty when no sharded comparison is requested.
	Shards []int `json:"shards,omitempty"`
}

// Budget is a case's execution budget.
type Budget struct {
	// Seed makes the run reproducible.
	Seed uint64 `json:"seed"`
	// MaxIters bounds each restart's iteration count.
	MaxIters int `json:"maxIters"`
	// Restarts is the multi-start count (default 1).
	Restarts int `json:"restarts,omitempty"`
}

// FleetSpec marks a case as a K-sensor fleet problem.
type FleetSpec struct {
	// Sensors is the fleet size K (≥ 1).
	Sensors int `json:"sensors"`
	// Responsibility is the optional K×M responsibility assignment
	// (uniform 1/K when omitted).
	Responsibility [][]float64 `json:"responsibility,omitempty"`
}

// Case is one scenario/objectives pair to execute.
type Case struct {
	// Name identifies the case within the family (unique, nonempty).
	Name string `json:"name"`
	// Mode selects the execution mode; empty means ModeOptimize.
	Mode string `json:"mode,omitempty"`
	// Scenario is the coverage problem.
	Scenario coverage.Scenario `json:"scenario"`
	// Objectives are the optimization weights.
	Objectives coverage.Objectives `json:"objectives"`
	// Run is the execution budget.
	Run Budget `json:"run"`
	// Fleet, when non-nil, makes this a K-sensor case.
	Fleet *FleetSpec `json:"fleet,omitempty"`
	// Param is the swept parameter value behind monotone/crossover
	// families (informational; invariants use list order).
	Param float64 `json:"param,omitempty"`
}

// Invariant is one expected relationship over the family's results.
type Invariant struct {
	// Type is one of the Inv* constants.
	Type string `json:"type"`
	// Cases names the cases the invariant binds, in the order the check
	// reads them.
	Cases []string `json:"cases"`
	// Metric addresses a result metric (InvMonotone, InvBound).
	Metric string `json:"metric,omitempty"`
	// Direction is the required trend (InvMonotone).
	Direction string `json:"direction,omitempty"`
	// Tolerance is the relative slack for ordering/trend checks: a step
	// may violate the trend by at most Tolerance·max(1, |previous|).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Min and Max bound the metric (InvBound); nil means unbounded.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// MinGap is the target-gap threshold below which PoI pairs are
	// exempt from the share-order check (InvShareOrder).
	MinGap float64 `json:"minGap,omitempty"`
	// Over is the matrix dimension a bit-exactness group spans
	// (InvBitExact): OverWorkers or OverShards.
	Over string `json:"over,omitempty"`
}

// ID renders a stable, human-readable identifier for the invariant,
// used in reports and for cross-solver verdict matching.
func (iv Invariant) ID() string {
	var b strings.Builder
	b.WriteString(iv.Type)
	switch iv.Type {
	case InvMonotone:
		fmt.Fprintf(&b, "(%s %s", iv.Metric, iv.Direction)
	case InvBound:
		fmt.Fprintf(&b, "(%s", iv.Metric)
		if iv.Min != nil {
			fmt.Fprintf(&b, " min=%g", *iv.Min)
		}
		if iv.Max != nil {
			fmt.Fprintf(&b, " max=%g", *iv.Max)
		}
	case InvBitExact:
		fmt.Fprintf(&b, "(over=%s", iv.Over)
	default:
		b.WriteString("(")
	}
	fmt.Fprintf(&b, " [%s])", strings.Join(iv.Cases, " "))
	return b.String()
}

// mode returns the case's effective execution mode.
func (c Case) mode() string {
	if c.Mode == "" {
		return ModeOptimize
	}
	return c.Mode
}

// restarts returns the case's effective restart count.
func (r Budget) restarts() int {
	if r.Restarts <= 0 {
		return 1
	}
	return r.Restarts
}

// Validate checks the corpus for structural and semantic soundness: the
// version string, the execution matrix, case uniqueness and buildability
// (every scenario/objectives pair must pass coverage.Validate, fleet
// cases coverage.ValidateFleet), and that every invariant is well formed
// and references only existing cases.
func (c *Corpus) Validate() error {
	if c.Version != Version {
		return fmt.Errorf("%w: version %q (want %q)", ErrCorpus, c.Version, Version)
	}
	if c.Family == "" {
		return fmt.Errorf("%w: empty family", ErrCorpus)
	}
	if err := c.Matrix.validate(); err != nil {
		return fmt.Errorf("%w: family %s: %v", ErrCorpus, c.Family, err)
	}
	if len(c.Cases) == 0 {
		return fmt.Errorf("%w: family %s has no cases", ErrCorpus, c.Family)
	}
	names := make(map[string]bool, len(c.Cases))
	for i, cs := range c.Cases {
		if cs.Name == "" {
			return fmt.Errorf("%w: family %s: case %d has no name", ErrCorpus, c.Family, i)
		}
		if names[cs.Name] {
			return fmt.Errorf("%w: family %s: duplicate case %q", ErrCorpus, c.Family, cs.Name)
		}
		names[cs.Name] = true
		if err := cs.validate(); err != nil {
			return fmt.Errorf("%w: family %s: case %q: %v", ErrCorpus, c.Family, cs.Name, err)
		}
	}
	for i, iv := range c.Invariants {
		if err := iv.validate(names, c.Matrix); err != nil {
			return fmt.Errorf("%w: family %s: invariant %d (%s): %v", ErrCorpus, c.Family, i, iv.Type, err)
		}
	}
	return nil
}

func (m Matrix) validate() error {
	if len(m.Solvers) == 0 {
		return errors.New("matrix lists no solvers")
	}
	seenSolver := map[string]bool{}
	for _, s := range m.Solvers {
		if s != "dense" && s != "sparse" {
			return fmt.Errorf("unknown solver %q (want \"dense\" or \"sparse\")", s)
		}
		if seenSolver[s] {
			return fmt.Errorf("duplicate solver %q", s)
		}
		seenSolver[s] = true
	}
	if len(m.Workers) == 0 {
		return errors.New("matrix lists no worker counts")
	}
	seenW := map[int]bool{}
	for _, w := range m.Workers {
		if w < 1 {
			return fmt.Errorf("worker count %d < 1", w)
		}
		if seenW[w] {
			return fmt.Errorf("duplicate worker count %d", w)
		}
		seenW[w] = true
	}
	for _, s := range m.Shards {
		if s < 2 {
			return fmt.Errorf("shard split %d < 2", s)
		}
	}
	return nil
}

func (cs Case) validate() error {
	mode := cs.mode()
	switch mode {
	case ModeOptimize, ModeMetropolis, ModeReplicate:
	default:
		return fmt.Errorf("unknown mode %q", cs.Mode)
	}
	if len(cs.Scenario.PoIs) < 2 {
		return fmt.Errorf("%d PoIs (want >= 2)", len(cs.Scenario.PoIs))
	}
	if len(cs.Scenario.Target) != len(cs.Scenario.PoIs) {
		return fmt.Errorf("%d targets for %d PoIs", len(cs.Scenario.Target), len(cs.Scenario.PoIs))
	}
	if mode != ModeMetropolis && cs.Run.MaxIters < 1 {
		return fmt.Errorf("maxIters %d < 1", cs.Run.MaxIters)
	}
	if cs.Run.Restarts < 0 {
		return fmt.Errorf("restarts %d < 0", cs.Run.Restarts)
	}
	if mode == ModeReplicate && cs.Fleet == nil {
		return errors.New("replicate mode requires a fleet block")
	}
	if cs.Fleet != nil {
		if cs.Fleet.Sensors < 1 {
			return fmt.Errorf("fleet of %d sensors", cs.Fleet.Sensors)
		}
		return coverage.ValidateFleet(cs.Scenario, cs.Objectives, cs.Fleet.Sensors, cs.Fleet.Responsibility)
	}
	return coverage.Validate(cs.Scenario, cs.Objectives)
}

func (iv Invariant) validate(names map[string]bool, m Matrix) error {
	if len(iv.Cases) == 0 {
		return errors.New("no cases listed")
	}
	for _, n := range iv.Cases {
		if !names[n] {
			return fmt.Errorf("unknown case %q", n)
		}
	}
	if iv.Tolerance < 0 {
		return fmt.Errorf("negative tolerance %g", iv.Tolerance)
	}
	switch iv.Type {
	case InvCostOrder:
		if len(iv.Cases) < 2 {
			return errors.New("cost_order needs >= 2 cases")
		}
	case InvMonotone:
		if len(iv.Cases) < 2 {
			return errors.New("monotone needs >= 2 cases")
		}
		if !metricNames[iv.Metric] {
			return fmt.Errorf("unknown metric %q", iv.Metric)
		}
		if iv.Direction != DirNonincreasing && iv.Direction != DirNondecreasing {
			return fmt.Errorf("unknown direction %q", iv.Direction)
		}
	case InvCrossover:
		if len(iv.Cases) < 2 {
			return errors.New("crossover needs >= 2 cases")
		}
	case InvBound:
		if !metricNames[iv.Metric] {
			return fmt.Errorf("unknown metric %q", iv.Metric)
		}
		if iv.Min == nil && iv.Max == nil {
			return errors.New("bound has neither min nor max")
		}
		if iv.Min != nil && iv.Max != nil && *iv.Min > *iv.Max {
			return fmt.Errorf("min %g > max %g", *iv.Min, *iv.Max)
		}
	case InvShareOrder:
		if iv.MinGap <= 0 {
			return fmt.Errorf("share_order needs minGap > 0, got %g", iv.MinGap)
		}
	case InvBitExact:
		switch iv.Over {
		case OverWorkers:
			if len(m.Workers) < 2 {
				return errors.New("bitexact over workers needs >= 2 worker counts in the matrix")
			}
		case OverShards:
			if len(m.Shards) == 0 {
				return errors.New("bitexact over shards needs shard splits in the matrix")
			}
		default:
			return fmt.Errorf("unknown bitexact dimension %q", iv.Over)
		}
	default:
		return fmt.Errorf("unknown invariant type %q", iv.Type)
	}
	return nil
}

// ReadCorpus strictly decodes one corpus document: unknown fields are
// rejected (a typo'd invariant field must not silently validate nothing)
// and the document must pass Validate.
func ReadCorpus(r io.Reader) (*Corpus, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Corpus
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorpus, err)
	}
	// Trailing garbage after the document is malformed too.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after corpus document", ErrCorpus)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadFile reads and validates one corpus file.
func LoadFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := ReadCorpus(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return c, nil
}

// LoadDir loads every *.json corpus file in dir, sorted by filename, and
// requires family names to be unique across the directory.
func LoadDir(dir string) ([]*Corpus, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("%w: no corpus files in %s", ErrCorpus, dir)
	}
	sort.Strings(paths)
	out := make([]*Corpus, 0, len(paths))
	families := make(map[string]string)
	for _, p := range paths {
		c, err := LoadFile(p)
		if err != nil {
			return nil, err
		}
		if prev, dup := families[c.Family]; dup {
			return nil, fmt.Errorf("%w: family %q in both %s and %s",
				ErrCorpus, c.Family, prev, filepath.Base(p))
		}
		families[c.Family] = filepath.Base(p)
		out = append(out, c)
	}
	return out, nil
}

// Encode renders the corpus in the canonical on-disk form (two-space
// indented JSON with a trailing newline) — the byte layout confgen
// emits and its -check mode verifies.
func (c *Corpus) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Problem is one distinct optimization problem a corpus poses — the
// warm-start population the plan library can be seeded from.
type Problem struct {
	Scenario   coverage.Scenario
	Objectives coverage.Objectives
	Fleet      *FleetSpec
}

// Problems returns the corpus cases' optimization problems with
// fingerprint-level duplicates removed (metropolis twins and sweep
// repeats collapse onto their optimize siblings).
func Problems(corpora []*Corpus) []Problem {
	seen := make(map[coverage.Fingerprint]bool)
	var out []Problem
	for _, c := range corpora {
		for _, cs := range c.Cases {
			var fp coverage.Fingerprint
			var err error
			if cs.Fleet != nil {
				fp, err = coverage.FleetFingerprint(cs.Scenario, cs.Objectives, cs.Fleet.Sensors, cs.Fleet.Responsibility)
			} else {
				fp, err = coverage.ScenarioFingerprint(cs.Scenario, cs.Objectives)
			}
			if err != nil || seen[fp] {
				continue
			}
			seen[fp] = true
			out = append(out, Problem{Scenario: cs.Scenario, Objectives: cs.Objectives, Fleet: cs.Fleet})
		}
	}
	return out
}
