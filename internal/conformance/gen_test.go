package conformance

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// Generate must be a pure function of its fixed seeds: two invocations
// have to produce byte-identical encodings, or confgen's -check mode
// (and the CI drift gate) would flap.
func TestGenerateDeterministic(t *testing.T) {
	first, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	second, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("family counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Name != second[i].Name {
			t.Fatalf("family order differs at %d: %s vs %s", i, first[i].Name, second[i].Name)
		}
		b1, err := first[i].Corpus.Encode()
		if err != nil {
			t.Fatal(err)
		}
		b2, err := second[i].Corpus.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: regeneration is not bit-for-bit stable", first[i].Name)
		}
	}
}

// The checked-in corpus must match a fresh regeneration byte for byte —
// the in-test mirror of `go run ./cmd/confgen -check`, so hand-edited
// drift fails `go test ./...` too, not just CI.
func TestCheckedInCorpusMatchesGenerator(t *testing.T) {
	corpora, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("..", "..", "coverage", "testdata", "corpus")
	seen := make(map[string]bool)
	for _, nc := range corpora {
		want, err := nc.Corpus.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dir, nc.Name))
		if err != nil {
			t.Errorf("%s: %v (regenerate with `go run ./cmd/confgen -out coverage/testdata/corpus`)", nc.Name, err)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: checked-in file drifted from generator output (regenerate with `go run ./cmd/confgen -out coverage/testdata/corpus`)", nc.Name)
		}
		seen[nc.Name] = true
	}
	// No stray files either: everything in the corpus directory must be
	// generator-owned, or -check would pass while LoadDir picks up an
	// unvetted family.
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range entries {
		if !seen[filepath.Base(p)] {
			t.Errorf("stray corpus file %s not produced by the generator", filepath.Base(p))
		}
	}
}

// Every generated family must validate and satisfy the issue's floor:
// the four paper topologies plus at least four generated families, 25+
// cases in total.
func TestGeneratedCorpusShape(t *testing.T) {
	corpora, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(corpora) < 5 {
		t.Fatalf("%d families, want >= 5 (paper + 4 generated)", len(corpora))
	}
	total := 0
	for _, nc := range corpora {
		if err := nc.Corpus.Validate(); err != nil {
			t.Errorf("%s: %v", nc.Name, err)
		}
		if nc.Corpus.Generator == nil || nc.Corpus.Generator.Tool != "confgen" {
			t.Errorf("%s: missing generator provenance", nc.Name)
		}
		total += len(nc.Corpus.Cases)
	}
	if total < 25 {
		t.Errorf("%d cases across the corpus, want >= 25", total)
	}
}

// A cheap end-to-end smoke over one checked-in family: grid-sweep under
// dense/1-worker only. The full matrix belongs to `make conformance`;
// this keeps `go test ./...` honest without its wall clock.
func TestCheckedInGridSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus smoke skipped in -short")
	}
	c, err := LoadFile(filepath.Join("..", "..", "coverage", "testdata", "corpus", "grid-sweep.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), []*Corpus{c}, Config{
		Solvers:  []string{"dense"},
		Workers:  []int{1},
		Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A single-cell matrix cannot evaluate bitexact-over-workers groups
	// meaningfully, but every per-cell invariant must hold.
	for _, ch := range rep.Files[0].Checks {
		if !ch.Pass {
			t.Errorf("%s (%s/w%d): %s", ch.Invariant, ch.Solver, ch.Workers, ch.Detail)
		}
	}
}
