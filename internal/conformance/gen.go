package conformance

import (
	"fmt"
	"math"

	"repro/coverage"
	"repro/internal/rng"
)

// Corpus generation (cmd/confgen). Every family is emitted from a fixed
// PCG seed, so regeneration is reproducible bit-for-bit: same tool, same
// bytes. The invariant bounds below are fixed literals chosen from
// measured runs with generous slack — generation never runs the
// optimizer, so a legitimate optimizer change can retune a bound without
// perturbing the generated geometry.

// genSeedBase anchors the per-family generator seeds.
const genSeedBase uint64 = 0xC0FFEE0000000000

// NamedCorpus pairs a corpus with its on-disk filename.
type NamedCorpus struct {
	Name   string
	Corpus *Corpus
}

// Generate emits the full seeded corpus: the four paper topologies plus
// the generated families (line/ring/grid sweeps, random geometric
// graphs, stochastic-arrival incident mixes, energy-budget variants, the
// β crossover sweep, and the fleet family).
func Generate() ([]NamedCorpus, error) {
	type gen func() (*Corpus, error)
	gens := []struct {
		name string
		gen  gen
	}{
		{"paper-topologies.json", genPaper},
		{"line-sweep.json", genLineSweep},
		{"ring-sweep.json", genRingSweep},
		{"grid-sweep.json", genGridSweep},
		{"random-geometric.json", genRandomGeometric},
		{"incident-arrivals.json", genIncidentArrivals},
		{"energy-budget.json", genEnergyBudget},
		{"beta-crossover.json", genBetaCrossover},
		{"fleet.json", genFleet},
	}
	out := make([]NamedCorpus, 0, len(gens))
	for _, g := range gens {
		c, err := g.gen()
		if err != nil {
			return nil, fmt.Errorf("conformance: generate %s: %v", g.name, err)
		}
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("conformance: generated %s is invalid: %v", g.name, err)
		}
		out = append(out, NamedCorpus{Name: g.name, Corpus: c})
	}
	return out, nil
}

func fptr(v float64) *float64 { return &v }

// uniformTarget returns the uniform allocation over n PoIs.
func uniformTarget(n int) []float64 {
	t := make([]float64, n)
	for i := range t {
		t[i] = 1 / float64(n)
	}
	// Absorb the rounding residue into the last entry so the vector sums
	// to 1 within the topology tolerance for every n.
	var sum float64
	for _, v := range t[:n-1] {
		sum += v
	}
	t[n-1] = 1 - sum
	return t
}

// normalize scales a positive vector to sum to 1.
func normalize(v []float64) []float64 {
	var sum float64
	for _, x := range v {
		sum += x
	}
	out := make([]float64, len(v))
	var partial float64
	for i := range v[:len(v)-1] {
		out[i] = v[i] / sum
		partial += out[i]
	}
	out[len(v)-1] = 1 - partial
	return out
}

// defaultMatrix is the execution matrix every family exercises: both
// linear-algebra backends, serial and 4-worker parallel iterations.
func defaultMatrix() Matrix {
	return Matrix{Solvers: []string{"dense", "sparse"}, Workers: []int{1, 4}}
}

// genPaper emits the four paper topologies, each with a Metropolis
// baseline twin. The contract: optimization beats the coverage-only
// baseline on the combined cost, results are bit-exact across worker
// counts, and the multi-start shard merge is bit-identical to the
// monolithic run.
func genPaper() (*Corpus, error) {
	c := &Corpus{
		Version: Version,
		Family:  "paper-topologies",
		Description: "The paper's four reconstructed topologies (Fig. 1) under the default " +
			"α=1, β=1e-4 weighting, each paired with its Metropolis–Hastings coverage-only " +
			"baseline. Optimization must beat the baseline on combined cost, and the " +
			"optimized plans must be bit-exact across worker counts and shard merges.",
		Generator: &Generator{Tool: "confgen", Seed: genSeedBase + 1},
		Matrix:    defaultMatrix(),
	}
	c.Matrix.Shards = []int{2, 3}
	obj := coverage.Objectives{Alpha: 1, Beta: 1e-4}
	var optimized, baselines []string
	for t := 1; t <= 4; t++ {
		scn, err := coverage.PaperTopology(t)
		if err != nil {
			return nil, err
		}
		opt := fmt.Sprintf("topology-%d", t)
		base := fmt.Sprintf("topology-%d-metropolis", t)
		c.Cases = append(c.Cases,
			Case{
				Name:       opt,
				Scenario:   scn,
				Objectives: obj,
				Run:        Budget{Seed: genSeedBase + uint64(100+t), MaxIters: 400, Restarts: 3},
			},
			Case{
				Name:       base,
				Mode:       ModeMetropolis,
				Scenario:   scn,
				Objectives: obj,
				Run:        Budget{Seed: 0},
			},
		)
		optimized = append(optimized, opt)
		baselines = append(baselines, base)
		c.Invariants = append(c.Invariants, Invariant{
			Type:  InvCostOrder,
			Cases: []string{opt, base},
		})
	}
	c.Invariants = append(c.Invariants,
		Invariant{Type: InvBitExact, Over: OverWorkers, Cases: optimized},
		Invariant{Type: InvBitExact, Over: OverShards, Cases: []string{"topology-1", "topology-3"}},
		Invariant{Type: InvBound, Metric: "deltaC", Max: fptr(0.75), Cases: optimized},
		Invariant{Type: InvBound, Metric: "eBar", Max: fptr(90), Cases: append(append([]string(nil), optimized...), baselines...)},
	)
	return c, nil
}

// genLineSweep sweeps the line topology length under a uniform target:
// the aggregate exposure must grow with the number of PoIs (one sensor
// spread over more sites), bit-exactly across worker counts.
func genLineSweep() (*Corpus, error) {
	c := &Corpus{
		Version: Version,
		Family:  "line-sweep",
		Description: "Uniform-target line topologies of increasing length n=4..8. A single " +
			"sensor spread over more PoIs leaves each exposed longer, so ĒBar must be " +
			"nondecreasing in n.",
		Generator: &Generator{Tool: "confgen", Seed: genSeedBase + 2},
		Matrix:    defaultMatrix(),
	}
	obj := coverage.Objectives{Alpha: 1, Beta: 1e-3}
	var names []string
	for i, n := range []int{4, 5, 6, 7, 8} {
		scn, err := coverage.LineScenario(fmt.Sprintf("line-%d", n), n, uniformTarget(n))
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("line-%d", n)
		c.Cases = append(c.Cases, Case{
			Name:       name,
			Scenario:   scn,
			Objectives: obj,
			Run:        Budget{Seed: genSeedBase + uint64(200+i), MaxIters: 300, Restarts: 2},
			Param:      float64(n),
		})
		names = append(names, name)
	}
	c.Invariants = append(c.Invariants,
		Invariant{Type: InvMonotone, Metric: "eBar", Direction: DirNondecreasing, Tolerance: 0.10, Cases: names},
		Invariant{Type: InvBitExact, Over: OverWorkers, Cases: names},
		Invariant{Type: InvBound, Metric: "deltaC", Max: fptr(0.6), Cases: names},
	)
	return c, nil
}

// genRingSweep is the perimeter-patrol analogue of the line sweep.
func genRingSweep() (*Corpus, error) {
	c := &Corpus{
		Version: Version,
		Family:  "ring-sweep",
		Description: "Uniform-target ring topologies of increasing size n=4..10 (radius n/4). " +
			"ĒBar must be nondecreasing in n; plans bit-exact across worker counts.",
		Generator: &Generator{Tool: "confgen", Seed: genSeedBase + 3},
		Matrix:    defaultMatrix(),
	}
	obj := coverage.Objectives{Alpha: 1, Beta: 1e-3}
	var names []string
	for i, n := range []int{4, 6, 8, 10} {
		scn, err := coverage.RingScenario(fmt.Sprintf("ring-%d", n), n, float64(n)/4, uniformTarget(n))
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("ring-%d", n)
		c.Cases = append(c.Cases, Case{
			Name:       name,
			Scenario:   scn,
			Objectives: obj,
			Run:        Budget{Seed: genSeedBase + uint64(300+i), MaxIters: 300, Restarts: 2},
			Param:      float64(n),
		})
		names = append(names, name)
	}
	c.Invariants = append(c.Invariants,
		Invariant{Type: InvMonotone, Metric: "eBar", Direction: DirNondecreasing, Tolerance: 0.10, Cases: names},
		Invariant{Type: InvBitExact, Over: OverWorkers, Cases: names},
		Invariant{Type: InvBound, Metric: "deltaC", Max: fptr(1.2), Cases: names},
	)
	return c, nil
}

// genGridSweep sweeps grid dimensions under a uniform target.
func genGridSweep() (*Corpus, error) {
	c := &Corpus{
		Version: Version,
		Family:  "grid-sweep",
		Description: "Uniform-target grids 2×2, 2×3, 3×3. ĒBar must be nondecreasing in the " +
			"PoI count; plans bit-exact across worker counts.",
		Generator: &Generator{Tool: "confgen", Seed: genSeedBase + 4},
		Matrix:    defaultMatrix(),
	}
	obj := coverage.Objectives{Alpha: 1, Beta: 1e-3}
	dims := []struct{ r, c int }{{2, 2}, {2, 3}, {3, 3}}
	var names []string
	for i, d := range dims {
		scn, err := coverage.GridScenario(fmt.Sprintf("grid-%dx%d", d.r, d.c), d.r, d.c, uniformTarget(d.r*d.c))
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("grid-%dx%d", d.r, d.c)
		c.Cases = append(c.Cases, Case{
			Name:       name,
			Scenario:   scn,
			Objectives: obj,
			Run:        Budget{Seed: genSeedBase + uint64(400+i), MaxIters: 300, Restarts: 2},
			Param:      float64(d.r * d.c),
		})
		names = append(names, name)
	}
	c.Invariants = append(c.Invariants,
		Invariant{Type: InvMonotone, Metric: "eBar", Direction: DirNondecreasing, Tolerance: 0.10, Cases: names},
		Invariant{Type: InvBitExact, Over: OverWorkers, Cases: names},
		Invariant{Type: InvBound, Metric: "deltaC", Max: fptr(0.6), Cases: names},
	)
	return c, nil
}

// randomScenario places m PoIs uniformly in a w×h area with pairwise
// separation > minSep by rejection sampling, keeping a margin from the
// optional obstacle. The PCG stream makes placement deterministic.
func randomScenario(src *rng.Source, name string, m int, w, h, minSep float64, obstacle *coverage.Obstacle) (coverage.Scenario, error) {
	const margin = 0.3
	pois := make([]coverage.PoI, 0, m)
	for attempts := 0; len(pois) < m; attempts++ {
		if attempts > 100000 {
			return coverage.Scenario{}, fmt.Errorf("rejection sampling stuck placing %d PoIs in %gx%g", m, w, h)
		}
		x, y := src.Uniform(0.3, w-0.3), src.Uniform(0.3, h-0.3)
		if obstacle != nil &&
			x > obstacle.MinX-margin && x < obstacle.MaxX+margin &&
			y > obstacle.MinY-margin && y < obstacle.MaxY+margin {
			continue
		}
		ok := true
		for _, p := range pois {
			if math.Hypot(p.X-x, p.Y-y) <= minSep {
				ok = false
				break
			}
		}
		if ok {
			pois = append(pois, coverage.PoI{X: x, Y: y})
		}
	}
	// Dirichlet(1,…,1) target via normalized exponential draws.
	raw := make([]float64, m)
	for i := range raw {
		raw[i] = src.Exp(1)
	}
	scn := coverage.Scenario{Name: name, PoIs: pois, Target: normalize(raw)}
	if obstacle != nil {
		scn.Obstacles = []coverage.Obstacle{*obstacle}
	}
	return scn, nil
}

// genRandomGeometric emits PCG-generated random geometric scenarios,
// including one with an obstacle the router must detour around.
func genRandomGeometric() (*Corpus, error) {
	const seed = genSeedBase + 5
	c := &Corpus{
		Version: Version,
		Family:  "random-geometric",
		Description: "Seeded random geometric scenarios (uniform placement, pairwise " +
			"separation > 2r, Dirichlet targets), one with an obstacle. The optimizer must " +
			"stay within the family's metric envelope, beat the Metropolis baseline, and be " +
			"bit-exact across worker counts.",
		Generator: &Generator{Tool: "confgen", Seed: seed},
		Matrix:    defaultMatrix(),
	}
	src := rng.New(seed)
	obj := coverage.Objectives{Alpha: 1, Beta: 1e-4}
	specs := []struct {
		name     string
		m        int
		w, h     float64
		obstacle *coverage.Obstacle
	}{
		{"rgg-6", 6, 3.5, 3.5, nil},
		{"rgg-7", 7, 4, 4, nil},
		{"rgg-8", 8, 4, 4, nil},
		{"rgg-7-obstacle", 7, 4, 4, &coverage.Obstacle{MinX: 1.5, MinY: 1.5, MaxX: 2.2, MaxY: 2.5}},
	}
	var names []string
	for i, sp := range specs {
		scn, err := randomScenario(src, sp.name, sp.m, sp.w, sp.h, 0.55, sp.obstacle)
		if err != nil {
			return nil, err
		}
		c.Cases = append(c.Cases, Case{
			Name:       sp.name,
			Scenario:   scn,
			Objectives: obj,
			Run:        Budget{Seed: seed + uint64(10+i), MaxIters: 300, Restarts: 2},
		})
		names = append(names, sp.name)
	}
	// A baseline twin for the first scenario anchors the
	// optimization-beats-baseline ordering on generated geometry too.
	c.Cases = append(c.Cases, Case{
		Name:       "rgg-6-metropolis",
		Mode:       ModeMetropolis,
		Scenario:   c.Cases[0].Scenario,
		Objectives: obj,
		Run:        Budget{Seed: 0},
	})
	c.Invariants = append(c.Invariants,
		Invariant{Type: InvCostOrder, Cases: []string{"rgg-6", "rgg-6-metropolis"}},
		Invariant{Type: InvBitExact, Over: OverWorkers, Cases: names},
		Invariant{Type: InvBound, Metric: "deltaC", Max: fptr(1.2), Cases: names},
	)
	return c, nil
}

// genIncidentArrivals models the stochastic-arrival setting of Yu et
// al.: incidents arrive at each station as a Poisson process, and the
// target allocation is proportional to the arrival rates. Sweeping the
// rate skew, the achieved coverage shares must respect the rate ordering.
func genIncidentArrivals() (*Corpus, error) {
	const seed = genSeedBase + 6
	c := &Corpus{
		Version: Version,
		Family:  "incident-arrivals",
		Description: "Stochastic-arrival incident mixes on a 2×3 station grid: per-station " +
			"Poisson arrival rates drawn once from the PCG stream, then skewed by an " +
			"exponent sweep; Φ ∝ λ. Coverage-dominant weighting must allocate more coverage " +
			"to hotter stations (share order follows rate order).",
		Generator: &Generator{Tool: "confgen", Seed: seed},
		Matrix:    defaultMatrix(),
	}
	src := rng.New(seed)
	base := make([]float64, 6)
	for i := range base {
		base[i] = src.Uniform(0.5, 1.8)
	}
	obj := coverage.Objectives{Alpha: 1, Beta: 1e-4}
	var names []string
	for i, skew := range []float64{0.5, 1, 2, 3} {
		rates := make([]float64, len(base))
		for j, b := range base {
			rates[j] = math.Pow(b, skew)
		}
		scn, err := coverage.GridScenario(fmt.Sprintf("incidents-s%g", skew), 2, 3, normalize(rates))
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("incidents-s%g", skew)
		c.Cases = append(c.Cases, Case{
			Name:       name,
			Scenario:   scn,
			Objectives: obj,
			Run:        Budget{Seed: seed + uint64(10+i), MaxIters: 350, Restarts: 2},
			Param:      skew,
		})
		names = append(names, name)
	}
	c.Invariants = append(c.Invariants,
		Invariant{Type: InvShareOrder, MinGap: 0.08, Tolerance: 0.05, Cases: names},
		Invariant{Type: InvBitExact, Over: OverWorkers, Cases: names},
		Invariant{Type: InvBound, Metric: "deltaC", Max: fptr(0.8), Cases: names},
	)
	return c, nil
}

// genEnergyBudget sweeps the §VII energy objective's weight toward a
// travel budget below the free-run energy: the achieved mean travel
// distance must approach the budget as the weight grows.
func genEnergyBudget() (*Corpus, error) {
	const seed = genSeedBase + 7
	c := &Corpus{
		Version: Version,
		Family:  "energy-budget",
		Description: "§VII energy-budget variants on a uniform line-5: EnergyTarget below " +
			"the free-run travel energy, EnergyWeight swept upward. |Energy − γ| must be " +
			"nonincreasing in the weight, and tight under the heaviest weight.",
		Generator: &Generator{Tool: "confgen", Seed: seed},
		Matrix:    defaultMatrix(),
	}
	scn, err := coverage.LineScenario("energy-line-5", 5, uniformTarget(5))
	if err != nil {
		return nil, err
	}
	var names []string
	for i, w := range []float64{0.05, 0.5, 5, 50} {
		name := fmt.Sprintf("energy-w%g", w)
		c.Cases = append(c.Cases, Case{
			Name:     name,
			Scenario: scn,
			Objectives: coverage.Objectives{
				Alpha: 1, Beta: 1e-4,
				EnergyWeight: w, EnergyTarget: 1.0,
			},
			Run:   Budget{Seed: seed + uint64(10+i), MaxIters: 350, Restarts: 2},
			Param: w,
		})
		names = append(names, name)
	}
	c.Invariants = append(c.Invariants,
		Invariant{Type: InvMonotone, Metric: "energyGap", Direction: DirNonincreasing, Tolerance: 0.05, Cases: names},
		Invariant{Type: InvBound, Metric: "energyGap", Max: fptr(0.25), Cases: []string{names[len(names)-1]}},
		Invariant{Type: InvBitExact, Over: OverWorkers, Cases: names},
	)
	return c, nil
}

// genBetaCrossover sweeps the exposure weight β on the paper's Topology
// 3 — the Tables I/II experiment as a conformance contract: rising β
// trades coverage fidelity for exposure.
func genBetaCrossover() (*Corpus, error) {
	const seed = genSeedBase + 8
	c := &Corpus{
		Version: Version,
		Family:  "beta-crossover",
		Description: "The coverage/exposure crossover on the paper's Topology 3 (Tables " +
			"I/II): sweeping β upward must not worsen ĒBar and must not improve ΔC.",
		Generator: &Generator{Tool: "confgen", Seed: seed},
		Matrix:    defaultMatrix(),
	}
	scn, err := coverage.PaperTopology(3)
	if err != nil {
		return nil, err
	}
	var names []string
	for i, beta := range []float64{1e-6, 1e-4, 1e-2, 1} {
		name := fmt.Sprintf("beta-%g", beta)
		c.Cases = append(c.Cases, Case{
			Name:       name,
			Scenario:   scn,
			Objectives: coverage.Objectives{Alpha: 1, Beta: beta},
			Run:        Budget{Seed: seed + uint64(10+i), MaxIters: 400, Restarts: 3},
			Param:      beta,
		})
		names = append(names, name)
	}
	c.Invariants = append(c.Invariants,
		Invariant{Type: InvCrossover, Tolerance: 0.15, Cases: names},
		Invariant{Type: InvBitExact, Over: OverWorkers, Cases: names},
	)
	return c, nil
}

// genFleet pins the joint-fleet contract: a jointly optimized K=2 fleet
// must beat K replicas of the best single-sensor schedule under the
// fleet objective, bit-exactly across worker counts.
func genFleet() (*Corpus, error) {
	const seed = genSeedBase + 9
	c := &Corpus{
		Version: Version,
		Family:  "fleet",
		Description: "Joint K=2 fleet optimization on a uniform 2×3 grid versus the same " +
			"budget spent replicating the best single-sensor schedule: the joint stack must " +
			"cost no more under the fleet objective, bit-exactly across worker counts.",
		Generator: &Generator{Tool: "confgen", Seed: seed},
		Matrix:    defaultMatrix(),
	}
	scn, err := coverage.GridScenario("fleet-grid-2x3", 2, 3, uniformTarget(6))
	if err != nil {
		return nil, err
	}
	obj := coverage.Objectives{Alpha: 1, Beta: 1e-3}
	fl := &FleetSpec{Sensors: 2}
	c.Cases = append(c.Cases,
		Case{
			Name:       "fleet-joint",
			Scenario:   scn,
			Objectives: obj,
			Run:        Budget{Seed: seed + 10, MaxIters: 300, Restarts: 2},
			Fleet:      fl,
		},
		Case{
			Name:       "fleet-replicate",
			Mode:       ModeReplicate,
			Scenario:   scn,
			Objectives: obj,
			Run:        Budget{Seed: seed + 11, MaxIters: 300, Restarts: 2},
			Fleet:      fl,
		},
	)
	c.Invariants = append(c.Invariants,
		Invariant{Type: InvCostOrder, Cases: []string{"fleet-joint", "fleet-replicate"}},
		Invariant{Type: InvBitExact, Over: OverWorkers, Cases: []string{"fleet-joint"}},
	)
	return c, nil
}
