package conformance

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validDoc is a minimal well-formed conformance/v1 document the
// malformed-input table mutates from.
const validDoc = `{
  "version": "conformance/v1",
  "family": "unit",
  "matrix": {"solvers": ["dense"], "workers": [1, 2]},
  "cases": [
    {
      "name": "a",
      "scenario": {
        "name": "line-3",
        "pois": [{"x": 0.5, "y": 0.5}, {"x": 1.5, "y": 0.5}, {"x": 2.5, "y": 0.5}],
        "target": [0.3, 0.3, 0.4]
      },
      "objectives": {"alpha": 1},
      "run": {"seed": 1, "maxIters": 10}
    },
    {
      "name": "b",
      "mode": "metropolis",
      "scenario": {
        "name": "line-3",
        "pois": [{"x": 0.5, "y": 0.5}, {"x": 1.5, "y": 0.5}, {"x": 2.5, "y": 0.5}],
        "target": [0.3, 0.3, 0.4]
      },
      "objectives": {"alpha": 1},
      "run": {"seed": 1, "maxIters": 0}
    }
  ],
  "invariants": [
    {"type": "cost_order", "cases": ["a", "b"]},
    {"type": "bitexact", "over": "workers", "cases": ["a"]}
  ]
}`

func TestReadCorpusAcceptsValidDocument(t *testing.T) {
	c, err := ReadCorpus(strings.NewReader(validDoc))
	if err != nil {
		t.Fatalf("ReadCorpus: %v", err)
	}
	if c.Family != "unit" || len(c.Cases) != 2 || len(c.Invariants) != 2 {
		t.Fatalf("decoded shape wrong: %+v", c)
	}
}

// Each entry corrupts the valid document one way; every corruption must
// be rejected with ErrCorpus and a message naming the problem.
func TestReadCorpusRejectsMalformedDocuments(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(string) string
		wantMsg string
	}{
		{
			name:    "wrong version",
			mutate:  func(s string) string { return strings.Replace(s, "conformance/v1", "conformance/v2", 1) },
			wantMsg: "version",
		},
		{
			name:    "missing version",
			mutate:  func(s string) string { return strings.Replace(s, `"version": "conformance/v1",`, "", 1) },
			wantMsg: "version",
		},
		{
			name:    "unknown field",
			mutate:  func(s string) string { return strings.Replace(s, `"family": "unit",`, `"family": "unit", "tolerances": 3,`, 1) },
			wantMsg: "unknown field",
		},
		{
			name:    "trailing data",
			mutate:  func(s string) string { return s + "\n{}" },
			wantMsg: "trailing data",
		},
		{
			name:    "duplicate case name",
			mutate:  func(s string) string { return strings.Replace(s, `"name": "b",`, `"name": "a",`, 1) },
			wantMsg: "duplicate case",
		},
		{
			name:    "unknown invariant case",
			mutate:  func(s string) string { return strings.Replace(s, `"cases": ["a", "b"]`, `"cases": ["a", "ghost"]`, 1) },
			wantMsg: `unknown case "ghost"`,
		},
		{
			name:    "unknown solver",
			mutate:  func(s string) string { return strings.Replace(s, `"solvers": ["dense"]`, `"solvers": ["cholesky"]`, 1) },
			wantMsg: "unknown solver",
		},
		{
			name:    "no workers",
			mutate:  func(s string) string { return strings.Replace(s, `"workers": [1, 2]`, `"workers": []`, 1) },
			wantMsg: "no worker counts",
		},
		{
			name: "bitexact over workers with one worker count",
			mutate: func(s string) string {
				return strings.Replace(s, `"workers": [1, 2]`, `"workers": [1]`, 1)
			},
			wantMsg: "bitexact over workers",
		},
		{
			name:    "unknown invariant type",
			mutate:  func(s string) string { return strings.Replace(s, `"type": "cost_order"`, `"type": "cost_orderings"`, 1) },
			wantMsg: "unknown invariant type",
		},
		{
			name:    "unknown mode",
			mutate:  func(s string) string { return strings.Replace(s, `"mode": "metropolis"`, `"mode": "anneal"`, 1) },
			wantMsg: "unknown mode",
		},
		{
			name: "target length mismatch",
			mutate: func(s string) string {
				return strings.Replace(s, `"target": [0.3, 0.3, 0.4]`, `"target": [0.5, 0.5]`, 1)
			},
			wantMsg: "targets for",
		},
		{
			name:    "not json",
			mutate:  func(string) string { return "families: [unit]" },
			wantMsg: "invalid",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ReadCorpus(strings.NewReader(tt.mutate(validDoc)))
			if err == nil {
				t.Fatal("malformed document accepted")
			}
			if !errors.Is(err, ErrCorpus) {
				t.Fatalf("err = %v, want ErrCorpus", err)
			}
			if !strings.Contains(err.Error(), tt.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tt.wantMsg)
			}
		})
	}
}

func TestValidateInvariantEdgeCases(t *testing.T) {
	base, err := ReadCorpus(strings.NewReader(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name    string
		iv      Invariant
		wantMsg string
	}{
		{"bound without min or max", Invariant{Type: InvBound, Cases: []string{"a"}, Metric: "cost"}, "neither min nor max"},
		{"bound with min above max", Invariant{Type: InvBound, Cases: []string{"a"}, Metric: "cost", Min: fptr(2), Max: fptr(1)}, "min 2 > max 1"},
		{"bound with unknown metric", Invariant{Type: InvBound, Cases: []string{"a"}, Metric: "latency", Max: fptr(1)}, "unknown metric"},
		{"monotone with one case", Invariant{Type: InvMonotone, Cases: []string{"a"}, Metric: "cost", Direction: DirNondecreasing}, ">= 2 cases"},
		{"monotone with bad direction", Invariant{Type: InvMonotone, Cases: []string{"a", "b"}, Metric: "cost", Direction: "sideways"}, "unknown direction"},
		{"share_order without minGap", Invariant{Type: InvShareOrder, Cases: []string{"a"}}, "minGap"},
		{"negative tolerance", Invariant{Type: InvCostOrder, Cases: []string{"a", "b"}, Tolerance: -0.1}, "negative tolerance"},
		{"bitexact over shards without splits", Invariant{Type: InvBitExact, Cases: []string{"a"}, Over: OverShards}, "shard splits"},
		{"bitexact over unknown dimension", Invariant{Type: InvBitExact, Cases: []string{"a"}, Over: "threads"}, "unknown bitexact dimension"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := *base
			c.Invariants = append(append([]Invariant(nil), base.Invariants...), tt.iv)
			err := c.Validate()
			if err == nil || !strings.Contains(err.Error(), tt.wantMsg) {
				t.Fatalf("err = %v, want mention of %q", err, tt.wantMsg)
			}
		})
	}
}

// Encode → ReadCorpus must round-trip, and Encode must be
// deterministic: the byte identity is what confgen -check and the CI
// drift gate compare.
func TestEncodeRoundTripAndDeterminism(t *testing.T) {
	c, err := ReadCorpus(strings.NewReader(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if b1[len(b1)-1] != '\n' {
		t.Error("Encode output lacks trailing newline")
	}
	again, err := ReadCorpus(strings.NewReader(string(b1)))
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	b2, err := again.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("Encode is not a fixed point of decode∘encode")
	}
}

func TestLoadDirRejectsDuplicateFamilies(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"one.json", "two.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(validDoc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err := LoadDir(dir)
	if err == nil || !strings.Contains(err.Error(), `family "unit" in both`) {
		t.Fatalf("err = %v, want duplicate-family rejection", err)
	}
}

func TestLoadDirEmpty(t *testing.T) {
	_, err := LoadDir(t.TempDir())
	if !errors.Is(err, ErrCorpus) {
		t.Fatalf("err = %v, want ErrCorpus for empty dir", err)
	}
}

// Problems must deduplicate by fingerprint: the metropolis twin of an
// optimize case is the same optimization problem and collapses onto it.
func TestProblemsDeduplicates(t *testing.T) {
	c, err := ReadCorpus(strings.NewReader(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	probs := Problems([]*Corpus{c, c})
	if len(probs) != 1 {
		t.Fatalf("Problems returned %d problems, want 1 (cases a and b share a fingerprint)", len(probs))
	}
	if probs[0].Scenario.Name != "line-3" {
		t.Fatalf("unexpected problem scenario %q", probs[0].Scenario.Name)
	}
}
