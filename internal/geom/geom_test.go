package geom

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, 5}
	if got := q.Sub(p); got != (Point{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Add(q); got != (Point{4, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 13 {
		t.Errorf("Dot = %v", got)
	}
	if got := Dist(Point{0, 0}, Point{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %v", got)
	}
}

func TestSegmentLengthAndPointAt(t *testing.T) {
	s := Segment{Point{0, 0}, Point{4, 0}}
	if got := s.Length(); got != 4 {
		t.Errorf("Length = %v", got)
	}
	if got := s.PointAt(0.25); got != (Point{1, 0}) {
		t.Errorf("PointAt(0.25) = %v", got)
	}
	if got := s.PointAt(0); got != s.A {
		t.Errorf("PointAt(0) = %v", got)
	}
	if got := s.PointAt(1); got != s.B {
		t.Errorf("PointAt(1) = %v", got)
	}
}

func TestDistToPoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	cases := []struct {
		name string
		c    Point
		want float64
	}{
		{"above middle", Point{5, 3}, 3},
		{"beyond end", Point{13, 4}, 5},
		{"before start", Point{-3, 4}, 5},
		{"on segment", Point{5, 0}, 0},
		{"at endpoint", Point{10, 0}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := s.DistToPoint(tc.c); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("DistToPoint = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDistToPointDegenerateSegment(t *testing.T) {
	s := Segment{Point{1, 1}, Point{1, 1}}
	if got := s.DistToPoint(Point{4, 5}); math.Abs(got-5) > 1e-12 {
		t.Errorf("degenerate DistToPoint = %v, want 5", got)
	}
}

func TestCoverageIntervalCrossingCenter(t *testing.T) {
	// Path passes straight through the disk center: chord = 2r.
	s := Segment{Point{0, 0}, Point{10, 0}}
	iv, ok := CoverageInterval(s, Point{5, 0}, 1)
	if !ok {
		t.Fatal("expected coverage")
	}
	if math.Abs(iv.Length()*s.Length()-2) > 1e-9 {
		t.Errorf("chord length = %v, want 2", iv.Length()*s.Length())
	}
	// Interval centered at t=0.5.
	if math.Abs((iv.Lo+iv.Hi)/2-0.5) > 1e-9 {
		t.Errorf("interval midpoint = %v, want 0.5", (iv.Lo+iv.Hi)/2)
	}
}

func TestCoverageIntervalOffsetChord(t *testing.T) {
	// Disk center offset 0.6 from the line, r=1 -> half-chord = 0.8.
	s := Segment{Point{0, 0}, Point{10, 0}}
	iv, ok := CoverageInterval(s, Point{5, 0.6}, 1)
	if !ok {
		t.Fatal("expected coverage")
	}
	if math.Abs(iv.Length()*s.Length()-1.6) > 1e-9 {
		t.Errorf("chord length = %v, want 1.6", iv.Length()*s.Length())
	}
}

func TestCoverageIntervalMiss(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	if _, ok := CoverageInterval(s, Point{5, 2}, 1); ok {
		t.Error("expected no coverage for a path 2 away with r=1")
	}
}

func TestCoverageIntervalTangent(t *testing.T) {
	// Exactly tangent: zero-measure contact must not count.
	s := Segment{Point{0, 0}, Point{10, 0}}
	if _, ok := CoverageInterval(s, Point{5, 1}, 1); ok {
		t.Error("tangent contact should produce no interval")
	}
}

func TestCoverageIntervalClippedAtEndpoints(t *testing.T) {
	// Disk centered at the start of the path: only the leading half of the
	// chord lies on the segment.
	s := Segment{Point{0, 0}, Point{10, 0}}
	iv, ok := CoverageInterval(s, Point{0, 0}, 1)
	if !ok {
		t.Fatal("expected coverage")
	}
	if math.Abs(iv.Lo) > 1e-9 || math.Abs(iv.Hi-0.1) > 1e-9 {
		t.Errorf("interval = [%v, %v], want [0, 0.1]", iv.Lo, iv.Hi)
	}
}

func TestCoverageIntervalDiskBeyondSegment(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	if _, ok := CoverageInterval(s, Point{12, 0}, 1); ok {
		t.Error("disk entirely beyond the segment end should not be covered")
	}
}

func TestCoverageIntervalStationary(t *testing.T) {
	s := Segment{Point{3, 3}, Point{3, 3}}
	iv, ok := CoverageInterval(s, Point{3, 3.5}, 1)
	if !ok || iv.Lo != 0 || iv.Hi != 1 {
		t.Errorf("stationary in range: iv=%v ok=%v, want [0,1] true", iv, ok)
	}
	if _, ok := CoverageInterval(s, Point{9, 9}, 1); ok {
		t.Error("stationary out of range should not be covered")
	}
}

func TestCoverageIntervalNegativeRadius(t *testing.T) {
	s := Segment{Point{0, 0}, Point{1, 0}}
	if _, ok := CoverageInterval(s, Point{0.5, 0}, -1); ok {
		t.Error("negative radius should produce no coverage")
	}
}

func TestCoverageTime(t *testing.T) {
	s := Segment{Point{0, 0}, Point{10, 0}}
	got, err := CoverageTime(s, Point{5, 0}, 1, 2)
	if err != nil {
		t.Fatalf("CoverageTime: %v", err)
	}
	if math.Abs(got-1) > 1e-9 { // chord 2 at speed 2
		t.Errorf("CoverageTime = %v, want 1", got)
	}
	if _, err := CoverageTime(s, Point{5, 0}, 1, 0); err == nil {
		t.Error("zero speed should error")
	}
}

func TestPassesThrough(t *testing.T) {
	s := Segment{Point{0, 0}, Point{2, 0}}
	if !PassesThrough(s, Point{1, 0.1}, 0.25) {
		t.Error("expected pass-through")
	}
	if PassesThrough(s, Point{1, 1}, 0.25) {
		t.Error("unexpected pass-through")
	}
}

func TestIntervalHelpers(t *testing.T) {
	if (Interval{0.2, 0.5}).Length() != 0.3 {
		t.Error("Length")
	}
	if (Interval{0.5, 0.2}).Length() != 0 {
		t.Error("inverted Length should be 0")
	}
	if !(Interval{0.5, 0.5}).Empty() {
		t.Error("point interval should be empty")
	}
	if (Interval{0.1, 0.9}).Empty() {
		t.Error("proper interval should not be empty")
	}
}

// TestCoverageIntervalConsistentWithDistance cross-checks the analytic
// interval against the segment-to-point distance on random configurations:
// an interval exists iff the minimum distance is below r.
func TestCoverageIntervalConsistentWithDistance(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 2000; trial++ {
		seg := Segment{
			Point{r.Float64() * 10, r.Float64() * 10},
			Point{r.Float64() * 10, r.Float64() * 10},
		}
		c := Point{r.Float64() * 10, r.Float64() * 10}
		radius := r.Float64() * 3
		_, ok := CoverageInterval(seg, c, radius)
		minDist := seg.DistToPoint(c)
		// Skip near-tangent configurations where floating point decides.
		if math.Abs(minDist-radius) < 1e-9 {
			continue
		}
		if ok != (minDist < radius) {
			t.Fatalf("trial %d: interval ok=%v but minDist=%v radius=%v", trial, ok, minDist, radius)
		}
	}
}

// TestCoverageIntervalSampled validates interval bounds by dense sampling
// along the segment.
func TestCoverageIntervalSampled(t *testing.T) {
	r := rand.New(rand.NewPCG(23, 24))
	for trial := 0; trial < 200; trial++ {
		seg := Segment{
			Point{r.Float64() * 4, r.Float64() * 4},
			Point{r.Float64() * 4, r.Float64() * 4},
		}
		if seg.Length() < 1e-6 {
			continue
		}
		c := Point{r.Float64() * 4, r.Float64() * 4}
		radius := 0.3 + r.Float64()
		iv, ok := CoverageInterval(seg, c, radius)
		const steps = 400
		for k := 0; k <= steps; k++ {
			tt := float64(k) / steps
			inside := Dist(seg.PointAt(tt), c) < radius-1e-9
			// Inclusive bounds: the interval endpoints themselves are on
			// the disk boundary or the segment ends.
			inClosedInterval := ok && tt >= iv.Lo-1e-9 && tt <= iv.Hi+1e-9
			if inside && !inClosedInterval {
				t.Fatalf("trial %d: point at t=%v inside disk but outside interval %+v", trial, tt, iv)
			}
			strictlyInInterval := ok && tt > iv.Lo+1e-9 && tt < iv.Hi-1e-9
			if strictlyInInterval && Dist(seg.PointAt(tt), c) > radius+1e-9 {
				t.Fatalf("trial %d: t=%v in interval but outside disk", trial, tt)
			}
		}
	}
}

// TestCoverageReversalProperty: traversing the segment in either
// direction spends the same time in the disk.
func TestCoverageReversalProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(31, 32))
	for trial := 0; trial < 500; trial++ {
		seg := Segment{
			Point{r.Float64() * 6, r.Float64() * 6},
			Point{r.Float64() * 6, r.Float64() * 6},
		}
		rev := Segment{seg.B, seg.A}
		c := Point{r.Float64() * 6, r.Float64() * 6}
		radius := 0.2 + r.Float64()
		t1, err := CoverageTime(seg, c, radius, 1)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := CoverageTime(rev, c, radius, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(t1-t2) > 1e-9 {
			t.Fatalf("trial %d: forward %v vs reverse %v", trial, t1, t2)
		}
	}
}

// TestDistSymmetryProperty uses testing/quick for metric symmetry and the
// triangle inequality.
func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Clamp wild quick-generated values into a sane range.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		c := Point{clamp(cx), clamp(cy)}
		if math.Abs(Dist(a, b)-Dist(b, a)) > 1e-9 {
			return false
		}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
