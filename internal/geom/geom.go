// Package geom provides the planar geometry underlying the physical sensor
// model: points, straight-line travel segments, point-to-segment distance,
// and — the piece the coverage model depends on — the length of the chord a
// segment cuts through a sensing disk. That chord length, divided by travel
// speed, is the time the moving sensor covers a PoI it passes by
// (the paper's T_{jk,i} quantities).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Sub returns p - q as a vector (represented as a Point).
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns s*p.
func (p Point) Scale(s float64) Point { return Point{s * p.X, s * p.Y} }

// Dot returns the dot product of p and q as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between two points.
func Dist(p, q Point) float64 { return p.Sub(q).Norm() }

// String renders the point as "(x, y)".
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Segment is the directed straight-line path from A to B.
type Segment struct {
	A, B Point
}

// Length returns the length of the segment.
func (s Segment) Length() float64 { return Dist(s.A, s.B) }

// PointAt returns the point at parameter t in [0,1] along the segment.
func (s Segment) PointAt(t float64) Point {
	return s.A.Add(s.B.Sub(s.A).Scale(t))
}

// DistToPoint returns the minimum distance from the segment to point c.
func (s Segment) DistToPoint(c Point) float64 {
	d := s.B.Sub(s.A)
	len2 := d.Dot(d)
	if len2 == 0 {
		return Dist(s.A, c)
	}
	t := c.Sub(s.A).Dot(d) / len2
	t = math.Max(0, math.Min(1, t))
	return Dist(s.PointAt(t), c)
}

// Interval is a parameter range [Lo, Hi] within [0, 1] along a segment.
type Interval struct {
	Lo, Hi float64
}

// Length returns Hi - Lo, never negative.
func (iv Interval) Length() float64 {
	if iv.Hi < iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Empty reports whether the interval has zero measure.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// CoverageInterval returns the sub-interval of [0,1] during which a sensor
// moving along seg is within distance r of the point c, and whether such an
// interval exists. The bounds are roots of the quadratic
// |A + t(B-A) - c|^2 = r^2 clipped to [0, 1].
//
// For a zero-length segment the interval is [0,1] if the (stationary)
// sensor is within range, otherwise absent.
func CoverageInterval(seg Segment, c Point, r float64) (Interval, bool) {
	if r < 0 {
		return Interval{}, false
	}
	d := seg.B.Sub(seg.A)
	f := seg.A.Sub(c)
	a := d.Dot(d)
	if a == 0 {
		if f.Norm() <= r {
			return Interval{0, 1}, true
		}
		return Interval{}, false
	}
	b := 2 * f.Dot(d)
	cc := f.Dot(f) - r*r
	disc := b*b - 4*a*cc
	if disc < 0 {
		return Interval{}, false
	}
	sq := math.Sqrt(disc)
	t0 := (-b - sq) / (2 * a)
	t1 := (-b + sq) / (2 * a)
	lo := math.Max(0, t0)
	hi := math.Min(1, t1)
	if hi <= lo {
		return Interval{}, false
	}
	return Interval{lo, hi}, true
}

// CoverageTime returns the length of time a sensor moving along seg at the
// given speed spends within distance r of c. Speed must be positive.
func CoverageTime(seg Segment, c Point, r, speed float64) (float64, error) {
	if speed <= 0 {
		return 0, fmt.Errorf("geom: non-positive speed %v", speed)
	}
	iv, ok := CoverageInterval(seg, c, r)
	if !ok {
		return 0, nil
	}
	return iv.Length() * seg.Length() / speed, nil
}

// PassesThrough reports whether the path seg comes within distance r of c,
// excluding grazing contact of zero measure.
func PassesThrough(seg Segment, c Point, r float64) bool {
	_, ok := CoverageInterval(seg, c, r)
	return ok
}
