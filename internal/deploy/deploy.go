// Package deploy is the live deployment runtime: it manages long-lived
// patrol executions as first-class server objects alongside optimization
// jobs, closing the paper's loop from a static offline plan to an online
// service (deploy → observe → detect drift → retrain → hot-swap).
//
// A Deployment owns a plan and its scenario and advances a
// coverage.Executor, either self-driven (ticks or POST /advance draw the
// next PoIs from the deployed plan) or externally driven (POST
// /observations records where the real sensor actually went, which may
// deviate from the plan). Along the way it maintains online statistics —
// per-PoI coverage fractions against the target Φ, open and completed
// exposure segments, and Poisson incident-detection delays when rates are
// configured — and every Drift.CheckEvery steps fits markov.Estimate over
// a sliding trajectory window and scores the estimate against the
// deployed plan (occupancy-weighted row total variation, a mean
// log-likelihood ratio, and the empirical coverage deviation ΔC).
//
// When the drift score crosses Drift.Threshold, the runtime submits a
// re-optimization job through the jobs.Manager, warm-started from the
// estimated chain (coverage.Options.InitialMatrix), and hot-swaps the
// plan atomically when the job completes, recording a swap history. On
// a sharding manager (jobs.ShardConfig) those re-optimizations split
// across the cluster like any other job; the runtime only sees the
// done notification from whichever node merges the result. All
// deployment state — including the executor's exact random-stream
// position — checkpoints to disk, so a restarted server resumes
// deployments bit-for-bit, exactly like jobs.
package deploy

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"repro/coverage"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Service errors, mapped onto HTTP statuses by the API layer.
var (
	// ErrNotFound reports an unknown deployment ID.
	ErrNotFound = errors.New("deploy: deployment not found")
	// ErrSpec reports an invalid deployment specification.
	ErrSpec = errors.New("deploy: invalid spec")
	// ErrStopped reports an operation on a stopped deployment.
	ErrStopped = errors.New("deploy: deployment stopped")
	// ErrShuttingDown reports a request during runtime shutdown.
	ErrShuttingDown = errors.New("deploy: runtime shutting down")
	// ErrLimit reports that the deployment table is full.
	ErrLimit = errors.New("deploy: too many deployments")
)

// State is a deployment lifecycle state.
type State string

// The deployment lifecycle states. Unlike jobs, a deployment has no
// natural completion: it runs until stopped.
const (
	StateActive  State = "active"
	StateStopped State = "stopped"
)

// valid reports whether s is a known state (used when loading
// checkpoints).
func (s State) valid() bool {
	return s == StateActive || s == StateStopped
}

// Defaults for DriftConfig. Chosen so the window holds enough transitions
// to estimate an M ≲ 16 chain, checks amortize to ~1% of step cost, and
// the threshold sits well above the sampling noise of a faithful
// executor at these window sizes (see DESIGN.md §9).
const (
	DefaultWindow     = 1024
	DefaultCheckEvery = 128
	DefaultMinSamples = 256
	DefaultSmoothing  = 0.5
	DefaultThreshold  = 0.15
)

// DriftConfig tunes drift detection. Zero values select the defaults
// above; Threshold < 0 disables automatic re-optimization (drift is
// still scored and reported).
type DriftConfig struct {
	// Window is the sliding trajectory window length, in steps.
	Window int `json:"window,omitempty"`
	// CheckEvery is the cadence of drift checks, in steps.
	CheckEvery int `json:"checkEvery,omitempty"`
	// MinSamples is the minimum window occupancy before scoring.
	MinSamples int `json:"minSamples,omitempty"`
	// Smoothing is the additive smoothing of the window estimate; it must
	// be positive so the estimate stays ergodic (and warm-startable).
	Smoothing float64 `json:"smoothing,omitempty"`
	// Threshold triggers re-optimization when the occupancy-weighted row
	// total-variation score reaches it. Negative disables triggering.
	Threshold float64 `json:"threshold,omitempty"`
	// Cooldown is the minimum number of steps between triggers (default:
	// Window, so the post-swap window refills before re-scoring can
	// trigger again).
	Cooldown int `json:"cooldown,omitempty"`
}

// ReoptConfig tunes the automatic re-optimization jobs a drifting
// deployment submits.
type ReoptConfig struct {
	// Options tunes each restart. InitialMatrix is owned by the runtime
	// (it is replaced with the drift estimate) and ignored if set.
	Options coverage.Options `json:"options"`
	// Restarts is the multi-start count (default 1).
	Restarts int `json:"restarts,omitempty"`
}

// Spec is everything needed to run one deployment.
type Spec struct {
	// Scenario is the coverage problem the plan was optimized for.
	Scenario coverage.Scenario `json:"scenario"`
	// Plan is the schedule to deploy.
	Plan *coverage.Plan `json:"plan"`
	// Objectives weights re-optimization (and documents what the plan was
	// optimized for).
	Objectives coverage.Objectives `json:"objectives"`
	// Start is the PoI the sensor starts at.
	Start int `json:"start"`
	// Seed drives the executor's draws (and, split, the incident
	// process), making a deployment reproducible end to end.
	Seed uint64 `json:"seed"`
	// TickMillis, when positive, self-advances the deployment one step
	// every TickMillis milliseconds. Zero means the deployment only moves
	// on POST /advance or /observations.
	TickMillis int `json:"tickMillis,omitempty"`
	// Drift tunes drift detection.
	Drift DriftConfig `json:"drift"`
	// Reopt tunes the automatic re-optimization jobs.
	Reopt ReoptConfig `json:"reopt"`
	// IncidentRates, when set, simulates Poisson incidents at each PoI
	// (events per step) and tracks detection delays. A single rate may be
	// given as a one-element slice.
	IncidentRates []float64 `json:"incidentRates,omitempty"`
}

// SwapRecord is one completed hot-swap in a deployment's history.
type SwapRecord struct {
	// Step is the deployment step at which the swap landed.
	Step int `json:"step"`
	// JobID is the re-optimization job whose plan was installed.
	JobID string `json:"jobId"`
	// At is the wall-clock swap time.
	At time.Time `json:"at"`
	// OldCost and NewCost are the analytic costs of the outgoing and
	// incoming plans.
	OldCost float64 `json:"oldCost"`
	NewCost float64 `json:"newCost"`
	// DriftScore and EmpiricalDeltaC snapshot the drift report that
	// triggered the job.
	DriftScore      float64 `json:"driftScore"`
	EmpiricalDeltaC float64 `json:"empiricalDeltaC"`
}

// IncidentStats summarizes the online incident-detection simulation.
type IncidentStats struct {
	// Detected counts detected incidents per PoI.
	Detected []int64 `json:"detected"`
	// Open counts incidents still awaiting detection per PoI.
	Open []int64 `json:"open"`
	// MeanDelay is the mean detection delay per PoI, in steps.
	MeanDelay []float64 `json:"meanDelay"`
	// MaxDelay is the worst observed delay per PoI, in steps.
	MaxDelay []int64 `json:"maxDelay"`
}

// View is an immutable snapshot of a deployment, safe to hold and
// serialize while the deployment keeps running.
type View struct {
	ID       string     `json:"id"`
	State    State      `json:"state"`
	Scenario string     `json:"scenario"`
	Created  time.Time  `json:"created"`
	Stopped  *time.Time `json:"stopped,omitempty"`
	// Step counts recorded positions, including the start.
	Step int `json:"step"`
	// Current is the PoI the sensor is at (sensor 0 for fleets).
	Current int `json:"current"`
	// Sensors is the fleet size for fleet deployments; 0 for
	// single-sensor deployments.
	Sensors int `json:"sensors,omitempty"`
	// Positions is every sensor's current PoI (fleet deployments only).
	Positions []int `json:"positions,omitempty"`
	// Faults is the executors' degenerate-row counter (summed for fleets).
	Faults uint64 `json:"faults,omitempty"`
	// PlanCost is the deployed plan's analytic cost.
	PlanCost float64 `json:"planCost"`
	// Coverage is the all-time empirical coverage fraction per PoI.
	Coverage []float64 `json:"coverage"`
	// Target is the scenario's prescribed allocation Φ.
	Target []float64 `json:"target"`
	// EmpiricalDeltaC is Σ_i (coverage_i − Φ_i)² over the whole run.
	EmpiricalDeltaC float64 `json:"empiricalDeltaC"`
	// OpenExposure is each PoI's current unwatched-interval length.
	OpenExposure []int64 `json:"openExposure"`
	// MeanExposure and MaxExposure summarize completed exposure segments.
	MeanExposure []float64 `json:"meanExposure"`
	MaxExposure  []int64   `json:"maxExposure"`
	// Drift is the latest drift report, if a check has run.
	Drift *DriftReport `json:"drift,omitempty"`
	// DriftChecks and DriftTriggers count checks and threshold crossings.
	DriftChecks   int64 `json:"driftChecks"`
	DriftTriggers int64 `json:"driftTriggers"`
	// ReoptJob is the in-flight re-optimization job, if any.
	ReoptJob string `json:"reoptJob,omitempty"`
	// Swaps is the hot-swap history.
	Swaps []SwapRecord `json:"swaps,omitempty"`
	// Incidents is present when IncidentRates were configured.
	Incidents *IncidentStats `json:"incidents,omitempty"`
	// LastError surfaces the most recent non-fatal runtime error (e.g. a
	// rejected re-optimization submission).
	LastError string `json:"lastError,omitempty"`
}

// Event is one entry of a deployment's event stream.
type Event struct {
	// Type is one of "drift", "trigger", "reopt-progress", "swap",
	// "stopped", "error".
	Type string `json:"type"`
	// Deployment is the originating deployment ID.
	Deployment string `json:"deployment"`
	// Step is the deployment step at emission.
	Step int `json:"step"`
	// Data carries the type-specific payload (a DriftReport for "drift"
	// and "trigger", a SwapRecord for "swap", a string for "error").
	Data any `json:"data,omitempty"`
}

// Jobs is the slice of the job manager the runtime needs to close the
// loop; *jobs.Manager satisfies it. Submissions carry a context so the
// deployment ID travels onto the job's log trail.
type Jobs interface {
	SubmitCtx(ctx context.Context, spec jobs.Spec) (jobs.View, error)
	Get(id string) (jobs.View, error)
	Plan(id string) (*coverage.Plan, error)
}

// PlanLibrary is the slice of the plan library the runtime uses:
// consulted when drift fires (a cached exact solution that beats the
// deployed plan's cost is swapped in directly, skipping the
// re-optimization job entirely), and fed every plan the runtime swaps
// in, so one deployment's re-optimization becomes every later
// deployment's cache hit. *plans.Library satisfies it.
type PlanLibrary interface {
	// WarmStart returns the best cached plan for the scenario: an exact
	// hit at distance 0, or the nearest same-topology neighbor.
	WarmStart(scn coverage.Scenario, obj coverage.Objectives) (*coverage.Plan, float64, bool)
	// PublishPlan records a plan the runtime adopted; jobID is the
	// producing job for provenance ("" when the plan came from the
	// library itself).
	PublishPlan(scn coverage.Scenario, obj coverage.Objectives, plan *coverage.Plan, jobID string)
}

// incidents is the online Poisson incident simulation: arrivals per PoI
// per step, detection when the sensor's walk next visits the PoI.
type incidents struct {
	rates []float64
	src   *rng.Source
	// open holds each pending incident's arrival step, per PoI.
	open     [][]int
	detected []int64
	delaySum []int64
	delayMax []int64
}

func newIncidents(rates []float64, seed uint64) *incidents {
	m := len(rates)
	inc := &incidents{
		rates:    rates,
		src:      rng.New(seed),
		open:     make([][]int, m),
		detected: make([]int64, m),
		delaySum: make([]int64, m),
		delayMax: make([]int64, m),
	}
	return inc
}

// step advances the incident process by one step: arrivals everywhere,
// then detection at the sensor's position. An incident arriving at the
// PoI the sensor currently covers is detected with zero delay.
func (inc *incidents) step(now, poi int) {
	for i, rate := range inc.rates {
		if rate <= 0 {
			continue
		}
		for k := inc.src.Poisson(rate); k > 0; k-- {
			inc.open[i] = append(inc.open[i], now)
		}
	}
	for _, arrival := range inc.open[poi] {
		delay := int64(now - arrival)
		inc.detected[poi]++
		inc.delaySum[poi] += delay
		if delay > inc.delayMax[poi] {
			inc.delayMax[poi] = delay
		}
	}
	inc.open[poi] = inc.open[poi][:0]
}

func (inc *incidents) stats() *IncidentStats {
	m := len(inc.rates)
	st := &IncidentStats{
		Detected:  append([]int64(nil), inc.detected...),
		Open:      make([]int64, m),
		MeanDelay: make([]float64, m),
		MaxDelay:  append([]int64(nil), inc.delayMax...),
	}
	for i := 0; i < m; i++ {
		st.Open[i] = int64(len(inc.open[i]))
		if inc.detected[i] > 0 {
			st.MeanDelay[i] = float64(inc.delaySum[i]) / float64(inc.detected[i])
		}
	}
	return st
}

// deployment is the mutable record; every field is guarded by Runtime.mu
// except id and spec, which are immutable after Create.
type deployment struct {
	id   string
	spec Spec // normalized: defaults applied, rates expanded

	state   State
	created time.Time
	stopped time.Time

	plan *coverage.Plan // currently deployed plan (hot-swapped)
	exec *coverage.Executor

	// Fleet mode (plan.Fleet set): execs holds all K executors (execs[0]
	// == exec) and fleetWins the per-sensor trajectory rings, which share
	// winStart/winLen with the single-sensor window since all sensors
	// advance in lockstep. Both are nil for single-sensor deployments.
	execs     []*coverage.Executor
	fleetWins [][]int

	step   int     // recorded positions, including the start
	visits []int64 // all-time per-PoI visit counts

	// window is a ring buffer of the last Drift.Window positions.
	window   []int
	winStart int
	winLen   int

	// Exposure bookkeeping, in step time: a segment for PoI i is the gap
	// between consecutive visits.
	lastVisit []int // step of most recent visit; -1 = never
	segCount  []int64
	segSum    []int64
	segMax    []int64

	driftChecks   int64
	driftTriggers int64
	lastDrift     *DriftReport
	lastTrigger   int // step of the last trigger; -Cooldown-1 initially

	reoptJob string
	swaps    []SwapRecord

	inc *incidents

	lastError string

	subs   map[int]chan Event
	subSeq int

	tickStop chan struct{} // non-nil while a ticker goroutine runs
}

// Config tunes a Runtime. The zero value is usable: no job manager (drift
// is reported but never acted on), no persistence, up to 64 deployments.
type Config struct {
	// Jobs submits and resolves re-optimization jobs; nil disables
	// automatic re-optimization.
	Jobs Jobs
	// Plans is the plan library drifting deployments consult before
	// paying for a re-optimization, and into which swapped-in plans are
	// published. Nil disables library integration.
	Plans PlanLibrary
	// Dir is the checkpoint directory; empty disables persistence.
	Dir string
	// MaxDeployments bounds the deployment table (default 64).
	MaxDeployments int
	// MaxAdvance caps the steps of a single Advance or Observe call
	// (default 1e6).
	MaxAdvance int
	// Logger receives structured deployment-lifecycle logs (create,
	// drift, trigger, swap, stop), each carrying the deployment ID — and
	// the re-optimization job ID where one is involved. Nil disables
	// logging.
	Logger *slog.Logger
	// Metrics is the registry the runtime's instruments (drift-score
	// distribution, checkpoint write latency) register into. Nil disables
	// metrics.
	Metrics *obs.Registry
}

// deployMetrics bundles the runtime's instruments; all obs instruments
// are nil-safe, so the zero value records nothing.
type deployMetrics struct {
	driftScore  *obs.Histogram
	ckptSeconds *obs.Histogram
	fleetDeps   *obs.Counter
}

func newDeployMetrics(r *obs.Registry) deployMetrics {
	return deployMetrics{
		driftScore: r.Histogram("coverage_deployment_drift_score",
			"Drift scores observed by deployment drift checks.",
			[]float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1}),
		ckptSeconds: r.Histogram("coverage_deployment_checkpoint_write_seconds",
			"Deployment checkpoint write latency.", obs.DefBuckets),
		fleetDeps: r.Counter("fleet_deployments_total",
			"Fleet (multi-sensor) deployments created."),
	}
}

// Runtime owns the deployment table.
type Runtime struct {
	cfg Config
	log *slog.Logger
	met deployMetrics

	mu     sync.Mutex
	deps   map[string]*deployment
	order  []string
	seq    int
	closed bool
	wg     sync.WaitGroup // ticker goroutines
}

// New builds a Runtime, resumes any checkpointed deployments found in
// cfg.Dir, and restarts their tickers.
func New(cfg Config) (*Runtime, error) {
	if cfg.MaxDeployments <= 0 {
		cfg.MaxDeployments = 64
	}
	if cfg.MaxAdvance <= 0 {
		cfg.MaxAdvance = 1_000_000
	}
	rt := &Runtime{
		cfg:  cfg,
		log:  obs.Component(cfg.Logger, "deploy"),
		deps: make(map[string]*deployment),
	}
	if cfg.Metrics != nil {
		rt.met = newDeployMetrics(cfg.Metrics)
	}
	if cfg.Dir != "" {
		if err := rt.loadCheckpoints(); err != nil {
			return nil, err
		}
	}
	rt.mu.Lock()
	for _, id := range rt.order {
		rt.startTicker(rt.deps[id])
	}
	rt.mu.Unlock()
	return rt, nil
}

// normalize applies defaults and validates the spec, returning the
// normalized copy.
func normalize(spec Spec) (Spec, error) {
	if err := coverage.Validate(spec.Scenario, spec.Objectives); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	m := len(spec.Scenario.PoIs)
	if spec.Plan == nil {
		return Spec{}, fmt.Errorf("%w: nil plan", ErrSpec)
	}
	if len(spec.Plan.TransitionMatrix) != m {
		return Spec{}, fmt.Errorf("%w: plan has %d rows for %d PoIs",
			ErrSpec, len(spec.Plan.TransitionMatrix), m)
	}
	if fp := spec.Plan.Fleet; fp != nil {
		if fp.Sensors < 2 {
			return Spec{}, fmt.Errorf("%w: fleet plan with %d sensors", ErrSpec, fp.Sensors)
		}
		if len(fp.TransitionMatrices) != fp.Sensors {
			return Spec{}, fmt.Errorf("%w: fleet plan has %d matrices for %d sensors",
				ErrSpec, len(fp.TransitionMatrices), fp.Sensors)
		}
		for s, rows := range fp.TransitionMatrices {
			if len(rows) != m {
				return Spec{}, fmt.Errorf("%w: fleet matrix %d has %d rows for %d PoIs",
					ErrSpec, s, len(rows), m)
			}
		}
		if fp.Responsibility != nil && len(fp.Responsibility) != fp.Sensors {
			return Spec{}, fmt.Errorf("%w: %d responsibility rows for %d sensors",
				ErrSpec, len(fp.Responsibility), fp.Sensors)
		}
	}
	if spec.TickMillis < 0 {
		return Spec{}, fmt.Errorf("%w: negative tickMillis %d", ErrSpec, spec.TickMillis)
	}
	d := &spec.Drift
	if d.Window == 0 {
		d.Window = DefaultWindow
	}
	if d.CheckEvery == 0 {
		d.CheckEvery = DefaultCheckEvery
	}
	if d.MinSamples == 0 {
		d.MinSamples = DefaultMinSamples
	}
	if d.Smoothing == 0 {
		d.Smoothing = DefaultSmoothing
	}
	if d.Threshold == 0 {
		d.Threshold = DefaultThreshold
	}
	if d.Cooldown == 0 {
		d.Cooldown = d.Window
	}
	if d.Window < 2 || d.CheckEvery < 1 || d.Cooldown < 0 {
		return Spec{}, fmt.Errorf("%w: drift window %d / checkEvery %d / cooldown %d",
			ErrSpec, d.Window, d.CheckEvery, d.Cooldown)
	}
	if d.MinSamples < 2 {
		d.MinSamples = 2
	}
	if d.MinSamples > d.Window {
		return Spec{}, fmt.Errorf("%w: minSamples %d exceeds window %d", ErrSpec, d.MinSamples, d.Window)
	}
	if d.Smoothing < 0 || math.IsNaN(d.Smoothing) || math.IsInf(d.Smoothing, 0) {
		return Spec{}, fmt.Errorf("%w: smoothing %v", ErrSpec, d.Smoothing)
	}
	if math.IsNaN(d.Threshold) {
		return Spec{}, fmt.Errorf("%w: NaN threshold", ErrSpec)
	}
	if spec.Reopt.Restarts == 0 {
		spec.Reopt.Restarts = 1
	}
	if spec.Reopt.Restarts < 0 || spec.Reopt.Options.Workers < 0 {
		return Spec{}, fmt.Errorf("%w: reopt restarts %d / workers %d",
			ErrSpec, spec.Reopt.Restarts, spec.Reopt.Options.Workers)
	}
	// The warm start is owned by the runtime; drop anything smuggled in.
	spec.Reopt.Options.InitialMatrix = nil
	spec.Reopt.Options.InitialMatrices = nil
	spec.Reopt.Options.OnProgress = nil
	spec.Reopt.Options.OnIteration = nil
	if len(spec.IncidentRates) == 1 && m > 1 {
		uniform := make([]float64, m)
		for i := range uniform {
			uniform[i] = spec.IncidentRates[0]
		}
		spec.IncidentRates = uniform
	}
	if n := len(spec.IncidentRates); n != 0 && n != m {
		return Spec{}, fmt.Errorf("%w: %d incident rates for %d PoIs", ErrSpec, n, m)
	}
	for i, r := range spec.IncidentRates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return Spec{}, fmt.Errorf("%w: incident rate[%d] = %v", ErrSpec, i, r)
		}
	}
	return spec, nil
}

// newDeployment builds the in-memory record for a normalized spec. The
// executor is seeded from spec.Seed, the incident process from a split of
// it; the start position is recorded as step 0.
func newDeployment(id string, spec Spec) (*deployment, error) {
	m := len(spec.Scenario.PoIs)
	var exec *coverage.Executor
	var execs []*coverage.Executor
	var err error
	if spec.Plan.Fleet != nil {
		execs, err = newFleetExecutors(spec.Plan, spec.Start, spec.Seed, m)
		if err != nil {
			return nil, err
		}
		exec = execs[0]
	} else {
		exec, err = coverage.NewExecutor(spec.Plan, spec.Start, spec.Seed)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpec, err)
		}
	}
	d := &deployment{
		id:          id,
		spec:        spec,
		state:       StateActive,
		created:     time.Now().UTC(),
		plan:        spec.Plan,
		exec:        exec,
		visits:      make([]int64, m),
		window:      make([]int, spec.Drift.Window),
		lastVisit:   make([]int, m),
		segCount:    make([]int64, m),
		segSum:      make([]int64, m),
		segMax:      make([]int64, m),
		lastTrigger: -spec.Drift.Cooldown - 1,
		subs:        make(map[int]chan Event),
	}
	for i := range d.lastVisit {
		d.lastVisit[i] = -1
	}
	if execs != nil {
		d.execs = execs
		d.fleetWins = make([][]int, len(execs))
		for s := range d.fleetWins {
			d.fleetWins[s] = make([]int, spec.Drift.Window)
		}
	}
	if len(spec.IncidentRates) > 0 {
		// Split the seed so executor draws and incident arrivals are
		// independent streams from one master seed. Fleet executor seeds
		// come from the same master's earlier splits (fleetSeeds), so the
		// incident stream splits after them to stay independent.
		src := rng.New(spec.Seed)
		for range d.execs {
			src.Split()
		}
		d.inc = newIncidents(spec.IncidentRates, src.Split().Uint64())
	}
	if d.execs != nil {
		starts := make([]int, len(d.execs))
		for s := range starts {
			starts[s] = fleetStart(spec.Start, s, m)
		}
		d.recordFleetStep(starts)
	} else {
		d.recordStep(spec.Start)
	}
	return d, nil
}

// Create validates the spec and starts a new deployment.
func (rt *Runtime) Create(spec Spec) (View, error) {
	spec, err := normalize(spec)
	if err != nil {
		return View{}, err
	}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return View{}, ErrShuttingDown
	}
	if len(rt.deps) >= rt.cfg.MaxDeployments {
		rt.mu.Unlock()
		return View{}, ErrLimit
	}
	rt.seq++
	id := fmt.Sprintf("dep-%06d", rt.seq)
	d, err := newDeployment(id, spec)
	if err != nil {
		rt.seq--
		rt.mu.Unlock()
		return View{}, err
	}
	rt.deps[id] = d
	rt.order = append(rt.order, id)
	rt.startTicker(d)
	v := d.view()
	rt.mu.Unlock()

	rt.log.InfoContext(obs.WithDeploymentID(context.Background(), id), "deployment created",
		slog.String("scenario", spec.Scenario.Name),
		slog.Float64("planCost", spec.Plan.Cost),
		slog.Int("sensors", fleetSize(spec.Plan)),
		slog.Int("tickMillis", spec.TickMillis))
	if spec.Plan.Fleet != nil {
		rt.met.fleetDeps.Inc()
	}
	rt.persist(d, true)
	return v, nil
}

// Get returns a snapshot of one deployment.
func (rt *Runtime) Get(id string) (View, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	d, ok := rt.deps[id]
	if !ok {
		return View{}, ErrNotFound
	}
	return d.view(), nil
}

// List returns snapshots of every deployment in creation order.
func (rt *Runtime) List() []View {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]View, 0, len(rt.order))
	for _, id := range rt.order {
		out = append(out, rt.deps[id].view())
	}
	return out
}

// Advance draws `steps` transitions from the deployed plan and applies
// them. A pending re-optimization job is resolved (and the plan swapped)
// before the first draw.
func (rt *Runtime) Advance(id string, steps int) (View, error) {
	if steps < 1 || steps > rt.cfg.MaxAdvance {
		return View{}, fmt.Errorf("%w: advance of %d steps (max %d)", ErrSpec, steps, rt.cfg.MaxAdvance)
	}
	rt.mu.Lock()
	d, ok := rt.deps[id]
	if !ok {
		rt.mu.Unlock()
		return View{}, ErrNotFound
	}
	if d.state != StateActive {
		rt.mu.Unlock()
		return View{}, ErrStopped
	}
	rt.resolveReopt(d)
	if d.execs != nil {
		pois := make([]int, len(d.execs))
		for i := 0; i < steps; i++ {
			for s, e := range d.execs {
				pois[s] = e.Next()
			}
			rt.applyFleetStep(d, pois)
		}
	} else {
		for i := 0; i < steps; i++ {
			rt.applyStep(d, d.exec.Next())
		}
	}
	v := d.view()
	rt.mu.Unlock()

	rt.persist(d, false)
	return v, nil
}

// Observe applies an externally observed position sequence: the deployed
// sensor was seen at pois[0], then pois[1], … . Observations reposition
// the executor without consuming randomness, so self-driven and
// externally-driven segments can interleave freely.
func (rt *Runtime) Observe(id string, pois []int) (View, error) {
	if len(pois) == 0 || len(pois) > rt.cfg.MaxAdvance {
		return View{}, fmt.Errorf("%w: %d observations (max %d)", ErrSpec, len(pois), rt.cfg.MaxAdvance)
	}
	rt.mu.Lock()
	d, ok := rt.deps[id]
	if !ok {
		rt.mu.Unlock()
		return View{}, ErrNotFound
	}
	if d.state != StateActive {
		rt.mu.Unlock()
		return View{}, ErrStopped
	}
	if d.execs != nil {
		// Observations carry one position per step; a K-sensor fleet would
		// need K-tuples, and partially observed fleets raise attribution
		// questions (which sensor moved?) this runtime does not answer.
		rt.mu.Unlock()
		return View{}, fmt.Errorf("%w: observations are not supported for fleet deployments", ErrSpec)
	}
	m := len(d.visits)
	for i, p := range pois {
		if p < 0 || p >= m {
			rt.mu.Unlock()
			return View{}, fmt.Errorf("%w: observation %d = %d outside [0, %d)", ErrSpec, i, p, m)
		}
	}
	rt.resolveReopt(d)
	for _, p := range pois {
		// Jump cannot fail: the range was checked above.
		_ = d.exec.Jump(p)
		rt.applyStep(d, p)
	}
	v := d.view()
	rt.mu.Unlock()

	rt.persist(d, false)
	return v, nil
}

// Stop terminates a deployment. Its statistics and history remain
// queryable; its ticker and event streams shut down.
func (rt *Runtime) Stop(id string) (View, error) {
	rt.mu.Lock()
	d, ok := rt.deps[id]
	if !ok {
		rt.mu.Unlock()
		return View{}, ErrNotFound
	}
	if d.state != StateActive {
		v := d.view()
		rt.mu.Unlock()
		return v, ErrStopped
	}
	rt.stopLocked(d)
	v := d.view()
	rt.mu.Unlock()

	rt.persist(d, false)
	return v, nil
}

// stopLocked marks the deployment stopped, halts its ticker, emits the
// terminal event, and closes every subscriber. Callers hold rt.mu.
func (rt *Runtime) stopLocked(d *deployment) {
	d.state = StateStopped
	d.stopped = time.Now().UTC()
	if d.tickStop != nil {
		close(d.tickStop)
		d.tickStop = nil
	}
	rt.log.InfoContext(obs.WithDeploymentID(context.Background(), d.id), "deployment stopped",
		slog.Int("step", d.step))
	d.emit(Event{Type: "stopped", Deployment: d.id, Step: d.step})
	for _, ch := range d.subs {
		close(ch)
	}
	d.subs = make(map[int]chan Event)
}

// Subscribe attaches an event stream to a deployment. The returned cancel
// function detaches it; the channel closes when the deployment stops or
// the runtime shuts down.
func (rt *Runtime) Subscribe(id string) (<-chan Event, func(), error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	d, ok := rt.deps[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	if d.state != StateActive {
		return nil, nil, ErrStopped
	}
	d.subSeq++
	key := d.subSeq
	ch := make(chan Event, 64)
	d.subs[key] = ch
	cancel := func() {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		if _, live := d.subs[key]; live {
			delete(d.subs, key)
			close(ch)
		}
	}
	return ch, cancel, nil
}

// Stats summarizes the runtime for health checks and /metrics.
type Stats struct {
	Active        int   `json:"active"`
	Stopped       int   `json:"stopped"`
	StepsTotal    int64 `json:"stepsTotal"`
	DriftChecks   int64 `json:"driftChecks"`
	DriftTriggers int64 `json:"driftTriggers"`
	Swaps         int64 `json:"swaps"`
	PendingReopts int   `json:"pendingReopts"`
}

// Stat returns aggregate counters across all deployments.
func (rt *Runtime) Stat() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var s Stats
	for _, d := range rt.deps {
		if d.state == StateActive {
			s.Active++
		} else {
			s.Stopped++
		}
		s.StepsTotal += int64(d.step)
		s.DriftChecks += d.driftChecks
		s.DriftTriggers += d.driftTriggers
		s.Swaps += int64(len(d.swaps))
		if d.reoptJob != "" {
			s.PendingReopts++
		}
	}
	return s
}

// Shutdown stops tickers and event streams, checkpoints every
// deployment, and leaves active deployments active on disk so a restart
// resumes them. It does not stop the job manager.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	rt.closed = true
	var all []*deployment
	for _, d := range rt.deps {
		all = append(all, d)
		if d.tickStop != nil {
			close(d.tickStop)
			d.tickStop = nil
		}
		for _, ch := range d.subs {
			close(ch)
		}
		d.subs = make(map[int]chan Event)
	}
	rt.mu.Unlock()
	rt.wg.Wait()
	for _, d := range all {
		rt.persist(d, false)
	}
}

// startTicker launches the self-advancing goroutine for deployments with
// TickMillis set. Callers hold rt.mu; only active deployments tick.
func (rt *Runtime) startTicker(d *deployment) {
	if d.spec.TickMillis <= 0 || d.state != StateActive || rt.closed {
		return
	}
	stop := make(chan struct{})
	d.tickStop = stop
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		t := time.NewTicker(time.Duration(d.spec.TickMillis) * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				// Advance re-checks liveness under the lock; an error here
				// means the deployment stopped between the tick and the call.
				_, _ = rt.Advance(d.id, 1)
			}
		}
	}()
}

// applyStep records one position (drawn or observed) and runs the drift
// check at its cadence. Callers hold rt.mu.
func (rt *Runtime) applyStep(d *deployment, poi int) {
	d.recordStep(poi)
	if d.step%d.spec.Drift.CheckEvery == 0 {
		rt.checkDrift(d)
	}
}

// applyFleetStep is applyStep for one lockstep fleet position vector.
// Callers hold rt.mu.
func (rt *Runtime) applyFleetStep(d *deployment, pois []int) {
	d.recordFleetStep(pois)
	if d.step%d.spec.Drift.CheckEvery == 0 {
		rt.checkDrift(d)
	}
}

// recordStep updates the trajectory window, coverage counts, exposure
// segments, and the incident process for one recorded position.
func (d *deployment) recordStep(poi int) {
	now := d.step
	d.step++
	d.visits[poi]++
	// Ring-buffer append.
	if d.winLen < len(d.window) {
		d.window[(d.winStart+d.winLen)%len(d.window)] = poi
		d.winLen++
	} else {
		d.window[d.winStart] = poi
		d.winStart = (d.winStart + 1) % len(d.window)
	}
	if last := d.lastVisit[poi]; last >= 0 {
		seg := int64(now - last)
		d.segCount[poi]++
		d.segSum[poi] += seg
		if seg > d.segMax[poi] {
			d.segMax[poi] = seg
		}
	}
	d.lastVisit[poi] = now
	if d.inc != nil {
		d.inc.step(now, poi)
	}
}

// windowSlice materializes the ring buffer oldest-first.
func (d *deployment) windowSlice() []int {
	out := make([]int, d.winLen)
	for i := 0; i < d.winLen; i++ {
		out[i] = d.window[(d.winStart+i)%len(d.window)]
	}
	return out
}

// checkDrift fits the window estimate, scores it against the deployed
// plan, and submits a warm-started re-optimization when warranted.
// Callers hold rt.mu.
func (rt *Runtime) checkDrift(d *deployment) {
	if d.winLen < d.spec.Drift.MinSamples {
		return
	}
	var rep *DriftReport
	var estimate [][]float64   // single-sensor warm start
	var fleetEst [][][]float64 // fleet warm start (per-sensor estimates)
	var err error
	if d.execs != nil {
		rep, fleetEst, _, err = d.fleetDriftReport()
	} else {
		rep, estimate, err = driftReport(d.windowSlice(), d.plan, d.spec.Scenario.Target, d.spec.Drift.Smoothing)
	}
	if err != nil {
		d.lastError = fmt.Sprintf("drift check: %v", err)
		d.emit(Event{Type: "error", Deployment: d.id, Step: d.step, Data: d.lastError})
		return
	}
	rep.Step = d.step
	d.driftChecks++
	rt.met.driftScore.Observe(rep.Score)
	lctx := obs.WithDeploymentID(context.Background(), d.id)

	thr := d.spec.Drift.Threshold
	canTrigger := (rt.cfg.Jobs != nil || rt.cfg.Plans != nil) && thr >= 0 && rep.Score >= thr &&
		d.reoptJob == "" && d.step-d.lastTrigger > d.spec.Drift.Cooldown
	if canTrigger && rt.cfg.Plans != nil {
		// Before paying for a search: the library may already hold this
		// exact problem at a cost below the deployed plan's (published by
		// another deployment, a direct query, or an earlier job). An exact
		// hit that improves on what is running swaps in immediately. Fleet
		// deployments consult the fleet key space (same fleet size and
		// responsibility) when the library supports it.
		var cached *coverage.Plan
		var dist float64
		var ok bool
		if d.execs != nil {
			if fl, fleetLib := rt.cfg.Plans.(FleetPlanLibrary); fleetLib {
				var resp [][]float64
				if d.plan.Fleet != nil {
					resp = d.plan.Fleet.Responsibility
				}
				cached, dist, ok = fl.WarmStartFleet(d.spec.Scenario, d.spec.Objectives, fleetSize(d.plan), resp)
			}
		} else {
			cached, dist, ok = rt.cfg.Plans.WarmStart(d.spec.Scenario, d.spec.Objectives)
		}
		if ok && dist == 0 && cached.Cost < d.plan.Cost {
			rep.Triggered = true
			d.driftTriggers++
			d.lastTrigger = d.step
			d.lastError = ""
			d.lastDrift = rep
			rt.log.InfoContext(lctx, "drift resolved from plan library",
				slog.Float64("score", rep.Score),
				slog.Int("step", d.step),
				slog.Float64("cachedCost", cached.Cost))
			d.emit(Event{Type: "trigger", Deployment: d.id, Step: d.step, Data: rep})
			rt.swapTo(d, cached, "")
			return
		}
	}
	if canTrigger && rt.cfg.Jobs != nil {
		var spec jobs.Spec
		if d.execs != nil {
			spec = d.fleetReoptSpec(fleetEst)
		} else {
			opts := d.spec.Reopt.Options
			opts.InitialMatrix = estimate
			spec = jobs.Spec{
				Scenario:   d.spec.Scenario,
				Objectives: d.spec.Objectives,
				Options:    opts,
				Restarts:   d.spec.Reopt.Restarts,
			}
		}
		v, err := rt.cfg.Jobs.SubmitCtx(lctx, spec)
		if err != nil {
			// Queue full or shutting down: report and retry at the next
			// check rather than dropping the trigger permanently.
			d.lastError = fmt.Sprintf("reopt submit: %v", err)
			rt.log.WarnContext(lctx, "re-optimization submit failed",
				slog.String("error", err.Error()))
			d.emit(Event{Type: "error", Deployment: d.id, Step: d.step, Data: d.lastError})
		} else {
			rep.Triggered = true
			d.reoptJob = v.ID
			d.driftTriggers++
			d.lastTrigger = d.step
			d.lastError = ""
			rt.log.InfoContext(obs.WithJobID(lctx, v.ID), "drift triggered re-optimization",
				slog.Float64("score", rep.Score),
				slog.Int("step", d.step))
		}
	}
	d.lastDrift = rep
	if rep.Triggered {
		d.emit(Event{Type: "trigger", Deployment: d.id, Step: d.step, Data: rep})
	} else {
		rt.log.DebugContext(lctx, "drift check",
			slog.Float64("score", rep.Score),
			slog.Int("step", d.step))
		d.emit(Event{Type: "drift", Deployment: d.id, Step: d.step, Data: rep})
	}
}

// NoteJobProgress forwards a job progress sample onto the event stream
// of the deployment waiting on that job (if any) as a "reopt-progress"
// event. Wire it to jobs.Manager.SetProgressListener so subscribers
// watching a drifting deployment see its re-optimization converge live.
func (rt *Runtime) NoteJobProgress(jobID string, p coverage.Progress) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, d := range rt.deps {
		if d.reoptJob == jobID {
			d.emit(Event{Type: "reopt-progress", Deployment: d.id, Step: d.step, Data: p})
			return
		}
	}
}

// resolveReopt settles a pending re-optimization job: done → hot-swap,
// failed/cancelled → clear. Callers hold rt.mu.
func (rt *Runtime) resolveReopt(d *deployment) {
	if d.reoptJob == "" || rt.cfg.Jobs == nil {
		return
	}
	v, err := rt.cfg.Jobs.Get(d.reoptJob)
	if err != nil {
		// The job vanished (e.g. jobs run without persistence across a
		// restart); clear so drift can re-trigger.
		d.lastError = fmt.Sprintf("reopt job %s: %v", d.reoptJob, err)
		d.reoptJob = ""
		return
	}
	if !v.State.Terminal() {
		return
	}
	jobID := d.reoptJob
	d.reoptJob = ""
	if v.State != jobs.StateDone {
		d.lastError = fmt.Sprintf("reopt job %s ended %s", jobID, v.State)
		d.emit(Event{Type: "error", Deployment: d.id, Step: d.step, Data: d.lastError})
		return
	}
	plan, err := rt.cfg.Jobs.Plan(jobID)
	if err != nil {
		d.lastError = fmt.Sprintf("reopt job %s plan: %v", jobID, err)
		d.emit(Event{Type: "error", Deployment: d.id, Step: d.step, Data: d.lastError})
		return
	}
	rt.swapTo(d, plan, jobID)
}

// swapTo installs a new plan atomically: the executor keeps its position
// and random stream, the drift window resets so the next score reflects
// only post-swap behavior, and the swap is recorded. Callers hold rt.mu.
func (rt *Runtime) swapTo(d *deployment, plan *coverage.Plan, jobID string) {
	var err error
	if d.execs != nil {
		err = d.swapFleet(plan)
	} else if plan.Fleet != nil {
		err = fmt.Errorf("swap: fleet plan for a single-sensor deployment")
	} else {
		err = d.exec.SwapPlan(plan)
	}
	if err != nil {
		d.lastError = fmt.Sprintf("swap: %v", err)
		d.emit(Event{Type: "error", Deployment: d.id, Step: d.step, Data: d.lastError})
		return
	}
	rec := SwapRecord{
		Step:    d.step,
		JobID:   jobID,
		At:      time.Now().UTC(),
		OldCost: d.plan.Cost,
		NewCost: plan.Cost,
	}
	if d.lastDrift != nil {
		rec.DriftScore = d.lastDrift.Score
		rec.EmpiricalDeltaC = d.lastDrift.EmpiricalDeltaC
	}
	d.plan = plan
	d.swaps = append(d.swaps, rec)
	d.winStart, d.winLen = 0, 0
	d.lastDrift = nil
	d.lastError = ""
	lctx := obs.WithJobID(obs.WithDeploymentID(context.Background(), d.id), jobID)
	rt.log.InfoContext(lctx, "plan hot-swapped",
		slog.Int("step", d.step),
		slog.Float64("oldCost", rec.OldCost),
		slog.Float64("newCost", rec.NewCost))
	d.emit(Event{Type: "swap", Deployment: d.id, Step: d.step, Data: rec})
	if rt.cfg.Plans != nil && jobID != "" {
		// Feed the adopted plan back into the library (best-cost wins
		// there, so a worse duplicate is a no-op). Library-sourced swaps
		// (jobID == "") are already cached.
		rt.cfg.Plans.PublishPlan(d.spec.Scenario, d.spec.Objectives, plan, jobID)
	}
}

// emit fans an event out to subscribers, dropping it for any subscriber
// whose buffer is full (a slow SSE client must not stall the walk).
// Callers hold rt.mu.
func (d *deployment) emit(ev Event) {
	for _, ch := range d.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// view snapshots the deployment; callers hold rt.mu.
func (d *deployment) view() View {
	m := len(d.visits)
	v := View{
		ID:            d.id,
		State:         d.state,
		Scenario:      d.spec.Scenario.Name,
		Created:       d.created,
		Step:          d.step,
		Current:       d.exec.Current(),
		Faults:        d.exec.Faults(),
		PlanCost:      d.plan.Cost,
		Coverage:      make([]float64, m),
		Target:        append([]float64(nil), d.spec.Scenario.Target...),
		OpenExposure:  make([]int64, m),
		MeanExposure:  make([]float64, m),
		MaxExposure:   append([]int64(nil), d.segMax...),
		DriftChecks:   d.driftChecks,
		DriftTriggers: d.driftTriggers,
		ReoptJob:      d.reoptJob,
		Swaps:         append([]SwapRecord(nil), d.swaps...),
		LastError:     d.lastError,
	}
	if d.execs != nil {
		v.Sensors = len(d.execs)
		v.Positions = make([]int, len(d.execs))
		v.Faults = 0
		for s, e := range d.execs {
			v.Positions[s] = e.Current()
			v.Faults += e.Faults()
		}
	}
	if !d.stopped.IsZero() {
		t := d.stopped
		v.Stopped = &t
	}
	for i := 0; i < m; i++ {
		v.Coverage[i] = float64(d.visits[i]) / float64(d.step)
		g := v.Coverage[i] - v.Target[i]
		v.EmpiricalDeltaC += g * g
		if d.lastVisit[i] >= 0 {
			v.OpenExposure[i] = int64(d.step - 1 - d.lastVisit[i])
		} else {
			v.OpenExposure[i] = int64(d.step)
		}
		if d.segCount[i] > 0 {
			v.MeanExposure[i] = float64(d.segSum[i]) / float64(d.segCount[i])
		}
	}
	if d.lastDrift != nil {
		rep := *d.lastDrift
		v.Drift = &rep
	}
	if d.inc != nil {
		v.Incidents = d.inc.stats()
	}
	return v
}
