package deploy

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Handler returns the runtime's HTTP/JSON API:
//
//	POST   /deployments                    create from a Spec, 201 + snapshot
//	GET    /deployments                    list all deployments
//	GET    /deployments/{id}               one deployment with live statistics
//	DELETE /deployments/{id}               stop a deployment
//	POST   /deployments/{id}/advance       draw N plan steps: {"steps": N}
//	POST   /deployments/{id}/observations  record observed PoIs: {"pois": [..]}
//	GET    /deployments/{id}/events        live event stream (SSE)
//
// Error responses are JSON objects {"error": "..."} with the usual status
// mapping (400 bad spec, 404 unknown deployment, 409 stopped, 503 full or
// shutting down).
func (rt *Runtime) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /deployments", rt.handleCreate)
	mux.HandleFunc("GET /deployments", rt.handleList)
	mux.HandleFunc("GET /deployments/{id}", rt.handleGet)
	mux.HandleFunc("DELETE /deployments/{id}", rt.handleStop)
	mux.HandleFunc("POST /deployments/{id}/advance", rt.handleAdvance)
	mux.HandleFunc("POST /deployments/{id}/observations", rt.handleObserve)
	mux.HandleFunc("GET /deployments/{id}/events", rt.handleEvents)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps a service error onto an HTTP status and JSON body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrSpec):
		status = http.StatusBadRequest
	case errors.Is(err, ErrStopped):
		status = http.StatusConflict
	case errors.Is(err, ErrLimit), errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (rt *Runtime) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrSpec, err))
		return
	}
	view, err := rt.Create(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/deployments/"+view.ID)
	writeJSON(w, http.StatusCreated, view)
}

func (rt *Runtime) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"deployments": rt.List()})
}

func (rt *Runtime) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := rt.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (rt *Runtime) handleStop(w http.ResponseWriter, r *http.Request) {
	view, err := rt.Stop(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (rt *Runtime) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Steps int `json:"steps"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrSpec, err))
		return
	}
	if req.Steps == 0 {
		req.Steps = 1
	}
	view, err := rt.Advance(r.PathValue("id"), req.Steps)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (rt *Runtime) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req struct {
		PoIs []int `json:"pois"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrSpec, err))
		return
	}
	view, err := rt.Observe(r.PathValue("id"), req.PoIs)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleEvents streams the deployment's events as server-sent events:
// one `event: <type>` / `data: <json Event>` pair per emission. The
// stream ends when the deployment stops, the runtime shuts down, or the
// client disconnects.
func (rt *Runtime) handleEvents(w http.ResponseWriter, r *http.Request) {
	events, cancel, err := rt.Subscribe(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()

	if _, ok := w.(http.Flusher); !ok {
		writeError(w, errors.New("deploy: response writer does not support streaming"))
		return
	}
	// The controller surfaces flush errors that a bare http.Flusher
	// swallows. A peer that vanished without the request context firing
	// (half-closed proxy hop, dead TCP session) shows up as a failed
	// write or flush; returning on the first one lets the deferred
	// cancel detach the subscriber instead of streaming into the void
	// until the deployment stops.
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		return
	}

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-events:
			if !open {
				return
			}
			blob, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, blob); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}
