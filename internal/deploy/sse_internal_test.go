package deploy

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/coverage"
)

var errBrokenPipe = errors.New("simulated broken pipe")

// brokenPipeWriter is a streaming ResponseWriter whose connection
// "breaks" after the headers go out: every later flush fails, but the
// request context never fires — the shape of a half-closed proxy hop or
// a dead TCP peer. Flush satisfies the handler's upfront streaming
// check; FlushError is what http.NewResponseController consults, so the
// failure surfaces exactly where a real kernel send buffer would report
// it.
type brokenPipeWriter struct {
	mu      sync.Mutex
	header  http.Header
	flushes int
}

func (w *brokenPipeWriter) Header() http.Header {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}

func (w *brokenPipeWriter) WriteHeader(int) {}

func (w *brokenPipeWriter) Write(b []byte) (int, error) { return len(b), nil }

func (w *brokenPipeWriter) Flush() {}

func (w *brokenPipeWriter) FlushError() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushes++
	if w.flushes > 1 { // the first flush pushes the SSE headers out
		return errBrokenPipe
	}
	return nil
}

// TestEventStreamDetachesOnFlushError: a subscriber whose writes stop
// reaching the client must be torn down on the first failed flush —
// handler goroutine gone, subscriber channel detached — not kept
// streaming into the void until the deployment stops.
func TestEventStreamDetachesOnFlushError(t *testing.T) {
	scn, err := coverage.LineScenario("deploy-sse", 3, []float64{0.2, 0.3, 0.5})
	if err != nil {
		t.Fatalf("LineScenario: %v", err)
	}
	obj := coverage.Objectives{Alpha: 1, Beta: 1e-3}
	plan, err := coverage.Optimize(scn, obj, coverage.Options{MaxIters: 400, Seed: 11})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	rt, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Shutdown()
	v, err := rt.Create(Spec{
		Scenario: scn, Objectives: obj, Plan: plan, Seed: 9,
		Drift: DriftConfig{Window: 128, CheckEvery: 32, MinSamples: 64, Threshold: -1},
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	subCount := func() int {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		return len(rt.deps[v.ID].subs)
	}

	before := runtime.NumGoroutine()
	w := &brokenPipeWriter{}
	req := httptest.NewRequest(http.MethodGet, "/deployments/"+v.ID+"/events", nil)
	req.SetPathValue("id", v.ID)
	done := make(chan struct{})
	go func() {
		rt.handleEvents(w, req)
		close(done)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for subCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if subCount() != 1 {
		t.Fatal("handler never subscribed")
	}

	// Each Advance crosses drift checkpoints and emits events; the first
	// one the handler relays hits the broken flush and must end the
	// stream.
	for {
		select {
		case <-done:
		default:
			if time.Now().After(deadline) {
				t.Fatal("handler still streaming after flush errors")
			}
			if _, err := rt.Advance(v.ID, 64); err != nil {
				t.Fatalf("Advance: %v", err)
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		break
	}

	if n := subCount(); n != 0 {
		t.Errorf("subscriber channels still attached after detach: %d", n)
	}
	after := runtime.NumGoroutine()
	for i := 0; i < 100 && after > before; i++ {
		time.Sleep(10 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before {
		t.Errorf("goroutines: %d before handler, %d after detach", before, after)
	}
}
