package deploy_test

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/coverage"
	"repro/internal/deploy"
	"repro/internal/jobs"
	"repro/internal/rng"
)

// fleetPlan builds a jointly optimized 2-sensor plan for the shared
// line scenario.
func fleetPlan(t *testing.T, scn coverage.Scenario, obj coverage.Objectives) *coverage.Plan {
	t.Helper()
	plan, err := coverage.OptimizeFleet(scn, obj, coverage.Options{MaxIters: 300, Seed: 11}, 2, nil)
	if err != nil {
		t.Fatalf("OptimizeFleet: %v", err)
	}
	return plan
}

func TestFleetCreateValidation(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := fleetPlan(t, scn, obj)
	rt := newRuntime(t, deploy.Config{})

	short := *plan
	shortFleet := *plan.Fleet
	shortFleet.TransitionMatrices = shortFleet.TransitionMatrices[:1]
	short.Fleet = &shortFleet
	if _, err := rt.Create(deploy.Spec{Scenario: scn, Objectives: obj, Plan: &short}); !errors.Is(err, deploy.ErrSpec) {
		t.Errorf("short matrix stack: got %v, want ErrSpec", err)
	}

	tiny := *plan
	tinyFleet := *plan.Fleet
	tinyFleet.Sensors = 1
	tiny.Fleet = &tinyFleet
	if _, err := rt.Create(deploy.Spec{Scenario: scn, Objectives: obj, Plan: &tiny}); !errors.Is(err, deploy.ErrSpec) {
		t.Errorf("1-sensor fleet: got %v, want ErrSpec", err)
	}

	// Observations are a single-sensor protocol.
	v, err := rt.Create(deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan, Seed: 5})
	if err != nil {
		t.Fatalf("Create fleet: %v", err)
	}
	if _, err := rt.Observe(v.ID, []int{0, 1}); !errors.Is(err, deploy.ErrSpec) {
		t.Errorf("fleet Observe: got %v, want ErrSpec", err)
	}
}

// TestFleetAdvanceMatchesStandaloneExecutors pins the fleet execution
// contract: K executors with seeds split from the master (in sensor
// order) and ring-staggered starts, advanced in lockstep, with union
// coverage statistics.
func TestFleetAdvanceMatchesStandaloneExecutors(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := fleetPlan(t, scn, obj)
	rt := newRuntime(t, deploy.Config{})

	const seed, start = 42, 1
	v, err := rt.Create(deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan, Start: start, Seed: seed})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if v.Sensors != 2 || len(v.Positions) != 2 {
		t.Fatalf("fresh fleet view: sensors %d positions %v", v.Sensors, v.Positions)
	}
	if v.Positions[0] != start || v.Positions[1] != (start+1)%3 {
		t.Fatalf("staggered starts = %v, want [%d %d]", v.Positions, start, (start+1)%3)
	}

	// Reproduce the runtime's executors: seeds are sequential splits of
	// the master seed, sensor s starts at (start+s) mod M.
	master := rng.New(seed)
	finals := make([]int, 2)
	for s := 0; s < 2; s++ {
		p := *plan
		p.TransitionMatrix = plan.Fleet.TransitionMatrices[s]
		exec, err := coverage.NewExecutor(&p, (start+s)%3, master.Split().Uint64())
		if err != nil {
			t.Fatalf("NewExecutor sensor %d: %v", s, err)
		}
		walk := exec.Walk(500)
		finals[s] = walk[len(walk)-1]
	}

	v, err = rt.Advance(v.ID, 500)
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if v.Step != 501 {
		t.Fatalf("step = %d, want 501", v.Step)
	}
	if v.Positions[0] != finals[0] || v.Positions[1] != finals[1] {
		t.Fatalf("positions = %v, want %v (fleet must replay per-sensor streams)", v.Positions, finals)
	}
	if v.Current != finals[0] {
		t.Errorf("Current = %d, want sensor 0's position %d", v.Current, finals[0])
	}
	// Union coverage: per-step fractions, so the sum over PoIs is at most
	// the fleet size and each entry at most 1.
	var total float64
	for i, c := range v.Coverage {
		if c < 0 || c > 1 {
			t.Errorf("coverage[%d] = %v outside [0, 1]", i, c)
		}
		total += c
	}
	if total > 2+1e-12 || total < 1 {
		t.Errorf("union coverage sums to %v, want within [1, 2]", total)
	}
}

// TestFleetClosedLoopReoptimization drives a fleet deployment until a
// drift check fires (a tight threshold turns sampling noise into the
// trigger), and checks the submitted job is a joint fleet job
// warm-started from all K window estimates, whose result hot-swaps
// every executor.
func TestFleetClosedLoopReoptimization(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := fleetPlan(t, scn, obj)

	jobsDir := t.TempDir()
	mgr, err := jobs.New(jobs.Config{Workers: 1, Dir: jobsDir})
	if err != nil {
		t.Fatalf("jobs.New: %v", err)
	}
	defer mgr.Shutdown(context.Background())

	rt := newRuntime(t, deploy.Config{Jobs: mgr})
	v, err := rt.Create(deploy.Spec{
		Scenario:   scn,
		Objectives: obj,
		Plan:       plan,
		Seed:       3,
		Drift: deploy.DriftConfig{Window: 256, CheckEvery: 64, MinSamples: 128,
			Threshold: 0.001, Cooldown: 1 << 30},
		Reopt: deploy.ReoptConfig{Options: coverage.Options{MaxIters: 200, Seed: 21}},
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	for i := 0; i < 50 && v.DriftTriggers == 0; i++ {
		v, err = rt.Advance(v.ID, 64)
		if err != nil {
			t.Fatalf("Advance: %v", err)
		}
	}
	if v.DriftTriggers == 0 {
		t.Fatalf("fleet drift never triggered; last report: %+v", v.Drift)
	}
	jobID := v.ReoptJob
	if jobID == "" {
		t.Fatal("trigger did not record a re-optimization job")
	}

	// The checkpointed job spec must be a fleet job warm-started from the
	// per-sensor window estimates.
	blob, err := os.ReadFile(filepath.Join(jobsDir, jobID+".job.json"))
	if err != nil {
		t.Fatalf("read job checkpoint: %v", err)
	}
	var env struct {
		Job struct {
			Sensors int              `json:"sensors"`
			Options coverage.Options `json:"options"`
		} `json:"job"`
	}
	if err := json.Unmarshal(blob, &env); err != nil {
		t.Fatalf("decode job checkpoint: %v", err)
	}
	if env.Job.Sensors != 2 {
		t.Fatalf("re-optimization sensors = %d, want 2", env.Job.Sensors)
	}
	if len(env.Job.Options.InitialMatrices) != 2 {
		t.Fatalf("joint re-optimization not warm-started: %d initial matrices",
			len(env.Job.Options.InitialMatrices))
	}

	waitForJob(t, mgr, jobID)
	v, err = rt.Advance(v.ID, 1)
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if len(v.Swaps) != 1 || v.Swaps[0].JobID != jobID {
		t.Fatalf("swaps = %+v, want exactly one from %s", v.Swaps, jobID)
	}
	if v.ReoptJob != "" {
		t.Errorf("reopt job still pending after swap: %s", v.ReoptJob)
	}
	if v.LastError != "" {
		t.Errorf("swap left error: %s", v.LastError)
	}
}

// fleetLib is a fake plan library implementing the optional fleet
// extension: it records publishes and serves one canned fleet plan as
// an exact hit.
type fleetLib struct {
	mu        sync.Mutex
	exact     *coverage.Plan
	published int
}

func (f *fleetLib) WarmStart(coverage.Scenario, coverage.Objectives) (*coverage.Plan, float64, bool) {
	return nil, 0, false
}

func (f *fleetLib) PublishPlan(_ coverage.Scenario, _ coverage.Objectives, _ *coverage.Plan, _ string) {
	f.mu.Lock()
	f.published++
	f.mu.Unlock()
}

func (f *fleetLib) WarmStartFleet(_ coverage.Scenario, _ coverage.Objectives, sensors int, _ [][]float64) (*coverage.Plan, float64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.exact == nil || f.exact.Fleet == nil || f.exact.Fleet.Sensors != sensors {
		return nil, 0, false
	}
	return f.exact, 0, true
}

// TestFleetDriftResolvesFromLibrary: a drifting fleet deployment whose
// library holds a cheaper exact joint plan swaps it in directly, with
// no job submitted.
func TestFleetDriftResolvesFromLibrary(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := fleetPlan(t, scn, obj)

	better, err := coverage.OptimizeFleet(scn, obj, coverage.Options{MaxIters: 2500, Seed: 19}, 2, nil)
	if err != nil {
		t.Fatalf("OptimizeFleet better: %v", err)
	}
	if better.Cost >= plan.Cost {
		t.Skipf("longer run did not improve cost (%v >= %v)", better.Cost, plan.Cost)
	}

	lib := &fleetLib{exact: better}
	rt := newRuntime(t, deploy.Config{Plans: lib})
	v, err := rt.Create(deploy.Spec{
		Scenario:   scn,
		Objectives: obj,
		Plan:       plan,
		Seed:       9,
		Drift: deploy.DriftConfig{Window: 256, CheckEvery: 64, MinSamples: 128,
			Threshold: 0.001, Cooldown: 1 << 30},
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < 50 && len(v.Swaps) == 0; i++ {
		v, err = rt.Advance(v.ID, 64)
		if err != nil {
			t.Fatalf("Advance: %v", err)
		}
	}
	if len(v.Swaps) != 1 {
		t.Fatalf("library-backed fleet drift produced %d swaps, want 1", len(v.Swaps))
	}
	if v.Swaps[0].JobID != "" {
		t.Errorf("library swap carries job ID %q", v.Swaps[0].JobID)
	}
	if v.Swaps[0].NewCost != better.Cost {
		t.Errorf("swapped cost %v, want library plan's %v", v.Swaps[0].NewCost, better.Cost)
	}
	if v.PlanCost != better.Cost {
		t.Errorf("deployed cost %v after swap, want %v", v.PlanCost, better.Cost)
	}
}

// TestFleetCheckpointResume: a fleet deployment resumed mid-run must be
// bit-for-bit indistinguishable from an uninterrupted control — every
// sensor's random stream, the per-sensor windows, union statistics, and
// the incident process all survive the round trip.
func TestFleetCheckpointResume(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := fleetPlan(t, scn, obj)
	spec := deploy.Spec{
		Scenario:      scn,
		Objectives:    obj,
		Plan:          plan,
		Seed:          8,
		Drift:         deploy.DriftConfig{Window: 256, CheckEvery: 64, Threshold: -1},
		IncidentRates: []float64{0.02},
	}

	control := newRuntime(t, deploy.Config{})
	cv, err := control.Create(spec)
	if err != nil {
		t.Fatalf("Create control: %v", err)
	}
	cv, err = control.Advance(cv.ID, 1000)
	if err != nil {
		t.Fatalf("Advance control: %v", err)
	}

	dir := t.TempDir()
	rt1, err := deploy.New(deploy.Config{Dir: dir})
	if err != nil {
		t.Fatalf("deploy.New: %v", err)
	}
	rv, err := rt1.Create(spec)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := rt1.Advance(rv.ID, 500); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	rt1.Shutdown()

	rt2 := newRuntime(t, deploy.Config{Dir: dir})
	mid, err := rt2.Get(rv.ID)
	if err != nil {
		t.Fatalf("Get after restart: %v", err)
	}
	if mid.State != deploy.StateActive || mid.Step != 501 || mid.Sensors != 2 {
		t.Fatalf("resumed fleet: state %s step %d sensors %d, want active / 501 / 2",
			mid.State, mid.Step, mid.Sensors)
	}
	rv, err = rt2.Advance(rv.ID, 500)
	if err != nil {
		t.Fatalf("Advance after restart: %v", err)
	}

	if got, want := canonView(t, rv), canonView(t, cv); got != want {
		t.Errorf("resumed fleet run diverged from uninterrupted control:\nresumed: %s\ncontrol: %s", got, want)
	}
}
