package deploy_test

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/coverage"
	"repro/internal/deploy"
	"repro/internal/jobs"
)

// lineScenario is the shared 3-PoI test problem with a deliberately
// skewed target, so coverage deviations are easy to provoke and detect.
func lineScenario(t *testing.T) (coverage.Scenario, coverage.Objectives) {
	t.Helper()
	scn, err := coverage.LineScenario("deploy-line", 3, []float64{0.2, 0.3, 0.5})
	if err != nil {
		t.Fatalf("LineScenario: %v", err)
	}
	return scn, coverage.Objectives{Alpha: 1, Beta: 1e-3}
}

func optimizedPlan(t *testing.T, scn coverage.Scenario, obj coverage.Objectives) *coverage.Plan {
	t.Helper()
	plan, err := coverage.Optimize(scn, obj, coverage.Options{MaxIters: 800, Seed: 11})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	return plan
}

// biasedPlan is a maximally drifted chain: every row dumps 90% of its
// mass on PoI 0, so the walk all but abandons PoIs 1 and 2.
func biasedPlan() *coverage.Plan {
	row := []float64{0.9, 0.05, 0.05}
	return &coverage.Plan{TransitionMatrix: [][]float64{
		append([]float64(nil), row...),
		append([]float64(nil), row...),
		append([]float64(nil), row...),
	}}
}

func newRuntime(t *testing.T, cfg deploy.Config) *deploy.Runtime {
	t.Helper()
	rt, err := deploy.New(cfg)
	if err != nil {
		t.Fatalf("deploy.New: %v", err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

func TestCreateValidation(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := optimizedPlan(t, scn, obj)
	rt := newRuntime(t, deploy.Config{})

	cases := []struct {
		name string
		spec deploy.Spec
	}{
		{"nil plan", deploy.Spec{Scenario: scn, Objectives: obj}},
		{"wrong plan size", deploy.Spec{Scenario: scn, Objectives: obj, Plan: &coverage.Plan{
			TransitionMatrix: [][]float64{{0.5, 0.5}, {0.5, 0.5}},
		}}},
		{"bad start", deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan, Start: 7}},
		{"negative tick", deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan, TickMillis: -1}},
		{"minSamples over window", deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan,
			Drift: deploy.DriftConfig{Window: 16, MinSamples: 64}}},
		{"negative smoothing", deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan,
			Drift: deploy.DriftConfig{Smoothing: -1}}},
		{"bad incident rates", deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan,
			IncidentRates: []float64{0.1, 0.2}}},
		{"negative incident rate", deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan,
			IncidentRates: []float64{-0.1}}},
	}
	for _, tc := range cases {
		if _, err := rt.Create(tc.spec); !errors.Is(err, deploy.ErrSpec) {
			t.Errorf("%s: got %v, want ErrSpec", tc.name, err)
		}
	}
}

func TestAdvanceMatchesStandaloneExecutor(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := optimizedPlan(t, scn, obj)
	rt := newRuntime(t, deploy.Config{})

	v, err := rt.Create(deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan, Start: 1, Seed: 42})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if v.Step != 1 || v.Current != 1 {
		t.Fatalf("fresh deployment: step %d current %d, want 1 / 1", v.Step, v.Current)
	}

	exec, err := coverage.NewExecutor(plan, 1, 42)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	want := exec.Walk(500)

	v, err = rt.Advance(v.ID, 500)
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if v.Step != 501 {
		t.Fatalf("step = %d, want 501", v.Step)
	}
	if v.Current != want[len(want)-1] {
		t.Fatalf("current = %d, want %d (deployment must replay the executor's stream)", v.Current, want[len(want)-1])
	}

	var total float64
	counts := make([]int, 3)
	counts[1]++ // the recorded start
	for _, p := range want {
		counts[p]++
	}
	for i, c := range v.Coverage {
		total += c
		if got := float64(counts[i]) / 501; got != c {
			t.Errorf("coverage[%d] = %v, want %v", i, c, got)
		}
	}
	if diff := total - 1; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("coverage sums to %v, want 1", total)
	}
}

func TestObserveRecordsAndValidates(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := optimizedPlan(t, scn, obj)
	rt := newRuntime(t, deploy.Config{})

	v, err := rt.Create(deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan, Seed: 1})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := rt.Observe(v.ID, []int{0, 3}); !errors.Is(err, deploy.ErrSpec) {
		t.Fatalf("out-of-range observation: got %v, want ErrSpec", err)
	}
	if _, err := rt.Observe(v.ID, nil); !errors.Is(err, deploy.ErrSpec) {
		t.Fatalf("empty observation batch: got %v, want ErrSpec", err)
	}

	// Visit pattern 0,1,0,1,2: PoI 0's two visits are 2 steps apart, so one
	// exposure segment of 2 closes; PoI 2 stays open until its first visit.
	v, err = rt.Observe(v.ID, []int{1, 0, 1, 2})
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if v.Step != 5 || v.Current != 2 {
		t.Fatalf("after observations: step %d current %d, want 5 / 2", v.Step, v.Current)
	}
	if v.MeanExposure[0] != 2 || v.MaxExposure[0] != 2 {
		t.Errorf("PoI 0 exposure mean %v max %v, want 2 / 2", v.MeanExposure[0], v.MaxExposure[0])
	}
	if v.OpenExposure[2] != 0 {
		t.Errorf("PoI 2 open exposure = %d, want 0 (just visited)", v.OpenExposure[2])
	}

	if _, err := rt.Stop(v.ID); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if _, err := rt.Observe(v.ID, []int{0}); !errors.Is(err, deploy.ErrStopped) {
		t.Fatalf("observe after stop: got %v, want ErrStopped", err)
	}
	if _, err := rt.Advance(v.ID, 1); !errors.Is(err, deploy.ErrStopped) {
		t.Fatalf("advance after stop: got %v, want ErrStopped", err)
	}
}

// TestDriftSeparatesFaithfulFromPerturbed pins the detector's power: a
// sensor faithfully following the plan scores near zero, while one
// following a heavily perturbed chain scores far above the default
// threshold.
func TestDriftSeparatesFaithfulFromPerturbed(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := optimizedPlan(t, scn, obj)
	rt := newRuntime(t, deploy.Config{})

	drift := deploy.DriftConfig{Window: 512, CheckEvery: 64, MinSamples: 256, Threshold: -1}

	faithful, err := rt.Create(deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan, Seed: 5, Drift: drift})
	if err != nil {
		t.Fatalf("Create faithful: %v", err)
	}
	fv, err := rt.Advance(faithful.ID, 2000)
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if fv.Drift == nil || fv.DriftChecks == 0 {
		t.Fatalf("faithful deployment ran no drift checks: %+v", fv)
	}

	perturbed, err := rt.Create(deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan, Seed: 5, Drift: drift})
	if err != nil {
		t.Fatalf("Create perturbed: %v", err)
	}
	src, err := coverage.NewExecutor(biasedPlan(), 0, 99)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	pv, err := rt.Observe(perturbed.ID, src.Walk(2000))
	if err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if pv.Drift == nil {
		t.Fatal("perturbed deployment has no drift report")
	}

	if fv.Drift.Score >= deploy.DefaultThreshold {
		t.Errorf("faithful score %v crosses the default threshold %v", fv.Drift.Score, deploy.DefaultThreshold)
	}
	if pv.Drift.Score < 2*deploy.DefaultThreshold {
		t.Errorf("perturbed score %v too small to separate from threshold %v", pv.Drift.Score, deploy.DefaultThreshold)
	}
	if pv.Drift.Score <= fv.Drift.Score {
		t.Errorf("perturbed score %v not above faithful %v", pv.Drift.Score, fv.Drift.Score)
	}
	if pv.Drift.LogLikelihoodRatio <= fv.Drift.LogLikelihoodRatio {
		t.Errorf("perturbed LLR %v not above faithful %v", pv.Drift.LogLikelihoodRatio, fv.Drift.LogLikelihoodRatio)
	}
	if pv.Drift.EmpiricalDeltaC <= fv.Drift.EmpiricalDeltaC {
		t.Errorf("perturbed empirical ΔC %v not above faithful %v", pv.Drift.EmpiricalDeltaC, fv.Drift.EmpiricalDeltaC)
	}
	// Threshold -1 reports drift but never acts on it.
	if pv.DriftTriggers != 0 || pv.ReoptJob != "" {
		t.Errorf("disabled threshold still triggered: %+v", pv)
	}
}

// TestClosedLoopReoptimization is the end-to-end acceptance path: a
// deployment executing a deliberately perturbed chain crosses the drift
// threshold, auto-submits a warm-started re-optimization through the job
// manager, hot-swaps to the resulting plan, and the post-swap empirical
// coverage deviation is strictly lower than before the swap.
func TestClosedLoopReoptimization(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := optimizedPlan(t, scn, obj)

	jobsDir := t.TempDir()
	mgr, err := jobs.New(jobs.Config{Workers: 1, Dir: jobsDir})
	if err != nil {
		t.Fatalf("jobs.New: %v", err)
	}
	defer mgr.Shutdown(context.Background())

	rt := newRuntime(t, deploy.Config{Jobs: mgr})
	v, err := rt.Create(deploy.Spec{
		Scenario:   scn,
		Objectives: obj,
		Plan:       plan,
		Seed:       3,
		Drift:      deploy.DriftConfig{Window: 256, CheckEvery: 64, MinSamples: 128, Threshold: 0.2},
		Reopt:      deploy.ReoptConfig{Options: coverage.Options{MaxIters: 800, Seed: 21}},
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	// Drive the deployment with telemetry from the perturbed chain until
	// the drift detector fires.
	src, err := coverage.NewExecutor(biasedPlan(), 0, 77)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	for i := 0; i < 50 && v.DriftTriggers == 0; i++ {
		v, err = rt.Observe(v.ID, src.Walk(64))
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if v.DriftTriggers == 0 {
		t.Fatalf("drift never triggered; last report: %+v", v.Drift)
	}
	if v.ReoptJob == "" {
		t.Fatal("trigger did not record a re-optimization job")
	}
	jobID := v.ReoptJob
	preDeltaC := v.Drift.EmpiricalDeltaC

	// The submitted job must be warm-started from the window estimate;
	// the job checkpoint records the options verbatim.
	blob, err := os.ReadFile(filepath.Join(jobsDir, jobID+".job.json"))
	if err != nil {
		t.Fatalf("read job checkpoint: %v", err)
	}
	var env struct {
		Job struct {
			Options coverage.Options `json:"options"`
		} `json:"job"`
	}
	if err := json.Unmarshal(blob, &env); err != nil {
		t.Fatalf("decode job checkpoint: %v", err)
	}
	if len(env.Job.Options.InitialMatrix) != len(scn.PoIs) {
		t.Fatalf("re-optimization not warm-started: initialMatrix has %d rows", len(env.Job.Options.InitialMatrix))
	}

	waitForJob(t, mgr, jobID)

	// The next mutation resolves the finished job and hot-swaps the plan.
	v, err = rt.Advance(v.ID, 1)
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if len(v.Swaps) != 1 {
		t.Fatalf("got %d swaps, want 1 (view: %+v)", len(v.Swaps), v)
	}
	swap := v.Swaps[0]
	if swap.JobID != jobID {
		t.Errorf("swap job = %s, want %s", swap.JobID, jobID)
	}
	if swap.EmpiricalDeltaC <= 0 {
		t.Errorf("swap record lost the triggering drift snapshot: %+v", swap)
	}
	if v.ReoptJob != "" {
		t.Errorf("reopt job still pending after swap: %s", v.ReoptJob)
	}

	// Self-driven execution now follows the swapped-in plan; the drift
	// window was reset at the swap, so the next report measures post-swap
	// behavior only.
	v, err = rt.Advance(v.ID, 2000)
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if v.Drift == nil {
		t.Fatal("no post-swap drift report")
	}
	if v.Drift.EmpiricalDeltaC >= preDeltaC {
		t.Errorf("post-swap empirical ΔC %v not below pre-swap %v", v.Drift.EmpiricalDeltaC, preDeltaC)
	}
	if v.DriftTriggers != 1 {
		t.Errorf("post-swap execution re-triggered (%d triggers); cooldown or reset failed", v.DriftTriggers)
	}
}

func waitForJob(t *testing.T, mgr *jobs.Manager, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, err := mgr.Get(id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if v.State.Terminal() {
			if v.State != jobs.StateDone {
				t.Fatalf("job %s ended %s: %s", id, v.State, v.Error)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
}

// TestCheckpointResume pins the restart discipline: a deployment resumed
// from its checkpoint after 500 steps and advanced 500 more must be
// statistically indistinguishable — bit for bit — from one that ran 1000
// steps uninterrupted.
func TestCheckpointResume(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := optimizedPlan(t, scn, obj)
	spec := deploy.Spec{
		Scenario:      scn,
		Objectives:    obj,
		Plan:          plan,
		Seed:          8,
		Drift:         deploy.DriftConfig{Window: 256, CheckEvery: 64, Threshold: -1},
		IncidentRates: []float64{0.02},
	}

	// Control: 1000 uninterrupted steps, no persistence.
	control := newRuntime(t, deploy.Config{})
	cv, err := control.Create(spec)
	if err != nil {
		t.Fatalf("Create control: %v", err)
	}
	cv, err = control.Advance(cv.ID, 1000)
	if err != nil {
		t.Fatalf("Advance control: %v", err)
	}

	// Interrupted: 500 steps, shutdown, resume from disk, 500 more.
	dir := t.TempDir()
	rt1, err := deploy.New(deploy.Config{Dir: dir})
	if err != nil {
		t.Fatalf("deploy.New: %v", err)
	}
	rv, err := rt1.Create(spec)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := rt1.Advance(rv.ID, 500); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	rt1.Shutdown()

	rt2 := newRuntime(t, deploy.Config{Dir: dir})
	mid, err := rt2.Get(rv.ID)
	if err != nil {
		t.Fatalf("Get after restart: %v", err)
	}
	if mid.State != deploy.StateActive || mid.Step != 501 {
		t.Fatalf("resumed deployment state %s step %d, want active / 501", mid.State, mid.Step)
	}
	rv, err = rt2.Advance(rv.ID, 500)
	if err != nil {
		t.Fatalf("Advance after restart: %v", err)
	}

	if got, want := canonView(t, rv), canonView(t, cv); got != want {
		t.Errorf("resumed run diverged from uninterrupted control:\nresumed: %s\ncontrol: %s", got, want)
	}
}

// canonView serializes a View with its wall-clock fields cleared, so two
// runs of the same logical deployment compare bit-for-bit.
func canonView(t *testing.T, v deploy.View) string {
	t.Helper()
	v.Created = time.Time{}
	v.Stopped = nil
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal view: %v", err)
	}
	return string(blob)
}

// TestIncidentDetection checks the Poisson incident simulation: with a
// positive rate everywhere, a long walk detects incidents at every PoI
// and the per-PoI delay statistics are internally consistent.
func TestIncidentDetection(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := optimizedPlan(t, scn, obj)
	rt := newRuntime(t, deploy.Config{})

	v, err := rt.Create(deploy.Spec{
		Scenario: scn, Objectives: obj, Plan: plan, Seed: 13,
		IncidentRates: []float64{0.05},
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	v, err = rt.Advance(v.ID, 5000)
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if v.Incidents == nil {
		t.Fatal("no incident statistics")
	}
	for i := range scn.PoIs {
		if v.Incidents.Detected[i] == 0 {
			t.Errorf("PoI %d detected no incidents over 5000 steps at rate 0.05", i)
		}
		if v.Incidents.MeanDelay[i] < 0 || float64(v.Incidents.MaxDelay[i]) < v.Incidents.MeanDelay[i] {
			t.Errorf("PoI %d delay stats inconsistent: mean %v max %d",
				i, v.Incidents.MeanDelay[i], v.Incidents.MaxDelay[i])
		}
	}
}

func TestEventsStream(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := optimizedPlan(t, scn, obj)
	rt := newRuntime(t, deploy.Config{})

	v, err := rt.Create(deploy.Spec{
		Scenario: scn, Objectives: obj, Plan: plan, Seed: 2,
		Drift: deploy.DriftConfig{Window: 128, CheckEvery: 32, MinSamples: 64, Threshold: -1},
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	events, cancel, err := rt.Subscribe(v.ID)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	defer cancel()

	if _, err := rt.Advance(v.ID, 256); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	select {
	case ev := <-events:
		if ev.Type != "drift" || ev.Deployment != v.ID {
			t.Fatalf("unexpected first event: %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no drift event after 256 steps with checkEvery 32")
	}

	if _, err := rt.Stop(v.ID); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	// The stream must drain (a "stopped" event) and then close.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, open := <-events:
			if !open {
				return
			}
			_ = ev
		case <-deadline:
			t.Fatal("event channel not closed after Stop")
		}
	}
}

func TestTickerSelfAdvances(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := optimizedPlan(t, scn, obj)
	rt := newRuntime(t, deploy.Config{})

	v, err := rt.Create(deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan, Seed: 4, TickMillis: 1})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := rt.Get(v.ID)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if cur.Step > 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ticker did not advance the deployment (step %d)", cur.Step)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := rt.Stop(v.ID); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

func TestRuntimeStats(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := optimizedPlan(t, scn, obj)
	rt := newRuntime(t, deploy.Config{MaxDeployments: 2})

	a, err := rt.Create(deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan, Seed: 1})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := rt.Create(deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan, Seed: 2}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := rt.Create(deploy.Spec{Scenario: scn, Objectives: obj, Plan: plan, Seed: 3}); !errors.Is(err, deploy.ErrLimit) {
		t.Fatalf("third create: got %v, want ErrLimit", err)
	}
	if _, err := rt.Stop(a.ID); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	st := rt.Stat()
	if st.Active != 1 || st.Stopped != 1 {
		t.Errorf("stats %+v, want 1 active / 1 stopped", st)
	}
	views := rt.List()
	if len(views) != 2 || views[0].ID != a.ID {
		t.Errorf("List order broken: %+v", views)
	}
}
