package deploy

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/coverage"
	"repro/internal/obs"
)

// checkpointVersion is the on-disk deployment-metadata format version.
const checkpointVersion = 1

// Checkpoint file layout, one triple per deployment under Config.Dir
// (shareable with the jobs checkpoint directory — the suffixes differ):
//
//	<id>.deploy.json    deployment metadata + statistics (this file)
//	<id>.scenario.json  the Scenario, via coverage.SaveScenario
//	<id>.plan.json      the currently deployed plan, via coverage.SavePlan
//	                    (rewritten on every hot-swap)
//
// The metadata captures every piece of dynamic state — including the
// executor's exact random-stream position — so a restarted server
// resumes the deployment bit-for-bit, the same discipline jobs follow.
type deployEnvelope struct {
	Version    int         `json:"version"`
	Kind       string      `json:"kind"`
	Deployment *deployMeta `json:"deployment"`
}

// incidentMeta serializes the incident process, including its own
// random-stream position.
type incidentMeta struct {
	Open     [][]int `json:"open"`
	Detected []int64 `json:"detected"`
	DelaySum []int64 `json:"delaySum"`
	DelayMax []int64 `json:"delayMax"`
	RNG      []byte  `json:"rng"`
}

// deployMeta is the serializable slice of a deployment record. The
// scenario and the deployed plan live in their own files.
type deployMeta struct {
	ID      string    `json:"id"`
	State   State     `json:"state"`
	Created time.Time `json:"created"`
	Stopped time.Time `json:"stopped,omitempty"`

	Objectives    coverage.Objectives `json:"objectives"`
	Start         int                 `json:"start"`
	Seed          uint64              `json:"seed"`
	TickMillis    int                 `json:"tickMillis,omitempty"`
	Drift         DriftConfig         `json:"drift"`
	Reopt         ReoptConfig         `json:"reopt"`
	IncidentRates []float64           `json:"incidentRates,omitempty"`

	Step      int                    `json:"step"`
	Visits    []int64                `json:"visits"`
	Window    []int                  `json:"window"`
	LastVisit []int                  `json:"lastVisit"`
	SegCount  []int64                `json:"segCount"`
	SegSum    []int64                `json:"segSum"`
	SegMax    []int64                `json:"segMax"`
	Executor  coverage.ExecutorState `json:"executor"`
	// Fleet deployments checkpoint every sensor: Executors holds all K
	// random-stream positions and Windows the per-sensor trajectory
	// rings (Executor/Window above are unused). Absent for single-sensor
	// deployments, keeping their checkpoints byte-compatible.
	Executors []coverage.ExecutorState `json:"executors,omitempty"`
	Windows   [][]int                  `json:"windows,omitempty"`

	DriftChecks   int64        `json:"driftChecks"`
	DriftTriggers int64        `json:"driftTriggers"`
	LastDrift     *DriftReport `json:"lastDrift,omitempty"`
	LastTrigger   int          `json:"lastTrigger"`
	ReoptJob      string       `json:"reoptJob,omitempty"`
	Swaps         []SwapRecord `json:"swaps,omitempty"`

	Incidents *incidentMeta `json:"incidents,omitempty"`
	LastError string        `json:"lastError,omitempty"`
}

func (rt *Runtime) deployPath(id string) string {
	return filepath.Join(rt.cfg.Dir, id+".deploy.json")
}

func (rt *Runtime) scenarioPath(id string) string {
	return filepath.Join(rt.cfg.Dir, id+".scenario.json")
}

func (rt *Runtime) planPath(id string) string {
	return filepath.Join(rt.cfg.Dir, id+".plan.json")
}

// persist checkpoints a deployment: metadata always, the scenario only
// on first write, the plan always (it changes on hot-swap). Failures are
// recorded on the deployment rather than crashing the caller — an
// unwritable checkpoint directory must not take the service down.
func (rt *Runtime) persist(d *deployment, withScenario bool) {
	if rt.cfg.Dir == "" {
		return
	}
	rt.mu.Lock()
	meta, err := d.meta()
	scn := d.spec.Scenario
	plan := d.plan
	rt.mu.Unlock()
	if err == nil {
		start := time.Now()
		err = rt.writeCheckpoint(meta, scn, plan, withScenario)
		rt.met.ckptSeconds.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		rt.log.ErrorContext(obs.WithDeploymentID(context.Background(), d.id),
			"checkpoint write failed", slog.String("error", err.Error()))
		rt.mu.Lock()
		if d.lastError == "" {
			d.lastError = fmt.Sprintf("checkpoint: %v", err)
		}
		rt.mu.Unlock()
	}
}

// meta serializes the deployment's dynamic state; callers hold rt.mu.
func (d *deployment) meta() (*deployMeta, error) {
	var execState coverage.ExecutorState
	var execStates []coverage.ExecutorState
	var windows [][]int
	if d.execs != nil {
		execStates = make([]coverage.ExecutorState, len(d.execs))
		windows = make([][]int, len(d.execs))
		for s, e := range d.execs {
			st, err := e.Snapshot()
			if err != nil {
				return nil, err
			}
			execStates[s] = st
			windows[s] = d.fleetWindowSlice(s)
		}
	} else {
		var err error
		execState, err = d.exec.Snapshot()
		if err != nil {
			return nil, err
		}
	}
	m := &deployMeta{
		ID:            d.id,
		State:         d.state,
		Created:       d.created,
		Stopped:       d.stopped,
		Objectives:    d.spec.Objectives,
		Start:         d.spec.Start,
		Seed:          d.spec.Seed,
		TickMillis:    d.spec.TickMillis,
		Drift:         d.spec.Drift,
		Reopt:         d.spec.Reopt,
		IncidentRates: d.spec.IncidentRates,
		Step:          d.step,
		Visits:        append([]int64(nil), d.visits...),
		Window:        nil,
		LastVisit:     append([]int(nil), d.lastVisit...),
		SegCount:      append([]int64(nil), d.segCount...),
		SegSum:        append([]int64(nil), d.segSum...),
		SegMax:        append([]int64(nil), d.segMax...),
		Executor:      execState,
		Executors:     execStates,
		Windows:       windows,
		DriftChecks:   d.driftChecks,
		DriftTriggers: d.driftTriggers,
		LastDrift:     d.lastDrift,
		LastTrigger:   d.lastTrigger,
		ReoptJob:      d.reoptJob,
		Swaps:         append([]SwapRecord(nil), d.swaps...),
		LastError:     d.lastError,
	}
	if d.execs == nil {
		m.Window = d.windowSlice()
	}
	if d.inc != nil {
		rngState, err := d.inc.src.State()
		if err != nil {
			return nil, err
		}
		im := &incidentMeta{
			Open:     make([][]int, len(d.inc.open)),
			Detected: append([]int64(nil), d.inc.detected...),
			DelaySum: append([]int64(nil), d.inc.delaySum...),
			DelayMax: append([]int64(nil), d.inc.delayMax...),
			RNG:      rngState,
		}
		for i, open := range d.inc.open {
			im.Open[i] = append([]int{}, open...)
		}
		m.Incidents = im
	}
	return m, nil
}

// writeCheckpoint writes the triple via temp-file renames, metadata (the
// authoritative state) last, mirroring the jobs checkpoint discipline.
func (rt *Runtime) writeCheckpoint(meta *deployMeta, scn coverage.Scenario, plan *coverage.Plan, withScenario bool) error {
	if withScenario {
		tmp := rt.scenarioPath(meta.ID) + ".tmp"
		if err := coverage.SaveScenario(tmp, scn); err != nil {
			return err
		}
		if err := os.Rename(tmp, rt.scenarioPath(meta.ID)); err != nil {
			return err
		}
	}
	tmp := rt.planPath(meta.ID) + ".tmp"
	if err := coverage.SavePlan(tmp, plan); err != nil {
		return err
	}
	if err := os.Rename(tmp, rt.planPath(meta.ID)); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(deployEnvelope{
		Version:    checkpointVersion,
		Kind:       "deployment",
		Deployment: meta,
	}, "", "  ")
	if err != nil {
		return err
	}
	tmp = rt.deployPath(meta.ID) + ".tmp"
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, rt.deployPath(meta.ID))
}

// loadCheckpoints scans the checkpoint directory and rebuilds the
// deployment table. Stopped deployments load too, so their statistics
// stay queryable across restarts.
func (rt *Runtime) loadCheckpoints() error {
	if err := os.MkdirAll(rt.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("deploy: checkpoint dir: %w", err)
	}
	entries, err := os.ReadDir(rt.cfg.Dir)
	if err != nil {
		return fmt.Errorf("deploy: checkpoint dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".deploy.json") {
			continue
		}
		d, err := rt.loadDeployment(filepath.Join(rt.cfg.Dir, e.Name()))
		if err != nil {
			return fmt.Errorf("deploy: checkpoint %s: %w", e.Name(), err)
		}
		rt.deps[d.id] = d
		rt.order = append(rt.order, d.id)
		if n := seqFromID(d.id); n > rt.seq {
			rt.seq = n
		}
	}
	sortIDs(rt.order)
	return nil
}

// loadDeployment reads one checkpoint triple back into a record whose
// future behavior is bit-for-bit what the snapshotted one would have done.
func (rt *Runtime) loadDeployment(metaPath string) (*deployment, error) {
	blob, err := os.ReadFile(metaPath)
	if err != nil {
		return nil, err
	}
	var env deployEnvelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, err
	}
	if env.Version != checkpointVersion || env.Kind != "deployment" || env.Deployment == nil {
		return nil, fmt.Errorf("not a version-%d deployment file", checkpointVersion)
	}
	meta := env.Deployment
	if meta.ID == "" || !meta.State.valid() {
		return nil, fmt.Errorf("malformed deployment metadata (id %q, state %q)", meta.ID, meta.State)
	}
	scn, err := coverage.LoadScenario(rt.scenarioPath(meta.ID))
	if err != nil {
		return nil, err
	}
	plan, err := coverage.LoadPlan(rt.planPath(meta.ID))
	if err != nil {
		return nil, err
	}
	spec, err := normalize(Spec{
		Scenario:      scn,
		Plan:          plan,
		Objectives:    meta.Objectives,
		Start:         meta.Start,
		Seed:          meta.Seed,
		TickMillis:    meta.TickMillis,
		Drift:         meta.Drift,
		Reopt:         meta.Reopt,
		IncidentRates: meta.IncidentRates,
	})
	if err != nil {
		return nil, err
	}
	m := len(scn.PoIs)
	var exec *coverage.Executor
	var execs []*coverage.Executor
	if plan.Fleet != nil {
		k := plan.Fleet.Sensors
		if len(meta.Executors) != k {
			return nil, fmt.Errorf("%d executor states for a %d-sensor fleet", len(meta.Executors), k)
		}
		if len(meta.Windows) != k {
			return nil, fmt.Errorf("%d windows for a %d-sensor fleet", len(meta.Windows), k)
		}
		ps, err := sensorPlans(plan)
		if err != nil {
			return nil, err
		}
		execs = make([]*coverage.Executor, k)
		for s := 0; s < k; s++ {
			execs[s], err = coverage.ResumeExecutor(ps[s], meta.Executors[s])
			if err != nil {
				return nil, fmt.Errorf("sensor %d: %w", s, err)
			}
		}
		exec = execs[0]
	} else {
		var err error
		exec, err = coverage.ResumeExecutor(plan, meta.Executor)
		if err != nil {
			return nil, err
		}
	}
	if len(meta.Visits) != m || len(meta.LastVisit) != m ||
		len(meta.SegCount) != m || len(meta.SegSum) != m || len(meta.SegMax) != m {
		return nil, fmt.Errorf("statistics arrays do not match %d PoIs", m)
	}
	if len(meta.Window) > spec.Drift.Window {
		return nil, fmt.Errorf("window of %d exceeds configured %d", len(meta.Window), spec.Drift.Window)
	}
	d := &deployment{
		id:            meta.ID,
		spec:          spec,
		state:         meta.State,
		created:       meta.Created,
		stopped:       meta.Stopped,
		plan:          plan,
		exec:          exec,
		step:          meta.Step,
		visits:        meta.Visits,
		window:        make([]int, spec.Drift.Window),
		winLen:        len(meta.Window),
		lastVisit:     meta.LastVisit,
		segCount:      meta.SegCount,
		segSum:        meta.SegSum,
		segMax:        meta.SegMax,
		driftChecks:   meta.DriftChecks,
		driftTriggers: meta.DriftTriggers,
		lastDrift:     meta.LastDrift,
		lastTrigger:   meta.LastTrigger,
		reoptJob:      meta.ReoptJob,
		swaps:         meta.Swaps,
		lastError:     meta.LastError,
		subs:          make(map[int]chan Event),
	}
	copy(d.window, meta.Window)
	for i, s := range meta.Window {
		if s < 0 || s >= m {
			return nil, fmt.Errorf("window[%d] = %d outside [0, %d)", i, s, m)
		}
	}
	if execs != nil {
		d.execs = execs
		d.winLen = len(meta.Windows[0])
		d.fleetWins = make([][]int, len(execs))
		for s := range d.fleetWins {
			win := meta.Windows[s]
			if len(win) != d.winLen {
				return nil, fmt.Errorf("sensor %d window length %d, want %d", s, len(win), d.winLen)
			}
			if len(win) > spec.Drift.Window {
				return nil, fmt.Errorf("sensor %d window of %d exceeds configured %d", s, len(win), spec.Drift.Window)
			}
			for i, p := range win {
				if p < 0 || p >= m {
					return nil, fmt.Errorf("sensor %d window[%d] = %d outside [0, %d)", s, i, p, m)
				}
			}
			d.fleetWins[s] = make([]int, spec.Drift.Window)
			copy(d.fleetWins[s], win)
		}
	}
	if meta.Incidents != nil {
		if len(spec.IncidentRates) == 0 {
			return nil, fmt.Errorf("incident state without incident rates")
		}
		inc := newIncidents(spec.IncidentRates, 0)
		if err := inc.src.SetState(meta.Incidents.RNG); err != nil {
			return nil, fmt.Errorf("incident rng state: %w", err)
		}
		if len(meta.Incidents.Open) != m || len(meta.Incidents.Detected) != m ||
			len(meta.Incidents.DelaySum) != m || len(meta.Incidents.DelayMax) != m {
			return nil, fmt.Errorf("incident arrays do not match %d PoIs", m)
		}
		for i, open := range meta.Incidents.Open {
			inc.open[i] = append([]int{}, open...)
		}
		inc.detected = meta.Incidents.Detected
		inc.delaySum = meta.Incidents.DelaySum
		inc.delayMax = meta.Incidents.DelayMax
		d.inc = inc
	} else if len(spec.IncidentRates) > 0 {
		return nil, fmt.Errorf("incident rates without incident state")
	}
	return d, nil
}

// seqFromID extracts the numeric suffix of a "dep-%06d" ID (0 if
// malformed, which only loses ID compactness, not correctness).
func seqFromID(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "dep-"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// sortIDs orders deployment IDs by sequence number so List stays in
// creation order across restarts.
func sortIDs(ids []string) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && seqFromID(ids[j]) < seqFromID(ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
