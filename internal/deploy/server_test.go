package deploy_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/deploy"
)

// serverFixture spins up the HTTP API over a fresh runtime and returns
// the test server plus a valid creation payload.
func serverFixture(t *testing.T) (*httptest.Server, deploy.Spec) {
	t.Helper()
	scn, obj := lineScenario(t)
	plan := optimizedPlan(t, scn, obj)
	rt := newRuntime(t, deploy.Config{})
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)
	return srv, deploy.Spec{
		Scenario: scn, Objectives: obj, Plan: plan, Seed: 9,
		Drift: deploy.DriftConfig{Window: 128, CheckEvery: 32, MinSamples: 64, Threshold: -1},
	}
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int) []byte {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(blob)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d; body: %s", method, url, resp.StatusCode, wantStatus, buf.String())
	}
	return buf.Bytes()
}

func TestHTTPLifecycle(t *testing.T) {
	srv, spec := serverFixture(t)

	var created deploy.View
	blob := doJSON(t, "POST", srv.URL+"/deployments", spec, http.StatusCreated)
	if err := json.Unmarshal(blob, &created); err != nil {
		t.Fatalf("decode create: %v", err)
	}
	if created.ID == "" || created.State != deploy.StateActive || created.Step != 1 {
		t.Fatalf("bad create response: %+v", created)
	}

	var advanced deploy.View
	blob = doJSON(t, "POST", srv.URL+"/deployments/"+created.ID+"/advance",
		map[string]int{"steps": 200}, http.StatusOK)
	if err := json.Unmarshal(blob, &advanced); err != nil {
		t.Fatalf("decode advance: %v", err)
	}
	if advanced.Step != 201 {
		t.Fatalf("advance: step %d, want 201", advanced.Step)
	}
	if advanced.Drift == nil {
		t.Fatal("advance past checkEvery produced no drift report")
	}

	blob = doJSON(t, "POST", srv.URL+"/deployments/"+created.ID+"/observations",
		map[string][]int{"pois": {0, 1, 2}}, http.StatusOK)
	var observed deploy.View
	if err := json.Unmarshal(blob, &observed); err != nil {
		t.Fatalf("decode observe: %v", err)
	}
	if observed.Step != 204 || observed.Current != 2 {
		t.Fatalf("observe: step %d current %d, want 204 / 2", observed.Step, observed.Current)
	}

	var list struct {
		Deployments []deploy.View `json:"deployments"`
	}
	blob = doJSON(t, "GET", srv.URL+"/deployments", nil, http.StatusOK)
	if err := json.Unmarshal(blob, &list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if len(list.Deployments) != 1 || list.Deployments[0].ID != created.ID {
		t.Fatalf("bad list: %+v", list)
	}

	var stopped deploy.View
	blob = doJSON(t, "DELETE", srv.URL+"/deployments/"+created.ID, nil, http.StatusOK)
	if err := json.Unmarshal(blob, &stopped); err != nil {
		t.Fatalf("decode stop: %v", err)
	}
	if stopped.State != deploy.StateStopped || stopped.Stopped == nil {
		t.Fatalf("bad stop response: %+v", stopped)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	srv, spec := serverFixture(t)

	doJSON(t, "GET", srv.URL+"/deployments/dep-999999", nil, http.StatusNotFound)
	doJSON(t, "POST", srv.URL+"/deployments", map[string]any{"plan": nil}, http.StatusBadRequest)

	blob := doJSON(t, "POST", srv.URL+"/deployments", spec, http.StatusCreated)
	var v deploy.View
	if err := json.Unmarshal(blob, &v); err != nil {
		t.Fatalf("decode create: %v", err)
	}
	doJSON(t, "POST", srv.URL+"/deployments/"+v.ID+"/advance",
		map[string]int{"steps": -5}, http.StatusBadRequest)
	doJSON(t, "POST", srv.URL+"/deployments/"+v.ID+"/observations",
		map[string][]int{"pois": {42}}, http.StatusBadRequest)

	doJSON(t, "DELETE", srv.URL+"/deployments/"+v.ID, nil, http.StatusOK)
	doJSON(t, "POST", srv.URL+"/deployments/"+v.ID+"/advance",
		map[string]int{"steps": 1}, http.StatusConflict)
	doJSON(t, "DELETE", srv.URL+"/deployments/"+v.ID, nil, http.StatusConflict)
	doJSON(t, "GET", srv.URL+"/deployments/"+v.ID+"/events", nil, http.StatusConflict)
}

// TestHTTPEventStream reads the SSE endpoint end to end: subscribe,
// provoke a drift report, parse the event frame, then stop the
// deployment and watch the stream terminate.
func TestHTTPEventStream(t *testing.T) {
	srv, spec := serverFixture(t)

	blob := doJSON(t, "POST", srv.URL+"/deployments", spec, http.StatusCreated)
	var v deploy.View
	if err := json.Unmarshal(blob, &v); err != nil {
		t.Fatalf("decode create: %v", err)
	}

	resp, err := http.Get(srv.URL + "/deployments/" + v.ID + "/events")
	if err != nil {
		t.Fatalf("open event stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}

	// Generate drift checks, then stop so the stream closes.
	doJSON(t, "POST", srv.URL+"/deployments/"+v.ID+"/advance",
		map[string]int{"steps": 128}, http.StatusOK)
	doJSON(t, "DELETE", srv.URL+"/deployments/"+v.ID, nil, http.StatusOK)

	type frame struct {
		event string
		data  deploy.Event
	}
	frames := make(chan frame, 16)
	errs := make(chan error, 1)
	go func() {
		defer close(frames)
		sc := bufio.NewScanner(resp.Body)
		var ev string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				ev = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				var e deploy.Event
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
					errs <- fmt.Errorf("bad data frame %q: %v", line, err)
					return
				}
				frames <- frame{event: ev, data: e}
			}
		}
		errs <- sc.Err()
	}()

	sawDrift, sawStopped := false, false
	deadline := time.After(10 * time.Second)
	for !sawStopped {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("stream read: %v", err)
			}
		case f, open := <-frames:
			if !open {
				if !sawStopped {
					t.Fatal("stream closed before a stopped event")
				}
				break
			}
			if f.event != f.data.Type || f.data.Deployment != v.ID {
				t.Fatalf("inconsistent frame: %+v", f)
			}
			switch f.data.Type {
			case "drift":
				sawDrift = true
			case "stopped":
				sawStopped = true
			}
		case <-deadline:
			t.Fatalf("no stopped event (sawDrift=%v)", sawDrift)
		}
	}
	if !sawDrift {
		t.Error("stream carried no drift events despite 128 steps at checkEvery 32")
	}
	// After "stopped" the server closes the stream.
	select {
	case _, open := <-frames:
		if open {
			// Drain any trailing frames; closure is what matters.
			for range frames {
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not close after stop")
	}
}
