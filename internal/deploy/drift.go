package deploy

import (
	"fmt"
	"math"

	"repro/coverage"
	"repro/internal/markov"
)

// DriftReport is the result of one drift check: the sliding-window
// estimate of the chain the sensor is actually following, scored against
// the deployed plan.
type DriftReport struct {
	// Step is the deployment step at which the check ran.
	Step int `json:"step"`
	// WindowLen is the number of positions in the window; Transitions is
	// WindowLen − 1.
	WindowLen   int `json:"windowLen"`
	Transitions int `json:"transitions"`
	// Score is the occupancy-weighted mean row total-variation distance
	// between the window estimate P̂ and the deployed plan P:
	//
	//	Score = Σ_i (n_i/N) · ½ Σ_j |p̂_ij − p_ij|
	//
	// where n_i is row i's visit count inside the window. Weighting by
	// occupancy keeps rarely visited rows — whose estimates are mostly
	// smoothing prior — from dominating the statistic. Score ∈ [0, 1].
	Score float64 `json:"score"`
	// MaxRowTV is the worst single-row total variation among rows with at
	// least one observed departure — a localized-drift detector the
	// weighted mean can dilute.
	MaxRowTV float64 `json:"maxRowTV"`
	// LogLikelihoodRatio is the mean per-transition log-likelihood ratio
	// log p̂(x_{t+1}|x_t) − log p(x_{t+1}|x_t) of the window under the
	// estimate versus the plan. Near 0 when the plan still explains the
	// data; grows with divergence.
	LogLikelihoodRatio float64 `json:"logLikelihoodRatio"`
	// EmpiricalDeltaC is the window's coverage deviation Σ_i (ĉ_i − φ_i)²
	// where ĉ_i is PoI i's visit fraction inside the window — the
	// empirical counterpart of the plan's analytic ΔC.
	EmpiricalDeltaC float64 `json:"empiricalDeltaC"`
	// PlanDeltaC is the deployed plan's analytic ΔC, for comparison.
	PlanDeltaC float64 `json:"planDeltaC"`
	// Triggered reports whether this check submitted a re-optimization.
	Triggered bool `json:"triggered"`
}

// driftReport fits markov.Estimate over the window and scores it against
// the deployed plan. It returns the report and the estimated matrix rows
// (the warm start for a triggered re-optimization).
func driftReport(window []int, plan *coverage.Plan, target []float64, smoothing float64) (*DriftReport, [][]float64, error) {
	m := len(plan.TransitionMatrix)
	est, err := markov.Estimate(window, m, smoothing)
	if err != nil {
		return nil, nil, fmt.Errorf("estimate: %w", err)
	}

	n := len(window)
	rep := &DriftReport{WindowLen: n, Transitions: n - 1}

	// Row occupancy: departures observed from each state (the last
	// position has no departure).
	departures := make([]float64, m)
	for _, s := range window[:n-1] {
		departures[s]++
	}
	total := float64(n - 1)

	rows := make([][]float64, m)
	for i := 0; i < m; i++ {
		rows[i] = append([]float64(nil), est.Row(i)...)
		var tv float64
		for j := 0; j < m; j++ {
			tv += math.Abs(rows[i][j] - plan.TransitionMatrix[i][j])
		}
		tv /= 2
		rep.Score += departures[i] / total * tv
		if departures[i] > 0 && tv > rep.MaxRowTV {
			rep.MaxRowTV = tv
		}
	}

	// Mean per-transition log-likelihood ratio. The estimate is strictly
	// positive under positive smoothing; the plan may carry exact zeros
	// on transitions the window actually took (that is drift in its
	// purest form), so floor the plan's probability to keep the statistic
	// finite yet strongly responsive.
	const floorP = 1e-12
	var llr float64
	for t := 1; t < n; t++ {
		i, j := window[t-1], window[t]
		pHat := rows[i][j]
		p := plan.TransitionMatrix[i][j]
		if pHat < floorP {
			pHat = floorP
		}
		if p < floorP {
			p = floorP
		}
		llr += math.Log(pHat) - math.Log(p)
	}
	rep.LogLikelihoodRatio = llr / total

	// Window coverage deviation against the prescribed allocation.
	counts := make([]float64, m)
	for _, s := range window {
		counts[s]++
	}
	for i := 0; i < m; i++ {
		g := counts[i]/float64(n) - target[i]
		rep.EmpiricalDeltaC += g * g
	}
	rep.PlanDeltaC = plan.DeltaC
	return rep, rows, nil
}
