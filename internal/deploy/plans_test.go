package deploy_test

import (
	"context"
	"testing"

	"repro/coverage"
	"repro/internal/deploy"
	"repro/internal/jobs"
	"repro/internal/plans"
)

// newLibrary builds an empty in-memory plan library.
func newLibrary(t *testing.T) *plans.Library {
	t.Helper()
	lib, err := plans.New(plans.Config{})
	if err != nil {
		t.Fatalf("plans.New: %v", err)
	}
	return lib
}

// weakPlan is a barely-optimized plan for the shared scenario: valid,
// honest about its (high) cost — the deployment the library should be
// able to rescue without a job.
func weakPlan(t *testing.T, scn coverage.Scenario, obj coverage.Objectives) *coverage.Plan {
	t.Helper()
	plan, err := coverage.Optimize(scn, obj, coverage.Options{MaxIters: 2, Seed: 11})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	return plan
}

// TestDriftSwapsFromPlanLibrary: when the library already holds the
// drifting deployment's exact problem at a lower cost, the trigger
// swaps the cached plan in directly — no re-optimization job is ever
// submitted.
func TestDriftSwapsFromPlanLibrary(t *testing.T) {
	scn, obj := lineScenario(t)
	good := optimizedPlan(t, scn, obj)
	weak := weakPlan(t, scn, obj)
	if weak.Cost <= good.Cost {
		t.Fatalf("test premise broken: weak cost %v <= optimized %v", weak.Cost, good.Cost)
	}

	lib := newLibrary(t)
	if _, err := lib.Publish(scn, obj, good, plans.Provenance{Source: "manual"}); err != nil {
		t.Fatalf("Publish: %v", err)
	}

	mgr, err := jobs.New(jobs.Config{Workers: 1})
	if err != nil {
		t.Fatalf("jobs.New: %v", err)
	}
	defer mgr.Shutdown(context.Background())

	rt := newRuntime(t, deploy.Config{Jobs: mgr, Plans: lib})
	v, err := rt.Create(deploy.Spec{
		Scenario:   scn,
		Objectives: obj,
		Plan:       weak,
		Seed:       3,
		Drift:      deploy.DriftConfig{Window: 256, CheckEvery: 64, MinSamples: 128, Threshold: 0.2},
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	src, err := coverage.NewExecutor(biasedPlan(), 0, 77)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	for i := 0; i < 50 && v.DriftTriggers == 0; i++ {
		v, err = rt.Observe(v.ID, src.Walk(64))
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if v.DriftTriggers == 0 {
		t.Fatalf("drift never triggered; last report: %+v", v.Drift)
	}
	if len(v.Swaps) != 1 {
		t.Fatalf("got %d swaps, want 1 (library hit swaps inline)", len(v.Swaps))
	}
	if v.Swaps[0].JobID != "" {
		t.Errorf("library swap recorded job %q, want none", v.Swaps[0].JobID)
	}
	if v.Swaps[0].NewCost != good.Cost {
		t.Errorf("swapped-in cost %v, want cached %v", v.Swaps[0].NewCost, good.Cost)
	}
	if v.PlanCost != good.Cost {
		t.Errorf("deployed cost %v, want %v", v.PlanCost, good.Cost)
	}
	if v.ReoptJob != "" {
		t.Errorf("a re-optimization job %s is pending despite the cache hit", v.ReoptJob)
	}
	if jobsList := mgr.List(); len(jobsList) != 0 {
		t.Errorf("%d jobs submitted despite the cache hit", len(jobsList))
	}
}

// TestReoptSwapPublishesToLibrary: the closed re-optimization loop
// feeds its result back — after the hot-swap, the library serves the
// deployment's problem with "deploy" provenance carrying the job ID.
func TestReoptSwapPublishesToLibrary(t *testing.T) {
	scn, obj := lineScenario(t)
	plan := optimizedPlan(t, scn, obj)
	lib := newLibrary(t)

	mgr, err := jobs.New(jobs.Config{Workers: 1})
	if err != nil {
		t.Fatalf("jobs.New: %v", err)
	}
	defer mgr.Shutdown(context.Background())

	rt := newRuntime(t, deploy.Config{Jobs: mgr, Plans: lib})
	v, err := rt.Create(deploy.Spec{
		Scenario:   scn,
		Objectives: obj,
		Plan:       plan,
		Seed:       3,
		Drift:      deploy.DriftConfig{Window: 256, CheckEvery: 64, MinSamples: 128, Threshold: 0.2},
		Reopt:      deploy.ReoptConfig{Options: coverage.Options{MaxIters: 800, Seed: 21}},
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	src, err := coverage.NewExecutor(biasedPlan(), 0, 77)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}
	for i := 0; i < 50 && v.DriftTriggers == 0; i++ {
		v, err = rt.Observe(v.ID, src.Walk(64))
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if v.ReoptJob == "" {
		t.Fatalf("drift did not submit a job (empty library must not short-circuit): %+v", v.Drift)
	}
	jobID := v.ReoptJob
	waitForJob(t, mgr, jobID)

	v, err = rt.Advance(v.ID, 1)
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if len(v.Swaps) != 1 || v.Swaps[0].JobID != jobID {
		t.Fatalf("swaps = %+v, want one swap from job %s", v.Swaps, jobID)
	}

	// The swapped plan is now cached for everyone.
	swapped, dist, ok := lib.WarmStart(scn, obj)
	if !ok || dist != 0 {
		t.Fatalf("library has no exact entry after swap (ok %v, dist %v)", ok, dist)
	}
	if swapped.Cost != v.PlanCost {
		t.Errorf("cached cost %v != deployed cost %v", swapped.Cost, v.PlanCost)
	}
	fp, err := coverage.ScenarioFingerprint(scn, obj)
	if err != nil {
		t.Fatal(err)
	}
	e, err := lib.Get(string(fp))
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if e.Provenance.Source != "deploy" || e.Provenance.JobID != jobID {
		t.Errorf("provenance = %+v, want deploy/%s", e.Provenance, jobID)
	}
}
