// Fleet deployment mode: a deployment whose plan carries a
// coverage.FleetPlan runs K executors in lockstep — one per sensor,
// each walking its own transition matrix with staggered starts and
// independent random streams split from the deployment seed. Online
// statistics are union statistics (a PoI is covered in a step when any
// sensor sits on it), drift is scored per sensor against that sensor's
// matrix and responsibility-weighted target, and a triggered
// re-optimization is joint: the K window estimates warm-start a fleet
// job (coverage.Options.InitialMatrices) whose result hot-swaps all K
// matrices atomically.

package deploy

import (
	"fmt"

	"repro/coverage"
	"repro/internal/jobs"
	"repro/internal/rng"
)

// FleetPlanLibrary is the optional fleet extension of PlanLibrary,
// satisfied by *plans.Library. When the configured library implements
// it, drifting fleet deployments consult the fleet key space before
// paying for a joint re-optimization.
type FleetPlanLibrary interface {
	WarmStartFleet(scn coverage.Scenario, obj coverage.Objectives, sensors int, responsibility [][]float64) (*coverage.Plan, float64, bool)
}

// fleetSize returns the deployment's sensor count: the fleet size for
// joint plans, 1 otherwise.
func fleetSize(plan *coverage.Plan) int {
	if plan.Fleet != nil {
		return plan.Fleet.Sensors
	}
	return 1
}

// sensorPlans splits a fleet plan into per-executor plans: sensor s
// walks TransitionMatrices[s]; cost metadata rides along unchanged so
// swap records and views keep reporting the joint cost.
func sensorPlans(plan *coverage.Plan) ([]*coverage.Plan, error) {
	k := fleetSize(plan)
	if k < 2 {
		return []*coverage.Plan{plan}, nil
	}
	if len(plan.Fleet.TransitionMatrices) != k {
		return nil, fmt.Errorf("%w: fleet plan has %d matrices for %d sensors",
			ErrSpec, len(plan.Fleet.TransitionMatrices), k)
	}
	out := make([]*coverage.Plan, k)
	for s := 0; s < k; s++ {
		p := *plan
		p.TransitionMatrix = plan.Fleet.TransitionMatrices[s]
		out[s] = &p
	}
	return out, nil
}

// fleetSeeds derives one executor seed per sensor from the deployment
// master seed, mirroring the pre-split discipline of sim.SimulateFleet:
// sensor s's stream is independent of every other and of the incident
// process (which splits from the same master after these).
func fleetSeeds(seed uint64, k int) []uint64 {
	master := rng.New(seed)
	out := make([]uint64, k)
	for s := range out {
		out[s] = master.Split().Uint64()
	}
	return out
}

// fleetStart is sensor s's starting PoI: the configured start for
// sensor 0, then staggered around the PoI ring exactly like
// sim.FleetConfig, so K sensors begin spread out rather than stacked.
func fleetStart(start, s, m int) int {
	return (start + s) % m
}

// newFleetExecutors builds the K staggered executors for a fleet plan.
func newFleetExecutors(plan *coverage.Plan, start int, seed uint64, m int) ([]*coverage.Executor, error) {
	ps, err := sensorPlans(plan)
	if err != nil {
		return nil, err
	}
	seeds := fleetSeeds(seed, len(ps))
	execs := make([]*coverage.Executor, len(ps))
	for s := range ps {
		execs[s], err = coverage.NewExecutor(ps[s], fleetStart(start, s, m), seeds[s])
		if err != nil {
			return nil, fmt.Errorf("%w: sensor %d: %v", ErrSpec, s, err)
		}
	}
	return execs, nil
}

// recordFleetStep records one lockstep position vector (one PoI per
// sensor). The trajectory windows advance per sensor; coverage,
// exposure, and incident detection are union statistics — a PoI is
// covered this step when any sensor sits on it, counted once.
func (d *deployment) recordFleetStep(pois []int) {
	now := d.step
	d.step++
	w := len(d.window)
	if d.winLen < w {
		at := (d.winStart + d.winLen) % w
		for s, poi := range pois {
			d.fleetWins[s][at] = poi
		}
		d.winLen++
	} else {
		for s, poi := range pois {
			d.fleetWins[s][d.winStart] = poi
		}
		d.winStart = (d.winStart + 1) % w
	}
	for s, poi := range pois {
		if covered(pois[:s], poi) {
			continue // another sensor already covers this PoI this step
		}
		d.visits[poi]++
		if last := d.lastVisit[poi]; last >= 0 {
			seg := int64(now - last)
			d.segCount[poi]++
			d.segSum[poi] += seg
			if seg > d.segMax[poi] {
				d.segMax[poi] = seg
			}
		}
		d.lastVisit[poi] = now
	}
	if d.inc != nil {
		d.inc.stepFleet(now, pois)
	}
}

// covered reports whether poi already appears among earlier sensors'
// positions this step.
func covered(earlier []int, poi int) bool {
	for _, p := range earlier {
		if p == poi {
			return true
		}
	}
	return false
}

// stepFleet advances the incident process one step under union
// detection: arrivals everywhere, then detection at every sensor
// position.
func (inc *incidents) stepFleet(now int, pois []int) {
	for i, rate := range inc.rates {
		if rate <= 0 {
			continue
		}
		for k := inc.src.Poisson(rate); k > 0; k-- {
			inc.open[i] = append(inc.open[i], now)
		}
	}
	for s, poi := range pois {
		if covered(pois[:s], poi) {
			continue
		}
		for _, arrival := range inc.open[poi] {
			delay := int64(now - arrival)
			inc.detected[poi]++
			inc.delaySum[poi] += delay
			if delay > inc.delayMax[poi] {
				inc.delayMax[poi] = delay
			}
		}
		inc.open[poi] = inc.open[poi][:0]
	}
}

// fleetWindowSlice materializes sensor s's trajectory window
// oldest-first. All sensors share winStart/winLen — they advance in
// lockstep.
func (d *deployment) fleetWindowSlice(s int) []int {
	out := make([]int, d.winLen)
	w := len(d.window)
	for i := 0; i < d.winLen; i++ {
		out[i] = d.fleetWins[s][(d.winStart+i)%w]
	}
	return out
}

// sensorTarget is sensor s's coverage responsibility ρ_s∘Φ: the share
// of each PoI's prescribed allocation this sensor owes. With a nil
// responsibility the split is uniform 1/K. Scoring each sensor's window
// against its own share keeps per-sensor drift checks meaningful — a
// sensor covering only its half of the field is healthy, not drifted.
func sensorTarget(plan *coverage.Plan, target []float64, s int) []float64 {
	k := fleetSize(plan)
	out := make([]float64, len(target))
	for i, phi := range target {
		rho := 1 / float64(k)
		if plan.Fleet != nil && plan.Fleet.Responsibility != nil {
			rho = plan.Fleet.Responsibility[s][i]
		}
		out[i] = rho * phi
	}
	return out
}

// fleetDriftReport scores every sensor's window against its own matrix
// and responsibility-weighted target, returning the worst report (the
// trigger signal), the per-sensor window estimates (the joint warm
// start), and the index of the worst sensor.
func (d *deployment) fleetDriftReport() (*DriftReport, [][][]float64, int, error) {
	ps, err := sensorPlans(d.plan)
	if err != nil {
		return nil, nil, 0, err
	}
	var worst *DriftReport
	worstAt := 0
	estimates := make([][][]float64, len(ps))
	for s := range ps {
		rep, est, err := driftReport(d.fleetWindowSlice(s), ps[s],
			sensorTarget(d.plan, d.spec.Scenario.Target, s), d.spec.Drift.Smoothing)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("sensor %d: %w", s, err)
		}
		estimates[s] = est
		if worst == nil || rep.Score > worst.Score {
			worst = rep
			worstAt = s
		}
	}
	return worst, estimates, worstAt, nil
}

// fleetReoptSpec builds the joint re-optimization job a drifting fleet
// deployment submits: a fleet job over the same responsibility split,
// warm-started from the K window estimates.
func (d *deployment) fleetReoptSpec(estimates [][][]float64) jobs.Spec {
	opts := d.spec.Reopt.Options
	opts.InitialMatrices = estimates
	var resp [][]float64
	if d.plan.Fleet != nil {
		resp = d.plan.Fleet.Responsibility
	}
	return jobs.Spec{
		Scenario:       d.spec.Scenario,
		Objectives:     d.spec.Objectives,
		Options:        opts,
		Restarts:       d.spec.Reopt.Restarts,
		Sensors:        fleetSize(d.plan),
		Responsibility: resp,
	}
}

// swapFleet installs a new fleet plan across all K executors
// atomically: every incoming matrix is validated (via a throwaway
// executor) before the first live executor is touched, so a malformed
// stack can never leave the fleet half-swapped.
func (d *deployment) swapFleet(plan *coverage.Plan) error {
	k := fleetSize(d.plan)
	if fleetSize(plan) != k {
		return fmt.Errorf("%d-sensor plan for a %d-sensor deployment", fleetSize(plan), k)
	}
	ps, err := sensorPlans(plan)
	if err != nil {
		return err
	}
	for s := range ps {
		if _, err := coverage.NewExecutor(ps[s], 0, 0); err != nil {
			return fmt.Errorf("sensor %d: %w", s, err)
		}
	}
	for s, e := range d.execs {
		if err := e.SwapPlan(ps[s]); err != nil {
			// Unreachable after the dry run above; surface it anyway.
			return fmt.Errorf("sensor %d: %w", s, err)
		}
	}
	return nil
}
