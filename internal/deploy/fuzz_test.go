package deploy

import (
	"os"
	"path/filepath"
	"testing"

	"repro/coverage"
)

// FuzzLoadDeployment drives the checkpoint-restore decoder with
// arbitrary metadata bytes against a directory holding one valid
// scenario/plan pair. Restore must never panic, and anything it accepts
// must come back with internally consistent statistics arrays and a
// live executor.
func FuzzLoadDeployment(f *testing.F) {
	dir := f.TempDir()

	// Build one real checkpointed deployment as the deep seed input.
	scn, err := coverage.LineScenario("fuzz-deploy", 3, []float64{0.2, 0.3, 0.5})
	if err != nil {
		f.Fatalf("LineScenario: %v", err)
	}
	obj := coverage.Objectives{Alpha: 1, Beta: 1e-3}
	plan, err := coverage.Optimize(scn, obj, coverage.Options{MaxIters: 200, Seed: 3})
	if err != nil {
		f.Fatalf("Optimize: %v", err)
	}
	rt, err := New(Config{Dir: dir})
	if err != nil {
		f.Fatalf("New: %v", err)
	}
	v, err := rt.Create(Spec{
		Scenario: scn, Objectives: obj, Plan: plan, Seed: 9,
		Drift: DriftConfig{Window: 64, CheckEvery: 32, MinSamples: 32, Threshold: 2},
	})
	if err != nil {
		f.Fatalf("Create: %v", err)
	}
	if _, err := rt.Advance(v.ID, 40); err != nil {
		f.Fatalf("Advance: %v", err)
	}
	rt.Shutdown()
	seed, err := os.ReadFile(filepath.Join(dir, v.ID+".deploy.json"))
	if err != nil {
		f.Fatalf("read seed checkpoint: %v", err)
	}
	f.Add(seed)
	f.Add([]byte(`{"version":1,"kind":"deployment","deployment":null}`))
	f.Add([]byte(`{"version":1,"kind":"deployment","deployment":{"id":"dep-000001","state":"active"}}`))
	f.Add([]byte(`{"version":9,"kind":"deployment","deployment":{"id":"x","state":"bogus"}}`))
	f.Add([]byte(`not json`))

	// A bare runtime pointed at the same directory resolves the valid
	// scenario/plan files; only the metadata under test varies.
	loader := &Runtime{cfg: Config{Dir: dir}}

	f.Fuzz(func(t *testing.T, data []byte) {
		metaPath := filepath.Join(t.TempDir(), "fuzz.deploy.json")
		if err := os.WriteFile(metaPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := loader.loadDeployment(metaPath)
		if err != nil {
			if d != nil {
				t.Fatalf("error %v with non-nil deployment", err)
			}
			return
		}
		if d == nil {
			t.Fatal("nil deployment with nil error")
		}
		m := len(d.spec.Scenario.PoIs)
		if len(d.visits) != m || len(d.lastVisit) != m ||
			len(d.segCount) != m || len(d.segSum) != m || len(d.segMax) != m {
			t.Fatalf("accepted deployment has inconsistent statistics arrays for %d PoIs", m)
		}
		if d.exec == nil {
			t.Fatal("accepted deployment has no executor")
		}
		if d.winLen > len(d.window) {
			t.Fatalf("window length %d exceeds capacity %d", d.winLen, len(d.window))
		}
		for i := 0; i < d.winLen; i++ {
			if d.window[i] < 0 || d.window[i] >= m {
				t.Fatalf("accepted window[%d] = %d outside [0, %d)", i, d.window[i], m)
			}
		}
	})
}
