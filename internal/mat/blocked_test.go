package mat

import (
	"math"
	"testing"
)

// fillDeterministic loads a matrix with a reproducible spread of values
// including exact zeros and mixed signs, so the zero-skip and accumulation
// paths are all exercised.
func fillDeterministic(m *Matrix, seed uint64) {
	s := seed
	d := m.Data()
	for i := range d {
		// xorshift64* — self-contained so the test does not depend on rng.
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		v := float64(int64(s%2000)-1000) / 997
		if s%17 == 0 {
			v = 0
		}
		d[i] = v
	}
}

// referenceMulRows is the pre-tiling straight-line product restricted to a
// row span: the exact op sequence MulTo shipped with before the blocked
// kernels, used as the bit-for-bit oracle.
func referenceMulRows(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := dst.data[i*b.cols : (i+1)*b.cols]
		for j := range orow {
			orow[j] = 0
		}
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
}

// TestMulToTiledBitIdentical checks the k-tiled large-matrix path against
// the straight-line kernel bit for bit, across sizes straddling the tile
// cutover and including non-square shapes.
func TestMulToTiledBitIdentical(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{8, 8, 8},
		{mulTileK - 1, mulTileK - 1, mulTileK - 1},
		{mulTileK, mulTileK, mulTileK},
		{mulTileK + 1, mulTileK + 1, mulTileK + 1},
		{130, 130, 130},
		{9, 100, 33},
		{100, 70, 5},
	}
	for _, sh := range shapes {
		a := New(sh.m, sh.k)
		b := New(sh.k, sh.n)
		fillDeterministic(a, uint64(sh.m*1000+sh.k))
		fillDeterministic(b, uint64(sh.k*1000+sh.n))
		got := New(sh.m, sh.n)
		want := New(sh.m, sh.n)
		if err := MulTo(got, a, b); err != nil {
			t.Fatalf("MulTo %dx%dx%d: %v", sh.m, sh.k, sh.n, err)
		}
		referenceMulRows(want, a, b, 0, sh.m)
		for i := range want.data {
			if math.Float64bits(got.data[i]) != math.Float64bits(want.data[i]) {
				t.Fatalf("MulTo %dx%dx%d: entry %d = %x, want %x",
					sh.m, sh.k, sh.n, i, math.Float64bits(got.data[i]), math.Float64bits(want.data[i]))
			}
		}
	}
}

// TestMulToRowsSpansComposeToFull checks that disjoint row spans assemble
// the same bits as one full product — the property the parallel gradient
// contractions rely on — and that rows outside the span are untouched.
func TestMulToRowsSpansComposeToFull(t *testing.T) {
	const n = 97
	a := New(n, n)
	b := New(n, n)
	fillDeterministic(a, 3)
	fillDeterministic(b, 4)
	want := New(n, n)
	if err := MulTo(want, a, b); err != nil {
		t.Fatal(err)
	}
	got := New(n, n)
	sentinel := 123.456
	for i := range got.data {
		got.data[i] = sentinel
	}
	cuts := []int{0, 13, 14, 60, n}
	for c := 0; c+1 < len(cuts); c++ {
		if err := MulToRows(got, a, b, cuts[c], cuts[c+1]); err != nil {
			t.Fatalf("span [%d, %d): %v", cuts[c], cuts[c+1], err)
		}
	}
	for i := range want.data {
		if math.Float64bits(got.data[i]) != math.Float64bits(want.data[i]) {
			t.Fatalf("entry %d differs between spanned and full product", i)
		}
	}

	// A partial span must leave other rows alone.
	partial := New(n, n)
	for i := range partial.data {
		partial.data[i] = sentinel
	}
	if err := MulToRows(partial, a, b, 10, 20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		inSpan := i >= 10 && i < 20
		for j := 0; j < n; j++ {
			v := partial.data[i*n+j]
			if inSpan && v == sentinel && want.data[i*n+j] != sentinel {
				t.Fatalf("row %d in span not written", i)
			}
			if !inSpan && v != sentinel {
				t.Fatalf("row %d outside span was modified", i)
			}
		}
	}
}

// TestMulToRowsBadSpan checks span validation.
func TestMulToRowsBadSpan(t *testing.T) {
	a := New(4, 4)
	b := New(4, 4)
	dst := New(4, 4)
	for _, span := range [][2]int{{-1, 2}, {0, 5}, {3, 2}} {
		if err := MulToRows(dst, a, b, span[0], span[1]); err == nil {
			t.Fatalf("span [%d, %d) accepted", span[0], span[1])
		}
	}
}

// referenceSolveTo is the per-column substitution path (the small-order
// code), used as the bit oracle for the batched solver.
func referenceSolveTo(f *LU, dst, b *Matrix) {
	n := f.lu.rows
	col := make([]float64, n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.data[f.pivot[i]*b.cols+j]
		}
		f.substitute(col)
		for i := 0; i < n; i++ {
			dst.data[i*b.cols+j] = col[i]
		}
	}
}

// TestBatchedSolveBitIdentical checks the blocked multi-column SolveTo
// and InverseTo against the per-column substitution bit for bit at orders
// above the cutover, including a column count that is not a multiple of
// the batch width.
func TestBatchedSolveBitIdentical(t *testing.T) {
	for _, n := range []int{luBatchCutover, luBatchCutover + 5, 96} {
		a := New(n, n)
		fillDeterministic(a, uint64(n))
		// Diagonal dominance keeps the factorization comfortably regular.
		for i := 0; i < n; i++ {
			a.data[i*n+i] += 8
		}
		f, err := Factor(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}

		bcols := luBatchCols*2 + 3
		b := New(n, bcols)
		fillDeterministic(b, uint64(n)+99)
		got := New(n, bcols)
		if err := f.SolveTo(got, b); err != nil {
			t.Fatalf("n=%d SolveTo: %v", n, err)
		}
		want := New(n, bcols)
		referenceSolveTo(f, want, b)
		for i := range want.data {
			if math.Float64bits(got.data[i]) != math.Float64bits(want.data[i]) {
				t.Fatalf("n=%d: SolveTo entry %d differs from per-column path", n, i)
			}
		}

		gotInv := New(n, n)
		if err := f.InverseTo(gotInv); err != nil {
			t.Fatalf("n=%d InverseTo: %v", n, err)
		}
		wantInv := New(n, n)
		referenceSolveTo(f, wantInv, Identity(n))
		for i := range wantInv.data {
			if math.Float64bits(gotInv.data[i]) != math.Float64bits(wantInv.data[i]) {
				t.Fatalf("n=%d: InverseTo entry %d differs from per-column path", n, i)
			}
		}
	}
}

// TestBatchedSolveSteadyStateAllocs checks the blocked path allocates only
// on first use (the lazily sized batch scratch), staying allocation-free
// afterwards — the workspace property the descent hot loop depends on.
func TestBatchedSolveSteadyStateAllocs(t *testing.T) {
	n := luBatchCutover + 16
	a := New(n, n)
	fillDeterministic(a, 7)
	for i := 0; i < n; i++ {
		a.data[i*n+i] += 8
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	dst := New(n, n)
	allocs := testing.AllocsPerRun(20, func() {
		if err := f.InverseTo(dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("blocked InverseTo allocates %v per call in steady state, want 0", allocs)
	}
}
