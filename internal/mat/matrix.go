// Package mat implements the dense linear algebra needed by the
// sensor-coverage optimizer: real vectors and matrices, LU decomposition
// with partial pivoting, linear solves, inverses, and the handful of norms
// and element-wise helpers the Markov-chain machinery relies on.
//
// The package is deliberately small and self-contained (standard library
// only). Matrices are row-major and sized at construction; all binary
// operations check dimensions and return errors rather than panicking, per
// the project style guide.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ErrDimension indicates that the shapes of the operands are incompatible.
var ErrDimension = errors.New("mat: dimension mismatch")

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty (0x0) matrix; use New or NewFromRows to build
// a usable instance.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero-filled matrix with the given shape.
// It panics if either dimension is negative, mirroring make's behavior for
// invalid sizes (a programming error, not a runtime condition).
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{
		rows: rows,
		cols: cols,
		data: make([]float64, rows*cols),
	}
}

// NewFromRows builds a matrix from a slice of equal-length rows, copying
// the data. It returns an error if the rows are ragged or empty.
func NewFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: no rows", ErrDimension)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrDimension, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Ones returns a matrix of the given shape with every entry set to one.
func Ones(rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = 1
	}
	return m
}

// Diag returns a square matrix with the given diagonal entries.
func Diag(d []float64) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.data[i*len(d)+i] = v
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

// Add increments the element at row i, column j by v.
func (m *Matrix) Add(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies the given values into row i.
// It panics if the length does not match the column count (a programming
// error at the call site).
func (m *Matrix) SetRow(i int, row []float64) {
	if len(row) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d, want %d", len(row), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], row)
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom overwrites m with the contents of src.
// The shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) error {
	if m.rows != src.rows || m.cols != src.cols {
		return fmt.Errorf("%w: copy %dx%d into %dx%d", ErrDimension, src.rows, src.cols, m.rows, m.cols)
	}
	copy(m.data, src.data)
	return nil
}

// Zero sets every entry to zero.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// IsSquare reports whether the matrix has the same number of rows and
// columns.
func (m *Matrix) IsSquare() bool { return m.rows == m.cols }

// Data exposes the backing slice of the matrix in row-major order.
// It is intended for tight numeric loops inside this module; callers must
// not resize it.
func (m *Matrix) Data() []float64 { return m.data }

// String renders the matrix with aligned, fixed-precision columns, which
// keeps optimizer traces readable in CLI output.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatFloat(m.data[i*m.cols+j], 'f', 6, 64))
		}
		b.WriteByte(']')
		if i < m.rows-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// EqualApprox reports whether a and b have the same shape and all entries
// differ by at most tol.
func EqualApprox(a, b *Matrix, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// two same-shaped matrices. It returns +Inf when shapes differ so that the
// result is still usable in comparisons.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.rows != b.rows || a.cols != b.cols {
		return math.Inf(1)
	}
	var maxDiff float64
	for i := range a.data {
		if d := math.Abs(a.data[i] - b.data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff
}
