package mat

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

// diagDominantSparse builds a random sparse strictly diagonally dominant
// matrix — the shape (up to the weak/strict distinction) of the shifted
// Markov systems the no-pivoting factorization is designed for.
func diagDominantSparse(src *rng.Source, n int, density float64) *Matrix {
	a := New(n, n)
	d := a.Data()
	for i := 0; i < n; i++ {
		row := d[i*n : (i+1)*n]
		var sum float64
		for j := range row {
			if j != i && src.Float64() < density {
				row[j] = src.Float64()*2 - 1
				sum += math.Abs(row[j])
			}
		}
		row[i] = sum + 0.5 + src.Float64()
	}
	return a
}

func TestFactorSparseSolvesLikeDense(t *testing.T) {
	src := rng.New(4)
	for _, tc := range []struct {
		n       int
		density float64
	}{
		{1, 1}, {5, 0.6}, {24, 0.2}, {80, 0.06}, {80, 0.5},
	} {
		a := diagDominantSparse(src, tc.n, tc.density)
		sp := FromDense(a, 0)
		f, err := FactorSparse(sp, 0)
		if err != nil {
			t.Fatalf("n=%d: FactorSparse: %v", tc.n, err)
		}
		if f.Order() != tc.n {
			t.Fatalf("Order = %d, want %d", f.Order(), tc.n)
		}
		if f.NNZ() < tc.n {
			t.Fatalf("NNZ = %d below order %d", f.NNZ(), tc.n)
		}
		dl, err := Factor(a)
		if err != nil {
			t.Fatalf("dense Factor: %v", err)
		}
		b := make([]float64, tc.n)
		for i := range b {
			b[i] = src.Float64() - 0.5
		}
		got := make([]float64, tc.n)
		want := make([]float64, tc.n)
		if err := f.SolveVecTo(got, b); err != nil {
			t.Fatalf("sparse solve: %v", err)
		}
		if err := dl.SolveVecTo(want, b); err != nil {
			t.Fatalf("dense solve: %v", err)
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d dens=%g: x[%d] = %g, want %g", tc.n, tc.density, i, got[i], want[i])
			}
		}
		// Transpose solve against the densely factored transpose.
		at := Transpose(a)
		dt, err := Factor(at)
		if err != nil {
			t.Fatalf("dense Factor(aᵀ): %v", err)
		}
		if err := f.SolveVecTransTo(got, b); err != nil {
			t.Fatalf("sparse solve-T: %v", err)
		}
		if err := dt.SolveVecTo(want, b); err != nil {
			t.Fatalf("dense solve-T: %v", err)
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d dens=%g: xT[%d] = %g, want %g", tc.n, tc.density, i, got[i], want[i])
			}
		}
	}
}

// TestFactorSparseDenseRowPinned checks the Markov shape specifically:
// sparse rows plus one dense last row (the e_nπᵀ shift). The RCM ordering
// pins the dense row last so the factor fill stays near the input fill.
func TestFactorSparseDenseRowPinned(t *testing.T) {
	src := rng.New(6)
	n := 60
	a := diagDominantSparse(src, n, 0.05)
	d := a.Data()
	last := d[(n-1)*n : n*n]
	var sum float64
	for j := 0; j < n-1; j++ {
		last[j] = 0.1 + src.Float64()
		sum += last[j]
	}
	last[n-1] = sum + 1
	sp := FromDense(a, 0)
	f, err := FactorSparse(sp, 0)
	if err != nil {
		t.Fatalf("FactorSparse: %v", err)
	}
	// Fill should stay well under dense (n² = 3600); with the dense row
	// pinned last it is input-fill plus modest BFS-band fill.
	if f.NNZ() > n*n/2 {
		t.Fatalf("fill %d suggests the dense row was not pinned (dense would be %d)", f.NNZ(), n*n)
	}
	dl, err := Factor(a)
	if err != nil {
		t.Fatalf("dense Factor: %v", err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = src.Float64()
	}
	got, want := make([]float64, n), make([]float64, n)
	if err := f.SolveVecTo(got, b); err != nil {
		t.Fatalf("sparse solve: %v", err)
	}
	if err := dl.SolveVecTo(want, b); err != nil {
		t.Fatalf("dense solve: %v", err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestFactorSparseRejectsSingular(t *testing.T) {
	// Zero row: rowMax == 0.
	zr, _ := NewFromRows([][]float64{{1, 0, 0}, {0, 0, 0}, {0, 0, 1}})
	if _, err := FactorSparse(FromDense(zr, 0), 0); !errors.Is(err, ErrSingular) {
		t.Fatalf("zero row: err = %v, want ErrSingular", err)
	}
	// Exactly dependent rows: the second pivot cancels to zero.
	dep, _ := NewFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorSparse(FromDense(dep, 0), 0); !errors.Is(err, ErrSingular) {
		t.Fatalf("dependent rows: err = %v, want ErrSingular", err)
	}
	// Near-dependent rows: pivot collapses below the scaled threshold.
	near, _ := NewFromRows([][]float64{{1, 2}, {2, 4 + 4e-16}})
	if _, err := FactorSparse(FromDense(near, 0), 1e-12); !errors.Is(err, ErrSingular) {
		t.Fatalf("near-dependent rows: err = %v, want ErrSingular", err)
	}
	// Rectangular input.
	if _, err := FactorSparse(FromDense(New(2, 3), 0), 0); !errors.Is(err, ErrDimension) {
		t.Fatalf("rectangular: err = %v, want ErrDimension", err)
	}
}

func TestLowRankSolverMatchesDense(t *testing.T) {
	src := rng.New(8)
	n := 40
	a := diagDominantSparse(src, n, 0.15)
	sp := FromDense(a, 0)
	base, err := FactorSparse(sp, 0)
	if err != nil {
		t.Fatalf("FactorSparse: %v", err)
	}

	// Rank-2 update A + u₁v₁ᵀ + u₂v₂ᵀ with small random columns (small so
	// the update cannot make the matrix singular).
	u := [][]float64{make([]float64, n), make([]float64, n)}
	v := [][]float64{make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		u[0][i] = 0.1 * (src.Float64() - 0.5)
		u[1][i] = 0.1 * (src.Float64() - 0.5)
		v[0][i] = 0.1 * (src.Float64() - 0.5)
		v[1][i] = 0.1 * (src.Float64() - 0.5)
	}
	lr, err := NewLowRankSolver(base, u, v)
	if err != nil {
		t.Fatalf("NewLowRankSolver: %v", err)
	}

	// Dense reference: B = A + Σ uᵢvᵢᵀ factored directly.
	bm := a.Clone()
	bd := bm.Data()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			bd[i*n+j] += u[0][i]*v[0][j] + u[1][i]*v[1][j]
		}
	}
	dl, err := Factor(bm)
	if err != nil {
		t.Fatalf("dense Factor(B): %v", err)
	}
	dt, err := Factor(Transpose(bm))
	if err != nil {
		t.Fatalf("dense Factor(Bᵀ): %v", err)
	}

	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = src.Float64() - 0.5
	}
	got, want := make([]float64, n), make([]float64, n)
	if err := lr.SolveVecTo(got, rhs); err != nil {
		t.Fatalf("low-rank solve: %v", err)
	}
	if err := dl.SolveVecTo(want, rhs); err != nil {
		t.Fatalf("dense solve: %v", err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if err := lr.SolveVecTransTo(got, rhs); err != nil {
		t.Fatalf("low-rank solve-T: %v", err)
	}
	if err := dt.SolveVecTo(want, rhs); err != nil {
		t.Fatalf("dense solve-T: %v", err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("xT[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// TestLowRankSolverRowPerturbation exercises the line-search probe
// pattern: k rows of A change, expressed as Σ e_{rᵢ}·δᵢᵀ over the
// unperturbed factorization, so the probe reuses the base LU instead of
// refactoring.
func TestLowRankSolverRowPerturbation(t *testing.T) {
	src := rng.New(12)
	n := 50
	a := diagDominantSparse(src, n, 0.12)
	base, err := FactorSparse(FromDense(a, 0), 0)
	if err != nil {
		t.Fatalf("FactorSparse: %v", err)
	}

	rows := []int{3, 17, 41}
	u := make([][]float64, len(rows))
	v := make([][]float64, len(rows))
	pert := a.Clone()
	pd := pert.Data()
	for i, r := range rows {
		u[i] = make([]float64, n)
		u[i][r] = 1
		v[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			// Small perturbation keeps the matrix dominant and nonsingular.
			delta := 0.05 * (src.Float64() - 0.5)
			v[i][j] = delta
			pd[r*n+j] += delta
		}
	}
	lr, err := NewLowRankSolver(base, u, v)
	if err != nil {
		t.Fatalf("NewLowRankSolver: %v", err)
	}
	dl, err := Factor(pert)
	if err != nil {
		t.Fatalf("dense Factor(perturbed): %v", err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = src.Float64() - 0.5
	}
	got, want := make([]float64, n), make([]float64, n)
	if err := lr.SolveVecTo(got, b); err != nil {
		t.Fatalf("low-rank probe solve: %v", err)
	}
	if err := dl.SolveVecTo(want, b); err != nil {
		t.Fatalf("dense probe solve: %v", err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("probe x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestLowRankSolverRejectsBadShapes(t *testing.T) {
	a := diagDominantSparse(rng.New(14), 5, 0.5)
	base, err := FactorSparse(FromDense(a, 0), 0)
	if err != nil {
		t.Fatalf("FactorSparse: %v", err)
	}
	if _, err := NewLowRankSolver(base, nil, nil); !errors.Is(err, ErrDimension) {
		t.Fatalf("rank 0: err = %v, want ErrDimension", err)
	}
	if _, err := NewLowRankSolver(base, [][]float64{make([]float64, 4)}, [][]float64{make([]float64, 5)}); !errors.Is(err, ErrDimension) {
		t.Fatalf("short column: err = %v, want ErrDimension", err)
	}
}
