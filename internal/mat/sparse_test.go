package mat

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// randomSparseDense returns a dense n×n matrix with roughly density·n²
// nonzeros at random positions.
func randomSparseDense(src *rng.Source, n int, density float64) *Matrix {
	a := New(n, n)
	d := a.Data()
	for i := range d {
		if src.Float64() < density {
			d[i] = src.Float64()*2 - 1
		}
	}
	return a
}

func TestSparseRoundTrip(t *testing.T) {
	src := rng.New(1)
	for _, n := range []int{1, 3, 8, 33} {
		a := randomSparseDense(src, n, 0.2)
		s := FromDense(a, 0)
		back := s.Dense()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if back.At(i, j) != a.At(i, j) {
					t.Fatalf("n=%d: round trip changed (%d,%d): %g != %g",
						n, i, j, back.At(i, j), a.At(i, j))
				}
				if s.At(i, j) != a.At(i, j) {
					t.Fatalf("n=%d: At(%d,%d) = %g, want %g", n, i, j, s.At(i, j), a.At(i, j))
				}
			}
		}
		nnz := 0
		for _, v := range a.Data() {
			if v != 0 {
				nnz++
			}
		}
		if s.NNZ() != nnz {
			t.Fatalf("n=%d: NNZ = %d, want %d", n, s.NNZ(), nnz)
		}
	}
}

func TestSparseFromDenseMask(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 0, 2}, {0, 0, 0}, {3, 4, 0}})
	mask, _ := NewFromRows([][]float64{{1, 1, 0}, {0, 1, 0}, {1, 0, 0}})
	s, err := FromDenseMask(a, mask)
	if err != nil {
		t.Fatalf("FromDenseMask: %v", err)
	}
	// Support follows the mask: explicit zero at (0,1) and (1,1), entry
	// (0,2)=2 and (2,1)=4 dropped because the mask is zero there.
	if s.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4 (mask support)", s.NNZ())
	}
	if s.At(0, 1) != 0 || s.At(0, 0) != 1 || s.At(2, 0) != 3 {
		t.Fatalf("masked values wrong: %v %v %v", s.At(0, 1), s.At(0, 0), s.At(2, 0))
	}
	if s.At(0, 2) != 0 || s.At(2, 1) != 0 {
		t.Fatalf("entries outside mask kept")
	}
	cols, _ := s.Row(0)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 1 {
		t.Fatalf("row 0 support = %v, want [0 1]", cols)
	}
	if _, err := FromDenseMask(a, New(2, 3)); err == nil {
		t.Fatalf("mismatched mask accepted")
	}
}

func TestSparseMulVec(t *testing.T) {
	src := rng.New(2)
	n := 17
	a := randomSparseDense(src, n, 0.3)
	s := FromDense(a, 0)
	x := make([]float64, n)
	for i := range x {
		x[i] = src.Float64() - 0.5
	}
	got := make([]float64, n)
	want := make([]float64, n)
	if err := s.MulVecTo(got, x); err != nil {
		t.Fatalf("MulVecTo: %v", err)
	}
	if err := MulVecTo(want, a, x); err != nil {
		t.Fatalf("dense MulVecTo: %v", err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("spmv[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Transposed product against the dense transpose.
	if err := s.MulVecTransTo(got, x); err != nil {
		t.Fatalf("MulVecTransTo: %v", err)
	}
	at := New(n, n)
	if err := TransposeTo(at, a); err != nil {
		t.Fatalf("TransposeTo: %v", err)
	}
	if err := MulVecTo(want, at, x); err != nil {
		t.Fatalf("dense tranposed MulVecTo: %v", err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("spmv-t[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if err := s.MulVecTo(got, x[:n-1]); err == nil {
		t.Fatalf("dimension mismatch accepted")
	}
}

func TestSparseTranspose(t *testing.T) {
	src := rng.New(3)
	a := randomSparseDense(src, 21, 0.25)
	s := FromDense(a, 0)
	tr := s.Transpose()
	for i := 0; i < 21; i++ {
		cols, _ := tr.Row(i)
		prev := int32(-1)
		for _, c := range cols {
			if c <= prev {
				t.Fatalf("transpose row %d not strictly ascending: %v", i, cols)
			}
			prev = c
		}
		for j := 0; j < 21; j++ {
			if tr.At(i, j) != a.At(j, i) {
				t.Fatalf("transpose (%d,%d) = %g, want %g", i, j, tr.At(i, j), a.At(j, i))
			}
		}
	}
	// Double transpose is the identity.
	back := tr.Transpose().Dense()
	for i, v := range back.Data() {
		if v != a.Data()[i] {
			t.Fatalf("double transpose changed entry %d", i)
		}
	}
}

func TestNewSparseFromRowsValidates(t *testing.T) {
	if _, err := NewSparseFromRows(2, 2, [][]int32{{0, 0}, {}}, [][]float64{{1, 2}, {}}); err == nil {
		t.Fatalf("duplicate column accepted")
	}
	if _, err := NewSparseFromRows(2, 2, [][]int32{{1, 0}, {}}, [][]float64{{1, 2}, {}}); err == nil {
		t.Fatalf("descending columns accepted")
	}
	if _, err := NewSparseFromRows(2, 2, [][]int32{{2}, {}}, [][]float64{{1}, {}}); err == nil {
		t.Fatalf("out-of-range column accepted")
	}
	if _, err := NewSparseFromRows(2, 2, [][]int32{{0}}, [][]float64{{1}}); err == nil {
		t.Fatalf("short row set accepted")
	}
	s, err := NewSparseFromRows(2, 3, [][]int32{{0, 2}, {1}}, [][]float64{{1, 2}, {3}})
	if err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	if s.At(0, 2) != 2 || s.At(1, 1) != 3 {
		t.Fatalf("values misplaced")
	}
}

// FuzzSparseRoundTrip checks dense→sparse→dense is lossless for random
// support masks and values (the CI fuzz-smoke target for the sparse
// path).
func FuzzSparseRoundTrip(f *testing.F) {
	f.Add(uint64(1), 4)
	f.Add(uint64(42), 9)
	f.Add(uint64(7), 1)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		if n <= 0 || n > 64 {
			t.Skip()
		}
		src := rng.New(seed)
		a := New(n, n)
		mask := New(n, n)
		ad, md := a.Data(), mask.Data()
		for i := range ad {
			if src.Float64() < 0.3 {
				md[i] = 1
				// Keep some explicit zeros inside the support.
				if src.Float64() < 0.8 {
					ad[i] = src.Float64()*2 - 1
				}
			}
		}
		s, err := FromDenseMask(a, mask)
		if err != nil {
			t.Fatalf("FromDenseMask: %v", err)
		}
		back := New(n, n)
		if err := s.ToDense(back); err != nil {
			t.Fatalf("ToDense: %v", err)
		}
		bd := back.Data()
		for i := range ad {
			want := ad[i]
			if md[i] == 0 {
				want = 0
			}
			if bd[i] != want {
				t.Fatalf("entry %d: %g != %g", i, bd[i], want)
			}
		}
		// FromDense (value support) round trip on the same matrix.
		s2 := FromDense(a, 0)
		back2 := s2.Dense()
		for i := range ad {
			if back2.Data()[i] != ad[i] {
				t.Fatalf("FromDense round trip changed entry %d", i)
			}
		}
	})
}
