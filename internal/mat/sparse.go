package mat

import (
	"fmt"
	"math"
)

// Sparse is an immutable compressed-sparse-row (CSR) matrix: row i's
// entries live in colIdx/vals[rowPtr[i]:rowPtr[i+1]] with column indices
// strictly ascending. It is the storage behind the sparse solver path:
// city-scale topologies restrict the transition support to a few
// neighbors per PoI, so the Markov systems the optimizer solves are
// overwhelmingly zero and a CSR factorization beats the dense O(M³)
// reference well before M = 256 (see DESIGN.md §11 for the measured
// crossover).
type Sparse struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int32
	vals       []float64
}

// FromDense converts a dense matrix to CSR, keeping entries whose
// magnitude exceeds droptol (droptol = 0 keeps every nonzero exactly, so
// the round trip through ToDense is bit-for-bit lossless).
func FromDense(a *Matrix, droptol float64) *Sparse {
	if droptol < 0 {
		droptol = 0
	}
	s := &Sparse{
		rows:   a.rows,
		cols:   a.cols,
		rowPtr: make([]int, a.rows+1),
	}
	nnz := 0
	for _, v := range a.data {
		if v != 0 && math.Abs(v) > droptol {
			nnz++
		}
	}
	s.colIdx = make([]int32, 0, nnz)
	s.vals = make([]float64, 0, nnz)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			if v != 0 && math.Abs(v) > droptol {
				s.colIdx = append(s.colIdx, int32(j))
				s.vals = append(s.vals, v)
			}
		}
		s.rowPtr[i+1] = len(s.vals)
	}
	return s
}

// FromDenseMask converts a dense matrix to CSR keeping exactly the
// entries where mask is nonzero, regardless of a's values there (a zero
// inside the support is stored explicitly). mask must share a's shape.
func FromDenseMask(a, mask *Matrix) (*Sparse, error) {
	if mask.rows != a.rows || mask.cols != a.cols {
		return nil, fmt.Errorf("%w: mask %dx%d for matrix %dx%d",
			ErrDimension, mask.rows, mask.cols, a.rows, a.cols)
	}
	s := &Sparse{
		rows:   a.rows,
		cols:   a.cols,
		rowPtr: make([]int, a.rows+1),
	}
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		mrow := mask.data[i*a.cols : (i+1)*a.cols]
		for j := range arow {
			if mrow[j] != 0 {
				s.colIdx = append(s.colIdx, int32(j))
				s.vals = append(s.vals, arow[j])
			}
		}
		s.rowPtr[i+1] = len(s.vals)
	}
	return s, nil
}

// NewSparseFromRows builds a CSR matrix from per-row (column, value)
// pairs. Each row's columns must be strictly ascending and in range; the
// markov solver uses this to assemble its shifted systems without a dense
// intermediate.
func NewSparseFromRows(rows, cols int, rowCols [][]int32, rowVals [][]float64) (*Sparse, error) {
	if len(rowCols) != rows || len(rowVals) != rows {
		return nil, fmt.Errorf("%w: %d row slices for %d rows", ErrDimension, len(rowCols), rows)
	}
	s := &Sparse{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for i := 0; i < rows; i++ {
		if len(rowCols[i]) != len(rowVals[i]) {
			return nil, fmt.Errorf("%w: row %d has %d cols, %d vals",
				ErrDimension, i, len(rowCols[i]), len(rowVals[i]))
		}
		prev := int32(-1)
		for _, c := range rowCols[i] {
			if c <= prev || int(c) >= cols {
				return nil, fmt.Errorf("%w: row %d column %d out of order or range", ErrDimension, i, c)
			}
			prev = c
		}
		s.colIdx = append(s.colIdx, rowCols[i]...)
		s.vals = append(s.vals, rowVals[i]...)
		s.rowPtr[i+1] = len(s.vals)
	}
	return s, nil
}

// Rows returns the number of rows.
func (s *Sparse) Rows() int { return s.rows }

// Cols returns the number of columns.
func (s *Sparse) Cols() int { return s.cols }

// NNZ returns the number of stored entries.
func (s *Sparse) NNZ() int { return len(s.vals) }

// Row returns the stored columns and values of row i. The slices alias
// the matrix's storage and must not be mutated.
func (s *Sparse) Row(i int) ([]int32, []float64) {
	lo, hi := s.rowPtr[i], s.rowPtr[i+1]
	return s.colIdx[lo:hi], s.vals[lo:hi]
}

// At returns the entry at (i, j), zero when it is not stored. Row entries
// are column-sorted, so a binary search would do; rows are short enough
// that a linear scan wins.
func (s *Sparse) At(i, j int) float64 {
	cols, vals := s.Row(i)
	for k, c := range cols {
		if int(c) == j {
			return vals[k]
		}
		if int(c) > j {
			break
		}
	}
	return 0
}

// MulVecTo computes the sparse matrix-vector product s*x into dst, which
// must not alias x. It performs no allocations.
func (s *Sparse) MulVecTo(dst, x []float64) error {
	if len(x) != s.cols {
		return fmt.Errorf("%w: spmv %dx%d by vector of %d", ErrDimension, s.rows, s.cols, len(x))
	}
	if len(dst) != s.rows {
		return fmt.Errorf("%w: spmv into vector of %d, want %d", ErrDimension, len(dst), s.rows)
	}
	for i := 0; i < s.rows; i++ {
		lo, hi := s.rowPtr[i], s.rowPtr[i+1]
		var acc float64
		for k := lo; k < hi; k++ {
			acc += s.vals[k] * x[s.colIdx[k]]
		}
		dst[i] = acc
	}
	return nil
}

// MulVecTransTo computes the transposed product sᵀ*x into dst (dst must
// not alias x), streaming the CSR rows once.
func (s *Sparse) MulVecTransTo(dst, x []float64) error {
	if len(x) != s.rows {
		return fmt.Errorf("%w: spmv-t %dx%d by vector of %d", ErrDimension, s.rows, s.cols, len(x))
	}
	if len(dst) != s.cols {
		return fmt.Errorf("%w: spmv-t into vector of %d, want %d", ErrDimension, len(dst), s.cols)
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < s.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		lo, hi := s.rowPtr[i], s.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			dst[s.colIdx[k]] += xi * s.vals[k]
		}
	}
	return nil
}

// Transpose returns sᵀ as a new CSR matrix (two-pass bucket counting, so
// the result's rows are column-sorted without an explicit sort).
func (s *Sparse) Transpose() *Sparse {
	t := &Sparse{
		rows:   s.cols,
		cols:   s.rows,
		rowPtr: make([]int, s.cols+1),
		colIdx: make([]int32, len(s.colIdx)),
		vals:   make([]float64, len(s.vals)),
	}
	for _, c := range s.colIdx {
		t.rowPtr[c+1]++
	}
	for i := 0; i < t.rows; i++ {
		t.rowPtr[i+1] += t.rowPtr[i]
	}
	next := make([]int, t.rows)
	for i := range next {
		next[i] = t.rowPtr[i]
	}
	for i := 0; i < s.rows; i++ {
		lo, hi := s.rowPtr[i], s.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			c := s.colIdx[k]
			pos := next[c]
			next[c]++
			t.colIdx[pos] = int32(i)
			t.vals[pos] = s.vals[k]
		}
	}
	return t
}

// ToDense writes the sparse matrix into the caller-owned dense dst,
// zeroing unstored entries.
func (s *Sparse) ToDense(dst *Matrix) error {
	if dst.rows != s.rows || dst.cols != s.cols {
		return fmt.Errorf("%w: densify %dx%d into %dx%d", ErrDimension, s.rows, s.cols, dst.rows, dst.cols)
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	for i := 0; i < s.rows; i++ {
		lo, hi := s.rowPtr[i], s.rowPtr[i+1]
		drow := dst.data[i*s.cols : (i+1)*s.cols]
		for k := lo; k < hi; k++ {
			drow[s.colIdx[k]] = s.vals[k]
		}
	}
	return nil
}

// Dense returns the sparse matrix as a fresh dense matrix.
func (s *Sparse) Dense() *Matrix {
	out := New(s.rows, s.cols)
	_ = s.ToDense(out)
	return out
}
