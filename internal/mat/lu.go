package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular indicates that a matrix factored as numerically singular and
// cannot be solved or inverted.
var ErrSingular = errors.New("mat: singular matrix")

// LU holds an LU decomposition with partial pivoting, PA = LU, of a square
// matrix. L has a unit diagonal and is stored in the strict lower triangle
// of lu; U occupies the upper triangle including the diagonal.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64 // +1 or -1 with the parity of the permutation
}

// Factor computes the LU decomposition of a square matrix with partial
// (row) pivoting. It returns ErrSingular if a pivot is exactly zero; near
// singularity surfaces later as large residuals, which callers guard with
// their own conditioning checks.
func Factor(a *Matrix) (*LU, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("%w: LU of %dx%d", ErrDimension, a.rows, a.cols)
	}
	n := a.rows
	f := &LU{
		lu:    a.Clone(),
		pivot: make([]int, n),
		sign:  1,
	}
	d := f.lu.data
	for i := range f.pivot {
		f.pivot[i] = i
	}
	for k := 0; k < n; k++ {
		// Select the pivot row: largest magnitude in column k at or below
		// the diagonal.
		p := k
		maxAbs := math.Abs(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(d[i*n+k]); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				d[p*n+j], d[k*n+j] = d[k*n+j], d[p*n+j]
			}
			f.pivot[p], f.pivot[k] = f.pivot[k], f.pivot[p]
			f.sign = -f.sign
		}
		inv := 1 / d[k*n+k]
		for i := k + 1; i < n; i++ {
			l := d[i*n+k] * inv
			d[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				d[i*n+j] -= l * d[k*n+j]
			}
		}
	}
	return f, nil
}

// SolveVec solves A x = b for a single right-hand side.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: solve with rhs of %d, want %d", ErrDimension, len(b), n)
	}
	d := f.lu.data
	x := make([]float64, n)
	// Apply the permutation while loading b.
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= d[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= d[i*n+j] * x[j]
		}
		x[i] = s / d[i*n+i]
	}
	return x, nil
}

// Solve solves A X = B column by column.
func (f *LU) Solve(b *Matrix) (*Matrix, error) {
	n := f.lu.rows
	if b.rows != n {
		return nil, fmt.Errorf("%w: solve with rhs %dx%d, want %d rows", ErrDimension, b.rows, b.cols, n)
	}
	out := New(n, b.cols)
	col := make([]float64, n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		x, err := f.SolveVec(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.data[i*b.cols+j] = x[i]
		}
	}
	return out, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	det := f.sign
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// Inverse returns A^{-1} for a square matrix A, or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(Identity(a.rows))
}

// SolveLinear solves A x = b directly (factor + solve) for convenience at
// call sites that need a single solve.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

// Det returns the determinant of a square matrix, or 0 when the matrix is
// exactly singular (a zero pivot short-circuits the factorization).
func Det(a *Matrix) (float64, error) {
	f, err := Factor(a)
	if err != nil {
		if errors.Is(err, ErrSingular) {
			return 0, nil
		}
		return 0, err
	}
	return f.Det(), nil
}
