package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular indicates that a matrix factored as numerically singular and
// cannot be solved or inverted.
var ErrSingular = errors.New("mat: singular matrix")

// LU holds an LU decomposition with partial pivoting, PA = LU, of a square
// matrix. L has a unit diagonal and is stored in the strict lower triangle
// of lu; U occupies the upper triangle including the diagonal.
//
// An LU built with NewLU owns all of its storage and can be refactored
// repeatedly with Refactor without further allocation, which is what the
// optimizer's evaluation workspace relies on.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64   // +1 or -1 with the parity of the permutation
	col   []float64 // per-column scratch for SolveTo/InverseTo
	batch []float64 // packed multi-column scratch, lazily sized n*luBatchCols
	scale []float64 // per-row input max magnitudes for the pivot guard
}

// MinPivotRatio is the scaled near-singularity threshold of Refactor: a
// selected pivot whose magnitude falls below this fraction of its row's
// largest input magnitude is rejected as numerically singular. An
// exactly-zero test alone lets pivots like 1e-18 (the floating-point
// residue of a structurally singular system) through, and the resulting
// "solutions" are garbage that downstream conditioning checks may miss.
// The ratio compares against the pivot row's own scale, so well-scaled
// tiny systems (e.g. a diagonal of 1e-20s) still factor.
const MinPivotRatio = 1e-14

// luBatchCols is the number of right-hand-side columns substituted
// together by the blocked SolveTo/InverseTo path: each batch streams the
// factored matrix once instead of once per column. Batching changes no
// bits — the columns are arithmetically independent, and every column
// undergoes exactly the op sequence of the per-column substitute.
const luBatchCols = 8

// luBatchCutover is the order below which SolveTo/InverseTo keep the
// straight-line per-column code: for small systems the factored matrix is
// cache-resident anyway and the packing traffic would only add overhead.
const luBatchCutover = 48

// NewLU returns an LU factorizer for n-by-n matrices with all buffers
// preallocated. Call Refactor to load a matrix into it.
func NewLU(n int) *LU {
	return &LU{
		lu:    New(n, n),
		pivot: make([]int, n),
		sign:  1,
		col:   make([]float64, n),
		scale: make([]float64, n),
	}
}

// Factor computes the LU decomposition of a square matrix with partial
// (row) pivoting. It returns ErrSingular if a pivot is exactly zero or
// collapses below MinPivotRatio of its row's input magnitude — the
// near-singular systems that would otherwise factor "successfully" and
// produce garbage solutions.
func Factor(a *Matrix) (*LU, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("%w: LU of %dx%d", ErrDimension, a.rows, a.cols)
	}
	f := NewLU(a.rows)
	if err := f.Refactor(a); err != nil {
		return nil, err
	}
	return f, nil
}

// Refactor recomputes the decomposition for a new matrix of the size the
// LU was built for, reusing all internal storage. It performs no
// allocations on the success path.
func (f *LU) Refactor(a *Matrix) error {
	n := f.lu.rows
	if a.rows != n || a.cols != n {
		return fmt.Errorf("%w: refactor %dx%d into LU of order %d", ErrDimension, a.rows, a.cols, n)
	}
	copy(f.lu.data, a.data)
	f.sign = 1
	d := f.lu.data
	for i := range f.pivot {
		f.pivot[i] = i
	}
	// Input row scales for the near-singular guard. The scales permute
	// alongside the rows so the selected pivot is always judged against
	// its own row's original magnitude; they never influence pivot
	// *selection*, which keeps accepted factorizations bit-identical to
	// the historic exact-zero-guard code.
	for i := 0; i < n; i++ {
		var m float64
		for _, v := range d[i*n : (i+1)*n] {
			if av := math.Abs(v); av > m {
				m = av
			}
		}
		f.scale[i] = m
	}
	for k := 0; k < n; k++ {
		// Select the pivot row: largest magnitude in column k at or below
		// the diagonal.
		p := k
		maxAbs := math.Abs(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(d[i*n+k]); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		if maxAbs == 0 {
			return fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		if maxAbs < MinPivotRatio*f.scale[p] {
			return fmt.Errorf("%w: pivot %g at column %d below %g of row magnitude %g",
				ErrSingular, maxAbs, k, MinPivotRatio, f.scale[p])
		}
		if p != k {
			for j := 0; j < n; j++ {
				d[p*n+j], d[k*n+j] = d[k*n+j], d[p*n+j]
			}
			f.pivot[p], f.pivot[k] = f.pivot[k], f.pivot[p]
			f.sign = -f.sign
			f.scale[p], f.scale[k] = f.scale[k], f.scale[p]
		}
		inv := 1 / d[k*n+k]
		for i := k + 1; i < n; i++ {
			l := d[i*n+k] * inv
			d[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				d[i*n+j] -= l * d[k*n+j]
			}
		}
	}
	return nil
}

// SolveVec solves A x = b for a single right-hand side.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	x := make([]float64, f.lu.rows)
	if err := f.SolveVecTo(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveVecTo solves A x = b into the caller-owned slice x, which must not
// alias b (the permutation is applied while loading b).
func (f *LU) SolveVecTo(x, b []float64) error {
	n := f.lu.rows
	if len(b) != n || len(x) != n {
		return fmt.Errorf("%w: solve with rhs of %d into %d, want %d", ErrDimension, len(b), len(x), n)
	}
	// Apply the permutation while loading b.
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	f.substitute(x)
	return nil
}

// substitute runs forward substitution with unit-diagonal L and back
// substitution with U, in place on an already-permuted right-hand side.
func (f *LU) substitute(x []float64) {
	n := f.lu.rows
	d := f.lu.data
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= d[i*n+j] * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= d[i*n+j] * x[j]
		}
		x[i] = s / d[i*n+i]
	}
}

// Solve solves A X = B column by column.
func (f *LU) Solve(b *Matrix) (*Matrix, error) {
	out := New(f.lu.rows, b.cols)
	if err := f.SolveTo(out, b); err != nil {
		return nil, err
	}
	return out, nil
}

// SolveTo solves A X = B into the caller-owned dst, which must have B's
// shape and must not alias B. No allocations occur on the success path.
func (f *LU) SolveTo(dst, b *Matrix) error {
	n := f.lu.rows
	if b.rows != n {
		return fmt.Errorf("%w: solve with rhs %dx%d, want %d rows", ErrDimension, b.rows, b.cols, n)
	}
	if dst.rows != b.rows || dst.cols != b.cols {
		return fmt.Errorf("%w: solve into %dx%d, want %dx%d", ErrDimension, dst.rows, dst.cols, b.rows, b.cols)
	}
	if n >= luBatchCutover && b.cols > 1 {
		for j0 := 0; j0 < b.cols; j0 += luBatchCols {
			nb := min(luBatchCols, b.cols-j0)
			x := f.batchScratch(nb)
			for i := 0; i < n; i++ {
				brow := b.data[f.pivot[i]*b.cols+j0:]
				copy(x[i*nb:(i+1)*nb], brow[:nb])
			}
			f.substituteBatch(x, nb)
			for i := 0; i < n; i++ {
				copy(dst.data[i*b.cols+j0:i*b.cols+j0+nb], x[i*nb:(i+1)*nb])
			}
		}
		return nil
	}
	for j := 0; j < b.cols; j++ {
		for i := 0; i < n; i++ {
			f.col[i] = b.data[f.pivot[i]*b.cols+j]
		}
		f.substitute(f.col)
		for i := 0; i < n; i++ {
			dst.data[i*b.cols+j] = f.col[i]
		}
	}
	return nil
}

// batchScratch returns the packed nb-column scratch block, allocating it
// on first use so evaluate-only workloads at small orders never pay for
// it. Steady-state calls reuse the buffer.
func (f *LU) batchScratch(nb int) []float64 {
	n := f.lu.rows
	if f.batch == nil {
		f.batch = make([]float64, n*luBatchCols)
	}
	return f.batch[:n*nb]
}

// substituteBatch runs forward/back substitution on nb packed columns at
// once; x[i*nb+c] holds row i of column c. Each column undergoes exactly
// the per-column op sequence of substitute — no zero-skips are added and
// the diagonal divide stays a divide — so the blocked path is bit-for-bit
// identical to the per-column one and exists purely to stream the
// factored matrix once per batch.
func (f *LU) substituteBatch(x []float64, nb int) {
	n := f.lu.rows
	d := f.lu.data
	for i := 1; i < n; i++ {
		xi := x[i*nb : (i+1)*nb]
		for j := 0; j < i; j++ {
			l := d[i*n+j]
			xj := x[j*nb : (j+1)*nb]
			for c := range xi {
				xi[c] -= l * xj[c]
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		xi := x[i*nb : (i+1)*nb]
		for j := i + 1; j < n; j++ {
			u := d[i*n+j]
			xj := x[j*nb : (j+1)*nb]
			for c := range xi {
				xi[c] -= u * xj[c]
			}
		}
		dii := d[i*n+i]
		for c := range xi {
			xi[c] /= dii
		}
	}
}

// InverseTo writes A^{-1} into the caller-owned n-by-n dst without
// allocating: it solves A X = I column by column against implicit unit
// vectors.
func (f *LU) InverseTo(dst *Matrix) error {
	n := f.lu.rows
	if dst.rows != n || dst.cols != n {
		return fmt.Errorf("%w: inverse into %dx%d, want %dx%d", ErrDimension, dst.rows, dst.cols, n, n)
	}
	if n >= luBatchCutover {
		for j0 := 0; j0 < n; j0 += luBatchCols {
			nb := min(luBatchCols, n-j0)
			x := f.batchScratch(nb)
			for i := 0; i < n; i++ {
				xi := x[i*nb : (i+1)*nb]
				for c := range xi {
					xi[c] = 0
				}
				if p := f.pivot[i]; p >= j0 && p < j0+nb {
					xi[p-j0] = 1
				}
			}
			f.substituteBatch(x, nb)
			for i := 0; i < n; i++ {
				copy(dst.data[i*n+j0:i*n+j0+nb], x[i*nb:(i+1)*nb])
			}
		}
		return nil
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if f.pivot[i] == j {
				f.col[i] = 1
			} else {
				f.col[i] = 0
			}
		}
		f.substitute(f.col)
		for i := 0; i < n; i++ {
			dst.data[i*n+j] = f.col[i]
		}
	}
	return nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	det := f.sign
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// Inverse returns A^{-1} for a square matrix A, or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(Identity(a.rows))
}

// SolveLinear solves A x = b directly (factor + solve) for convenience at
// call sites that need a single solve.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}

// Det returns the determinant of a square matrix, or 0 when the matrix is
// exactly singular (a zero pivot short-circuits the factorization).
func Det(a *Matrix) (float64, error) {
	f, err := Factor(a)
	if err != nil {
		if errors.Is(err, ErrSingular) {
			return 0, nil
		}
		return 0, err
	}
	return f.Det(), nil
}
