package mat

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
)

// DefaultSparsePivotRatio is the scaled pivot-magnitude floor for
// FactorSparse: a diagonal pivot whose magnitude falls below this ratio
// of its row's largest input magnitude aborts the no-pivoting
// factorization with ErrSingular, mirroring the dense LU's near-singular
// guard. Callers (the markov sparse path) treat that as "fall back to the
// dense pivoted solver", so the threshold only needs to catch genuinely
// dangerous pivots, not tune accuracy.
const DefaultSparsePivotRatio = 1e-12

// SparseLU is a sparse LU factorization PᵀAP = LU without numerical
// pivoting, where P is a fill-reducing symmetric permutation (minimum
// degree or reverse Cuthill–McKee, near-dense rows pinned last). L has an
// implicit unit diagonal; U's diagonal is stored separately. The factor
// rows live in flat CSR arrays so that Refactor can rebuild the
// factorization without reallocating — the markov sparse path refactors
// once per solve on a fixed support, where per-row append growth would
// otherwise dominate the elimination flops. The Markov systems this
// factors — the replaced-row stationary system and its low-rank
// derivatives — are (weakly) diagonally dominant on their sparse rows,
// which is what makes the no-pivoting factorization viable; the scaled
// pivot guard catches the cases where it is not.
type SparseLU struct {
	n     int
	perm  []int // perm[k] = original index of ordered position k
	iperm []int // iperm[orig] = ordered position

	lptr  []int32 // n+1 row pointers into lcol/lval
	lcol  []int32 // L columns (< row), ascending within each row
	lval  []float64
	uptr  []int32 // n+1 row pointers into ucol/uval
	ucol  []int32 // strict-U columns (> row), ascending within each row
	uval  []float64
	udiag []float64

	y  []float64 // permuted solve scratch
	ym []float64 // permuted multi-rhs scratch, grown on demand
}

// FactorSparse computes a sparse LU factorization of the square matrix a.
// pivotRatio scales the near-singular rejection threshold (see
// DefaultSparsePivotRatio; pass 0 for the default). The factorization
// rejects — rather than silently amplifies — rows whose diagonal pivot
// collapses relative to the row's input magnitude.
func FactorSparse(a *Sparse, pivotRatio float64) (*SparseLU, error) {
	return FactorSparseOrdered(a, nil, pivotRatio)
}

// FactorSparseOrdered is FactorSparse with a caller-supplied elimination
// order (perm[k] = original index of ordered position k). The symbolic
// analysis — FillOrder or RCMOrder — depends only on the sparsity
// pattern, so callers that factor a sequence of matrices with identical
// support (line-search probes, successive descent iterates) can compute
// the ordering once and amortize it. A nil perm computes FillOrder(a)
// internally.
func FactorSparseOrdered(a *Sparse, perm []int, pivotRatio float64) (*SparseLU, error) {
	f := &SparseLU{}
	if err := f.Refactor(a, perm, pivotRatio); err != nil {
		return nil, err
	}
	return f, nil
}

// Refactor recomputes the factorization of a into f, reusing f's factor
// storage. After the first factorization on a given support, subsequent
// Refactor calls allocate nothing: the fill pattern of a fixed support
// under a fixed ordering is itself fixed, so the flat arrays are already
// the right size. perm and pivotRatio behave as in FactorSparseOrdered.
// On error f is left unusable and must be refactored before solving.
func (f *SparseLU) Refactor(a *Sparse, perm []int, pivotRatio float64) error {
	if a.rows != a.cols {
		return fmt.Errorf("%w: sparse LU of %dx%d", ErrDimension, a.rows, a.cols)
	}
	if pivotRatio <= 0 {
		pivotRatio = DefaultSparsePivotRatio
	}
	n := a.rows
	if perm != nil && len(perm) != n {
		return fmt.Errorf("%w: ordering of %d for order %d", ErrDimension, len(perm), n)
	}
	f.n = n
	if cap(f.udiag) < n {
		f.perm = make([]int, n)
		f.iperm = make([]int, n)
		f.lptr = make([]int32, n+1)
		f.uptr = make([]int32, n+1)
		f.udiag = make([]float64, n)
		f.y = make([]float64, n)
	}
	f.perm = f.perm[:n]
	f.iperm = f.iperm[:n]
	f.lptr = f.lptr[:n+1]
	f.uptr = f.uptr[:n+1]
	f.udiag = f.udiag[:n]
	f.y = f.y[:n]
	f.lcol, f.lval = f.lcol[:0], f.lval[:0]
	f.ucol, f.uval = f.ucol[:0], f.uval[:0]
	if perm == nil {
		copy(f.perm, FillOrder(a))
	} else {
		copy(f.perm, perm)
	}
	for k, orig := range f.perm {
		f.iperm[orig] = k
	}

	// Row-wise (up-looking) elimination with a dense accumulator: scatter
	// the permuted row, eliminate against every finished U row it touches
	// in ascending column order, then harvest the L and U entries. The
	// ascending-order walk is a flag scan over [0, k) — O(n) per row, an
	// O(n²) total that is noise next to the elimination flops.
	x := make([]float64, n)
	inRow := make([]bool, n)
	touched := make([]int32, 0, n)
	f.lptr[0], f.uptr[0] = 0, 0
	for k := 0; k < n; k++ {
		orig := f.perm[k]
		cols, vals := a.Row(orig)
		rowMax := 0.0
		for i, c := range cols {
			pc := f.iperm[c]
			x[pc] = vals[i]
			if !inRow[pc] {
				inRow[pc] = true
				touched = append(touched, int32(pc))
			}
			if m := math.Abs(vals[i]); m > rowMax {
				rowMax = m
			}
		}
		for j := 0; j < k; j++ {
			if !inRow[j] {
				continue
			}
			l := x[j] / f.udiag[j]
			x[j] = 0
			if l != 0 {
				f.lcol = append(f.lcol, int32(j))
				f.lval = append(f.lval, l)
				uc := f.ucol[f.uptr[j]:f.uptr[j+1]]
				uv := f.uval[f.uptr[j]:f.uptr[j+1]]
				for i, c := range uc {
					if !inRow[c] {
						inRow[c] = true
						touched = append(touched, c)
					}
					x[c] -= l * uv[i]
				}
			}
		}
		d := x[k]
		if d == 0 || math.Abs(d) < pivotRatio*rowMax || rowMax == 0 {
			for _, c := range touched {
				x[c] = 0
				inRow[c] = false
			}
			return fmt.Errorf("%w: sparse pivot %g at ordered row %d (row max %g)",
				ErrSingular, d, k, rowMax)
		}
		f.udiag[k] = d
		x[k] = 0
		f.lptr[k+1] = int32(len(f.lcol))
		// Harvest the strict upper part in ascending column order: sort the
		// touched list once (it holds every fill position) and copy out.
		slices.Sort(touched)
		for _, c := range touched {
			inRow[c] = false
			if int(c) <= k {
				x[c] = 0
				continue
			}
			if v := x[c]; v != 0 {
				f.ucol = append(f.ucol, c)
				f.uval = append(f.uval, v)
			}
			x[c] = 0
		}
		f.uptr[k+1] = int32(len(f.ucol))
		touched = touched[:0]
	}
	return nil
}

// NNZ returns the number of stored factor entries (L + U + diagonal),
// the fill diagnostic behind the dense↔sparse crossover documentation.
func (f *SparseLU) NNZ() int {
	return int(f.lptr[f.n]) + int(f.uptr[f.n]) + f.n
}

// Order returns the matrix order.
func (f *SparseLU) Order() int { return f.n }

// SolveVecTo solves A x = b into the caller-owned x, which must not
// alias b. No allocations occur.
func (f *SparseLU) SolveVecTo(x, b []float64) error {
	n := f.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("%w: sparse solve with rhs of %d into %d, want %d", ErrDimension, len(b), len(x), n)
	}
	y := f.y
	for k := 0; k < n; k++ {
		y[k] = b[f.perm[k]]
	}
	// Forward: L y = Pb (unit diagonal).
	for k := 0; k < n; k++ {
		cols := f.lcol[f.lptr[k]:f.lptr[k+1]]
		vals := f.lval[f.lptr[k]:f.lptr[k+1]]
		s := y[k]
		for i, c := range cols {
			s -= vals[i] * y[c]
		}
		y[k] = s
	}
	// Back: U y = y.
	for k := n - 1; k >= 0; k-- {
		cols := f.ucol[f.uptr[k]:f.uptr[k+1]]
		vals := f.uval[f.uptr[k]:f.uptr[k+1]]
		s := y[k]
		for i, c := range cols {
			s -= vals[i] * y[c]
		}
		y[k] = s / f.udiag[k]
	}
	for k := 0; k < n; k++ {
		x[f.perm[k]] = y[k]
	}
	return nil
}

// SolveVecTransTo solves Aᵀ x = b into the caller-owned x, which must
// not alias b — the access pattern behind the gradient's Zᵀ·(·)
// contraction on the sparse path. No allocations occur.
func (f *SparseLU) SolveVecTransTo(x, b []float64) error {
	n := f.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("%w: sparse solve-T with rhs of %d into %d, want %d", ErrDimension, len(b), len(x), n)
	}
	y := f.y
	for k := 0; k < n; k++ {
		y[k] = b[f.perm[k]]
	}
	// Uᵀ is lower triangular: column sweep over the stored U rows.
	for k := 0; k < n; k++ {
		yk := y[k] / f.udiag[k]
		y[k] = yk
		if yk != 0 {
			cols := f.ucol[f.uptr[k]:f.uptr[k+1]]
			vals := f.uval[f.uptr[k]:f.uptr[k+1]]
			for i, c := range cols {
				y[c] -= vals[i] * yk
			}
		}
	}
	// Lᵀ is unit upper triangular: reverse column sweep over the L rows.
	for k := n - 1; k >= 0; k-- {
		yk := y[k]
		if yk != 0 {
			cols := f.lcol[f.lptr[k]:f.lptr[k+1]]
			vals := f.lval[f.lptr[k]:f.lptr[k+1]]
			for i, c := range cols {
				y[c] -= vals[i] * yk
			}
		}
	}
	for k := 0; k < n; k++ {
		x[f.perm[k]] = y[k]
	}
	return nil
}

// multiBuf returns the n×k permuted scratch block, growing it on demand.
func (f *SparseLU) multiBuf(k int) []float64 {
	if cap(f.ym) < f.n*k {
		f.ym = make([]float64, f.n*k)
	}
	return f.ym[:f.n*k]
}

// SolveMultiTo solves A X = B for k right-hand sides at once. x and b
// are n×k row-major blocks — entry (i, r) lives at i*k+r, so column r is
// one right-hand side — and may alias each other. Streaming every
// right-hand side through one traversal of the factor amortizes the
// index decoding that dominates repeated SolveVecTo calls and turns the
// inner update into a contiguous k-wide AXPY. The permutation gather is
// fused into the forward sweep and the scatter into the backward one, so
// each block crosses memory exactly twice.
func (f *SparseLU) SolveMultiTo(x, b []float64, k int) error {
	n := f.n
	if k <= 0 || len(b) != n*k || len(x) != n*k {
		return fmt.Errorf("%w: sparse multi-solve with %d rhs of %d into %d, want %d", ErrDimension, k, len(b), len(x), n*k)
	}
	y := f.multiBuf(k)
	// Forward: L Y = PB (unit diagonal). Row kk of PB is read exactly
	// once, when the sweep reaches it, so the gather folds in here.
	for kk := 0; kk < n; kk++ {
		row := y[kk*k : (kk+1)*k]
		copy(row, b[f.perm[kk]*k:(f.perm[kk]+1)*k])
		cols := f.lcol[f.lptr[kk]:f.lptr[kk+1]]
		vals := f.lval[f.lptr[kk]:f.lptr[kk+1]]
		for i, c := range cols {
			v := vals[i]
			src := y[int(c)*k : (int(c)+1)*k]
			for r := range row {
				row[r] -= v * src[r]
			}
		}
	}
	// Back: U Y = Y. Row kk is final once its own update runs (its
	// dependencies all have larger ordered indices), so the scatter to
	// x[perm[kk]] folds in here; every row of b was consumed in the
	// forward sweep, so x may alias b.
	for kk := n - 1; kk >= 0; kk-- {
		cols := f.ucol[f.uptr[kk]:f.uptr[kk+1]]
		vals := f.uval[f.uptr[kk]:f.uptr[kk+1]]
		row := y[kk*k : (kk+1)*k]
		for i, c := range cols {
			v := vals[i]
			src := y[int(c)*k : (int(c)+1)*k]
			for r := range row {
				row[r] -= v * src[r]
			}
		}
		d := f.udiag[kk]
		out := x[f.perm[kk]*k : (f.perm[kk]+1)*k]
		for r := range row {
			row[r] /= d
			out[r] = row[r]
		}
	}
	return nil
}

// SolveMultiTransTo solves Aᵀ X = B for k right-hand sides at once, with
// the same n×k row-major block layout as SolveMultiTo. x and b may
// alias.
func (f *SparseLU) SolveMultiTransTo(x, b []float64, k int) error {
	n := f.n
	if k <= 0 || len(b) != n*k || len(x) != n*k {
		return fmt.Errorf("%w: sparse multi-solve-T with %d rhs of %d into %d, want %d", ErrDimension, k, len(b), len(x), n*k)
	}
	y := f.multiBuf(k)
	for kk := 0; kk < n; kk++ {
		copy(y[kk*k:(kk+1)*k], b[f.perm[kk]*k:(f.perm[kk]+1)*k])
	}
	// Uᵀ is lower triangular: column sweep over the stored U rows.
	for kk := 0; kk < n; kk++ {
		row := y[kk*k : (kk+1)*k]
		d := f.udiag[kk]
		for r := range row {
			row[r] /= d
		}
		cols := f.ucol[f.uptr[kk]:f.uptr[kk+1]]
		vals := f.uval[f.uptr[kk]:f.uptr[kk+1]]
		for i, c := range cols {
			v := vals[i]
			dst := y[int(c)*k : (int(c)+1)*k]
			for r := range row {
				dst[r] -= v * row[r]
			}
		}
	}
	// Lᵀ is unit upper triangular: reverse column sweep over the L rows.
	// Row kk receives its last update from rows with larger ordered
	// indices, so by the time the sweep reaches it it is final and can
	// scatter straight out.
	for kk := n - 1; kk >= 0; kk-- {
		row := y[kk*k : (kk+1)*k]
		cols := f.lcol[f.lptr[kk]:f.lptr[kk+1]]
		vals := f.lval[f.lptr[kk]:f.lptr[kk+1]]
		for i, c := range cols {
			v := vals[i]
			dst := y[int(c)*k : (int(c)+1)*k]
			for r := range row {
				dst[r] -= v * row[r]
			}
		}
		copy(x[f.perm[kk]*k:(f.perm[kk]+1)*k], row)
	}
	return nil
}

// FillOrder returns a minimum-degree ordering of a's symmetrized
// sparsity pattern: vertices are eliminated lowest-degree-first with
// explicit clique formation on a bitset adjacency, which tracks the fill
// a factorization would actually create. On the 2D geometric supports
// the markov sparse path factors, this cuts fill 2–4× versus RCMOrder.
// Near-dense rows (degree ≥ n/2 — the normalization row of the
// stationary system) are excluded from the elimination graph and pinned
// last, where they add no fill to any other row. The ordering depends
// only on the pattern, so callers may reuse it across
// FactorSparseOrdered calls on matrices with identical support.
func FillOrder(a *Sparse) []int {
	n := a.rows
	words := (n + 63) / 64
	adj := make([]uint64, n*words)
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, c := range cols {
			j := int(c)
			if j != i {
				adj[i*words+j>>6] |= 1 << (uint(j) & 63)
				adj[j*words+i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	popRow := func(i int, mask []uint64) int {
		row := adj[i*words : (i+1)*words]
		d := 0
		for w := range row {
			d += bits.OnesCount64(row[w] & mask[w])
		}
		return d
	}

	// alive masks the vertices still in the elimination graph; dense
	// vertices never enter it.
	alive := make([]uint64, words)
	full := make([]uint64, words)
	for i := 0; i < n; i++ {
		full[i>>6] |= 1 << (uint(i) & 63)
	}
	copy(alive, full)
	dense := make([]bool, n)
	deg := make([]int, n)
	sparseCount := 0
	for i := 0; i < n; i++ {
		deg[i] = popRow(i, full)
		if deg[i] >= n/2 && n > 4 {
			dense[i] = true
			alive[i>>6] &^= 1 << (uint(i) & 63)
		} else {
			sparseCount++
			deg[i] = 0 // recomputed against alive below
		}
	}
	for i := 0; i < n; i++ {
		if !dense[i] {
			deg[i] = popRow(i, alive)
		}
	}

	order := make([]int, 0, n)
	inGraph := make([]bool, n)
	for i := 0; i < n; i++ {
		inGraph[i] = !dense[i]
	}
	for len(order) < sparseCount {
		v, best := -1, n+1
		for i := 0; i < n; i++ {
			if inGraph[i] && deg[i] < best {
				v, best = i, deg[i]
			}
		}
		order = append(order, v)
		inGraph[v] = false
		alive[v>>6] &^= 1 << (uint(v) & 63)
		vrow := adj[v*words : (v+1)*words]
		// Clique the surviving neighbors: eliminating v joins them all.
		for w := 0; w < words; w++ {
			m := vrow[w] & alive[w]
			for m != 0 {
				u := w<<6 + bits.TrailingZeros64(m)
				m &= m - 1
				urow := adj[u*words : (u+1)*words]
				for ww := range urow {
					urow[ww] |= vrow[ww]
				}
				urow[u>>6] &^= 1 << (uint(u) & 63)
				deg[u] = popRow(u, alive)
			}
		}
	}
	// Dense vertices eliminate last, in index order, as in RCMOrder.
	for i := 0; i < n; i++ {
		if dense[i] {
			order = append(order, i)
		}
	}
	return order
}

// RCMOrder returns a reverse Cuthill–McKee ordering of a's symmetrized
// sparsity pattern. Near-dense rows (degree ≥ n/2 — the rank-one-shifted
// last row of the Markov systems) are excluded from the BFS and pinned to
// the end of the ordering, where their elimination adds no fill to any
// other row. The ordering depends only on the pattern, so callers may
// reuse it across FactorSparseOrdered calls on matrices with identical
// support. Prefer FillOrder, which tracks actual fill instead of
// bandwidth; RCMOrder remains for comparison and as a cheaper symbolic
// pass on very large instances.
func RCMOrder(a *Sparse) []int {
	n := a.rows
	// Symmetrized adjacency, diagonal excluded.
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, c := range cols {
			if int(c) != i {
				deg[i]++
				deg[c]++
			}
		}
	}
	adjPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		adjPtr[i+1] = adjPtr[i] + deg[i]
	}
	adj := make([]int32, adjPtr[n])
	next := make([]int, n)
	copy(next, adjPtr[:n])
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, c := range cols {
			if int(c) != i {
				adj[next[i]] = c
				next[i]++
				adj[next[c]] = int32(i)
				next[c]++
			}
		}
	}

	dense := make([]bool, n)
	for i := 0; i < n; i++ {
		if deg[i] >= n/2 && n > 4 {
			dense[i] = true
		}
	}

	order := make([]int, 0, n)
	visited := make([]bool, n)
	// Cuthill–McKee BFS over the sparse vertices, lowest-degree start.
	nbr := make([]int, 0, n)
	for {
		// Symmetrized degrees reach 2(n−1), so the sentinel must sit above
		// that, not at n+1.
		start, startDeg := -1, 2*n
		for i := 0; i < n; i++ {
			if !visited[i] && !dense[i] && deg[i] < startDeg {
				start, startDeg = i, deg[i]
			}
		}
		if start < 0 {
			break
		}
		visited[start] = true
		queue := []int{start}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			nbr = nbr[:0]
			for _, vc := range adj[adjPtr[u]:adjPtr[u+1]] {
				v := int(vc)
				if !visited[v] && !dense[v] {
					visited[v] = true
					nbr = append(nbr, v)
				}
			}
			slices.SortFunc(nbr, func(a, b int) int { return deg[a] - deg[b] })
			queue = append(queue, nbr...)
		}
		order = append(order, queue...)
	}
	// Reverse (the "R" in RCM), then append the dense vertices in index
	// order so they eliminate last.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for i := 0; i < n; i++ {
		if dense[i] {
			order = append(order, i)
		}
	}
	return order
}

// LowRankSolver solves (A + U·Vᵀ) x = b and its transpose by the
// Sherman–Morrison–Woodbury identity over a reused sparse factorization
// of A:
//
//	(A + UVᵀ)⁻¹ = A⁻¹ − A⁻¹U (I + VᵀA⁻¹U)⁻¹ VᵀA⁻¹.
//
// The base factorization is shared, so a rank-r update costs r sparse
// solves up front and one sparse solve plus O(nr) per subsequent
// right-hand side — this is how the markov sparse path absorbs the
// rank-one W = 1πᵀ densification of I − P + W, and how line-search
// probes that perturb only a handful of transition rows can reuse the
// factorization of the unperturbed system instead of refactoring.
type LowRankSolver struct {
	base  *SparseLU
	trans bool        // base factors Aᵀ: swap the base solve directions
	r     int
	u, v  [][]float64 // the update columns, copied
	w     [][]float64 // w_i = A⁻¹ u_i
	wt    [][]float64 // wt_i = A⁻ᵀ v_i
	capl  *LU         // dense LU of (I + VᵀW)
	capt  *LU         // dense LU of its transpose, for SolveVecTransTo
	s, t  []float64   // rank-sized scratch
	y     []float64   // order-sized scratch
	sm    []float64   // rank×k multi-rhs scratch, grown on demand
}

// bSolve and bSolveT solve against the conceptual base matrix A,
// honoring the trans flag (base holds a factorization of Aᵀ when set).
func (lr *LowRankSolver) bSolve(x, b []float64) error {
	if lr.trans {
		return lr.base.SolveVecTransTo(x, b)
	}
	return lr.base.SolveVecTo(x, b)
}

func (lr *LowRankSolver) bSolveT(x, b []float64) error {
	if lr.trans {
		return lr.base.SolveVecTo(x, b)
	}
	return lr.base.SolveVecTransTo(x, b)
}

func (lr *LowRankSolver) bSolveMulti(x, b []float64, k int) error {
	if lr.trans {
		return lr.base.SolveMultiTransTo(x, b, k)
	}
	return lr.base.SolveMultiTo(x, b, k)
}

func (lr *LowRankSolver) bSolveMultiT(x, b []float64, k int) error {
	if lr.trans {
		return lr.base.SolveMultiTo(x, b, k)
	}
	return lr.base.SolveMultiTransTo(x, b, k)
}

// NewLowRankSolver builds a Woodbury solver for A + Σᵢ uᵢvᵢᵀ over the
// given base factorization of A. It returns ErrSingular when the
// capacitance matrix I + VᵀA⁻¹U is singular (the updated matrix is
// singular even though A is not).
func NewLowRankSolver(base *SparseLU, u, v [][]float64) (*LowRankSolver, error) {
	return newLowRankSolver(base, false, u, v)
}

// NewLowRankSolverTrans is NewLowRankSolver for a base matrix that is
// the TRANSPOSE of the factored one: it solves (Bᵀ + Σᵢ uᵢvᵢᵀ) x = b
// over a factorization of B. The markov sparse path uses this to derive
// the fundamental-matrix system from the already-factored stationary
// system instead of paying for a second sparse factorization.
func NewLowRankSolverTrans(base *SparseLU, u, v [][]float64) (*LowRankSolver, error) {
	return newLowRankSolver(base, true, u, v)
}

func newLowRankSolver(base *SparseLU, trans bool, u, v [][]float64) (*LowRankSolver, error) {
	r := len(u)
	if len(v) != r || r == 0 {
		return nil, fmt.Errorf("%w: %d update u-columns, %d v-columns", ErrDimension, len(u), len(v))
	}
	n := base.n
	lr := &LowRankSolver{
		base:  base,
		trans: trans,
		r:     r,
		u:     make([][]float64, r),
		v:     make([][]float64, r),
		w:     make([][]float64, r),
		wt:    make([][]float64, r),
		s:     make([]float64, r),
		t:     make([]float64, r),
		y:     make([]float64, n),
	}
	for i := 0; i < r; i++ {
		if len(u[i]) != n || len(v[i]) != n {
			return nil, fmt.Errorf("%w: update column of %d/%d for order %d", ErrDimension, len(u[i]), len(v[i]), n)
		}
		lr.u[i] = append([]float64(nil), u[i]...)
		lr.v[i] = append([]float64(nil), v[i]...)
		lr.w[i] = make([]float64, n)
		lr.wt[i] = make([]float64, n)
		if err := lr.bSolve(lr.w[i], lr.u[i]); err != nil {
			return nil, err
		}
		if err := lr.bSolveT(lr.wt[i], lr.v[i]); err != nil {
			return nil, err
		}
	}
	capm := New(r, r)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			dot, _ := Dot(lr.v[i], lr.w[j])
			d := 0.0
			if i == j {
				d = 1
			}
			capm.Set(i, j, d+dot)
		}
	}
	capl, err := Factor(capm)
	if err != nil {
		return nil, err
	}
	capt, err := Factor(Transpose(capm))
	if err != nil {
		return nil, err
	}
	lr.capl, lr.capt = capl, capt
	return lr, nil
}

// SolveVecTo solves (A + UVᵀ) x = b into x, which must not alias b.
// No allocations occur.
func (lr *LowRankSolver) SolveVecTo(x, b []float64) error {
	if err := lr.bSolve(x, b); err != nil {
		return err
	}
	for i := 0; i < lr.r; i++ {
		dot, _ := Dot(lr.v[i], x)
		lr.s[i] = dot
	}
	if err := lr.capl.SolveVecTo(lr.t, lr.s); err != nil {
		return err
	}
	for i := 0; i < lr.r; i++ {
		ti := lr.t[i]
		if ti == 0 {
			continue
		}
		wi := lr.w[i]
		for j := range x {
			x[j] -= ti * wi[j]
		}
	}
	return nil
}

// SolveVecTransTo solves (A + UVᵀ)ᵀ x = b into x, which must not alias
// b: (Aᵀ + VUᵀ)⁻¹ = A⁻ᵀ − A⁻ᵀV (I + VᵀA⁻¹U)⁻ᵀ UᵀA⁻ᵀ. No allocations
// occur.
func (lr *LowRankSolver) SolveVecTransTo(x, b []float64) error {
	if err := lr.bSolveT(x, b); err != nil {
		return err
	}
	for i := 0; i < lr.r; i++ {
		dot, _ := Dot(lr.u[i], x)
		lr.s[i] = dot
	}
	if err := lr.capt.SolveVecTo(lr.t, lr.s); err != nil {
		return err
	}
	for i := 0; i < lr.r; i++ {
		ti := lr.t[i]
		if ti == 0 {
			continue
		}
		wi := lr.wt[i]
		for j := range x {
			x[j] -= ti * wi[j]
		}
	}
	return nil
}

// woodburyCorrect applies the rank-r Woodbury correction to a solved
// n×k block in place: x -= W · cap⁻¹ · (Cᵀ x), where C columns are the
// probe vectors (v for forward solves, u for transpose ones) and W the
// matching presolved update images.
func (lr *LowRankSolver) woodburyCorrect(x []float64, k int, c, w [][]float64, capl *LU) error {
	n := len(lr.y)
	if cap(lr.sm) < 2*lr.r*k {
		lr.sm = make([]float64, 2*lr.r*k)
	}
	s := lr.sm[:lr.r*k]
	t := lr.sm[lr.r*k : 2*lr.r*k]
	for i := range s {
		s[i] = 0
	}
	for i := 0; i < lr.r; i++ {
		si := s[i*k : (i+1)*k]
		ci := c[i]
		for j := 0; j < n; j++ {
			if cij := ci[j]; cij != 0 {
				row := x[j*k : (j+1)*k]
				for r := range si {
					si[r] += cij * row[r]
				}
			}
		}
	}
	for r := 0; r < k; r++ {
		for i := 0; i < lr.r; i++ {
			lr.s[i] = s[i*k+r]
		}
		if err := capl.SolveVecTo(lr.t, lr.s); err != nil {
			return err
		}
		for i := 0; i < lr.r; i++ {
			t[i*k+r] = lr.t[i]
		}
	}
	for i := 0; i < lr.r; i++ {
		wi := w[i]
		ti := t[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			if wij := wi[j]; wij != 0 {
				row := x[j*k : (j+1)*k]
				for r := range row {
					row[r] -= wij * ti[r]
				}
			}
		}
	}
	return nil
}

// SolveMultiTo solves (A + UVᵀ) X = B for k right-hand sides in the n×k
// row-major block layout of SparseLU.SolveMultiTo. x and b may alias.
func (lr *LowRankSolver) SolveMultiTo(x, b []float64, k int) error {
	if err := lr.bSolveMulti(x, b, k); err != nil {
		return err
	}
	return lr.woodburyCorrect(x, k, lr.v, lr.w, lr.capl)
}

// SolveMultiTransTo solves (A + UVᵀ)ᵀ X = B for k right-hand sides in
// the n×k row-major block layout of SparseLU.SolveMultiTo. x and b may
// alias.
func (lr *LowRankSolver) SolveMultiTransTo(x, b []float64, k int) error {
	if err := lr.bSolveMultiT(x, b, k); err != nil {
		return err
	}
	return lr.woodburyCorrect(x, k, lr.u, lr.wt, lr.capt)
}
