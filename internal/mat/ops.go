package mat

import (
	"fmt"
	"math"
)

// AddM returns a + b.
func AddM(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: add %dx%d and %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out, nil
}

// SubM returns a - b.
func SubM(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: sub %dx%d and %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out, nil
}

// Scale returns s * a as a new matrix.
func Scale(s float64, a *Matrix) *Matrix {
	out := New(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = s * a.data[i]
	}
	return out
}

// ScaleInPlace multiplies every entry of a by s.
func ScaleInPlace(s float64, a *Matrix) {
	for i := range a.data {
		a.data[i] *= s
	}
}

// AddInPlace adds s*b into a (a += s*b). The shapes must match.
func AddInPlace(a *Matrix, s float64, b *Matrix) error {
	if a.rows != b.rows || a.cols != b.cols {
		return fmt.Errorf("%w: axpy %dx%d and %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols)
	}
	for i := range a.data {
		a.data[i] += s * b.data[i]
	}
	return nil
}

// Mul returns the matrix product a*b.
func Mul(a, b *Matrix) (*Matrix, error) {
	out := New(a.rows, b.cols)
	if err := MulTo(out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// MulTo computes the matrix product a*b into the caller-owned dst, which
// must not alias a or b. It performs no allocations on the success path.
func MulTo(dst, a, b *Matrix) error {
	return MulToRows(dst, a, b, 0, a.rows)
}

// mulTileK is the number of b rows processed per tile in large products:
// the tile is revisited for every dst row, so keeping it L1/L2-resident
// cuts memory traffic roughly by the tile count. Products whose inner
// dimension fits in one tile take the straight-line path.
const mulTileK = 64

// MulToRows computes rows [lo, hi) of the product a*b into the matching
// rows of dst, leaving all other rows of dst untouched. Row i of the
// product depends only on row i of a, so disjoint spans may be computed
// concurrently; within each entry the k-accumulation runs in the same
// ascending order (with the same exact-zero skip) as a full serial MulTo,
// which makes a row-partitioned parallel product bit-for-bit identical to
// the serial one. Tiling over k preserves that order too: tiles are
// visited in ascending k.
func MulToRows(dst, a, b *Matrix, lo, hi int) error {
	if a.cols != b.rows {
		return fmt.Errorf("%w: mul %dx%d by %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols)
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		return fmt.Errorf("%w: mul into %dx%d, want %dx%d", ErrDimension, dst.rows, dst.cols, a.rows, b.cols)
	}
	if lo < 0 || hi > a.rows || lo > hi {
		return fmt.Errorf("%w: mul rows [%d, %d) of %d", ErrDimension, lo, hi, a.rows)
	}
	for i := lo; i < hi; i++ {
		orow := dst.data[i*b.cols : (i+1)*b.cols]
		for j := range orow {
			orow[j] = 0
		}
	}
	// ikj loop order keeps the inner loop streaming over contiguous rows of
	// b and dst, which matters once M grows past cache lines.
	if b.rows <= mulTileK {
		for i := lo; i < hi; i++ {
			arow := a.data[i*a.cols : (i+1)*a.cols]
			orow := dst.data[i*b.cols : (i+1)*b.cols]
			for k, aik := range arow {
				if aik == 0 {
					continue
				}
				brow := b.data[k*b.cols : (k+1)*b.cols]
				for j, bkj := range brow {
					orow[j] += aik * bkj
				}
			}
		}
		return nil
	}
	for k0 := 0; k0 < b.rows; k0 += mulTileK {
		k1 := min(k0+mulTileK, b.rows)
		for i := lo; i < hi; i++ {
			aseg := a.data[i*a.cols+k0 : i*a.cols+k1]
			orow := dst.data[i*b.cols : (i+1)*b.cols]
			for kk, aik := range aseg {
				if aik == 0 {
					continue
				}
				brow := b.data[(k0+kk)*b.cols : (k0+kk+1)*b.cols]
				for j, bkj := range brow {
					orow[j] += aik * bkj
				}
			}
		}
	}
	return nil
}

// Transpose returns the transpose of a.
func Transpose(a *Matrix) *Matrix {
	out := New(a.cols, a.rows)
	_ = TransposeTo(out, a)
	return out
}

// TransposeTo writes the transpose of a into the caller-owned dst, which
// must not alias a.
func TransposeTo(dst, a *Matrix) error {
	if dst.rows != a.cols || dst.cols != a.rows {
		return fmt.Errorf("%w: transpose %dx%d into %dx%d", ErrDimension, a.rows, a.cols, dst.rows, dst.cols)
	}
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			dst.data[j*a.rows+i] = a.data[i*a.cols+j]
		}
	}
	return nil
}

// MulVec returns the matrix-vector product a*x.
func MulVec(a *Matrix, x []float64) ([]float64, error) {
	out := make([]float64, a.rows)
	if err := MulVecTo(out, a, x); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecTo computes the matrix-vector product a*x into the caller-owned
// dst, which must not alias x.
func MulVecTo(dst []float64, a *Matrix, x []float64) error {
	if a.cols != len(x) {
		return fmt.Errorf("%w: mulvec %dx%d by vector of %d", ErrDimension, a.rows, a.cols, len(x))
	}
	if len(dst) != a.rows {
		return fmt.Errorf("%w: mulvec into vector of %d, want %d", ErrDimension, len(dst), a.rows)
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return nil
}

// VecMul returns the vector-matrix product x*a (x treated as a row vector).
func VecMul(x []float64, a *Matrix) ([]float64, error) {
	if a.rows != len(x) {
		return nil, fmt.Errorf("%w: vecmul vector of %d by %dx%d", ErrDimension, len(x), a.rows, a.cols)
	}
	out := make([]float64, a.cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out, nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: dot vectors of %d and %d", ErrDimension, len(x), len(y))
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s, nil
}

// FrobeniusInner returns the Frobenius inner product <a, b> = sum a_ij*b_ij.
func FrobeniusInner(a, b *Matrix) (float64, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return 0, fmt.Errorf("%w: inner %dx%d and %dx%d", ErrDimension, a.rows, a.cols, b.rows, b.cols)
	}
	var s float64
	for i := range a.data {
		s += a.data[i] * b.data[i]
	}
	return s, nil
}

// FrobeniusNorm returns the Frobenius norm sqrt(sum a_ij^2).
func FrobeniusNorm(a *Matrix) float64 {
	var s float64
	for _, v := range a.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry of the matrix (the max norm).
func MaxAbs(a *Matrix) float64 {
	var m float64
	for _, v := range a.data {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// RowSums returns the vector of per-row sums.
func RowSums(a *Matrix) []float64 {
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		var s float64
		for _, v := range a.data[i*a.cols : (i+1)*a.cols] {
			s += v
		}
		out[i] = s
	}
	return out
}

// SumVec returns the sum of the vector entries.
func SumVec(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// NormVec2 returns the Euclidean norm of x.
func NormVec2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// OuterOnesRow returns the matrix whose every row equals the given row
// vector; used to build W (all rows equal to the stationary distribution).
func OuterOnesRow(row []float64, rows int) *Matrix {
	out := New(rows, len(row))
	for i := 0; i < rows; i++ {
		copy(out.data[i*len(row):(i+1)*len(row)], row)
	}
	return out
}
