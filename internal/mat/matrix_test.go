package mat

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewFromRows(t *testing.T) {
	m, err := NewFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("NewFromRows: %v", err)
	}
	if got := m.At(1, 0); got != 3 {
		t.Errorf("At(1,0) = %v, want 3", got)
	}
	if got := m.At(0, 1); got != 2 {
		t.Errorf("At(0,1) = %v, want 2", got)
	}
}

func TestNewFromRowsRagged(t *testing.T) {
	if _, err := NewFromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrDimension) {
		t.Fatalf("ragged rows: err = %v, want ErrDimension", err)
	}
	if _, err := NewFromRows(nil); !errors.Is(err, ErrDimension) {
		t.Fatalf("empty rows: err = %v, want ErrDimension", err)
	}
}

func TestNewFromRowsCopies(t *testing.T) {
	src := [][]float64{{1, 2}, {3, 4}}
	m, err := NewFromRows(src)
	if err != nil {
		t.Fatalf("NewFromRows: %v", err)
	}
	src[0][0] = 99
	if m.At(0, 0) != 1 {
		t.Error("NewFromRows did not copy the input rows")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := id.At(i, j); got != want {
				t.Errorf("I(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestDiag(t *testing.T) {
	d := Diag([]float64{2, 5})
	if d.At(0, 0) != 2 || d.At(1, 1) != 5 || d.At(0, 1) != 0 {
		t.Errorf("Diag produced %v", d)
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, 7.5)
	if m.At(0, 1) != 7.5 {
		t.Errorf("round trip = %v, want 7.5", m.At(0, 1))
	}
	m.Add(0, 1, 0.5)
	if m.At(0, 1) != 8 {
		t.Errorf("after Add = %v, want 8", m.At(0, 1))
	}
}

func TestRowColCopies(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 42
	if m.At(0, 0) != 1 {
		t.Error("Row returned a view, want a copy")
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Errorf("Col(1) = %v, want [2 4]", c)
	}
	c[0] = 42
	if m.At(0, 1) != 2 {
		t.Error("Col returned a view, want a copy")
	}
}

func TestCloneIndependence(t *testing.T) {
	m, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with the original")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(2, 2)
	b, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	if err := a.CopyFrom(b); err != nil {
		t.Fatalf("CopyFrom: %v", err)
	}
	if !EqualApprox(a, b, 0) {
		t.Error("CopyFrom did not copy contents")
	}
	if err := a.CopyFrom(New(3, 3)); !errors.Is(err, ErrDimension) {
		t.Errorf("shape mismatch err = %v, want ErrDimension", err)
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{5, 6}, {7, 8}})
	sum, err := AddM(a, b)
	if err != nil {
		t.Fatalf("AddM: %v", err)
	}
	want, _ := NewFromRows([][]float64{{6, 8}, {10, 12}})
	if !EqualApprox(sum, want, 0) {
		t.Errorf("AddM = %v", sum)
	}
	diff, err := SubM(b, a)
	if err != nil {
		t.Fatalf("SubM: %v", err)
	}
	wantDiff, _ := NewFromRows([][]float64{{4, 4}, {4, 4}})
	if !EqualApprox(diff, wantDiff, 0) {
		t.Errorf("SubM = %v", diff)
	}
	sc := Scale(2, a)
	wantSc, _ := NewFromRows([][]float64{{2, 4}, {6, 8}})
	if !EqualApprox(sc, wantSc, 0) {
		t.Errorf("Scale = %v", sc)
	}
}

func TestAddDimensionMismatch(t *testing.T) {
	if _, err := AddM(New(2, 2), New(2, 3)); !errors.Is(err, ErrDimension) {
		t.Errorf("AddM err = %v, want ErrDimension", err)
	}
	if _, err := SubM(New(2, 2), New(3, 2)); !errors.Is(err, ErrDimension) {
		t.Errorf("SubM err = %v, want ErrDimension", err)
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{5, 6}, {7, 8}})
	p, err := Mul(a, b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want, _ := NewFromRows([][]float64{{19, 22}, {43, 50}})
	if !EqualApprox(p, want, 1e-12) {
		t.Errorf("Mul = %v, want %v", p, want)
	}
}

func TestMulIdentity(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	p, err := Mul(a, Identity(3))
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if !EqualApprox(p, a, 0) {
		t.Error("A*I != A")
	}
	p2, err := Mul(Identity(3), a)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if !EqualApprox(p2, a, 0) {
		t.Error("I*A != A")
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	if _, err := Mul(New(2, 3), New(2, 3)); !errors.Is(err, ErrDimension) {
		t.Errorf("Mul err = %v, want ErrDimension", err)
	}
}

func TestTranspose(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := Transpose(a)
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("Transpose = %v", at)
	}
}

func TestMulVecVecMul(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	y, err := MulVec(a, []float64{1, 1})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", y)
	}
	x, err := VecMul([]float64{1, 1}, a)
	if err != nil {
		t.Fatalf("VecMul: %v", err)
	}
	if x[0] != 4 || x[1] != 6 {
		t.Errorf("VecMul = %v, want [4 6]", x)
	}
}

func TestDotAndNorms(t *testing.T) {
	d, err := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil {
		t.Fatalf("Dot: %v", err)
	}
	if d != 32 {
		t.Errorf("Dot = %v, want 32", d)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrDimension) {
		t.Errorf("Dot err = %v, want ErrDimension", err)
	}
	a, _ := NewFromRows([][]float64{{3, 4}})
	if n := FrobeniusNorm(a); math.Abs(n-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %v, want 5", n)
	}
	if n := MaxAbs(a); n != 4 {
		t.Errorf("MaxAbs = %v, want 4", n)
	}
	if n := NormVec2([]float64{3, 4}); math.Abs(n-5) > 1e-12 {
		t.Errorf("NormVec2 = %v, want 5", n)
	}
}

func TestFrobeniusInner(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{5, 6}, {7, 8}})
	got, err := FrobeniusInner(a, b)
	if err != nil {
		t.Fatalf("FrobeniusInner: %v", err)
	}
	if got != 5+12+21+32 {
		t.Errorf("FrobeniusInner = %v, want 70", got)
	}
}

func TestRowSumsAndSumVec(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	rs := RowSums(a)
	if rs[0] != 3 || rs[1] != 7 {
		t.Errorf("RowSums = %v, want [3 7]", rs)
	}
	if s := SumVec([]float64{1, 2, 3}); s != 6 {
		t.Errorf("SumVec = %v, want 6", s)
	}
}

func TestOuterOnesRow(t *testing.T) {
	w := OuterOnesRow([]float64{0.25, 0.75}, 3)
	if w.Rows() != 3 || w.Cols() != 2 {
		t.Fatalf("shape = %dx%d", w.Rows(), w.Cols())
	}
	for i := 0; i < 3; i++ {
		if w.At(i, 0) != 0.25 || w.At(i, 1) != 0.75 {
			t.Errorf("row %d = %v", i, w.Row(i))
		}
	}
}

func TestAddInPlace(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 1}, {1, 1}})
	b, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	if err := AddInPlace(a, 2, b); err != nil {
		t.Fatalf("AddInPlace: %v", err)
	}
	want, _ := NewFromRows([][]float64{{3, 5}, {7, 9}})
	if !EqualApprox(a, want, 0) {
		t.Errorf("AddInPlace = %v", a)
	}
}

func TestScaleInPlace(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	ScaleInPlace(0.5, a)
	want, _ := NewFromRows([][]float64{{0.5, 1}, {1.5, 2}})
	if !EqualApprox(a, want, 0) {
		t.Errorf("ScaleInPlace = %v", a)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}})
	b, _ := NewFromRows([][]float64{{1.5, 1}})
	if d := MaxAbsDiff(a, b); d != 1 {
		t.Errorf("MaxAbsDiff = %v, want 1", d)
	}
	if d := MaxAbsDiff(a, New(2, 2)); !math.IsInf(d, 1) {
		t.Errorf("shape mismatch diff = %v, want +Inf", d)
	}
}

func TestStringRendering(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}})
	if got := a.String(); got != "[1.000000 2.000000]" {
		t.Errorf("String = %q", got)
	}
}

// randomMatrix builds a matrix with entries drawn uniformly from
// [-scale, scale].
func randomMatrix(r *rand.Rand, n int, scale float64) *Matrix {
	m := New(n, n)
	for i := range m.Data() {
		m.Data()[i] = scale * (2*r.Float64() - 1)
	}
	return m
}

// TestMulAssociativityProperty checks (AB)C == A(BC) on random matrices.
func TestMulAssociativityProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.IntN(6)
		a := randomMatrix(r, n, 2)
		b := randomMatrix(r, n, 2)
		c := randomMatrix(r, n, 2)
		ab, _ := Mul(a, b)
		left, _ := Mul(ab, c)
		bc, _ := Mul(b, c)
		right, _ := Mul(a, bc)
		if MaxAbsDiff(left, right) > 1e-9 {
			t.Fatalf("trial %d: (AB)C != A(BC), diff %v", trial, MaxAbsDiff(left, right))
		}
	}
}

// TestTransposeInvolutionProperty checks (A^T)^T == A via testing/quick on
// the flattened representation.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(vals [9]float64) bool {
		m := New(3, 3)
		copy(m.Data(), vals[:])
		return EqualApprox(Transpose(Transpose(m)), m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTransposeProductProperty checks (AB)^T == B^T A^T.
func TestTransposeProductProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.IntN(5)
		a := randomMatrix(r, n, 3)
		b := randomMatrix(r, n, 3)
		ab, _ := Mul(a, b)
		left := Transpose(ab)
		right, _ := Mul(Transpose(b), Transpose(a))
		if MaxAbsDiff(left, right) > 1e-9 {
			t.Fatalf("trial %d: (AB)^T != B^T A^T", trial)
		}
	}
}
