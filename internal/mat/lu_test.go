package mat

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

func TestFactorNonSquare(t *testing.T) {
	if _, err := Factor(New(2, 3)); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestFactorSingular(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Factor(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	a, _ := NewFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a, _ := NewFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLinear(a, []float64{2, 3})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestInverseKnown(t *testing.T) {
	a, _ := NewFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	want, _ := NewFromRows([][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if !EqualApprox(inv, want, 1e-12) {
		t.Errorf("Inverse = %v, want %v", inv, want)
	}
}

func TestInverseRandomProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.IntN(8)
		a := randomMatrix(r, n, 5)
		// Shift the diagonal to keep the matrix comfortably non-singular.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)*6)
		}
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("trial %d: Inverse: %v", trial, err)
		}
		prod, _ := Mul(a, inv)
		if MaxAbsDiff(prod, Identity(n)) > 1e-8 {
			t.Fatalf("trial %d: A*A^{-1} != I (diff %v)", trial, MaxAbsDiff(prod, Identity(n)))
		}
		prod2, _ := Mul(inv, a)
		if MaxAbsDiff(prod2, Identity(n)) > 1e-8 {
			t.Fatalf("trial %d: A^{-1}*A != I", trial)
		}
	}
}

func TestSolveMatrixRHS(t *testing.T) {
	a, _ := NewFromRows([][]float64{{2, 0}, {0, 4}})
	f, err := Factor(a)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	b, _ := NewFromRows([][]float64{{2, 4}, {4, 8}})
	x, err := f.Solve(b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want, _ := NewFromRows([][]float64{{1, 2}, {1, 2}})
	if !EqualApprox(x, want, 1e-12) {
		t.Errorf("Solve = %v, want %v", x, want)
	}
}

func TestSolveVecDimensionMismatch(t *testing.T) {
	a := Identity(2)
	f, err := Factor(a)
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if _, err := f.SolveVec([]float64{1, 2, 3}); !errors.Is(err, ErrDimension) {
		t.Errorf("err = %v, want ErrDimension", err)
	}
	if _, err := f.Solve(New(3, 1)); !errors.Is(err, ErrDimension) {
		t.Errorf("matrix rhs err = %v, want ErrDimension", err)
	}
}

func TestDetKnown(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	d, err := Det(a)
	if err != nil {
		t.Fatalf("Det: %v", err)
	}
	if math.Abs(d-(-2)) > 1e-12 {
		t.Errorf("Det = %v, want -2", d)
	}
}

func TestDetSingularIsZero(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {2, 4}})
	d, err := Det(a)
	if err != nil {
		t.Fatalf("Det: %v", err)
	}
	if d != 0 {
		t.Errorf("Det = %v, want 0", d)
	}
}

func TestDetPermutationSign(t *testing.T) {
	// A pure row swap has determinant -1.
	a, _ := NewFromRows([][]float64{{0, 1}, {1, 0}})
	d, err := Det(a)
	if err != nil {
		t.Fatalf("Det: %v", err)
	}
	if math.Abs(d-(-1)) > 1e-12 {
		t.Errorf("Det = %v, want -1", d)
	}
}

func TestDetProductProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 17))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.IntN(5)
		a := randomMatrix(r, n, 2)
		b := randomMatrix(r, n, 2)
		ab, _ := Mul(a, b)
		da, _ := Det(a)
		db, _ := Det(b)
		dab, _ := Det(ab)
		// Relative tolerance because determinants can be large.
		scale := math.Max(1, math.Abs(dab))
		if math.Abs(dab-da*db)/scale > 1e-9 {
			t.Fatalf("trial %d: det(AB)=%v det(A)det(B)=%v", trial, dab, da*db)
		}
	}
}

func TestFactorNearSingular(t *testing.T) {
	// Rows differ by ~machine epsilon: the second pivot survives exact
	// cancellation but collapses to ~1e-16 of the row magnitude. The old
	// exact-zero check accepted this and produced garbage solutions; the
	// scaled threshold must reject it.
	a, _ := NewFromRows([][]float64{{1, 1}, {1, 1 + 1e-16}})
	if _, err := Factor(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("near-singular err = %v, want ErrSingular", err)
	}
	// Same shape at a large scale: the threshold is relative to row
	// magnitude, not absolute.
	b, _ := NewFromRows([][]float64{{1e12, 1e12}, {1e12, 1e12 * (1 + 1e-16)}})
	if _, err := Factor(b); !errors.Is(err, ErrSingular) {
		t.Fatalf("scaled near-singular err = %v, want ErrSingular", err)
	}
}

func TestFactorTinyButWellConditioned(t *testing.T) {
	// A uniformly tiny matrix is perfectly conditioned; the scaled
	// threshold must not reject it the way an absolute floor would.
	n := 6
	a := Identity(n)
	for i, v := range a.Data() {
		a.Data()[i] = v * 1e-20
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatalf("tiny identity rejected: %v", err)
	}
	x, err := f.SolveVec([]float64{1e-20, 2e-20, 3e-20, 4e-20, 5e-20, 6e-20})
	if err != nil {
		t.Fatalf("SolveVec: %v", err)
	}
	for i := range x {
		want := float64(i + 1)
		if math.Abs(x[i]-want) > 1e-10 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want)
		}
	}
}

func TestSolveResidualProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(19, 23))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.IntN(10)
		a := randomMatrix(r, n, 3)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)*4)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = 10 * (2*r.Float64() - 1)
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			t.Fatalf("trial %d: SolveLinear: %v", trial, err)
		}
		ax, _ := MulVec(a, x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				t.Fatalf("trial %d: residual %v at %d", trial, ax[i]-b[i], i)
			}
		}
	}
}
