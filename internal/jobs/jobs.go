// Package jobs is the optimization job service: it owns long-running
// multi-restart coverage optimizations as queued, cancellable,
// checkpointable jobs instead of one-shot CLI invocations.
//
// A Manager holds a bounded FIFO queue and a fixed worker pool. Each job
// runs the restarts of an OptimizeBest-style search one at a time (seeds
// split with coverage.SplitSeeds, so an uninterrupted job reproduces
// coverage.OptimizeBest bit-for-bit), checkpoints after every completed
// restart through the coverage/persist JSON helpers, and samples live
// progress from the descent trace via coverage.Options.OnProgress. A
// Manager restarted on the same checkpoint directory re-queues every
// interrupted job and resumes it from its last completed restart.
//
// Lifecycle:
//
//	queued ──▶ running ──▶ done
//	   │          │  ├───▶ failed
//	   │          │  └───▶ cancelled   (DELETE /jobs/{id})
//	   │          └──────▶ paused      (graceful shutdown; re-queued on restart)
//	   └─────────────────▶ cancelled   (cancel before a worker picks it up)
package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/coverage"
	"repro/internal/obs"
)

// Service errors, mapped onto HTTP statuses by the API layer.
var (
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("jobs: job not found")
	// ErrQueueFull reports that the bounded queue rejected a submission.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrTerminal reports an operation on a job that already finished.
	ErrTerminal = errors.New("jobs: job already finished")
	// ErrShuttingDown reports a submission during shutdown.
	ErrShuttingDown = errors.New("jobs: manager shutting down")
	// ErrNoPlan reports a plan request for a job with no plan yet.
	ErrNoPlan = errors.New("jobs: no plan available yet")
	// ErrSpec reports an invalid job specification.
	ErrSpec = errors.New("jobs: invalid spec")
)

// State is a job lifecycle state.
type State string

// The job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StatePaused    State = "paused"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// valid reports whether s is one of the lifecycle states (used when
// loading checkpoints written by other processes).
func (s State) valid() bool {
	switch s {
	case StateQueued, StateRunning, StatePaused, StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Spec is everything needed to run one optimization job.
type Spec struct {
	// Scenario is the coverage problem to optimize.
	Scenario coverage.Scenario `json:"scenario"`
	// Objectives weights the optimization criteria.
	Objectives coverage.Objectives `json:"objectives"`
	// Options tunes each restart; Options.Seed is the master seed the
	// per-restart seeds are split from. OnProgress is owned by the
	// manager and ignored if set.
	Options coverage.Options `json:"options"`
	// Restarts is the multi-start count (default 1).
	Restarts int `json:"restarts"`
	// Sensors, when ≥ 2, makes this a fleet job: every restart runs a
	// joint K-sensor optimization (coverage.OptimizeFleetContext) instead
	// of a single-sensor one, and the resulting plan carries the fleet
	// extension. 0 and 1 mean the classic single-sensor job.
	Sensors int `json:"sensors,omitempty"`
	// Responsibility is the optional K×M per-PoI responsibility
	// assignment for a fleet job; nil means the uniform 1/K split.
	Responsibility [][]float64 `json:"responsibility,omitempty"`
}

// fleet reports whether the spec describes a joint multi-sensor job.
func (s Spec) fleet() bool { return s.Sensors >= 2 }

// Progress is a live snapshot of a job's position in its search.
type Progress struct {
	// Restarts is the job's total restart budget.
	Restarts int `json:"restarts"`
	// RestartsDone counts fully completed restarts.
	RestartsDone int `json:"restartsDone"`
	// Restart is the restart currently running (meaningful while the job
	// is running).
	Restart int `json:"restart"`
	// Iteration is the latest sampled optimizer iteration within that
	// restart.
	Iteration int `json:"iteration"`
	// Cost is the penalized cost at the latest sample.
	Cost float64 `json:"cost"`
	// BestCost is the best cost over all completed work, when any.
	BestCost *float64 `json:"bestCost,omitempty"`
}

// View is an immutable snapshot of a job, safe to hold and serialize
// while the job keeps running.
type View struct {
	ID       string     `json:"id"`
	State    State      `json:"state"`
	Scenario string     `json:"scenario"`
	Restarts int        `json:"restarts"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Progress Progress   `json:"progress"`
	// WallClockSec is the job's cumulative running time in seconds,
	// summed over every running span (pause/resume cycles included),
	// live while the job runs.
	WallClockSec float64 `json:"wallClockSec,omitempty"`
	// ItersPerSec is optimizer iterations per wall-clock second:
	// iterations of completed restarts plus the sampled position in the
	// in-flight restart, divided by WallClockSec.
	ItersPerSec float64 `json:"itersPerSec,omitempty"`
	Error       string  `json:"error,omitempty"`
}

// job is the mutable record; every field is guarded by Manager.mu except
// spec and id, which are immutable after Submit.
type job struct {
	id   string
	spec Spec

	state        State
	created      time.Time
	queuedAt     time.Time // last enqueue time, for queue-wait metrics
	deployment   string    // deployment that submitted the job, if any
	started      time.Time // start of the *current* running span
	finished     time.Time
	prog         Progress
	errMsg       string
	plan         *coverage.Plan // best-so-far, or final when done
	restartsDone int
	itersDone    int                // optimizer iterations over completed restarts
	ranSec       float64            // wall-clock seconds of finished running spans
	cancel       context.CancelFunc // non-nil while running
	userCancel   bool
	sharded      bool // runs through the shard protocol (shardrun.go)
	inQueue      bool // sitting on the local worker queue right now
}

// view snapshots the job; callers must hold Manager.mu.
func (j *job) view() View {
	v := View{
		ID:       j.id,
		State:    j.state,
		Scenario: j.spec.Scenario.Name,
		Restarts: j.spec.Restarts,
		Created:  j.created,
		Progress: j.prog,
		Error:    j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	wall := j.ranSec
	iters := j.itersDone
	if j.state == StateRunning && !j.started.IsZero() {
		wall += time.Since(j.started).Seconds()
		iters += j.prog.Iteration
	}
	if wall > 0 {
		v.WallClockSec = wall
		if iters > 0 {
			v.ItersPerSec = float64(iters) / wall
		}
	}
	return v
}

// Config tunes a Manager. The zero value is usable: two workers, a
// 16-deep queue, and no persistence.
type Config struct {
	// Workers is the worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the pending-job queue (default 16).
	QueueDepth int
	// MaxJobWorkers caps each job's descent parallelism
	// (Spec.Options.Workers): requests above the cap — and requests of 0,
	// which would otherwise mean "all of GOMAXPROCS" — are clamped to it
	// at submission, so Workers concurrent jobs cannot oversubscribe the
	// machine. 0 leaves requests untouched. Clamping never changes a
	// job's result: the descent path is bit-identical for every worker
	// count.
	MaxJobWorkers int
	// Dir is the checkpoint directory; empty disables persistence (jobs
	// are lost on process exit). Ignored when Store is set.
	Dir string
	// Store overrides the persistence backend: when non-nil, checkpoints
	// go through it instead of a filesystem store rooted at Dir. Use it
	// to plug a blob/KV backend into the checkpoint path.
	Store Store
	// Logger receives structured job-lifecycle logs (submit, start,
	// restart, checkpoint, finish), each carrying the job ID — and the
	// deployment ID, when the submission context carries one — so a job's
	// whole trail greps as one thread. Nil disables logging.
	Logger *slog.Logger
	// Metrics is the registry the manager's instruments (queue wait, run
	// duration, descent iteration time, line-search probes, checkpoint
	// write latency) register into. Nil disables metrics.
	Metrics *obs.Registry
	// Shard configures distributed restart sharding: when enabled (and a
	// persistence backend exists), every submitted multi-restart job is
	// split into restart-shards any manager sharing the Store can claim
	// through a CAS lease and run; results merge deterministically to
	// the bit-exact single-process answer. See shard.go.
	Shard ShardConfig

	// Test hooks, settable only from inside the package (crash and
	// ordering injection for the shard protocol): testDropLeases makes
	// shutdown keep held leases, simulating a node that died with work
	// in flight; testAfterShardRestart fires after each durably
	// completed shard restart.
	testDropLeases        bool
	testAfterShardRestart func(jobID string, shard, restart int)
}

// jobMetrics bundles the manager's instruments. All obs instruments are
// nil-safe, so the zero jobMetrics simply records nothing.
type jobMetrics struct {
	queueWait   *obs.Histogram
	runSeconds  *obs.Histogram
	iterSeconds *obs.Histogram
	probes      *obs.Histogram
	ckptSeconds *obs.Histogram

	// Shard-protocol instruments (see shard.go / shardrun.go).
	// Fleet-job instruments.
	fleetJobs    *obs.Counter
	fleetSensors *obs.Histogram

	shardClaims     *obs.Counter
	claimSeconds    *obs.Histogram
	shardsDone      *obs.Counter
	merges          *obs.Counter
	mergeSeconds    *obs.Histogram
	shardQueueDepth *obs.Gauge
	leaseRenewals   *obs.Counter
	leaseTakeovers  *obs.Counter
	leaseLosses     *obs.Counter
	leaseActive     *obs.Gauge
}

func newJobMetrics(r *obs.Registry) jobMetrics {
	return jobMetrics{
		queueWait: r.Histogram("coverage_job_queue_wait_seconds",
			"Time jobs spend queued before a worker picks them up.", obs.DefBuckets),
		runSeconds: r.Histogram("coverage_job_run_seconds",
			"Cumulative wall-clock running time of finished jobs.", obs.DefBuckets),
		iterSeconds: r.Histogram("coverage_descent_iteration_seconds",
			"Wall-clock time between successive descent iterations.", obs.DefBuckets),
		probes: r.Histogram("coverage_descent_line_search_probes",
			"Line-search cost evaluations per descent iteration.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128}),
		ckptSeconds: r.Histogram("coverage_checkpoint_write_seconds",
			"Job checkpoint write latency.", obs.DefBuckets),
		fleetJobs: r.Counter("fleet_jobs_total",
			"Joint multi-sensor optimization jobs submitted."),
		fleetSensors: r.Histogram("fleet_job_sensors",
			"Fleet size K of submitted fleet jobs.",
			[]float64{2, 3, 4, 6, 8, 12, 16}),
		shardClaims: r.Counter("jobs_shard_claims_total",
			"Restart-shards claimed by this node (first claims and takeovers)."),
		claimSeconds: r.Histogram("jobs_shard_claim_seconds",
			"Latency of one shard-claim scan (state reads + lease CAS).", obs.DefBuckets),
		shardsDone: r.Counter("jobs_shards_completed_total",
			"Restart-shards driven to a terminal state by this node."),
		merges: r.Counter("jobs_shard_merges_total",
			"Deterministic best-of merges this node performed or observed."),
		mergeSeconds: r.Histogram("jobs_shard_merge_seconds",
			"Latency of the shard-result merge (state reads + plan publish + CAS).", obs.DefBuckets),
		shardQueueDepth: r.Gauge("jobs_shard_queue_depth",
			"Claimable shards (open, no live lease) visible in the shared store."),
		leaseRenewals: r.Counter("jobs_lease_renewals_total",
			"Successful shard-lease heartbeat renewals."),
		leaseTakeovers: r.Counter("jobs_lease_takeovers_total",
			"Expired foreign leases this node took over (crash/stall recovery)."),
		leaseLosses: r.Counter("jobs_lease_losses_total",
			"Leases this node lost to takeover mid-shard (renewal CAS failed)."),
		leaseActive: r.Gauge("jobs_lease_active",
			"Shard leases this node currently holds."),
	}
}

// Manager owns the queue, the worker pool and the job table.
type Manager struct {
	cfg  Config
	ctx  context.Context // pool context; cancelled by Shutdown
	stop context.CancelFunc
	wg   sync.WaitGroup
	log  *slog.Logger
	met  jobMetrics

	store Store       // nil disables persistence
	cas   CASStore    // non-nil iff sharding is enabled
	shard ShardConfig // normalized; meaningful iff cas != nil

	// Copied from Config before the workers start (see Config).
	testDropLeases        bool
	testAfterShardRestart func(jobID string, shard, restart int)

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order for List
	queue    chan *job
	seq      int
	closed   bool
	progress func(jobID string, p coverage.Progress)
	onDone   func(jobID string, spec Spec, plan *coverage.Plan)
}

// New builds a Manager, resumes any checkpointed jobs found in cfg.Dir,
// and starts the worker pool.
func New(cfg Config) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:  cfg,
		ctx:  ctx,
		stop: stop,
		log:  obs.Component(cfg.Logger, "jobs"),
		jobs: make(map[string]*job),
	}
	if cfg.Metrics != nil {
		m.met = newJobMetrics(cfg.Metrics)
	}
	switch {
	case cfg.Store != nil:
		m.store = cfg.Store
	case cfg.Dir != "":
		fsStore, err := NewFSStore(cfg.Dir)
		if err != nil {
			stop()
			return nil, err
		}
		m.store = fsStore
	}
	if cfg.Shard.Enabled && m.store != nil {
		m.shard = cfg.Shard.withDefaults()
		m.cas = AsCAS(m.store)
	}
	m.testDropLeases = cfg.testDropLeases
	m.testAfterShardRestart = cfg.testAfterShardRestart
	var resumed []*job
	if m.store != nil {
		var err error
		resumed, err = m.loadCheckpoints()
		if err != nil {
			stop()
			return nil, err
		}
	}
	// Size the queue so every resumable job fits alongside the configured
	// headroom; otherwise New could deadlock re-queueing a large backlog.
	m.queue = make(chan *job, cfg.QueueDepth+len(resumed))
	for _, j := range resumed {
		j.state = StateQueued
		if !m.shardingEnabled() {
			// A sharded checkpoint resumed by a non-sharded manager runs
			// single-process; restarts are bit-exact either way.
			j.sharded = false
		}
		j.inQueue = true
		m.queue <- j
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	if m.shardingEnabled() {
		m.wg.Add(1)
		go m.poller()
	}
	return m, nil
}

// Submit validates the spec and enqueues a new job.
func (m *Manager) Submit(spec Spec) (View, error) {
	return m.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit with a caller context carrying correlation IDs:
// the submission log line inherits the context's request ID, and a
// deployment ID on the context is remembered so every later lifecycle
// line of the job carries it too — the drift → re-opt → swap trail.
func (m *Manager) SubmitCtx(ctx context.Context, spec Spec) (View, error) {
	if spec.Restarts == 0 {
		spec.Restarts = 1
	}
	if spec.Restarts < 0 {
		return View{}, fmt.Errorf("%w: %d restarts", ErrSpec, spec.Restarts)
	}
	if spec.Sensors < 0 {
		return View{}, fmt.Errorf("%w: negative sensors %d", ErrSpec, spec.Sensors)
	}
	if spec.fleet() {
		if err := coverage.ValidateFleet(spec.Scenario, spec.Objectives, spec.Sensors, spec.Responsibility); err != nil {
			return View{}, fmt.Errorf("%w: %v", ErrSpec, err)
		}
	} else {
		if spec.Responsibility != nil {
			return View{}, fmt.Errorf("%w: responsibility set on a single-sensor job", ErrSpec)
		}
		if err := coverage.Validate(spec.Scenario, spec.Objectives); err != nil {
			return View{}, fmt.Errorf("%w: %v", ErrSpec, err)
		}
	}
	if spec.Options.Workers < 0 {
		return View{}, fmt.Errorf("%w: negative workers %d", ErrSpec, spec.Options.Workers)
	}
	if m.cfg.MaxJobWorkers > 0 &&
		(spec.Options.Workers == 0 || spec.Options.Workers > m.cfg.MaxJobWorkers) {
		spec.Options.Workers = m.cfg.MaxJobWorkers
	}
	// The telemetry callbacks are owned by the worker; drop anything the
	// caller smuggled in.
	spec.Options.OnProgress = nil
	spec.Options.OnIteration = nil

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return View{}, ErrShuttingDown
	}
	if len(m.queue) >= m.cfg.QueueDepth {
		m.mu.Unlock()
		return View{}, ErrQueueFull
	}
	m.seq++
	now := time.Now()
	id := fmt.Sprintf("job-%06d", m.seq)
	if m.shardingEnabled() {
		// Node-qualified IDs keep submissions from different managers on
		// one shared store from colliding.
		id = fmt.Sprintf("job-%s-%06d", m.shard.Node, m.seq)
	}
	j := &job{
		id:         id,
		spec:       spec,
		state:      StateQueued,
		created:    now,
		queuedAt:   now,
		deployment: obs.DeploymentID(ctx),
		prog:       Progress{Restarts: spec.Restarts},
		sharded:    m.shardingEnabled(),
		inQueue:    true,
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.queue <- j
	v := j.view()
	m.mu.Unlock()

	m.log.InfoContext(obs.WithJobID(ctx, j.id), "job submitted",
		slog.String("scenario", spec.Scenario.Name),
		slog.Int("restarts", spec.Restarts),
		slog.Int("maxIters", spec.Options.MaxIters),
		slog.Int("sensors", spec.Sensors),
		slog.Bool("sharded", j.sharded))
	if spec.fleet() {
		m.met.fleetJobs.Inc()
		m.met.fleetSensors.Observe(float64(spec.Sensors))
	}
	m.persist(j, true)
	if j.sharded {
		// The shard table goes in last: its presence is what makes other
		// nodes adopt the job, so they never see a partial checkpoint.
		t := newShardTable(j.id, spec.Restarts, m.shard.ShardSize)
		if err := m.store.Put(shardTableBlob(j.id), marshalBlob(t)); err != nil {
			// The local worker loop rebuilds a missing table on claim, so
			// the job still runs; only cross-node discovery is delayed.
			m.log.ErrorContext(obs.WithJobID(ctx, j.id), "shard table write failed",
				slog.String("error", err.Error()))
		}
	}
	return v, nil
}

// SetProgressListener registers fn to receive every sampled progress
// snapshot of every running job, after the job's own record is updated.
// Wire it once, before jobs run; the deploy runtime uses it to stream
// re-optimization progress onto deployment event feeds.
func (m *Manager) SetProgressListener(fn func(jobID string, p coverage.Progress)) {
	m.mu.Lock()
	m.progress = fn
	m.mu.Unlock()
}

// SetDoneListener registers fn to receive every job that finishes in
// state done together with its winning plan — the publish hook the plan
// library uses to absorb completed optimizations. It is invoked
// synchronously from the worker goroutine after the terminal checkpoint
// is written, so a registered library never misses a completion. Wire
// it once, before jobs run.
func (m *Manager) SetDoneListener(fn func(jobID string, spec Spec, plan *coverage.Plan)) {
	m.mu.Lock()
	m.onDone = fn
	m.mu.Unlock()
}

// logCtx builds the background context carrying a job's correlation IDs
// for worker-side log lines.
func (j *job) logCtx() context.Context {
	ctx := obs.WithJobID(context.Background(), j.id)
	if j.deployment != "" {
		ctx = obs.WithDeploymentID(ctx, j.deployment)
	}
	return ctx
}

// Get returns a snapshot of one job. With sharding enabled the lookup
// is cluster-aware: an ID this node has never seen is resolved against
// the shared store, so any node answers for any sharded job.
func (m *Manager) Get(id string) (View, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if ok {
		v := j.view()
		m.mu.Unlock()
		return v, nil
	}
	m.mu.Unlock()
	if j = m.lookupShared(id); j != nil {
		m.mu.Lock()
		v := j.view()
		m.mu.Unlock()
		return v, nil
	}
	return View{}, ErrNotFound
}

// lookupShared adopts a sharded job present in the shared store but
// unknown locally (submitted to another node). Nil when sharding is
// off or the store has no such sharded job.
func (m *Manager) lookupShared(id string) *job {
	if !m.shardingEnabled() {
		return nil
	}
	if _, err := m.store.Get(shardTableBlob(id)); err != nil {
		return nil
	}
	return m.adoptSharded(id)
}

// List returns snapshots of every job in submission order (resumed jobs
// first, ordered by ID).
func (m *Manager) List() []View {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]View, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].view())
	}
	return out
}

// Plan returns the job's best plan so far — the final plan once done,
// the best-so-far checkpoint for a running, paused or cancelled job.
// Cluster-aware like Get: a sharded job's merged plan is served from
// the shared store by any node.
func (m *Manager) Plan(id string) (*coverage.Plan, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		if j = m.lookupShared(id); j == nil {
			return nil, ErrNotFound
		}
	}
	m.mu.Lock()
	plan := j.plan
	sharded := j.sharded
	m.mu.Unlock()
	if plan == nil && sharded {
		// In-flight sharded job: the cluster-wide best so far is the
		// winner over the currently terminal-or-partial shard records.
		if t, err := m.loadShardTable(id); err == nil {
			plan = m.bestShardPlan(t)
			if plan != nil {
				m.mu.Lock()
				if j.plan == nil {
					j.plan = plan
				}
				m.mu.Unlock()
			}
		}
	}
	if plan == nil {
		return nil, ErrNoPlan
	}
	return plan, nil
}

// bestShardPlan reduces the current shard states to the best plan
// recorded so far, terminal or not.
func (m *Manager) bestShardPlan(t *shardTable) *coverage.Plan {
	results := make([]shardResult, 0, t.Shards)
	for k := 0; k < t.Shards; k++ {
		s := m.loadShardState(t, k)
		results = append(results, shardResult{
			Shard: k, Failed: s.State == shardFailed,
			BestCost: s.BestCost, BestRestart: s.BestRestart,
		})
	}
	winner, ok := pickShardWinner(results)
	if !ok {
		return nil
	}
	p, err := m.readShardPlan(t.Job, winner.Shard)
	if err != nil {
		return nil
	}
	return p
}

// Cancel stops a queued or running job. Cancelling a running job signals
// its context; the worker then records the best-so-far plan and marks the
// job cancelled.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return ErrNotFound
	}
	switch j.state {
	case StateQueued, StatePaused:
		if j.sharded {
			// Another node may be working this job right now: the terminal
			// transition must go through the shared store's CAS so every
			// node observes it. Running nodes stop at their next shard
			// boundary.
			j.userCancel = true
			m.mu.Unlock()
			m.log.InfoContext(j.logCtx(), "sharded job cancel requested")
			return m.cancelSharded(j)
		}
		j.state = StateCancelled
		j.userCancel = true
		j.finished = time.Now()
		m.mu.Unlock()
		m.log.InfoContext(j.logCtx(), "job cancelled before running")
		m.persist(j, false)
		return nil
	case StateRunning:
		j.userCancel = true
		cancel := j.cancel
		m.mu.Unlock()
		m.log.InfoContext(j.logCtx(), "job cancel requested")
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		m.mu.Unlock()
		return fmt.Errorf("%w: %s is %s", ErrTerminal, id, j.state)
	}
}

// Stats summarizes the manager for health checks.
type Stats struct {
	Workers    int           `json:"workers"`
	QueueDepth int           `json:"queueDepth"`
	QueueLen   int           `json:"queueLen"`
	Jobs       map[State]int `json:"jobs"`
}

// Stat returns current counts by state plus queue occupancy.
func (m *Manager) Stat() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Workers:    m.cfg.Workers,
		QueueDepth: m.cfg.QueueDepth,
		QueueLen:   len(m.queue),
		Jobs:       make(map[State]int),
	}
	for _, j := range m.jobs {
		s.Jobs[j.state]++
	}
	return s
}

// Shutdown stops accepting submissions, cancels every running job so it
// checkpoints and parks as paused, and waits (bounded by ctx) for the
// worker pool to drain. After Shutdown returns nil, no manager goroutine
// is left running.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.stop()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: shutdown: %w", ctx.Err())
	}
}

// worker pulls jobs off the queue until the pool context is cancelled.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j := <-m.queue:
			m.mu.Lock()
			sharded := j.sharded
			m.mu.Unlock()
			if sharded {
				m.runShardedJob(j)
			} else {
				m.runJob(j)
			}
		}
	}
}

// optimizeSpec runs one restart of a job — the single place that decides
// between the single-sensor and the joint fleet optimizer, so the local
// worker loop and the shard runner dispatch identically.
func optimizeSpec(ctx context.Context, spec Spec, opts coverage.Options) (*coverage.Plan, error) {
	if spec.fleet() {
		return coverage.OptimizeFleetContext(ctx, spec.Scenario, spec.Objectives, opts,
			spec.Sensors, spec.Responsibility)
	}
	return coverage.OptimizeContext(ctx, spec.Scenario, spec.Objectives, opts)
}

// runJob drives one job: restarts run sequentially with OptimizeBest's
// seed split, the best plan is checkpointed after every completed
// restart, and cancellation is classified as user cancel (terminal) or
// shutdown (paused, resumable).
func (m *Manager) runJob(j *job) {
	m.mu.Lock()
	j.inQueue = false
	if j.state != StateQueued || m.ctx.Err() != nil {
		// Cancelled while queued, or the pool is draining: leave the
		// checkpointed state as-is.
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.ctx)
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	wait := j.started.Sub(j.queuedAt).Seconds()
	spec := j.spec
	start := j.restartsDone
	best := j.plan
	m.mu.Unlock()
	defer cancel()
	if wait >= 0 {
		m.met.queueWait.Observe(wait)
	}
	lctx := j.logCtx()
	m.log.InfoContext(lctx, "job started",
		slog.Int("fromRestart", start),
		slog.Float64("queueWaitSec", wait))

	// best holds the winner over *completed* restarts only. The paused
	// checkpoint must exclude in-flight partial work: resuming re-runs the
	// interrupted restart in full, and a partial plan that ties the full
	// rerun on cost would otherwise survive the strict-< comparison with a
	// different matrix than an uninterrupted OptimizeBest produces.
	seeds := coverage.SplitSeeds(spec.Options.Seed, spec.Restarts)
	for r := start; r < spec.Restarts; r++ {
		if ctx.Err() != nil {
			break
		}
		runOpts := spec.Options
		runOpts.Seed = seeds[r]
		restart := r
		runOpts.OnProgress = func(p coverage.Progress) {
			m.noteProgress(j, restart, p)
		}
		if m.met.iterSeconds != nil {
			// Iteration timing lives here, not in the descent loop: the
			// hook measures wall-clock between successive events, so the
			// hot path itself never calls time.Now.
			var lastIter time.Time
			runOpts.OnIteration = func(ev coverage.IterationEvent) {
				now := time.Now()
				if !lastIter.IsZero() {
					m.met.iterSeconds.Observe(now.Sub(lastIter).Seconds())
				}
				lastIter = now
				if ev.Probes > 0 {
					m.met.probes.Observe(float64(ev.Probes))
				}
			}
		}
		plan, err := optimizeSpec(ctx, spec, runOpts)
		if err != nil {
			if ctx.Err() != nil {
				// Interrupted mid-restart; plan is that run's best-so-far.
				m.settleInterrupted(j, best, plan)
				return
			}
			m.finish(j, StateFailed, best, err.Error())
			return
		}
		// Strict < preserves OptimizeBest's first-wins tie-breaking.
		if plan != nil && (best == nil || plan.Cost < best.Cost) {
			best = plan
		}
		iters := 0
		if plan != nil {
			iters = plan.Iterations
		}
		m.completeRestart(j, r+1, best, iters)
		if plan != nil {
			m.log.InfoContext(lctx, "restart complete",
				slog.Int("restart", r),
				slog.Int("iterations", plan.Iterations),
				slog.Float64("cost", plan.Cost))
		}
	}
	if ctx.Err() != nil {
		m.settleInterrupted(j, best, nil)
		return
	}
	m.finish(j, StateDone, best, "")
}

// settleInterrupted routes a context-cancelled job: a user cancel is
// terminal and keeps the freshest work (including the interrupted
// restart's partial plan), while a shutdown parks the job as paused with
// only completed-restart results so the resume reproduces an
// uninterrupted run bit-for-bit.
func (m *Manager) settleInterrupted(j *job, best, partial *coverage.Plan) {
	m.mu.Lock()
	user := j.userCancel
	m.mu.Unlock()
	if user {
		if partial != nil && (best == nil || partial.Cost < best.Cost) {
			best = partial
		}
		m.finish(j, StateCancelled, best, "")
		return
	}
	m.pause(j, best)
}

// noteProgress records a sampled descent-trace point and fans it out to
// the registered listener.
func (m *Manager) noteProgress(j *job, restart int, p coverage.Progress) {
	m.mu.Lock()
	j.prog.Restart = restart
	j.prog.Iteration = p.Iteration
	j.prog.Cost = p.Cost
	fn := m.progress
	m.mu.Unlock()
	if fn != nil {
		p.Restart = restart
		fn(j.id, p)
	}
}

// completeRestart advances the job's checkpointable progress and writes
// the periodic checkpoint. iters is the finished restart's iteration
// count; the in-flight sample resets with it so view() never counts the
// same restart twice.
func (m *Manager) completeRestart(j *job, done int, best *coverage.Plan, iters int) {
	m.mu.Lock()
	j.restartsDone = done
	j.itersDone += iters
	j.plan = best
	j.prog.RestartsDone = done
	j.prog.Iteration = 0
	if best != nil {
		c := best.Cost
		j.prog.BestCost = &c
	}
	m.mu.Unlock()
	m.persist(j, false)
}

// finish moves the job to a terminal state and checkpoints it.
func (m *Manager) finish(j *job, state State, best *coverage.Plan, errMsg string) {
	m.mu.Lock()
	j.state = state
	j.finished = time.Now()
	if !j.started.IsZero() {
		j.ranSec += j.finished.Sub(j.started).Seconds()
	}
	ran := j.ranSec
	j.plan = best
	j.errMsg = errMsg
	j.cancel = nil
	if best != nil {
		c := best.Cost
		j.prog.BestCost = &c
	}
	m.mu.Unlock()
	m.met.runSeconds.Observe(ran)
	attrs := []any{
		slog.String("state", string(state)),
		slog.Float64("ranSec", ran),
	}
	if best != nil {
		attrs = append(attrs, slog.Float64("cost", best.Cost))
	}
	if errMsg != "" {
		attrs = append(attrs, slog.String("error", errMsg))
		m.log.ErrorContext(j.logCtx(), "job finished", attrs...)
	} else {
		m.log.InfoContext(j.logCtx(), "job finished", attrs...)
	}
	m.persist(j, false)
	if state == StateDone && best != nil {
		m.mu.Lock()
		fn := m.onDone
		m.mu.Unlock()
		if fn != nil {
			fn(j.id, j.spec, best)
		}
	}
}

// pause parks an interrupted job so a restarted manager resumes it from
// its last completed restart.
func (m *Manager) pause(j *job, best *coverage.Plan) {
	m.mu.Lock()
	j.state = StatePaused
	if !j.started.IsZero() {
		j.ranSec += time.Since(j.started).Seconds()
	}
	j.plan = best
	j.cancel = nil
	if best != nil {
		c := best.Cost
		j.prog.BestCost = &c
	}
	done := j.restartsDone
	m.mu.Unlock()
	m.log.InfoContext(j.logCtx(), "job paused",
		slog.Int("restartsDone", done))
	m.persist(j, false)
}

// seqFromID recovers the numeric suffix of a job ID so a resumed manager
// keeps allocating fresh IDs.
func seqFromID(id string) int {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil {
		return 0
	}
	return n
}

// sortByID orders jobs by their numeric suffix (submission order),
// breaking cross-node sequence ties by full ID so every node lists a
// shared store in the same order.
func sortByID(js []*job) {
	sort.Slice(js, func(a, b int) bool {
		sa, sb := seqFromID(js[a].id), seqFromID(js[b].id)
		if sa != sb {
			return sa < sb
		}
		return js[a].id < js[b].id
	})
}
