package jobs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Store is the persistence backend for checkpoint blobs: a flat
// namespace of named byte blobs with atomic replacement. The job
// manager's checkpoint triple and the plan library's persistent tier
// both run on it, so a future blob/KV backend (object store, embedded
// KV) plugs into every durable path at once by implementing these four
// methods.
//
// Contract:
//   - Put replaces the blob atomically: a reader never observes a
//     half-written blob under the final name (torn data may exist only
//     under transient names a List caller must ignore).
//   - Get returns an error satisfying errors.Is(err, fs.ErrNotExist)
//     for a missing name.
//   - List returns the names of every stored blob, in no particular
//     order.
//   - Delete of a missing name is not an error.
type Store interface {
	Get(name string) ([]byte, error)
	Put(name string, blob []byte) error
	List() ([]string, error)
	Delete(name string) error
}

// FSStore is the filesystem Store: one file per blob inside a
// directory, with Put writing a temp file and renaming it into place —
// the same crash-safety dance the checkpoint code has always done.
type FSStore struct {
	dir string
}

// tmpSuffix marks in-flight Put files; List hides them so a crash
// mid-write never surfaces a torn blob under a listable name.
const tmpSuffix = ".tmp"

// NewFSStore creates the directory if needed and returns a store over
// it.
func NewFSStore(dir string) (*FSStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobs: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: store dir: %w", err)
	}
	return &FSStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *FSStore) Dir() string { return s.dir }

// path maps a blob name to its file, rejecting names that would escape
// the directory.
func (s *FSStore) path(name string) (string, error) {
	if name == "" || name != filepath.Base(name) || name == "." || name == ".." {
		return "", fmt.Errorf("jobs: invalid blob name %q", name)
	}
	return filepath.Join(s.dir, name), nil
}

// Get reads one blob; a missing name satisfies errors.Is(err,
// fs.ErrNotExist).
func (s *FSStore) Get(name string) ([]byte, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(p)
}

// Put atomically replaces the blob via temp-file + rename.
func (s *FSStore) Put(name string, blob []byte) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	tmp := p + tmpSuffix
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, p)
}

// List returns every stored blob name (temp files from in-flight or
// crashed Puts excluded).
func (s *FSStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), tmpSuffix) {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}

// Delete removes a blob; deleting a missing name is a no-op.
func (s *FSStore) Delete(name string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}
