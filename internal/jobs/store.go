package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
)

// Store is the persistence backend for checkpoint blobs: a flat
// namespace of named byte blobs with atomic replacement. The job
// manager's checkpoint triple and the plan library's persistent tier
// both run on it, so a future blob/KV backend (object store, embedded
// KV) plugs into every durable path at once by implementing these four
// methods.
//
// Contract:
//   - Put replaces the blob atomically: a reader never observes a
//     half-written blob under the final name (torn data may exist only
//     under transient names a List caller must ignore).
//   - Get returns an error satisfying errors.Is(err, fs.ErrNotExist)
//     for a missing name.
//   - List returns the names of every stored blob, in no particular
//     order.
//   - Delete of a missing name is not an error.
type Store interface {
	Get(name string) ([]byte, error)
	Put(name string, blob []byte) error
	List() ([]string, error)
	Delete(name string) error
}

// ErrCASConflict reports that CompareAndSwap observed a value other
// than the expected one. The caller's read was stale: re-read and
// retry, or back off — another writer won.
var ErrCASConflict = errors.New("jobs: cas conflict")

// CASStore is a Store with an atomic compare-and-swap primitive, the
// single coordination point the distributed shard protocol needs:
// lease claims, lease renewals, and terminal job transitions all race
// through CompareAndSwap, and everything else is plain Put by whoever
// holds the lease.
//
// Semantics of CompareAndSwap(name, old, new):
//   - old == nil asserts the blob does not exist (atomic create);
//   - new == nil deletes the blob (atomic delete-if-unchanged);
//   - otherwise the blob's current bytes must equal old exactly, and
//     are replaced by new in one atomic step.
//
// A mismatch returns ErrCASConflict. Implementations must make the
// read-compare-write sequence atomic against every other writer of the
// same store — across processes for multi-node backends (FSStore does
// this with an advisory file lock).
type CASStore interface {
	Store
	CompareAndSwap(name string, old, new []byte) error
}

// FSStore is the filesystem Store: one file per blob inside a
// directory, with Put writing a temp file and renaming it into place —
// the same crash-safety dance the checkpoint code has always done.
// It also implements CASStore, so several processes sharing one
// directory (local disk or NFS with working flock) can coordinate
// shard leases through it.
type FSStore struct {
	dir string
}

// tmpSuffix marks in-flight Put files; List hides them so a crash
// mid-write never surfaces a torn blob under a listable name.
const tmpSuffix = ".tmp"

// NewFSStore creates the directory if needed and returns a store over
// it.
func NewFSStore(dir string) (*FSStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobs: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: store dir: %w", err)
	}
	return &FSStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *FSStore) Dir() string { return s.dir }

// path maps a blob name to its file, rejecting names that would escape
// the directory.
func (s *FSStore) path(name string) (string, error) {
	if name == "" || name != filepath.Base(name) || name == "." || name == ".." {
		return "", fmt.Errorf("jobs: invalid blob name %q", name)
	}
	return filepath.Join(s.dir, name), nil
}

// Get reads one blob; a missing name satisfies errors.Is(err,
// fs.ErrNotExist).
func (s *FSStore) Get(name string) ([]byte, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(p)
}

// Put atomically replaces the blob via temp-file + rename. The temp
// name is unique per call: with a shared fixed name, two processes
// Putting the same blob concurrently would interleave writes into one
// temp file and rename a torn mixture into place. The file is synced
// before the rename so a crash right after Put returns cannot surface
// a zero-length or partial blob under the final name.
func (s *FSStore) Put(name string, blob []byte) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(s.dir, name+".*"+tmpSuffix)
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(blob); err == nil {
		err = f.Sync()
	} else {
		f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, p)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// CompareAndSwap implements the CASStore contract with an advisory
// flock around read-compare-replace. The lock file carries the temp
// suffix so List never surfaces it, and it is left in place forever:
// unlinking a lock file while another process still holds its flock
// would let a third process lock a fresh inode and break mutual
// exclusion.
func (s *FSStore) CompareAndSwap(name string, old, new []byte) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	lock, err := os.OpenFile(p+".lock"+tmpSuffix, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer lock.Close()
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("jobs: cas lock %s: %w", name, err)
	}
	defer syscall.Flock(int(lock.Fd()), syscall.LOCK_UN)

	cur, err := os.ReadFile(p)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		if old != nil {
			return fmt.Errorf("%w: %s does not exist", ErrCASConflict, name)
		}
	case err != nil:
		return err
	default:
		if old == nil || !bytes.Equal(cur, old) {
			return fmt.Errorf("%w: %s changed", ErrCASConflict, name)
		}
	}
	if new == nil {
		if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		return nil
	}
	return s.Put(name, new)
}

// AsCAS adapts any Store to CASStore. A native implementation (FSStore)
// is returned as-is; otherwise the store is wrapped with a process-local
// mutex, which is correct only while every writer shares the one
// returned wrapper — fine for tests and single-process managers, not
// for multi-node deployments, which need a backend with real
// cross-process CAS.
func AsCAS(s Store) CASStore {
	if cs, ok := s.(CASStore); ok {
		return cs
	}
	return &lockedCAS{Store: s}
}

type lockedCAS struct {
	Store
	mu sync.Mutex
}

func (s *lockedCAS) CompareAndSwap(name string, old, new []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, err := s.Get(name)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		if old != nil {
			return fmt.Errorf("%w: %s does not exist", ErrCASConflict, name)
		}
	case err != nil:
		return err
	default:
		if old == nil || !bytes.Equal(cur, old) {
			return fmt.Errorf("%w: %s changed", ErrCASConflict, name)
		}
	}
	if new == nil {
		return s.Delete(name)
	}
	return s.Put(name, new)
}

// List returns every stored blob name (temp files from in-flight or
// crashed Puts excluded).
func (s *FSStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), tmpSuffix) {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}

// Delete removes a blob; deleting a missing name is a no-op.
func (s *FSStore) Delete(name string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}
