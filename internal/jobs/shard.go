package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"strings"
	"time"
)

// Distributed restart sharding.
//
// A multi-restart job is embarrassingly parallel across restarts:
// coverage.SplitSeeds derives every restart's seed from the master
// seed, so restart r produces identical bits no matter which process
// runs it. Sharding cuts the restart range [0, Restarts) into
// fixed-size shards and lets any manager sharing the Store claim and
// run them. The only coordination is a per-shard lease claimed with
// CompareAndSwap and a terminal job transition, also CAS — shard
// progress and plans are written with plain Put by whichever node
// holds the shard's lease.
//
// Blob layout, next to the job's checkpoint triple:
//
//	<id>.shards.json          immutable shard table (written at submit)
//	<id>.shard-<k>.state.json progress + best-of record for shard k
//	<id>.shard-<k>.plan.json  shard k's best plan (coverage envelope)
//	<id>.shard-<k>.lease.json live lease for shard k (CAS-contended)
//
// Failure model: a node that crashes or stalls stops renewing its
// lease; after LeaseTTL any other node CASes the lease over (epoch+1)
// and resumes the shard from its last completed restart. A shard-state
// blob torn by a crash is skipped with a log line and the shard simply
// re-runs from scratch — determinism makes re-execution a correct
// repair. The merge is a pure reduction — lexicographic min over
// (bestCost, bestRestart) — so it is order-independent and reproduces
// the sequential OptimizeBest winner (strict < keeps the first restart
// achieving the minimum) bit for bit. Whichever node wins the CAS of
// the terminal job transition fires the done listener, so the plan
// library absorbs each merged result exactly once cluster-wide.

// ShardConfig tunes distributed restart sharding. The zero value
// disables it; set Enabled (and give the manager a Store) to let this
// manager claim restart-shards — its own submissions and any sharded
// job another node parked in the shared store.
type ShardConfig struct {
	// Enabled turns sharding on. Requires a persistence backend; the
	// manager falls back to single-process execution without one.
	Enabled bool
	// Node identifies this manager in lease blobs and job IDs. Default
	// "<hostname>-<pid>". Must be unique per live manager on a store.
	Node string
	// ShardSize is the number of restarts per shard (default 1 — the
	// finest grain, the most even spread across nodes).
	ShardSize int
	// LeaseTTL is how long a claimed shard lease lives without renewal
	// before other nodes may take it over (default 10s).
	LeaseTTL time.Duration
	// Poll is the store scan interval for discovering foreign jobs,
	// expired leases, and mergeable work (default 1s).
	Poll time.Duration
}

// withDefaults normalizes the config.
func (c ShardConfig) withDefaults() ShardConfig {
	if c.Node == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "node"
		}
		c.Node = fmt.Sprintf("%s-%d", sanitizeNode(host), os.Getpid())
	} else {
		c.Node = sanitizeNode(c.Node)
	}
	if c.ShardSize <= 0 {
		c.ShardSize = 1
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.Poll <= 0 {
		c.Poll = time.Second
	}
	return c
}

// sanitizeNode keeps node names safe inside blob names and job IDs.
func sanitizeNode(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	if b.Len() == 0 {
		return "node"
	}
	return b.String()
}

// shardVersion is the on-store shard blob format version.
const shardVersion = 1

// Shard lifecycle states inside shardState.State.
const (
	shardPending = "pending"
	shardDone    = "done"
	shardFailed  = "failed"
)

// shardTable is the immutable shard layout of one job, written once at
// submission. Shard k owns restarts [k*ShardSize, min((k+1)*ShardSize,
// Restarts)).
type shardTable struct {
	Version   int    `json:"version"`
	Kind      string `json:"kind"` // "shards"
	Job       string `json:"job"`
	Restarts  int    `json:"restarts"`
	ShardSize int    `json:"shardSize"`
	Shards    int    `json:"shards"`
}

// shardState is one shard's durable progress record. Done counts fully
// completed restarts from the shard's low end, so a takeover resumes
// at restart Lo+Done; BestCost/BestRestart track the strict-< winner
// over completed restarts (BestRestart is a global restart index).
// The lease holder is the only writer, so plain Put suffices.
type shardState struct {
	Version     int      `json:"version"`
	Kind        string   `json:"kind"` // "shard"
	Job         string   `json:"job"`
	Shard       int      `json:"shard"`
	Lo          int      `json:"lo"`
	Hi          int      `json:"hi"`
	Done        int      `json:"done"`
	State       string   `json:"state"`
	BestCost    *float64 `json:"bestCost,omitempty"`
	BestRestart int      `json:"bestRestart"`
	Iters       int      `json:"iters,omitempty"`
	Error       string   `json:"error,omitempty"`
}

func (s *shardState) terminal() bool { return s.State == shardDone || s.State == shardFailed }

// shardLease is the CAS-contended claim on one shard. Expires is
// wall-clock; nodes sharing a store need loosely synchronized clocks
// (skew eats into the TTL). Epoch increments on every takeover so a
// resurrected holder's stale renewal CAS fails on bytes, never races.
type shardLease struct {
	Version int       `json:"version"`
	Kind    string    `json:"kind"` // "lease"
	Job     string    `json:"job"`
	Shard   int       `json:"shard"`
	Node    string    `json:"node"`
	Epoch   int       `json:"epoch"`
	Expires time.Time `json:"expires"`
}

// Blob names for a job's shard records.
func shardTableBlob(id string) string { return id + ".shards.json" }
func shardStateBlob(id string, k int) string {
	return fmt.Sprintf("%s.shard-%d.state.json", id, k)
}
func shardPlanBlob(id string, k int) string {
	return fmt.Sprintf("%s.shard-%d.plan.json", id, k)
}
func shardLeaseBlob(id string, k int) string {
	return fmt.Sprintf("%s.shard-%d.lease.json", id, k)
}

const shardTableSuffix = ".shards.json"

// marshalBlob renders shard blobs deterministically (fixed field order,
// no indentation surprises) so CAS byte comparison is stable.
func marshalBlob(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All shard blob types marshal; a failure is a programming error.
		panic(err)
	}
	return append(b, '\n')
}

// newShardTable lays out the shards for a spec.
func newShardTable(id string, restarts, shardSize int) shardTable {
	shards := (restarts + shardSize - 1) / shardSize
	return shardTable{
		Version:   shardVersion,
		Kind:      "shards",
		Job:       id,
		Restarts:  restarts,
		ShardSize: shardSize,
		Shards:    shards,
	}
}

// bounds returns shard k's restart range [lo, hi).
func (t *shardTable) bounds(k int) (lo, hi int) {
	lo = k * t.ShardSize
	hi = lo + t.ShardSize
	if hi > t.Restarts {
		hi = t.Restarts
	}
	return lo, hi
}

// loadShardTable reads and validates a job's shard table.
func (m *Manager) loadShardTable(id string) (*shardTable, error) {
	raw, err := m.store.Get(shardTableBlob(id))
	if err != nil {
		return nil, err
	}
	var t shardTable
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, err
	}
	if t.Version != shardVersion || t.Kind != "shards" || t.Job != id ||
		t.Restarts <= 0 || t.ShardSize <= 0 ||
		t.Shards != (t.Restarts+t.ShardSize-1)/t.ShardSize {
		return nil, fmt.Errorf("jobs: malformed shard table for %s", id)
	}
	return &t, nil
}

// loadShardState reads shard k's progress record. A missing blob
// returns a fresh pending state; a torn or malformed blob is logged
// and also treated as fresh — deterministic re-execution repairs it.
func (m *Manager) loadShardState(t *shardTable, k int) *shardState {
	lo, hi := t.bounds(k)
	fresh := &shardState{
		Version: shardVersion, Kind: "shard", Job: t.Job, Shard: k,
		Lo: lo, Hi: hi, State: shardPending,
	}
	raw, err := m.store.Get(shardStateBlob(t.Job, k))
	if errors.Is(err, fs.ErrNotExist) {
		return fresh
	}
	if err != nil {
		m.log.Error("shard state read failed; treating as fresh",
			slog.String("job", t.Job), slog.Int("shard", k),
			slog.String("error", err.Error()))
		return fresh
	}
	var s shardState
	if err := json.Unmarshal(raw, &s); err != nil ||
		s.Version != shardVersion || s.Kind != "shard" || s.Job != t.Job ||
		s.Shard != k || s.Lo != lo || s.Hi != hi ||
		s.Done < 0 || s.Done > hi-lo ||
		(s.State != shardPending && !s.terminal()) {
		m.log.Error("skipping torn shard state; shard will re-run",
			slog.String("job", t.Job), slog.Int("shard", k))
		return fresh
	}
	return &s
}

// readLease fetches shard k's lease; (nil, nil) means no lease blob. A
// malformed lease blob is returned with its raw bytes so callers can
// CAS it away like an expired one.
func (m *Manager) readLease(id string, k int) (*shardLease, []byte, error) {
	raw, err := m.store.Get(shardLeaseBlob(id, k))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	var l shardLease
	if err := json.Unmarshal(raw, &l); err != nil {
		return &shardLease{Job: id, Shard: k}, raw, nil
	}
	return &l, raw, nil
}

// live reports whether the lease still excludes other claimants at t.
func (l *shardLease) live(t time.Time) bool { return t.Before(l.Expires) }

// heldLease is this node's claim on one shard, with the exact bytes in
// the store so renewals and releases CAS against them.
type heldLease struct {
	lease shardLease
	raw   []byte
}

// tryAcquireLease attempts to claim shard k. It returns nil without
// error when the shard is currently held by a live foreign lease.
func (m *Manager) tryAcquireLease(id string, k int) (*heldLease, error) {
	cur, raw, err := m.readLease(id, k)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	epoch := 1
	if cur != nil {
		if cur.Node != m.shard.Node && cur.live(now) {
			return nil, nil // someone else is working this shard
		}
		epoch = cur.Epoch + 1
	}
	next := shardLease{
		Version: shardVersion, Kind: "lease", Job: id, Shard: k,
		Node: m.shard.Node, Epoch: epoch, Expires: now.Add(m.shard.LeaseTTL),
	}
	blob := marshalBlob(next)
	if err := m.cas.CompareAndSwap(shardLeaseBlob(id, k), raw, blob); err != nil {
		if errors.Is(err, ErrCASConflict) {
			return nil, nil // lost the race; not an error
		}
		return nil, err
	}
	if cur != nil && cur.Node != m.shard.Node {
		m.met.leaseTakeovers.Inc()
		m.log.Info("lease takeover",
			slog.String("job", id), slog.Int("shard", k),
			slog.String("from", cur.Node), slog.Int("epoch", epoch))
	}
	m.met.leaseActive.Add(1)
	return &heldLease{lease: next, raw: blob}, nil
}

// renew extends the lease by TTL via CAS on the last written bytes.
// Failure means the lease was taken over (or the store broke): the
// holder must stop working the shard immediately.
func (m *Manager) renewLease(h *heldLease) error {
	next := h.lease
	next.Expires = time.Now().Add(m.shard.LeaseTTL)
	blob := marshalBlob(next)
	if err := m.cas.CompareAndSwap(shardLeaseBlob(h.lease.Job, h.lease.Shard), h.raw, blob); err != nil {
		return err
	}
	h.lease, h.raw = next, blob
	m.met.leaseRenewals.Inc()
	return nil
}

// releaseLease deletes the lease if we still hold it. Skipped when the
// test crash hook is set, simulating a node that died holding leases.
func (m *Manager) releaseLease(h *heldLease) {
	m.met.leaseActive.Add(-1)
	if m.testDropLeases {
		return
	}
	err := m.cas.CompareAndSwap(shardLeaseBlob(h.lease.Job, h.lease.Shard), h.raw, nil)
	if err != nil && !errors.Is(err, ErrCASConflict) {
		m.log.Error("lease release failed",
			slog.String("job", h.lease.Job), slog.Int("shard", h.lease.Shard),
			slog.String("error", err.Error()))
	}
}

// shardResult is what a merge needs from one shard.
type shardResult struct {
	Shard       int
	Failed      bool
	Error       string
	BestCost    *float64
	BestRestart int
	Iters       int
}

// pickShardWinner reduces terminal shard results to the winning shard
// index. The reduction is a lexicographic min over (bestCost,
// bestRestart): sequential OptimizeBest keeps the FIRST restart that
// achieves the minimum cost (strict <), and within a shard the runner
// applies the same strict <, so the global first-achiever is exactly
// the shard with the lowest (cost, restart) pair. Min is commutative
// and associative — shard completion order, node count, and shard size
// cannot change the winner. Returns ok=false when no shard produced a
// plan.
func pickShardWinner(results []shardResult) (winner shardResult, ok bool) {
	for _, r := range results {
		if r.Failed || r.BestCost == nil {
			continue
		}
		if !ok ||
			*r.BestCost < *winner.BestCost ||
			(*r.BestCost == *winner.BestCost && r.BestRestart < winner.BestRestart) {
			winner, ok = r, true
		}
	}
	return winner, ok
}
