package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/coverage"
)

// testSpec builds a small valid job spec; maxIters and restarts size the
// amount of work.
func testSpec(t *testing.T, maxIters, restarts int, seed uint64) Spec {
	t.Helper()
	scn, err := coverage.LineScenario("jobs-test", 3, []float64{0.3, 0.3, 0.4})
	if err != nil {
		t.Fatalf("LineScenario: %v", err)
	}
	return Spec{
		Scenario:   scn,
		Objectives: coverage.Objectives{Alpha: 1, Beta: 1e-3},
		Options:    coverage.Options{MaxIters: maxIters, Seed: seed},
		Restarts:   restarts,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

func shutdown(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer shutdown(t, m)

	spec := testSpec(t, 100, 1, 1)
	spec.Restarts = -1
	if _, err := m.Submit(spec); !errors.Is(err, ErrSpec) {
		t.Errorf("negative restarts err = %v, want ErrSpec", err)
	}
	bad := testSpec(t, 100, 1, 1)
	bad.Objectives = coverage.Objectives{} // all weights zero
	if _, err := m.Submit(bad); !errors.Is(err, ErrSpec) {
		t.Errorf("zero objectives err = %v, want ErrSpec", err)
	}
	if _, err := m.Get("job-000099"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown job err = %v, want ErrNotFound", err)
	}
}

func TestRunToDoneMatchesOptimizeBest(t *testing.T) {
	m, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer shutdown(t, m)

	spec := testSpec(t, 800, 3, 42)
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, 30*time.Second, func() bool {
		got, err := m.Get(v.ID)
		return err == nil && got.State == StateDone
	}, "job to finish")

	got, err := m.Get(v.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.Progress.RestartsDone != 3 || got.Started == nil || got.Finished == nil {
		t.Errorf("done view = %+v", got)
	}
	plan, err := m.Plan(v.ID)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	want, err := coverage.OptimizeBest(spec.Scenario, spec.Objectives, spec.Options, spec.Restarts)
	if err != nil {
		t.Fatalf("OptimizeBest: %v", err)
	}
	if plan.Cost != want.Cost {
		t.Errorf("cost = %v, want %v (OptimizeBest)", plan.Cost, want.Cost)
	}
	for i := range want.TransitionMatrix {
		for k := range want.TransitionMatrix[i] {
			if plan.TransitionMatrix[i][k] != want.TransitionMatrix[i][k] {
				t.Fatalf("matrix[%d][%d] = %v, want %v", i, k,
					plan.TransitionMatrix[i][k], want.TransitionMatrix[i][k])
			}
		}
	}
}

func TestQueueBoundsAndShutdownRejection(t *testing.T) {
	m, err := New(Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Keep the single worker busy for the duration of the test.
	long, err := m.Submit(testSpec(t, 2000, 100000, 1))
	if err != nil {
		t.Fatalf("Submit long: %v", err)
	}
	waitFor(t, 10*time.Second, func() bool {
		got, _ := m.Get(long.ID)
		return got.State == StateRunning
	}, "long job to start")

	queued, err := m.Submit(testSpec(t, 100, 1, 2))
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	if _, err := m.Submit(testSpec(t, 100, 1, 3)); !errors.Is(err, ErrQueueFull) {
		t.Errorf("overflow err = %v, want ErrQueueFull", err)
	}

	// Cancelling the queued job is immediate and terminal.
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatalf("Cancel queued: %v", err)
	}
	got, _ := m.Get(queued.ID)
	if got.State != StateCancelled {
		t.Errorf("queued-cancel state = %s", got.State)
	}
	if _, err := m.Plan(queued.ID); !errors.Is(err, ErrNoPlan) {
		t.Errorf("plan of never-run job err = %v, want ErrNoPlan", err)
	}
	if err := m.Cancel(queued.ID); !errors.Is(err, ErrTerminal) {
		t.Errorf("double cancel err = %v, want ErrTerminal", err)
	}

	st := m.Stat()
	if st.Workers != 1 || st.QueueDepth != 1 {
		t.Errorf("stats = %+v", st)
	}

	shutdown(t, m)
	if _, err := m.Submit(testSpec(t, 100, 1, 4)); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("post-shutdown submit err = %v, want ErrShuttingDown", err)
	}
	// The interrupted long job parks as paused, not cancelled.
	got, _ = m.Get(long.ID)
	if got.State != StatePaused {
		t.Errorf("interrupted job state = %s, want paused", got.State)
	}
}

// TestHTTPEndToEnd drives the full API surface over a real listener:
// submit, list, poll to completion, fetch the plan envelope, cancel a
// running job, and exercise every error mapping.
func TestHTTPEndToEnd(t *testing.T) {
	m, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer shutdown(t, m)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	getJSON := func(path string, into any) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("GET %s decode: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	if code := getJSON("/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	// Submit a quick job.
	body, err := json.Marshal(testSpec(t, 500, 2, 11))
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	var created View
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || created.ID == "" || created.State != StateQueued {
		t.Fatalf("submit response %d %+v", resp.StatusCode, created)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+created.ID {
		t.Errorf("Location = %q", loc)
	}

	// Poll until done, then fetch the plan envelope.
	waitFor(t, 30*time.Second, func() bool {
		var v View
		return getJSON("/jobs/"+created.ID, &v) == http.StatusOK && v.State == StateDone
	}, "HTTP job to finish")

	planResp, err := http.Get(srv.URL + "/jobs/" + created.ID + "/plan")
	if err != nil {
		t.Fatalf("GET plan: %v", err)
	}
	plan, err := coverage.ReadPlan(planResp.Body)
	planResp.Body.Close()
	if err != nil {
		t.Fatalf("plan endpoint did not serve a valid envelope: %v", err)
	}
	if len(plan.TransitionMatrix) != 3 {
		t.Errorf("plan rows = %d", len(plan.TransitionMatrix))
	}

	var listing struct {
		Jobs []View `json:"jobs"`
	}
	if code := getJSON("/jobs", &listing); code != http.StatusOK || len(listing.Jobs) != 1 {
		t.Errorf("list = %d with %d jobs", code, len(listing.Jobs))
	}

	// Submit a long job and cancel it mid-run via DELETE.
	body, err = json.Marshal(testSpec(t, 2000, 100000, 12))
	if err != nil {
		t.Fatalf("marshal long spec: %v", err)
	}
	resp, err = http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST long job: %v", err)
	}
	var longJob View
	if err := json.NewDecoder(resp.Body).Decode(&longJob); err != nil {
		t.Fatalf("decode long submit: %v", err)
	}
	resp.Body.Close()
	waitFor(t, 10*time.Second, func() bool {
		var v View
		getJSON("/jobs/"+longJob.ID, &v)
		return v.State == StateRunning && v.Progress.Iteration >= 1
	}, "long job to report progress")

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+longJob.ID, nil)
	if err != nil {
		t.Fatalf("build DELETE: %v", err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", delResp.StatusCode)
	}
	start := time.Now()
	waitFor(t, 5*time.Second, func() bool {
		var v View
		getJSON("/jobs/"+longJob.ID, &v)
		return v.State == StateCancelled
	}, "cancelled job to settle")
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("cancel took %v, want prompt", elapsed)
	}
	// The cancelled job had completed iterations, so its best-so-far plan
	// is served.
	planResp, err = http.Get(srv.URL + "/jobs/" + longJob.ID + "/plan")
	if err != nil {
		t.Fatalf("GET cancelled plan: %v", err)
	}
	_, err = coverage.ReadPlan(planResp.Body)
	planResp.Body.Close()
	if err != nil {
		t.Errorf("cancelled job plan invalid: %v", err)
	}

	// Error mappings.
	if code := getJSON("/jobs/job-000099", nil); code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", code)
	}
	resp, err = http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatalf("POST garbage: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage submit = %d, want 400", resp.StatusCode)
	}
	req, err = http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+created.ID, nil)
	if err != nil {
		t.Fatalf("build second DELETE: %v", err)
	}
	delResp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE done job: %v", err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE done job = %d, want 409", delResp.StatusCode)
	}
}

// TestResumeAfterShutdown is the kill/restart scenario: a multi-restart
// job is interrupted by a graceful shutdown, a fresh Manager on the same
// checkpoint directory re-queues it, and the finished job reproduces an
// uninterrupted coverage.OptimizeBest bit-for-bit.
func TestResumeAfterShutdown(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, 900, 24, 77)

	m1, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatalf("New m1: %v", err)
	}
	v, err := m1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Let at least one restart complete so the resume path has both a
	// checkpointed plan and a nonzero starting restart.
	waitFor(t, 30*time.Second, func() bool {
		got, _ := m1.Get(v.ID)
		return got.Progress.RestartsDone >= 1 || got.State == StateDone
	}, "first restart to checkpoint")
	shutdown(t, m1)

	interrupted, err := m1.Get(v.ID)
	if err != nil {
		t.Fatalf("Get after shutdown: %v", err)
	}
	if interrupted.State != StatePaused && interrupted.State != StateDone {
		t.Fatalf("post-shutdown state = %s", interrupted.State)
	}

	m2, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatalf("New m2: %v", err)
	}
	defer shutdown(t, m2)
	waitFor(t, 60*time.Second, func() bool {
		got, err := m2.Get(v.ID)
		return err == nil && got.State == StateDone
	}, "resumed job to finish")

	plan, err := m2.Plan(v.ID)
	if err != nil {
		t.Fatalf("Plan after resume: %v", err)
	}
	want, err := coverage.OptimizeBest(spec.Scenario, spec.Objectives, spec.Options, spec.Restarts)
	if err != nil {
		t.Fatalf("OptimizeBest: %v", err)
	}
	if plan.Cost != want.Cost {
		t.Fatalf("resumed cost = %v, want %v", plan.Cost, want.Cost)
	}
	for i := range want.TransitionMatrix {
		for k := range want.TransitionMatrix[i] {
			if plan.TransitionMatrix[i][k] != want.TransitionMatrix[i][k] {
				t.Fatalf("resumed matrix[%d][%d] = %v, want %v", i, k,
					plan.TransitionMatrix[i][k], want.TransitionMatrix[i][k])
			}
		}
	}
	got, _ := m2.Get(v.ID)
	if got.Progress.RestartsDone != spec.Restarts {
		t.Errorf("restartsDone = %d, want %d", got.Progress.RestartsDone, spec.Restarts)
	}
}

// TestResumeAfterHardKill: a checkpoint left in state "running" (the
// process died without a graceful shutdown) is re-queued and re-run.
func TestResumeAfterHardKill(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, 400, 2, 5)

	m1, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatalf("New m1: %v", err)
	}
	v, err := m1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, 30*time.Second, func() bool {
		got, _ := m1.Get(v.ID)
		return got.State == StateDone
	}, "job to finish")
	shutdown(t, m1)

	// Forge the crash: metadata says running with no completed restarts,
	// and the plan checkpoint is gone.
	metaPath := filepath.Join(dir, jobBlob(v.ID))
	blob, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	var env jobEnvelope
	if err := json.Unmarshal(blob, &env); err != nil {
		t.Fatalf("unmarshal checkpoint: %v", err)
	}
	env.Job.State = StateRunning
	env.Job.RestartsDone = 0
	env.Job.Error = ""
	blob, err = json.MarshalIndent(env, "", "  ")
	if err != nil {
		t.Fatalf("marshal checkpoint: %v", err)
	}
	if err := os.WriteFile(metaPath, blob, 0o644); err != nil {
		t.Fatalf("write checkpoint: %v", err)
	}
	if err := os.Remove(filepath.Join(dir, planBlob(v.ID))); err != nil {
		t.Fatalf("remove plan checkpoint: %v", err)
	}

	m2, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatalf("New m2: %v", err)
	}
	defer shutdown(t, m2)
	waitFor(t, 30*time.Second, func() bool {
		got, err := m2.Get(v.ID)
		return err == nil && got.State == StateDone
	}, "re-run job to finish")

	plan, err := m2.Plan(v.ID)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	want, err := coverage.OptimizeBest(spec.Scenario, spec.Objectives, spec.Options, spec.Restarts)
	if err != nil {
		t.Fatalf("OptimizeBest: %v", err)
	}
	if plan.Cost != want.Cost {
		t.Errorf("re-run cost = %v, want %v", plan.Cost, want.Cost)
	}
}

// TestLoadCheckpointsSkipsTorn: a torn or corrupt checkpoint (a crash
// mid-write, disk trouble) must not poison startup — the manager skips
// and logs the bad file and loads every healthy job around it.
func TestLoadCheckpointsSkipsTorn(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, 200, 1, 11)

	m1, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatalf("New m1: %v", err)
	}
	v, err := m1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, 30*time.Second, func() bool {
		got, _ := m1.Get(v.ID)
		return got.State == StateDone
	}, "job to finish")
	shutdown(t, m1)

	// Forge a torn metadata file — the front half of a valid envelope, as
	// a crash mid-write without the temp+rename dance would leave — plus a
	// wrong-kind file, a la manual edits.
	blob, err := os.ReadFile(filepath.Join(dir, jobBlob(v.ID)))
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	if err := os.WriteFile(dir+"/job-000098.job.json", blob[:len(blob)/2], 0o644); err != nil {
		t.Fatalf("write torn: %v", err)
	}
	if err := os.WriteFile(dir+"/job-000099.job.json", []byte(`{"version":1,"kind":"plan"}`), 0o644); err != nil {
		t.Fatalf("write wrong-kind: %v", err)
	}

	var logBuf bytes.Buffer
	m2, err := New(Config{Workers: 1, Dir: dir,
		Logger: slog.New(slog.NewTextHandler(&logBuf, nil))})
	if err != nil {
		t.Fatalf("New with torn checkpoints: %v", err)
	}
	defer shutdown(t, m2)

	got, err := m2.Get(v.ID)
	if err != nil {
		t.Fatalf("healthy job lost: %v", err)
	}
	if got.State != StateDone {
		t.Errorf("healthy job state = %s, want %s", got.State, StateDone)
	}
	if _, err := m2.Plan(v.ID); err != nil {
		t.Errorf("healthy job plan lost: %v", err)
	}
	for _, bad := range []string{"job-000098", "job-000099"} {
		if _, err := m2.Get(bad); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%s) err = %v, want ErrNotFound", bad, err)
		}
	}
	if jobs := m2.List(); len(jobs) != 1 {
		t.Errorf("List returned %d jobs, want 1", len(jobs))
	}
	if n := strings.Count(logBuf.String(), "skipping unreadable checkpoint"); n != 2 {
		t.Errorf("skip log emitted %d times, want 2\nlogs:\n%s", n, logBuf.String())
	}
	// The bad files stay on disk for inspection.
	for _, bad := range []string{"job-000098", "job-000099"} {
		if _, err := os.Stat(dir + "/" + bad + ".job.json"); err != nil {
			t.Errorf("bad checkpoint %s removed: %v", bad, err)
		}
	}
}

// TestShutdownLeaksNoGoroutines: after Shutdown returns, every worker
// and helper goroutine is gone.
func TestShutdownLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	m, err := New(Config{Workers: 3, QueueDepth: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	v, err := m.Submit(testSpec(t, 300, 1, 9))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, 30*time.Second, func() bool {
		got, _ := m.Get(v.ID)
		return got.State == StateDone
	}, "job to finish")
	shutdown(t, m)

	after := runtime.NumGoroutine()
	for i := 0; i < 100 && after > before; i++ {
		time.Sleep(10 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before {
		t.Errorf("goroutines: %d before, %d after shutdown", before, after)
	}
}

// TestMaxJobWorkersClamp checks the per-job parallelism cap: requests of
// 0 (meaning "all cores") and requests above the cap both land on the
// cap, explicit smaller requests survive, and negative requests are
// rejected outright.
func TestMaxJobWorkersClamp(t *testing.T) {
	m, err := New(Config{Workers: 1, MaxJobWorkers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer shutdown(t, m)

	cases := []struct {
		requested, want int
	}{
		{0, 2},
		{8, 2},
		{1, 1},
		{2, 2},
	}
	for _, tc := range cases {
		spec := testSpec(t, 10, 1, 1)
		spec.Options.Workers = tc.requested
		v, err := m.Submit(spec)
		if err != nil {
			t.Fatalf("Submit(workers=%d): %v", tc.requested, err)
		}
		m.mu.Lock()
		got := m.jobs[v.ID].spec.Options.Workers
		m.mu.Unlock()
		if got != tc.want {
			t.Errorf("workers %d clamped to %d, want %d", tc.requested, got, tc.want)
		}
	}

	bad := testSpec(t, 10, 1, 1)
	bad.Options.Workers = -3
	if _, err := m.Submit(bad); !errors.Is(err, ErrSpec) {
		t.Errorf("negative workers err = %v, want ErrSpec", err)
	}
}

// TestThroughputMetricsPersist runs a multi-restart job to completion and
// checks that wall-clock and iterations/sec appear in the view and
// survive a checkpoint round-trip.
func TestThroughputMetricsPersist(t *testing.T) {
	dir := t.TempDir()
	m, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	v, err := m.Submit(testSpec(t, 200, 2, 7))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, 30*time.Second, func() bool {
		got, err := m.Get(v.ID)
		return err == nil && got.State == StateDone
	}, "job to finish")
	got, err := m.Get(v.ID)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got.WallClockSec <= 0 || got.ItersPerSec <= 0 {
		t.Fatalf("done view metrics: wallClockSec=%v itersPerSec=%v, want both > 0",
			got.WallClockSec, got.ItersPerSec)
	}
	shutdown(t, m)

	m2, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatalf("New(resume): %v", err)
	}
	defer shutdown(t, m2)
	reloaded, err := m2.Get(v.ID)
	if err != nil {
		t.Fatalf("Get(resume): %v", err)
	}
	if reloaded.WallClockSec != got.WallClockSec || reloaded.ItersPerSec != got.ItersPerSec {
		t.Errorf("metrics changed across checkpoint: %v/%v, want %v/%v",
			reloaded.WallClockSec, reloaded.ItersPerSec, got.WallClockSec, got.ItersPerSec)
	}
}

// TestListOrderAndStatusFilter pins two API contracts: GET /jobs returns
// jobs in submission order regardless of completion order, and ?status=
// filters by lifecycle state (rejecting unknown states).
func TestListOrderAndStatusFilter(t *testing.T) {
	m, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer shutdown(t, m)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		v, err := m.Submit(testSpec(t, 200, 1, uint64(i+1)))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}
	waitFor(t, 30*time.Second, func() bool {
		for _, id := range ids {
			v, err := m.Get(id)
			if err != nil || !v.State.Terminal() {
				return false
			}
		}
		return true
	}, "all jobs terminal")

	fetch := func(url string, wantStatus int) []View {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
		}
		if wantStatus != http.StatusOK {
			return nil
		}
		var body struct {
			Jobs []View `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
		return body.Jobs
	}

	listed := fetch(srv.URL+"/jobs", http.StatusOK)
	if len(listed) != len(ids) {
		t.Fatalf("listed %d jobs, want %d", len(listed), len(ids))
	}
	for i, v := range listed {
		if v.ID != ids[i] {
			t.Errorf("list[%d] = %s, want %s (submission order)", i, v.ID, ids[i])
		}
	}

	done := fetch(srv.URL+"/jobs?status=done", http.StatusOK)
	if len(done) != len(ids) {
		t.Errorf("status=done returned %d jobs, want %d", len(done), len(ids))
	}
	for i := 1; i < len(done); i++ {
		if done[i-1].ID >= done[i].ID {
			t.Errorf("filtered list out of order: %s before %s", done[i-1].ID, done[i].ID)
		}
	}
	if queued := fetch(srv.URL+"/jobs?status=queued", http.StatusOK); len(queued) != 0 {
		t.Errorf("status=queued returned %d jobs, want 0", len(queued))
	}
	fetch(srv.URL+"/jobs?status=bogus", http.StatusBadRequest)
}
