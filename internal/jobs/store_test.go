package jobs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// TestFSStoreRoundTrip pins the Store contract on the filesystem
// implementation: Put/Get round-trips, atomic replace, fs.ErrNotExist
// on misses, List hiding temp files, and idempotent Delete.
func TestFSStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir)
	if err != nil {
		t.Fatalf("NewFSStore: %v", err)
	}

	if _, err := s.Get("missing.json"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("Get missing: err = %v, want fs.ErrNotExist", err)
	}
	if err := s.Put("a.json", []byte("one")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put("a.json", []byte("two")); err != nil {
		t.Fatalf("Put replace: %v", err)
	}
	got, err := s.Get("a.json")
	if err != nil || string(got) != "two" {
		t.Errorf("Get = %q, %v; want \"two\"", got, err)
	}

	// A crashed Put leaves a temp file; List must not surface it.
	if err := os.WriteFile(filepath.Join(dir, "b.json.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("c.json", []byte("three")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	names, err := s.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "a.json" || names[1] != "c.json" {
		t.Errorf("List = %v, want [a.json c.json]", names)
	}

	if err := s.Delete("a.json"); err != nil {
		t.Errorf("Delete: %v", err)
	}
	if err := s.Delete("a.json"); err != nil {
		t.Errorf("Delete missing: %v, want nil", err)
	}
	if _, err := s.Get("a.json"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("Get deleted: err = %v, want fs.ErrNotExist", err)
	}

	// Names that would escape the directory are rejected.
	for _, bad := range []string{"", ".", "..", "x/y.json", "../z.json"} {
		if err := s.Put(bad, []byte("no")); err == nil {
			t.Errorf("Put(%q) accepted", bad)
		}
	}
}

// TestManagerCustomStore runs a job manager on an explicit Store and
// checks the checkpoint triple lands under the expected blob names —
// the layout the plan library's persistent tier shares.
func TestManagerCustomStore(t *testing.T) {
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatalf("NewFSStore: %v", err)
	}
	m, err := New(Config{Workers: 1, Store: s})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	v, err := m.Submit(testSpec(t, 100, 1, 3))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, 30*time.Second, func() bool {
		got, _ := m.Get(v.ID)
		return got.State == StateDone
	}, "job to finish")
	shutdown(t, m)

	for _, name := range []string{jobBlob(v.ID), scenarioBlob(v.ID), planBlob(v.ID)} {
		if _, err := s.Get(name); err != nil {
			t.Errorf("blob %s missing after run: %v", name, err)
		}
	}

	// A fresh manager on the same store resumes the finished job.
	m2, err := New(Config{Workers: 1, Store: s})
	if err != nil {
		t.Fatalf("New on same store: %v", err)
	}
	defer shutdown(t, m2)
	got, err := m2.Get(v.ID)
	if err != nil || got.State != StateDone {
		t.Errorf("resumed job = %+v, %v; want done", got, err)
	}
}
