package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/coverage"
)

// Handler returns the manager's HTTP/JSON API:
//
//	POST   /jobs           submit a Spec, 202 + job snapshot
//	GET    /jobs           list jobs in submission order (?status= filters)
//	GET    /jobs/{id}      one job with live progress
//	DELETE /jobs/{id}      cancel a queued or running job
//	GET    /jobs/{id}/plan the job's best plan (coverage/persist envelope)
//	GET    /healthz        liveness + queue/worker stats
//
// Error responses are JSON objects of the form {"error": "..."} with the
// usual status mapping (400 bad spec, 404 unknown job, 409 conflicting
// state, 503 queue full or shutting down).
//
// When sharding is enabled (ShardConfig.Enabled) the read endpoints are
// cluster-aware: GET /jobs/{id} and GET /jobs/{id}/plan resolve jobs
// submitted to any node sharing the store, adopting them on first
// touch, and the plan endpoint serves the best shard plan so far for
// jobs still in flight.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", m.handleHealth)
	mux.HandleFunc("POST /jobs", m.handleSubmit)
	mux.HandleFunc("GET /jobs", m.handleList)
	mux.HandleFunc("GET /jobs/{id}", m.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", m.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/plan", m.handlePlan)
	return mux
}

// writeJSON writes a JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The body is fully in memory; an encode failure here means the
	// connection is gone, which the caller cannot act on.
	_ = enc.Encode(v)
}

// writeError maps a service error onto an HTTP status and JSON body.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrSpec):
		status = http.StatusBadRequest
	case errors.Is(err, ErrTerminal), errors.Is(err, ErrNoPlan):
		status = http.StatusConflict
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (m *Manager) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"stats":  m.Stat(),
	})
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&spec); err != nil {
		writeError(w, errors.Join(ErrSpec, err))
		return
	}
	view, err := m.SubmitCtx(r.Context(), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+view.ID)
	writeJSON(w, http.StatusAccepted, view)
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	views := m.List()
	if f := r.URL.Query().Get("status"); f != "" {
		st := State(f)
		if !st.valid() {
			writeError(w, fmt.Errorf("%w: unknown status %q", ErrSpec, f))
			return
		}
		filtered := make([]View, 0, len(views))
		for _, v := range views {
			if v.State == st {
				filtered = append(filtered, v)
			}
		}
		views = filtered
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := m.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := m.Cancel(id); err != nil {
		writeError(w, err)
		return
	}
	view, err := m.Get(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (m *Manager) handlePlan(w http.ResponseWriter, r *http.Request) {
	plan, err := m.Plan(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := coverage.WritePlan(w, plan); err != nil {
		// Headers are already out; the envelope validation runs on data
		// we validated when the plan was produced, so this is effectively
		// a broken connection.
		return
	}
}
