package jobs

import (
	"path/filepath"
	"testing"
	"time"

	"repro/coverage"
	"repro/internal/conformance"
)

// A conformance-corpus case submitted through the job manager must
// produce the same plan as calling the public API directly: the async
// job path is one of the execution paths the corpus gates, so the two
// must agree bit for bit (same cost, same matrix values).
func TestJobMatchesDirectOptimizeOnCorpusCase(t *testing.T) {
	c, err := conformance.LoadFile(filepath.Join("..", "..", "coverage", "testdata", "corpus", "paper-topologies.json"))
	if err != nil {
		t.Fatalf("load corpus: %v", err)
	}
	var cs *conformance.Case
	for i := range c.Cases {
		if c.Cases[i].Name == "topology-1" {
			cs = &c.Cases[i]
		}
	}
	if cs == nil {
		t.Fatal("topology-1 not in corpus")
	}

	opts := coverage.Options{MaxIters: cs.Run.MaxIters, Seed: cs.Run.Seed, Workers: 1}
	restarts := cs.Run.Restarts
	if restarts == 0 {
		restarts = 1
	}
	direct, err := coverage.OptimizeBest(cs.Scenario, cs.Objectives, opts, restarts)
	if err != nil {
		t.Fatal(err)
	}

	m, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, m)
	v, err := m.Submit(Spec{
		Scenario:   cs.Scenario,
		Objectives: cs.Objectives,
		Options:    opts,
		Restarts:   restarts,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, func() bool {
		got, err := m.Get(v.ID)
		return err == nil && got.State == StateDone
	}, "corpus job completion")

	plan, err := m.Plan(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost != direct.Cost {
		t.Fatalf("job cost %v != direct cost %v", plan.Cost, direct.Cost)
	}
	if len(plan.TransitionMatrix) != len(direct.TransitionMatrix) {
		t.Fatalf("matrix dimensions differ: %d vs %d", len(plan.TransitionMatrix), len(direct.TransitionMatrix))
	}
	for i := range plan.TransitionMatrix {
		for j := range plan.TransitionMatrix[i] {
			if plan.TransitionMatrix[i][j] != direct.TransitionMatrix[i][j] {
				t.Fatalf("P[%d][%d] differs: %v vs %v", i, j,
					plan.TransitionMatrix[i][j], direct.TransitionMatrix[i][j])
			}
		}
	}
}
