package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"strings"
	"sync"
	"time"

	"repro/coverage"
)

// This file is the manager side of the shard protocol: the worker loop
// that claims and runs shards, the heartbeat that keeps a claim alive,
// the poller that discovers foreign jobs and re-enqueues parked ones,
// and the CAS-guarded merge that ends a sharded job exactly once
// cluster-wide. The pure protocol pieces (blob formats, lease CAS,
// winner reduction) live in shard.go.

// shardingEnabled reports whether this manager participates in the
// shard protocol (configured on, and a store to coordinate through).
func (m *Manager) shardingEnabled() bool { return m.cas != nil }

// runShardedJob drives one sharded job from this node's worker pool:
// claim a shard, run it restart by restart with per-restart durable
// progress, repeat until no shard is claimable. When every shard is
// terminal the job merges; when other nodes still hold live leases the
// job parks back to queued and the poller re-enqueues it once there is
// something to do.
func (m *Manager) runShardedJob(j *job) {
	m.mu.Lock()
	j.inQueue = false
	if j.state != StateQueued || m.ctx.Err() != nil {
		m.mu.Unlock()
		return
	}
	ctx, cancel := m.startRunning(j)
	m.mu.Unlock()
	defer cancel()

	t, err := m.loadShardTable(j.id)
	if errors.Is(err, fs.ErrNotExist) {
		// Submit crashed between the checkpoint triple and the shard
		// table, or the table blob was lost: rebuild it from the spec —
		// the layout is a pure function of (id, restarts, shard size).
		nt := newShardTable(j.id, j.spec.Restarts, m.shard.ShardSize)
		if perr := m.store.Put(shardTableBlob(j.id), marshalBlob(nt)); perr != nil {
			m.log.ErrorContext(j.logCtx(), "shard table rebuild failed",
				slog.String("error", perr.Error()))
			m.parkSharded(j)
			return
		}
		t, err = &nt, nil
	}
	if err != nil {
		m.log.ErrorContext(j.logCtx(), "shard table unreadable",
			slog.String("error", err.Error()))
		m.parkSharded(j)
		return
	}

	for ctx.Err() == nil {
		if m.syncSharedMeta(j) {
			return // another node cancelled or merged the job
		}
		claimStart := time.Now()
		k, lease, state := m.claimShard(j, t)
		if k < 0 {
			if m.allShardsTerminal(t) {
				m.finishSharded(j, t)
				return
			}
			// Live foreign leases cover every open shard: nothing to do
			// here until one completes or expires. The poller re-enqueues.
			m.parkSharded(j)
			return
		}
		m.met.shardClaims.Inc()
		m.met.claimSeconds.Observe(time.Since(claimStart).Seconds())
		m.runOneShard(ctx, j, t, k, lease, state)
	}
	m.settleShardedInterrupted(j)
}

// startRunning flips a queued job to running; callers hold mu.
func (m *Manager) startRunning(j *job) (ctx context.Context, cancel func()) {
	ctx, cancel = context.WithCancel(m.ctx)
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	wait := j.started.Sub(j.queuedAt).Seconds()
	if wait >= 0 {
		m.met.queueWait.Observe(wait)
	}
	return ctx, cancel
}

// claimShard scans the table in shard order and returns the first
// shard whose lease this node wins, or -1 when every open shard is
// terminal or foreign-held.
func (m *Manager) claimShard(j *job, t *shardTable) (int, *heldLease, *shardState) {
	for k := 0; k < t.Shards; k++ {
		s := m.loadShardState(t, k)
		if s.terminal() {
			continue
		}
		h, err := m.tryAcquireLease(t.Job, k)
		if err != nil {
			m.log.ErrorContext(j.logCtx(), "lease acquire failed",
				slog.Int("shard", k), slog.String("error", err.Error()))
			continue
		}
		if h != nil {
			return k, h, s
		}
	}
	return -1, nil, nil
}

// allShardsTerminal reports whether every shard has a durable terminal
// state.
func (m *Manager) allShardsTerminal(t *shardTable) bool {
	for k := 0; k < t.Shards; k++ {
		if !m.loadShardState(t, k).terminal() {
			return false
		}
	}
	return true
}

// runOneShard executes shard k's remaining restarts under the held
// lease, checkpointing plan-then-state after every completed restart.
// A heartbeat goroutine renews the lease at TTL/3; if a renewal CAS
// fails the lease was taken over and the shard context is cancelled so
// this node stops before writing anything further. All shard writes
// are deterministic functions of (job, shard, restarts-done), so even
// the unavoidable instant between a takeover and the old holder
// noticing cannot corrupt state: a stale write carries exactly the
// bytes the new holder would produce at that point.
func (m *Manager) runOneShard(ctx context.Context, j *job, t *shardTable, k int, h *heldLease, s *shardState) {
	shardCtx, cancelShard := context.WithCancel(ctx)
	defer cancelShard()
	lctx := j.logCtx()

	lost := false // set by the heartbeat on renewal failure
	var mu sync.Mutex
	stop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		ticker := time.NewTicker(m.shard.LeaseTTL / 3)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-shardCtx.Done():
				return
			case <-ticker.C:
				if err := m.renewLease(h); err != nil {
					m.met.leaseLosses.Inc()
					m.log.ErrorContext(lctx, "lease lost",
						slog.Int("shard", k), slog.String("error", err.Error()))
					mu.Lock()
					lost = true
					mu.Unlock()
					cancelShard()
					return
				}
			}
		}
	}()
	defer func() {
		close(stop)
		hb.Wait()
		mu.Lock()
		wasLost := lost
		mu.Unlock()
		if !wasLost {
			m.releaseLease(h)
		} else {
			m.met.leaseActive.Add(-1)
		}
	}()

	m.log.InfoContext(lctx, "shard claimed",
		slog.Int("shard", k), slog.Int("fromRestart", s.Lo+s.Done),
		slog.Int("epoch", h.lease.Epoch))

	// Resume sanity: a shard state that claims progress must have a
	// readable plan whenever it recorded a best. A torn plan blob means
	// the whole shard re-runs — determinism repairs it.
	if s.Done > 0 && s.BestCost != nil {
		if _, err := m.readShardPlan(t.Job, k); err != nil {
			m.log.ErrorContext(lctx, "shard plan unreadable; re-running shard",
				slog.Int("shard", k), slog.String("error", err.Error()))
			lo, hi := t.bounds(k)
			*s = shardState{Version: shardVersion, Kind: "shard", Job: t.Job,
				Shard: k, Lo: lo, Hi: hi, State: shardPending}
		}
	}

	spec := j.spec
	seeds := coverage.SplitSeeds(spec.Options.Seed, spec.Restarts)
	for r := s.Lo + s.Done; r < s.Hi; r++ {
		if shardCtx.Err() != nil {
			return
		}
		runOpts := spec.Options
		runOpts.Seed = seeds[r]
		restart := r
		runOpts.OnProgress = func(p coverage.Progress) {
			m.noteProgress(j, restart, p)
		}
		if m.met.iterSeconds != nil {
			var lastIter time.Time
			runOpts.OnIteration = func(ev coverage.IterationEvent) {
				now := time.Now()
				if !lastIter.IsZero() {
					m.met.iterSeconds.Observe(now.Sub(lastIter).Seconds())
				}
				lastIter = now
				if ev.Probes > 0 {
					m.met.probes.Observe(float64(ev.Probes))
				}
			}
		}
		plan, err := optimizeSpec(shardCtx, spec, runOpts)
		if err != nil {
			if shardCtx.Err() != nil {
				return // interrupted mid-restart; nothing durable to record
			}
			s.State = shardFailed
			s.Error = err.Error()
			m.putShardState(lctx, s)
			m.met.shardsDone.Inc()
			return
		}
		if shardCtx.Err() != nil {
			return // lease lost during the final stretch: drop the result
		}
		// Strict < mirrors OptimizeBest's first-wins tie-breaking, so
		// BestRestart is the lowest restart index in the shard achieving
		// the shard minimum.
		if plan != nil && (s.BestCost == nil || plan.Cost < *s.BestCost) {
			var buf bytes.Buffer
			if werr := coverage.WritePlan(&buf, plan); werr == nil {
				if perr := m.store.Put(shardPlanBlob(t.Job, k), buf.Bytes()); perr != nil {
					m.log.ErrorContext(lctx, "shard plan write failed",
						slog.Int("shard", k), slog.String("error", perr.Error()))
					return // do not advance Done past an unwritable plan
				}
			}
			c := plan.Cost
			s.BestCost = &c
			s.BestRestart = r
		}
		s.Done++
		if plan != nil {
			s.Iters += plan.Iterations
		}
		if s.Done == s.Hi-s.Lo {
			s.State = shardDone
		}
		m.putShardState(lctx, s)
		m.refreshShardProgress(j, t)
		if fn := m.testAfterShardRestart; fn != nil {
			fn(j.id, k, r)
		}
		if plan != nil {
			m.log.InfoContext(lctx, "shard restart complete",
				slog.Int("shard", k), slog.Int("restart", r),
				slog.Float64("cost", plan.Cost))
		}
	}
	if s.State == shardDone {
		m.met.shardsDone.Inc()
	}
}

// putShardState writes a shard's durable progress record (plain Put:
// the lease makes this node the only writer).
func (m *Manager) putShardState(lctx context.Context, s *shardState) {
	start := time.Now()
	err := m.store.Put(shardStateBlob(s.Job, s.Shard), marshalBlob(s))
	m.met.ckptSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		m.log.ErrorContext(lctx, "shard state write failed",
			slog.Int("shard", s.Shard), slog.String("error", err.Error()))
	}
}

// readShardPlan loads shard k's best plan blob.
func (m *Manager) readShardPlan(id string, k int) (*coverage.Plan, error) {
	raw, err := m.store.Get(shardPlanBlob(id, k))
	if err != nil {
		return nil, err
	}
	return coverage.ReadPlan(bytes.NewReader(raw))
}

// refreshShardProgress recomputes the job's cluster-wide progress from
// the shard states and updates the local record.
func (m *Manager) refreshShardProgress(j *job, t *shardTable) {
	done, iters := 0, 0
	var best *float64
	for k := 0; k < t.Shards; k++ {
		s := m.loadShardState(t, k)
		done += s.Done
		iters += s.Iters
		if s.BestCost != nil && (best == nil || *s.BestCost < *best) {
			c := *s.BestCost
			best = &c
		}
	}
	m.mu.Lock()
	j.restartsDone = done
	j.itersDone = iters
	j.prog.RestartsDone = done
	j.prog.BestCost = best
	m.mu.Unlock()
}

// parkSharded returns a job this node cannot advance right now to the
// queued state; the poller re-enqueues it when a shard frees up or the
// job becomes mergeable.
func (m *Manager) parkSharded(j *job) {
	m.mu.Lock()
	if j.state == StateRunning {
		j.state = StateQueued
		if !j.started.IsZero() {
			j.ranSec += time.Since(j.started).Seconds()
			j.started = time.Time{}
		}
		j.cancel = nil
	}
	m.mu.Unlock()
}

// settleShardedInterrupted routes a cancelled sharded run: a user
// cancel becomes a cluster-wide terminal transition through CAS, a
// shutdown parks the job locally — the store still says queued, so
// any node (including a restarted this-one) picks the work back up.
func (m *Manager) settleShardedInterrupted(j *job) {
	m.mu.Lock()
	user := j.userCancel
	m.mu.Unlock()
	if !user {
		m.mu.Lock()
		if j.state == StateRunning {
			j.state = StatePaused
			if !j.started.IsZero() {
				j.ranSec += time.Since(j.started).Seconds()
				j.started = time.Time{}
			}
			j.cancel = nil
		}
		m.mu.Unlock()
		m.log.InfoContext(j.logCtx(), "sharded job parked by shutdown")
		return
	}
	m.casJobTerminal(j, StateCancelled, "", nil)
}

// cancelSharded handles Cancel for a sharded job that no worker here
// is currently running: the terminal transition must go through the
// store so every node observes it.
func (m *Manager) cancelSharded(j *job) error {
	won, cur := m.casJobTerminal(j, StateCancelled, "", nil)
	if !won && cur.Terminal() && cur != StateCancelled {
		return fmt.Errorf("%w: %s is %s", ErrTerminal, j.id, cur)
	}
	return nil
}

// casJobTerminal moves the shared job record to a terminal state with
// compare-and-swap, retrying on conflict until either this node wins
// or another node has already made the job terminal. It returns
// whether this node won, plus the job's (possibly foreign) final
// state. The winner — and only the winner — may fire completion hooks.
func (m *Manager) casJobTerminal(j *job, state State, errMsg string, plan *coverage.Plan) (bool, State) {
	for attempt := 0; attempt < 16; attempt++ {
		raw, err := m.store.Get(jobBlob(j.id))
		if err != nil {
			m.log.ErrorContext(j.logCtx(), "job meta read failed during terminal transition",
				slog.String("error", err.Error()))
			return false, j.state
		}
		var env jobEnvelope
		if err := json.Unmarshal(raw, &env); err != nil || env.Job == nil {
			m.log.ErrorContext(j.logCtx(), "job meta torn during terminal transition")
			return false, j.state
		}
		if env.Job.State.Terminal() {
			m.adoptTerminalMeta(j, env.Job)
			return false, env.Job.State
		}
		m.mu.Lock()
		env.Job.State = state
		env.Job.Finished = time.Now()
		env.Job.Error = errMsg
		env.Job.RestartsDone = j.restartsDone
		env.Job.ItersDone = j.itersDone
		env.Job.RanSec = j.ranSec
		m.mu.Unlock()
		blob, merr := json.MarshalIndent(env, "", "  ")
		if merr != nil {
			return false, j.state
		}
		err = m.cas.CompareAndSwap(jobBlob(j.id), raw, append(blob, '\n'))
		if err == nil {
			m.applyTerminalLocal(j, state, errMsg, plan, env.Job.Finished)
			return true, state
		}
		if !errors.Is(err, ErrCASConflict) {
			m.log.ErrorContext(j.logCtx(), "terminal CAS failed",
				slog.String("error", err.Error()))
			return false, j.state
		}
	}
	m.log.ErrorContext(j.logCtx(), "terminal CAS retries exhausted")
	return false, j.state
}

// applyTerminalLocal updates the in-memory record after a won terminal
// CAS.
func (m *Manager) applyTerminalLocal(j *job, state State, errMsg string, plan *coverage.Plan, at time.Time) {
	m.mu.Lock()
	j.state = state
	j.finished = at
	j.errMsg = errMsg
	if !j.started.IsZero() {
		j.ranSec += at.Sub(j.started).Seconds()
		j.started = time.Time{}
	}
	if plan != nil {
		j.plan = plan
		c := plan.Cost
		j.prog.BestCost = &c
	}
	j.cancel = nil
	ran := j.ranSec
	m.mu.Unlock()
	m.met.runSeconds.Observe(ran)
}

// adoptTerminalMeta syncs the local record with a terminal state some
// other node wrote, pulling in the merged plan when one exists.
func (m *Manager) adoptTerminalMeta(j *job, meta *jobMeta) {
	var plan *coverage.Plan
	if raw, err := m.store.Get(planBlob(j.id)); err == nil {
		if p, perr := coverage.ReadPlan(bytes.NewReader(raw)); perr == nil {
			plan = p
		}
	}
	m.mu.Lock()
	j.state = meta.State
	j.finished = meta.Finished
	j.errMsg = meta.Error
	j.restartsDone = meta.RestartsDone
	j.itersDone = meta.ItersDone
	j.prog.RestartsDone = meta.RestartsDone
	if plan != nil {
		j.plan = plan
		c := plan.Cost
		j.prog.BestCost = &c
	}
	j.cancel = nil
	j.started = time.Time{}
	m.mu.Unlock()
}

// syncSharedMeta refreshes the local record from the shared job blob
// and reports whether the job is terminal cluster-wide.
func (m *Manager) syncSharedMeta(j *job) bool {
	raw, err := m.store.Get(jobBlob(j.id))
	if err != nil {
		return false
	}
	var env jobEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Job == nil {
		return false
	}
	if env.Job.State.Terminal() {
		m.adoptTerminalMeta(j, env.Job)
		return true
	}
	return false
}

// finishSharded merges a fully-terminal shard set: reduce the shard
// results to the (cost, restart) winner, publish the winning plan as
// the job's plan blob, and CAS the job terminal. Every node reaches
// the same winner from the same states — the Put of the merged plan is
// idempotent (identical bytes) — and the CAS picks the single node
// that fires the done listener.
func (m *Manager) finishSharded(j *job, t *shardTable) {
	start := time.Now()
	results := make([]shardResult, 0, t.Shards)
	iters, done := 0, 0
	for k := 0; k < t.Shards; k++ {
		s := m.loadShardState(t, k)
		results = append(results, shardResult{
			Shard: k, Failed: s.State == shardFailed, Error: s.Error,
			BestCost: s.BestCost, BestRestart: s.BestRestart, Iters: s.Iters,
		})
		iters += s.Iters
		done += s.Done
	}
	m.mu.Lock()
	j.itersDone = iters
	j.restartsDone = done
	j.prog.RestartsDone = done
	m.mu.Unlock()

	var failMsg string
	for _, r := range results {
		if r.Failed {
			failMsg = fmt.Sprintf("shard %d: %s", r.Shard, r.Error)
			break
		}
	}
	winner, ok := pickShardWinner(results)
	var plan *coverage.Plan
	if ok {
		p, err := m.readShardPlan(t.Job, winner.Shard)
		if err != nil {
			// The winning shard's plan blob is unreadable: force the shard
			// back to pending so it re-runs, and let the job continue.
			m.log.ErrorContext(j.logCtx(), "winning shard plan unreadable; re-running shard",
				slog.Int("shard", winner.Shard), slog.String("error", err.Error()))
			lo, hi := t.bounds(winner.Shard)
			m.putShardState(j.logCtx(), &shardState{
				Version: shardVersion, Kind: "shard", Job: t.Job,
				Shard: winner.Shard, Lo: lo, Hi: hi, State: shardPending,
			})
			m.parkSharded(j)
			m.tryEnqueue(j)
			return
		}
		plan = p
		var buf bytes.Buffer
		if err := coverage.WritePlan(&buf, plan); err == nil {
			if perr := m.store.Put(planBlob(t.Job), buf.Bytes()); perr != nil {
				m.log.ErrorContext(j.logCtx(), "merged plan write failed",
					slog.String("error", perr.Error()))
			}
		}
	}

	state := StateDone
	if failMsg != "" {
		state = StateFailed
	}
	won, final := m.casJobTerminal(j, state, failMsg, plan)
	m.met.merges.Inc()
	m.met.mergeSeconds.Observe(time.Since(start).Seconds())
	attrs := []any{
		slog.String("state", string(final)),
		slog.Bool("mergedHere", won),
		slog.Int("shards", t.Shards),
	}
	if plan != nil {
		attrs = append(attrs, slog.Float64("cost", plan.Cost),
			slog.Int("winningShard", winner.Shard),
			slog.Int("winningRestart", winner.BestRestart))
	}
	m.log.InfoContext(j.logCtx(), "sharded job merged", attrs...)

	// Best-effort lease cleanup; stale lease blobs for a terminal job
	// are inert either way.
	for k := 0; k < t.Shards; k++ {
		m.store.Delete(shardLeaseBlob(t.Job, k))
	}
	if won && state == StateDone && plan != nil {
		m.mu.Lock()
		fn := m.onDone
		m.mu.Unlock()
		if fn != nil {
			fn(j.id, j.spec, plan)
		}
	}
}

// tryEnqueue puts a queued sharded job back on the local worker queue
// without blocking; a full queue just waits for the next poll.
func (m *Manager) tryEnqueue(j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || j.state != StateQueued || j.inQueue {
		return
	}
	select {
	case m.queue <- j:
		j.inQueue = true
		j.queuedAt = time.Now()
	default:
	}
}

// poller periodically scans the store: it adopts sharded jobs other
// nodes submitted, refreshes cluster-wide progress of known ones, and
// re-enqueues any parked job with claimable work or a pending merge.
func (m *Manager) poller() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.shard.Poll)
	defer ticker.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-ticker.C:
			m.pollShards()
		}
	}
}

// pollShards is one poller sweep.
func (m *Manager) pollShards() {
	names, err := m.store.List()
	if err != nil {
		m.log.Error("shard poll: store list failed", slog.String("error", err.Error()))
		return
	}
	depth := 0
	for _, name := range names {
		if !strings.HasSuffix(name, shardTableSuffix) {
			continue
		}
		id := strings.TrimSuffix(name, shardTableSuffix)
		j := m.adoptSharded(id)
		if j == nil {
			continue
		}
		m.mu.Lock()
		terminal := j.state.Terminal()
		running := j.state == StateRunning
		m.mu.Unlock()
		if terminal || running {
			continue
		}
		if m.syncSharedMeta(j) {
			continue
		}
		t, err := m.loadShardTable(id)
		if err != nil {
			continue
		}
		claimable, open := m.assessShards(t)
		depth += claimable
		m.refreshShardProgress(j, t)
		if claimable > 0 || open == 0 {
			m.tryEnqueue(j)
		}
	}
	m.met.shardQueueDepth.Set(float64(depth))
}

// assessShards counts open (non-terminal) shards and how many of those
// are claimable right now (no live lease).
func (m *Manager) assessShards(t *shardTable) (claimable, open int) {
	now := time.Now()
	for k := 0; k < t.Shards; k++ {
		s := m.loadShardState(t, k)
		if s.terminal() {
			continue
		}
		open++
		l, _, err := m.readLease(t.Job, k)
		if err == nil && (l == nil || !l.live(now)) {
			claimable++
		}
	}
	return claimable, open
}

// adoptSharded returns the local record for a sharded job id, loading
// it from the store the first time this node sees it (a submission
// from another node). Returns nil when the checkpoint cannot be read
// yet — e.g. the submitter is mid-write; the next poll retries.
func (m *Manager) adoptSharded(id string) *job {
	m.mu.Lock()
	if j, ok := m.jobs[id]; ok {
		m.mu.Unlock()
		return j
	}
	m.mu.Unlock()

	j, err := m.loadJob(id)
	if err != nil {
		return nil
	}
	j.sharded = true
	if !j.state.Terminal() {
		j.state = StateQueued
		j.queuedAt = time.Now()
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if existing, ok := m.jobs[id]; ok {
		return existing // raced with another adopter
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	if n := seqFromID(id); n > m.seq {
		m.seq = n
	}
	m.sortOrder()
	m.log.Info("adopted sharded job from store", slog.String("job", id))
	return j
}
