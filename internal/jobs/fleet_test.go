package jobs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/coverage"
	"repro/internal/obs"
)

// fleetSpec builds a small valid K-sensor job spec.
func fleetSpec(t *testing.T, sensors, maxIters, restarts int, seed uint64) Spec {
	t.Helper()
	s := testSpec(t, maxIters, restarts, seed)
	s.Sensors = sensors
	return s
}

// assertFleetPlansEqual extends assertPlansEqual with bit-for-bit
// comparison of every sensor's transition matrix.
func assertFleetPlansEqual(t *testing.T, got, want *coverage.Plan, label string) {
	t.Helper()
	assertPlansEqual(t, got, want, label)
	if got.Fleet == nil || want.Fleet == nil {
		t.Fatalf("%s: fleet blocks got=%v want=%v", label, got.Fleet, want.Fleet)
	}
	if got.Fleet.Sensors != want.Fleet.Sensors {
		t.Fatalf("%s: sensors %d, want %d", label, got.Fleet.Sensors, want.Fleet.Sensors)
	}
	for s := range want.Fleet.TransitionMatrices {
		gm, wm := got.Fleet.TransitionMatrices[s], want.Fleet.TransitionMatrices[s]
		for i := range wm {
			for j := range wm[i] {
				if gm[i][j] != wm[i][j] {
					t.Fatalf("%s: sensor %d P[%d][%d] = %.17g, want %.17g",
						label, s, i, j, gm[i][j], wm[i][j])
				}
			}
		}
	}
}

func TestFleetSubmitValidation(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer shutdown(t, m)

	neg := testSpec(t, 100, 1, 1)
	neg.Sensors = -2
	if _, err := m.Submit(neg); !errors.Is(err, ErrSpec) {
		t.Errorf("negative sensors err = %v, want ErrSpec", err)
	}

	// Responsibility on a single-sensor job is a spec error: the field
	// only means something for fleets.
	single := testSpec(t, 100, 1, 1)
	single.Responsibility = [][]float64{{1, 1, 1}}
	if _, err := m.Submit(single); !errors.Is(err, ErrSpec) {
		t.Errorf("responsibility on single-sensor job err = %v, want ErrSpec", err)
	}

	// Malformed responsibility on a fleet job (wrong row count).
	bad := fleetSpec(t, 2, 100, 1, 1)
	bad.Responsibility = [][]float64{{1, 1, 1}}
	if _, err := m.Submit(bad); !errors.Is(err, ErrSpec) {
		t.Errorf("short responsibility err = %v, want ErrSpec", err)
	}
	bad.Responsibility = [][]float64{{1, 1, 1}, {1, -1, 1}}
	if _, err := m.Submit(bad); !errors.Is(err, ErrSpec) {
		t.Errorf("negative responsibility err = %v, want ErrSpec", err)
	}

	// Option errors surface at run time (as for single-sensor jobs):
	// BasicDescent has no fleet variant, so the job fails cleanly.
	badAlgo := fleetSpec(t, 2, 100, 1, 1)
	badAlgo.Options.Algorithm = coverage.BasicDescent
	v, err := m.Submit(badAlgo)
	if err != nil {
		t.Fatalf("Submit badAlgo: %v", err)
	}
	waitFor(t, 30*time.Second, func() bool {
		got, _ := m.Get(v.ID)
		return got.State == StateFailed
	}, "fleet job with unsupported algorithm to fail")
	got, _ := m.Get(v.ID)
	if got.Error == "" {
		t.Errorf("failed fleet job carries no error message")
	}
}

// TestFleetJobMatchesOptimizeFleetBest: a fleet job run through the
// manager produces exactly the plan a direct OptimizeFleetBest call
// would, and the fleet metrics tick.
func TestFleetJobMatchesOptimizeFleetBest(t *testing.T) {
	reg := obs.NewRegistry()
	m, err := New(Config{Workers: 1, Metrics: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer shutdown(t, m)

	spec := fleetSpec(t, 2, 150, 3, 42)
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, 60*time.Second, func() bool {
		got, _ := m.Get(v.ID)
		return got.State == StateDone
	}, "fleet job to finish")

	plan, err := m.Plan(v.ID)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	want, err := coverage.OptimizeFleetBest(spec.Scenario, spec.Objectives,
		spec.Options, spec.Sensors, spec.Responsibility, spec.Restarts)
	if err != nil {
		t.Fatalf("OptimizeFleetBest: %v", err)
	}
	assertFleetPlansEqual(t, plan, want, "fleet job")

	if got := m.met.fleetJobs.Value(); got != 1 {
		t.Errorf("fleet_jobs_total = %v, want 1", got)
	}
}

// TestFleetJobResume: interrupting a fleet job mid-run and resuming it
// from the checkpoint directory lands on the bit-identical final plan,
// with Sensors and Responsibility surviving the metadata round-trip.
func TestFleetJobResume(t *testing.T) {
	dir := t.TempDir()
	spec := fleetSpec(t, 2, 300, 8, 99)
	spec.Responsibility = [][]float64{{1, 0.5, 1}, {0.5, 1, 1}}

	m1, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatalf("New m1: %v", err)
	}
	v, err := m1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, 60*time.Second, func() bool {
		got, _ := m1.Get(v.ID)
		return got.Progress.RestartsDone >= 1 || got.State == StateDone
	}, "first fleet restart to checkpoint")
	shutdown(t, m1)

	m2, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatalf("New m2: %v", err)
	}
	defer shutdown(t, m2)
	waitFor(t, 120*time.Second, func() bool {
		got, err := m2.Get(v.ID)
		return err == nil && got.State == StateDone
	}, "resumed fleet job to finish")

	plan, err := m2.Plan(v.ID)
	if err != nil {
		t.Fatalf("Plan after resume: %v", err)
	}
	want, err := coverage.OptimizeFleetBest(spec.Scenario, spec.Objectives,
		spec.Options, spec.Sensors, spec.Responsibility, spec.Restarts)
	if err != nil {
		t.Fatalf("OptimizeFleetBest: %v", err)
	}
	assertFleetPlansEqual(t, plan, want, "resumed fleet job")
}

// TestFleetJobSharded: a fleet job under the shard protocol merges to
// the same plan as a direct call, with every restart completed exactly
// once across the cluster.
func TestFleetJobSharded(t *testing.T) {
	dir := t.TempDir()
	spec := fleetSpec(t, 2, 60, 4, 313)

	var mu sync.Mutex
	completed := make(map[int]int) // restart -> completion count
	mgrs := make([]*Manager, 0, 2)
	for i := 0; i < 2; i++ {
		m := shardManager(t, dir, fmt.Sprintf("fn%d", i), Config{
			Metrics: obs.NewRegistry(),
			testAfterShardRestart: func(jobID string, shard, restart int) {
				mu.Lock()
				completed[restart]++
				mu.Unlock()
			},
		})
		defer shutdown(t, m)
		mgrs = append(mgrs, m)
	}

	v, err := mgrs[0].Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, 120*time.Second, func() bool {
		got, err := mgrs[0].Get(v.ID)
		return err == nil && got.State == StateDone
	}, "sharded fleet job to finish")

	want, err := coverage.OptimizeFleetBest(spec.Scenario, spec.Objectives,
		spec.Options, spec.Sensors, spec.Responsibility, spec.Restarts)
	if err != nil {
		t.Fatalf("OptimizeFleetBest: %v", err)
	}
	for i, m := range mgrs {
		waitFor(t, 10*time.Second, func() bool {
			got, err := m.Get(v.ID)
			return err == nil && got.State == StateDone
		}, fmt.Sprintf("node %d to observe completion", i))
		plan, err := m.Plan(v.ID)
		if err != nil {
			t.Fatalf("node %d Plan: %v", i, err)
		}
		assertFleetPlansEqual(t, plan, want, fmt.Sprintf("node %d", i))
	}

	mu.Lock()
	defer mu.Unlock()
	for r := 0; r < spec.Restarts; r++ {
		if completed[r] != 1 {
			t.Errorf("restart %d completed %d times, want exactly 1", r, completed[r])
		}
	}
}
