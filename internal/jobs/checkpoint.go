package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"strings"
	"time"

	"repro/coverage"
)

// checkpointVersion is the on-disk job-metadata format version.
const checkpointVersion = 1

// Checkpoint blob layout, one triple per job in the manager's Store:
//
//	<id>.job.json       job metadata + objectives + options (this file)
//	<id>.scenario.json  the Scenario, via coverage.WriteScenario
//	<id>.plan.json      best plan so far, via coverage.WritePlan (optional)
//
// The scenario and plan blobs reuse the coverage/persist envelopes, so
// (with the default filesystem store) they are loadable by every
// existing tool (e.g. `coverage-opt -scenario` or LoadPlan) as well as
// by the resume path.
type jobEnvelope struct {
	Version int      `json:"version"`
	Kind    string   `json:"kind"`
	Job     *jobMeta `json:"job"`
}

// jobMeta is the serializable slice of a job record. The scenario and
// plan live in their own blobs.
type jobMeta struct {
	ID           string              `json:"id"`
	State        State               `json:"state"`
	Objectives   coverage.Objectives `json:"objectives"`
	Options      coverage.Options    `json:"options"`
	Restarts     int                 `json:"restarts"`
	Sensors      int                 `json:"sensors,omitempty"`
	Resp         [][]float64         `json:"responsibility,omitempty"`
	Sharded      bool                `json:"sharded,omitempty"`
	RestartsDone int                 `json:"restartsDone"`
	ItersDone    int                 `json:"itersDone,omitempty"`
	RanSec       float64             `json:"ranSec,omitempty"`
	Created      time.Time           `json:"created"`
	Started      time.Time           `json:"started"`
	Finished     time.Time           `json:"finished"`
	Error        string              `json:"error,omitempty"`
}

// Blob names for a job ID.
func jobBlob(id string) string      { return id + ".job.json" }
func scenarioBlob(id string) string { return id + ".scenario.json" }
func planBlob(id string) string     { return id + ".plan.json" }

// persist checkpoints a job: metadata always, the scenario only on
// first write, the plan whenever one exists. Failures are recorded on
// the job rather than crashing the worker — an unwritable checkpoint
// store must not take the service down.
func (m *Manager) persist(j *job, withScenario bool) {
	if m.store == nil {
		return
	}
	m.mu.Lock()
	if j.sharded && !withScenario {
		// Sharded jobs write their metadata blob exactly once, at submit;
		// after that the blob is CAS-contended across nodes (terminal
		// transitions only) and progress lives in the shard-state blobs.
		// A plain Put here could clobber another node's terminal CAS.
		m.mu.Unlock()
		return
	}
	meta := &jobMeta{
		ID:           j.id,
		State:        j.state,
		Sharded:      j.sharded,
		Objectives:   j.spec.Objectives,
		Options:      j.spec.Options,
		Restarts:     j.spec.Restarts,
		Sensors:      j.spec.Sensors,
		Resp:         j.spec.Responsibility,
		RestartsDone: j.restartsDone,
		ItersDone:    j.itersDone,
		RanSec:       j.ranSec,
		Created:      j.created,
		Started:      j.started,
		Finished:     j.finished,
		Error:        j.errMsg,
	}
	scn := j.spec.Scenario
	plan := j.plan
	m.mu.Unlock()

	start := time.Now()
	err := m.writeCheckpoint(meta, scn, plan, withScenario)
	m.met.ckptSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		m.log.ErrorContext(j.logCtx(), "checkpoint write failed",
			slog.String("error", err.Error()))
		m.mu.Lock()
		if j.errMsg == "" {
			j.errMsg = fmt.Sprintf("checkpoint: %v", err)
		}
		m.mu.Unlock()
	}
}

// writeCheckpoint writes the triple crash-safely: each blob lands via
// the store's atomic Put, and the metadata (which names the
// authoritative state) goes last.
func (m *Manager) writeCheckpoint(meta *jobMeta, scn coverage.Scenario, plan *coverage.Plan, withScenario bool) error {
	if withScenario {
		var buf bytes.Buffer
		if err := coverage.WriteScenario(&buf, scn); err != nil {
			return err
		}
		if err := m.store.Put(scenarioBlob(meta.ID), buf.Bytes()); err != nil {
			return err
		}
	}
	if plan != nil {
		var buf bytes.Buffer
		if err := coverage.WritePlan(&buf, plan); err != nil {
			return err
		}
		if err := m.store.Put(planBlob(meta.ID), buf.Bytes()); err != nil {
			return err
		}
	}
	blob, err := json.MarshalIndent(jobEnvelope{
		Version: checkpointVersion,
		Kind:    "job",
		Job:     meta,
	}, "", "  ")
	if err != nil {
		return err
	}
	return m.store.Put(jobBlob(meta.ID), append(blob, '\n'))
}

// loadCheckpoints scans the store, rebuilds the job table, and returns
// the jobs that need re-queueing (queued, paused, or running at the
// time the previous process stopped), ordered by ID. Terminal jobs are
// loaded so their results stay queryable across restarts.
func (m *Manager) loadCheckpoints() ([]*job, error) {
	names, err := m.store.List()
	if err != nil {
		return nil, fmt.Errorf("jobs: checkpoint store: %w", err)
	}
	var resume []*job
	for _, name := range names {
		if !strings.HasSuffix(name, ".job.json") {
			continue
		}
		id := strings.TrimSuffix(name, ".job.json")
		j, err := m.loadJob(id)
		if err != nil {
			// A torn or corrupt checkpoint (crash mid-write, disk trouble,
			// manual edits) must not take every other job down with it:
			// skip the bad blob, keep it in the store for inspection, and
			// load the rest. The write path's atomic Put makes this rare,
			// but startup must tolerate whatever it finds.
			m.log.Error("skipping unreadable checkpoint",
				slog.String("file", name),
				slog.String("error", err.Error()))
			continue
		}
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		if n := seqFromID(j.id); n > m.seq {
			m.seq = n
		}
		if !j.state.Terminal() {
			resume = append(resume, j)
		}
	}
	sortByID(resume)
	// Keep List ordering stable across restarts too.
	m.sortOrder()
	return resume, nil
}

// sortOrder re-sorts the List order by job sequence number.
func (m *Manager) sortOrder() {
	js := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		js = append(js, m.jobs[id])
	}
	sortByID(js)
	m.order = m.order[:0]
	for _, j := range js {
		m.order = append(m.order, j.id)
	}
}

// loadJob reads one checkpoint triple back into a job record.
func (m *Manager) loadJob(id string) (*job, error) {
	blob, err := m.store.Get(jobBlob(id))
	if err != nil {
		return nil, err
	}
	var env jobEnvelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, err
	}
	if env.Version != checkpointVersion || env.Kind != "job" || env.Job == nil {
		return nil, fmt.Errorf("not a version-%d job file", checkpointVersion)
	}
	meta := env.Job
	if meta.ID == "" || !meta.State.valid() {
		return nil, fmt.Errorf("malformed job metadata (id %q, state %q)", meta.ID, meta.State)
	}
	scnBlob, err := m.store.Get(scenarioBlob(meta.ID))
	if err != nil {
		return nil, err
	}
	scn, err := coverage.ReadScenario(bytes.NewReader(scnBlob))
	if err != nil {
		return nil, err
	}
	j := &job{
		id: meta.ID,
		spec: Spec{
			Scenario:       scn,
			Objectives:     meta.Objectives,
			Options:        meta.Options,
			Restarts:       meta.Restarts,
			Sensors:        meta.Sensors,
			Responsibility: meta.Resp,
		},
		state:        meta.State,
		sharded:      meta.Sharded,
		created:      meta.Created,
		started:      meta.Started,
		finished:     meta.Finished,
		errMsg:       meta.Error,
		restartsDone: meta.RestartsDone,
		itersDone:    meta.ItersDone,
		ranSec:       meta.RanSec,
		prog: Progress{
			Restarts:     meta.Restarts,
			RestartsDone: meta.RestartsDone,
		},
	}
	// A job caught mid-flight by a hard kill says "running"; it resumes
	// from its last completed restart like a paused one.
	if j.state == StateRunning {
		j.state = StatePaused
	}
	// No plan checkpoint yet is fine for queued or just-started jobs.
	planRaw, err := m.store.Get(planBlob(meta.ID))
	switch {
	case err == nil:
		plan, err := coverage.ReadPlan(bytes.NewReader(planRaw))
		if err != nil {
			return nil, err
		}
		j.plan = plan
		c := plan.Cost
		j.prog.BestCost = &c
	case errors.Is(err, fs.ErrNotExist):
		// fine
	default:
		return nil, err
	}
	return j, nil
}
