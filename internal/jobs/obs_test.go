package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// syncBuffer is a goroutine-safe log sink: the HTTP handler and the
// worker goroutine both write to the shared logger concurrently.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// parseLogLines decodes a buffer of JSON slog records.
func parseLogLines(t *testing.T, raw string) []map[string]any {
	t.Helper()
	var lines []map[string]any
	for _, ln := range strings.Split(raw, "\n") {
		if strings.TrimSpace(ln) == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad log line %q: %v", ln, err)
		}
		lines = append(lines, rec)
	}
	return lines
}

// findLine returns the first record whose msg matches, or fails.
func findLine(t *testing.T, lines []map[string]any, msg string) map[string]any {
	t.Helper()
	for _, rec := range lines {
		if rec["msg"] == msg {
			return rec
		}
	}
	t.Fatalf("no log line with msg %q in:\n%s", msg, dumpMsgs(lines))
	return nil
}

func dumpMsgs(lines []map[string]any) string {
	var b strings.Builder
	for _, rec := range lines {
		b.WriteString("  ")
		if s, ok := rec["msg"].(string); ok {
			b.WriteString(s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestCorrelatedLogTrail drives a job through the HTTP API from submit
// to done and asserts the whole lifecycle is one correlated trail: the
// request line and the submit line share the request ID, and every
// lifecycle line carries the job ID.
func TestCorrelatedLogTrail(t *testing.T) {
	sink := &syncBuffer{}
	logger, err := obs.NewLogger(sink, "debug", "json")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	reg := obs.NewRegistry()
	m, err := New(Config{Workers: 1, Logger: logger, Metrics: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer shutdown(t, m)

	hist := reg.HistogramVec("http_request_duration_seconds",
		"HTTP request latency.", obs.DefBuckets, "route", "status")
	srv := httptest.NewServer(obs.Middleware(m.Handler(), logger, hist))
	defer srv.Close()

	body, err := json.Marshal(testSpec(t, 50, 1, 7))
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	reqID := resp.Header.Get(obs.RequestIDHeader)
	if reqID == "" {
		t.Fatal("response missing X-Request-ID header")
	}
	var view View
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode view: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}

	waitFor(t, 30*time.Second, func() bool {
		got, err := m.Get(view.ID)
		return err == nil && got.State == StateDone
	}, "job to finish")

	lines := parseLogLines(t, sink.String())

	httpLine := findLine(t, lines, "http request")
	if httpLine[obs.AttrRequestID] != reqID {
		t.Errorf("http request line requestId = %v, want %q", httpLine[obs.AttrRequestID], reqID)
	}
	if httpLine["route"] != "POST /jobs" {
		t.Errorf("http request route = %v, want POST /jobs", httpLine["route"])
	}

	submitted := findLine(t, lines, "job submitted")
	if submitted[obs.AttrRequestID] != reqID {
		t.Errorf("submit line requestId = %v, want %q (request/submit correlation broken)",
			submitted[obs.AttrRequestID], reqID)
	}
	if submitted[obs.AttrJobID] != view.ID {
		t.Errorf("submit line job = %v, want %q", submitted[obs.AttrJobID], view.ID)
	}

	for _, msg := range []string{"job started", "job finished"} {
		rec := findLine(t, lines, msg)
		if rec[obs.AttrJobID] != view.ID {
			t.Errorf("%q line job = %v, want %q", msg, rec[obs.AttrJobID], view.ID)
		}
		if rec[obs.AttrComponent] != "jobs" {
			t.Errorf("%q line component = %v, want jobs", msg, rec[obs.AttrComponent])
		}
	}

	// The run should have fed the lifecycle histograms.
	var metrics bytes.Buffer
	if err := reg.WriteText(&metrics); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, want := range []string{
		"coverage_job_queue_wait_seconds_count 1",
		"coverage_job_run_seconds_count 1",
		`http_request_duration_seconds_count{route="POST /jobs",status="202"} 1`,
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Iteration timing fires once per accepted descent event.
	if !strings.Contains(metrics.String(), "coverage_descent_iteration_seconds_count") {
		t.Error("metrics output missing coverage_descent_iteration_seconds samples")
	}
}

// TestDeploymentIDOnJobTrail submits a job with a deployment ID on the
// context (as the deploy runtime does for drift-triggered re-opts) and
// asserts every lifecycle line carries it.
func TestDeploymentIDOnJobTrail(t *testing.T) {
	sink := &syncBuffer{}
	logger, err := obs.NewLogger(sink, "debug", "json")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	m, err := New(Config{Workers: 1, Logger: logger})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer shutdown(t, m)

	ctx := obs.WithDeploymentID(context.Background(), "dep-000042")
	v, err := m.SubmitCtx(ctx, testSpec(t, 50, 1, 11))
	if err != nil {
		t.Fatalf("SubmitCtx: %v", err)
	}
	waitFor(t, 30*time.Second, func() bool {
		got, err := m.Get(v.ID)
		return err == nil && got.State == StateDone
	}, "job to finish")

	lines := parseLogLines(t, sink.String())
	for _, msg := range []string{"job submitted", "job started", "job finished"} {
		rec := findLine(t, lines, msg)
		if rec[obs.AttrDeploymentID] != "dep-000042" {
			t.Errorf("%q line deployment = %v, want dep-000042", msg, rec[obs.AttrDeploymentID])
		}
		if rec[obs.AttrJobID] != v.ID {
			t.Errorf("%q line job = %v, want %q", msg, rec[obs.AttrJobID], v.ID)
		}
	}
}
