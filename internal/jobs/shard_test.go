package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/coverage"
	"repro/internal/obs"
)

// shardManager builds a sharding manager over dir with test-friendly
// timings: fine-grained polling and a short-but-safe lease TTL.
func shardManager(t *testing.T, dir, node string, cfg Config) *Manager {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	cfg.Dir = dir
	cfg.Shard.Enabled = true
	cfg.Shard.Node = node
	if cfg.Shard.LeaseTTL == 0 {
		cfg.Shard.LeaseTTL = 2 * time.Second
	}
	if cfg.Shard.Poll == 0 {
		cfg.Shard.Poll = 20 * time.Millisecond
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%s): %v", node, err)
	}
	return m
}

// assertPlansEqual checks bit-for-bit equality of two plans.
func assertPlansEqual(t *testing.T, got, want *coverage.Plan, label string) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: got=%v want=%v", label, got, want)
	}
	if got.Cost != want.Cost {
		t.Fatalf("%s: cost %.17g, want %.17g", label, got.Cost, want.Cost)
	}
	if got.Iterations != want.Iterations {
		t.Errorf("%s: iterations %d, want %d", label, got.Iterations, want.Iterations)
	}
	if len(got.TransitionMatrix) != len(want.TransitionMatrix) {
		t.Fatalf("%s: matrix rows %d, want %d",
			label, len(got.TransitionMatrix), len(want.TransitionMatrix))
	}
	for i := range got.TransitionMatrix {
		gr, wr := got.TransitionMatrix[i], want.TransitionMatrix[i]
		if len(gr) != len(wr) {
			t.Fatalf("%s: row %d size %d, want %d", label, i, len(gr), len(wr))
		}
		for j := range gr {
			if gr[j] != wr[j] {
				t.Fatalf("%s: P[%d][%d] = %.17g, want %.17g", label, i, j, gr[j], wr[j])
			}
		}
	}
}

// TestCASSemantics pins the CompareAndSwap contract on FSStore:
// create-if-absent, conflict on stale bytes, swap, and delete.
func TestCASSemantics(t *testing.T) {
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CompareAndSwap("x.json", nil, []byte("v1")); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := s.CompareAndSwap("x.json", nil, []byte("v2")); !errors.Is(err, ErrCASConflict) {
		t.Fatalf("create-over-existing err = %v, want ErrCASConflict", err)
	}
	if err := s.CompareAndSwap("x.json", []byte("stale"), []byte("v2")); !errors.Is(err, ErrCASConflict) {
		t.Fatalf("stale swap err = %v, want ErrCASConflict", err)
	}
	if err := s.CompareAndSwap("x.json", []byte("v1"), []byte("v2")); err != nil {
		t.Fatalf("swap: %v", err)
	}
	got, err := s.Get("x.json")
	if err != nil || string(got) != "v2" {
		t.Fatalf("after swap: %q, %v", got, err)
	}
	if err := s.CompareAndSwap("x.json", []byte("v1"), nil); !errors.Is(err, ErrCASConflict) {
		t.Fatalf("stale delete err = %v, want ErrCASConflict", err)
	}
	if err := s.CompareAndSwap("x.json", []byte("v2"), nil); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := s.Get("x.json"); err == nil {
		t.Fatal("blob survived CAS delete")
	}
	// Lock files must stay invisible to List.
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		t.Errorf("List leaked %q after CAS traffic", n)
	}
}

// TestCASSingleWinner races N claimants for one create-if-absent slot,
// the exact shape of a lease claim: exactly one may win.
func TestCASSingleWinner(t *testing.T) {
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const claimants = 16
	for round := 0; round < 8; round++ {
		name := fmt.Sprintf("lease-%d.json", round)
		var wins int32
		var mu sync.Mutex
		var wg sync.WaitGroup
		for c := 0; c < claimants; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				err := s.CompareAndSwap(name, nil, []byte(fmt.Sprintf("claimant-%d", c)))
				if err == nil {
					mu.Lock()
					wins++
					mu.Unlock()
				} else if !errors.Is(err, ErrCASConflict) {
					t.Errorf("round %d claimant %d: %v", round, c, err)
				}
			}(c)
		}
		wg.Wait()
		if wins != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", round, wins)
		}
	}
}

// TestFSStorePutConcurrentNoTear hammers one blob name from many
// writers while a reader checks every observation is a complete
// payload — the multi-node torn-write audit. (The old fixed temp name
// interleaved concurrent writers into one temp file.)
func TestFSStorePutConcurrentNoTear(t *testing.T) {
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	payload := func(w int) []byte {
		return bytes.Repeat([]byte{byte('a' + w)}, 4096)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			blob := payload(w)
			for {
				select {
				case <-stop:
					return
				default:
					if err := s.Put("hot.json", blob); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		got, err := s.Get("hot.json")
		if err != nil {
			continue // not yet written, or mid-rename on some filesystems
		}
		if len(got) != 4096 {
			t.Fatalf("torn read: %d bytes", len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i] != got[0] {
				t.Fatalf("torn read: mixed writers at byte %d (%q vs %q)", i, got[i], got[0])
			}
		}
	}
	close(stop)
	wg.Wait()
}

// paperSpecs returns one job spec per paper topology.
func paperSpecs(t *testing.T, maxIters, restarts int, seed uint64) []Spec {
	t.Helper()
	specs := make([]Spec, 0, 4)
	for n := 1; n <= 4; n++ {
		scn, err := coverage.PaperTopology(n)
		if err != nil {
			t.Fatalf("PaperTopology(%d): %v", n, err)
		}
		specs = append(specs, Spec{
			Scenario:   scn,
			Objectives: coverage.Objectives{Alpha: 1, Beta: 1e-3},
			Options:    coverage.Options{MaxIters: maxIters, Seed: seed},
			Restarts:   restarts,
		})
	}
	return specs
}

// TestShardMergeDeterminismProperty checks the merge reduction against
// sequential OptimizeBest on the four paper topologies: for every
// shard size, running each restart independently, grouping into
// shards, and reducing the SHUFFLED shard results with
// pickShardWinner selects exactly the restart OptimizeBest keeps.
func TestShardMergeDeterminismProperty(t *testing.T) {
	const restarts = 7 // prime, so shard sizes 2 and 3 leave ragged tails
	rng := rand.New(rand.NewSource(42))
	for ti, spec := range paperSpecs(t, 30, restarts, 12345) {
		want, err := coverage.OptimizeBest(spec.Scenario, spec.Objectives, spec.Options, restarts)
		if err != nil {
			t.Fatalf("topology %d: OptimizeBest: %v", ti+1, err)
		}
		// Run each restart independently, exactly as a shard worker does.
		seeds := coverage.SplitSeeds(spec.Options.Seed, restarts)
		plans := make([]*coverage.Plan, restarts)
		for r := range seeds {
			opts := spec.Options
			opts.Seed = seeds[r]
			p, err := coverage.Optimize(spec.Scenario, spec.Objectives, opts)
			if err != nil {
				t.Fatalf("topology %d restart %d: %v", ti+1, r, err)
			}
			plans[r] = p
		}
		for _, shardSize := range []int{1, 2, 3, restarts} {
			table := newShardTable("job-x", restarts, shardSize)
			results := make([]shardResult, 0, table.Shards)
			for k := 0; k < table.Shards; k++ {
				lo, hi := table.bounds(k)
				res := shardResult{Shard: k}
				for r := lo; r < hi; r++ {
					if res.BestCost == nil || plans[r].Cost < *res.BestCost {
						c := plans[r].Cost
						res.BestCost = &c
						res.BestRestart = r
					}
				}
				results = append(results, res)
			}
			for trial := 0; trial < 4; trial++ {
				rng.Shuffle(len(results), func(a, b int) {
					results[a], results[b] = results[b], results[a]
				})
				winner, ok := pickShardWinner(results)
				if !ok {
					t.Fatalf("topology %d size %d: no winner", ti+1, shardSize)
				}
				got := plans[winner.BestRestart]
				assertPlansEqual(t, got, want,
					fmt.Sprintf("topology %d shardSize %d trial %d", ti+1, shardSize, trial))
			}
		}
	}
}

// TestShardedMatchesOptimizeBest is the golden-trace gate for the
// whole protocol: three managers sharing one store cooperate on a
// 6-restart job submitted to one of them, and the merged plan must be
// bit-for-bit identical to single-process OptimizeBest. Along the way
// it pins exactly-once semantics: every restart completes durably on
// exactly one node, and the done listener fires once cluster-wide.
func TestShardedMatchesOptimizeBest(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, 60, 6, 777)

	var mu sync.Mutex
	completed := make(map[int][]string) // restart -> nodes that completed it
	var doneFires []string
	mgrs := make([]*Manager, 0, 3)
	for i := 0; i < 3; i++ {
		node := fmt.Sprintf("n%d", i)
		m := shardManager(t, dir, node, Config{
			Metrics: obs.NewRegistry(),
			testAfterShardRestart: func(jobID string, shard, restart int) {
				mu.Lock()
				completed[restart] = append(completed[restart], node)
				mu.Unlock()
			},
		})
		m.SetDoneListener(func(jobID string, spec Spec, plan *coverage.Plan) {
			mu.Lock()
			doneFires = append(doneFires, node)
			mu.Unlock()
		})
		defer shutdown(t, m)
		mgrs = append(mgrs, m)
	}

	v, err := mgrs[0].Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, 60*time.Second, func() bool {
		got, err := mgrs[0].Get(v.ID)
		return err == nil && got.State == StateDone
	}, "sharded job to finish")

	want, err := coverage.OptimizeBest(spec.Scenario, spec.Objectives, spec.Options, spec.Restarts)
	if err != nil {
		t.Fatalf("OptimizeBest: %v", err)
	}
	// Every node must serve the identical merged plan (cluster-aware reads).
	for i, m := range mgrs {
		waitFor(t, 10*time.Second, func() bool {
			got, err := m.Get(v.ID)
			return err == nil && got.State == StateDone
		}, fmt.Sprintf("node %d to observe completion", i))
		plan, err := m.Plan(v.ID)
		if err != nil {
			t.Fatalf("node %d Plan: %v", i, err)
		}
		assertPlansEqual(t, plan, want, fmt.Sprintf("node %d", i))
	}

	mu.Lock()
	defer mu.Unlock()
	for r := 0; r < spec.Restarts; r++ {
		if n := len(completed[r]); n != 1 {
			t.Errorf("restart %d completed %d times (%v), want exactly 1", r, n, completed[r])
		}
	}
	if len(doneFires) != 1 {
		t.Errorf("done listener fired %d times (%v), want exactly 1", len(doneFires), doneFires)
	}
	// The final view must report full cluster-wide progress.
	got, err := mgrs[0].Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Progress.RestartsDone != spec.Restarts {
		t.Errorf("restartsDone = %d, want %d", got.Progress.RestartsDone, spec.Restarts)
	}
}

// TestLeaseTakeoverResume kills a worker holding a lease mid-shard
// (the crash hook keeps its leases in the store) and checks another
// node takes the lease over after expiry, resumes the shard from its
// last durable restart, and produces the bit-exact plan.
func TestLeaseTakeoverResume(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, 60, 4, 909)

	// Node A: 2-restart shards; crash after the first durable restart.
	// The hook parks the worker until A's pool context is cancelled, so
	// A provably dies holding its lease with restart 0 durable and
	// restart 1 never attempted.
	crashed := make(chan struct{})
	release := make(chan struct{})
	a := shardManager(t, dir, "a", Config{
		Metrics:        obs.NewRegistry(),
		Shard:          ShardConfig{ShardSize: 2, LeaseTTL: 500 * time.Millisecond},
		testDropLeases: true,
		testAfterShardRestart: func(jobID string, shard, restart int) {
			if restart == 0 {
				close(crashed)
				<-release
			}
		},
	})
	v, err := a.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-crashed
	// Hard-stop A; its lease stays in the store like a real crash. The
	// worker is parked in the hook, so cancel the pool first, then let
	// the hook return into an already-dead context.
	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutErr <- a.Shutdown(ctx)
	}()
	waitFor(t, 10*time.Second, func() bool { return a.ctx.Err() != nil },
		"node a pool context to cancel")
	close(release)
	if err := <-shutErr; err != nil {
		t.Fatalf("Shutdown(a): %v", err)
	}

	var mu sync.Mutex
	var resumed []int
	breg := obs.NewRegistry()
	b := shardManager(t, dir, "b", Config{
		Metrics: breg,
		Shard:   ShardConfig{ShardSize: 2, LeaseTTL: 500 * time.Millisecond},
		testAfterShardRestart: func(jobID string, shard, restart int) {
			mu.Lock()
			resumed = append(resumed, restart)
			mu.Unlock()
		},
	})
	defer shutdown(t, b)

	waitFor(t, 60*time.Second, func() bool {
		got, err := b.Get(v.ID)
		return err == nil && got.State == StateDone
	}, "takeover node to finish the job")

	want, err := coverage.OptimizeBest(spec.Scenario, spec.Objectives, spec.Options, spec.Restarts)
	if err != nil {
		t.Fatalf("OptimizeBest: %v", err)
	}
	plan, err := b.Plan(v.ID)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	assertPlansEqual(t, plan, want, "takeover")

	// B must have resumed — not restarted — the crashed shard: restart 0
	// completed durably on A, so B never re-completes it.
	mu.Lock()
	for _, r := range resumed {
		if r == 0 {
			t.Errorf("restart 0 re-executed after takeover; resumed list %v", resumed)
		}
	}
	mu.Unlock()

	// The takeover must be visible in the lease metrics.
	var sawTakeover bool
	for _, mi := range breg.Registered() {
		if mi.Name == "jobs_lease_takeovers_total" {
			sawTakeover = true
		}
	}
	if !sawTakeover {
		t.Error("jobs_lease_takeovers_total not registered")
	}
	var buf bytes.Buffer
	if err := breg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("jobs_lease_takeovers_total 1")) {
		t.Errorf("expected exactly one lease takeover, metrics:\n%s",
			grepMetric(buf.String(), "jobs_lease"))
	}
}

// grepMetric filters exposition text to lines mentioning prefix.
func grepMetric(text, prefix string) string {
	var out bytes.Buffer
	for _, line := range bytes.Split([]byte(text), []byte("\n")) {
		if bytes.Contains(line, []byte(prefix)) && !bytes.HasPrefix(line, []byte("#")) {
			out.Write(line)
			out.WriteByte('\n')
		}
	}
	return out.String()
}

// TestTornShardStateRecovered injects a torn shard-state blob under a
// parked job and checks the claim path logs, re-runs the shard from
// scratch, and still converges to the bit-exact answer.
func TestTornShardStateRecovered(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, 60, 2, 4242)

	// Pre-write the job as a crashed foreign node would have left it:
	// full checkpoint triple + shard table, plus one torn shard state.
	seed, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, err := func() (View, error) {
		w := &Manager{cfg: Config{}, jobs: map[string]*job{}, store: seed, log: obs.Component(nil, "seed")}
		j := &job{
			id: "job-pre-000001", spec: spec, state: StateQueued,
			created: time.Now(), sharded: true,
			prog: Progress{Restarts: spec.Restarts},
		}
		w.persist(j, true)
		tab := newShardTable(j.id, spec.Restarts, 1)
		if err := seed.Put(shardTableBlob(j.id), marshalBlob(tab)); err != nil {
			return View{}, err
		}
		return View{ID: j.id}, nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Put(shardStateBlob(v.ID, 0), []byte(`{"version":1,"kind":"shard","job":"job-pre-000001","shard":0,`)); err != nil {
		t.Fatal(err)
	}

	m := shardManager(t, dir, "fix", Config{Metrics: obs.NewRegistry()})
	defer shutdown(t, m)
	waitFor(t, 60*time.Second, func() bool {
		got, err := m.Get(v.ID)
		return err == nil && got.State == StateDone
	}, "job with torn shard state to finish")

	want, err := coverage.OptimizeBest(spec.Scenario, spec.Objectives, spec.Options, spec.Restarts)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := m.Plan(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertPlansEqual(t, plan, want, "torn-state recovery")
}

// TestClusterAwareGet submits on one node and reads from another that
// has never seen the ID: the store resolves it.
func TestClusterAwareGet(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, 40, 2, 31)

	a := shardManager(t, dir, "a", Config{Metrics: obs.NewRegistry()})
	defer shutdown(t, a)
	// B polls very slowly so the lookup below exercises the Get
	// fallback, not the poller's adoption.
	b := shardManager(t, dir, "b", Config{
		Metrics: obs.NewRegistry(),
		Shard:   ShardConfig{Poll: time.Hour},
	})
	defer shutdown(t, b)

	v, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 60*time.Second, func() bool {
		got, err := a.Get(v.ID)
		return err == nil && got.State == StateDone
	}, "job to finish on the submitting node")

	got, err := b.Get(v.ID)
	if err != nil {
		t.Fatalf("cluster Get on node b: %v", err)
	}
	if got.State != StateDone {
		t.Errorf("node b sees state %s, want done", got.State)
	}
	planB, err := b.Plan(v.ID)
	if err != nil {
		t.Fatalf("cluster Plan on node b: %v", err)
	}
	planA, err := a.Plan(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	assertPlansEqual(t, planB, planA, "cross-node plan")

	if _, err := b.Get("job-nosuch-000009"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown id err = %v, want ErrNotFound", err)
	}
}
