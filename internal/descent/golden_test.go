package descent

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/topology"
)

// goldenModel is the fixed configuration the golden traces below were
// captured with: Topology3, uniform α=1 β=1e-4, plus both §VII extensions
// so every term of the objective and gradient is exercised.
func goldenModel(t *testing.T) *cost.Model {
	t.Helper()
	top := topology.Topology3()
	w := cost.Uniform(top.M(), 1, 1e-4)
	w.EnergyWeight = 0.5
	w.EnergyTarget = 0.3
	w.EntropyWeight = 0.05
	m, err := cost.NewModel(top, w)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

// pHash folds a matrix's exact bit patterns into one value; any single-ulp
// drift in any entry changes it.
func pHash(res *Result) uint64 {
	var sum uint64
	for i := 0; i < res.P.Rows(); i++ {
		for j := 0; j < res.P.Cols(); j++ {
			sum ^= math.Float64bits(res.P.At(i, j)) * uint64(i*7+j+1)
		}
	}
	return sum
}

// TestGoldenTraces pins the exact float64 bit patterns each descent
// variant produces for a fixed seed. The values were captured from the
// seed implementation before the workspace refactor; the refactor's
// contract is bit-for-bit identical arithmetic, so any mismatch here means
// a floating-point operation was reordered, not merely perturbed.
func TestGoldenTraces(t *testing.T) {
	model := goldenModel(t)
	cases := []struct {
		variant Variant
		bestU   uint64
		phash   uint64
	}{
		{Basic, 0x3fe357f9e57f67c4, 0x2000232925950e4},
		{Adaptive, 0x3fc369a4d6006051, 0x66099d811f5ca4c},
		{Perturbed, 0x3fbf0db09671202d, 0x7cb38580bb6e030},
	}
	for _, tc := range cases {
		t.Run(tc.variant.String(), func(t *testing.T) {
			opt, err := New(model, Options{
				Variant: tc.variant, MaxIters: 25, Seed: 42, RecordTrace: true,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			res, err := opt.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if got := math.Float64bits(res.Eval.U); got != tc.bestU {
				t.Errorf("bestU bits = %#x, want %#x (U = %v)", got, tc.bestU, res.Eval.U)
			}
			if got := pHash(res); got != tc.phash {
				t.Errorf("P hash = %#x, want %#x", got, tc.phash)
			}
			// The trace and the result must agree: the recorded minimum U
			// never undercuts the reported best.
			for _, rec := range res.Trace {
				if math.IsNaN(rec.U) {
					t.Fatalf("iter %d: trace U is NaN", rec.Iter)
				}
			}
		})
	}
}

// TestGoldenParallelRuns pins RunManyParallel's per-run results for a
// fixed seed: worker scheduling must never leak into the numerics (seeds
// are split up front, each worker owns its Optimizer and Workspace).
func TestGoldenParallelRuns(t *testing.T) {
	model := goldenModel(t)
	want := []uint64{
		0x3fc74d5eb2dda5fa,
		0x3fc591dba2412c27,
		0x3fc7298b827807b6,
		0x3fc26b7ac2728baa,
	}
	for _, workers := range []int{1, 4} {
		rs, err := RunManyParallel(model, Options{
			Variant: Perturbed, MaxIters: 15, Seed: 7,
		}, 4, workers)
		if err != nil {
			t.Fatalf("workers=%d: RunManyParallel: %v", workers, err)
		}
		for i, r := range rs {
			if got := math.Float64bits(r.Eval.U); got != want[i] {
				t.Errorf("workers=%d run %d: bestU bits = %#x, want %#x",
					workers, i, got, want[i])
			}
		}
	}
}
