package descent

import (
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/topology"
)

// benchOptimizer builds an M-PoI model and an optimizer positioned at a
// random iterate, with its projected steepest-descent direction, ready for
// line-search probing.
func benchOptimizer(b *testing.B, m int) (*Optimizer, *mat.Matrix, *mat.Matrix, float64) {
	b.Helper()
	top, err := topology.Random(rng.New(uint64(m)), topology.RandomConfig{
		M: m, Width: 40 * float64(m), Height: 40 * float64(m),
	})
	if err != nil {
		b.Fatal(err)
	}
	model, err := cost.NewModel(top, cost.Uniform(m, 1, 1))
	if err != nil {
		b.Fatal(err)
	}
	opt, err := New(model, Options{Variant: Adaptive, MaxIters: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	p := RandomInit(rng.New(1), m, DefaultMinProb)
	ev, grad, err := model.GradientIn(opt.ws, p)
	if err != nil {
		b.Fatal(err)
	}
	curU := ev.U
	dir := mat.New(m, m)
	cost.ProjectTo(dir, grad)
	mat.ScaleInPlace(-1, dir)
	return opt, p, dir, curU
}

// BenchmarkLineSearchStep measures one full V3 line search (geometric
// bracketing plus conservative trisection, a few dozen cost evaluations)
// at the sizes the evaluation-pipeline benches sweep. This is the descent
// hot loop's dominant cost, and with the shared Workspace it runs
// allocation-free.
func BenchmarkLineSearchStep(b *testing.B) {
	for _, m := range []int{8, 16, 32, 64} {
		opt, p, dir, curU := benchOptimizer(b, m)
		b.Run(fmt.Sprintf("M%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				step, _, ok := opt.lineSearch(p, dir, curU)
				if !ok && step != 0 {
					b.Fatal("inconsistent line search result")
				}
			}
		})
	}
}
